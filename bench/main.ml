(* Experiment harness: one section per experiment in DESIGN.md's index
   (E1–E17) plus Bechamel wall-clock micro-benches for the headline
   operations.

   Usage: main.exe            — run everything
          main.exe E9 E10     — run selected experiments
          main.exe time       — wall-clock benches only
          main.exe --json     — machine-readable metrics -> BENCH_core.json
          main.exe --json E2  — ditto, selected experiments only
          main.exe --json E2 --profile p.json
                              — ditto, plus telemetry: per-phase latency
                                percentiles in the records and a Chrome
                                trace-event JSON at the given path

   `--backend mem|file|faulty` (anywhere on the line) picks the storage
   backend for every workload-created store: `file` spills blocks to
   per-store temp files, `faulty` injects deterministic transient
   faults (fixed seed) whose retries show up in the trace lengths and
   the JSON `retries` field.

   `--shards K` stripes every workload store across K inner devices
   (domain-parallel, PRP fan-out; see DESIGN.md §9) and `--prefetch`
   turns on the double-buffered scan prefetcher — both physical-only
   knobs whose traces stay bit-identical to the plain run.

   `--journal` (JSON mode) runs each selected entry twice — write-ahead
   journal off, then on (DESIGN.md §10) — so the WAL's overhead lands as
   paired records in one BENCH_core.json.

   `--servers K` (JSON mode) sizes the stripe of E18's multi-server
   compaction leg — K non-colluding servers splitting the two-server
   protocol's schedule (DESIGN.md §14).

   `--sorter NAME` (JSON mode) narrows E15's engine head-to-head to one
   sorting engine (batcher | columnsort | bucket | ...), so a CI matrix
   can run one leg per engine.

   `--cipher none|prf_xor|chacha20` seals every workload store under the
   named keystream engine (fixed benchmark key), and `--seal-domains K`
   fans run sealing across K worker domains — both physical-only knobs
   whose traces stay bit-identical to the plaintext run. E16 (JSON mode)
   is the seal/unseal throughput microbench. *)

open Bechamel
open Toolkit

let wallclock_tests () =
  let open Odex_extmem in
  let b = 8 in
  let n = 8192 in
  let fresh shape =
    let rng = Odex_crypto.Rng.create ~seed:42 in
    Workloads.array ~rng ~b ~n shape
  in
  [
    Test.make ~name:"sort-thm21-8k" (Staged.stage (fun () ->
        let _, a = fresh Workloads.Uniform in
        let rng = Odex_crypto.Rng.create ~seed:1 in
        ignore (Odex.Sort.run ~sweep:false ~m:64 ~rng a)));
    Test.make ~name:"sort-bitonic-win-8k" (Staged.stage (fun () ->
        let _, a = fresh Workloads.Uniform in
        Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:64 a));
    Test.make ~name:"selection-8k" (Staged.stage (fun () ->
        let _, a = fresh Workloads.Uniform in
        let rng = Odex_crypto.Rng.create ~seed:2 in
        ignore (Odex.Selection.select ~m:64 ~rng ~k:(n / 2) a)));
    Test.make ~name:"quantiles-q4-8k" (Staged.stage (fun () ->
        let _, a = fresh Workloads.Uniform in
        let rng = Odex_crypto.Rng.create ~seed:3 in
        ignore (Odex.Quantiles.run ~m:64 ~rng ~q:4 a)));
    Test.make ~name:"butterfly-compact-2k" (Staged.stage (fun () ->
        let _, a = Workloads.consolidated_blocks ~b ~n:2048 ~occupied:700 () in
        ignore (Odex.Butterfly.compact ~m:64 a)));
    Test.make ~name:"loose-compact-2k" (Staged.stage (fun () ->
        let _, a = Workloads.consolidated_blocks ~b ~n:2048 ~occupied:256 () in
        let rng = Odex_crypto.Rng.create ~seed:4 in
        ignore (Odex.Loose_compaction.run ~m:64 ~rng ~capacity:512 a)));
    Test.make ~name:"consolidation-8k" (Staged.stage (fun () ->
        let _, a = fresh Workloads.Uniform in
        ignore (Odex.Consolidation.run ~into:None a)));
    Test.make ~name:"iblt-insert-1k" (Staged.stage (fun () ->
        let t = Odex_iblt.Iblt.create ~size:8192 (Odex_crypto.Prf.key_of_int 5) in
        for x = 0 to 999 do
          Odex_iblt.Iblt.insert t ~key:x ~value:x
        done));
    Test.make ~name:"sort-columnsort-8k" (Staged.stage (fun () ->
        let _, a = fresh Workloads.Uniform in
        Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.columnsort ~m:128 a));
    (* m = 128 >= the default-Z bucket geometry's 114-block floor at
       B = 8, so this times the butterfly pipeline, not the fallback. *)
    Test.make ~name:"sort-bucket-8k" (Staged.stage (fun () ->
        let _, a = fresh Workloads.Uniform in
        Odex_sortnet.Ext_sort.run (Odex_sortnet.Ext_sort.bucket ()) ~m:128 a));
    Test.make ~name:"hier-oram-access-1k" (Staged.stage (fun () ->
        let s = Storage.create ~trace_mode:Trace.Off ~block_size:4 () in
        let rng = Odex_crypto.Rng.create ~seed:7 in
        let t = Odex_oram.Hierarchical_oram.init ~m:64 ~rng s ~values:(Array.make 1024 0) in
        for i = 1 to 64 do
          ignore (Odex_oram.Hierarchical_oram.read t (i mod 1024))
        done));
    Test.make ~name:"sqrt-oram-epoch-1k" (Staged.stage (fun () ->
        let s = Storage.create ~trace_mode:Trace.Off ~block_size:4 () in
        let rng = Odex_crypto.Rng.create ~seed:6 in
        let t = Odex_oram.Sqrt_oram.init ~m:64 ~rng s ~values:(Array.make 1024 0) in
        while Odex_oram.Sqrt_oram.epochs t < 1 do
          ignore (Odex_oram.Sqrt_oram.read t 0)
        done));
  ]

let run_wallclock () =
  print_endline "\n== Wall-clock micro-benches (Bechamel, monotonic clock) ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let tests = Test.make_grouped ~name:"odex" ~fmt:"%s %s" (wallclock_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns_per_run ] -> rows := (name, ns_per_run) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  List.iter
    (fun (name, ns) ->
      if ns >= 1e6 then Printf.printf "  %-34s %10.2f ms/run\n" name (ns /. 1e6)
      else Printf.printf "  %-34s %10.2f us/run\n" name (ns /. 1e3))
    rows

(* Pull `--backend NAME` out of the argument list, wherever it appears. *)
let rec extract_backend = function
  | [] -> (None, [])
  | "--backend" :: name :: rest ->
      let _, cleaned = extract_backend rest in
      (Some name, cleaned)
  | [ "--backend" ] -> failwith "--backend needs an argument (mem | file | faulty)"
  | arg :: rest ->
      let backend, cleaned = extract_backend rest in
      (backend, arg :: cleaned)

(* Pull `--profile PATH` out likewise (JSON mode only: enables telemetry
   on every workload storage and writes a Chrome trace there). *)
let rec extract_profile = function
  | [] -> (None, [])
  | "--profile" :: path :: rest ->
      let _, cleaned = extract_profile rest in
      (Some path, cleaned)
  | [ "--profile" ] -> failwith "--profile needs an output path"
  | arg :: rest ->
      let profile, cleaned = extract_profile rest in
      (profile, arg :: cleaned)

(* Pull `--shards K` out likewise. *)
let rec extract_shards = function
  | [] -> (None, [])
  | "--shards" :: k :: rest ->
      let shards =
        match int_of_string_opt k with
        | Some k when k >= 1 -> k
        | _ -> failwith "--shards needs a positive integer"
      in
      let _, cleaned = extract_shards rest in
      (Some shards, cleaned)
  | [ "--shards" ] -> failwith "--shards needs a shard count"
  | arg :: rest ->
      let shards, cleaned = extract_shards rest in
      (shards, arg :: cleaned)

(* Pull `--servers K` out likewise (JSON mode: the stripe width of
   E18's multi-server compaction leg). *)
let rec extract_servers = function
  | [] -> (None, [])
  | "--servers" :: k :: rest ->
      let servers =
        match int_of_string_opt k with
        | Some k when k >= 2 -> k
        | _ -> failwith "--servers needs an integer >= 2"
      in
      let _, cleaned = extract_servers rest in
      (Some servers, cleaned)
  | [ "--servers" ] -> failwith "--servers needs a server count"
  | arg :: rest ->
      let servers, cleaned = extract_servers rest in
      (servers, arg :: cleaned)

(* Pull `--sorter NAME` out likewise (JSON mode: narrow E15's engine
   sweep to the named sorter — one matrix leg per CI job). *)
let rec extract_sorter = function
  | [] -> (None, [])
  | "--sorter" :: name :: rest ->
      let _, cleaned = extract_sorter rest in
      (Some name, cleaned)
  | [ "--sorter" ] -> failwith "--sorter needs an engine name (batcher | columnsort | bucket)"
  | arg :: rest ->
      let sorter, cleaned = extract_sorter rest in
      (sorter, arg :: cleaned)

(* Pull `--cipher NAME` out likewise (none | prf_xor | chacha20). *)
let rec extract_cipher = function
  | [] -> (None, [])
  | "--cipher" :: name :: rest ->
      let _, cleaned = extract_cipher rest in
      (Some name, cleaned)
  | [ "--cipher" ] -> failwith "--cipher needs an engine name (none | prf_xor | chacha20)"
  | arg :: rest ->
      let cipher, cleaned = extract_cipher rest in
      (cipher, arg :: cleaned)

(* Pull `--seal-domains K` out likewise. *)
let rec extract_seal_domains = function
  | [] -> (None, [])
  | "--seal-domains" :: k :: rest ->
      let d =
        match int_of_string_opt k with
        | Some d when d >= 1 -> d
        | _ -> failwith "--seal-domains needs a positive integer"
      in
      let _, cleaned = extract_seal_domains rest in
      (Some d, cleaned)
  | [ "--seal-domains" ] -> failwith "--seal-domains needs a domain count"
  | arg :: rest ->
      let d, cleaned = extract_seal_domains rest in
      (d, arg :: cleaned)

(* Pull the bare `--prefetch` flag out likewise. *)
let extract_prefetch args =
  (List.mem "--prefetch" args, List.filter (fun a -> a <> "--prefetch") args)

(* Pull the bare `--journal` flag out likewise (JSON mode: run each
   selected entry journal-off then journal-on, recording both). *)
let extract_journal args =
  (List.mem "--journal" args, List.filter (fun a -> a <> "--journal") args)

let () =
  let backend, args = extract_backend (List.tl (Array.to_list Sys.argv)) in
  let profile, args = extract_profile args in
  let shards, args = extract_shards args in
  let servers, args = extract_servers args in
  let sorter, args = extract_sorter args in
  let cipher, args = extract_cipher args in
  let seal_domains, args = extract_seal_domains args in
  let prefetch, args = extract_prefetch args in
  let journal, args = extract_journal args in
  match args with
  | "--json" :: ids ->
      Json_bench.run ?backend ?shards ?servers ~prefetch ~journal ?cipher ?seal_domains
        ?sorter ?profile ids
  | args ->
      let backend_name = Option.value backend ~default:"mem" in
      let shard_count = Option.value shards ~default:1 in
      if backend <> None || shard_count > 1 then
        Workloads.default_backend :=
          (fun () -> Odex_obcheck.Registry.backend_spec ~shards:shard_count backend_name);
      Workloads.prefetch := prefetch;
      (match cipher with
      | None | Some "none" -> ()
      | Some ("prf_xor" | "chacha20") ->
          Workloads.cipher := Some (Odex_crypto.Cipher.key_of_int 0x0dec);
          Workloads.cipher_engine :=
            (if cipher = Some "chacha20" then Odex_crypto.Cipher.Chacha20
             else Odex_crypto.Cipher.Prf_xor)
      | Some other -> failwith (Printf.sprintf "unknown cipher %S" other));
      Workloads.seal_domains := Option.value seal_domains ~default:1;
      Fun.protect ~finally:Workloads.cleanup (fun () ->
          let want id = args = [] || List.mem id args in
          List.iter (fun (id, f) -> if want id then f ()) Experiments.all;
          if args = [] || List.mem "time" args then run_wallclock ())
