(* Machine-readable counterpart of the E-series tables: each entry
   re-runs a core workload with trace digests on and appends one JSON
   record per run to BENCH_core.json (overwritten each invocation).

   Usage: main.exe --json                    — every entry
          main.exe --json E2 E9              — selected experiments only
          main.exe --json E2 --backend faulty — run on another backend
                                               (mem | file | faulty) *)

open Odex_extmem

type record = {
  experiment : string;
  name : string;
  backend : string;
  n_cells : int;
  b : int;
  m : int;
  reads : int;
  writes : int;
  total_ios : int;
  retries : int;
  trace_length : int;
  spans : int;
  wall_ms : float;
  bytes_moved : int;
  batched_ios : int;
  mb_per_s : float;
  ok : bool;
}

(* Throughput over the sealed payloads actually transferred by counted
   I/Os: MB (10^6 bytes) per wall-clock second. 0 when nothing moved or
   the clock read 0. *)
let throughput ~bytes_moved ~wall_ms =
  if bytes_moved = 0 || wall_ms <= 0. then 0.
  else Float.of_int bytes_moved /. 1e6 /. (wall_ms /. 1e3)

(* Backend selection for the whole JSON run (`--backend mem|file|faulty`);
   storages made through Workloads pick it up via [default_backend], and
   the entries that build their own storage consult it directly. *)
let current_backend = ref "mem"

let fresh_spec () = Odex_obcheck.Registry.backend_spec !current_backend

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e3)

(* Run [f] (returning its success flag) against [s] and harvest the
   storage counters afterwards, then release the backend. *)
let collect ~experiment ~name ~n_cells ~b ~m s f =
  let ok, wall_ms = timed f in
  let tr = Storage.trace s in
  let r =
    {
      experiment;
      name;
      backend = Storage.backend_kind s;
      n_cells;
      b;
      m;
      reads = Stats.reads (Storage.stats s);
      writes = Stats.writes (Storage.stats s);
      total_ios = Stats.total (Storage.stats s);
      retries = Stats.retries (Storage.stats s);
      trace_length = Trace.length tr;
      spans = List.length (Trace.spans tr);
      wall_ms;
      bytes_moved = Stats.bytes_moved (Storage.stats s);
      batched_ios = Stats.batched_ios (Storage.stats s);
      mb_per_s = throughput ~bytes_moved:(Stats.bytes_moved (Storage.stats s)) ~wall_ms;
      ok;
    }
  in
  Storage.close s;
  r

let uniform ~seed ~b ~n =
  let rng = Odex_crypto.Rng.create ~seed in
  let s, a = Workloads.array ~trace:Trace.Digest ~rng ~b ~n Workloads.Uniform in
  (s, a, rng)

(* One entry per measurable E-series experiment; ids match the tables
   printed by [Experiments.all] so `--json E5` instruments the same
   algorithm E5's table describes. *)

let e2 () =
  List.map
    (fun n ->
      let s, a, _ = uniform ~seed:2 ~b:8 ~n in
      collect ~experiment:"E2" ~name:"consolidation" ~n_cells:n ~b:8 ~m:2 s (fun () ->
          ignore (Odex.Consolidation.run ~into:None a);
          true))
    [ 4096; 16384 ]

let e4 () =
  let b = 8 and n = 1024 and m = 64 in
  let s, a = Workloads.consolidated_blocks ~trace:Trace.Digest ~b ~n ~occupied:300 () in
  [
    collect ~experiment:"E4" ~name:"butterfly-compact" ~n_cells:(n * b) ~b ~m s (fun () ->
        ignore (Odex.Butterfly.compact ~m a);
        true);
  ]

let e5 () =
  let b = 8 and n = 2048 and m = 64 in
  let s, a = Workloads.consolidated_blocks ~trace:Trace.Digest ~b ~n ~occupied:256 () in
  let rng = Odex_crypto.Rng.create ~seed:5 in
  [
    collect ~experiment:"E5" ~name:"loose-compaction" ~n_cells:(n * b) ~b ~m s (fun () ->
        (Odex.Loose_compaction.run ~m ~rng ~capacity:512 a).Odex.Loose_compaction.ok);
  ]

let e6 () =
  let b = 8 and n = 1024 and m = 64 in
  let s, a = Workloads.consolidated_blocks ~trace:Trace.Digest ~b ~n ~occupied:128 () in
  let rng = Odex_crypto.Rng.create ~seed:6 in
  [
    collect ~experiment:"E6" ~name:"logstar-compaction" ~n_cells:(n * b) ~b ~m s (fun () ->
        (Odex.Logstar_compaction.run ~m ~rng ~capacity:128 a).Odex.Logstar_compaction.ok);
  ]

let e7 () =
  let b = 8 and n = 8192 and m = 64 in
  let s, a, rng = uniform ~seed:7 ~b ~n in
  [
    collect ~experiment:"E7" ~name:"selection" ~n_cells:n ~b ~m s (fun () ->
        (Odex.Selection.select ~m ~rng ~k:(n / 2) a).Odex.Selection.ok);
  ]

let e8 () =
  let b = 8 and n = 8192 and m = 64 in
  let s, a, rng = uniform ~seed:8 ~b ~n in
  [
    collect ~experiment:"E8" ~name:"quantiles-q4" ~n_cells:n ~b ~m s (fun () ->
        (Odex.Quantiles.run ~m ~rng ~q:4 a).Odex.Quantiles.ok);
  ]

let e9 () =
  let b = 8 and n = 8192 and m = 64 in
  let s, a, rng = uniform ~seed:9 ~b ~n in
  [
    collect ~experiment:"E9" ~name:"sort-thm21" ~n_cells:n ~b ~m s (fun () ->
        (Odex.Sort.run ~sweep:false ~m ~rng a).Odex.Sort.ok);
  ]

let e10 () =
  let words = 1024 and m = 64 in
  let s = Storage.create ~trace_mode:Trace.Digest ~backend:(fresh_spec ()) ~block_size:4 () in
  let rng = Odex_crypto.Rng.create ~seed:10 in
  [
    collect ~experiment:"E10" ~name:"hier-oram-64-accesses" ~n_cells:words ~b:4 ~m s (fun () ->
        let t = Odex_oram.Hierarchical_oram.init ~m ~rng s ~values:(Array.make words 0) in
        for i = 1 to 64 do
          ignore (Odex_oram.Hierarchical_oram.read t (i mod words))
        done;
        true);
  ]

(* E11's table is the obliviousness audit; the JSON form re-runs the
   obcheck pair tests and reports run A's counters plus the verdict. *)
let e11 () =
  List.map
    (fun (e : Odex_obcheck.Registry.entry) ->
      let spec = fresh_spec () in
      let (o : Odex_obcheck.Pairtest.outcome), wall_ms =
        timed (fun () ->
            Odex_obcheck.Pairtest.check ~backend:spec e.subject ~n_cells:e.n_cells ~b:e.b
              ~m:e.m)
      in
      Storage.remove_spec_files spec;
      let a = o.run_a in
      {
        experiment = "E11";
        name = "pair-" ^ e.subject.Odex_obcheck.Pairtest.name;
        backend = o.Odex_obcheck.Pairtest.backend;
        n_cells = e.n_cells;
        b = e.b;
        m = e.m;
        reads = a.Odex_obcheck.Pairtest.reads;
        writes = a.Odex_obcheck.Pairtest.writes;
        total_ios = a.Odex_obcheck.Pairtest.reads + a.Odex_obcheck.Pairtest.writes;
        retries = a.Odex_obcheck.Pairtest.retries;
        trace_length = a.Odex_obcheck.Pairtest.trace_length;
        spans = a.Odex_obcheck.Pairtest.span_count;
        wall_ms;
        bytes_moved = a.Odex_obcheck.Pairtest.bytes_moved;
        batched_ios = a.Odex_obcheck.Pairtest.batched_ios;
        mb_per_s = throughput ~bytes_moved:a.Odex_obcheck.Pairtest.bytes_moved ~wall_ms;
        ok = o.oblivious;
      })
    Odex_obcheck.Registry.all

let entries =
  [
    ("E2", e2); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7); ("E8", e8);
    ("E9", e9); ("E10", e10); ("E11", e11);
  ]

let json_of_record r =
  Printf.sprintf
    "{\"experiment\":%S,\"name\":%S,\"backend\":%S,\"n_cells\":%d,\"b\":%d,\"m\":%d,\"reads\":%d,\"writes\":%d,\"total_ios\":%d,\"retries\":%d,\"trace_length\":%d,\"spans\":%d,\"wall_ms\":%.3f,\"bytes_moved\":%d,\"batched_ios\":%d,\"mb_per_s\":%.3f,\"ok\":%b}"
    r.experiment r.name r.backend r.n_cells r.b r.m r.reads r.writes r.total_ios r.retries
    r.trace_length r.spans r.wall_ms r.bytes_moved r.batched_ios r.mb_per_s r.ok

let run ?(backend = "mem") ids =
  if not (List.mem backend Odex_obcheck.Registry.backend_names) then begin
    Printf.eprintf "unknown backend %S (available: %s)\n" backend
      (String.concat " " Odex_obcheck.Registry.backend_names);
    exit 2
  end;
  current_backend := backend;
  Workloads.default_backend := fresh_spec;
  List.iter
    (fun id ->
      if not (List.mem_assoc id entries) then
        Printf.eprintf "warning: no JSON entry for %s (available: %s)\n" id
          (String.concat " " (List.map fst entries)))
    ids;
  let want id = ids = [] || List.mem id ids in
  let records = List.concat_map (fun (id, f) -> if want id then f () else []) entries in
  Workloads.cleanup ();
  let oc = open_out "BENCH_core.json" in
  output_string oc "{\n  \"schema\": \"odex-bench/3\",\n  \"records\": [\n";
  List.iteri
    (fun i r ->
      output_string oc "    ";
      output_string oc (json_of_record r);
      if i < List.length records - 1 then output_string oc ",";
      output_string oc "\n")
    records;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_core.json (%d records)\n" (List.length records)
