(* Machine-readable counterpart of the E-series tables: each entry
   re-runs a core workload with trace digests on and appends one JSON
   record per run to BENCH_core.json (overwritten each invocation).

   Usage: main.exe --json                    — every entry
          main.exe --json E2 E9              — selected experiments only
          main.exe --json E2 --backend faulty — run on another backend
                                               (mem | file | faulty)
          main.exe --json E2 --shards 4       — stripe every store across
                                               4 domain-parallel shards
          main.exe --json E18 --servers 2     — size the multi-server
                                               compaction leg's stripe
                                               (non-colluding servers)
          main.exe --json E2 --prefetch       — double-buffered scan
                                               prefetcher on
          main.exe --json E2 --journal        — run each entry twice,
                                               journal off then on, so
                                               the WAL overhead lands in
                                               the same file
          main.exe --json E2 --cipher chacha20 — seal every workload
                                               store under a real cipher
                                               engine (none | prf_xor |
                                               chacha20); records carry
                                               the engine in "cipher"
          main.exe --json E16 --seal-domains 4 — fan run sealing across
                                               4 domains (E16 is the
                                               seal/unseal throughput
                                               microbench; its records
                                               fill "seal_mb_per_s")
          main.exe --json E2 --profile p.json — also collect telemetry:
                                               per-phase latency
                                               percentiles land in the
                                               records and a Chrome
                                               trace-event file at the
                                               given path *)

open Odex_extmem
module Telemetry = Odex_telemetry.Telemetry

type phase_row = {
  ph_label : string;
  ph_count : int;
  ph_total_ms : float;
  ph_p50_us : float;
  ph_p90_us : float;
  ph_p99_us : float;
}

type record = {
  experiment : string;
  name : string;
  sorter : string;  (* "" unless the entry sweeps sorting engines (E15) *)
  backend : string;
  shards : int;
  servers : int;  (* non-colluding servers of a multi-server protocol; 1 otherwise *)
  prefetch : bool;
  journal : bool;
  cipher : string;  (* "none", or the engine sealing this run's stores *)
  n_cells : int;
  b : int;
  m : int;
  reads : int;
  writes : int;
  total_ios : int;
  retries : int;
  trace_length : int;
  spans : int;
  wall_ms : float;
  bytes_moved : int;
  batched_ios : int;
  mb_per_s : float;
  seal_mb_per_s : float;  (* cipher keystream throughput; 0 unless measured (E16) *)
  ok : bool;
  phases : phase_row list;  (* empty unless profiling *)
}

(* Throughput over the sealed payloads actually transferred by counted
   I/Os: MB (10^6 bytes) per wall-clock second. 0 when nothing moved or
   the clock read 0. *)
let throughput ~bytes_moved ~wall_ms =
  if bytes_moved = 0 || wall_ms <= 0. then 0.
  else Float.of_int bytes_moved /. 1e6 /. (wall_ms /. 1e3)

(* Backend selection for the whole JSON run (`--backend mem|file|faulty`);
   storages made through Workloads pick it up via [default_backend], and
   the entries that build their own storage consult it directly. *)
let current_backend = ref "mem"

(* `--shards K` / `--prefetch` for the whole JSON run; every record
   carries both so sweeps over either knob land in one comparable file. *)
let current_shards = ref 1
let current_prefetch = ref false

(* `--journal` runs every selected entry twice — journal off, then on —
   so BENCH_core.json carries the overhead comparison in one file. The
   journal-on records report backend "journaled" (the decorator's kind),
   keeping `"backend":"file"` floor checks scoped to the bare store. *)
let current_journal = ref false

(* `--sorter NAME` narrows E15's engine sweep to one sorter (CI runs one
   matrix leg per engine); the default sweeps all three head-to-head. *)
let current_sorter : string option ref = ref None

(* `--servers K` sets the stripe width of E18's multi-server leg (the
   non-colluding server count the two-server protocol splits its
   schedule across); the single-server baseline leg ignores it. *)
let current_servers = ref 2

(* `--cipher NAME` (none | prf_xor | chacha20) seals every workload
   store under that engine with a fixed benchmark key; every record
   names it. `--seal-domains K` fans run sealing across K domains. *)
let current_cipher = ref "none"
let current_seal_domains = ref 1

let fresh_spec () =
  Odex_obcheck.Registry.backend_spec ~shards:!current_shards ~journal:!current_journal
    !current_backend

(* `--profile PATH` flips this on: workload storages get live sinks (via
   the [Workloads.telemetry] factory), each collected run's sink is kept
   here under its experiment label, and the lot is written as one Chrome
   trace at the end. *)
let profiling = ref false
let profiled : (string * Telemetry.t) list ref = ref []

let phase_rows tel =
  List.map
    (fun (ps : Telemetry.phase_stat) ->
      let h = ps.phase_latency in
      {
        ph_label = ps.phase_label;
        ph_count = ps.phase_count;
        ph_total_ms = Int64.to_float (Telemetry.hist_total_ns h) /. 1e6;
        ph_p50_us = Telemetry.hist_percentile h 50. /. 1e3;
        ph_p90_us = Telemetry.hist_percentile h 90. /. 1e3;
        ph_p99_us = Telemetry.hist_percentile h 99. /. 1e3;
      })
    (Telemetry.phase_stats tel)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e3)

(* Run [f] (returning its success flag) against [s] and harvest the
   storage counters afterwards, then release the backend. *)
let collect ?(sorter = "") ?(servers = 1) ~experiment ~name ~n_cells ~b ~m s f =
  let tel = Storage.telemetry s in
  (* Zero-cost-when-disabled guard: unless `--profile` was given, every
     benched storage must carry the shared no-op sink — anything else
     means instrumentation leaked into the timed path. *)
  if not !profiling then assert (not (Telemetry.enabled tel));
  let ok, wall_ms = timed f in
  if Telemetry.enabled tel then
    profiled := (Printf.sprintf "%s/%s" experiment name, tel) :: !profiled;
  let tr = Storage.trace s in
  let r =
    {
      experiment;
      name;
      sorter;
      backend = Storage.backend_kind s;
      shards = !current_shards;
      servers;
      prefetch = Storage.prefetch_enabled s;
      journal = !current_journal;
      n_cells;
      b;
      m;
      cipher = !current_cipher;
      reads = Stats.reads (Storage.stats s);
      writes = Stats.writes (Storage.stats s);
      total_ios = Stats.total (Storage.stats s);
      retries = Stats.retries (Storage.stats s);
      trace_length = Trace.length tr;
      spans = List.length (Trace.spans tr);
      wall_ms;
      bytes_moved = Stats.bytes_moved (Storage.stats s);
      batched_ios = Stats.batched_ios (Storage.stats s);
      mb_per_s = throughput ~bytes_moved:(Stats.bytes_moved (Storage.stats s)) ~wall_ms;
      seal_mb_per_s = 0.;
      ok;
      phases = (if Telemetry.enabled tel then phase_rows tel else []);
    }
  in
  Storage.close s;
  r

let uniform ~seed ~b ~n =
  let rng = Odex_crypto.Rng.create ~seed in
  let s, a = Workloads.array ~trace:Trace.Digest ~rng ~b ~n Workloads.Uniform in
  (s, a, rng)

(* One entry per measurable E-series experiment; ids match the tables
   printed by [Experiments.all] so `--json E5` instruments the same
   algorithm E5's table describes. *)

let e2 () =
  List.map
    (fun n ->
      let s, a, _ = uniform ~seed:2 ~b:8 ~n in
      collect ~experiment:"E2" ~name:"consolidation" ~n_cells:n ~b:8 ~m:2 s (fun () ->
          ignore (Odex.Consolidation.run ~into:None a);
          true))
    [ 4096; 16384 ]

let e4 () =
  let b = 8 and n = 1024 and m = 64 in
  let s, a = Workloads.consolidated_blocks ~trace:Trace.Digest ~b ~n ~occupied:300 () in
  [
    collect ~experiment:"E4" ~name:"butterfly-compact" ~n_cells:(n * b) ~b ~m s (fun () ->
        ignore (Odex.Butterfly.compact ~m a);
        true);
  ]

let e5 () =
  let b = 8 and n = 2048 and m = 64 in
  let s, a = Workloads.consolidated_blocks ~trace:Trace.Digest ~b ~n ~occupied:256 () in
  let rng = Odex_crypto.Rng.create ~seed:5 in
  [
    collect ~experiment:"E5" ~name:"loose-compaction" ~n_cells:(n * b) ~b ~m s (fun () ->
        (Odex.Loose_compaction.run ~m ~rng ~capacity:512 a).Odex.Loose_compaction.ok);
  ]

let e6 () =
  let b = 8 and n = 1024 and m = 64 in
  let s, a = Workloads.consolidated_blocks ~trace:Trace.Digest ~b ~n ~occupied:128 () in
  let rng = Odex_crypto.Rng.create ~seed:6 in
  [
    collect ~experiment:"E6" ~name:"logstar-compaction" ~n_cells:(n * b) ~b ~m s (fun () ->
        (Odex.Logstar_compaction.run ~m ~rng ~capacity:128 a).Odex.Logstar_compaction.ok);
  ]

let e7 () =
  let b = 8 and n = 8192 and m = 64 in
  let s, a, rng = uniform ~seed:7 ~b ~n in
  [
    collect ~experiment:"E7" ~name:"selection" ~n_cells:n ~b ~m s (fun () ->
        (Odex.Selection.select ~m ~rng ~k:(n / 2) a).Odex.Selection.ok);
  ]

let e8 () =
  let b = 8 and n = 8192 and m = 64 in
  let s, a, rng = uniform ~seed:8 ~b ~n in
  [
    collect ~experiment:"E8" ~name:"quantiles-q4" ~n_cells:n ~b ~m s (fun () ->
        (Odex.Quantiles.run ~m ~rng ~q:4 a).Odex.Quantiles.ok);
  ]

let e9 () =
  let b = 8 and n = 8192 and m = 64 in
  let s, a, rng = uniform ~seed:9 ~b ~n in
  [
    collect ~experiment:"E9" ~name:"sort-thm21" ~n_cells:n ~b ~m s (fun () ->
        (Odex.Sort.run ~sweep:false ~m ~rng a).Odex.Sort.ok);
  ]

let e10 () =
  let words = 1024 and m = 64 in
  let s =
    Storage.create ~telemetry:(!Workloads.telemetry ()) ~trace_mode:Trace.Digest
      ~prefetch:!current_prefetch ~backend:(fresh_spec ()) ~block_size:4 ()
  in
  let rng = Odex_crypto.Rng.create ~seed:10 in
  [
    collect ~experiment:"E10" ~name:"hier-oram-64-accesses" ~n_cells:words ~b:4 ~m s (fun () ->
        let t = Odex_oram.Hierarchical_oram.init ~m ~rng s ~values:(Array.make words 0) in
        for i = 1 to 64 do
          ignore (Odex_oram.Hierarchical_oram.read t (i mod words))
        done;
        true);
  ]

(* E11's table is the obliviousness audit; the JSON form re-runs the
   obcheck pair tests and reports run A's counters plus the verdict. *)
let e11 () =
  List.map
    (fun (e : Odex_obcheck.Registry.entry) ->
      let spec = fresh_spec () in
      let (o : Odex_obcheck.Pairtest.outcome), wall_ms =
        timed (fun () ->
            Odex_obcheck.Pairtest.check ~backend:spec ~prefetch:!current_prefetch
              ~pair:(Odex_obcheck.Registry.pair_mode e)
              ~multi_server:(Odex_obcheck.Registry.multi_server e) e.subject
              ~n_cells:e.n_cells ~b:e.b ~m:e.m)
      in
      Storage.remove_spec_files spec;
      let a = o.run_a in
      {
        experiment = "E11";
        name = "pair-" ^ e.subject.Odex_obcheck.Pairtest.name;
        sorter = "";
        backend = o.Odex_obcheck.Pairtest.backend;
        shards = !current_shards;
        servers = 1;
        prefetch = !current_prefetch;
        journal = !current_journal;
        cipher = !current_cipher;
        n_cells = e.n_cells;
        b = e.b;
        m = e.m;
        reads = a.Odex_obcheck.Pairtest.reads;
        writes = a.Odex_obcheck.Pairtest.writes;
        total_ios = a.Odex_obcheck.Pairtest.reads + a.Odex_obcheck.Pairtest.writes;
        retries = a.Odex_obcheck.Pairtest.retries;
        trace_length = a.Odex_obcheck.Pairtest.trace_length;
        spans = a.Odex_obcheck.Pairtest.span_count;
        wall_ms;
        bytes_moved = a.Odex_obcheck.Pairtest.bytes_moved;
        batched_ios = a.Odex_obcheck.Pairtest.batched_ios;
        mb_per_s = throughput ~bytes_moved:a.Odex_obcheck.Pairtest.bytes_moved ~wall_ms;
        seal_mb_per_s = 0.;
        ok = o.oblivious;
        (* Pair runs build their own storages; the profile covers the
           workload entries, not the audit. *)
        phases = [];
      })
    Odex_obcheck.Registry.all

(* E15: sorting-engine head-to-head. The same uniform workload through
   each registered out-of-core sorter (Batcher's bitonic network,
   columnsort, bucket oblivious sort), so the record file carries the
   crossover data EXPERIMENTS.md summarises. Every record names its
   engine in the [sorter] field; the floor check keys on it. m = 128
   keeps the default-Z bucket geometry feasible (4*zb + 2 = 114 blocks
   at B = 8) — at m = 64 the bucket engine would publicly fall back to
   the windowed bitonic network and the record would mislabel it. *)
let e15 () =
  let b = 8 and m = 128 in
  (* Uncounted sortedness sweep: unchecked peeks keep the verification
     out of the benched I/O counters and trace. *)
  let sorted a =
    let s = Ext_array.storage a in
    let prev = ref None and ok = ref true in
    for i = 0 to Ext_array.blocks a - 1 do
      List.iter
        (fun (it : Cell.item) ->
          (match !prev with Some p when p > it.key -> ok := false | _ -> ());
          prev := Some it.key)
        (Block.items (Storage.unchecked_peek s (Ext_array.addr a i)))
    done;
    !ok
  in
  (* Columnsort's single-level geometry caps N at ~M^{3/2}; sizes past
     the cap are skipped for that engine rather than recorded as
     failures (the cap is public geometry, not a sorting defect). *)
  let feasible name n =
    name <> "columnsort" || Odex_sortnet.Columnsort.plan ~n_cells:n ~b ~m <> None
  in
  List.concat_map
    (fun name ->
      List.filter_map
        (fun n ->
          if not (feasible name n) then None
          else begin
            let s, a, _ = uniform ~seed:13 ~b ~n in
            let eng = Option.get (Odex_sortnet.Ext_sort.find name) in
            Some
              (collect ~sorter:name ~experiment:"E15"
                 ~name:(Printf.sprintf "sort-%s-%d" name n)
                 ~n_cells:n ~b ~m s
                 (fun () ->
                   match Odex_sortnet.Ext_sort.run eng ~m a with
                   | () -> sorted a
                   | exception Odex_sortnet.Bucket_sort.Overflow _ -> false))
          end)
        (* 1280 cells = 160 blocks is the smallest out-of-core point at
           m = 128: it brackets the engines' crossover from below. *)
        [ 1280; 2048; 8192; 32768; 131072 ])
    (match !current_sorter with
    | Some name -> [ name ]
    | None -> [ "batcher"; "columnsort"; "bucket" ])

(* E16: seal/unseal throughput microbench. One record per cipher engine:
   a mem-backed store (so the device is not the bottleneck) streams runs
   through write_many/read_many while a private live telemetry sink
   times the Seal/Unseal ops Storage reports under the "cipher" pseudo
   backend. [seal_mb_per_s] is keystream throughput — plaintext bytes
   per second of in-cipher wall time — the number the engine choice
   actually moves; [mb_per_s] stays the end-to-end transfer rate. This
   entry builds its records directly (its sink is always live, which
   [collect]'s zero-cost-when-disabled guard would reject). *)
let e16 () =
  let b = 8 and run_blocks = 256 and rounds = 24 in
  List.map
    (fun engine ->
      let tel = Telemetry.create () in
      let s =
        Storage.create
          ~cipher:(Odex_crypto.Cipher.key_of_int 0x5ea1)
          ~cipher_engine:engine ~seal_domains:!current_seal_domains ~telemetry:tel
          ~trace_mode:Trace.Digest ~backend:Storage.Mem ~block_size:b ()
      in
      let base = Storage.alloc s run_blocks in
      let blks =
        Array.init run_blocks (fun i ->
            let blk = Block.make b in
            for j = 0 to b - 1 do
              blk.(j) <- Cell.item ~tag:j ~key:((i * b) + j) ~value:i ()
            done;
            blk)
      in
      let ok, wall_ms =
        timed (fun () ->
            for _ = 1 to rounds do
              Storage.write_many s base blks;
              ignore (Storage.read_many s base run_blocks)
            done;
            true)
      in
      (* Keystream throughput from the cipher pseudo-backend's op rows:
         plaintext bytes over in-cipher nanoseconds, both seal and
         unseal legs pooled. *)
      let cipher_bytes, cipher_ns =
        List.fold_left
          (fun (bts, ns) (st : Telemetry.op_stat) ->
            match st.op with
            | Telemetry.Seal | Telemetry.Unseal when st.op_backend = "cipher" ->
                (bts + st.op_bytes, Int64.add ns (Telemetry.hist_total_ns st.latency))
            | _ -> (bts, ns))
          (0, 0L) (Telemetry.op_stats tel)
      in
      let seal_mb_per_s =
        if cipher_bytes = 0 || cipher_ns = 0L then 0.
        else Float.of_int cipher_bytes /. 1e6 /. (Int64.to_float cipher_ns /. 1e9)
      in
      let bytes_moved = Stats.bytes_moved (Storage.stats s) in
      let r =
        {
          experiment = "E16";
          name =
            Printf.sprintf "seal-roundtrip-%s-d%d"
              (Odex_crypto.Cipher.engine_name engine)
              !current_seal_domains;
          sorter = "";
          backend = Storage.backend_kind s;
          shards = 1;
          servers = 1;
          prefetch = false;
          journal = false;
          cipher = Odex_crypto.Cipher.engine_name engine;
          n_cells = run_blocks * b;
          b;
          m = 2;
          reads = Stats.reads (Storage.stats s);
          writes = Stats.writes (Storage.stats s);
          total_ios = Stats.total (Storage.stats s);
          retries = Stats.retries (Storage.stats s);
          trace_length = Trace.length (Storage.trace s);
          spans = List.length (Trace.spans (Storage.trace s));
          wall_ms;
          bytes_moved;
          batched_ios = Stats.batched_ios (Storage.stats s);
          mb_per_s = throughput ~bytes_moved ~wall_ms;
          seal_mb_per_s;
          ok;
          phases = [];
        }
      in
      Storage.close s;
      r)
    [ Odex_crypto.Cipher.Prf_xor; Odex_crypto.Cipher.Chacha20 ]

(* E18: the multi-server model exploit, head to head. The same
   compaction workload at equal (N, B, M), measured twice: the classical
   single-server tight compaction on the selected backend, then the
   two-server protocol on a K-stripe of it (K from `--servers`, default
   2). The protocol's whole point is that splitting the schedule across
   non-colluding servers buys strictly fewer I/Os — 3(N/B) + 3cap
   against the butterfly's 2(N/B)(1 + phases) — so the two records in
   BENCH_core.json must show [total_ios] strictly below the baseline. *)
let e18 () =
  let b = 8 and m = 64 and n_blocks = 1024 in
  let n_cells = n_blocks * b in
  (* One third occupied against a half-capacity target: the butterfly's
     cost is fixed by shape (2(N/B)(1 + phases), capacity-blind), while
     the two-server schedule scales with the target — 3(N/B) + 3cap. At
     m = 64 the butterfly needs 2 phases, so the margin is 6144 vs 4608. *)
  let capacity = n_blocks / 2 in
  let cells =
    Array.init n_cells (fun idx ->
        if idx / b mod 3 = 0 then Cell.item ~key:idx ~value:idx () else Cell.empty)
  in
  let mk spec =
    Storage.create ~telemetry:(!Workloads.telemetry ()) ~trace_mode:Trace.Digest
      ~prefetch:!current_prefetch ~backend:spec ~block_size:b ()
  in
  let single =
    let spec = fresh_spec () in
    let s = mk spec in
    let a = Ext_array.of_cells s ~block_size:b cells in
    let r =
      collect ~experiment:"E18" ~name:"tight-compaction-1server" ~n_cells ~b ~m s
        (fun () -> (Odex.Compaction.tight ~m ~capacity_blocks:capacity a).Odex.Compaction.ok)
    in
    Storage.remove_spec_files spec;
    r
  in
  let k = max 2 !current_servers in
  let multi =
    let spec =
      Odex_obcheck.Registry.backend_spec ~shards:k ~journal:!current_journal
        !current_backend
    in
    let s = mk spec in
    let a = Ext_array.of_cells s ~block_size:b cells in
    let r =
      collect ~servers:k ~experiment:"E18"
        ~name:(Printf.sprintf "tight-compaction-%dserver" k)
        ~n_cells ~b ~m s
        (fun () ->
          (Odex.Twoserver_compaction.run ~m ~capacity_blocks:capacity a)
            .Odex.Twoserver_compaction.ok)
    in
    Storage.remove_spec_files spec;
    r
  in
  if multi.total_ios >= single.total_ios then
    Printf.eprintf
      "warning: E18 two-server compaction (%d I/Os) not below single-server (%d I/Os)\n"
      multi.total_ios single.total_ios;
  [ single; multi ]

let entries =
  [
    ("E2", e2); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7); ("E8", e8);
    ("E9", e9); ("E10", e10); ("E11", e11); ("E15", e15); ("E16", e16); ("E18", e18);
  ]

let json_of_phase p =
  Printf.sprintf
    "{\"label\":%S,\"count\":%d,\"total_ms\":%.3f,\"p50_us\":%.2f,\"p90_us\":%.2f,\"p99_us\":%.2f}"
    p.ph_label p.ph_count p.ph_total_ms p.ph_p50_us p.ph_p90_us p.ph_p99_us

let json_of_record r =
  Printf.sprintf
    "{\"experiment\":%S,\"name\":%S,\"sorter\":%S,\"backend\":%S,\"shards\":%d,\"servers\":%d,\"prefetch\":%b,\"journal\":%b,\"cipher\":%S,\"n_cells\":%d,\"b\":%d,\"m\":%d,\"reads\":%d,\"writes\":%d,\"total_ios\":%d,\"retries\":%d,\"trace_length\":%d,\"spans\":%d,\"wall_ms\":%.3f,\"bytes_moved\":%d,\"batched_ios\":%d,\"mb_per_s\":%.3f,\"seal_mb_per_s\":%.3f,\"ok\":%b,\"phases\":[%s]}"
    r.experiment r.name r.sorter r.backend r.shards r.servers r.prefetch r.journal r.cipher r.n_cells
    r.b r.m r.reads r.writes r.total_ios r.retries r.trace_length r.spans r.wall_ms
    r.bytes_moved r.batched_ios r.mb_per_s r.seal_mb_per_s r.ok
    (String.concat "," (List.map json_of_phase r.phases))

let run ?(backend = "mem") ?(shards = 1) ?(servers = 2) ?(prefetch = false)
    ?(journal = false) ?(cipher = "none") ?(seal_domains = 1) ?sorter ?profile ids =
  if not (List.mem backend Odex_obcheck.Registry.backend_names) then begin
    Printf.eprintf "unknown backend %S (available: %s)\n" backend
      (String.concat " " Odex_obcheck.Registry.backend_names);
    exit 2
  end;
  (match sorter with
  | Some name when Odex_sortnet.Ext_sort.find name = None ->
      Printf.eprintf
        "unknown sorter %S (available: batcher columnsort bucket bitonic bitonic-windowed \
         cache auto)\n"
        name;
      exit 2
  | _ -> current_sorter := sorter);
  if shards < 1 then begin
    Printf.eprintf "--shards must be >= 1 (got %d)\n" shards;
    exit 2
  end;
  if servers < 2 then begin
    Printf.eprintf "--servers must be >= 2 (got %d)\n" servers;
    exit 2
  end;
  current_servers := servers;
  if seal_domains < 1 then begin
    Printf.eprintf "--seal-domains must be >= 1 (got %d)\n" seal_domains;
    exit 2
  end;
  (match cipher with
  | "none" -> ()
  | "prf_xor" | "chacha20" ->
      (* A fixed benchmark key: sealing overhead is what's measured, not
         key management. *)
      Workloads.cipher := Some (Odex_crypto.Cipher.key_of_int 0x0dec);
      Workloads.cipher_engine :=
        (if cipher = "chacha20" then Odex_crypto.Cipher.Chacha20
         else Odex_crypto.Cipher.Prf_xor)
  | other ->
      Printf.eprintf "unknown cipher %S (available: none prf_xor chacha20)\n" other;
      exit 2);
  current_cipher := cipher;
  current_seal_domains := seal_domains;
  Workloads.seal_domains := seal_domains;
  current_backend := backend;
  current_shards := shards;
  current_prefetch := prefetch;
  Workloads.prefetch := prefetch;
  Workloads.default_backend := fresh_spec;
  (match profile with
  | None -> ()
  | Some _ ->
      profiling := true;
      Workloads.telemetry := Telemetry.create);
  List.iter
    (fun id ->
      if not (List.mem_assoc id entries) then
        Printf.eprintf "warning: no JSON entry for %s (available: %s)\n" id
          (String.concat " " (List.map fst entries)))
    ids;
  let want id = ids = [] || List.mem id ids in
  let pass jrnl =
    current_journal := jrnl;
    List.concat_map (fun (id, f) -> if want id then f () else []) entries
  in
  (* With --journal, the baseline pass runs first so the floor-checked
     bare-backend records are unchanged; the journal-on pass appends its
     own records (backend "journaled") for the overhead comparison. *)
  let records = if journal then pass false @ pass true else pass false in
  Workloads.cleanup ();
  (match profile with
  | None -> ()
  | Some path ->
      Telemetry.write_chrome ~path (List.rev !profiled);
      Printf.printf "wrote %s (%d profiled runs, Chrome trace-event JSON)\n" path
        (List.length !profiled));
  let oc = open_out "BENCH_core.json" in
  output_string oc "{\n  \"schema\": \"odex-bench/9\",\n  \"records\": [\n";
  List.iteri
    (fun i r ->
      output_string oc "    ";
      output_string oc (json_of_record r);
      if i < List.length records - 1 then output_string oc ",";
      output_string oc "\n")
    records;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_core.json (%d records)\n" (List.length records)
