(* One function per experiment of the DESIGN.md index (E1–E17; E16 lives in json_bench.ml). Each
   prints the table(s) EXPERIMENTS.md records. *)

open Odex_extmem
open Odex

let rng_of seed = Odex_crypto.Rng.create ~seed

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1: the butterfly compaction network. *)

let e1 () =
  (* The exact instance of the paper's Figure 1. *)
  let s = Storage.create ~trace_mode:Trace.Off ~block_size:2 () in
  let a = Ext_array.create s ~blocks:16 in
  List.iter
    (fun p ->
      Storage.unchecked_poke s (Ext_array.addr a p)
        [| Cell.item ~key:p ~value:p (); Cell.item ~key:p ~value:1 () |])
    [ 2; 4; 5; 9; 12; 13; 15 ];
  let levels = Butterfly.naive_levels a in
  let rows =
    List.mapi
      (fun i row ->
        Table.fint i
        :: List.map (fun d -> if d < 0 then "." else string_of_int d) row)
      levels
  in
  Table.print ~title:"E1 Figure 1: butterfly network, remaining-distance labels per level"
    ~header:("level" :: List.init 16 (fun i -> Printf.sprintf "c%d" i))
    rows;
  Table.note
    "  occupied-label rows must read 2 3 3 6 8 8 9 / 2 2 2 6 8 8 8 / 0 0 0 4 8 8 8 /\n\
    \  0 0 0 0 8 8 8 / 0 0 0 0 0 0 0  (the figure's numbers)\n";
  (* Lemma 5 on random instances: the router raises on any collision. *)
  let rng = rng_of 11 in
  let trials = 200 in
  let collisions = ref 0 in
  for _ = 1 to trials do
    let n = 2 + Odex_crypto.Rng.int rng 120 in
    let occ = List.filter (fun _ -> Odex_crypto.Rng.bool rng) (List.init n (fun i -> i)) in
    let _, arr = Workloads.consolidated_blocks ~b:2 ~n ~occupied:0 () in
    List.iteri
      (fun j p ->
        Storage.unchecked_poke (Ext_array.storage arr) (Ext_array.addr arr p)
          [| Cell.item ~key:j ~value:j (); Cell.empty |])
      occ;
    try ignore (Butterfly.compact ~m:5 arr)
    with Butterfly.Collision _ -> incr collisions
  done;
  Table.note "  Lemma 5 check: %d collisions in %d random routings (must be 0)\n" !collisions
    trials

(* ------------------------------------------------------------------ *)
(* E2 — Lemma 3: consolidation costs exactly 2·(N/B) I/Os, flat in R. *)

let e2 () =
  let b = 8 in
  let rows =
    List.concat_map
      (fun n_cells ->
        List.map
          (fun density ->
            let n_blocks = Emodel.ceil_div n_cells b in
            let rng = rng_of 2 in
            let s, a = Workloads.array ~rng ~b ~n:n_cells Workloads.Uniform in
            let pred (it : Cell.item) = it.key mod 100 < density in
            ignore (Consolidation.run ~distinguished:pred ~into:None a);
            [
              Table.fint n_cells;
              Printf.sprintf "%d%%" density;
              Table.fint (Workloads.io s);
              Table.fint (2 * n_blocks);
            ])
          [ 1; 25; 50; 100 ])
      [ 4096; 16384; 65536 ]
  in
  Table.print ~title:"E2 Lemma 3: consolidation I/Os (must equal 2*ceil(N/B), flat in R)"
    ~header:[ "N cells"; "R/N"; "I/Os"; "2*N/B" ]
    rows

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 4: sparse IBLT compaction. *)

let e3 () =
  let b = 8 in
  let n = 512 in
  let rows =
    List.map
      (fun r ->
        let s, a = Workloads.consolidated_blocks ~b ~n ~occupied:r () in
        let out =
          Sparse_compaction.run ~m:4096 ~key:(Odex_crypto.Prf.key_of_int r) ~capacity:(r + 2) a
        in
        [
          Table.fint n;
          Table.fint r;
          Table.fint (Workloads.io s);
          Table.fbool out.Sparse_compaction.complete;
        ])
      [ 4; 8; 16; 32; 64 ]
  in
  Table.print
    ~title:"E3 Theorem 4: IBLT sparse compaction (I/Os linear in n, small slope in r)"
    ~header:[ "n blocks"; "r occupied"; "I/Os"; "complete" ]
    rows;
  (* Decode success vs table multiplier delta (Lemma 1's threshold). *)
  let trials = 60 in
  let rows =
    List.map
      (fun mult ->
        let fails = ref 0 in
        for t = 1 to trials do
          let _, a = Workloads.consolidated_blocks ~b ~n:256 ~occupied:24 () in
          let out =
            Sparse_compaction.run ~multiplier:mult ~m:8192
              ~key:(Odex_crypto.Prf.key_of_int ((mult * 1000) + t))
              ~capacity:26 a
          in
          if not out.Sparse_compaction.complete then incr fails
        done;
        [
          Table.fint mult;
          Printf.sprintf "%d/%d" (trials - !fails) trials;
        ])
      [ 1; 2; 3; 4 ]
  in
  Table.print ~title:"E3b Lemma 1 threshold: decode success vs table multiplier (k = 3)"
    ~header:[ "multiplier"; "decodes" ] rows

(* ------------------------------------------------------------------ *)
(* E4 — Theorem 6: butterfly compaction, the log m speedup. *)

let e4 () =
  let b = 4 in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun m ->
            let s, a = Workloads.consolidated_blocks ~b ~n ~occupied:(n / 3) () in
            ignore (Butterfly.compact ~m a);
            let nf = Float.of_int n in
            let naive = nf *. Float.of_int (Emodel.ilog2_ceil n) in
            [
              Table.fint n;
              Table.fint m;
              Table.fint (Workloads.io s);
              Table.fratio (naive /. Float.of_int (Workloads.io s));
            ])
          [ 3; 16; 64; 256 ])
      [ 1024; 4096; 16384 ]
  in
  Table.print
    ~title:
      "E4 Theorem 6: butterfly compaction I/Os; speedup vs n*log2(n) grows with log m"
    ~header:[ "n blocks"; "m"; "I/Os"; "n*lg n / I/Os" ]
    rows

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 8: loose compaction is linear. *)

let e5 () =
  let b = 4 in
  let rows =
    List.map
      (fun n ->
        let r = n / 8 in
        let s, a = Workloads.consolidated_blocks ~b ~n ~occupied:r () in
        let rng = rng_of 5 in
        let out = Loose_compaction.run ~m:64 ~rng ~capacity:(n / 4) a in
        [
          Table.fint n;
          Table.fint r;
          Table.fint (Workloads.io s);
          Table.ffloat (Float.of_int (Workloads.io s) /. Float.of_int n);
          Table.fbool out.Loose_compaction.ok;
        ])
      [ 512; 1024; 2048; 4096; 8192 ]
  in
  Table.print
    ~title:"E5 Theorem 8: loose compaction (I/Os per block must stay ~constant)"
    ~header:[ "n blocks"; "r"; "I/Os"; "I/Os per block"; "ok" ]
    rows

(* ------------------------------------------------------------------ *)
(* E6 — Theorem 9: log* compaction. *)

let e6 () =
  let b = 2 in
  let run ?sparse_threshold n =
    let r = n / 8 in
    let s, a = Workloads.consolidated_blocks ~b ~n ~occupied:r () in
    let rng = rng_of 6 in
    let out = Logstar_compaction.run ?sparse_threshold ~m:32 ~rng ~capacity:(n / 4) a in
    (s, out, r)
  in
  let row ?sparse_threshold n =
    let s, out, r = run ?sparse_threshold n in
    [
      Table.fint n;
      Table.fint r;
      (match sparse_threshold with Some _ -> "forced" | None -> "default");
      Table.fint (Workloads.io s);
      Table.ffloat (Float.of_int (Workloads.io s) /. Float.of_int n);
      Table.fint out.Logstar_compaction.phases;
      Table.fint (Emodel.log_star n);
      Table.fbool out.Logstar_compaction.ok;
    ]
  in
  let rows =
    List.map (fun n -> row n) [ 512; 1024; 2048; 4096 ]
    @ List.map (fun n -> row ~sparse_threshold:0 n) [ 2048; 4096 ]
  in
  Table.print
    ~title:
      "E6 Theorem 9: log* compaction. The tower constants put every feasible n in the\n\
      \   zero-phase regime (the paper's asymptotics start at log n > 32); 'forced' rows\n\
      \   drive the phase machinery with the threshold overridden to 0."
    ~header:[ "n blocks"; "r"; "mode"; "I/Os"; "I/Os per block"; "phases"; "log* n"; "ok" ]
    rows

(* ------------------------------------------------------------------ *)
(* E7 — Theorems 12/13: selection. *)

(* A deliberately NON-oblivious baseline: external-memory quickselect.
   Linear I/Os, but the trace depends on the data. *)
let leaky_quickselect ~rng s a k =
  let b = Ext_array.block_size a in
  let rec go (arr : Ext_array.t) count k =
    if count * 2 <= Ext_array.cells arr || Ext_array.blocks arr <= 4 then begin
      (* small enough: read everything, pick privately *)
      let items = ref [] in
      for i = 0 to Ext_array.blocks arr - 1 do
        Array.iter
          (fun c -> match c with Cell.Empty -> () | Cell.Item it -> items := it :: !items)
          (Ext_array.read_block arr i)
      done;
      let sorted = List.sort (fun (x : Cell.item) y -> compare (x.key, x.tag) (y.key, y.tag)) !items in
      List.nth sorted (k - 1)
    end
    else begin
      (* pick a pivot, partition into two fresh arrays *)
      let pos = Odex_crypto.Rng.int rng count in
      let pivot = ref None in
      let seen = ref 0 in
      for i = 0 to Ext_array.blocks arr - 1 do
        Array.iter
          (fun c ->
            match c with
            | Cell.Empty -> ()
            | Cell.Item it ->
                if !seen = pos then pivot := Some it;
                incr seen)
          (Ext_array.read_block arr i)
      done;
      let p = Option.get !pivot in
      let lo = Ext_array.create s ~blocks:(Ext_array.blocks arr) in
      let hi = Ext_array.create s ~blocks:(Ext_array.blocks arr) in
      let nlo = ref 0 and nhi = ref 0 in
      let lo_blk = ref (Block.make b) and hi_blk = ref (Block.make b) in
      let lo_fill = ref 0 and hi_fill = ref 0 in
      let lo_cursor = ref 0 and hi_cursor = ref 0 in
      let flush which =
        match which with
        | `Lo ->
            Ext_array.write_block lo !lo_cursor !lo_blk;
            incr lo_cursor;
            lo_blk := Block.make b;
            lo_fill := 0
        | `Hi ->
            Ext_array.write_block hi !hi_cursor !hi_blk;
            incr hi_cursor;
            hi_blk := Block.make b;
            hi_fill := 0
      in
      for i = 0 to Ext_array.blocks arr - 1 do
        Array.iter
          (fun c ->
            match c with
            | Cell.Empty -> ()
            | Cell.Item it ->
                if compare (it.key, it.tag) (p.key, p.tag) <= 0 then begin
                  !lo_blk.(!lo_fill) <- Cell.Item it;
                  incr lo_fill;
                  incr nlo;
                  if !lo_fill = b then flush `Lo
                end
                else begin
                  !hi_blk.(!hi_fill) <- Cell.Item it;
                  incr hi_fill;
                  incr nhi;
                  if !hi_fill = b then flush `Hi
                end)
          (Ext_array.read_block arr i)
      done;
      if !lo_fill > 0 then flush `Lo;
      if !hi_fill > 0 then flush `Hi;
      if k <= !nlo then go (Ext_array.sub lo ~off:0 ~len:(max 1 !lo_cursor)) !nlo k
      else go (Ext_array.sub hi ~off:0 ~len:(max 1 !hi_cursor)) !nhi (k - !nlo)
    end
  in
  let count =
    let c = ref 0 in
    for i = 0 to Ext_array.blocks a - 1 do
      c := !c + Block.count_items (Ext_array.read_block a i)
    done;
    !c
  in
  go a count k

let e7 () =
  let b = 8 in
  let m = 64 in
  let rows =
    List.map
      (fun n ->
        let k = n / 2 in
        let io_select ?exponent delta =
          let rng = rng_of 7 in
          let s, a = Workloads.array ~rng ~b ~n Workloads.Uniform in
          let r =
            match delta with
            | None -> Selection.select ?exponent ~m ~rng ~k a
            | Some d -> Selection.select_with_delta ?exponent ~m ~rng ~delta:d ~k a
          in
          (Workloads.io s, r.Selection.ok)
        in
        let io_sort_baseline =
          let rng = rng_of 7 in
          let s, a = Workloads.array ~rng ~b ~n Workloads.Uniform in
          Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m a;
          for i = 0 to Ext_array.blocks a - 1 do
            ignore (Ext_array.read_block a i)
          done;
          Workloads.io s
        in
        let io_leaky =
          let rng = rng_of 7 in
          let s, a = Workloads.array ~rng ~b ~n Workloads.Uniform in
          ignore (leaky_quickselect ~rng s a k);
          Workloads.io s
        in
        let paper_io, ok1 = io_select None in
        let quarter_io, ok2 =
          io_select ~exponent:0.25 (Some (fun s0 -> 3. *. Float.sqrt s0))
        in
        [
          Table.fint n;
          Table.fint paper_io ^ (if ok1 then "" else "*");
          Table.fint quarter_io ^ (if ok2 then "" else "*");
          Table.fint io_sort_baseline;
          Table.fint io_leaky;
          Table.fratio (Float.of_int io_sort_baseline /. Float.of_int quarter_io);
        ])
      [ 4096; 16384; 65536; 262144 ]
  in
  Table.print
    ~title:
      "E7 Theorems 12/13: selection I/Os vs oblivious sort-then-scan and leaky quickselect"
    ~header:
      [ "N cells"; "select e=1/2"; "select e=1/4"; "sort+scan"; "leaky qsel"; "win" ]
    rows;
  Table.note "  (* = a randomized bound tripped; the trace is unchanged)\n"

(* ------------------------------------------------------------------ *)
(* E8 — Theorem 17: quantiles. *)

let e8 () =
  let b = 8 in
  (* m = 64 exercises the paper's easy case ((M/B)^4 >= N/B: sort a
     copy); m = 8 with N/B > 4096 forces the sampling path. *)
  let rows =
    List.concat_map
      (fun (n, m) ->
        List.map
          (fun q ->
            let rng = rng_of 8 in
            let s, a = Workloads.array ~rng ~b ~n Workloads.Uniform in
            let r = Quantiles.run ~m ~rng ~q a in
            [
              Table.fint n;
              Table.fint m;
              (if m * m * m * m >= n / b then "sort" else "sample");
              Table.fint q;
              Table.fint (Workloads.io s);
              Table.ffloat (Float.of_int (Workloads.io s) /. Float.of_int (n / b));
              Table.fbool r.Quantiles.ok;
            ])
          [ 2; 4; 8 ])
      [ (8192, 64); (32768, 64); (65536, 8) ]
  in
  Table.print
    ~title:"E8 Theorem 17: quantiles (I/Os per block roughly flat in N and q)"
    ~header:[ "N cells"; "m"; "path"; "q"; "I/Os"; "I/Os per block"; "ok" ]
    rows

(* ------------------------------------------------------------------ *)
(* E9 — Theorem 21: sorting, the headline. *)

let e9 () =
  let b = 8 in
  let run_sorter name f n m =
    let rng = rng_of 9 in
    let s, a = Workloads.array ~rng ~b ~n Workloads.Uniform in
    f ~rng ~m a;
    (name, Workloads.io s)
  in
  let variants =
    [
      ("thm21", fun ~rng ~m a -> ignore (Sort.run ~sweep:false ~m ~rng a));
      ( "thm21-paper",
        fun ~rng ~m a -> ignore (Sort.run ~sweep:false ~bucket_engine:`Loose ~m ~rng a) );
      ("thm21+sweep", fun ~rng ~m a -> ignore (Sort.run ~sweep:true ~m ~rng a));
      ( "bitonic",
        fun ~rng:_ ~m a -> Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic ~m a );
      ( "bitonic-win",
        fun ~rng:_ ~m a -> Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m a
      );
    ]
  in
  let columnsort_io n m =
    match Odex_sortnet.Columnsort.plan ~n_cells:n ~b ~m with
    | None -> "n/a"
    | Some _ ->
        let rng = rng_of 9 in
        let s, a = Workloads.array ~rng ~b ~n Workloads.Uniform in
        Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.columnsort ~m a;
        Table.fint (Workloads.io s)
  in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun m ->
            let ios = List.map (fun (name, f) -> run_sorter name f n m) variants in
            let n_blocks = n / b in
            let bound = Emodel.sort_io_bound ~n_blocks ~m_blocks:m in
            let get name = List.assoc name ios in
            Table.fint n :: Table.fint m
            :: List.map (fun (_, io) -> Table.fint io) ios
            @ [
                columnsort_io n m;
                Table.fint (Float.to_int bound);
                Table.fratio
                  (Float.of_int (get "bitonic-win") /. Float.of_int (get "thm21"));
              ])
          [ 64; 256; 1024 ])
      [ 8192; 32768; 131072 ]
  in
  Table.print
    ~title:
      "E9 Theorem 21: sorting I/Os vs deterministic baselines (win = bitonic-win / thm21)"
    ~header:
      [
        "N cells"; "m"; "thm21"; "thm21-paper"; "thm21+sweep"; "bitonic"; "bitonic-win";
        "columnsort"; "AV bound"; "win";
      ]
    rows;
  (* Input-shape independence: identical I/O counts across shapes. *)
  let n = 16384 and m = 64 in
  let rows =
    List.map
      (fun shape ->
        let rng = rng_of 9 in
        let s = Storage.create ~trace_mode:Trace.Digest ~block_size:b () in
        let a =
          Ext_array.of_cells s ~block_size:b
            (Workloads.cells_of_keys (Workloads.keys ~rng ~n shape))
        in
        let rng = rng_of 99 in
        ignore (Sort.run ~sweep:false ~m ~rng a);
        [
          Workloads.shape_name shape;
          Table.fint (Workloads.io s);
          Printf.sprintf "%016Lx" (Trace.digest (Storage.trace s));
        ])
      Workloads.[ Uniform; Ascending; Descending; All_equal; Few_distinct ]
  in
  Table.print
    ~title:"E9b shape-independence: same coins, different data => identical traces"
    ~header:[ "input shape"; "I/Os"; "trace digest" ]
    rows

(* ------------------------------------------------------------------ *)
(* E10 — the ORAM corollary: better sorting => cheaper ORAM epochs. *)

let e10 () =
  let b = 4 in
  let per_access n sorter =
    let s = Storage.create ~trace_mode:Trace.Off ~block_size:b () in
    let rng = rng_of 10 in
    let t = Odex_oram.Sqrt_oram.init ~sorter ~m:64 ~rng s ~values:(Array.make n 0) in
    let ops = ref 0 in
    while Odex_oram.Sqrt_oram.epochs t < 2 do
      ignore (Odex_oram.Sqrt_oram.read t (!ops * 13 mod n));
      incr ops
    done;
    Float.of_int (Workloads.io s) /. Float.of_int !ops
  in
  let per_access_linear n =
    let s = Storage.create ~trace_mode:Trace.Off ~block_size:b () in
    let t = Odex_oram.Linear_oram.init s ~values:(Array.make n 0) in
    for i = 1 to 32 do
      ignore (Odex_oram.Linear_oram.read t (i mod n))
    done;
    Float.of_int (Workloads.io s) /. 32.
  in
  (* Hierarchical ORAM: amortized over one full bottom-rebuild cycle. *)
  let per_access_hier n sorter =
    let s = Storage.create ~trace_mode:Trace.Off ~block_size:b () in
    let rng = rng_of 10 in
    let t = Odex_oram.Hierarchical_oram.init ~sorter ~m:64 ~rng s ~values:(Array.make n 0) in
    let z = Odex_oram.Hierarchical_oram.bucket_size t in
    let cycle = z * (1 lsl (Odex_oram.Hierarchical_oram.levels t - 1)) in
    let ops = min 4096 cycle in
    for i = 1 to ops do
      ignore (Odex_oram.Hierarchical_oram.read t (i * 13 mod n))
    done;
    Float.of_int (Workloads.io s) /. Float.of_int ops
  in
  let rows =
    List.map
      (fun n ->
        let lin = per_access_linear n in
        let naive = per_access n Odex_sortnet.Ext_sort.bitonic in
        let win = per_access n Odex_sortnet.Ext_sort.bitonic_windowed in
        let hnaive = per_access_hier n Odex_sortnet.Ext_sort.bitonic in
        let hwin = per_access_hier n Odex_sortnet.Ext_sort.bitonic_windowed in
        [
          Table.fint n;
          Table.ffloat lin;
          Table.ffloat naive;
          Table.ffloat win;
          Table.fratio (naive /. win);
          Table.ffloat hnaive;
          Table.ffloat hwin;
          Table.fratio (hnaive /. hwin);
        ])
      [ 1024; 4096; 16384 ]
  in
  Table.print
    ~title:
      "E10 ORAM corollary: amortized I/Os per access by reshuffle/rebuild sorter\n\
      \   (the naive/windowed ratios are the paper's log-factor ORAM improvement)"
    ~header:
      [
        "n words"; "linear"; "sqrt naive"; "sqrt win"; "sqrt ratio"; "hier naive"; "hier win";
        "hier ratio";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E11 — the obliviousness audit across all algorithms. *)

let e11 () =
  let rng = rng_of 11 in
  let inputs = Oblivious.input_classes ~rng ~n:960 in
  let subjects =
    [
      { Oblivious.name = "consolidation"; run = (fun _ _ a -> ignore (Consolidation.run ~into:None a)) };
      { Oblivious.name = "butterfly"; run = (fun _ _ a ->
            let d = Consolidation.run ~into:None a in
            ignore (Butterfly.compact ~m:8 d)) };
      { Oblivious.name = "sparse-compaction"; run = (fun _ _ a ->
            let d = Consolidation.run ~into:None a in
            ignore (Sparse_compaction.run ~m:4096 ~key:(Odex_crypto.Prf.key_of_int 1)
                      ~capacity:(Ext_array.blocks d) d)) };
      { Oblivious.name = "loose-compaction"; run = (fun rng _ a ->
            let d = Consolidation.run ~into:None a in
            ignore (Loose_compaction.run ~m:64 ~rng ~capacity:(Ext_array.blocks d / 4) d)) };
      { Oblivious.name = "logstar-compaction"; run = (fun rng _ a ->
            let d = Consolidation.run ~into:None a in
            ignore (Logstar_compaction.run ~m:64 ~rng ~capacity:(Ext_array.blocks d / 4) d)) };
      { Oblivious.name = "selection"; run = (fun rng _ a ->
            ignore (Selection.select ~m:16 ~rng ~k:100 a)) };
      { Oblivious.name = "quantiles"; run = (fun rng _ a ->
            ignore (Quantiles.run ~m:16 ~rng ~q:3 a)) };
      { Oblivious.name = "sort-thm21"; run = (fun rng _ a -> ignore (Sort.run ~m:16 ~rng a)) };
      { Oblivious.name = "sort-bitonic"; run = (fun _ _ a ->
            Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:16 a) };
      (* Leaky baselines that must FAIL the audit. *)
      { Oblivious.name = "leaky-quickselect (baseline)"; run = (fun rng s a ->
            ignore (leaky_quickselect ~rng s a 100)) };
    ]
  in
  let rows =
    List.map
      (fun subject ->
        let report = Oblivious.audit ~b:4 ~inputs subject in
        let lengths =
          List.map (fun o -> string_of_int o.Oblivious.length) report.Oblivious.observations
        in
        [
          report.Oblivious.subject;
          String.concat "/" lengths;
          (if report.Oblivious.oblivious then "OBLIVIOUS" else "LEAKS");
        ])
      subjects
  in
  Table.print
    ~title:"E11 obliviousness audit: fixed coins, 5 contrasting inputs (960 cells)"
    ~header:[ "algorithm"; "I/Os per input class"; "verdict" ]
    rows

(* ------------------------------------------------------------------ *)
(* E12 — Lemma 1: IBLT decode success vs load. *)

let e12 () =
  let n = 60 in
  let trials = 120 in
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun load_pct ->
            (* m = n / load *)
            let size = max k (n * 100 / load_pct) in
            let ok = ref 0 in
            for t = 1 to trials do
              let tbl =
                Odex_iblt.Iblt.create ~k ~size (Odex_crypto.Prf.key_of_int ((k * 10000) + t))
              in
              for x = 0 to n - 1 do
                Odex_iblt.Iblt.insert tbl ~key:x ~value:x
              done;
              let _, complete = Odex_iblt.Iblt.list_entries tbl in
              if complete then incr ok
            done;
            [
              Table.fint k;
              Printf.sprintf "%d%%" load_pct;
              Table.fint size;
              Table.fprob (Float.of_int !ok /. Float.of_int trials);
            ])
          [ 20; 40; 60; 80; 90; 95 ])
      [ 3; 4; 5 ]
  in
  Table.print
    ~title:
      "E12 Lemma 1: IBLT listEntries success rate vs load n/m (sharp threshold near 81%%/77%%/70%% for k=3/4/5)"
    ~header:[ "k"; "load n/m"; "m cells"; "success" ]
    rows

(* ------------------------------------------------------------------ *)
(* E13 — Lemmas 22/23: Chernoff calculators vs Monte-Carlo. *)

let e13 () =
  let rng = rng_of 13 in
  let trials = 20000 in
  (* Lemma 22: binomial tail. *)
  let rows22 =
    List.map
      (fun (n, p, gamma) ->
        let mu = Float.of_int n *. p in
        let bound = Bounds.binomial_tail_lemma22 ~gamma ~mu in
        let hits = ref 0 in
        for _ = 1 to trials do
          let x = ref 0 in
          for _ = 1 to n do
            if Odex_crypto.Rng.bernoulli rng p then incr x
          done;
          if Float.of_int !x > gamma *. mu then incr hits
        done;
        let emp = Float.of_int !hits /. Float.of_int trials in
        [
          Printf.sprintf "n=%d p=%.2f g=%.1f" n p gamma;
          Table.fprob emp;
          Table.fprob bound;
          Table.fbool (bound >= emp);
        ])
      [ (200, 0.05, 6.0); (500, 0.02, 8.0); (1000, 0.01, 10.0) ]
  in
  Table.print ~title:"E13 Lemma 22: analytic bound vs Monte-Carlo tail (bound must dominate)"
    ~header:[ "parameters"; "empirical"; "bound"; "bound>=emp" ]
    rows22;
  (* Lemma 23: negative binomial tail. *)
  let rows23 =
    List.map
      (fun (n, p, t) ->
        let bound = Bounds.negative_binomial_tail_lemma23 ~n ~p ~t in
        let alpha = 1. /. p in
        let hits = ref 0 in
        for _ = 1 to trials do
          let x = ref 0 in
          for _ = 1 to n do
            x := !x + Odex_crypto.Rng.geometric rng p
          done;
          if Float.of_int !x > (alpha +. t) *. Float.of_int n then incr hits
        done;
        let emp = Float.of_int !hits /. Float.of_int trials in
        [
          Printf.sprintf "n=%d p=%.2f t=%.1f" n p t;
          Table.fprob emp;
          Table.fprob bound;
          Table.fbool (bound >= emp);
        ])
      [ (100, 0.5, 0.5); (100, 0.25, 2.0); (50, 0.1, 12.0) ]
  in
  Table.print ~title:"E13b Lemma 23: negative-binomial tail bound vs Monte-Carlo"
    ~header:[ "parameters"; "empirical"; "bound"; "bound>=emp" ]
    rows23

(* ------------------------------------------------------------------ *)
(* E14 — Lemma 18 / Cor. 19: shuffle-and-deal color balance. *)

let e14 () =
  let b = 4 in
  let n = 4096 in
  let colors = 8 in
  let window = 64 in
  let trials = 30 in
  let max_count = ref 0 in
  let over_quota = ref 0 in
  let quota = (2 * Emodel.ceil_div window colors) + 1 in
  for t = 1 to trials do
    let rng = rng_of (140 + t) in
    let _, a = Workloads.array ~rng ~b ~n Workloads.Ascending in
    let color_of (it : Cell.item) = it.key * colors / n in
    let mono = Multiway.consolidate ~colors ~color_of a in
    Shuffle_deal.shuffle ~rng mono;
    let counts = Shuffle_deal.window_color_counts ~colors ~color_of ~window mono in
    Array.iter
      (fun per_window ->
        Array.iter
          (fun c ->
            if c > !max_count then max_count := c;
            if c > quota then incr over_quota)
          per_window)
      counts
  done;
  let windows_per_trial = Emodel.ceil_div ((n / b) + Multiway.tail_blocks colors) window in
  let total_cells = trials * windows_per_trial * colors in
  Table.print
    ~title:"E14 Lemma 18: post-shuffle color counts per deal window (ascending input!)"
    ~header:[ "window"; "colors"; "quota"; "max count seen"; "over-quota rate" ]
    [
      [
        Table.fint window;
        Table.fint colors;
        Table.fint quota;
        Table.fint !max_count;
        Printf.sprintf "%d/%d" !over_quota total_cells;
      ];
    ];
  Table.note
    "  expected per window per color = %d; the shuffle keeps the worst window near it even\n\
    \  though the input was fully color-sorted.\n"
    (window / colors)

(* ------------------------------------------------------------------ *)
(* E15 — DESIGN.md §12: bucket oblivious sort vs the deterministic
   engines, counted I/Os at a cache where every engine's geometry is
   feasible. Columnsort rows past its one-level capacity print n/a.
   The JSON twin (`--json E15 [--sorter NAME]`) carries the same sweep
   into BENCH_core.json for the CI sorter matrix. *)

let e15 () =
  let b = 8 and m = 128 in
  let engine_io name n =
    match name with
    | "columnsort" when Odex_sortnet.Columnsort.plan ~n_cells:n ~b ~m = None -> "n/a"
    | _ ->
        let rng = rng_of 15 in
        let s, a = Workloads.array ~rng ~b ~n Workloads.Uniform in
        let eng = Option.get (Odex_sortnet.Ext_sort.find name) in
        Odex_sortnet.Ext_sort.run eng ~m a;
        Table.fint (Workloads.io s)
  in
  let engines = [ "batcher"; "columnsort"; "bucket" ] in
  let rows =
    List.map
      (fun n -> Table.fint n :: List.map (fun name -> engine_io name n) engines)
      [ 1280; 2048; 8192; 32768 ]
  in
  Table.print
    ~title:"E15 DESIGN.md 12: sorting-engine head-to-head, counted I/Os (B = 8, m = 128)"
    ~header:("N cells" :: engines) rows;
  Table.note
    "  bucket stays below batcher at every out-of-core N; columnsort leads inside its\n\
    \  one-level capacity (~18.9k cells here) and is n/a beyond it. EXPERIMENTS.md E15\n\
    \  records the crossovers.\n"

(* ------------------------------------------------------------------ *)
(* E17 — DESIGN.md §10: crash-recovery cost against the journal's
   auto-commit threshold. The pending tail is bounded by
   [auto_commit_bytes], so that knob caps both legs of a recovery:
   the redo-replay of a committed-but-unapplied group and the scan that
   discards an unmarked tail. We fill the tail right up to the
   threshold, crash, and time the [replay:true] reopen. *)

let e17 () =
  let payload_size = 256 in
  let record_bytes = 32 + payload_size in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  let payload i =
    Bytes.init payload_size (fun j -> Char.chr ((i + j) land 0xFF))
  in
  let with_temp_pair f =
    let sp = Filename.temp_file "odex_e17" ".store" in
    let jp = Filename.temp_file "odex_e17" ".journal" in
    Fun.protect
      ~finally:(fun () ->
        (try Sys.remove sp with Sys_error _ -> ());
        try Sys.remove jp with Sys_error _ -> ())
      (fun () -> f sp jp)
  in
  (* Largest group that fits under the threshold without tripping an
     auto-commit mid-fill. *)
  let group_of acb = acb / record_bytes in
  let fill j n =
    let b = Journal.backend j in
    Backend.ensure b n;
    for i = 0 to n - 1 do
      Backend.write b i (payload i)
    done;
    Journal.pending_bytes j + Journal.header_bytes
  in
  (* Replay leg: the commit marker lands, then the crash takes out the
     very first in-place apply — reopening must redo every record. *)
  let replay_leg acb =
    with_temp_pair (fun sp jp ->
        let n = group_of acb in
        let inner =
          Backend.crash_after ~ops:0 (Backend.file ~path:sp ~payload_size)
        in
        let j =
          Journal.create ~auto_commit_bytes:acb ~path:jp ~payload_size
            ~durable:false ~replay:false inner
        in
        let journal_bytes = fill j n in
        (match Journal.commit j with
        | () -> failwith "E17: expected the simulated crash"
        | exception Backend.Crashed -> ());
        Journal.abandon j;
        let inner = Backend.file ~path:sp ~payload_size in
        let j, ms =
          time (fun () ->
              Journal.create ~path:jp ~payload_size ~durable:false ~replay:true
                inner)
        in
        let replayed = List.length (Journal.replay_log j) in
        assert (replayed = n);
        Backend.close (Journal.backend j);
        (journal_bytes, replayed, ms))
  in
  (* Discard leg: the same tail but no marker — the reopen only scans
     the tail and truncates it; nothing is re-applied. *)
  let discard_leg acb =
    with_temp_pair (fun sp jp ->
        let n = group_of acb in
        let inner = Backend.file ~path:sp ~payload_size in
        let j =
          Journal.create ~auto_commit_bytes:acb ~path:jp ~payload_size
            ~durable:false ~replay:false inner
        in
        ignore (fill j n);
        Journal.abandon j;
        let inner = Backend.file ~path:sp ~payload_size in
        let j, ms =
          time (fun () ->
              Journal.create ~path:jp ~payload_size ~durable:false ~replay:true
                inner)
        in
        assert (Journal.replay_log j = []);
        Backend.close (Journal.backend j);
        ms)
  in
  let rows =
    List.map
      (fun acb ->
        let journal_bytes, replayed, replay_ms = replay_leg acb in
        let discard_ms = discard_leg acb in
        [
          Printf.sprintf "%d KiB" (acb / 1024);
          Table.fint journal_bytes;
          Table.fint replayed;
          Table.ffloat replay_ms;
          Table.ffloat discard_ms;
        ])
      [ 65536; 262144; 1048576; 4194304 ]
  in
  Table.print
    ~title:
      "E17 DESIGN.md 10: recovery time vs journal tail size (payload 256 B, \
       file store)"
    ~header:
      [ "auto-commit"; "tail bytes"; "replayed"; "replay ms"; "discard ms" ]
    rows;
  Table.note
    "  both recovery legs scale linearly with the tail, which auto_commit_bytes caps;\n\
    \  the 4 MiB default keeps worst-case replay under ~100 ms on a local\n\
    \  file store. Shrink it (odx --auto-commit-bytes) only to tighten the rollback\n\
    \  window on slow media, at the price of more fsync'd commit markers.\n"

let all : (string * (unit -> unit)) list =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7);
    ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12); ("E13", e13);
    ("E14", e14); ("E15", e15); ("E17", e17);
  ]
