(* Input generators shared by the experiments. *)

open Odex_extmem

(* Which physical store freshly created workloads land on. `--backend`
   swaps this factory; each storage gets a fresh spec so file-backed
   stores never share a path. [cleanup] removes any files the factory
   produced. *)
let default_backend : (unit -> Storage.backend_spec) ref = ref (fun () -> Storage.Mem)

(* Which telemetry sink freshly created workloads report to. The default
   factory hands out the shared disabled sink (no instrumentation at
   all); `--profile` swaps in a factory minting one live sink per
   storage. *)
let telemetry : (unit -> Odex_telemetry.Telemetry.t) ref =
  ref (fun () -> Odex_telemetry.Telemetry.disabled)

(* Whether freshly created workload storages run the double-buffered
   prefetch worker (`--prefetch`). Physical-only: traces and stats are
   unchanged, so tables stay comparable across the switch. *)
let prefetch = ref false

(* Sealing knobs (`--cipher`, `--seal-domains`): a benchmark-wide cipher
   key (None = plaintext sealing), the keystream engine under it, and
   the run-seal fan-out. All physical-only; traces stay comparable. *)
let cipher : Odex_crypto.Cipher.key option ref = ref None
let cipher_engine = ref Odex_crypto.Cipher.Prf_xor
let seal_domains = ref 1

let created_specs : Storage.backend_spec list ref = ref []

let fresh_storage ?cipher:per_store ~trace ~b () =
  let spec = !default_backend () in
  created_specs := spec :: !created_specs;
  let key = match per_store with Some _ as k -> k | None -> !cipher in
  Storage.create ?cipher:key ~cipher_engine:!cipher_engine ~seal_domains:!seal_domains
    ~telemetry:(!telemetry ()) ~trace_mode:trace ~prefetch:!prefetch ~backend:spec
    ~block_size:b ()

let cleanup () =
  List.iter Storage.remove_spec_files !created_specs;
  created_specs := []

let cells_of_keys keys =
  Array.mapi (fun i k -> Cell.item ~tag:i ~key:k ~value:(k * 3) ()) keys

type shape = Uniform | Ascending | Descending | All_equal | Few_distinct

let shape_name = function
  | Uniform -> "uniform"
  | Ascending -> "ascending"
  | Descending -> "descending"
  | All_equal -> "all-equal"
  | Few_distinct -> "few-distinct"

let keys ~rng ~n = function
  | Uniform -> Array.init n (fun _ -> Odex_crypto.Rng.int rng (max 1 (4 * n)))
  | Ascending -> Array.init n (fun i -> i)
  | Descending -> Array.init n (fun i -> n - i)
  | All_equal -> Array.make n 7
  | Few_distinct -> Array.init n (fun i -> i mod 5)

(* Fresh storage + array holding [n] cells of the given shape. *)
let array ?(trace = Trace.Off) ~rng ~b ~n shape =
  let s = fresh_storage ~trace ~b () in
  let a = Ext_array.of_cells s ~block_size:b (cells_of_keys (keys ~rng ~n shape)) in
  (s, a)

(* A consolidated-style array: [occupied] of the [n] blocks hold full
   payloads, spread evenly. *)
let consolidated_blocks ?(trace = Trace.Off) ~b ~n ~occupied () =
  let s = fresh_storage ~trace ~b () in
  let a = Ext_array.create s ~blocks:n in
  let stride = max 1 (n / max 1 occupied) in
  let placed = ref 0 in
  let pos = ref 0 in
  while !placed < occupied && !pos < n do
    let seed = !placed + 1 in
    let blk = Array.init b (fun j -> Cell.item ~tag:j ~key:((seed * 100) + j) ~value:seed ()) in
    Storage.unchecked_poke s (Ext_array.addr a !pos) blk;
    incr placed;
    pos := !pos + stride
  done;
  (s, a)

let io s = Stats.total (Storage.stats s)
