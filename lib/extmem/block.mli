(** A block of [B] cells — the unit of I/O in the external-memory model. *)

type t = Cell.t array

val make : int -> t
(** [make b] is a block of [b] empty cells. *)

val copy : t -> t
val size : t -> int

val count_items : t -> int
(** Number of non-empty cells. *)

val is_full : t -> bool
val is_empty : t -> bool

val items : t -> Cell.item list
(** Non-empty cells in block order. *)

val of_items : int -> Cell.item list -> t
(** [of_items b items] packs at most [b] items at the front, empties
    behind. @raise Invalid_argument if more than [b] items given. *)

val sort_in_place : (Cell.t -> Cell.t -> int) -> t -> unit

val encoded_size : int -> int
val encode : t -> bytes
val decode : block_size:int -> bytes -> t

val encode_into : t -> bytes -> int -> unit
(** [encode_into blk buf off] serializes into a caller-owned buffer —
    the allocation-free path {!Storage}'s sealing scratch uses. *)

val decode_from : block_size:int -> bytes -> int -> t
(** [decode_from ~block_size buf off] decodes an image laid down by
    {!encode_into} at [off], without extracting a sub-buffer. *)

val encode_into_big : t -> Odex_crypto.Bigbuf.t -> int -> unit
(** {!encode_into} against the off-heap I/O buffer the cipher and the
    file backend operate on directly: one bounds check for the whole
    block, then unsafe word stores per cell. *)

val decode_from_big : block_size:int -> Odex_crypto.Bigbuf.t -> int -> t

val pp : Format.formatter -> t -> unit
