(** I/O accounting for the external-memory model.

    Every theorem in the paper is an I/O bound, so the simulator counts
    block reads and writes exactly. [span] lets the experiment harness
    attribute I/Os to algorithm phases. *)

type t

val create : unit -> t

val record_read : t -> unit
val record_write : t -> unit
val record_retry : t -> unit

val record_moved : t -> int -> unit
(** Add [n] payload bytes to the transfer tally. *)

val record_batched : t -> int -> unit
(** Add [n] logical I/Os that were served through a multi-block backend
    run. *)

val reads : t -> int
val writes : t -> int
val total : t -> int

val retries : t -> int
(** Failed-and-repeated attempts on counted I/Os (see
    {!Storage.create}'s retry handling). Deliberately excluded from
    {!total}: a retry is a repeat of the same logical I/O, so the
    paper's I/O bounds are asserted against [total] on every backend,
    while the retries remain visible to the adversary in the trace. *)

val bytes_moved : t -> int
(** Sealed-payload bytes transferred by successful counted I/Os —
    [payload_size * total] by construction (failed attempts excluded,
    like {!retries}). The numerator of the bench's [mb_per_s]. *)

val batched_ios : t -> int
(** Counted I/Os that travelled through a multi-block
    {!Storage.read_many}/{!Storage.write_many} backend run rather than a
    per-block call — 0 when batching is disabled. Always [<= total];
    the batching win is visible as this ratio approaching 1 on
    scan-heavy algorithms. *)

val reset : t -> unit

type snapshot = {
  reads : int;
  writes : int;
  retries : int;
  bytes_moved : int;
  batched_ios : int;
}
(** A full counter capture — not just reads/writes. Span deltas would
    otherwise silently drop retries, bytes and batched I/Os, which is
    exactly what a profiler needs per phase. *)

val snapshot : t -> snapshot

val span : t -> (unit -> 'a) -> 'a * snapshot
(** [span t f] runs [f] and returns its result together with the delta
    of {e every} counter over [f] — I/Os, retries, bytes moved, batched
    share. Exception-safe: if [f] raises (e.g. {!Cache.Overflow}
    mid-span), the measured delta is still recorded and retrievable via
    {!last_span} before the exception propagates. *)

val last_span : t -> snapshot option
(** The I/O delta of the most recently completed (or aborted) [span]. *)

val pp : Format.formatter -> t -> unit
