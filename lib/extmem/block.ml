type t = Cell.t array

let make b = Array.make b Cell.empty

let copy = Array.copy
let size = Array.length

let count_items blk =
  Array.fold_left (fun acc c -> if Cell.is_item c then acc + 1 else acc) 0 blk

let is_full blk = count_items blk = Array.length blk
let is_empty blk = count_items blk = 0

let items blk =
  Array.fold_right (fun c acc -> if Cell.is_item c then Cell.get c :: acc else acc) blk []

let of_items b its =
  let blk = make b in
  List.iteri
    (fun i it ->
      if i >= b then invalid_arg "Block.of_items: too many items";
      blk.(i) <- Cell.Item it)
    its;
  blk

let sort_in_place cmp blk = Array.sort cmp blk

let encoded_size b = b * Cell.encoded_size

let encode_into blk buf off =
  Array.iteri (fun i c -> Cell.encode buf (off + (i * Cell.encoded_size)) c) blk

let encode blk =
  let buf = Bytes.create (encoded_size (Array.length blk)) in
  encode_into blk buf 0;
  buf

let decode_from ~block_size buf off =
  if off < 0 || off + encoded_size block_size > Bytes.length buf then
    invalid_arg "Block.decode_from: region out of bounds";
  Array.init block_size (fun i -> Cell.decode buf (off + (i * Cell.encoded_size)))

let decode ~block_size buf =
  if Bytes.length buf <> encoded_size block_size then
    invalid_arg "Block.decode: wrong buffer size";
  decode_from ~block_size buf 0

module Bigbuf = Odex_crypto.Bigbuf

let encode_into_big blk buf off =
  let b = Array.length blk in
  if off < 0 || off + encoded_size b > Bigbuf.length buf then
    invalid_arg "Block.encode_into_big: region out of bounds";
  Array.iteri (fun i c -> Cell.encode_big buf (off + (i * Cell.encoded_size)) c) blk

let decode_from_big ~block_size buf off =
  if off < 0 || off + encoded_size block_size > Bigbuf.length buf then
    invalid_arg "Block.decode_from_big: region out of bounds";
  Array.init block_size (fun i -> Cell.decode_big buf (off + (i * Cell.encoded_size)))

let pp ppf blk =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Cell.pp)
    blk
