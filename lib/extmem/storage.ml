module Bigbuf = Odex_crypto.Bigbuf
module Cipher = Odex_crypto.Cipher

type backend_spec =
  | Mem
  | File of { path : string }
  | Faulty of { inner : backend_spec; seed : int; failure_rate : float; max_burst : int }
  | Sharded of { inner : backend_spec; shards : int; seed : int }
  | Journaled of { inner : backend_spec; path : string; durable : bool }
  | Crashing of { inner : backend_spec; ops : int }

exception Io_failure of { addr : int; attempts : int }

let () =
  Printexc.register_printer (function
    | Io_failure { addr; attempts } ->
        Some
          (Printf.sprintf "Storage.Io_failure(addr=%d after %d attempts)" addr attempts)
    | _ -> None)

module Telemetry = Odex_telemetry.Telemetry

type cipher_state = { st : Cipher.state; mutable next_nonce : int }

(* ---- the oblivious prefetcher.

   One worker domain fetches the {e next} run's raw payloads into a
   spare buffer while the coordinator unseals and consumes the current
   one. The fetch is a physical hint below the accounting layer: nothing
   is counted, traced or unsealed until the coordinator's own
   [read_many] asks for exactly that window, at which point the normal
   per-block trace ops and stats fire as if the bytes had just come off
   the device — so the logical trace with prefetch on is bit-identical
   to the trace with it off (pair-tested). Obliviousness is preserved
   because callers only prefetch windows that are a fixed function of
   the public scan shape (N, M, B — see Ext_array.iter_runs), never of
   data.

   Two buffers alternate ([fetch_idx]): the worker fills one while the
   coordinator drains the other, which is exactly the scan-loop
   discipline (issue run k+1, consume run k). The protocol assumes a
   single coordinator — Storage was never reentrant. [dev_mu] serializes
   every backend access while a prefetcher exists: a faulty backend's
   access counter must advance race-free. When no prefetcher is attached
   the device path takes no lock and is byte-for-byte the old one. ---- *)

type prefetcher = {
  mu : Mutex.t;
  cv : Condition.t;
  mutable job : (int * int) option;  (** Posted window, not yet taken. *)
  mutable inflight : (int * int) option;  (** Window the worker is fetching now. *)
  mutable busy : bool;
  mutable ready : (int * int * int) option;  (** (addr, count, buffer index). *)
  mutable fetch_idx : int;
  bufs : Bigbuf.t ref array;  (** Two alternating fetch targets. *)
  mutable stop : bool;
  mutable dom : unit Domain.t option;
  dev_mu : Mutex.t;  (** Serializes all backend access while prefetch is on. *)
}

(* ---- the seal pool: worker domains for parallel run sealing.

   Sealing a run is pure CPU on disjoint stripes of one off-heap buffer
   — encode the block image, XOR the keystream — with every nonce
   reserved up front, so fanning the stripes across domains changes
   which core ran the arithmetic and nothing else: the sealed bytes, the
   nonce sequence, the trace and the device schedule are bit-identical
   to the serial seal (pair-tested). One mailbox per worker, mutex +
   condvar, exactly the {!Backend.Sharded} protocol; workers are spawned
   lazily on the first run big enough to split and joined on
   [close]/[abandon]. *)

type seal_worker = {
  smu : Mutex.t;
  scv : Condition.t;
  mutable sjob : (unit -> unit) option;
  mutable sresult : exn option option;  (** [Some None] = done, [Some (Some e)] = raised. *)
  mutable sstop : bool;
  mutable sdom : unit Domain.t option;
}

(* ---- per-server traces.

   Under a [Sharded] spec each shard is a separate adversary: a
   non-colluding server sees only the inner-address op sequence routed to
   its own device, never the logical interleaving. The stripe's routing
   is mirrored here — same PRP, same seed — and every counted op (and
   counted retry) is recorded a second time into the trace of the shard
   that served it, at its inner address. Recording happens on the
   coordinator thread only (the stripe's worker domains move payloads,
   never accounting), uncounted ops are excluded exactly as they are from
   the logical trace, and the logical trace itself is untouched — every
   pinned digest survives. *)

type shard_state = {
  sk : int;
  sperm : int array;  (** shard index of lane [l] — [Backend.shard_perm]. *)
  sperm_inv : int array;
  straces : Trace.t array;
}

type t = {
  block_size : int;
  payload_size : int;
  backend : Backend.t;
  kind : string;  (** The device kind underneath any instrumentation shim. *)
  engine : Cipher.engine;
  mutable used : int;
  stats : Stats.t;
  trace : Trace.t;
  tel : Telemetry.t;
  cipher : cipher_state option;
  mutable nonce_reserved : int;
      (** Nonces below this are persisted as potentially spent (the store
          header's high-water mark); a crash can never roll the counter
          back below a nonce that hit the device. *)
  max_retries : int;
  backoff_base : float;
  backoff_cap : float;
  batching : bool;
  journal : Journal.t option;
      (** The write-ahead journal handle, when the spec has a [Journaled]
          layer — owns the crash-atomicity and checkpoint machinery. *)
  pf : prefetcher option;
  shard : shard_state option;
  seal_domains : int;
  seal_workers : seal_worker array;  (** [seal_domains - 1] mailboxes. *)
  mutable seal_spawned : bool;
  seal_buf : Bigbuf.t;  (** One payload: the single-block sealing scratch. *)
  mutable run_buf : Bigbuf.t;  (** Grows to the largest run requested; reused across calls. *)
}

(* The member spec of shard [i] under a [Sharded] spec: file paths get a
   per-shard suffix (each shard is its own device and needs its own
   file) and fault seeds are mixed with the shard index (each device
   runs its own deterministic weather). Nesting Sharded in Sharded is
   rejected — the striping math assumes one flat address refinement. *)
let rec shard_member_spec i = function
  | Mem -> Mem
  | File { path } -> File { path = Printf.sprintf "%s.shard%d" path i }
  | Faulty f ->
      Faulty { f with inner = shard_member_spec i f.inner; seed = f.seed + ((i + 1) * 0x9E37) }
  | Sharded _ -> invalid_arg "Storage: nested Sharded specs are not supported"
  | Journaled _ ->
      (* One journal (and one checkpoint slot) per store: compose the
         journal OUTSIDE the stripe, where it sees logical addresses. *)
      invalid_arg "Storage: Journaled inside Sharded is not supported (journal the stripe)"
  | Crashing _ -> invalid_arg "Storage: Crashing inside Sharded is not supported"

(* Instantiation returns the backend plus the journal handle when the
   spec tree contains a [Journaled] layer ([resume] decides whether that
   journal replays its redo log or starts fresh). *)
let rec instantiate ~payload_size ~engine ~resume ~auto_commit_bytes = function
  | Mem -> (Backend.mem ~payload_size (), None)
  | File { path } -> (Backend.file ~path ~payload_size, None)
  | Faulty { inner; seed; failure_rate; max_burst } ->
      let b, j = instantiate ~payload_size ~engine ~resume ~auto_commit_bytes inner in
      (Backend.faulty { Backend.seed; failure_rate; max_burst } b, j)
  | Crashing { inner; ops } ->
      let b, j = instantiate ~payload_size ~engine ~resume ~auto_commit_bytes inner in
      (Backend.crash_after ~ops b, j)
  | Sharded { inner; shards; seed } ->
      if shards < 1 then invalid_arg "Storage: shards must be >= 1";
      ( Backend.sharded ~seed
          (Array.init shards (fun i ->
               fst
                 (instantiate ~payload_size ~engine ~resume ~auto_commit_bytes
                    (shard_member_spec i inner)))),
        None )
  | Journaled { inner; path; durable } ->
      let b, j = instantiate ~payload_size ~engine ~resume ~auto_commit_bytes inner in
      if Option.is_some j then invalid_arg "Storage: nested Journaled specs are not supported";
      let journal =
        Journal.create ?auto_commit_bytes ~engine ~path ~payload_size ~durable ~replay:resume b
      in
      (Journal.backend journal, Some journal)

(* The (shards, stripe seed) of the spec tree's [Sharded] layer, if any —
   the routing parameters the per-server traces mirror. *)
let rec stripe_of_spec = function
  | Mem | File _ -> None
  | Faulty { inner; _ } | Journaled { inner; _ } | Crashing { inner; _ } ->
      stripe_of_spec inner
  | Sharded { shards; seed; _ } -> Some (shards, seed)

let rec remove_spec_files = function
  | Mem -> ()
  | File { path } -> if Sys.file_exists path then Sys.remove path
  | Faulty { inner; _ } -> remove_spec_files inner
  | Crashing { inner; _ } -> remove_spec_files inner
  | Journaled { inner; path; _ } ->
      if Sys.file_exists path then Sys.remove path;
      remove_spec_files inner
  | Sharded { inner; shards; _ } ->
      for i = 0 to shards - 1 do
        remove_spec_files (shard_member_spec i inner)
      done

(* ---- store header: the sealing state that must survive the process.

   A reopened File store MUST NOT restart the nonce counter: Bob may
   have retained every ciphertext ever written, and re-sealing under an
   already-used nonce is a two-time pad against them. The header
   (persisted through {!Backend.write_meta}, which the file backend
   keeps in its fixed 64-byte file header) records a conservative
   high-water mark: before a nonce at or above the persisted mark is
   used, the mark is pushed [nonce_chunk] ahead and written out — so at
   most one out-of-band metadata write per 2^16 seals, and after a crash
   the store resumes from the persisted mark, skipping at most
   [nonce_chunk] never-used nonces (nonces are a resource of size 2^62;
   burning a few is free, reusing one is fatal). [sync]/[close] persist
   the exact counter, so a cleanly closed store resumes with no gap.

   Version 2 appends the cipher engine id: unsealing ChaCha20 ciphertext
   with the PRF keystream (or vice versa) garbles every block silently,
   so reopening under a different engine than the store was sealed with
   must fail loudly instead. Version 1 headers (24 bytes, pre-engines)
   parse as [Prf_xor] — exactly what sealed them. *)

let header_version = 2L
let nonce_chunk = 1 lsl 16

let build_header t =
  let m = Bytes.create 32 in
  Bytes.set_int64_le m 0 header_version;
  Bytes.set_int64_le m 8 (Int64.of_int t.block_size);
  Bytes.set_int64_le m 16 (Int64.of_int t.nonce_reserved);
  Bytes.set_int64_le m 24 (Cipher.engine_id t.engine);
  m

(* Every path to the device goes through this gate when a prefetcher is
   attached; without one it is a single match. *)
let with_dev t f =
  match t.pf with
  | None -> f ()
  | Some p ->
      Mutex.lock p.dev_mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock p.dev_mu) f

let write_header t = with_dev t (fun () -> Backend.write_meta t.backend (build_header t))

let engine_id_name id =
  match Cipher.engine_of_id id with
  | Some e -> Cipher.engine_name e
  | None -> Printf.sprintf "unknown (id %Ld)" id

(* Returns (nonce high-water, sealed-under engine id). *)
let parse_header ~block_size m =
  if Bytes.length m < 24 then invalid_arg "Storage: corrupt store header";
  let v = Bytes.get_int64_le m 0 in
  if v <> 1L && v <> header_version then
    invalid_arg (Printf.sprintf "Storage: unsupported store header version %Ld" v);
  let bs = Int64.to_int (Bytes.get_int64_le m 8) in
  if bs <> block_size then
    invalid_arg
      (Printf.sprintf "Storage: store was created with block_size %d, reopened with %d" bs
         block_size);
  let hw = Int64.to_int (Bytes.get_int64_le m 16) in
  if hw < 0 then invalid_arg "Storage: corrupt store header (nonce high-water)";
  if v = 1L then (hw, Cipher.engine_id Cipher.Prf_xor)
  else begin
    if Bytes.length m < 32 then invalid_arg "Storage: corrupt store header";
    (hw, Bytes.get_int64_le m 24)
  end

let create ?cipher ?(cipher_engine = Cipher.Prf_xor) ?telemetry ?(trace_mode = Trace.Digest)
    ?(backend = Mem) ?(max_retries = 10) ?(backoff = (1e-6, 1e-4)) ?(batching = true)
    ?(prefetch = false) ?(seal_domains = 1) ?(resume = false) ?journal_auto_commit_bytes
    ~block_size () =
  if block_size < 1 then invalid_arg "Storage.create: block_size must be >= 1";
  if max_retries < 1 then invalid_arg "Storage.create: max_retries must be >= 1";
  if seal_domains < 1 then invalid_arg "Storage.create: seal_domains must be >= 1";
  let backoff_base, backoff_cap = backoff in
  if backoff_base < 0. || backoff_cap < backoff_base then
    invalid_arg "Storage.create: backoff must satisfy 0 <= base <= cap";
  let payload_size = 8 + Block.encoded_size block_size in
  let stripe = stripe_of_spec backend in
  let raw, journal =
    instantiate ~payload_size ~engine:cipher_engine ~resume
      ~auto_commit_bytes:journal_auto_commit_bytes backend
  in
  let kind = Backend.kind raw in
  let tel = Option.value telemetry ~default:Telemetry.disabled in
  (* The timing shim is installed only when the sink collects: a
     disabled sink leaves the backend — and thus the whole I/O path —
     untouched. *)
  let backend = if Telemetry.enabled tel then Backend.instrument tel raw else raw in
  let nonce_hw =
    match Backend.read_meta backend with
    | Some m ->
        let hw, engine_id = parse_header ~block_size m in
        if engine_id <> Cipher.engine_id cipher_engine then
          invalid_arg
            (Printf.sprintf
               "Storage: store is sealed under cipher engine %s, reopened with %s"
               (engine_id_name engine_id)
               (Cipher.engine_name cipher_engine));
        hw
    | None -> 0
  in
  let t =
    {
      block_size;
      payload_size;
      backend;
      kind;
      engine = cipher_engine;
      used = (if resume then Backend.size backend else 0);
      stats = Stats.create ();
      trace = Trace.create ~telemetry:tel trace_mode;
      tel;
      cipher =
        Option.map (fun key -> { st = Cipher.init cipher_engine key; next_nonce = nonce_hw })
          cipher;
      nonce_reserved = nonce_hw;
      max_retries;
      backoff_base;
      backoff_cap;
      batching;
      journal;
      pf =
        (* Prefetch serves whole runs from a buffered fetch, which only
           makes sense under batching semantics; with batching off it is
           silently disabled so the per-block degradation stays exact. *)
        (if prefetch && batching then
           Some
             {
               mu = Mutex.create ();
               cv = Condition.create ();
               job = None;
               inflight = None;
               busy = false;
               ready = None;
               fetch_idx = 0;
               bufs = [| ref (Bigbuf.create 0); ref (Bigbuf.create 0) |];
               stop = false;
               dom = None;
               dev_mu = Mutex.create ();
             }
         else None);
      shard =
        (* Shard traces carry no telemetry sink of their own: phases are
           already timed once, through the logical trace's spans. *)
        Option.map
          (fun (k, seed) ->
            let sperm, sperm_inv = Backend.shard_perm ~shards:k ~seed in
            { sk = k; sperm; sperm_inv; straces = Array.init k (fun _ -> Trace.create trace_mode) })
          stripe;
      seal_domains;
      seal_workers =
        Array.init (seal_domains - 1) (fun _ ->
            {
              smu = Mutex.create ();
              scv = Condition.create ();
              sjob = None;
              sresult = None;
              sstop = false;
              sdom = None;
            });
      seal_spawned = false;
      seal_buf = Bigbuf.create payload_size;
      run_buf = Bigbuf.create 0;
    }
  in
  write_header t;
  t

let block_size t = t.block_size
let capacity t = t.used
let stats t = t.stats
let trace t = t.trace
let telemetry t = t.tel
let backend_kind t = t.kind
let batching t = t.batching
let cipher_engine t = t.engine
let seal_domains t = t.seal_domains
let faults_injected t = Backend.faults_injected t.backend
let scratch_bytes t = Bigbuf.length t.run_buf
let shard_ios t = Backend.shard_io_counts t.backend
let shard_count t = Backend.shard_count t.backend
let shard_traces t = match t.shard with None -> [||] | Some sh -> sh.straces
let prefetch_enabled t = t.pf <> None

(* Mirror of [Backend.Sharded]'s routing: logical block [a] lives on
   shard [perm.((a mod k + a / k) mod k)] at inner address [a / k]. *)
let route sh a = (sh.sperm.(((a mod sh.sk) + (a / sh.sk)) mod sh.sk), a / sh.sk)

let shard_of t a = Option.map (fun sh -> fst (route sh a)) t.shard

let shard_addr t ~shard ~index =
  match t.shard with
  | None -> invalid_arg "Storage.shard_addr: backend is not sharded"
  | Some sh ->
      if shard < 0 || shard >= sh.sk then invalid_arg "Storage.shard_addr: shard out of range";
      if index < 0 then invalid_arg "Storage.shard_addr: negative index";
      (* The lane whose inner run [index] falls on shard [shard]:
         perm ((lane + index) mod k) = shard. *)
      let lane = (((sh.sperm_inv.(shard) - index) mod sh.sk) + sh.sk) mod sh.sk in
      (index * sh.sk) + lane

(* Record a counted op into the serving shard's trace, at the inner
   address that shard's device actually sees. *)
let shard_record t a op_of =
  match t.shard with
  | None -> ()
  | Some sh ->
      let s, inner = route sh a in
      Trace.record sh.straces.(s) (op_of inner)

(* Bracket a public phase across the logical trace {e and} every
   per-shard trace, so shard-level divergence reports name the same
   phases the logical reports do. [Trace.with_span] on the logical trace
   keeps the telemetry mirroring. *)
let with_span t label f =
  match t.shard with
  | None -> Trace.with_span t.trace label f
  | Some sh ->
      Array.iter (fun tr -> Trace.span_enter tr label) sh.straces;
      Fun.protect
        ~finally:(fun () -> Array.iter Trace.span_exit sh.straces)
        (fun () -> Trace.with_span t.trace label f)

(* ---- seal pool workers ---- *)

let rec seal_worker_loop w =
  Mutex.lock w.smu;
  while w.sjob = None && not w.sstop do
    Condition.wait w.scv w.smu
  done;
  if w.sstop then Mutex.unlock w.smu
  else begin
    let f = Option.get w.sjob in
    Mutex.unlock w.smu;
    let r = (try f (); None with e -> Some e) in
    Mutex.lock w.smu;
    w.sjob <- None;
    w.sresult <- Some r;
    Condition.signal w.scv;
    Mutex.unlock w.smu;
    seal_worker_loop w
  end

let spawn_seal_workers t =
  if not t.seal_spawned then begin
    t.seal_spawned <- true;
    Array.iter
      (fun w -> w.sdom <- Some (Domain.spawn (fun () -> seal_worker_loop w)))
      t.seal_workers
  end

let seal_post w f =
  Mutex.lock w.smu;
  w.sjob <- Some f;
  w.sresult <- None;
  Condition.signal w.scv;
  Mutex.unlock w.smu

let seal_await w =
  Mutex.lock w.smu;
  while w.sresult = None do
    Condition.wait w.scv w.smu
  done;
  let r = Option.get w.sresult in
  w.sresult <- None;
  Mutex.unlock w.smu;
  r

let stop_seal_workers t =
  if t.seal_spawned then
    Array.iter
      (fun w ->
        Mutex.lock w.smu;
        w.sstop <- true;
        Condition.signal w.scv;
        Mutex.unlock w.smu;
        match w.sdom with
        | Some d ->
            Domain.join d;
            w.sdom <- None
        | None -> ())
      t.seal_workers

(* Run [f lo hi] over a partition of [0, n) — one contiguous chunk per
   domain when the run is big enough to split, inline otherwise. All
   chunks complete (or raise) before this returns; the first exception
   wins. The partition is a function of [n] and [seal_domains] alone,
   never of data. *)
let parallel_chunks t n f =
  if t.seal_domains <= 1 || n < 2 * t.seal_domains then f 0 n
  else begin
    spawn_seal_workers t;
    let d = t.seal_domains in
    let per = (n + d - 1) / d in
    for i = 1 to d - 1 do
      let lo = i * per and hi = min n ((i + 1) * per) in
      seal_post t.seal_workers.(i - 1) (fun () -> if lo < hi then f lo hi)
    done;
    let inline_exn = (try f 0 (min n per); None with e -> Some e) in
    let worker_exn = ref None in
    for i = 1 to d - 1 do
      match seal_await t.seal_workers.(i - 1) with
      | None -> ()
      | Some e -> if !worker_exn = None then worker_exn := Some e
    done;
    (match inline_exn with Some e -> raise e | None -> ());
    match !worker_exn with Some e -> raise e | None -> ()
  end

(* ---- prefetch worker ---- *)

let pf_loop t p =
  let rec go () =
    Mutex.lock p.mu;
    while p.job = None && not p.stop do
      Condition.wait p.cv p.mu
    done;
    if p.stop then Mutex.unlock p.mu
    else begin
      let ((addr, count) as window) = Option.get p.job in
      p.job <- None;
      p.busy <- true;
      p.inflight <- Some window;
      let idx = p.fetch_idx in
      let bufr = p.bufs.(idx) in
      (* Grown under the sink lock: the coordinator only ever reads the
         other buffer (they alternate, and a ready window is consumed
         before the next hint is posted). *)
      let need = count * t.payload_size in
      if Bigbuf.length !bufr < need then bufr := Bigbuf.create need;
      let target = !bufr in
      Mutex.unlock p.mu;
      let ok =
        Mutex.lock p.dev_mu;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock p.dev_mu)
          (fun () ->
            match
              Backend.read_run t.backend ~addr ~count ~payload:t.payload_size ~buf:target
                ~off:0
            with
            | () -> true
            | exception _ ->
                (* A transient (or anything else) aborts the hint: the
                   coordinator falls back to the counted path, whose own
                   retry engine owns fault handling. *)
                false)
      in
      Mutex.lock p.mu;
      p.busy <- false;
      p.inflight <- None;
      if ok then begin
        p.ready <- Some (addr, count, idx);
        p.fetch_idx <- 1 - idx
      end
      else p.ready <- None;
      Condition.signal p.cv;
      Mutex.unlock p.mu;
      go ()
    end
  in
  go ()

let prefetch t addr n =
  match t.pf with
  | None -> ()
  | Some p ->
      if n > 0 && addr >= 0 && addr + n <= t.used then begin
        (match p.dom with
        | Some _ -> ()
        | None -> p.dom <- Some (Domain.spawn (fun () -> pf_loop t p)));
        Mutex.lock p.mu;
        let covered =
          (match p.ready with Some (a, c, _) -> a = addr && c = n | None -> false)
          || (match p.inflight with Some (a, c) -> a = addr && c = n | None -> false)
          || match p.job with Some (a, c) -> a = addr && c = n | None -> false
        in
        (* One outstanding hint: a busy worker means the caller prefetches
           faster than it consumes, so the new hint is dropped. *)
        if (not covered) && (not p.busy) && p.job = None then begin
          p.job <- Some (addr, n);
          Condition.signal p.cv
        end;
        Mutex.unlock p.mu
      end

(* Take the raw payload buffer for window [addr, n) if it is ready (or
   about to be: an in-flight fetch is waited out, since in the scan
   discipline it is the window about to be consumed). Returns with the
   window cleared — the buffer is valid until the next fetch completes
   into it, i.e. until two more hints are posted, and the caller unseals
   it before posting any. *)
let pf_take t addr n =
  match t.pf with
  | None -> None
  | Some p ->
      Mutex.lock p.mu;
      let rec get () =
        match p.ready with
        | Some (a, c, idx) when a = addr && c = n ->
            p.ready <- None;
            Some !(p.bufs.(idx))
        | _ ->
            if p.busy || p.job <> None then begin
              Condition.wait p.cv p.mu;
              get ()
            end
            else None
      in
      let r = get () in
      Mutex.unlock p.mu;
      r

(* Drop any buffered or in-flight window overlapping [addr, n): called
   before every device write, so a later hit can never serve bytes from
   before the overwrite. Data-independent — it looks only at addresses. *)
let pf_invalidate t addr n =
  match t.pf with
  | None -> ()
  | Some p ->
      Mutex.lock p.mu;
      let overlaps (a, c) = addr < a + c && a < addr + n in
      (match p.job with Some w when overlaps w -> p.job <- None | _ -> ());
      while p.busy && (match p.inflight with Some w -> overlaps w | None -> false) do
        Condition.wait p.cv p.mu
      done;
      (match p.ready with Some (a, c, _) when overlaps (a, c) -> p.ready <- None | _ -> ());
      Mutex.unlock p.mu

let stop_prefetcher t =
  match t.pf with
  | None -> ()
  | Some p -> (
      match p.dom with
      | None -> ()
      | Some d ->
          Mutex.lock p.mu;
          while p.busy do
            Condition.wait p.cv p.mu
          done;
          p.stop <- true;
          Condition.signal p.cv;
          Mutex.unlock p.mu;
          Domain.join d;
          p.dom <- None)

(* Persist the exact counter (not the rounded-up reservation) before the
   device flushes or the descriptor goes away: a cleanly closed store
   reopens with a gap-free nonce stream. *)
let checkpoint_header t =
  (match t.cipher with Some cs -> t.nonce_reserved <- cs.next_nonce | None -> ());
  write_header t

let sync t =
  checkpoint_header t;
  with_dev t (fun () -> Backend.sync t.backend)

let close t =
  stop_prefetcher t;
  stop_seal_workers t;
  checkpoint_header t;
  Backend.close t.backend

(* Simulate a kill: release every descriptor with no header checkpoint,
   no journal commit, no flush — the on-disk state stays exactly as the
   crash point left it. Crash-sweep harness only. *)
let abandon t =
  stop_prefetcher t;
  stop_seal_workers t;
  match t.journal with
  | Some j -> Journal.abandon j
  | None -> Backend.close t.backend

(* ---- journal-backed checkpoints (no-ops on unjournaled stores).

   The slot write commits the journal first, so a checkpoint is also a
   group-commit boundary; the nonce counter is checkpointed exactly (as
   on [sync]/[close]) so a resume after the crash wastes no reservation.
   All of it is out-of-band server state: uncounted, untraced — traces
   are bit-identical with journaling on and off (pair-tested). *)

let journaled t = Option.is_some t.journal

let checkpoint t ~owner ~phase ~cursor =
  match t.journal with
  | None -> ()
  | Some j ->
      checkpoint_header t;
      with_dev t (fun () -> Journal.checkpoint j ~owner ~phase ~cursor)

let checkpoint_clear t ~owner =
  match t.journal with
  | None -> ()
  | Some j ->
      checkpoint_header t;
      with_dev t (fun () -> Journal.clear j ~owner)

let checkpoint_state t ~owner =
  match t.journal with None -> (0, 0) | Some j -> Journal.state j ~owner

let checkpoint_slots t = match t.journal with None -> [] | Some j -> Journal.slots j

(* Bracket a logical group that spans several backend runs (a strided
   cache flush, a split batch) so the journal cannot auto-commit in the
   middle of it: everything inside either commits whole at the next
   commit boundary or rolls back whole on a crash. No-op without a
   journal. Release never commits, so unwinding through a simulated
   crash is safe; a deferred auto-commit fires on the next unheld
   write. *)
let atomically t f =
  match t.journal with
  | None -> f ()
  | Some j ->
      Journal.hold j;
      Fun.protect ~finally:(fun () -> Journal.release j) f

let journal_replay t = match t.journal with None -> [] | Some j -> Journal.replay_log j
let journal_appends t = match t.journal with None -> [] | Some j -> Journal.append_log j
let journal_commits t = match t.journal with None -> 0 | Some j -> Journal.commits j

let ensure_run_buf t n =
  let need = n * t.payload_size in
  if Bigbuf.length t.run_buf < need then
    t.run_buf <- Bigbuf.create (max need (2 * Bigbuf.length t.run_buf))

(* ---- sealed payload: an 8-byte nonce header (-1 = plaintext) followed
   by the encoded (and possibly encrypted) block image. A fixed layout
   keeps every backend address-computable and lets a file store reopen a
   previous run's blocks given the same key.

   Sealing and unsealing run entirely inside caller-owned off-heap
   scratch buffers ([seal_buf] for single blocks, [run_buf] for runs):
   the block image is encoded in place, the cipher XORs the keystream in
   place — through the engine's C core for ChaCha20 — and decoding reads
   straight from the scratch at an offset. No staging copy, no
   per-operation allocation, and the same buffer the backend transfers
   from/to. ---- *)

let plain_nonce = -1L

(* Cipher work is reported to the sink under the pseudo-backend
   "cipher", so a profile attributes keystream time separately from
   device time. Only sealed payloads are timed (plaintext encode/decode
   is codec work, not cipher work), and only when the sink collects. *)
let with_seal_tel t ~op ~blocks f =
  if Telemetry.enabled t.tel && t.cipher <> None then begin
    let t0 = Telemetry.now_ns () in
    let r = f () in
    Telemetry.record_op t.tel ~backend:"cipher" ~op ~blocks
      ~bytes:(blocks * (t.payload_size - 8))
      ~ns:(Int64.sub (Telemetry.now_ns ()) t0);
    r
  end
  else f ()

let seal_into t blk buf off =
  match t.cipher with
  | None ->
      Bigbuf.set64_le buf off plain_nonce;
      Block.encode_into_big blk buf (off + 8)
  | Some cs ->
      let nonce = cs.next_nonce in
      (* Reserve (and persist) ahead of use: the header write lands on
         the device before any payload sealed under [nonce] can. *)
      if nonce >= t.nonce_reserved then begin
        t.nonce_reserved <- nonce + nonce_chunk;
        write_header t
      end;
      cs.next_nonce <- nonce + 1;
      Bigbuf.set64_le buf off (Int64.of_int nonce);
      Block.encode_into_big blk buf (off + 8);
      Cipher.xor_big cs.st ~nonce buf ~off:(off + 8) ~len:(t.payload_size - 8)

let unseal_from t buf off =
  let header = Bigbuf.get64_le buf off in
  if header = plain_nonce then Block.decode_from_big ~block_size:t.block_size buf (off + 8)
  else
    match t.cipher with
    | None -> invalid_arg "Storage: encrypted block but no cipher key"
    | Some cs ->
        Cipher.xor_big cs.st ~nonce:(Int64.to_int header) buf ~off:(off + 8)
          ~len:(t.payload_size - 8);
        Block.decode_from_big ~block_size:t.block_size buf (off + 8)

(* ---- run sealing: the batched counterpart of [seal_into].

   The [n] nonces are reserved up front — block [i] seals under
   [base + i], exactly the sequence the per-block loop would draw — so
   the whole run can be encoded and XORed as equally-spaced regions of
   [run_buf]: one [Cipher.xor_run] per chunk (the ChaCha20 engine
   dispatches 8 regions per SIMD batch), fanned across the seal pool
   when one is attached. Serial and parallel sealing produce the same
   bytes by construction. *)

let seal_run t blks n =
  match t.cipher with
  | None ->
      for i = 0 to n - 1 do
        let off = i * t.payload_size in
        Bigbuf.set64_le t.run_buf off plain_nonce;
        Block.encode_into_big blks.(i) t.run_buf (off + 8)
      done
  | Some cs ->
      let base = cs.next_nonce in
      if base + n > t.nonce_reserved then begin
        t.nonce_reserved <- base + n + nonce_chunk;
        write_header t
      end;
      cs.next_nonce <- base + n;
      with_seal_tel t ~op:Telemetry.Seal ~blocks:n (fun () ->
          parallel_chunks t n (fun lo hi ->
              if lo < hi then begin
                for i = lo to hi - 1 do
                  let off = i * t.payload_size in
                  Bigbuf.set64_le t.run_buf off (Int64.of_int (base + i));
                  Block.encode_into_big blks.(i) t.run_buf (off + 8)
                done;
                let nonces = Array.init (hi - lo) (fun j -> base + lo + j) in
                Cipher.xor_run cs.st ~nonces t.run_buf
                  ~off:((lo * t.payload_size) + 8)
                  ~stride:t.payload_size
                  ~len:(t.payload_size - 8)
              end))

(* Unseal a whole run from [buf] into [out]. When every payload is
   sealed (the steady state of a ciphered store) the nonces come from
   the payload headers and the run opens through the same
   [Cipher.xor_run] fast path, chunk-parallel like [seal_run]; a mix of
   plaintext and sealed blocks (or a cipherless store) falls back to the
   per-block open. *)
let unseal_run t buf n out =
  let all_sealed =
    match t.cipher with
    | None -> false
    | Some _ ->
        let ok = ref true in
        (let i = ref 0 in
         while !ok && !i < n do
           if Bigbuf.get64_le buf (!i * t.payload_size) = plain_nonce then ok := false;
           incr i
         done);
        !ok
  in
  if all_sealed then
    let cs = Option.get t.cipher in
    with_seal_tel t ~op:Telemetry.Unseal ~blocks:n (fun () ->
        parallel_chunks t n (fun lo hi ->
            if lo < hi then begin
              let nonces =
                Array.init (hi - lo) (fun j ->
                    Int64.to_int (Bigbuf.unsafe_get64_le buf ((lo + j) * t.payload_size)))
              in
              Cipher.xor_run cs.st ~nonces buf
                ~off:((lo * t.payload_size) + 8)
                ~stride:t.payload_size
                ~len:(t.payload_size - 8);
              for i = lo to hi - 1 do
                out.(i) <-
                  Block.decode_from_big ~block_size:t.block_size buf
                    ((i * t.payload_size) + 8)
              done
            end))
  else
    for i = 0 to n - 1 do
      out.(i) <- unseal_from t buf (i * t.payload_size)
    done

(* ---- the run engine: every transfer, single-block or batched, goes
   through [run_transfer], which drives the backend's run API and
   resumes after transient faults at the faulting block.

   Failed attempts on counted operations are themselves disk accesses
   Bob observes, so each one is recorded in the trace (and tallied in
   [Stats.retries]); the fault schedule of a faulty backend depends only
   on its access index, never on data, so oblivious algorithms keep
   identical traces with failures enabled. Uncounted (out-of-band)
   operations retry silently: they model the experimenter's view, not
   Alice's protocol.

   [record] fires once per block in address order, exactly where the
   per-block API would have recorded it: blocks transferred before a
   mid-run fault are recorded before the fault's retry op. A batched run
   therefore emits a trace bit-identical to the per-block run it
   replaces, which is what keeps obliviousness checkable by the
   pair-tester with batching on. Per-block attempt counting matches the
   per-block API too: a fresh faulting block restarts at attempt 1. ---- *)

let backoff t attempt =
  let delay = Float.min t.backoff_cap (t.backoff_base *. Float.pow 2. (Float.of_int (attempt - 1))) in
  (* A signal interrupting the sleep ends it early rather than aborting
     the retry (restarting the full delay could livelock under a fast
     signal clock; the backoff is advisory, the retry is not). *)
  if delay > 0. then try Unix.sleepf delay with Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run_transfer t ~counted ~record_retry ~record ~addr ~n ~do_run =
  let fin = addr + n in
  let rec go a attempt =
    if a < fin then
      match do_run ~addr:a ~count:(fin - a) ~off:((a - addr) * t.payload_size) with
      | () -> for i = a to fin - 1 do record i done
      | exception Backend.Transient { addr = fa; _ } ->
          for i = a to fa - 1 do record i done;
          let attempt = if fa > a then 1 else attempt in
          if attempt >= t.max_retries then raise (Io_failure { addr = fa; attempts = attempt });
          Telemetry.add_faults t.tel 1;
          if counted then begin
            Stats.record_retry t.stats;
            Telemetry.add_retries t.tel 1;
            record_retry t fa
          end;
          backoff t attempt;
          go fa (attempt + 1)
  in
  go addr 1

(* The device lock is taken per attempt, not per logical transfer, so
   retry backoff sleeps never hold the device against the prefetcher. *)
let read_run_backend t ~buf ~addr ~count ~off =
  with_dev t (fun () -> Backend.read_run t.backend ~addr ~count ~payload:t.payload_size ~buf ~off)

let write_run_backend t ~buf ~addr ~count ~off =
  with_dev t (fun () ->
      Backend.write_run t.backend ~addr ~count ~payload:t.payload_size ~buf ~off)

let record_read t a =
  Stats.record_read t.stats;
  Stats.record_moved t.stats t.payload_size;
  Telemetry.add_ios t.tel 1;
  Telemetry.add_bytes t.tel t.payload_size;
  Trace.record t.trace (Trace.Read a);
  shard_record t a (fun inner -> Trace.Read inner)

let record_write t a =
  Stats.record_write t.stats;
  Stats.record_moved t.stats t.payload_size;
  Telemetry.add_ios t.tel 1;
  Telemetry.add_bytes t.tel t.payload_size;
  Trace.record t.trace (Trace.Write a);
  shard_record t a (fun inner -> Trace.Write inner)

(* A counted retry is a disk access the faulting shard's server observed
   too: it lands in that shard's trace as well as the logical one. *)
let record_retry_read t a =
  Trace.record t.trace (Trace.Retry_read a);
  shard_record t a (fun inner -> Trace.Retry_read inner)

let record_retry_write t a =
  Trace.record t.trace (Trace.Retry_write a);
  shard_record t a (fun inner -> Trace.Retry_write inner)

let transfer_read t ~counted ~record ~addr ~n ~buf =
  run_transfer t ~counted ~record_retry:record_retry_read ~record ~addr ~n
    ~do_run:(fun ~addr ~count ~off -> read_run_backend t ~buf ~addr ~count ~off)

let transfer_write t ~counted ~record ~addr ~n ~buf =
  pf_invalidate t addr n;
  run_transfer t ~counted ~record_retry:record_retry_write ~record ~addr ~n
    ~do_run:(fun ~addr ~count ~off -> write_run_backend t ~buf ~addr ~count ~off)

let alloc t n =
  if n < 0 then invalid_arg "Storage.alloc: negative size";
  let base = t.used in
  if n > 0 then begin
    with_dev t (fun () -> Backend.ensure t.backend (t.used + n));
    t.used <- t.used + n;
    (* Zero-initialization is the server's job and costs no counted I/O;
       retries here stay out of the trace for the same reason. Batched
       runs change neither property: a faulty backend gates once per
       block per attempt whether or not the blocks travel together. *)
    let zero = Block.make t.block_size in
    let chunk = 256 in
    let c0 = min chunk n in
    ensure_run_buf t c0;
    (* The zero image is public — zero-initialization is the server's
       own uncounted work — so fresh blocks carry the plaintext marker
       even on a ciphered store: sealing a constant the adversary
       already computes himself would spend keystream and nonces for
       nothing. [unseal_from] opens the plain marker on any store, so a
       read of a never-written block still decodes to empties. One
       encode + blits fill the run, which stays valid across chunks. *)
    Bigbuf.set64_le t.run_buf 0 plain_nonce;
    Block.encode_into_big zero t.run_buf 8;
    for i = 1 to c0 - 1 do
      Bigbuf.blit t.run_buf 0 t.run_buf (i * t.payload_size) t.payload_size
    done;
    let a = ref base in
    atomically t (fun () ->
        while !a < base + n do
          let c = min chunk (base + n - !a) in
          transfer_write t ~counted:false ~record:(fun _ -> ()) ~addr:!a ~n:c
            ~buf:t.run_buf;
          a := !a + c
        done)
  end;
  base

let check_addr t addr =
  if addr < 0 || addr >= t.used then
    invalid_arg (Printf.sprintf "Storage: address %d out of bounds (capacity %d)" addr t.used)

let check_block t ~who blk =
  if Array.length blk <> t.block_size then invalid_arg (who ^ ": block has wrong size")

let read t addr =
  check_addr t addr;
  transfer_read t ~counted:true ~record:(record_read t) ~addr ~n:1 ~buf:t.seal_buf;
  with_seal_tel t ~op:Telemetry.Unseal ~blocks:1 (fun () -> unseal_from t t.seal_buf 0)

let write t addr blk =
  check_addr t addr;
  check_block t ~who:"Storage.write" blk;
  with_seal_tel t ~op:Telemetry.Seal ~blocks:1 (fun () -> seal_into t blk t.seal_buf 0);
  transfer_write t ~counted:true ~record:(record_write t) ~addr ~n:1 ~buf:t.seal_buf

(* ---- batched logical I/O. One [Trace.Read]/[Write] op and one Stats
   tick per logical block in address order — the same view Bob gets from
   a per-block loop — while the backend sees one contiguous run. With
   [~batching:false] the calls degrade to the per-block loop itself, so
   the two modes are trace-equal by construction (asserted by the
   batch-parity test suite). ---- *)

let read_many t addr n =
  if n < 0 then invalid_arg "Storage.read_many: negative count";
  let out = Array.make n [||] in
  if n > 0 then begin
    check_addr t addr;
    check_addr t (addr + n - 1);
    match pf_take t addr n with
    | Some buf ->
        (* The payloads already travelled (uncounted, untraced); the
           logical read happens now, so the accounting fires here
           exactly as the batched transfer below would have fired it:
           one trace op and one stats tick per block in address order. *)
        for i = 0 to n - 1 do
          record_read t (addr + i)
        done;
        if n > 1 then Stats.record_batched t.stats n;
        unseal_run t buf n out
    | None ->
    if t.batching && n > 1 then begin
      ensure_run_buf t n;
      transfer_read t ~counted:true ~record:(record_read t) ~addr ~n ~buf:t.run_buf;
      Stats.record_batched t.stats n;
      unseal_run t t.run_buf n out
    end
    else
      for i = 0 to n - 1 do
        out.(i) <- read t (addr + i)
      done
  end;
  out

let write_many t addr blks =
  let n = Array.length blks in
  if n > 0 then begin
    check_addr t addr;
    check_addr t (addr + n - 1);
    Array.iter (check_block t ~who:"Storage.write_many") blks;
    atomically t (fun () ->
        if t.batching && n > 1 then begin
          ensure_run_buf t n;
          (* The run sealer draws nonces in index order — the same
             sequence as the per-block loop. *)
          seal_run t blks n;
          transfer_write t ~counted:true ~record:(record_write t) ~addr ~n ~buf:t.run_buf;
          Stats.record_batched t.stats n
        end
        else
          for i = 0 to n - 1 do
            write t (addr + i) blks.(i)
          done)
  end

let unchecked_peek t addr =
  check_addr t addr;
  transfer_read t ~counted:false ~record:(fun _ -> ()) ~addr ~n:1 ~buf:t.seal_buf;
  unseal_from t t.seal_buf 0

let unchecked_poke t addr blk =
  check_addr t addr;
  check_block t ~who:"Storage.unchecked_poke" blk;
  seal_into t blk t.seal_buf 0;
  transfer_write t ~counted:false ~record:(fun _ -> ()) ~addr ~n:1 ~buf:t.seal_buf
