type backend_spec =
  | Mem
  | File of { path : string }
  | Faulty of { inner : backend_spec; seed : int; failure_rate : float; max_burst : int }

exception Io_failure of { addr : int; attempts : int }

let () =
  Printexc.register_printer (function
    | Io_failure { addr; attempts } ->
        Some
          (Printf.sprintf "Storage.Io_failure(addr=%d after %d attempts)" addr attempts)
    | _ -> None)

type cipher_state = { key : Odex_crypto.Cipher.key; mutable next_nonce : int }

type t = {
  block_size : int;
  payload_size : int;
  backend : Backend.t;
  mutable used : int;
  stats : Stats.t;
  trace : Trace.t;
  cipher : cipher_state option;
  max_retries : int;
  backoff_base : float;
  backoff_cap : float;
}

let rec instantiate ~payload_size = function
  | Mem -> Backend.mem ()
  | File { path } -> Backend.file ~path ~payload_size
  | Faulty { inner; seed; failure_rate; max_burst } ->
      Backend.faulty { Backend.seed; failure_rate; max_burst }
        (instantiate ~payload_size inner)

let rec remove_spec_files = function
  | Mem -> ()
  | File { path } -> if Sys.file_exists path then Sys.remove path
  | Faulty { inner; _ } -> remove_spec_files inner

let create ?cipher ?(trace_mode = Trace.Digest) ?(backend = Mem) ?(max_retries = 10)
    ?(backoff = (1e-6, 1e-4)) ~block_size () =
  if block_size < 1 then invalid_arg "Storage.create: block_size must be >= 1";
  if max_retries < 1 then invalid_arg "Storage.create: max_retries must be >= 1";
  let backoff_base, backoff_cap = backoff in
  if backoff_base < 0. || backoff_cap < backoff_base then
    invalid_arg "Storage.create: backoff must satisfy 0 <= base <= cap";
  let payload_size = 8 + Block.encoded_size block_size in
  {
    block_size;
    payload_size;
    backend = instantiate ~payload_size backend;
    used = 0;
    stats = Stats.create ();
    trace = Trace.create trace_mode;
    cipher = Option.map (fun key -> { key; next_nonce = 0 }) cipher;
    max_retries;
    backoff_base;
    backoff_cap;
  }

let block_size t = t.block_size
let capacity t = t.used
let stats t = t.stats
let trace t = t.trace
let backend_kind t = Backend.kind t.backend
let faults_injected t = Backend.faults_injected t.backend
let sync t = Backend.sync t.backend
let close t = Backend.close t.backend

(* ---- sealed payload: an 8-byte nonce header (-1 = plaintext) followed
   by the encoded (and possibly encrypted) block image. A fixed layout
   keeps every backend address-computable and lets a file store reopen a
   previous run's blocks given the same key. ---- *)

let plain_nonce = -1L

let seal t blk =
  let body = Block.encode blk in
  let buf = Bytes.create t.payload_size in
  (match t.cipher with
  | None ->
      Bytes.set_int64_le buf 0 plain_nonce;
      Bytes.blit body 0 buf 8 (Bytes.length body)
  | Some cs ->
      let nonce = cs.next_nonce in
      cs.next_nonce <- nonce + 1;
      Bytes.set_int64_le buf 0 (Int64.of_int nonce);
      let ct = Odex_crypto.Cipher.encrypt cs.key ~nonce body in
      Bytes.blit ct 0 buf 8 (Bytes.length ct));
  buf

let unseal t payload =
  let header = Bytes.get_int64_le payload 0 in
  let body = Bytes.sub payload 8 (t.payload_size - 8) in
  if header = plain_nonce then Block.decode ~block_size:t.block_size body
  else
    match t.cipher with
    | None -> invalid_arg "Storage: encrypted block but no cipher key"
    | Some cs ->
        Block.decode ~block_size:t.block_size
          (Odex_crypto.Cipher.decrypt cs.key ~nonce:(Int64.to_int header) body)

(* ---- retry with capped exponential backoff. Failed attempts on
   counted operations are themselves disk accesses Bob observes, so each
   one is recorded in the trace (and tallied in [Stats.retries]); the
   fault schedule of a faulty backend depends only on its access index,
   never on data, so oblivious algorithms keep identical traces with
   failures enabled. Uncounted (out-of-band) operations retry silently:
   they model the experimenter's view, not Alice's protocol. ---- *)

let backoff t attempt =
  let delay = Float.min t.backoff_cap (t.backoff_base *. Float.pow 2. (Float.of_int (attempt - 1))) in
  if delay > 0. then Unix.sleepf delay

let with_retries t ~counted ~retry_op ~addr f =
  let rec go attempt =
    match f () with
    | result -> result
    | exception Backend.Transient _ ->
        if attempt >= t.max_retries then raise (Io_failure { addr; attempts = attempt });
        if counted then begin
          Stats.record_retry t.stats;
          Trace.record t.trace (retry_op addr)
        end;
        backoff t attempt;
        go (attempt + 1)
  in
  go 1

let backend_read t ~counted addr =
  with_retries t ~counted ~retry_op:(fun a -> Trace.Retry_read a) ~addr (fun () ->
      Backend.read t.backend addr)

let backend_write t ~counted addr payload =
  with_retries t ~counted ~retry_op:(fun a -> Trace.Retry_write a) ~addr (fun () ->
      Backend.write t.backend addr payload)

let alloc t n =
  if n < 0 then invalid_arg "Storage.alloc: negative size";
  let base = t.used in
  if n > 0 then begin
    Backend.ensure t.backend (t.used + n);
    t.used <- t.used + n;
    (* Zero-initialization is the server's job and costs no counted I/O;
       retries here stay out of the trace for the same reason. *)
    for addr = base to base + n - 1 do
      backend_write t ~counted:false addr (seal t (Block.make t.block_size))
    done
  end;
  base

let check_addr t addr =
  if addr < 0 || addr >= t.used then
    invalid_arg (Printf.sprintf "Storage: address %d out of bounds (capacity %d)" addr t.used)

let read t addr =
  check_addr t addr;
  let payload = backend_read t ~counted:true addr in
  Stats.record_read t.stats;
  Trace.record t.trace (Trace.Read addr);
  unseal t payload

let write t addr blk =
  check_addr t addr;
  if Array.length blk <> t.block_size then
    invalid_arg "Storage.write: block has wrong size";
  let payload = seal t blk in
  backend_write t ~counted:true addr payload;
  Stats.record_write t.stats;
  Trace.record t.trace (Trace.Write addr)

let unchecked_peek t addr =
  check_addr t addr;
  unseal t (backend_read t ~counted:false addr)

let unchecked_poke t addr blk =
  check_addr t addr;
  if Array.length blk <> t.block_size then
    invalid_arg "Storage.unchecked_poke: block has wrong size";
  backend_write t ~counted:false addr (seal t blk)
