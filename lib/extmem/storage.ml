type backend_spec =
  | Mem
  | File of { path : string }
  | Faulty of { inner : backend_spec; seed : int; failure_rate : float; max_burst : int }

exception Io_failure of { addr : int; attempts : int }

let () =
  Printexc.register_printer (function
    | Io_failure { addr; attempts } ->
        Some
          (Printf.sprintf "Storage.Io_failure(addr=%d after %d attempts)" addr attempts)
    | _ -> None)

module Telemetry = Odex_telemetry.Telemetry

type cipher_state = { key : Odex_crypto.Cipher.key; mutable next_nonce : int }

type t = {
  block_size : int;
  payload_size : int;
  backend : Backend.t;
  kind : string;  (** The device kind underneath any instrumentation shim. *)
  mutable used : int;
  stats : Stats.t;
  trace : Trace.t;
  tel : Telemetry.t;
  cipher : cipher_state option;
  mutable nonce_reserved : int;
      (** Nonces below this are persisted as potentially spent (the store
          header's high-water mark); a crash can never roll the counter
          back below a nonce that hit the device. *)
  max_retries : int;
  backoff_base : float;
  backoff_cap : float;
  batching : bool;
  seal_buf : bytes;  (** One payload: the single-block sealing scratch. *)
  mutable run_buf : bytes;  (** Grows to the largest run requested; reused across calls. *)
}

let rec instantiate ~payload_size = function
  | Mem -> Backend.mem ()
  | File { path } -> Backend.file ~path ~payload_size
  | Faulty { inner; seed; failure_rate; max_burst } ->
      Backend.faulty { Backend.seed; failure_rate; max_burst }
        (instantiate ~payload_size inner)

let rec remove_spec_files = function
  | Mem -> ()
  | File { path } -> if Sys.file_exists path then Sys.remove path
  | Faulty { inner; _ } -> remove_spec_files inner

(* ---- store header: the sealing state that must survive the process.

   A reopened File store MUST NOT restart the nonce counter: Bob may
   have retained every ciphertext ever written, and re-sealing under an
   already-used nonce is a two-time pad against them. The header
   (persisted through {!Backend.write_meta}, which the file backend
   keeps in its fixed 64-byte file header) records a conservative
   high-water mark: before a nonce at or above the persisted mark is
   used, the mark is pushed [nonce_chunk] ahead and written out — so at
   most one out-of-band metadata write per 2^16 seals, and after a crash
   the store resumes from the persisted mark, skipping at most
   [nonce_chunk] never-used nonces (nonces are a resource of size 2^62;
   burning a few is free, reusing one is fatal). [sync]/[close] persist
   the exact counter, so a cleanly closed store resumes with no gap. *)

let header_version = 1L
let nonce_chunk = 1 lsl 16

let build_header t =
  let m = Bytes.create 24 in
  Bytes.set_int64_le m 0 header_version;
  Bytes.set_int64_le m 8 (Int64.of_int t.block_size);
  Bytes.set_int64_le m 16 (Int64.of_int t.nonce_reserved);
  m

let write_header t = Backend.write_meta t.backend (build_header t)

let parse_header ~block_size m =
  if Bytes.length m < 24 then invalid_arg "Storage: corrupt store header";
  let v = Bytes.get_int64_le m 0 in
  if v <> header_version then
    invalid_arg (Printf.sprintf "Storage: unsupported store header version %Ld" v);
  let bs = Int64.to_int (Bytes.get_int64_le m 8) in
  if bs <> block_size then
    invalid_arg
      (Printf.sprintf "Storage: store was created with block_size %d, reopened with %d" bs
         block_size);
  let hw = Int64.to_int (Bytes.get_int64_le m 16) in
  if hw < 0 then invalid_arg "Storage: corrupt store header (nonce high-water)";
  hw

let create ?cipher ?telemetry ?(trace_mode = Trace.Digest) ?(backend = Mem)
    ?(max_retries = 10) ?(backoff = (1e-6, 1e-4)) ?(batching = true) ?(resume = false)
    ~block_size () =
  if block_size < 1 then invalid_arg "Storage.create: block_size must be >= 1";
  if max_retries < 1 then invalid_arg "Storage.create: max_retries must be >= 1";
  let backoff_base, backoff_cap = backoff in
  if backoff_base < 0. || backoff_cap < backoff_base then
    invalid_arg "Storage.create: backoff must satisfy 0 <= base <= cap";
  let payload_size = 8 + Block.encoded_size block_size in
  let raw = instantiate ~payload_size backend in
  let kind = Backend.kind raw in
  let tel = Option.value telemetry ~default:Telemetry.disabled in
  (* The timing shim is installed only when the sink collects: a
     disabled sink leaves the backend — and thus the whole I/O path —
     untouched. *)
  let backend = if Telemetry.enabled tel then Backend.instrument tel raw else raw in
  let nonce_hw =
    match Backend.read_meta backend with
    | Some m -> parse_header ~block_size m
    | None -> 0
  in
  let t =
    {
      block_size;
      payload_size;
      backend;
      kind;
      used = (if resume then Backend.size backend else 0);
      stats = Stats.create ();
      trace = Trace.create ~telemetry:tel trace_mode;
      tel;
      cipher = Option.map (fun key -> { key; next_nonce = nonce_hw }) cipher;
      nonce_reserved = nonce_hw;
      max_retries;
      backoff_base;
      backoff_cap;
      batching;
      seal_buf = Bytes.create payload_size;
      run_buf = Bytes.empty;
    }
  in
  write_header t;
  t

let block_size t = t.block_size
let capacity t = t.used
let stats t = t.stats
let trace t = t.trace
let telemetry t = t.tel
let backend_kind t = t.kind
let batching t = t.batching
let faults_injected t = Backend.faults_injected t.backend
let scratch_bytes t = Bytes.length t.run_buf

(* Persist the exact counter (not the rounded-up reservation) before the
   device flushes or the descriptor goes away: a cleanly closed store
   reopens with a gap-free nonce stream. *)
let checkpoint_header t =
  (match t.cipher with Some cs -> t.nonce_reserved <- cs.next_nonce | None -> ());
  write_header t

let sync t =
  checkpoint_header t;
  Backend.sync t.backend

let close t =
  checkpoint_header t;
  Backend.close t.backend

let ensure_run_buf t n =
  let need = n * t.payload_size in
  if Bytes.length t.run_buf < need then
    t.run_buf <- Bytes.create (max need (2 * Bytes.length t.run_buf))

(* ---- sealed payload: an 8-byte nonce header (-1 = plaintext) followed
   by the encoded (and possibly encrypted) block image. A fixed layout
   keeps every backend address-computable and lets a file store reopen a
   previous run's blocks given the same key.

   Sealing and unsealing run entirely inside caller-owned scratch
   buffers ([seal_buf] for single blocks, [run_buf] for runs): the block
   image is encoded in place, the cipher XORs the keystream in place,
   and decoding reads straight from the scratch at an offset — no
   [Bytes.sub], no per-operation allocation. ---- *)

let plain_nonce = -1L

let seal_into t blk buf off =
  match t.cipher with
  | None ->
      Bytes.set_int64_le buf off plain_nonce;
      Block.encode_into blk buf (off + 8)
  | Some cs ->
      let nonce = cs.next_nonce in
      (* Reserve (and persist) ahead of use: the header write lands on
         the device before any payload sealed under [nonce] can. *)
      if nonce >= t.nonce_reserved then begin
        t.nonce_reserved <- nonce + nonce_chunk;
        write_header t
      end;
      cs.next_nonce <- nonce + 1;
      Bytes.set_int64_le buf off (Int64.of_int nonce);
      Block.encode_into blk buf (off + 8);
      Odex_crypto.Cipher.xor_into cs.key ~nonce buf ~off:(off + 8)
        ~len:(t.payload_size - 8)

let unseal_from t buf off =
  let header = Bytes.get_int64_le buf off in
  if header = plain_nonce then Block.decode_from ~block_size:t.block_size buf (off + 8)
  else
    match t.cipher with
    | None -> invalid_arg "Storage: encrypted block but no cipher key"
    | Some cs ->
        Odex_crypto.Cipher.xor_into cs.key ~nonce:(Int64.to_int header) buf ~off:(off + 8)
          ~len:(t.payload_size - 8);
        Block.decode_from ~block_size:t.block_size buf (off + 8)

(* ---- the run engine: every transfer, single-block or batched, goes
   through [run_transfer], which drives the backend's run API and
   resumes after transient faults at the faulting block.

   Failed attempts on counted operations are themselves disk accesses
   Bob observes, so each one is recorded in the trace (and tallied in
   [Stats.retries]); the fault schedule of a faulty backend depends only
   on its access index, never on data, so oblivious algorithms keep
   identical traces with failures enabled. Uncounted (out-of-band)
   operations retry silently: they model the experimenter's view, not
   Alice's protocol.

   [record] fires once per block in address order, exactly where the
   per-block API would have recorded it: blocks transferred before a
   mid-run fault are recorded before the fault's retry op. A batched run
   therefore emits a trace bit-identical to the per-block run it
   replaces, which is what keeps obliviousness checkable by the
   pair-tester with batching on. Per-block attempt counting matches the
   per-block API too: a fresh faulting block restarts at attempt 1. ---- *)

let backoff t attempt =
  let delay = Float.min t.backoff_cap (t.backoff_base *. Float.pow 2. (Float.of_int (attempt - 1))) in
  if delay > 0. then Unix.sleepf delay

let run_transfer t ~counted ~retry_op ~record ~addr ~n ~do_run =
  let fin = addr + n in
  let rec go a attempt =
    if a < fin then
      match do_run ~addr:a ~count:(fin - a) ~off:((a - addr) * t.payload_size) with
      | () -> for i = a to fin - 1 do record i done
      | exception Backend.Transient { addr = fa; _ } ->
          for i = a to fa - 1 do record i done;
          let attempt = if fa > a then 1 else attempt in
          if attempt >= t.max_retries then raise (Io_failure { addr = fa; attempts = attempt });
          Telemetry.add_faults t.tel 1;
          if counted then begin
            Stats.record_retry t.stats;
            Telemetry.add_retries t.tel 1;
            Trace.record t.trace (retry_op fa)
          end;
          backoff t attempt;
          go fa (attempt + 1)
  in
  go addr 1

let read_run_backend t ~buf ~addr ~count ~off =
  Backend.read_run t.backend ~addr ~count ~payload:t.payload_size ~buf ~off

let write_run_backend t ~buf ~addr ~count ~off =
  Backend.write_run t.backend ~addr ~count ~payload:t.payload_size ~buf ~off

let record_read t a =
  Stats.record_read t.stats;
  Stats.record_moved t.stats t.payload_size;
  Telemetry.add_ios t.tel 1;
  Telemetry.add_bytes t.tel t.payload_size;
  Trace.record t.trace (Trace.Read a)

let record_write t a =
  Stats.record_write t.stats;
  Stats.record_moved t.stats t.payload_size;
  Telemetry.add_ios t.tel 1;
  Telemetry.add_bytes t.tel t.payload_size;
  Trace.record t.trace (Trace.Write a)

let transfer_read t ~counted ~record ~addr ~n ~buf =
  run_transfer t ~counted ~retry_op:(fun a -> Trace.Retry_read a) ~record ~addr ~n
    ~do_run:(fun ~addr ~count ~off -> read_run_backend t ~buf ~addr ~count ~off)

let transfer_write t ~counted ~record ~addr ~n ~buf =
  run_transfer t ~counted ~retry_op:(fun a -> Trace.Retry_write a) ~record ~addr ~n
    ~do_run:(fun ~addr ~count ~off -> write_run_backend t ~buf ~addr ~count ~off)

let alloc t n =
  if n < 0 then invalid_arg "Storage.alloc: negative size";
  let base = t.used in
  if n > 0 then begin
    Backend.ensure t.backend (t.used + n);
    t.used <- t.used + n;
    (* Zero-initialization is the server's job and costs no counted I/O;
       retries here stay out of the trace for the same reason. Batched
       runs change neither property: a faulty backend gates once per
       block per attempt whether or not the blocks travel together. *)
    let zero = Block.make t.block_size in
    let chunk = 256 in
    let c0 = min chunk n in
    ensure_run_buf t c0;
    (* Without a cipher every zero block seals to the same image, so one
       seal + blits fill the run; with one, each slot needs a fresh
       nonce. Either way the buffer stays valid across chunks. *)
    (match t.cipher with
    | None ->
        seal_into t zero t.run_buf 0;
        for i = 1 to c0 - 1 do
          Bytes.blit t.run_buf 0 t.run_buf (i * t.payload_size) t.payload_size
        done
    | Some _ -> ());
    let a = ref base in
    while !a < base + n do
      let c = min chunk (base + n - !a) in
      if t.cipher <> None then
        for i = 0 to c - 1 do
          seal_into t zero t.run_buf (i * t.payload_size)
        done;
      transfer_write t ~counted:false ~record:(fun _ -> ()) ~addr:!a ~n:c ~buf:t.run_buf;
      a := !a + c
    done
  end;
  base

let check_addr t addr =
  if addr < 0 || addr >= t.used then
    invalid_arg (Printf.sprintf "Storage: address %d out of bounds (capacity %d)" addr t.used)

let check_block t ~who blk =
  if Array.length blk <> t.block_size then invalid_arg (who ^ ": block has wrong size")

let read t addr =
  check_addr t addr;
  transfer_read t ~counted:true ~record:(record_read t) ~addr ~n:1 ~buf:t.seal_buf;
  unseal_from t t.seal_buf 0

let write t addr blk =
  check_addr t addr;
  check_block t ~who:"Storage.write" blk;
  seal_into t blk t.seal_buf 0;
  transfer_write t ~counted:true ~record:(record_write t) ~addr ~n:1 ~buf:t.seal_buf

(* ---- batched logical I/O. One [Trace.Read]/[Write] op and one Stats
   tick per logical block in address order — the same view Bob gets from
   a per-block loop — while the backend sees one contiguous run. With
   [~batching:false] the calls degrade to the per-block loop itself, so
   the two modes are trace-equal by construction (asserted by the
   batch-parity test suite). ---- *)

let read_many t addr n =
  if n < 0 then invalid_arg "Storage.read_many: negative count";
  let out = Array.make n [||] in
  if n > 0 then begin
    check_addr t addr;
    check_addr t (addr + n - 1);
    if t.batching && n > 1 then begin
      ensure_run_buf t n;
      transfer_read t ~counted:true ~record:(record_read t) ~addr ~n ~buf:t.run_buf;
      Stats.record_batched t.stats n;
      for i = 0 to n - 1 do
        out.(i) <- unseal_from t t.run_buf (i * t.payload_size)
      done
    end
    else
      for i = 0 to n - 1 do
        out.(i) <- read t (addr + i)
      done
  end;
  out

let write_many t addr blks =
  let n = Array.length blks in
  if n > 0 then begin
    check_addr t addr;
    check_addr t (addr + n - 1);
    Array.iter (check_block t ~who:"Storage.write_many") blks;
    if t.batching && n > 1 then begin
      ensure_run_buf t n;
      (* Sealing in index order draws the same nonce sequence as the
         per-block loop. *)
      for i = 0 to n - 1 do
        seal_into t blks.(i) t.run_buf (i * t.payload_size)
      done;
      transfer_write t ~counted:true ~record:(record_write t) ~addr ~n ~buf:t.run_buf;
      Stats.record_batched t.stats n
    end
    else
      for i = 0 to n - 1 do
        write t (addr + i) blks.(i)
      done
  end

let unchecked_peek t addr =
  check_addr t addr;
  transfer_read t ~counted:false ~record:(fun _ -> ()) ~addr ~n:1 ~buf:t.seal_buf;
  unseal_from t t.seal_buf 0

let unchecked_poke t addr blk =
  check_addr t addr;
  check_block t ~who:"Storage.unchecked_poke" blk;
  seal_into t blk t.seal_buf 0;
  transfer_write t ~counted:false ~record:(fun _ -> ()) ~addr ~n:1 ~buf:t.seal_buf
