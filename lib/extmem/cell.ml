type item = { key : int; value : int; tag : int; aux : int }

type t = Empty | Item of item

let empty = Empty
let item ?(tag = 0) ?(aux = 0) ~key ~value () = Item { key; value; tag; aux }

let is_empty = function Empty -> true | Item _ -> false
let is_item = function Empty -> false | Item _ -> true

let get = function
  | Empty -> invalid_arg "Cell.get: empty cell"
  | Item it -> it

let key_exn c = (get c).key
let value_exn c = (get c).value
let tag_exn c = (get c).tag
let aux_exn c = (get c).aux

let with_tag c tag =
  match c with Empty -> Empty | Item it -> Item { it with tag }

let with_aux c aux =
  match c with Empty -> Empty | Item it -> Item { it with aux }

let compare_keys a b =
  match (a, b) with
  | Empty, Empty -> 0
  | Empty, Item _ -> 1
  | Item _, Empty -> -1
  | Item x, Item y ->
      let c = compare x.key y.key in
      if c <> 0 then c else compare x.tag y.tag

let compare_by_tag a b =
  match (a, b) with
  | Empty, Empty -> 0
  | Empty, Item _ -> 1
  | Item _, Empty -> -1
  | Item x, Item y ->
      let c = compare x.tag y.tag in
      if c <> 0 then c else compare x.key y.key

let compare_by_aux a b =
  match (a, b) with
  | Empty, Empty -> 0
  | Empty, Item _ -> 1
  | Item _, Empty -> -1
  | Item x, Item y ->
      let c = compare x.aux y.aux in
      if c <> 0 then c
      else
        let c = compare x.key y.key in
        if c <> 0 then c else compare x.tag y.tag

let equal a b =
  match (a, b) with
  | Empty, Empty -> true
  | Item x, Item y -> x.key = y.key && x.value = y.value && x.tag = y.tag && x.aux = y.aux
  | Empty, Item _ | Item _, Empty -> false

let pp ppf = function
  | Empty -> Format.fprintf ppf "_"
  | Item { key; value; tag; aux } ->
      if tag = 0 && aux = 0 then Format.fprintf ppf "%d:%d" key value
      else Format.fprintf ppf "%d:%d@@%d.%d" key value tag aux

let encoded_size = 40
(* 5 × 8-byte words: a full constructor word followed by key, value,
   tag, aux. The constructor is padded from one byte to a word so that
   every field sits on a fixed 8-byte stride — encode/decode are
   straight int64 stores/loads, which is what keeps the sealing fast
   path free of per-byte work. *)

let encode buf off = function
  | Empty ->
      Bytes.set_int64_le buf off 0L;
      Bytes.set_int64_le buf (off + 8) 0L;
      Bytes.set_int64_le buf (off + 16) 0L;
      Bytes.set_int64_le buf (off + 24) 0L;
      Bytes.set_int64_le buf (off + 32) 0L
  | Item { key; value; tag; aux } ->
      Bytes.set_int64_le buf off 1L;
      Bytes.set_int64_le buf (off + 8) (Int64.of_int key);
      Bytes.set_int64_le buf (off + 16) (Int64.of_int value);
      Bytes.set_int64_le buf (off + 24) (Int64.of_int tag);
      Bytes.set_int64_le buf (off + 32) (Int64.of_int aux)

module Bigbuf = Odex_crypto.Bigbuf

let encode_big buf off = function
  | Empty ->
      Bigbuf.unsafe_set64_le buf off 0L;
      Bigbuf.unsafe_set64_le buf (off + 8) 0L;
      Bigbuf.unsafe_set64_le buf (off + 16) 0L;
      Bigbuf.unsafe_set64_le buf (off + 24) 0L;
      Bigbuf.unsafe_set64_le buf (off + 32) 0L
  | Item { key; value; tag; aux } ->
      Bigbuf.unsafe_set64_le buf off 1L;
      Bigbuf.unsafe_set64_le buf (off + 8) (Int64.of_int key);
      Bigbuf.unsafe_set64_le buf (off + 16) (Int64.of_int value);
      Bigbuf.unsafe_set64_le buf (off + 24) (Int64.of_int tag);
      Bigbuf.unsafe_set64_le buf (off + 32) (Int64.of_int aux)

let decode_big buf off =
  match Bigbuf.unsafe_get64_le buf off with
  | 0L -> Empty
  | 1L ->
      Item
        {
          key = Int64.to_int (Bigbuf.unsafe_get64_le buf (off + 8));
          value = Int64.to_int (Bigbuf.unsafe_get64_le buf (off + 16));
          tag = Int64.to_int (Bigbuf.unsafe_get64_le buf (off + 24));
          aux = Int64.to_int (Bigbuf.unsafe_get64_le buf (off + 32));
        }
  | c -> invalid_arg (Printf.sprintf "Cell.decode_big: bad constructor word %Ld" c)

let decode buf off =
  match Bytes.get_int64_le buf off with
  | 0L -> Empty
  | 1L ->
      Item
        {
          key = Int64.to_int (Bytes.get_int64_le buf (off + 8));
          value = Int64.to_int (Bytes.get_int64_le buf (off + 16));
          tag = Int64.to_int (Bytes.get_int64_le buf (off + 24));
          aux = Int64.to_int (Bytes.get_int64_le buf (off + 32));
        }
  | c -> invalid_arg (Printf.sprintf "Cell.decode: bad constructor word %Ld" c)
