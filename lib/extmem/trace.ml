type op = Read of int | Write of int | Retry_read of int | Retry_write of int

type mode = Off | Digest | Full

type span = {
  label : string;
  depth : int;
  start_length : int;
  start_hash : int64;
  end_length : int;
  end_hash : int64;
}

type t = {
  mode : mode;
  tel : Odex_telemetry.Telemetry.t;
  mutable length : int;
  mutable hash : int64;
  (* [Full] mode keeps the ops in a growable array (amortized O(1) push,
     no per-op cons cell): [ops_buf[0 .. ops_len)] is the sequence in
     recording order, so [ops] is a single pass instead of the O(n)
     re-reverse a cons list would need, and multi-million-op traces stop
     churning the GC. *)
  mutable ops_buf : op array;
  mutable ops_len : int;
  mutable depth : int;
  mutable rev_spans : span list;
  (* Open spans, innermost first: (label, depth, start_length,
     start_hash). The explicit stack lets a caller bracket several
     traces at once (the per-shard traces mirror the logical span
     structure) without nesting closures per trace. *)
  mutable open_spans : (string * int * int * int64) list;
}

let create ?(telemetry = Odex_telemetry.Telemetry.disabled) mode =
  {
    mode;
    tel = telemetry;
    length = 0;
    hash = 0L;
    ops_buf = [||];
    ops_len = 0;
    depth = 0;
    rev_spans = [];
    open_spans = [];
  }

let push_op t op =
  let cap = Array.length t.ops_buf in
  if t.ops_len = cap then begin
    let fresh = Array.make (max 64 (2 * cap)) op in
    Array.blit t.ops_buf 0 fresh 0 t.ops_len;
    t.ops_buf <- fresh
  end;
  t.ops_buf.(t.ops_len) <- op;
  t.ops_len <- t.ops_len + 1

let mode t = t.mode

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let op_code = function
  | Read addr -> Int64.of_int ((addr lsl 2) lor 0)
  | Write addr -> Int64.of_int ((addr lsl 2) lor 1)
  | Retry_read addr -> Int64.of_int ((addr lsl 2) lor 2)
  | Retry_write addr -> Int64.of_int ((addr lsl 2) lor 3)

let record t op =
  match t.mode with
  | Off -> ()
  | Digest ->
      t.length <- t.length + 1;
      t.hash <- mix64 (Int64.add (Int64.mul t.hash 0x100000001B3L) (op_code op))
  | Full ->
      t.length <- t.length + 1;
      t.hash <- mix64 (Int64.add (Int64.mul t.hash 0x100000001B3L) (op_code op));
      push_op t op

let length t = t.length
let digest t = t.hash
let ops t = Array.to_list (Array.sub t.ops_buf 0 t.ops_len)

(* Span labels are part of the algorithm's public phase structure, never
   of the data, so they are kept out of the op digest: [equal] still
   compares exactly what Bob sees. *)
let span_enter t label =
  match t.mode with
  | Off -> ()
  | Digest | Full ->
      t.open_spans <- (label, t.depth, t.length, t.hash) :: t.open_spans;
      t.depth <- t.depth + 1

let span_exit t =
  match t.mode with
  | Off -> ()
  | Digest | Full -> (
      match t.open_spans with
      | [] -> invalid_arg "Trace.span_exit: no open span"
      | (label, depth, start_length, start_hash) :: rest ->
          t.open_spans <- rest;
          t.depth <- depth;
          t.rev_spans <-
            {
              label;
              depth;
              start_length;
              start_hash;
              end_length = t.length;
              end_hash = t.hash;
            }
            :: t.rev_spans)

(* Closing is exception-safe so that a mid-phase Cache.Overflow still
   leaves a usable span record. *)
let with_span t label f =
  (* Telemetry phases mirror the span structure exactly (same label, same
     nesting), so a profile names the same phases the divergence reports
     do. Wall-clock timing never feeds back into what is recorded. *)
  let f =
    if Odex_telemetry.Telemetry.enabled t.tel then fun () ->
      Odex_telemetry.Telemetry.with_phase t.tel label f
    else f
  in
  match t.mode with
  | Off -> f ()
  | Digest | Full ->
      span_enter t label;
      Fun.protect ~finally:(fun () -> span_exit t) f

let spans t = List.rev t.rev_spans

let same_ops a b =
  a.ops_len = b.ops_len
  &&
  let rec eq i = i >= a.ops_len || (a.ops_buf.(i) = b.ops_buf.(i) && eq (i + 1)) in
  eq 0

let equal a b =
  a.length = b.length && a.hash = b.hash
  &&
  match (a.mode, b.mode) with
  | Full, Full -> same_ops a b
  | _ -> true

(* Pinpoint the first labelled span at which two traces part ways.
   Spans are compared in completion order; the structure (labels,
   nesting) is public, so a structural mismatch is itself reported. *)
type divergence =
  | Identical
  | In_span of span * span
  | Structural of string
  | Outside_spans

let first_divergence a b =
  if equal a b then Identical
  else
    let rec walk sa sb =
      match (sa, sb) with
      | [], [] -> Outside_spans
      | [], s :: _ | s :: _, [] ->
          Structural (Printf.sprintf "span %S present in only one trace" s.label)
      | x :: xa, y :: yb ->
          if x.label <> y.label || x.depth <> y.depth then
            Structural (Printf.sprintf "span order differs: %S vs %S" x.label y.label)
          else if x.start_length = y.start_length && x.start_hash = y.start_hash
                  && (x.end_length <> y.end_length || x.end_hash <> y.end_hash)
          then In_span (x, y)
          else walk xa yb
    in
    walk (spans a) (spans b)

let diverging_label a b =
  match first_divergence a b with
  | Identical -> None
  | In_span (s, _) -> Some s.label
  | Structural msg -> Some msg
  | Outside_spans -> Some "<outside spans>"

let reset t =
  t.length <- 0;
  t.hash <- 0L;
  (* Keep the op buffer's capacity: a reset trace is about to record a
     comparable run. *)
  t.ops_len <- 0;
  t.depth <- 0;
  t.rev_spans <- [];
  t.open_spans <- []

let pp_op ppf = function
  | Read addr -> Format.fprintf ppf "R%d" addr
  | Write addr -> Format.fprintf ppf "W%d" addr
  | Retry_read addr -> Format.fprintf ppf "rR%d" addr
  | Retry_write addr -> Format.fprintf ppf "rW%d" addr

let pp_span ppf (s : span) =
  Format.fprintf ppf "%s%s [%d..%d] %Lx"
    (String.make (2 * s.depth) ' ')
    s.label s.start_length s.end_length s.end_hash

(* A [Full] dump keeps at most [pp_keep] ops from each end: a failing
   pair-test over a multi-million-op trace must not flood the terminal
   (the digest and the span reports carry the diagnostic weight; the raw
   op dump is only orientation). *)
let pp_keep = 32

let pp ppf t =
  match t.mode with
  | Off -> Format.fprintf ppf "<trace off>"
  | Digest -> Format.fprintf ppf "<%d ops, digest %Lx>" t.length t.hash
  | Full ->
      let pp_ops ppf l =
        Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_op ppf l
      in
      let n = t.ops_len in
      if n <= 2 * pp_keep then Format.fprintf ppf "@[<hov>%a@]" pp_ops (ops t)
      else
        let head = Array.to_list (Array.sub t.ops_buf 0 pp_keep) in
        let tail = Array.to_list (Array.sub t.ops_buf (n - pp_keep) pp_keep) in
        Format.fprintf ppf "@[<hov>%a@ ... (%d ops elided) ...@ %a@]" pp_ops head
          (n - (2 * pp_keep))
          pp_ops tail
