(* Write-ahead redo journal around a backend (the crash-atomicity layer
   of DESIGN.md §10).

   Every mutation is appended to a side file as a length-prefixed,
   checksummed record and kept in an in-memory overlay that serves
   read-your-writes; the inner store is NOT touched until [commit]. The
   commit protocol is marker-then-apply:

     1. fsync the records (when [durable]),
     2. persist the commit marker — the header's committed-tail offset —
        and fsync it,
     3. apply every pending record to the inner store, in append order,
     4. flush the inner store, truncate the journal, clear the marker.

   Reopening with [replay:true] re-applies the records below the
   committed tail (a crash during step 3/4 — redo is idempotent) and
   DISCARDS everything above it (a crash before step 2): the inner store
   always lands exactly on a commit boundary, never between two writes
   of the same commit group. That group atomicity — not just run
   atomicity — is what makes phase-checkpointed resume sound: a bitonic
   compare-exchange group torn in the middle loses data when re-run,
   while a group rolled back to its start is simply re-executed
   ({!Ext_sort} aligns its checkpoints with commits for exactly this
   reason).

   Recovery is oblivious by construction: the replay schedule — which
   (addr, count) runs are rewritten, in which order — is a function of
   the journal bytes alone, which in turn record only the address
   schedule and ciphertexts the server already saw. Replay copies the
   original sealed payloads verbatim, so it introduces no new
   (key, nonce) pairs; the nonce high-water header (PR 4) still bounds
   the counter on resume. Both properties are pair- and sweep-tested in
   test_journal.ml.

   The header additionally carries the cipher engine id the payloads are
   sealed under — replaying ChaCha20 ciphertext into a store that will
   be unsealed as PRF-XOR garbles silently, so a mismatched reopen fails
   loudly instead — and a bounded checkpoint TABLE of [max_slots]
   entries, each a full (owner string, phase, cursor) triple for
   algorithm-level restart points; see {!Storage.checkpoint}. Owners are
   stored verbatim (not hashed), so two distinct owners can never alias,
   and occupancy is an explicit per-slot kind tag, never inferred from
   the phase value. Concurrent algorithms on one store — an ORAM rebuild
   plus the ext-sort it runs internally plus an unrelated columnsort —
   each own their slot and never clobber each other. The whole header is
   covered by a checksum: a header torn mid-rewrite degrades to "no
   checkpoints, nothing committed" (a full restart from the previous
   boundary), never to a wrong checkpoint or a half-committed group.

   Format history: v3 ("ODEXJRN3", 616-byte header) is the table format;
   v2 ("ODEXJRN2", 64 bytes) held a single FNV-hashed slot, last writer
   wins. A v2 journal reopens cleanly: its slot parses as a one-entry
   legacy-hash table (matched by hash until the owner checkpoints again,
   which upgrades the slot to a full string), its records replay from
   the old 64-byte offset, and the file is rewritten as v3. *)

module Bigbuf = Odex_crypto.Bigbuf
module Cipher = Odex_crypto.Cipher

type slot_owner =
  | Named of string  (** Full owner string: the only identity new checkpoints write. *)
  | Legacy_hash of int64
      (** FNV-1a owner hash read back from a v2 single-slot header:
          matched by hash until the owner checkpoints again. *)

type slot = { owner : slot_owner; phase : int; cursor : int }

type t = {
  path : string;
  payload_size : int;
  engine_id : int64;
  inner : Backend.t;
  durable : bool;
  auto_commit_bytes : int;
  mutable fd : Unix.file_descr;
  mutable tail : int;  (** Append offset: header_bytes + pending record bytes. *)
  mutable committed_tail : int;
      (** The commit marker: records below this offset are committed
          (their apply may be incomplete — replay finishes it); records
          at or above it are provisional and discarded by replay. *)
  mutable slots : slot option array;  (** The checkpoint table, [max_slots] entries. *)
  overlay : (int, Bigbuf.t * int) Hashtbl.t;
      (** addr -> latest pending sealed payload (buffer, offset): the
          read-your-writes view of the uncommitted tail. *)
  mutable pending_ops : (int * int * Bigbuf.t) list;
      (** (addr, count, payload run) per pending record, reversed. *)
  mutable hold_depth : int;
      (** > 0 suppresses auto-commit: the writer is inside an atomic
          group ({!hold}/{!release}) that must not be split. *)
  mutable append_log : (int * int) list;  (** (addr, count) per record, reversed. *)
  mutable replay_log : (int * int) list;  (** Records re-applied at open, in order. *)
  mutable commit_count : int;
  mutable closed : bool;
}

(* v3 header layout:
     0  magic "ODEXJRN3"
     8  payload_size
    16  committed_tail
    24  cipher engine id
    32  max_slots (8) slot entries of slot_bytes (72) each:
          +0 kind (0 = empty, 1 = named, 2 = legacy hash)
          +8 phase, +16 cursor, +24 owner_len, +32 owner bytes (40)
   608  FNV-1a checksum over bytes [0, 608) *)
let max_slots = 8
let max_owner_bytes = 40
let slot_bytes = 72
let header_bytes = 32 + (max_slots * slot_bytes) + 8
let record_header_bytes = 32
let magic = "ODEXJRN3"
let legacy_magic = "ODEXJRN2"
let legacy_header_bytes = 64

(* ---- FNV-1a, 64-bit: the record and header checksums. Not a MAC —
   the journal holds only ciphertexts the server already has — just a
   torn-write detector. ---- *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xFF))) fnv_prime

let fnv_bytes h buf off len =
  let h = ref h in
  for i = off to off + len - 1 do
    h := fnv_byte !h (Char.code (Bytes.unsafe_get buf i))
  done;
  !h

let fnv_big h buf off len =
  let h = ref h in
  for i = off to off + len - 1 do
    h := fnv_byte !h (Char.code (Bigbuf.unsafe_get buf i))
  done;
  !h

let fnv_int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical v (i * 8)))
  done;
  !h

let hash_owner s = fnv_bytes fnv_offset (Bytes.unsafe_of_string s) 0 (String.length s)

(* The engine id seeds every record checksum: a record written under one
   engine can never validate — and thus never replay — under another,
   even if the header were somehow bypassed. *)
let record_checksum t ~addr ~count buf off len =
  fnv_big
    (fnv_int64 (fnv_int64 (fnv_int64 fnv_offset t.engine_id) (Int64.of_int addr))
       (Int64.of_int count))
    buf off len

(* ---- raw file I/O (EINTR-hardened like the file backend's) ----

   The header and record headers are small cold-path [bytes]; record
   bodies are sealed-payload runs and travel positionally through
   {!Bigio} straight from/to the caller's off-heap buffer. *)

let pwrite_all fd ~pos buf ~off ~len =
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  let done_ = ref 0 in
  while !done_ < len do
    done_ := !done_ + Backend.retry_eintr (fun () -> Unix.write fd buf (off + !done_) (len - !done_))
  done

(* Best-effort positioned read: returns the number of bytes read before
   EOF — a short read here is a crash boundary, not an error. *)
let pread_upto fd ~pos buf ~len =
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  let done_ = ref 0 in
  let eof = ref false in
  while (not !eof) && !done_ < len do
    let k = Backend.retry_eintr (fun () -> Unix.read fd buf !done_ (len - !done_)) in
    if k = 0 then eof := true else done_ := !done_ + k
  done;
  !done_

let fsync_fd fd = Backend.retry_eintr (fun () -> Unix.fsync fd)

(* ---- header ---- *)

let build_header t =
  let h = Bytes.make header_bytes '\000' in
  Bytes.blit_string magic 0 h 0 8;
  Bytes.set_int64_le h 8 (Int64.of_int t.payload_size);
  Bytes.set_int64_le h 16 (Int64.of_int t.committed_tail);
  Bytes.set_int64_le h 24 t.engine_id;
  Array.iteri
    (fun i s ->
      let off = 32 + (i * slot_bytes) in
      match s with
      | None -> ()
      | Some { owner = Named o; phase; cursor } ->
          Bytes.set_int64_le h off 1L;
          Bytes.set_int64_le h (off + 8) (Int64.of_int phase);
          Bytes.set_int64_le h (off + 16) (Int64.of_int cursor);
          Bytes.set_int64_le h (off + 24) (Int64.of_int (String.length o));
          Bytes.blit_string o 0 h (off + 32) (String.length o)
      | Some { owner = Legacy_hash x; phase; cursor } ->
          Bytes.set_int64_le h off 2L;
          Bytes.set_int64_le h (off + 8) (Int64.of_int phase);
          Bytes.set_int64_le h (off + 16) (Int64.of_int cursor);
          Bytes.set_int64_le h (off + 32) x)
    t.slots;
  Bytes.set_int64_le h (header_bytes - 8) (fnv_bytes fnv_offset h 0 (header_bytes - 8));
  h

let write_header t = pwrite_all t.fd ~pos:0 (build_header t) ~off:0 ~len:header_bytes

let engine_id_name id =
  match Cipher.engine_of_id id with
  | Some e -> Cipher.engine_name e
  | None -> Printf.sprintf "unknown (id %Ld)" id

let empty_slots () = Array.make max_slots None

let check_payload_size ~payload_size ps =
  if ps <> payload_size then
    invalid_arg
      (Printf.sprintf "Journal: journal has payload size %d, expected %d" ps payload_size)

let check_engine ~engine_id eid =
  if eid <> engine_id then
    invalid_arg
      (Printf.sprintf "Journal: journal is sealed under cipher engine %s, expected %s"
         (engine_id_name eid) (engine_id_name engine_id))

let parse_slot h off =
  let kind = Bytes.get_int64_le h off in
  if kind = 0L then None
  else begin
    let phase = Int64.to_int (Bytes.get_int64_le h (off + 8)) in
    let cursor = Int64.to_int (Bytes.get_int64_le h (off + 16)) in
    if kind = 2L then Some { owner = Legacy_hash (Bytes.get_int64_le h (off + 32)); phase; cursor }
    else
      let len = Int64.to_int (Bytes.get_int64_le h (off + 24)) in
      if len < 1 || len > max_owner_bytes then None
      else Some { owner = Named (Bytes.sub_string h (off + 32) len); phase; cursor }
  end

(* Parse a v3 header buffer into (slots, committed_tail, record start).
   A failed header checksum degrades to "no checkpoints, nothing
   committed" — a safe full restart — while the magic, payload size and
   cipher engine still validate, so a foreign file or a journal sealed
   under a different engine fails loudly. *)
let parse_header ~payload_size ~engine_id h =
  check_payload_size ~payload_size (Int64.to_int (Bytes.get_int64_le h 8));
  if Bytes.get_int64_le h (header_bytes - 8) <> fnv_bytes fnv_offset h 0 (header_bytes - 8)
  then (empty_slots (), header_bytes, header_bytes)
  else begin
    check_engine ~engine_id (Bytes.get_int64_le h 24);
    let slots = Array.init max_slots (fun i -> parse_slot h (32 + (i * slot_bytes))) in
    (slots, max header_bytes (Int64.to_int (Bytes.get_int64_le h 16)), header_bytes)
  end

(* Parse a v2 ("ODEXJRN2", 64-byte) single-slot header: the hashed slot
   becomes a one-entry [Legacy_hash] table (only when its phase was
   positive — v2 occupancy), and records start at the old offset. *)
let parse_legacy_header ~payload_size ~engine_id h =
  check_payload_size ~payload_size (Int64.to_int (Bytes.get_int64_le h 8));
  if Bytes.get_int64_le h 56 <> fnv_bytes fnv_offset h 0 56 then
    (empty_slots (), legacy_header_bytes, legacy_header_bytes)
  else begin
    check_engine ~engine_id (Bytes.get_int64_le h 48);
    let slots = empty_slots () in
    let phase = Int64.to_int (Bytes.get_int64_le h 24) in
    if phase > 0 then
      slots.(0) <-
        Some
          {
            owner = Legacy_hash (Bytes.get_int64_le h 16);
            phase;
            cursor = Int64.to_int (Bytes.get_int64_le h 32);
          };
    (slots, max legacy_header_bytes (Int64.to_int (Bytes.get_int64_le h 40)), legacy_header_bytes)
  end

(* ---- applying records to the inner store ----

   Inner [Transient]s are retried here — commit application and replay
   are out-of-band recovery, below Storage's counted engine. *)

let apply_record t ~addr ~count buf =
  Backend.ensure t.inner (addr + count);
  let payload = t.payload_size in
  let fin = addr + count in
  let rec go a attempts =
    if a < fin then
      match
        Backend.write_run t.inner ~addr:a ~count:(fin - a) ~payload ~buf
          ~off:((a - addr) * payload)
      with
      | () -> ()
      | exception Backend.Transient { addr = fa; _ } ->
          let attempts = if fa > a then 1 else attempts + 1 in
          if attempts > 1000 then failwith "Journal: replay exhausted its retry budget";
          go fa attempts
  in
  go addr 0

(* ---- replay ----

   Scan records from [start] (the opened format's record offset — 616
   for v3 headers, 64 for legacy v2 files) up to the committed tail,
   stopping early at the first torn or checksum-failing one (records are
   appended strictly in order, so nothing intact can follow a torn
   record), and redo each onto the inner store. Records beyond the
   committed tail are a group the crash interrupted before its marker:
   discarding them is what returns the store to the last commit
   boundary. *)

let replay_records t ~start ~size =
  let hdr = Bytes.create record_header_bytes in
  let body = ref (Bigbuf.create 0) in
  let pos = ref start in
  let fin = min t.committed_tail size in
  let stop = ref false in
  while not !stop do
    if !pos + record_header_bytes > fin then stop := true
    else if pread_upto t.fd ~pos:!pos hdr ~len:record_header_bytes < record_header_bytes
    then stop := true
    else begin
      let len = Int64.to_int (Bytes.get_int64_le hdr 0) in
      let addr = Int64.to_int (Bytes.get_int64_le hdr 8) in
      let count = Int64.to_int (Bytes.get_int64_le hdr 16) in
      let cks = Bytes.get_int64_le hdr 24 in
      if
        count < 1 || addr < 0
        || len <> count * t.payload_size
        || !pos + record_header_bytes + len > fin
      then stop := true
      else begin
        if Bigbuf.length !body < len then body := Bigbuf.create len;
        if Bigio.read_upto t.fd ~pos:(!pos + record_header_bytes) !body ~off:0 ~len < len
        then stop := true
        else if record_checksum t ~addr ~count !body 0 len <> cks then stop := true
        else begin
          apply_record t ~addr ~count !body;
          t.replay_log <- (addr, count) :: t.replay_log;
          pos := !pos + record_header_bytes + len
        end
      end
    end
  done;
  t.replay_log <- List.rev t.replay_log

(* ---- commit / checkpoint ---- *)

let check_open t = if t.closed then invalid_arg "Backend.Journaled: store is closed"

let commit t =
  check_open t;
  if t.tail > header_bytes then begin
    (* Records durable, then the marker, then the in-place application:
       a crash anywhere in between replays this exact group on reopen. *)
    if t.durable then fsync_fd t.fd;
    t.committed_tail <- t.tail;
    write_header t;
    if t.durable then fsync_fd t.fd;
    List.iter
      (fun (addr, count, buf) -> apply_record t ~addr ~count buf)
      (List.rev t.pending_ops);
    Backend.sync t.inner;
    Backend.retry_eintr (fun () -> Unix.ftruncate t.fd header_bytes);
    t.tail <- header_bytes;
    t.committed_tail <- header_bytes;
    write_header t;
    if t.durable then fsync_fd t.fd;
    t.pending_ops <- [];
    Hashtbl.reset t.overlay
  end
  else Backend.sync t.inner;
  t.commit_count <- t.commit_count + 1

(* The slot owned by [owner]: an exact [Named] match first, then a v2
   [Legacy_hash] slot whose hash matches (the migration path — the next
   checkpoint upgrades it to the full string). -1 when absent. *)
let find_slot t ~owner =
  let hash = lazy (hash_owner owner) in
  let found = ref (-1) in
  Array.iteri
    (fun i s ->
      match s with
      | Some { owner = Named o; _ } when !found < 0 && String.equal o owner -> found := i
      | _ -> ())
    t.slots;
  if !found < 0 then
    Array.iteri
      (fun i s ->
        match s with
        | Some { owner = Legacy_hash x; _ } when !found < 0 && x = Lazy.force hash -> found := i
        | _ -> ())
      t.slots;
  !found

let validate_owner owner =
  if String.length owner = 0 then invalid_arg "Journal.checkpoint: empty owner";
  if String.length owner > max_owner_bytes then
    invalid_arg
      (Printf.sprintf "Journal.checkpoint: owner %S exceeds %d bytes" owner max_owner_bytes)

let occupied_owners t =
  Array.to_list t.slots
  |> List.filter_map (function
       | Some { owner = Named o; _ } -> Some o
       | Some { owner = Legacy_hash x; _ } -> Some (Printf.sprintf "<legacy %Lx>" x)
       | None -> None)

let clear t ~owner =
  validate_owner owner;
  commit t;
  (match find_slot t ~owner with
  | i when i >= 0 -> t.slots.(i) <- None
  | _ -> ());
  write_header t;
  if t.durable then fsync_fd t.fd

let checkpoint t ~owner ~phase ~cursor =
  validate_owner owner;
  if phase < 0 then invalid_arg "Journal.checkpoint: negative phase";
  if cursor < 0 then invalid_arg "Journal.checkpoint: negative cursor";
  if phase = 0 then begin
    (* (0, 0) is the reserved "no checkpoint" value: writing it clears
       the owner's slot. A phase-0 checkpoint with a nonzero cursor
       would be indistinguishable from that on read-back, so it is
       rejected rather than silently aliased. *)
    if cursor <> 0 then
      invalid_arg "Journal.checkpoint: phase 0 admits only cursor 0 (the clear)";
    clear t ~owner
  end
  else begin
    commit t;
    let i =
      match find_slot t ~owner with
      | i when i >= 0 -> i
      | _ -> (
          let free = ref (-1) in
          Array.iteri (fun i s -> if s = None && !free < 0 then free := i) t.slots;
          match !free with
          | -1 ->
              invalid_arg
                (Printf.sprintf
                   "Journal.checkpoint: checkpoint table full (%d slots; owners: %s)"
                   max_slots
                   (String.concat ", " (occupied_owners t)))
          | i -> i)
    in
    t.slots.(i) <- Some { owner = Named owner; phase; cursor };
    write_header t;
    if t.durable then fsync_fd t.fd
  end

let state t ~owner =
  if t.closed then (0, 0)
  else
    match find_slot t ~owner with
    | i when i >= 0 -> (
        match t.slots.(i) with Some { phase; cursor; _ } -> (phase, cursor) | None -> (0, 0))
    | _ -> (0, 0)

let slots t =
  Array.to_list t.slots
  |> List.filter_map
       (Option.map (fun { owner; phase; cursor } ->
            ((match owner with Named o -> Some o | Legacy_hash _ -> None), phase, cursor)))

let hold t = t.hold_depth <- t.hold_depth + 1

let release t = if t.hold_depth > 0 then t.hold_depth <- t.hold_depth - 1

(* ---- the append path ---- *)

let append t ~addr ~count ~buf ~off =
  let len = count * t.payload_size in
  let hdr = Bytes.create record_header_bytes in
  Bytes.set_int64_le hdr 0 (Int64.of_int len);
  Bytes.set_int64_le hdr 8 (Int64.of_int addr);
  Bytes.set_int64_le hdr 16 (Int64.of_int count);
  Bytes.set_int64_le hdr 24 (record_checksum t ~addr ~count buf off len);
  (* Header before body: a crash between the two leaves a header whose
     checksum cannot match the missing body — the scan discards it. *)
  pwrite_all t.fd ~pos:t.tail hdr ~off:0 ~len:record_header_bytes;
  Bigio.write_all t.fd ~pos:(t.tail + record_header_bytes) buf ~off ~len;
  t.tail <- t.tail + record_header_bytes + len;
  t.append_log <- (addr, count) :: t.append_log;
  (* The overlay and pending set own a copy: callers reuse their run
     buffers. *)
  let copy = Bigbuf.create len in
  Bigbuf.blit buf off copy 0 len;
  t.pending_ops <- (addr, count, copy) :: t.pending_ops;
  for i = 0 to count - 1 do
    Hashtbl.replace t.overlay (addr + i) (copy, i * t.payload_size)
  done

let check_write t ~addr ~count ~payload ~buf ~off =
  check_open t;
  if payload <> t.payload_size then
    invalid_arg "Backend.Journaled: run payload size differs from the store's";
  if count < 0 then invalid_arg "Backend.Journaled: negative run length";
  if addr < 0 || addr + count > Backend.size t.inner then
    invalid_arg
      (Printf.sprintf "Backend.Journaled: run [%d, %d) out of bounds (%d blocks)" addr
         (addr + count) (Backend.size t.inner));
  if off < 0 || off + (count * payload) > Bigbuf.length buf then
    invalid_arg "Backend.Journaled: buffer region out of bounds"

let maybe_auto_commit t =
  if t.hold_depth = 0 && t.tail - header_bytes > t.auto_commit_bytes then commit t

(* ---- the decorator ---- *)

module Journaled = struct
  type nonrec t = t

  let kind = "journaled"

  let payload_bytes t = t.payload_size

  let ensure t n =
    check_open t;
    Backend.ensure t.inner n

  let size t = Backend.size t.inner

  (* Blocks with a pending (uncommitted) write are served from the
     overlay — the inner store has not seen them yet. Which blocks those
     are is a function of the address schedule alone, so the inner
     access pattern stays data-independent. *)
  let read t addr ~buf ~off =
    check_open t;
    match Hashtbl.find_opt t.overlay addr with
    | Some (src, soff) -> Bigbuf.blit src soff buf off t.payload_size
    | None -> Backend.read_into t.inner addr ~buf ~off

  let read_run t ~addr ~count ~payload ~buf ~off =
    check_open t;
    if Hashtbl.length t.overlay = 0 then
      Backend.read_run t.inner ~addr ~count ~payload ~buf ~off
    else begin
      (* Maximal inner stretches between overlay hits, so a mostly
         committed run still travels as few contiguous reads. *)
      let flush_inner lo hi =
        (* [lo, hi) not in the overlay *)
        if hi > lo then
          Backend.read_run t.inner ~addr:lo ~count:(hi - lo) ~payload ~buf
            ~off:(off + ((lo - addr) * payload))
      in
      let lo = ref addr in
      for a = addr to addr + count - 1 do
        match Hashtbl.find_opt t.overlay a with
        | Some (src, soff) ->
            flush_inner !lo a;
            lo := a + 1;
            Bigbuf.blit src soff buf (off + ((a - addr) * payload)) payload
        | None -> ()
      done;
      flush_inner !lo (addr + count)
    end

  let write t addr ~buf ~off =
    check_write t ~addr ~count:1 ~payload:t.payload_size ~buf ~off;
    append t ~addr ~count:1 ~buf ~off;
    maybe_auto_commit t

  (* Append-only: one record per backend run, applied in place at the
     next commit. A [write_many] group therefore commits — or rolls back
     — as a unit. *)
  let write_run t ~addr ~count ~payload ~buf ~off =
    check_write t ~addr ~count ~payload ~buf ~off;
    if count > 0 then begin
      append t ~addr ~count ~buf ~off;
      maybe_auto_commit t
    end

  (* Metadata is the inner store's own write-ahead protocol (the nonce
     high-water header lands before any payload sealed under it): it
     passes straight through, preserving that ordering. *)
  let read_meta t =
    check_open t;
    Backend.read_meta t.inner

  let write_meta t m =
    check_open t;
    Backend.write_meta t.inner m

  let sync t = commit t

  let close t =
    if not t.closed then begin
      commit t;
      t.closed <- true;
      Unix.close t.fd;
      Backend.close t.inner
    end

  let faults t = Backend.faults_injected t.inner
  let shard_ops t = Backend.shard_io_counts t.inner
  let shard_count t = Backend.shard_count t.inner
end

let backend t = Backend.Packed ((module Journaled), t)

let abandon t =
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd;
    Backend.close t.inner
  end

(* ---- open ---- *)

let create ?(auto_commit_bytes = 1 lsl 22) ?(engine = Cipher.Prf_xor) ~path ~payload_size
    ~durable ~replay inner =
  if payload_size < 1 then invalid_arg "Journal.create: payload_size must be >= 1";
  if auto_commit_bytes < 1 then invalid_arg "Journal.create: auto_commit_bytes must be >= 1";
  let engine_id = Cipher.engine_id engine in
  let fd =
    Backend.retry_eintr (fun () ->
        Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o600)
  in
  let size = (Unix.fstat fd).Unix.st_size in
  let t =
    {
      path;
      payload_size;
      engine_id;
      inner;
      durable;
      auto_commit_bytes;
      fd;
      tail = header_bytes;
      committed_tail = header_bytes;
      slots = empty_slots ();
      overlay = Hashtbl.create 64;
      pending_ops = [];
      hold_depth = 0;
      append_log = [];
      replay_log = [];
      commit_count = 0;
      closed = false;
    }
  in
  let start_fresh () =
    (* Fresh journal (or one torn during its very first header write,
       before any record could exist): start clean. *)
    Backend.retry_eintr (fun () -> Unix.ftruncate fd 0);
    write_header t;
    if durable then fsync_fd t.fd
  in
  let open_existing (slots, committed_tail, records_start) =
    if replay then begin
      t.slots <- slots;
      t.committed_tail <- committed_tail;
      replay_records t ~start:records_start ~size;
      Backend.sync t.inner
    end;
    (* Committed records replayed, uncommitted tail (or, with
       [replay:false], everything) deliberately discarded: truncate and
       persist the surviving checkpoint table — always in the v3 format,
       so a legacy file is migrated in place. *)
    t.committed_tail <- header_bytes;
    Backend.retry_eintr (fun () -> Unix.ftruncate fd header_bytes);
    write_header t;
    if durable then fsync_fd t.fd
  in
  (match
     (* The header is written front-to-first on every rewrite, so any
        file of >= 8 bytes carries an intact magic; shorter files (and
        files shorter than their format's full header — a tear during
        the very first header write) are fresh. Unknown magics fail
        loudly: truncating a foreign file would destroy data. *)
     if size < 8 then start_fresh ()
     else begin
       let mg = Bytes.create 8 in
       ignore (pread_upto fd ~pos:0 mg ~len:8);
       let mg = Bytes.to_string mg in
       if mg = magic then
         if size < header_bytes then start_fresh ()
         else begin
           let h = Bytes.create header_bytes in
           ignore (pread_upto fd ~pos:0 h ~len:header_bytes);
           open_existing (parse_header ~payload_size ~engine_id h)
         end
       else if mg = legacy_magic then
         if size < legacy_header_bytes then start_fresh ()
         else begin
           let h = Bytes.create legacy_header_bytes in
           ignore (pread_upto fd ~pos:0 h ~len:legacy_header_bytes);
           open_existing (parse_legacy_header ~payload_size ~engine_id h)
         end
       else invalid_arg "Journal: unrecognized journal format (bad magic)"
     end
   with
  | () -> ()
  | exception e ->
      Unix.close fd;
      raise e);
  t

let path t = t.path
let durable t = t.durable
let replay_log t = t.replay_log
let append_log t = List.rev t.append_log
let commits t = t.commit_count
let pending_bytes t = t.tail - header_bytes
