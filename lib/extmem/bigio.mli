(** Positional file I/O on {!Odex_crypto.Bigbuf} buffers.

    pread/pwrite C stubs (no shared file offset, runtime lock released
    around the syscall) wrapped in EINTR-hardened full-transfer loops.
    The file backend and the journal move block payloads through these;
    headers and other small cold-path records stay on [bytes]. *)

val pread : Unix.file_descr -> pos:int -> Odex_crypto.Bigbuf.t -> off:int -> len:int -> int
(** One positioned read syscall (EINTR retried); returns the count
    transferred, 0 at end of file. Bounds on [off]/[len] are validated
    against the buffer. *)

val pwrite : Unix.file_descr -> pos:int -> Odex_crypto.Bigbuf.t -> off:int -> len:int -> int

val read_all :
  who:string -> Unix.file_descr -> pos:int -> Odex_crypto.Bigbuf.t -> off:int -> len:int -> unit
(** Loop {!pread} until [len] bytes landed; [Failure who^": short read"]
    if the file ends first. *)

val write_all :
  Unix.file_descr -> pos:int -> Odex_crypto.Bigbuf.t -> off:int -> len:int -> unit

val read_upto :
  Unix.file_descr -> pos:int -> Odex_crypto.Bigbuf.t -> off:int -> len:int -> int
(** Like {!read_all} but stops at end of file, returning the number of
    bytes read — a short read here is a crash boundary, not an error
    (journal replay scans with this). *)
