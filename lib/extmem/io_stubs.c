/* Positional file I/O straight into char bigarrays.
 *
 * The file backend's block transfers land in (and depart from) the
 * same off-heap buffer the cipher XORs in place — no bytes staging
 * copy, no shared-file-offset lseek dance. The runtime lock is
 * released around the syscall: bigarray data is not moved by the GC,
 * so the pointer stays valid while other domains run.
 *
 * Errors raise Unix.Unix_error via uerror; EINTR is retried at the
 * OCaml layer (Bigio) like every other raw I/O loop in the repo.
 */

#define _FILE_OFFSET_BITS 64

#include <errno.h>
#include <unistd.h>

#include <caml/bigarray.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

CAMLprim value odex_pread(value vfd, value vpos, value vbuf, value voff, value vlen)
{
  char *p = (char *)Caml_ba_data_val(vbuf) + Long_val(voff);
  size_t len = (size_t)Long_val(vlen);
  off_t pos = (off_t)Long_val(vpos);
  int fd = Int_val(vfd);
  ssize_t n;
  caml_enter_blocking_section();
  n = pread(fd, p, len, pos);
  caml_leave_blocking_section();
  if (n == -1) uerror("pread", Nothing);
  return Val_long(n);
}

CAMLprim value odex_pwrite(value vfd, value vpos, value vbuf, value voff, value vlen)
{
  char *p = (char *)Caml_ba_data_val(vbuf) + Long_val(voff);
  size_t len = (size_t)Long_val(vlen);
  off_t pos = (off_t)Long_val(vpos);
  int fd = Int_val(vfd);
  ssize_t n;
  caml_enter_blocking_section();
  n = pwrite(fd, p, len, pos);
  caml_leave_blocking_section();
  if (n == -1) uerror("pwrite", Nothing);
  return Val_long(n);
}
