(** Physical block stores underneath {!Storage}.

    {!Storage} is the paper-facing layer: it owns the I/O accounting,
    the adversary trace, encryption and the bump allocator. A backend is
    only the dumb device those sealed payloads land on — a fixed-size
    byte region per block address. Three implementations ship:

    - {!mem}: a growable in-process off-heap arena (one flat
      {!Odex_crypto.Bigbuf}, blocks served by blit — no per-block
      allocation in either direction);
    - {!file}: a plain file addressed at [addr * payload_size], so
      datasets can exceed RAM and the block image persists across runs;
      block payloads move positionally ({!Bigio}) straight between the
      file and the caller's buffer;
    - {!faulty}: a decorator injecting deterministic transient failures,
      for exercising the retry path of {!Storage} under the
      obliviousness harness.

    All block transfers go through caller-owned {!Odex_crypto.Bigbuf}
    regions — the same off-heap buffers the cipher engines XOR in place
    — so a sealed payload travels device <-> cipher <-> codec without a
    staging copy. Backends never see plaintext (when a cipher key is set
    the payload is ciphertext), never count I/Os and never touch the
    trace — that is Storage's job, which is what keeps the accounting
    identical across backends. *)

exception Transient of { addr : int; access : int }
(** A retryable fault: access [access] (the backend's global access
    counter) to block [addr] failed. Raised only by the faulty
    decorator; {!Storage} retries with capped exponential backoff. *)

exception Crashed
(** The simulated process death of the {!crash_after} decorator. Never
    retried — it unwinds through {!Storage} to the crash-sweep harness. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Run a raw Unix call, restarting it as long as it raises
    [Unix_error (EINTR, _, _)]. Every [read]/[write]/[fsync]/[ftruncate]
    on the file-backend I/O path (and the journal's) goes through this:
    a handled signal — a profiler timer, a test harness's SIGALRM — must
    never abort a counted transfer half-written. *)

module type S = sig
  type t

  val kind : string
  (** Short name ("mem", "file", "faulty"), for reports. *)

  val payload_bytes : t -> int
  (** The fixed byte size of every block payload this store holds, set
      at construction. Decorators forward to their inner store. *)

  val ensure : t -> int -> unit
  (** [ensure t n] guarantees addresses [0 .. n-1] are backed. *)

  val size : t -> int
  (** Number of backed addresses (the [ensure] high-water mark). *)

  val read : t -> int -> buf:Odex_crypto.Bigbuf.t -> off:int -> unit
  (** [read t addr ~buf ~off] fills [buf[off .. off + payload_bytes)]
      with the payload at [addr]. A never-written address reads as
      zeros. *)

  val write : t -> int -> buf:Odex_crypto.Bigbuf.t -> off:int -> unit
  (** Store the [payload_bytes] bytes at [buf[off ..]] at [addr]. *)

  val read_run :
    t -> addr:int -> count:int -> payload:int -> buf:Odex_crypto.Bigbuf.t -> off:int -> unit
  (** [read_run t ~addr ~count ~payload ~buf ~off] fills
      [buf[off .. off + count*payload)] with the payloads of the
      contiguous block run [addr, addr + count) — a single positioned
      transfer on {!file}, one blit on {!mem}, and a per-block
      fault-gated iteration on {!faulty}. [payload] must equal
      [payload_bytes]. The whole window (addresses and buffer region) is
      validated before any byte moves, so out-of-bounds runs raise
      without a partial transfer. On [Transient { addr = a }], blocks
      before [a] have been transferred and blocks from [a] on have not —
      the caller may resume the run at [a]. [count = 0] is a validated
      no-op. *)

  val write_run :
    t -> addr:int -> count:int -> payload:int -> buf:Odex_crypto.Bigbuf.t -> off:int -> unit
  (** Mirror image of [read_run]: stores [count] payloads read from
      [buf[off ..]] at [addr, addr + count), with the same validation,
      fault and resume semantics. *)

  val read_meta : t -> bytes option
  (** The metadata blob last stored with {!write_meta} ([None] on a
      fresh store). Out-of-band server state: not an I/O of the model,
      never traced, never fault-gated. *)

  val write_meta : t -> bytes -> unit
  (** Durably associate a metadata blob (at most {!meta_capacity} bytes)
      with the store; {!Storage} keeps its sealing header — notably the
      cipher-nonce high-water mark and the cipher engine id — there, so
      a reopened file store can resume without ever reusing a
      (key, nonce) pair or misinterpreting ciphertext under the wrong
      engine. *)

  val sync : t -> unit
  (** Flush to durable media where that means something (file). *)

  val close : t -> unit

  val faults : t -> int
  (** Transient failures injected so far (0 for real devices). *)

  val shard_ops : t -> int array
  (** Per-shard block-op counts ([[||]] for unsharded devices). *)

  val shard_count : t -> int option
  (** [Some k] when a striping layer fans this store across [k] separate
      devices (decorators forward); [None] for a single-server store.
      [Some 1] and [None] are deliberately distinct: the former is a
      degenerate stripe, the latter no stripe at all. *)
end

type t = Packed : (module S with type t = 'a) * 'a -> t
(** An instantiated backend. *)

val kind : t -> string
val payload_bytes : t -> int
val ensure : t -> int -> unit
val size : t -> int

val read_into : t -> int -> buf:Odex_crypto.Bigbuf.t -> off:int -> unit
(** The zero-copy single-block read: fills [payload_bytes] bytes of the
    caller's buffer in place. *)

val write_from : t -> int -> buf:Odex_crypto.Bigbuf.t -> off:int -> unit

val read : t -> int -> bytes
(** Convenience for cold paths and tests: allocates a staging buffer,
    {!read_into}s it and copies out. The sealing path never calls this. *)

val write : t -> int -> bytes -> unit
(** Convenience mirror of {!read}: the payload must be exactly
    [payload_bytes] long. *)

val read_run :
  t -> addr:int -> count:int -> payload:int -> buf:Odex_crypto.Bigbuf.t -> off:int -> unit

val write_run :
  t -> addr:int -> count:int -> payload:int -> buf:Odex_crypto.Bigbuf.t -> off:int -> unit

val read_meta : t -> bytes option
val write_meta : t -> bytes -> unit
val sync : t -> unit
val close : t -> unit

val meta_capacity : int
(** Maximum {!write_meta} blob size (bytes) every backend supports. *)

val mem : payload_size:int -> unit -> t
(** In-process store: one flat off-heap arena, block [addr] at byte
    offset [addr * payload_size]. Reads and writes are single blits
    between the arena and the caller's buffer; fresh arena space is
    zero-filled, so a never-written slot reads as a zero payload. *)

val file : path:string -> payload_size:int -> t
(** File-backed store: a fixed {!file_header_bytes}-byte header (magic,
    payload size, metadata blob), then block [addr] at byte offset
    [file_header_bytes + addr * payload_size]. The file is created if
    missing and {e not} truncated, so a previous run's block image — and
    its metadata — is readable by a new backend on the same path.
    Opening a non-empty file without the header magic, with a different
    payload size, or whose data region is not a whole number of blocks
    (a write torn by a crash) raises [Invalid_argument] rather than
    misreading blocks at shifted offsets or exposing the torn block;
    recover a torn store by reopening through its {!Journal}.

    Block payloads transfer positionally (pread/pwrite via {!Bigio})
    directly against the caller's off-heap buffer; only the header path
    uses the shared file offset.

    Every operation on a closed store — including [read_meta] and
    [write_meta], so a nonce high-water checkpoint can never be silently
    dropped — raises [Invalid_argument]. *)

val file_header_bytes : int
(** Size of the file backend's on-disk header (64 bytes). *)

type fault_plan = {
  seed : int;  (** Fixes the whole fault schedule. *)
  failure_rate : float;  (** Probability a fresh access starts a fault burst. *)
  max_burst : int;  (** Maximum consecutive failing accesses per burst (>= 1). *)
}
(** A deterministic fault schedule. Whether access number [i] fails is a
    pure function of [(seed, i)] — never of the address and never of the
    data — so two runs that make the same number of accesses in the same
    order see byte-identical fault/retry sequences. That is what lets the
    pair-testing harness demand identical traces even with failures
    enabled: retries are part of Bob's view, but a value-independent
    part.

    Bursts end with a guaranteed recovery: the access immediately after
    a burst's last failure always succeeds, so a logical I/O retried in
    place needs at most [max_burst] retries. Keep [max_burst] below
    {!Storage.create}'s [max_retries] and the retry budget can never be
    exhausted; invert that (or lower [max_retries]) to exercise the
    permanent-failure path. *)

val faulty : fault_plan -> t -> t
(** [faulty plan inner] fails accesses according to [plan] (raising
    {!Transient}) and forwards the rest to [inner]. *)

val faults_injected : t -> int
(** Total {!Transient} raises so far ([0] for non-faulty backends). *)

val sharded : seed:int -> t array -> t
(** [sharded ~seed inners] stripes one logical address space across the
    [K = Array.length inners] inner stores (requires [K >= 1], all with
    the same payload size). Logical block [a] belongs to group
    [g = a / K] and lives on shard [perm((a mod K + g) mod K)] at inner
    address [g], where [perm] is a keyed PRP of the lanes derived from
    [seed] — a bijection, so every group of [K] consecutive logical
    blocks touches all [K] devices, and a pure function of the block
    index, so the fan-out is as data-independent as the flat address
    sequence it refines.

    A contiguous logical run decomposes into exactly one contiguous
    inner run per shard (the logical addresses a shard serves are
    strictly increasing in its inner address); runs of at least [2K]
    blocks are dispatched to one worker domain per shard — spawned
    lazily on first use and joined on {!close} — while smaller runs and
    single-block ops execute inline through the same decomposition, so
    execution mode never shows in the logical trace. On a mid-run
    {!Transient} the smallest faulted {e logical} address is re-raised
    after every shard has run to completion or its own fault: all blocks
    below it have been transferred (blocks at or above it may have been
    too — resuming re-transfers them, which is idempotent).

    [ensure n] grows every inner store to [ceil(n / K)] blocks; the
    exact logical length is persisted as an 8-byte prefix of the
    metadata blob on shard 0 (so client metadata is limited to
    [meta_capacity - 8] bytes) and recovered on reopen. *)

val shard_route : shards:int -> seed:int -> int -> int * int
(** [shard_route ~shards ~seed a] is the pure striping map of
    {!sharded}: the (shard, inner address) pair logical block [a] maps
    to. Exposed for property tests (the map must be a bijection). *)

val shard_perm : shards:int -> seed:int -> int array * int array
(** The keyed lane permutation behind {!shard_route}: [(perm, perm_inv)]
    with [perm] mapping lane to shard and [perm_inv] its inverse.
    Exposed so {!Storage} can mirror the stripe's routing without
    re-deriving the PRP per address. *)

val shard_count : t -> int option
(** [Some k] when this backend stack contains a {!sharded} stripe of [k]
    devices (decorators forward to their inner store); [None] when no
    stripe is present. Distinguishes a degenerate [K = 1] stripe
    ([Some 1]) from an unsharded store ([None]). *)

val shard_io_counts : t -> int array
(** Per-shard counts of block ops served ([|[]|] for unsharded
    backends; decorators forward to their inner store). The obliviousness
    harness compares these across a pair run: the fan-out must be a
    function of the logical trace alone. *)

val crash_after : ops:int -> t -> t
(** [crash_after ~ops inner] lets the first [ops] block operations (and
    syncs) through, then raises {!Crashed} on every further one — a
    deterministic kill switch for crash-recovery sweeps. [ensure],
    metadata and [close] are never gated: the sweep interrupts at block
    ops, and the harness must still release descriptors after the
    "crash". Sweeping [ops] over [0 .. total] simulates dying after
    every backend op of a run. *)

val instrument : Odex_telemetry.Telemetry.t -> t -> t
(** [instrument sink inner] times every [read]/[write]/[read_run]/
    [write_run]/[sync] with the monotonic clock and reports each to
    [sink] (as {!Odex_telemetry.Telemetry.record_op}) under [inner]'s
    kind, forwarding everything else untouched. The shim observes only
    operation kinds, block/byte counts and durations — never payload
    contents — and {!Storage} installs it only when the sink is enabled,
    so a disabled sink leaves the I/O path byte-for-byte as before. *)
