(** The adversary's view: the sequence of block addresses Alice touches.

    Bob "can view the sequence and location of all of Alice's disk
    accesses ... but he cannot see the content of what is read or written"
    (paper §1). A trace records exactly that view. An algorithm is
    data-oblivious when, for fixed problem, N, M, B (and here, fixed
    coins), the trace is identical whatever the stored values are — the
    property the {!Odex.Oblivious} audit checks.

    Recording modes trade fidelity for memory: [Full] keeps every
    operation (small experiments, pretty-printing the adversary's view);
    [Digest] folds the operations into a rolling 64-bit hash plus a
    length, which suffices for equality testing on multi-million-I/O
    runs; [Off] records nothing.

    Algorithms additionally mark their phases with {!with_span}; spans
    carry the cumulative digest at entry and exit, so when two traces
    disagree, {!first_divergence} names the first offending phase
    instead of just "the run differed somewhere". Labels describe the
    public phase structure — they never depend on data — and are kept
    out of the op digest, so {!equal} still compares exactly the
    address sequence Bob observes. *)

type op =
  | Read of int
  | Write of int
  | Retry_read of int  (** A failed read attempt Alice repeated — Bob sees it too. *)
  | Retry_write of int  (** A failed write attempt Alice repeated. *)

type mode = Off | Digest | Full

type span = {
  label : string;
  depth : int;  (** Nesting depth at which the span was opened. *)
  start_length : int;
  start_hash : int64;
  end_length : int;
  end_hash : int64;
}

type t

val create : ?telemetry:Odex_telemetry.Telemetry.t -> mode -> t
(** [telemetry] (default: the disabled sink) receives one timed
    {!Odex_telemetry.Telemetry.with_phase} per {!with_span}, mirroring
    the span structure. Purely observational: enabling it changes
    nothing the trace records. *)

val mode : t -> mode
val record : t -> op -> unit

val length : t -> int
(** Number of operations recorded (maintained in all modes but [Off]). *)

val digest : t -> int64
(** Order-sensitive hash of the operation sequence. *)

val ops : t -> op list
(** The full sequence; [] unless mode is [Full]. *)

val equal : t -> t -> bool
(** Equality of the recorded views: digests and lengths agree (and full
    sequences agree when both are [Full]). Span metadata does not
    participate. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t label f] runs [f], recording a completed span that
    brackets the I/Os it performed. Exception-safe: the span is closed
    (and recorded) even if [f] raises. No-op in [Off] mode. Spans may
    nest; [label] must depend only on public parameters. *)

val span_enter : t -> string -> unit
(** Open a span explicitly. Use when one phase must bracket several
    traces at once (e.g. the per-shard traces mirroring the logical span
    structure); prefer {!with_span} otherwise. No-op in [Off] mode. *)

val span_exit : t -> unit
(** Close the innermost open span (recording it). Raises
    [Invalid_argument] when no span is open. No-op in [Off] mode. *)

val spans : t -> span list
(** Completed spans in completion order. *)

type divergence =
  | Identical
  | In_span of span * span
      (** First span (ours, theirs) whose entry states agree but whose
          exit digests differ: the offending phase. *)
  | Structural of string
      (** The span structures themselves differ — already a leak, since
          phase structure is public. *)
  | Outside_spans
      (** Digests differ but every span pair agrees (the divergence lies
          in unlabelled I/O). *)

val first_divergence : t -> t -> divergence

val diverging_label : t -> t -> string option
(** [None] when traces are equal; otherwise a human-readable label of
    the first point of divergence. *)

val reset : t -> unit

val pp_op : Format.formatter -> op -> unit
val pp_span : Format.formatter -> span -> unit
val pp : Format.formatter -> t -> unit
