(** Bob's disk: a growable store of encrypted blocks with exact I/O
    accounting and adversary-trace recording.

    This is the outsourced storage server of the paper's model (§1): data
    is "accessed and organized in contiguous blocks, with each block
    holding B words". Reads and writes are the unit-cost I/Os that every
    theorem counts; the trace records the adversary's view of them. When a
    cipher key is supplied, blocks are genuinely serialized and encrypted
    with a fresh nonce on every write, so rewriting identical content
    produces a different ciphertext — the re-encryption property the paper
    assumes.

    The bytes themselves live in a pluggable {!Backend}: in-memory (the
    default), file-backed (datasets larger than RAM; block images persist
    on the path), or a deterministic fault injector layered over either.
    The accounting layer is backend-independent — the same algorithm run
    performs the same counted I/Os on every backend — and transient
    backend failures are absorbed here by retrying with capped
    exponential backoff. Each failed attempt on a counted operation is
    itself visible to Bob, so it is recorded in the trace (as
    [Retry_read]/[Retry_write]) and tallied in {!Stats.retries}; because
    a fault schedule depends only on its seed and the access index, the
    retries of an oblivious algorithm are as value-independent as its
    I/Os, and pair-tested traces must still be identical. *)

type backend_spec =
  | Mem  (** In-process array; contents die with the process. *)
  | File of { path : string }
      (** File-backed block store (created if missing, not truncated):
          block [addr] lives at a fixed offset, so data can exceed RAM
          and the block image survives the process. *)
  | Faulty of { inner : backend_spec; seed : int; failure_rate : float; max_burst : int }
      (** Decorator injecting deterministic transient faults into
          [inner]; see {!Backend.fault_plan}. [max_burst] must stay
          below [max_retries] or accesses inside a burst exhaust their
          retry budget. *)
  | Sharded of { inner : backend_spec; shards : int; seed : int }
      (** Stripe the address space across [shards] instances of [inner]
          (each a fresh device: file paths get a [.shardN] suffix, fault
          seeds are mixed per shard), served in parallel by one domain
          per shard for large runs — see {!Backend.sharded}. The fan-out
          is a keyed PRP of the block index, so the {e logical} trace —
          and therefore every obliviousness guarantee — is bit-identical
          to the single-shard run at every shard count. Nesting
          [Sharded] inside [Sharded] is rejected; composing [Faulty]
          {e outside} [Sharded] preserves exact trace parity with the
          unsharded faulty store (the fault gate iterates per logical
          block either way). *)
  | Journaled of { inner : backend_spec; path : string; durable : bool }
      (** Write-ahead journal at [path] over [inner] (see {!Journal}):
          every write lands in the journal — checksummed, and fsync'd
          when [durable] — before it is applied in place, so a crash
          tears at most the journal tail. Reopening with [resume:true]
          replays the redo log before the store comes up; with
          [resume:false] leftovers are discarded. Enables {!checkpoint}.
          Purely physical: traces, stats and nonces are identical with
          and without the journal (pair-tested). One journal per store —
          nest it {e outside} [Sharded], never inside, and never inside
          another [Journaled]. Disable [durable] only where crashes are
          simulated in-process (tests), where fsync adds nothing. *)
  | Crashing of { inner : backend_spec; ops : int }
      (** Deterministic kill switch for crash-recovery sweeps: the first
          [ops] backend block operations succeed, every later one raises
          {!Backend.Crashed} (never retried — it unwinds to the
          harness). Compose it {e inside} [Journaled] so the journal
          append survives and the in-place apply dies, the tear replay
          must heal. See {!Backend.crash_after}. *)

exception Io_failure of { addr : int; attempts : int }
(** A counted or uncounted operation kept failing after [attempts]
    tries: the fault outlasted the retry budget. *)

type t

val create :
  ?cipher:Odex_crypto.Cipher.key ->
  ?cipher_engine:Odex_crypto.Cipher.engine ->
  ?telemetry:Odex_telemetry.Telemetry.t ->
  ?trace_mode:Trace.mode ->
  ?backend:backend_spec ->
  ?max_retries:int ->
  ?backoff:float * float ->
  ?batching:bool ->
  ?prefetch:bool ->
  ?seal_domains:int ->
  ?resume:bool ->
  ?journal_auto_commit_bytes:int ->
  block_size:int ->
  unit ->
  t
(** Fresh empty disk. [trace_mode] defaults to [Digest]; [backend] to
    [Mem]. A transient backend failure is retried up to [max_retries]
    times (default 10), sleeping [min cap (base *. 2. ** attempts)]
    seconds between attempts where [backoff = (base, cap)] (default
    [1e-6, 1e-4] — real but negligible delays).

    [cipher_engine] (default [Prf_xor]) selects the keystream generator
    blocks are sealed under when a [cipher] key is supplied — see
    {!Odex_crypto.Cipher.engine}. The engine id is recorded in the store
    header (and the journal header, on a [Journaled] spec): reopening a
    persistent store under a different engine than it was sealed with
    raises [Invalid_argument] instead of silently unsealing ciphertext
    with the wrong keystream. Engine choice is invisible to Bob — traces,
    stats and the nonce schedule are engine-independent (pair-tested);
    only the ciphertext bytes (and the keystream cost) differ.

    [seal_domains] (default 1) fans run sealing/unsealing across that
    many domains (the caller's plus [seal_domains - 1] lazily spawned
    workers, joined on {!close}). Sealing is pure CPU on disjoint
    stripes of one off-heap buffer with all nonces reserved up front, so
    the sealed bytes, nonce sequence, trace and device schedule are
    bit-identical at every setting (pair-tested) — the knob changes only
    which core runs the keystream arithmetic. Runs smaller than
    [2 * seal_domains] blocks seal inline.

    [telemetry] (default: the disabled sink) wires this store into a
    profiling sink: every backend call is timed (through
    {!Backend.instrument}), every trace span becomes a timed phase, and
    counted I/Os / retries / faults / bytes are attributed to the
    innermost open phase. Purely observational — the sink sees only what
    Bob sees (op kinds, addresses, sizes, timings, never plaintext), and
    enabling it changes no trace (pair-tested). With the disabled sink
    the backend is not even wrapped, so the I/O path is exactly the
    uninstrumented one.

    {b Sealing state persistence.} A store whose backend persists (the
    file backend) carries a small header — block size, the cipher nonce
    high-water mark and the cipher engine id — maintained through
    {!Backend.write_meta}.
    [create] on an existing file reads it back and resumes the nonce
    counter {e above} every nonce that may ever have been used, so
    reopening a store with the same key never re-seals under a spent
    nonce (the two-time-pad reopen bug). The mark is persisted ahead of
    use in 2^16-nonce reservations and exactly on {!sync}/{!close}; a
    crash therefore costs at most one reservation of skipped (never
    used) nonces. Reopening with a different [block_size] or a different
    [cipher_engine] than the store was created with raises
    [Invalid_argument]. (Pre-engine version-1 headers read back as
    [Prf_xor] — exactly what sealed them.)

    [resume] (default [false]) controls whether the blocks already
    present on a persistent backend become addressable: with
    [resume:true], [capacity] starts at the backend's block count and
    previously written blocks can be read back (decrypting under the
    same key) without re-allocating — with the default, the store starts
    logically empty and {!alloc} zero-fills from address 0 as always
    (still under fresh nonces). On a [Journaled] spec, [resume:true]
    additionally replays the journal's redo log before the store comes
    up (see {!journal_replay}), healing any crash-torn writes;
    [resume:false] discards leftover journal records instead.

    [journal_auto_commit_bytes] (default 4 MiB) bounds the journal's
    pending tail on a [Journaled] spec: a write pushing past it triggers
    an automatic commit (outside {!atomically} groups). Smaller values
    bound crash-recovery scan/replay work tighter at the cost of more
    frequent commits — see EXPERIMENTS.md E17 for the measured
    trade-off. Ignored without a [Journaled] layer.

    [batching] (default [true]) controls whether {!read_many} and
    {!write_many} are served by a single contiguous backend run or
    degrade to per-block loops. It changes only how bytes travel, never
    what Bob sees: traces, stats totals and retry sequences are
    identical either way (the batch-parity tests assert this on every
    backend). Disable it to measure the batching win or to bisect a
    suspected batching bug.

    [prefetch] (default [false]) attaches a double-buffered prefetch
    worker (one domain, spawned lazily on the first {!prefetch} hint,
    joined on {!close}). Callers — {!Ext_array.iter_runs} in practice —
    hint the next scan window while consuming the current one; the
    worker moves raw payloads into a spare buffer, and when [read_many]
    asks for exactly that window the payloads are unsealed from the
    buffer while the normal per-block trace and stats fire unchanged.
    Purely physical: on a fault-free backend the logical trace with
    prefetch on is bit-identical to prefetch off (pair-tested), and
    since hints are a fixed function of the public scan shape they are
    as oblivious as the scan itself. On a [Faulty] backend a fetch that
    trips the fault gate is abandoned (the counted path re-reads and
    owns the retries) but consumes fault-schedule accesses, so trace
    {e parity across prefetch on/off} holds on fault-free backends only
    — obliviousness (pair equality at fixed settings) holds on all.
    Implies [batching]; with [~batching:false] the flag is ignored. *)

val block_size : t -> int
val capacity : t -> int
(** Number of allocated blocks. *)

val backend_kind : t -> string
(** "mem", "file" or "faulty" — for reports. *)

val batching : t -> bool
(** Whether {!read_many}/{!write_many} use multi-block backend runs. *)

val cipher_engine : t -> Odex_crypto.Cipher.engine
(** The keystream engine this store seals under (meaningful only when a
    cipher key was supplied; reported regardless). *)

val seal_domains : t -> int
(** Total domains participating in run sealing (1 = serial). *)

val prefetch_enabled : t -> bool
(** Whether a prefetch worker is attached (see {!create}). *)

val prefetch : t -> int -> int -> unit
(** [prefetch t addr n] hints that the contiguous run [addr, addr + n)
    will be read soon. Uncounted, untraced, asynchronous, best-effort:
    out-of-range windows and hints posted while the worker is busy are
    dropped, and a transient fault abandons the fetch. Never call it
    with a data-dependent window — hints must be a function of public
    shape only, or the physical schedule leaks. No-op without a
    prefetcher. *)

val shard_ios : t -> int array
(** Per-shard counts of block ops served by a [Sharded] backend ([[||]]
    otherwise) — the adversary's per-device view; see
    {!Backend.shard_io_counts}. *)

val shard_count : t -> int option
(** [Some k] when the backend spec has a [Sharded] layer of [k] members
    (including the degenerate [k = 1] stripe), [None] when it has none —
    the two are deliberately distinct: a 1-shard stripe still routes
    through the PRP and records a per-server trace. *)

val shard_traces : t -> Trace.t array
(** The per-server adversary views: trace [s] records exactly the op
    sequence shard [s]'s device served — counted ops and counted
    retries, at {e inner} (per-device) addresses, in the order the
    coordinator issued them — and nothing else (uncounted ops are
    excluded, as in the logical trace). Span structure mirrors the
    logical trace's {!with_span} phases. [[||]] on unsharded backends.
    An algorithm is per-server oblivious when each shard's trace — not
    just the combined logical one — is value-independent; on a
    non-colluding multi-server deployment this is the {e weaker}
    requirement each individual server's view must satisfy, and the
    multi-server tier of the pair-tester checks it shard by shard. *)

val shard_of : t -> int -> int option
(** The shard serving logical address [a] (the stripe's PRP routing),
    [None] on unsharded backends. Public: routing depends only on the
    address and the stripe seed, never on data. *)

val shard_addr : t -> shard:int -> index:int -> int
(** The logical address of the [index]-th block held by [shard] — the
    inverse enumeration of {!shard_of} ([shard_of t (shard_addr t
    ~shard ~index) = Some shard], with inner address [index]). Lets a
    multi-server algorithm address one chosen server's device through
    the logical store. Raises [Invalid_argument] on unsharded backends
    or out-of-range [shard]/negative [index]. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** Bracket a public phase on the logical trace {e and} every per-shard
    trace at once, so shard-level divergence reports name the same
    phases as logical ones. Equivalent to {!Trace.with_span} on
    {!trace} for unsharded stores. *)

val nonce_chunk : int
(** Granularity (2^16) of the nonce high-water reservations described
    above: a crash skips at most this many never-used nonces. *)

val faults_injected : t -> int
(** Transient failures the backend has raised so far (0 unless the
    backend is [Faulty]). Counts faults on {e all} operations, counted
    or not; {!Stats.retries} counts only the retries Bob observes. *)

val sync : t -> unit
(** Flush the backend (fsync for [File]; no-op otherwise). Uncounted:
    durability is the server's concern, not an I/O of the model. *)

val close : t -> unit
(** Release backend resources (file descriptors). The store must not be
    used afterwards. On a journaled store this is also a final commit. *)

val abandon : t -> unit
(** Release every descriptor {e without} the checkpoint, commit and
    flush that {!close} performs: the on-disk state stays exactly as the
    last operation left it, simulating a process kill. Crash-sweep
    harness only; the store must not be used afterwards. *)

(** {2 Crash-atomic journaling}

    A store built from a [Journaled] spec write-ahead-logs every block
    write (see {!Journal}); these are its control surface. All of it is
    out-of-band server state — uncounted, untraced, invisible to Bob's
    view — so journaling on/off changes no trace (pair-tested). On an
    unjournaled store [checkpoint] is a no-op and the queries return
    empty/zero. *)

val journaled : t -> bool
(** Whether a write-ahead journal is attached. *)

val checkpoint : t -> owner:string -> phase:int -> cursor:int -> unit
(** Durably record in [owner]'s slot of the journal's checkpoint table
    that its computation has completed [phase] (plus an opaque
    non-negative [cursor], e.g. a scratch-array base). Also a journal
    group-commit and an exact nonce-counter checkpoint, so it is a safe
    crash boundary: killed after phase [k], the computation reopens with
    [resume:true] and restarts from phase [k + 1]. The table holds
    {!Journal.max_slots} slots keyed by the full owner string, so
    concurrent algorithms on one store — an ORAM rebuild, the ext-sort
    it runs internally, an independent columnsort — each keep their own
    slot; owners still fold their array base and shape into the string,
    and a resumed computation must be the same deterministic computation
    that wrote the slot ({!Ext_sort}'s phase numbering is the canonical
    client). [(0, 0)] is the reserved "no checkpoint" value —
    [~phase:0 ~cursor:0] is {!checkpoint_clear} — and a negative [phase]
    or [cursor], a phase-0 nonzero-cursor pair, an over-long owner, or a
    full table raise [Invalid_argument] (see {!Journal.checkpoint}). *)

val checkpoint_clear : t -> owner:string -> unit
(** Durably free [owner]'s checkpoint slot — the "computation complete"
    mark. Also a commit boundary, like {!checkpoint}; a no-op slot-wise
    if [owner] holds none, and entirely on unjournaled stores. *)

val atomically : t -> (unit -> 'a) -> 'a
(** [atomically t f] runs [f], holding the journal's automatic commits
    for the duration: every write [f] issues lands in the same commit
    group, which either applies whole at the next commit boundary
    (checkpoint, sync, close, or a post-group auto-commit) or rolls back
    whole if the process dies first. Use it to bracket a logical write
    group that spans several backend runs — e.g. a strided cache flush
    covering one compare-exchange window — so a crash can never tear the
    group in the middle. Reentrant; a no-op on unjournaled stores. [f]
    must not call {!sync} or {!checkpoint} itself. *)

val checkpoint_state : t -> owner:string -> int * int
(** [owner]'s checkpoint slot as [(phase, cursor)]; [(0, 0)] when
    [owner] holds no slot (occupancy is explicit in the table encoding,
    and a header torn mid-write degrades to an empty table, never to a
    wrong slot). *)

val checkpoint_slots : t -> (string option * int * int) list
(** The occupied checkpoint slots as [(owner, phase, cursor)] — [None]
    owners are unmigrated v2 legacy-hash slots; [[]] on unjournaled
    stores. Introspection for tests and tooling. *)

val journal_replay : t -> (int * int) list
(** The (addr, count) runs journal replay re-applied when this store was
    opened ([resume:true] on a journaled spec); [[]] otherwise. The
    crash sweep asserts this schedule is bit-identical across pair
    inputs — recovery I/O is a function of the journal alone. *)

val journal_appends : t -> (int * int) list
(** The (addr, count) journal records appended since open — the commit
    schedule, pair-tested data-independent likewise. *)

val journal_commits : t -> int
(** Journal commits (sync, checkpoint, close or automatic) since open. *)

val alloc : t -> int -> int
(** [alloc t n] reserves [n] fresh blocks initialized to all-[Empty] and
    returns the address of the first. [alloc t 0] is a defined no-op: it
    returns the current allocation frontier and changes nothing (useful
    for zero-length views); negative [n] raises [Invalid_argument].
    Allocation itself performs no counted I/O (the server
    zero-initializes); any oblivious initialization an algorithm needs is
    paid by explicit writes. The allocator is a deterministic bump
    allocator, so allocation addresses never depend on data. *)

val read : t -> int -> Block.t
(** [read t addr] performs one I/O and returns a private copy of the
    block. *)

val write : t -> int -> Block.t -> unit
(** [write t addr blk] performs one I/O, re-encrypting under a fresh
    nonce. The block is copied (or serialized), so the caller may keep
    mutating its buffer. *)

val read_many : t -> int -> int -> Block.t array
(** [read_many t addr n] reads the contiguous run
    [addr, addr + n) and returns the [n] blocks in address order.
    Logically identical to [n] calls to {!read}: it records one
    [Trace.Read] op and one Stats tick per block, in address order, and
    a faulty backend gates each block on the same access index — so the
    adversary's view is bit-identical whether or not batching is on.
    Physically (with batching on and [n > 1]) the payloads travel as a
    single backend run — one [pread] on a file store — and the [n]
    blocks are tallied in {!Stats.batched_ios}. [n = 0] returns [[||]]
    without touching anything. *)

val write_many : t -> int -> Block.t array -> unit
(** [write_many t addr blks] writes [blks] to the contiguous run
    starting at [addr]. The mirror image of {!read_many}: per-block
    trace ops, stats and fresh nonces exactly as [Array.length blks]
    calls to {!write} (nonces drawn in index order), one backend run
    when batching. *)

val stats : t -> Stats.t
val trace : t -> Trace.t

val telemetry : t -> Odex_telemetry.Telemetry.t
(** The profiling sink this store reports to ({!Odex_telemetry.Telemetry.disabled}
    unless one was passed to {!create}). *)

val scratch_bytes : t -> int
(** Bytes currently retained by the shared run scratch buffer. Bounded:
    the scratch grows by doubling to the largest run ever requested, so
    it never exceeds [2 * payload_bytes_of_largest_run] — property-tested
    together with the staleness invariant (interleaved batched reads and
    writes never observe bytes left over from an earlier, larger run). *)

val unchecked_peek : t -> int -> Block.t
(** Read a block {e without} counting an I/O or recording a trace entry.
    For tests and experiment harnesses only — the equivalent of the
    experimenter inspecting the disk out-of-band. Transient faults are
    retried silently (no trace, no stats). *)

val unchecked_poke : t -> int -> Block.t -> unit
(** Write without accounting; test/harness setup only. *)

val remove_spec_files : backend_spec -> unit
(** Delete the files behind a spec — [File] stores, shard members and
    [Journaled] journals (recursing through every decorator) — if any.
    Harness cleanup helper. *)
