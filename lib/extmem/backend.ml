module Bigbuf = Odex_crypto.Bigbuf

exception Transient of { addr : int; access : int }

module type S = sig
  type t

  val kind : string
  val payload_bytes : t -> int
  val ensure : t -> int -> unit
  val size : t -> int

  val read : t -> int -> buf:Bigbuf.t -> off:int -> unit
  val write : t -> int -> buf:Bigbuf.t -> off:int -> unit

  val read_run : t -> addr:int -> count:int -> payload:int -> buf:Bigbuf.t -> off:int -> unit
  val write_run : t -> addr:int -> count:int -> payload:int -> buf:Bigbuf.t -> off:int -> unit

  val read_meta : t -> bytes option
  (** The out-of-band metadata blob last stored with {!write_meta}, if
      any. [None] on a fresh store. Not an I/O of the model. *)

  val write_meta : t -> bytes -> unit
  (** Durably associate a small metadata blob (at most {!meta_capacity}
      bytes) with the store — {!Storage} keeps its sealing header there.
      Out-of-band: never counted, never traced, never fault-gated. *)

  val sync : t -> unit
  val close : t -> unit

  val faults : t -> int
  (** Transient failures injected so far (0 for real devices). *)

  val shard_ops : t -> int array
  (** Per-shard block-op counts ([[||]] for unsharded devices). *)

  val shard_count : t -> int option
  (** [Some k] when a striping layer fans this store across [k] separate
      devices (decorators forward); [None] for a single-server store.
      [Some 1] and [None] are deliberately distinct: the former is a
      degenerate stripe, the latter no stripe at all. *)
end

exception Crashed

type t = Packed : (module S with type t = 'a) * 'a -> t

(* Every raw Unix call on the I/O path goes through this gate: a handled
   signal (profiler timers, SIGALRM harnesses) interrupts [read]/[write]/
   [fsync] mid-transfer with [EINTR], which is not a device failure and
   must never abort a counted run half-written. *)
let rec retry_eintr f =
  match f () with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let kind (Packed ((module B), _)) = B.kind
let payload_bytes (Packed ((module B), b)) = B.payload_bytes b
let ensure (Packed ((module B), b)) n = B.ensure b n
let size (Packed ((module B), b)) = B.size b
let read_into (Packed ((module B), b)) addr ~buf ~off = B.read b addr ~buf ~off
let write_from (Packed ((module B), b)) addr ~buf ~off = B.write b addr ~buf ~off

(* bytes convenience for cold paths and tests: one staging buffer per
   call. The sealing fast path goes through [read_into]/[write_from]
   against a long-lived buffer instead. *)
let read (Packed ((module B), b)) addr =
  let buf = Bigbuf.create (B.payload_bytes b) in
  B.read b addr ~buf ~off:0;
  Bigbuf.to_bytes buf

let write (Packed ((module B), b)) addr payload =
  if Bytes.length payload <> B.payload_bytes b then
    invalid_arg "Backend.write: payload has wrong size";
  B.write b addr ~buf:(Bigbuf.of_bytes payload) ~off:0

let read_run (Packed ((module B), b)) ~addr ~count ~payload ~buf ~off =
  B.read_run b ~addr ~count ~payload ~buf ~off

let write_run (Packed ((module B), b)) ~addr ~count ~payload ~buf ~off =
  B.write_run b ~addr ~count ~payload ~buf ~off

let read_meta (Packed ((module B), b)) = B.read_meta b
let write_meta (Packed ((module B), b)) m = B.write_meta b m
let sync (Packed ((module B), b)) = B.sync b
let close (Packed ((module B), b)) = B.close b
let shard_io_counts (Packed ((module B), b)) = B.shard_ops b
let shard_count (Packed ((module B), b)) = B.shard_count b

let meta_capacity = 40

let check_meta ~who m =
  if Bytes.length m > meta_capacity then
    invalid_arg (Printf.sprintf "%s: metadata exceeds %d bytes" who meta_capacity)

(* Single-block region validation: [buf[off .. off+payload)] must exist
   before any byte moves. *)
let check_block ~who ~payload ~buf ~off =
  if off < 0 || off + payload > Bigbuf.length buf then
    invalid_arg (who ^ ": buffer region out of bounds")

(* Shared run-argument validation: the whole window must be legal before
   any byte moves, so an out-of-bounds run raises without a partial
   transfer on every backend. *)
let check_run ~who ~blocks ~addr ~count ~payload ~buf ~off =
  if count < 0 then invalid_arg (who ^ ": negative run length");
  if payload < 1 then invalid_arg (who ^ ": payload must be >= 1");
  if addr < 0 || addr + count > blocks then
    invalid_arg
      (Printf.sprintf "%s: run [%d, %d) out of bounds (%d blocks)" who addr (addr + count)
         blocks);
  if off < 0 || off + (count * payload) > Bigbuf.length buf then
    invalid_arg (who ^ ": buffer region out of bounds")

(* ---------------- in-memory ---------------- *)

(* One flat off-heap arena, block [addr] at byte offset
   [addr * payload]: reads and writes are single blits straight between
   the arena and the caller's buffer — no per-block allocation on either
   direction (the regression test in test_backend pins this down).
   Fresh arena space is zero-filled, so a never-written slot reads as a
   zero payload. *)
module Mem = struct
  type t = {
    payload : int;
    mutable arena : Bigbuf.t;
    mutable len : int;
    mutable meta : bytes option;
  }

  let kind = "mem"
  let payload_bytes t = t.payload

  let read_meta t = Option.map Bytes.copy t.meta

  let write_meta t m =
    check_meta ~who:"Backend.Mem.write_meta" m;
    t.meta <- Some (Bytes.copy m)

  let ensure t n =
    let need = n * t.payload in
    if need > Bigbuf.length t.arena then begin
      let cap = max need (max (16 * t.payload) (2 * Bigbuf.length t.arena)) in
      let fresh = Bigbuf.create cap in
      Bigbuf.blit t.arena 0 fresh 0 (t.len * t.payload);
      t.arena <- fresh
    end;
    if n > t.len then t.len <- n

  let size t = t.len

  let check t addr =
    if addr < 0 || addr >= t.len then
      invalid_arg (Printf.sprintf "Backend.Mem: address %d out of bounds (%d)" addr t.len)

  let read t addr ~buf ~off =
    check t addr;
    check_block ~who:"Backend.Mem.read" ~payload:t.payload ~buf ~off;
    Bigbuf.blit t.arena (addr * t.payload) buf off t.payload

  let write t addr ~buf ~off =
    check t addr;
    check_block ~who:"Backend.Mem.write" ~payload:t.payload ~buf ~off;
    Bigbuf.blit buf off t.arena (addr * t.payload) t.payload

  let check_payload t payload who =
    if payload <> t.payload then
      invalid_arg (who ^ ": run payload size differs from the store's")

  let read_run t ~addr ~count ~payload ~buf ~off =
    check_payload t payload "Backend.Mem.read_run";
    check_run ~who:"Backend.Mem.read_run" ~blocks:t.len ~addr ~count ~payload ~buf ~off;
    if count > 0 then Bigbuf.blit t.arena (addr * payload) buf off (count * payload)

  let write_run t ~addr ~count ~payload ~buf ~off =
    check_payload t payload "Backend.Mem.write_run";
    check_run ~who:"Backend.Mem.write_run" ~blocks:t.len ~addr ~count ~payload ~buf ~off;
    if count > 0 then Bigbuf.blit buf off t.arena (addr * payload) (count * payload)

  let sync _ = ()
  let close _ = ()
  let faults _ = 0
  let shard_ops _ = [||]
  let shard_count _ = None
end

let mem ~payload_size () =
  if payload_size < 1 then invalid_arg "Backend.mem: payload_size must be >= 1";
  Packed
    ((module Mem), { Mem.payload = payload_size; arena = Bigbuf.create 0; len = 0; meta = None })

(* ---------------- file-backed ---------------- *)

(* On-disk layout: a fixed 64-byte header, then block [addr] at byte
   offset [header_bytes + addr * payload_size].

     0 .. 7   magic "ODEXSTO1"
     8 .. 15  payload_size (int64 LE) — validated on reopen
    16 .. 23  metadata length (int64 LE, 0 when none)
    24 .. 63  metadata blob (Storage's sealing header lives here)

   The header is written when a fresh file is created, so every store in
   this format self-describes; opening a non-empty file without the
   magic fails loudly instead of misreading blocks at shifted offsets.

   Header traffic stays on small [bytes] buffers through the shared file
   offset; block payloads move positionally ({!Bigio}) straight between
   the file and the caller's off-heap buffer — no staging copy, and no
   seek state shared with the header path. *)
let file_header_bytes = 64

let file_magic = "ODEXSTO1"

module File = struct
  type t = {
    fd : Unix.file_descr;
    payload_size : int;
    mutable blocks : int;
    mutable closed : bool;
  }

  let kind = "file"
  let payload_bytes t = t.payload_size

  let pwrite_all fd ~pos buf =
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    let len = Bytes.length buf in
    let done_ = ref 0 in
    while !done_ < len do
      done_ := !done_ + retry_eintr (fun () -> Unix.write fd buf !done_ (len - !done_))
    done

  let pread_all fd ~pos buf =
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    let len = Bytes.length buf in
    let done_ = ref 0 in
    while !done_ < len do
      let k = retry_eintr (fun () -> Unix.read fd buf !done_ (len - !done_)) in
      if k = 0 then failwith "Backend.File: short header read";
      done_ := !done_ + k
    done

  let write_header_fields t ~meta =
    let h = Bytes.make file_header_bytes '\000' in
    Bytes.blit_string file_magic 0 h 0 8;
    Bytes.set_int64_le h 8 (Int64.of_int t.payload_size);
    (match meta with
    | None -> Bytes.set_int64_le h 16 0L
    | Some m ->
        Bytes.set_int64_le h 16 (Int64.of_int (Bytes.length m));
        Bytes.blit m 0 h 24 (Bytes.length m));
    pwrite_all t.fd ~pos:0 h

  let read_header t =
    let h = Bytes.create file_header_bytes in
    pread_all t.fd ~pos:0 h;
    if Bytes.sub_string h 0 8 <> file_magic then
      invalid_arg "Backend.File: unrecognized store format (bad magic)";
    let payload = Int64.to_int (Bytes.get_int64_le h 8) in
    if payload <> t.payload_size then
      invalid_arg
        (Printf.sprintf "Backend.File: store has payload size %d, expected %d" payload
           t.payload_size);
    let len = Int64.to_int (Bytes.get_int64_le h 16) in
    if len < 0 || len > meta_capacity then
      invalid_arg "Backend.File: corrupt store header (metadata length)";
    if len = 0 then None else Some (Bytes.sub h 24 len)

  let create ~path ~payload_size =
    if payload_size < 1 then invalid_arg "Backend.file: payload_size must be >= 1";
    let fd =
      retry_eintr (fun () ->
          Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o600)
    in
    let size = (Unix.fstat fd).Unix.st_size in
    let t = { fd; payload_size; blocks = 0; closed = false } in
    (match
       if size = 0 then write_header_fields t ~meta:None
       else begin
         if size < file_header_bytes then
           invalid_arg "Backend.File: unrecognized store format (no header)";
         ignore (read_header t);
         let data = size - file_header_bytes in
         (* A trailing fragment means a write was torn mid-block (a crash
            landed between the kernel's partial transfers). Absorbing it
            into the block count would silently expose a corrupt block;
            surface it instead — journal replay is the recovery path. *)
         if data mod payload_size <> 0 then
           invalid_arg
             (Printf.sprintf
                "Backend.File: torn store: %d trailing bytes beyond the last whole block \
                 (crash damage? recover via a journaled reopen)"
                (data mod payload_size));
         t.blocks <- data / payload_size
       end
     with
    | () -> ()
    | exception e ->
        Unix.close fd;
        raise e);
    t

  let read_meta t =
    if t.closed then invalid_arg "Backend.File: store is closed";
    read_header t

  let write_meta t m =
    check_meta ~who:"Backend.File.write_meta" m;
    if t.closed then invalid_arg "Backend.File: store is closed";
    write_header_fields t ~meta:(Some m)

  let ensure t n =
    if n > t.blocks then begin
      retry_eintr (fun () -> Unix.ftruncate t.fd (file_header_bytes + (n * t.payload_size)));
      t.blocks <- n
    end

  let size t = t.blocks

  let check t addr =
    if t.closed then invalid_arg "Backend.File: store is closed";
    if addr < 0 || addr >= t.blocks then
      invalid_arg (Printf.sprintf "Backend.File: address %d out of bounds (%d)" addr t.blocks)

  let pos_of t addr = file_header_bytes + (addr * t.payload_size)

  let read t addr ~buf ~off =
    check t addr;
    check_block ~who:"Backend.File.read" ~payload:t.payload_size ~buf ~off;
    Bigio.read_all ~who:"Backend.File" t.fd ~pos:(pos_of t addr) buf ~off ~len:t.payload_size

  let write t addr ~buf ~off =
    check t addr;
    check_block ~who:"Backend.File.write" ~payload:t.payload_size ~buf ~off;
    Bigio.write_all t.fd ~pos:(pos_of t addr) buf ~off ~len:t.payload_size

  let check_run_payload t payload =
    if t.closed then invalid_arg "Backend.File: store is closed";
    if payload <> t.payload_size then
      invalid_arg "Backend.File: run payload size differs from the store's"

  let read_run t ~addr ~count ~payload ~buf ~off =
    check_run_payload t payload;
    check_run ~who:"Backend.File.read_run" ~blocks:t.blocks ~addr ~count ~payload ~buf ~off;
    if count > 0 then
      Bigio.read_all ~who:"Backend.File" t.fd ~pos:(pos_of t addr) buf ~off
        ~len:(count * payload)

  let write_run t ~addr ~count ~payload ~buf ~off =
    check_run_payload t payload;
    check_run ~who:"Backend.File.write_run" ~blocks:t.blocks ~addr ~count ~payload ~buf ~off;
    if count > 0 then
      Bigio.write_all t.fd ~pos:(pos_of t addr) buf ~off ~len:(count * payload)

  let sync t = if not t.closed then retry_eintr (fun () -> Unix.fsync t.fd)

  let close t =
    if not t.closed then begin
      t.closed <- true;
      Unix.close t.fd
    end

  let faults _ = 0
  let shard_ops _ = [||]
  let shard_count _ = None
end

let file ~path ~payload_size = Packed ((module File), File.create ~path ~payload_size)

(* ---------------- deterministic fault injection ---------------- *)

type fault_plan = { seed : int; failure_rate : float; max_burst : int }

module Faulty = struct
  type nonrec t = {
    inner : t;
    plan : fault_plan;
    mutable access : int;  (** Global access counter — the only schedule input. *)
    mutable burst_left : int;
    mutable recovering : bool;
        (** The access right after a burst always succeeds: transient
            bursts end with a recovery, so a logical I/O needs at most
            [max_burst] retries and a [max_burst < max_retries] budget
            can never be spuriously exhausted. *)
    mutable injected : int;
  }

  let kind = "faulty"

  let payload_bytes t = payload_bytes t.inner

  (* splitmix64-style finalizer: an avalanching hash of (seed, access
     index). The schedule never looks at the address or the payload, so
     it is data-oblivious by construction. *)
  let mix64 z =
    let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    Int64.(logxor z (shift_right_logical z 31))

  let roll t =
    let h =
      mix64 (Int64.add (Int64.of_int t.plan.seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (t.access + 1))))
    in
    let u =
      Int64.to_float (Int64.shift_right_logical h 11) /. Float.pow 2. 53. (* in [0,1) *)
    in
    if u < t.plan.failure_rate then
      (* The low bits, independent of the rate comparison for any sane
         rate, pick the burst length in [1, max_burst]. *)
      Some (1 + (Int64.to_int (Int64.logand h 0x3FL) mod max 1 t.plan.max_burst))
    else None

  let gate t addr =
    let access = t.access in
    t.access <- access + 1;
    if t.burst_left > 0 then begin
      t.burst_left <- t.burst_left - 1;
      if t.burst_left = 0 then t.recovering <- true;
      t.injected <- t.injected + 1;
      raise (Transient { addr; access })
    end
    else if t.recovering then t.recovering <- false
    else
      match roll t with
      | Some burst ->
          t.burst_left <- burst - 1;
          if t.burst_left = 0 then t.recovering <- true;
          t.injected <- t.injected + 1;
          raise (Transient { addr; access })
      | None -> ()

  let ensure t n = ensure t.inner n
  let size t = size t.inner

  (* Metadata is the server's out-of-band state, not a gated access: the
     fault schedule's access counter must not depend on how often the
     client checkpoints its sealing header. *)
  let read_meta t = read_meta t.inner
  let write_meta t m = write_meta t.inner m

  let read t addr ~buf ~off =
    gate t addr;
    read_into t.inner addr ~buf ~off

  let write t addr ~buf ~off =
    gate t addr;
    write_from t.inner addr ~buf ~off

  (* Runs iterate block by block, gating each address exactly as the
     per-block API would: the access counter — the schedule's only input
     — advances once per block per attempt, so a batched run and a
     per-block run replay byte-identical fault sequences. A Transient at
     block [addr + i] leaves blocks [addr, addr + i) fully transferred,
     which is the resume contract {!Storage}'s retry loop relies on.
     Bounds are validated against the inner store before the first gate,
     so an out-of-bounds run neither transfers nor consumes accesses. *)

  let check_run_bounds who t ~addr ~count ~payload ~buf ~off =
    check_run ~who ~blocks:(size t) ~addr ~count ~payload ~buf ~off

  let read_run t ~addr ~count ~payload ~buf ~off =
    check_run_bounds "Backend.Faulty.read_run" t ~addr ~count ~payload ~buf ~off;
    for i = 0 to count - 1 do
      gate t (addr + i);
      read_run t.inner ~addr:(addr + i) ~count:1 ~payload ~buf ~off:(off + (i * payload))
    done

  let write_run t ~addr ~count ~payload ~buf ~off =
    check_run_bounds "Backend.Faulty.write_run" t ~addr ~count ~payload ~buf ~off;
    for i = 0 to count - 1 do
      gate t (addr + i);
      write_run t.inner ~addr:(addr + i) ~count:1 ~payload ~buf ~off:(off + (i * payload))
    done

  let sync t = sync t.inner
  let close t = close t.inner
  let faults t = t.injected
  let shard_ops t = shard_io_counts t.inner
  let shard_count t = shard_count t.inner
end

let faulty plan inner =
  if plan.failure_rate < 0. || plan.failure_rate > 1. then
    invalid_arg "Backend.faulty: failure_rate must be in [0, 1]";
  if plan.max_burst < 1 then invalid_arg "Backend.faulty: max_burst must be >= 1";
  Packed
    ( (module Faulty),
      { Faulty.inner; plan; access = 0; burst_left = 0; recovering = false; injected = 0 } )

let faults_injected (Packed ((module B), b)) = B.faults b

(* ---------------- sharded, domain-parallel striping ---------------- *)

(* K inner stores behind one logical address space. Logical block [a]
   belongs to group [g = a / K] with lane [j = a mod K] and lives on
   shard [perm.((j + g) mod K)] at inner address [g], where [perm] is a
   keyed PRP of the K lanes. Three properties carry the design:

   - {e bijection}: within a group the K lanes map to the K distinct
     shards (a rotation of a permutation), so logical <-> (shard, inner)
     is one-to-one and every group stripes across all K devices;
   - {e data independence}: the fan-out is a pure function of the block
     index and the (public) seed — never of payloads — so striping can
     not leak anything the flat address sequence did not;
   - {e contiguity}: the logical address shard [s] serves at inner
     address [g] is [g*K + ((perm_inv.(s) - g) mod K)], strictly
     increasing in [g], so a contiguous logical run decomposes into
     exactly one contiguous inner run per shard. The batched fast path
     (one positioned transfer per device) survives under the stripe.

   Runs big enough to amortize the handoff are dispatched to one worker
   domain per shard (spawned lazily on first use, joined on [close]);
   smaller runs and single-block ops execute inline on the caller's
   domain through the same decomposition, so which mode ran never shows
   in the logical trace. *)

module Sharded = struct
  type worker = {
    mu : Mutex.t;
    cv : Condition.t;
    mutable job : (unit -> unit) option;
    mutable result : exn option option;  (** [Some None] = done, [Some (Some e)] = raised. *)
    mutable stop : bool;
    mutable dom : unit Domain.t option;
  }

  type nonrec t = {
    k : int;
    inners : t array;
    perm : int array;  (** lane -> shard *)
    perm_inv : int array;  (** shard -> lane *)
    mutable len : int;  (** Logical block count (inner sizes are rounded up). *)
    scratch : Bigbuf.t ref array;  (** Per-shard gather/scatter buffers. *)
    ops : int array;  (** Per-shard block ops, tallied by the coordinator. *)
    workers : worker array;
    mutable spawned : bool;
    mutable closed : bool;
  }

  let kind = "sharded"

  let payload_bytes t = payload_bytes t.inners.(0)

  (* ---- worker protocol: one mailbox per shard, mutex + condvar.
     Only the coordinator posts and only worker [s] takes from mailbox
     [s]; the mutex handoff gives the happens-before edges the OCaml
     memory model needs for the scratch and caller buffers. ---- *)

  let rec worker_loop w =
    Mutex.lock w.mu;
    while w.job = None && not w.stop do
      Condition.wait w.cv w.mu
    done;
    if w.stop then Mutex.unlock w.mu
    else begin
      let f = Option.get w.job in
      Mutex.unlock w.mu;
      let r = (try f (); None with e -> Some e) in
      Mutex.lock w.mu;
      w.job <- None;
      w.result <- Some r;
      Condition.signal w.cv;
      Mutex.unlock w.mu;
      worker_loop w
    end

  let spawn_workers t =
    if not t.spawned then begin
      t.spawned <- true;
      Array.iter (fun w -> w.dom <- Some (Domain.spawn (fun () -> worker_loop w))) t.workers
    end

  let post w f =
    Mutex.lock w.mu;
    w.job <- Some f;
    w.result <- None;
    Condition.signal w.cv;
    Mutex.unlock w.mu

  let await w =
    Mutex.lock w.mu;
    while w.result = None do
      Condition.wait w.cv w.mu
    done;
    let r = Option.get w.result in
    w.result <- None;
    Mutex.unlock w.mu;
    r

  (* ---- the striping map ---- *)

  let lane t s g =
    let j = (t.perm_inv.(s) - g) mod t.k in
    if j < 0 then j + t.k else j

  let logical t s g = (g * t.k) + lane t s g

  let route t a =
    let g = a / t.k and j = a mod t.k in
    (t.perm.((j + g) mod t.k), g)

  (* Member inner-address interval of shard [s] within logical [lo, hi):
     [logical t s g] is strictly increasing in [g], so the members form
     one contiguous inner run (possibly empty). Interior groups always
     contribute; only the two boundary groups need the window check. *)
  let members t s ~lo ~hi =
    let g0 = lo / t.k and g1 = (hi - 1) / t.k in
    let gs = if logical t s g0 >= lo then g0 else g0 + 1 in
    let ge = if logical t s g1 < hi then g1 else g1 - 1 in
    if gs > ge then None else Some (gs, ge)

  let scratch t s need =
    let r = t.scratch.(s) in
    if Bigbuf.length !r < need then r := Bigbuf.create (max need (2 * Bigbuf.length !r));
    !r

  (* Execute one closure per participating shard and aggregate failures.
     Every job runs to completion (or its own fault) even when another
     shard faults first: the resume contract promises all logical blocks
     below the faulted address transferred, and those blocks live on the
     other shards. The smallest faulted logical address is re-raised; a
     non-transient exception wins over any transient (it is a bug, not
     weather). Serial and parallel execution share the decomposition, so
     which one ran never shows in the logical trace. *)
  let dispatch t ~parallel (jobs : (int * (unit -> unit)) array) =
    let outcomes =
      if parallel && Array.length jobs > 1 then begin
        spawn_workers t;
        Array.iter (fun (s, job) -> post t.workers.(s) job) jobs;
        Array.map (fun (s, _) -> await t.workers.(s)) jobs
      end
      else Array.map (fun (_, job) -> (try job (); None with e -> Some e)) jobs
    in
    let hard = ref None and fault = ref None in
    Array.iter
      (fun o ->
        match o with
        | None -> ()
        | Some (Transient f) -> (
            match !fault with
            | Some (Transient g) when g.addr <= f.addr -> ()
            | _ -> fault := Some (Transient f))
        | Some e -> if !hard = None then hard := Some e)
      outcomes;
    (match !hard with Some e -> raise e | None -> ());
    match !fault with Some e -> raise e | None -> ()

  let check_open t = if t.closed then invalid_arg "Backend.Sharded: store is closed"

  (* Below [2K] blocks a run cannot give every worker two blocks to
     stream; the handoff would dominate, so it runs inline. *)
  let parallel_threshold t = 2 * t.k

  let run_ops ~write t ~addr ~count ~payload ~buf ~off =
    let who = if write then "Backend.Sharded.write_run" else "Backend.Sharded.read_run" in
    check_open t;
    check_run ~who ~blocks:t.len ~addr ~count ~payload ~buf ~off;
    if count > 0 then begin
      let lo = addr and hi = addr + count in
      let jobs = ref [] in
      for s = t.k - 1 downto 0 do
        match members t s ~lo ~hi with
        | None -> ()
        | Some (gs, ge) -> (
            let n = ge - gs + 1 in
            t.ops.(s) <- t.ops.(s) + n;
            let job () =
              let scr = scratch t s (n * payload) in
              if write then begin
                for g = gs to ge do
                  Bigbuf.blit buf
                    (off + ((logical t s g - lo) * payload))
                    scr
                    ((g - gs) * payload)
                    payload
                done;
                match write_run t.inners.(s) ~addr:gs ~count:n ~payload ~buf:scr ~off:0 with
                | () -> ()
                | exception Transient { addr = gf; access } ->
                    (* Inner blocks [gs, gf) landed; their logical
                       addresses are exactly the members below the
                       faulted one. *)
                    raise (Transient { addr = logical t s gf; access })
              end
              else begin
                let scatter upto =
                  for g = gs to upto do
                    Bigbuf.blit scr
                      ((g - gs) * payload)
                      buf
                      (off + ((logical t s g - lo) * payload))
                      payload
                  done
                in
                match read_run t.inners.(s) ~addr:gs ~count:n ~payload ~buf:scr ~off:0 with
                | () -> scatter ge
                | exception Transient { addr = gf; access } ->
                    scatter (gf - 1);
                    raise (Transient { addr = logical t s gf; access })
              end
            in
            jobs := (s, job) :: !jobs)
      done;
      dispatch t
        ~parallel:(t.k > 1 && count >= parallel_threshold t)
        (Array.of_list !jobs)
    end

  let read_run t ~addr ~count ~payload ~buf ~off =
    run_ops ~write:false t ~addr ~count ~payload ~buf ~off

  let write_run t ~addr ~count ~payload ~buf ~off =
    run_ops ~write:true t ~addr ~count ~payload ~buf ~off

  let check_addr t a =
    check_open t;
    if a < 0 || a >= t.len then
      invalid_arg (Printf.sprintf "Backend.Sharded: address %d out of bounds (%d)" a t.len)

  let read t a ~buf ~off =
    check_addr t a;
    let s, g = route t a in
    t.ops.(s) <- t.ops.(s) + 1;
    read_into t.inners.(s) g ~buf ~off

  let write t a ~buf ~off =
    check_addr t a;
    let s, g = route t a in
    t.ops.(s) <- t.ops.(s) + 1;
    write_from t.inners.(s) g ~buf ~off

  let ensure t n =
    check_open t;
    if n > t.len then begin
      let groups = (n + t.k - 1) / t.k in
      Array.iter (fun inner -> ensure inner groups) t.inners;
      t.len <- n
    end

  let size t = t.len

  (* The logical length is sharded-layer state: inner sizes are rounded
     up to whole groups, so it cannot be recovered from them. It rides
     as an 8-byte prefix in front of the client's metadata blob on shard
     0 and is re-read on reopen — persisted exactly as often as the
     client checkpoints its own header, so a crash resumes at the last
     checkpointed length. *)
  let meta_reserved = 8

  (* The generic accessor, saved before the module's own [read_meta]
     shadows it ([recover_len] runs on inner stores, not on [t]). *)
  let inner_read_meta = read_meta

  let read_meta t =
    check_open t;
    match inner_read_meta t.inners.(0) with
    | Some blob when Bytes.length blob >= meta_reserved ->
        Some (Bytes.sub blob meta_reserved (Bytes.length blob - meta_reserved))
    | Some _ | None -> None

  let write_meta t m =
    check_open t;
    if Bytes.length m > meta_capacity - meta_reserved then
      invalid_arg
        (Printf.sprintf "Backend.Sharded.write_meta: metadata exceeds %d bytes"
           (meta_capacity - meta_reserved));
    let blob = Bytes.create (meta_reserved + Bytes.length m) in
    Bytes.set_int64_le blob 0 (Int64.of_int t.len);
    Bytes.blit m 0 blob meta_reserved (Bytes.length m);
    write_meta t.inners.(0) blob

  let recover_len inners =
    match inner_read_meta inners.(0) with
    | Some blob when Bytes.length blob >= meta_reserved ->
        let len = Int64.to_int (Bytes.get_int64_le blob 0) in
        if len < 0 then 0 else len
    | Some _ | None -> 0

  let sync t =
    check_open t;
    Array.iter sync t.inners

  let close t =
    if not t.closed then begin
      t.closed <- true;
      if t.spawned then
        Array.iter
          (fun w ->
            Mutex.lock w.mu;
            w.stop <- true;
            Condition.signal w.cv;
            Mutex.unlock w.mu;
            match w.dom with
            | Some d ->
                Domain.join d;
                w.dom <- None
            | None -> ())
          t.workers;
      Array.iter close t.inners
    end

  let faults t = Array.fold_left (fun acc inner -> acc + faults_injected inner) 0 t.inners
  let shard_ops t = Array.copy t.ops
  let shard_count t = Some t.k
end

let shard_perm ~shards ~seed =
  if shards < 1 then invalid_arg "Backend.sharded: shards must be >= 1";
  let prp = Odex_crypto.Prp.create ~domain:shards (Odex_crypto.Prf.key_of_int seed) in
  let perm = Array.init shards (Odex_crypto.Prp.apply prp) in
  let perm_inv = Array.make shards 0 in
  Array.iteri (fun j s -> perm_inv.(s) <- j) perm;
  (perm, perm_inv)

let shard_route ~shards ~seed a =
  if a < 0 then invalid_arg "Backend.shard_route: negative address";
  let perm, _ = shard_perm ~shards ~seed in
  let g = a / shards and j = a mod shards in
  (perm.((j + g) mod shards), g)

let sharded ~seed inners =
  let k = Array.length inners in
  if k >= 1 then begin
    let p0 = payload_bytes inners.(0) in
    Array.iter
      (fun inner ->
        if payload_bytes inner <> p0 then
          invalid_arg "Backend.sharded: inner stores disagree on payload size")
      inners
  end;
  let perm, perm_inv = shard_perm ~shards:k ~seed in
  let t =
    {
      Sharded.k;
      inners;
      perm;
      perm_inv;
      len = Sharded.recover_len inners;
      scratch = Array.init k (fun _ -> ref (Bigbuf.create 0));
      ops = Array.make k 0;
      workers =
        Array.init k (fun _ ->
            {
              Sharded.mu = Mutex.create ();
              cv = Condition.create ();
              job = None;
              result = None;
              stop = false;
              dom = None;
            });
      spawned = false;
      closed = false;
    }
  in
  Packed ((module Sharded), t)

(* ---------------- telemetry instrumentation ---------------- *)

(* A timing shim around any backend: each device call is bracketed with
   the monotonic clock and reported to the sink under the {e inner}
   backend's kind, so a profile of a faulty-over-file stack attributes
   latencies to "faulty" as one composite device. The shim carries no
   state of its own and never looks at payload contents — it observes
   operation kinds, block counts, byte counts and durations, all of
   which the server already sees. A raised [Transient] propagates
   untimed (the eventual successful attempt is what lands in the
   histogram; failed attempts are visible as fault/retry counters at the
   Storage layer). {!Storage} installs this wrapper only when its sink
   is enabled, so a disabled sink costs literally nothing on the I/O
   path. *)

module Instrumented = struct
  module Tel = Odex_telemetry.Telemetry

  type nonrec t = { inner : t; tel : Tel.t; inner_kind : string }

  let kind = "instrumented"

  let payload_bytes t = payload_bytes t.inner

  let time t op ~blocks ~bytes f =
    let t0 = Tel.now_ns () in
    let r = f () in
    Tel.record_op t.tel ~backend:t.inner_kind ~op ~blocks ~bytes
      ~ns:(Int64.sub (Tel.now_ns ()) t0);
    r

  let ensure t n = ensure t.inner n
  let size t = size t.inner
  let read_meta t = read_meta t.inner
  let write_meta t m = write_meta t.inner m

  let read t addr ~buf ~off =
    time t Tel.Read ~blocks:1 ~bytes:(payload_bytes t) (fun () ->
        read_into t.inner addr ~buf ~off)

  let write t addr ~buf ~off =
    time t Tel.Write ~blocks:1 ~bytes:(payload_bytes t) (fun () ->
        write_from t.inner addr ~buf ~off)

  let read_run t ~addr ~count ~payload ~buf ~off =
    time t Tel.Read_run ~blocks:count ~bytes:(count * payload) (fun () ->
        read_run t.inner ~addr ~count ~payload ~buf ~off)

  let write_run t ~addr ~count ~payload ~buf ~off =
    time t Tel.Write_run ~blocks:count ~bytes:(count * payload) (fun () ->
        write_run t.inner ~addr ~count ~payload ~buf ~off)

  let sync t = time t Tel.Sync ~blocks:0 ~bytes:0 (fun () -> sync t.inner)
  let close t = close t.inner
  let faults t = faults_injected t.inner
  let shard_ops t = shard_io_counts t.inner
  let shard_count t = shard_count t.inner
end

let instrument tel inner =
  Packed ((module Instrumented), { Instrumented.inner; tel; inner_kind = kind inner })

(* ---------------- deterministic crash injection ---------------- *)

(* A kill-switch decorator for crash-recovery sweeps: the first [ops]
   block operations (and syncs) pass through, then every further one
   raises {!Crashed} without touching the inner store — the moment the
   process "died". Unlike {!Faulty}'s transient weather this is terminal:
   {!Storage}'s retry engine does not catch it, so it unwinds to the
   harness, which abandons the store exactly as a SIGKILL would leave it
   and reopens through journal replay. [ensure]/metadata/[close] are not
   gated: the sweep's unit of interruption is the block op, and the
   harness still needs to release descriptors after the "crash". *)

module Crashing = struct
  type nonrec t = { inner : t; mutable budget : int; mutable survived : int }

  let kind = "crashing"

  let payload_bytes t = payload_bytes t.inner

  let gate t =
    if t.budget <= 0 then raise Crashed;
    t.budget <- t.budget - 1;
    t.survived <- t.survived + 1

  let ensure t n = ensure t.inner n
  let size t = size t.inner
  let read_meta t = read_meta t.inner
  let write_meta t m = write_meta t.inner m

  let read t addr ~buf ~off =
    gate t;
    read_into t.inner addr ~buf ~off

  let write t addr ~buf ~off =
    gate t;
    write_from t.inner addr ~buf ~off

  let read_run t ~addr ~count ~payload ~buf ~off =
    gate t;
    read_run t.inner ~addr ~count ~payload ~buf ~off

  let write_run t ~addr ~count ~payload ~buf ~off =
    gate t;
    write_run t.inner ~addr ~count ~payload ~buf ~off

  let sync t =
    gate t;
    sync t.inner

  let close t = close t.inner
  let faults t = faults_injected t.inner
  let shard_ops t = shard_io_counts t.inner
  let shard_count t = shard_count t.inner
end

let crash_after ~ops inner =
  if ops < 0 then invalid_arg "Backend.crash_after: negative op budget";
  Packed ((module Crashing), { Crashing.inner; budget = ops; survived = 0 })
