exception Transient of { addr : int; access : int }

module type S = sig
  type t

  val kind : string
  val ensure : t -> int -> unit
  val size : t -> int
  val read : t -> int -> bytes
  val write : t -> int -> bytes -> unit

  val read_run : t -> addr:int -> count:int -> payload:int -> buf:bytes -> off:int -> unit
  val write_run : t -> addr:int -> count:int -> payload:int -> buf:bytes -> off:int -> unit

  val sync : t -> unit
  val close : t -> unit

  val faults : t -> int
  (** Transient failures injected so far (0 for real devices). *)
end

type t = Packed : (module S with type t = 'a) * 'a -> t

let kind (Packed ((module B), _)) = B.kind
let ensure (Packed ((module B), b)) n = B.ensure b n
let size (Packed ((module B), b)) = B.size b
let read (Packed ((module B), b)) addr = B.read b addr
let write (Packed ((module B), b)) addr payload = B.write b addr payload

let read_run (Packed ((module B), b)) ~addr ~count ~payload ~buf ~off =
  B.read_run b ~addr ~count ~payload ~buf ~off

let write_run (Packed ((module B), b)) ~addr ~count ~payload ~buf ~off =
  B.write_run b ~addr ~count ~payload ~buf ~off

let sync (Packed ((module B), b)) = B.sync b
let close (Packed ((module B), b)) = B.close b

(* Shared run-argument validation: the whole window must be legal before
   any byte moves, so an out-of-bounds run raises without a partial
   transfer on every backend. *)
let check_run ~who ~blocks ~addr ~count ~payload ~buf ~off =
  if count < 0 then invalid_arg (who ^ ": negative run length");
  if payload < 1 then invalid_arg (who ^ ": payload must be >= 1");
  if addr < 0 || addr + count > blocks then
    invalid_arg
      (Printf.sprintf "%s: run [%d, %d) out of bounds (%d blocks)" who addr (addr + count)
         blocks);
  if off < 0 || off + (count * payload) > Bytes.length buf then
    invalid_arg (who ^ ": buffer region out of bounds")

(* ---------------- in-memory ---------------- *)

module Mem = struct
  type t = { mutable slots : bytes array; mutable len : int }

  let kind = "mem"

  let ensure t n =
    if n > Array.length t.slots then begin
      let cap = max n (max 16 (2 * Array.length t.slots)) in
      let fresh = Array.make cap Bytes.empty in
      Array.blit t.slots 0 fresh 0 t.len;
      t.slots <- fresh
    end;
    if n > t.len then t.len <- n

  let size t = t.len

  let check t addr =
    if addr < 0 || addr >= t.len then
      invalid_arg (Printf.sprintf "Backend.Mem: address %d out of bounds (%d)" addr t.len)

  let read t addr =
    check t addr;
    Bytes.copy t.slots.(addr)

  let write t addr payload =
    check t addr;
    t.slots.(addr) <- Bytes.copy payload

  (* Runs are plain blits: no allocation on read (the caller's buffer is
     filled in place) and, once a slot has been written at its final
     payload size, none on write either (the slot buffer is reused). *)

  let read_run t ~addr ~count ~payload ~buf ~off =
    check_run ~who:"Backend.Mem.read_run" ~blocks:t.len ~addr ~count ~payload ~buf ~off;
    for i = 0 to count - 1 do
      let slot = t.slots.(addr + i) in
      if Bytes.length slot <> payload then
        invalid_arg "Backend.Mem.read_run: slot has a different payload size";
      Bytes.blit slot 0 buf (off + (i * payload)) payload
    done

  let write_run t ~addr ~count ~payload ~buf ~off =
    check_run ~who:"Backend.Mem.write_run" ~blocks:t.len ~addr ~count ~payload ~buf ~off;
    for i = 0 to count - 1 do
      let src = off + (i * payload) in
      let slot = t.slots.(addr + i) in
      if Bytes.length slot = payload then Bytes.blit buf src slot 0 payload
      else t.slots.(addr + i) <- Bytes.sub buf src payload
    done

  let sync _ = ()
  let close _ = ()
  let faults _ = 0
end

let mem () = Packed ((module Mem), { Mem.slots = [||]; len = 0 })

(* ---------------- file-backed ---------------- *)

module File = struct
  type t = {
    fd : Unix.file_descr;
    payload_size : int;
    mutable blocks : int;
    mutable closed : bool;
  }

  let kind = "file"

  let create ~path ~payload_size =
    if payload_size < 1 then invalid_arg "Backend.file: payload_size must be >= 1";
    let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o600 in
    let existing = (Unix.fstat fd).Unix.st_size / payload_size in
    { fd; payload_size; blocks = existing; closed = false }

  let ensure t n =
    if n > t.blocks then begin
      Unix.ftruncate t.fd (n * t.payload_size);
      t.blocks <- n
    end

  let size t = t.blocks

  let check t addr =
    if t.closed then invalid_arg "Backend.File: store is closed";
    if addr < 0 || addr >= t.blocks then
      invalid_arg (Printf.sprintf "Backend.File: address %d out of bounds (%d)" addr t.blocks)

  let seek t addr = ignore (Unix.lseek t.fd (addr * t.payload_size) Unix.SEEK_SET)

  (* One positioned transfer for the whole run: a single syscall in the
     common case, looping only if the kernel transfers short. *)

  let read_into t ~addr ~bytes ~buf ~off =
    seek t addr;
    let done_ = ref 0 in
    while !done_ < bytes do
      let k = Unix.read t.fd buf (off + !done_) (bytes - !done_) in
      if k = 0 then failwith "Backend.File: short read";
      done_ := !done_ + k
    done

  let write_from t ~addr ~bytes ~buf ~off =
    seek t addr;
    let done_ = ref 0 in
    while !done_ < bytes do
      done_ := !done_ + Unix.write t.fd buf (off + !done_) (bytes - !done_)
    done

  let read t addr =
    check t addr;
    let buf = Bytes.create t.payload_size in
    read_into t ~addr ~bytes:t.payload_size ~buf ~off:0;
    buf

  let write t addr payload =
    check t addr;
    if Bytes.length payload <> t.payload_size then
      invalid_arg "Backend.File: payload has wrong size";
    write_from t ~addr ~bytes:t.payload_size ~buf:payload ~off:0

  let check_run_payload t payload =
    if t.closed then invalid_arg "Backend.File: store is closed";
    if payload <> t.payload_size then
      invalid_arg "Backend.File: run payload size differs from the store's"

  let read_run t ~addr ~count ~payload ~buf ~off =
    check_run_payload t payload;
    check_run ~who:"Backend.File.read_run" ~blocks:t.blocks ~addr ~count ~payload ~buf ~off;
    if count > 0 then read_into t ~addr ~bytes:(count * payload) ~buf ~off

  let write_run t ~addr ~count ~payload ~buf ~off =
    check_run_payload t payload;
    check_run ~who:"Backend.File.write_run" ~blocks:t.blocks ~addr ~count ~payload ~buf ~off;
    if count > 0 then write_from t ~addr ~bytes:(count * payload) ~buf ~off

  let sync t = if not t.closed then Unix.fsync t.fd

  let close t =
    if not t.closed then begin
      t.closed <- true;
      Unix.close t.fd
    end

  let faults _ = 0
end

let file ~path ~payload_size = Packed ((module File), File.create ~path ~payload_size)

(* ---------------- deterministic fault injection ---------------- *)

type fault_plan = { seed : int; failure_rate : float; max_burst : int }

module Faulty = struct
  type nonrec t = {
    inner : t;
    plan : fault_plan;
    mutable access : int;  (** Global access counter — the only schedule input. *)
    mutable burst_left : int;
    mutable recovering : bool;
        (** The access right after a burst always succeeds: transient
            bursts end with a recovery, so a logical I/O needs at most
            [max_burst] retries and a [max_burst < max_retries] budget
            can never be spuriously exhausted. *)
    mutable injected : int;
  }

  let kind = "faulty"

  (* splitmix64-style finalizer: an avalanching hash of (seed, access
     index). The schedule never looks at the address or the payload, so
     it is data-oblivious by construction. *)
  let mix64 z =
    let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    Int64.(logxor z (shift_right_logical z 31))

  let roll t =
    let h =
      mix64 (Int64.add (Int64.of_int t.plan.seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (t.access + 1))))
    in
    let u =
      Int64.to_float (Int64.shift_right_logical h 11) /. Float.pow 2. 53. (* in [0,1) *)
    in
    if u < t.plan.failure_rate then
      (* The low bits, independent of the rate comparison for any sane
         rate, pick the burst length in [1, max_burst]. *)
      Some (1 + (Int64.to_int (Int64.logand h 0x3FL) mod max 1 t.plan.max_burst))
    else None

  let gate t addr =
    let access = t.access in
    t.access <- access + 1;
    if t.burst_left > 0 then begin
      t.burst_left <- t.burst_left - 1;
      if t.burst_left = 0 then t.recovering <- true;
      t.injected <- t.injected + 1;
      raise (Transient { addr; access })
    end
    else if t.recovering then t.recovering <- false
    else
      match roll t with
      | Some burst ->
          t.burst_left <- burst - 1;
          if t.burst_left = 0 then t.recovering <- true;
          t.injected <- t.injected + 1;
          raise (Transient { addr; access })
      | None -> ()

  let ensure t n = ensure t.inner n
  let size t = size t.inner

  let read t addr =
    gate t addr;
    read t.inner addr

  let write t addr payload =
    gate t addr;
    write t.inner addr payload

  (* Runs iterate block by block, gating each address exactly as the
     per-block API would: the access counter — the schedule's only input
     — advances once per block per attempt, so a batched run and a
     per-block run replay byte-identical fault sequences. A Transient at
     block [addr + i] leaves blocks [addr, addr + i) fully transferred,
     which is the resume contract {!Storage}'s retry loop relies on.
     Bounds are validated against the inner store before the first gate,
     so an out-of-bounds run neither transfers nor consumes accesses. *)

  let check_run_bounds who t ~addr ~count ~payload ~buf ~off =
    check_run ~who ~blocks:(size t) ~addr ~count ~payload ~buf ~off

  let read_run t ~addr ~count ~payload ~buf ~off =
    check_run_bounds "Backend.Faulty.read_run" t ~addr ~count ~payload ~buf ~off;
    for i = 0 to count - 1 do
      gate t (addr + i);
      read_run t.inner ~addr:(addr + i) ~count:1 ~payload ~buf ~off:(off + (i * payload))
    done

  let write_run t ~addr ~count ~payload ~buf ~off =
    check_run_bounds "Backend.Faulty.write_run" t ~addr ~count ~payload ~buf ~off;
    for i = 0 to count - 1 do
      gate t (addr + i);
      write_run t.inner ~addr:(addr + i) ~count:1 ~payload ~buf ~off:(off + (i * payload))
    done

  let sync t = sync t.inner
  let close t = close t.inner
  let faults t = t.injected
end

let faulty plan inner =
  if plan.failure_rate < 0. || plan.failure_rate > 1. then
    invalid_arg "Backend.faulty: failure_rate must be in [0, 1]";
  if plan.max_burst < 1 then invalid_arg "Backend.faulty: max_burst must be >= 1";
  Packed
    ( (module Faulty),
      { Faulty.inner; plan; access = 0; burst_left = 0; recovering = false; injected = 0 } )

let faults_injected (Packed ((module B), b)) = B.faults b
