(** A contiguous array of blocks on the server — the "array A in Bob's
    external memory" that every algorithm in the paper manipulates.

    An [Ext_array.t] is a window (base address + block count) onto a
    {!Storage.t}. Indexing is in blocks relative to the window; [sub]
    makes the sub-array views the recursive algorithms need (regions of
    the loose-compaction halving, the C_i subarrays of the sort) without
    copying. *)

type t

val create : Storage.t -> blocks:int -> t
(** Allocate a fresh all-empty array of [blocks] blocks. *)

val view : Storage.t -> base:int -> blocks:int -> t

val storage : t -> Storage.t
val base : t -> int
val blocks : t -> int
val block_size : t -> int

val cells : t -> int
(** Total cell capacity, [blocks * block_size]. *)

val addr : t -> int -> int
(** Absolute storage address of relative block [i]. *)

val sub : t -> off:int -> len:int -> t
(** Block-granularity sub-window. *)

val read_block : t -> int -> Block.t
(** Counted I/O. *)

val write_block : t -> int -> Block.t -> unit
(** Counted I/O. *)

val read_blocks : t -> int -> count:int -> Block.t array
(** [read_blocks a i ~count] reads relative blocks [i, i + count) as one
    batched run (see {!Storage.read_many}): [count] counted I/Os, one
    trace op per block in address order, a single backend transfer. *)

val write_blocks : t -> int -> Block.t array -> unit
(** Batched mirror of {!read_blocks}, via {!Storage.write_many}. *)

val iter_runs : t -> chunk:int -> (int -> Block.t array -> unit) -> unit
(** [iter_runs a ~chunk f] scans the whole array left to right in
    batched runs of at most [chunk] blocks, calling [f base blks] for
    each run ([base] is the relative index of [blks.(0)]). The workhorse
    of the scan phases: the trace is identical to a per-block
    [read_block] loop, the bytes travel [chunk] blocks at a time. On a
    store with a prefetcher ({!Storage.create} [~prefetch:true]) run
    [k+1] is hinted while run [k] is handed to [f], so the next fetch
    overlaps [f]'s compute and output I/O; the hint schedule is a fixed
    function of (blocks, chunk) — never of data — and the logical trace
    is bit-identical with and without prefetch (pair-tested). *)

val prime : t -> chunk:int -> unit
(** [prime a ~chunk] hints the first [iter_runs] window to the store's
    prefetcher (no-op without one): call it before the setup work that
    precedes a scan and the first fetch rides under that setup. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span a label f] runs [f ()] inside a labelled span of the
    underlying storage's trace (see {!Trace.with_span}): if two runs'
    traces diverge, the span boundaries pinpoint the phase. Labels must
    depend only on public parameters, never on data. *)

val concat_views : t -> t -> t option
(** [concat_views a b] is the single window covering both iff they are
    adjacent in storage ([a] directly before [b]). *)

val of_cells : Storage.t -> block_size:int -> Cell.t array -> t
(** Set-up helper: lay the cells out in fresh blocks {e without} counting
    I/Os (the input is assumed to already reside on the server, as in the
    paper's problem statements). Pads the final block with empties. *)

val to_cells : t -> Cell.t array
(** Inspection helper for tests and harnesses: reads every block {e
    without} counting I/Os. Algorithms never call this. *)

val items : t -> Cell.item list
(** Non-empty cells in array order; uncounted, for tests. *)
