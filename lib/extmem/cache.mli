(** Alice's private cache, with a machine-checked residency bound.

    The model gives Alice M private words — m = M/B blocks. Algorithms
    route the blocks they hold through a [Cache.t] created with that
    capacity; exceeding it raises {!Overflow}. Tests therefore verify the
    cache-size side of every theorem ("assuming M >= 3B", "m >= log² n",
    …) mechanically rather than by inspection. The cache contents are
    invisible to Bob: resident-block access performs no counted I/O.

    When the underlying {!Storage.t} carries an enabled telemetry sink,
    the cache bumps the ["cache.hit"], ["cache.miss"] and ["cache.flush"]
    counters on it ({!Odex_telemetry.Telemetry.add_counter}) — purely
    observational, never changing which I/Os happen. *)

exception Overflow of { capacity : int; requested : int }

type t

val create : Storage.t -> capacity:int -> t
(** [capacity] is in blocks (m = M/B). *)

val capacity : t -> int
val resident : t -> int
val peak : t -> int
(** High-water mark of resident blocks over the cache's lifetime. *)

val is_resident : t -> int -> bool

val load : t -> int -> Block.t
(** [load c addr] brings the block in (one read I/O) unless already
    resident, and returns a {e copy}. Mutating the returned array never
    affects the resident copy; use {!borrow} for in-place mutation. *)

val load_run : t -> int -> count:int -> unit
(** [load_run c addr ~count] makes the contiguous run
    [addr, addr + count) resident, fetching the missing blocks as
    batched {!Storage.read_many} runs in address order (one read I/O per
    missing block, same trace as a per-block loop). The capacity check
    covers the whole run {e before} any I/O, so a raised {!Overflow}
    means nothing was read and the resident set is unchanged. Access the
    blocks afterwards with {!get}/{!borrow}. *)

val get : t -> int -> Block.t
(** A copy of an already-resident block; no I/O.
    @raise Invalid_argument if not resident. *)

val borrow : t -> int -> Block.t
(** The resident block itself (shared, no copy); no I/O. Mutations are
    seen by subsequent [flush]/[write_through]. The reference is only
    valid until the block is evicted.
    @raise Invalid_argument if not resident. *)

val put : t -> int -> Block.t -> unit
(** Install a copy of a block under an address without any I/O (e.g., a
    block Alice constructed privately). Counts against capacity; the
    caller keeps ownership of its buffer. *)

val flush : t -> int -> unit
(** Write the resident copy back (one write I/O) and evict it. *)

val write_through : t -> int -> unit
(** Write the resident copy back (one write I/O) but keep it resident. *)

val drop : t -> int -> unit
(** Evict without writing. *)

val flush_all : t -> unit
(** Flush every resident block, in increasing address order (a
    deterministic, data-independent order). Contiguous stretches travel
    as batched {!Storage.write_many} runs; the trace is identical to the
    per-block loop's. *)

val drop_all : t -> unit
