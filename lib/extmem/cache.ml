exception Overflow of { capacity : int; requested : int }

module Telemetry = Odex_telemetry.Telemetry

type t = {
  storage : Storage.t;
  capacity : int;
  table : (int, Block.t) Hashtbl.t;
  mutable peak : int;
  tel : Telemetry.t;  (* The storage's sink: hit/miss/flush counters. *)
}

let create storage ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    storage;
    capacity;
    table = Hashtbl.create 64;
    peak = 0;
    tel = Storage.telemetry storage;
  }

let capacity t = t.capacity
let resident t = Hashtbl.length t.table
let peak t = t.peak

let is_resident t addr = Hashtbl.mem t.table addr

(* Capacity is checked before inserting, so a refused load leaves the
   resident set untouched. *)
let reserve t addr =
  if not (Hashtbl.mem t.table addr) then begin
    let r = resident t + 1 in
    if r > t.capacity then raise (Overflow { capacity = t.capacity; requested = r });
    if r > t.peak then t.peak <- r
  end

let find_resident t addr =
  match Hashtbl.find_opt t.table addr with
  | Some blk -> blk
  | None -> invalid_arg (Printf.sprintf "Cache: block %d not resident" addr)

(* Blocks cross the API boundary by value: [load]/[get] return copies
   and [put] stores a copy, so a caller mutating its buffer can never
   silently corrupt the resident copy. In-place mutation of the
   resident block goes through [borrow] explicitly. *)

let load t addr =
  match Hashtbl.find_opt t.table addr with
  | Some blk ->
      Telemetry.add_counter t.tel "cache.hit" 1;
      Block.copy blk
  | None ->
      reserve t addr;
      Telemetry.add_counter t.tel "cache.miss" 1;
      let blk = Storage.read t.storage addr in
      Hashtbl.replace t.table addr blk;
      Block.copy blk

(* The capacity check covers the whole run before any block is read, so
   a refused [load_run] performs no I/O and leaves the resident set
   untouched — same all-or-nothing contract as [load]. Already-resident
   blocks are kept (not re-read); the missing ones are fetched as
   maximal contiguous batched runs, in address order, so the trace is
   exactly the per-block loop's. *)
let load_run t addr ~count =
  if count < 0 then invalid_arg "Cache.load_run: negative count";
  let missing = ref 0 in
  for a = addr to addr + count - 1 do
    if not (Hashtbl.mem t.table a) then incr missing
  done;
  let r = resident t + !missing in
  if r > t.capacity then raise (Overflow { capacity = t.capacity; requested = r });
  if r > t.peak then t.peak <- r;
  if count > !missing then Telemetry.add_counter t.tel "cache.hit" (count - !missing);
  if !missing > 0 then Telemetry.add_counter t.tel "cache.miss" !missing;
  let a = ref addr in
  let fin = addr + count in
  while !a < fin do
    if Hashtbl.mem t.table !a then incr a
    else begin
      let g = ref !a in
      while !g < fin && not (Hashtbl.mem t.table !g) do incr g done;
      let blks = Storage.read_many t.storage !a (!g - !a) in
      Array.iteri (fun i blk -> Hashtbl.replace t.table (!a + i) blk) blks;
      a := !g
    end
  done

let get t addr = Block.copy (find_resident t addr)

let borrow t addr = find_resident t addr

let put t addr blk =
  reserve t addr;
  Hashtbl.replace t.table addr (Block.copy blk)

let flush t addr =
  let blk = find_resident t addr in
  Telemetry.add_counter t.tel "cache.flush" 1;
  Storage.write t.storage addr blk;
  Hashtbl.remove t.table addr

let write_through t addr =
  let blk = find_resident t addr in
  Telemetry.add_counter t.tel "cache.flush" 1;
  Storage.write t.storage addr blk

let drop t addr = Hashtbl.remove t.table addr

let resident_addrs t =
  let addrs = Hashtbl.fold (fun addr _ acc -> addr :: acc) t.table [] in
  List.sort compare addrs

(* Resident addresses are flushed in sorted order (deterministic, like
   the per-block loop) with each maximal contiguous stretch written as
   one batched run. The whole flush is one atomic journal group: a
   strided window (e.g. a bitonic compare-exchange group) flushes as
   several runs, and a crash between them must roll back all of them —
   re-running a half-exchanged pair would lose values. *)
let flush_all t =
  let rec runs = function
    | [] -> ()
    | a :: _ as addrs ->
        let rec split len = function
          | b :: rest when b = a + len -> split (len + 1) rest
          | rest -> (len, rest)
        in
        let len, rest = split 0 addrs in
        let blks = Array.init len (fun i -> find_resident t (a + i)) in
        Telemetry.add_counter t.tel "cache.flush" len;
        Storage.write_many t.storage a blks;
        for i = 0 to len - 1 do Hashtbl.remove t.table (a + i) done;
        runs rest
  in
  Storage.atomically t.storage (fun () -> runs (resident_addrs t))
let drop_all t = Hashtbl.reset t.table
