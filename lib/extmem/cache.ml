exception Overflow of { capacity : int; requested : int }

type t = {
  storage : Storage.t;
  capacity : int;
  table : (int, Block.t) Hashtbl.t;
  mutable peak : int;
}

let create storage ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { storage; capacity; table = Hashtbl.create 64; peak = 0 }

let capacity t = t.capacity
let resident t = Hashtbl.length t.table
let peak t = t.peak

let is_resident t addr = Hashtbl.mem t.table addr

(* Capacity is checked before inserting, so a refused load leaves the
   resident set untouched. *)
let reserve t addr =
  if not (Hashtbl.mem t.table addr) then begin
    let r = resident t + 1 in
    if r > t.capacity then raise (Overflow { capacity = t.capacity; requested = r });
    if r > t.peak then t.peak <- r
  end

let find_resident t addr =
  match Hashtbl.find_opt t.table addr with
  | Some blk -> blk
  | None -> invalid_arg (Printf.sprintf "Cache: block %d not resident" addr)

(* Blocks cross the API boundary by value: [load]/[get] return copies
   and [put] stores a copy, so a caller mutating its buffer can never
   silently corrupt the resident copy. In-place mutation of the
   resident block goes through [borrow] explicitly. *)

let load t addr =
  match Hashtbl.find_opt t.table addr with
  | Some blk -> Block.copy blk
  | None ->
      reserve t addr;
      let blk = Storage.read t.storage addr in
      Hashtbl.replace t.table addr blk;
      Block.copy blk

let get t addr = Block.copy (find_resident t addr)

let borrow t addr = find_resident t addr

let put t addr blk =
  reserve t addr;
  Hashtbl.replace t.table addr (Block.copy blk)

let flush t addr =
  let blk = find_resident t addr in
  Storage.write t.storage addr blk;
  Hashtbl.remove t.table addr

let write_through t addr =
  let blk = find_resident t addr in
  Storage.write t.storage addr blk

let drop t addr = Hashtbl.remove t.table addr

let resident_addrs t =
  let addrs = Hashtbl.fold (fun addr _ acc -> addr :: acc) t.table [] in
  List.sort compare addrs

let flush_all t = List.iter (flush t) (resident_addrs t)
let drop_all t = Hashtbl.reset t.table
