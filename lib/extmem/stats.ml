type snapshot = {
  reads : int;
  writes : int;
  retries : int;
  bytes_moved : int;
  batched_ios : int;
}

(* Counters are atomics so accounting stays exact if ops are ever tallied
   off the coordinator domain (the sharded backend and the prefetcher put
   worker domains under this layer). [last_span] stays plain: spans are a
   coordinator-only measurement protocol. *)
type t = {
  r : int Atomic.t;
  w : int Atomic.t;
  retry : int Atomic.t;
  bytes : int Atomic.t;
  batched : int Atomic.t;
  mutable last_span : snapshot option;
}

let create () =
  {
    r = Atomic.make 0;
    w = Atomic.make 0;
    retry = Atomic.make 0;
    bytes = Atomic.make 0;
    batched = Atomic.make 0;
    last_span = None;
  }

let bump c n = ignore (Atomic.fetch_and_add c n)
let record_read t = bump t.r 1
let record_write t = bump t.w 1
let record_retry t = bump t.retry 1
let record_moved t n = bump t.bytes n
let record_batched t n = bump t.batched n

let reads t = Atomic.get t.r
let writes t = Atomic.get t.w
let total t = Atomic.get t.r + Atomic.get t.w

let retries t = Atomic.get t.retry
(* Retries are repeated attempts, not extra logical I/Os: they stay out
   of [total] so I/O-bound assertions hold on every backend, but Bob
   still sees them (the trace records each one). *)

let bytes_moved t = Atomic.get t.bytes
let batched_ios t = Atomic.get t.batched

let reset t =
  Atomic.set t.r 0;
  Atomic.set t.w 0;
  Atomic.set t.retry 0;
  Atomic.set t.bytes 0;
  Atomic.set t.batched 0;
  t.last_span <- None

let snapshot (t : t) : snapshot =
  {
    reads = reads t;
    writes = writes t;
    retries = retries t;
    bytes_moved = bytes_moved t;
    batched_ios = batched_ios t;
  }

(* Exception-safe: the delta is recorded in [last_span] even when [f]
   raises (e.g. a Cache.Overflow mid-measurement), so an enclosing
   harness can still attribute the I/Os of the aborted phase. The delta
   covers {e every} counter — a span over a faulty backend reports its
   retries, and a batched span its bytes and batched share, not just
   reads and writes. *)
let span t f =
  let before = snapshot t in
  let delta () =
    {
      reads = reads t - before.reads;
      writes = writes t - before.writes;
      retries = retries t - before.retries;
      bytes_moved = bytes_moved t - before.bytes_moved;
      batched_ios = batched_ios t - before.batched_ios;
    }
  in
  let result = Fun.protect ~finally:(fun () -> t.last_span <- Some (delta ())) f in
  (result, delta ())

let last_span t = t.last_span

let pp ppf (t : t) =
  Format.fprintf ppf "reads=%d writes=%d total=%d" (reads t) (writes t) (total t);
  if retries t > 0 then Format.fprintf ppf " retries=%d" (retries t)
