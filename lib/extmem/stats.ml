type snapshot = {
  reads : int;
  writes : int;
  retries : int;
  bytes_moved : int;
  batched_ios : int;
}

type t = {
  mutable r : int;
  mutable w : int;
  mutable retry : int;
  mutable bytes : int;
  mutable batched : int;
  mutable last_span : snapshot option;
}

let create () = { r = 0; w = 0; retry = 0; bytes = 0; batched = 0; last_span = None }

let record_read t = t.r <- t.r + 1
let record_write t = t.w <- t.w + 1
let record_retry t = t.retry <- t.retry + 1
let record_moved t n = t.bytes <- t.bytes + n
let record_batched t n = t.batched <- t.batched + n

let reads t = t.r
let writes t = t.w
let total t = t.r + t.w

let retries t = t.retry
(* Retries are repeated attempts, not extra logical I/Os: they stay out
   of [total] so I/O-bound assertions hold on every backend, but Bob
   still sees them (the trace records each one). *)

let bytes_moved t = t.bytes
let batched_ios t = t.batched

let reset t =
  t.r <- 0;
  t.w <- 0;
  t.retry <- 0;
  t.bytes <- 0;
  t.batched <- 0;
  t.last_span <- None

let snapshot (t : t) : snapshot =
  { reads = t.r; writes = t.w; retries = t.retry; bytes_moved = t.bytes; batched_ios = t.batched }

(* Exception-safe: the delta is recorded in [last_span] even when [f]
   raises (e.g. a Cache.Overflow mid-measurement), so an enclosing
   harness can still attribute the I/Os of the aborted phase. The delta
   covers {e every} counter — a span over a faulty backend reports its
   retries, and a batched span its bytes and batched share, not just
   reads and writes. *)
let span t f =
  let before = snapshot t in
  let delta () =
    {
      reads = t.r - before.reads;
      writes = t.w - before.writes;
      retries = t.retry - before.retries;
      bytes_moved = t.bytes - before.bytes_moved;
      batched_ios = t.batched - before.batched_ios;
    }
  in
  let result = Fun.protect ~finally:(fun () -> t.last_span <- Some (delta ())) f in
  (result, delta ())

let last_span t = t.last_span

let pp ppf (t : t) =
  Format.fprintf ppf "reads=%d writes=%d total=%d" t.r t.w (total t);
  if t.retry > 0 then Format.fprintf ppf " retries=%d" t.retry
