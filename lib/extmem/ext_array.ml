type t = { storage : Storage.t; base : int; blocks : int }

let create storage ~blocks =
  let base = Storage.alloc storage blocks in
  { storage; base; blocks }

let view storage ~base ~blocks =
  if base < 0 || blocks < 0 || base + blocks > Storage.capacity storage then
    invalid_arg "Ext_array.view: window out of bounds";
  { storage; base; blocks }

let storage t = t.storage
let base t = t.base
let blocks t = t.blocks
let block_size t = Storage.block_size t.storage
let cells t = t.blocks * block_size t

let addr t i =
  if i < 0 || i >= t.blocks then
    invalid_arg (Printf.sprintf "Ext_array.addr: block %d out of bounds (%d blocks)" i t.blocks);
  t.base + i

let sub t ~off ~len =
  if off < 0 || len < 0 || off + len > t.blocks then
    invalid_arg "Ext_array.sub: window out of bounds";
  { t with base = t.base + off; blocks = len }

let read_block t i = Storage.read t.storage (addr t i)
let write_block t i blk = Storage.write t.storage (addr t i) blk

let read_blocks t i ~count =
  if count < 0 then invalid_arg "Ext_array.read_blocks: negative count";
  if i < 0 || i + count > t.blocks then
    invalid_arg
      (Printf.sprintf "Ext_array.read_blocks: run [%d, %d) out of bounds (%d blocks)" i
         (i + count) t.blocks);
  Storage.read_many t.storage (t.base + i) count

let write_blocks t i blks =
  let count = Array.length blks in
  if i < 0 || i + count > t.blocks then
    invalid_arg
      (Printf.sprintf "Ext_array.write_blocks: run [%d, %d) out of bounds (%d blocks)" i
         (i + count) t.blocks);
  Storage.write_many t.storage (t.base + i) blks

(* Post the first scan window to the prefetcher (a no-op on stores
   without one): call it before the setup work that precedes a scan —
   output allocation, parameter derivation — and the first fetch rides
   under it. The window is a function of the public shape only. *)
let prime t ~chunk =
  if chunk < 1 then invalid_arg "Ext_array.prime: chunk must be >= 1";
  if t.blocks > 0 then Storage.prefetch t.storage t.base (min chunk t.blocks)

(* The double-buffered scan: while run [k]'s blocks are unsealed and
   handed to [f], the prefetch worker (if any) is already streaming run
   [k+1]. The hint schedule — chunk boundaries, in address order — is a
   fixed function of (blocks, chunk), so issuing it reveals nothing the
   scan itself would not; the logical trace is identical with and
   without a prefetcher (pair-tested). *)
let iter_runs t ~chunk f =
  if chunk < 1 then invalid_arg "Ext_array.iter_runs: chunk must be >= 1";
  let i = ref 0 in
  while !i < t.blocks do
    let c = min chunk (t.blocks - !i) in
    let next = !i + c in
    let blks = read_blocks t !i ~count:c in
    if next < t.blocks then
      Storage.prefetch t.storage (t.base + next) (min chunk (t.blocks - next));
    f !i blks;
    i := next
  done

let with_span t label f = Storage.with_span t.storage label f

let concat_views a b =
  if a.storage == b.storage && a.base + a.blocks = b.base then
    Some { a with blocks = a.blocks + b.blocks }
  else None

let of_cells storage ~block_size:b cells =
  let n_blocks = max 1 ((Array.length cells + b - 1) / b) in
  let t = create storage ~blocks:n_blocks in
  for i = 0 to n_blocks - 1 do
    let blk = Block.make b in
    for j = 0 to b - 1 do
      let idx = (i * b) + j in
      if idx < Array.length cells then blk.(j) <- cells.(idx)
    done;
    Storage.unchecked_poke storage (t.base + i) blk
  done;
  t

let to_cells t =
  let b = block_size t in
  let out = Array.make (cells t) Cell.empty in
  for i = 0 to t.blocks - 1 do
    let blk = Storage.unchecked_peek t.storage (t.base + i) in
    Array.blit blk 0 out (i * b) b
  done;
  out

let items t =
  Array.fold_right
    (fun c acc -> if Cell.is_item c then Cell.get c :: acc else acc)
    (to_cells t) []
