(** The unit of storage: one memory word-group holding a key–value item.

    The paper assumes "keys and values can be stored in memory words or
    blocks of memory words, which support the operations of read, write,
    copy, compare, add, and subtract" (§1). A cell is either empty — the
    paper's null value, "different from any input value" — or an item
    carrying a comparison key, a payload value, a [tag] word (original
    position, used for order preservation and for the §1 distinctness
    caveat) and an [aux] scratch word that algorithms use for private
    bookkeeping (butterfly distance labels, quantile colors, thinning
    success bits). User code should treat [aux] as volatile across
    library calls. *)

type item = { key : int; value : int; tag : int; aux : int }

type t = Empty | Item of item

val empty : t
val item : ?tag:int -> ?aux:int -> key:int -> value:int -> unit -> t

val is_empty : t -> bool
val is_item : t -> bool

val get : t -> item
(** @raise Invalid_argument on [Empty]. *)

val key_exn : t -> int
val value_exn : t -> int
val tag_exn : t -> int
val aux_exn : t -> int

val with_tag : t -> int -> t
(** [with_tag c tag] replaces the tag; identity on [Empty]. *)

val with_aux : t -> int -> t

val compare_keys : t -> t -> int
(** Total order: items by [(key, tag)] (tag breaks ties, giving the
    distinctness the paper's §1 caveat requires when tags are original
    positions), and [Empty] sorts after every item (the paper treats empty
    cells as +∞ when sorting, §4). [aux] does not participate. *)

val compare_by_tag : t -> t -> int
(** Items ordered by [(tag, key)]; [Empty] last. Used to restore original
    order after compaction. *)

val compare_by_aux : t -> t -> int
(** Items ordered by [(aux, key, tag)]; [Empty] last. Used when algorithms
    sort on scratch labels (e.g. colors). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val encoded_size : int
(** Bytes needed by [encode] — a word-aligned stride (5 × 8 bytes), so
    encode/decode are straight 64-bit loads and stores. *)

val encode : bytes -> int -> t -> unit
(** [encode buf off c] serializes [c] at offset [off]. *)

val decode : bytes -> int -> t

val encode_big : Odex_crypto.Bigbuf.t -> int -> t -> unit
(** [encode] against an off-heap I/O buffer, using unsafe word stores —
    the caller (in practice {!Block.encode_into_big}) has already
    bounds-checked the whole region. *)

val decode_big : Odex_crypto.Bigbuf.t -> int -> t
(** @raise Invalid_argument on a corrupt constructor word. Region bounds
    are the caller's responsibility, as in {!encode_big}. *)
