(** A deferred-apply write-ahead journal wrapped around any {!Backend}:
    the crash-atomicity layer (DESIGN.md §10).

    The decorator returned by {!backend} appends every mutation to a
    side file as a length-prefixed, checksummed record and keeps it in
    an in-memory overlay that serves read-your-writes; the inner store
    is untouched until {!commit}. A commit fsyncs the records (when
    [durable]), durably sets the header's commit marker, and only then
    applies the group in place. Reopening with [replay:true] re-applies
    the records below the marker (finishing a commit the crash
    interrupted — redo is idempotent) and {e discards} everything above
    it, so the inner store always lands exactly on a commit boundary —
    group atomicity, not merely run atomicity. That is what makes
    phase-checkpointed resume sound: a multi-run group (e.g. one bitonic
    compare-exchange window flushed as several strided runs) either
    commits whole or rolls back whole, never tears in the middle.

    {b Recovery obliviousness.} The replay schedule is a function of the
    journal bytes alone — the address schedule and sealed payloads the
    server already observed — never of plaintext; replay copies the
    original ciphertexts verbatim, so no new (key, nonce) pair is ever
    created by recovery. Pair- and kill-sweep-tested in test_journal.ml.

    {b Checkpoint slot.} The header carries one (owner, phase, cursor)
    slot for algorithm-level restart points, written through
    {!checkpoint} (which is also a {!commit}). Single slot, last writer
    wins: resuming from it is sound only for the same deterministic
    computation that wrote it, which owners encode by folding their
    array base and shape into the owner string. Its checksum makes a
    header torn mid-rewrite read as "no checkpoint, nothing committed" —
    a full restart from the previous boundary — never as a wrong
    checkpoint or a half-committed group. *)

type t

val create :
  ?auto_commit_bytes:int ->
  ?engine:Odex_crypto.Cipher.engine ->
  path:string ->
  payload_size:int ->
  durable:bool ->
  replay:bool ->
  Backend.t ->
  t
(** Open (creating if missing) the journal at [path] over the given
    inner backend. With [replay:true] the committed records are
    re-applied to the inner store and the checkpoint slot is restored;
    uncommitted leftovers are discarded either way, and [replay:false]
    additionally drops committed records and the checkpoint slot (the
    store starts logically fresh). Either way the journal file ends
    empty but for its header. [durable] controls the fsync-before-marker
    discipline (and header fsyncs); disable it only where crashes are
    simulated in-process, e.g. the test sweeps, where the page cache
    survives the "crash" anyway. [auto_commit_bytes] (default 4 MiB)
    bounds the pending tail: a write that pushes past it triggers an
    automatic {!commit}, except while a {!hold} is outstanding.

    [engine] (default [Prf_xor]) names the cipher engine the sealed
    payloads in this journal are ciphertext under. The id is recorded in
    the journal header and seeds every record checksum: reopening an
    existing journal under a different engine raises (replaying
    ciphertext that will be unsealed under the wrong keystream would
    garble the store silently). Raises [Invalid_argument] on a foreign
    file, a payload-size mismatch or an engine mismatch. *)

val backend : t -> Backend.t
(** The journaled decorator (kind ["journaled"]). [sync] on it is
    {!commit}; [close] commits, closes the journal and the inner store. *)

val commit : t -> unit
(** Group-commit boundary: make the pending records durable, mark them
    committed, apply them to the inner store, flush it, and truncate the
    journal to its header. After a commit a crash replays nothing —
    recovery work is bounded by the bytes written since the last
    commit. *)

val hold : t -> unit
(** Suppress automatic commits until the matching {!release}: the writes
    in between form one atomic group that either commits whole at a
    later {!commit}/{!checkpoint} or rolls back whole. Reentrant
    (nesting holds is fine); explicit {!commit} calls are not blocked —
    bracket owners simply must not make them mid-group. *)

val release : t -> unit
(** Undo one {!hold}. Never commits by itself (so it is safe in an
    exception-unwinding [finally]); a deferred auto-commit fires on the
    next unheld write instead. *)

val checkpoint : t -> owner:string -> phase:int -> cursor:int -> unit
(** {!commit}, then durably record that [owner]'s computation has
    completed [phase] (with an opaque [cursor], e.g. a scratch-array
    base address). [phase] must be non-negative; 0 conventionally means
    "no computation in flight". *)

val state : t -> owner:string -> int * int
(** The checkpoint slot as [(phase, cursor)] — [(0, 0)] unless the slot
    holds a positive phase written by this [owner]. *)

val path : t -> string

val durable : t -> bool

val replay_log : t -> (int * int) list
(** The (addr, count) runs re-applied by this open's replay, in replay
    order; [[]] when nothing was replayed. Non-empty only when a crash
    landed between a commit's marker and its completed apply. The sweep
    tests assert this schedule is bit-identical across pair inputs. *)

val append_log : t -> (int * int) list
(** The (addr, count) record appends since open, in append order — the
    journal's commit schedule, asserted data-independent likewise. *)

val commits : t -> int
(** Commits (explicit, checkpoint, sync or automatic) since open. *)

val pending_bytes : t -> int
(** Record bytes currently pending in the journal tail. *)

val abandon : t -> unit
(** Release descriptors {e without} committing — the journal tail and
    inner store stay exactly as a kill would leave them. Crash-sweep
    harness only; the handle is unusable afterwards. *)
