(** A deferred-apply write-ahead journal wrapped around any {!Backend}:
    the crash-atomicity layer (DESIGN.md §10).

    The decorator returned by {!backend} appends every mutation to a
    side file as a length-prefixed, checksummed record and keeps it in
    an in-memory overlay that serves read-your-writes; the inner store
    is untouched until {!commit}. A commit fsyncs the records (when
    [durable]), durably sets the header's commit marker, and only then
    applies the group in place. Reopening with [replay:true] re-applies
    the records below the marker (finishing a commit the crash
    interrupted — redo is idempotent) and {e discards} everything above
    it, so the inner store always lands exactly on a commit boundary —
    group atomicity, not merely run atomicity. That is what makes
    phase-checkpointed resume sound: a multi-run group (e.g. one bitonic
    compare-exchange window flushed as several strided runs) either
    commits whole or rolls back whole, never tears in the middle.

    {b Recovery obliviousness.} The replay schedule is a function of the
    journal bytes alone — the address schedule and sealed payloads the
    server already observed — never of plaintext; replay copies the
    original ciphertexts verbatim, so no new (key, nonce) pair is ever
    created by recovery. Pair- and kill-sweep-tested in test_journal.ml.

    {b Checkpoint table.} The header carries a bounded table of
    {!max_slots} (owner, phase, cursor) slots for algorithm-level
    restart points, written through {!checkpoint} (which is also a
    {!commit}). Each slot stores its owner string verbatim (up to
    {!max_owner_bytes} bytes) — distinct owners can never alias — and
    occupancy is an explicit per-slot tag in the encoding, so concurrent
    algorithms on one store (an ORAM rebuild, the ext-sort it runs
    internally, an unrelated columnsort) each keep their own slot and
    never clobber each other. Resuming from a slot is sound only for the
    same deterministic computation that wrote it, which owners encode by
    folding their array base and shape into the owner string. The header
    checksum makes a header torn mid-rewrite read as "no checkpoints,
    nothing committed" — a full restart from the previous boundary —
    never as a wrong checkpoint or a half-committed group.

    {b Format compatibility.} The current format is v3 ("ODEXJRN3"). A
    v2 journal ("ODEXJRN2", one FNV-hashed slot, last writer wins)
    reopens cleanly: its slot parses as a one-entry legacy-hash table —
    matched by hash until its owner checkpoints again, which upgrades
    the slot to the full string — its committed records replay from the
    old record offset, and the file is rewritten in the v3 format. *)

type t

val max_slots : int
(** Size of the checkpoint table (8): at most this many distinct owners
    can hold a checkpoint concurrently; one more raises. *)

val max_owner_bytes : int
(** Longest owner string a slot can store (40 bytes). *)

val header_bytes : int
(** Size of the v3 header — the file offset at which records begin.
    Exposed for the tests and tooling that do journal-file surgery. *)

val create :
  ?auto_commit_bytes:int ->
  ?engine:Odex_crypto.Cipher.engine ->
  path:string ->
  payload_size:int ->
  durable:bool ->
  replay:bool ->
  Backend.t ->
  t
(** Open (creating if missing) the journal at [path] over the given
    inner backend. With [replay:true] the committed records are
    re-applied to the inner store and the checkpoint table is restored
    (a v2 single-slot header restores as a one-entry table); uncommitted
    leftovers are discarded either way, and [replay:false] additionally
    drops committed records and the whole checkpoint table (the store
    starts logically fresh). Either way the journal file ends empty but
    for its (v3) header. [durable] controls the fsync-before-marker
    discipline (and header fsyncs); disable it only where crashes are
    simulated in-process, e.g. the test sweeps, where the page cache
    survives the "crash" anyway. [auto_commit_bytes] (default 4 MiB)
    bounds the pending tail: a write that pushes past it triggers an
    automatic {!commit}, except while a {!hold} is outstanding.

    [engine] (default [Prf_xor]) names the cipher engine the sealed
    payloads in this journal are ciphertext under. The id is recorded in
    the journal header and seeds every record checksum: reopening an
    existing journal under a different engine raises (replaying
    ciphertext that will be unsealed under the wrong keystream would
    garble the store silently). Raises [Invalid_argument] on a foreign
    file, a payload-size mismatch or an engine mismatch. *)

val backend : t -> Backend.t
(** The journaled decorator (kind ["journaled"]). [sync] on it is
    {!commit}; [close] commits, closes the journal and the inner store. *)

val commit : t -> unit
(** Group-commit boundary: make the pending records durable, mark them
    committed, apply them to the inner store, flush it, and truncate the
    journal to its header. After a commit a crash replays nothing —
    recovery work is bounded by the bytes written since the last
    commit. *)

val hold : t -> unit
(** Suppress automatic commits until the matching {!release}: the writes
    in between form one atomic group that either commits whole at a
    later {!commit}/{!checkpoint} or rolls back whole. Reentrant
    (nesting holds is fine); explicit {!commit} calls are not blocked —
    bracket owners simply must not make them mid-group. *)

val release : t -> unit
(** Undo one {!hold}. Never commits by itself (so it is safe in an
    exception-unwinding [finally]); a deferred auto-commit fires on the
    next unheld write instead. *)

val checkpoint : t -> owner:string -> phase:int -> cursor:int -> unit
(** {!commit}, then durably record in [owner]'s table slot that its
    computation has completed [phase] (with an opaque non-negative
    [cursor], e.g. a scratch-array base address). Upserts: an existing
    slot for [owner] (including a legacy-hash slot from a v2 header) is
    overwritten, otherwise a free slot is taken. [(0, 0)] is the
    reserved "no checkpoint" value: [checkpoint ~phase:0 ~cursor:0] is
    {!clear}. Raises [Invalid_argument] on a negative [phase] {e or}
    [cursor] (a negative cursor would aim a resume at a bogus base), on
    [phase = 0] with a nonzero cursor (unrepresentable: it would read
    back as cleared), on an empty or over-long owner, and when all
    {!max_slots} slots are held by other owners (loud, never a silent
    eviction). *)

val clear : t -> owner:string -> unit
(** {!commit}, then free [owner]'s slot (no-op on its absence, but still
    a commit): the durable "computation complete" mark. *)

val state : t -> owner:string -> int * int
(** [owner]'s slot as [(phase, cursor)] — [(0, 0)] when [owner] holds no
    slot. Occupancy is explicit in the table encoding, and {!checkpoint}
    cannot write [(0, 0)] into a live slot, so the two cases read back
    identically by construction, not by sentinel collision. *)

val slots : t -> (string option * int * int) list
(** The occupied checkpoint slots as [(owner, phase, cursor)] triples,
    in table order; [None] owners are unmigrated v2 legacy-hash slots.
    Introspection for tests and tooling. *)

val path : t -> string

val durable : t -> bool

val replay_log : t -> (int * int) list
(** The (addr, count) runs re-applied by this open's replay, in replay
    order; [[]] when nothing was replayed. Non-empty only when a crash
    landed between a commit's marker and its completed apply. The sweep
    tests assert this schedule is bit-identical across pair inputs. *)

val append_log : t -> (int * int) list
(** The (addr, count) record appends since open, in append order — the
    journal's commit schedule, asserted data-independent likewise. *)

val commits : t -> int
(** Commits (explicit, checkpoint, sync or automatic) since open. *)

val pending_bytes : t -> int
(** Record bytes currently pending in the journal tail. *)

val abandon : t -> unit
(** Release descriptors {e without} committing — the journal tail and
    inner store stay exactly as a kill would leave them. Crash-sweep
    harness only; the handle is unusable afterwards. *)
