module Bigbuf = Odex_crypto.Bigbuf

external pread_stub : Unix.file_descr -> int -> Bigbuf.t -> int -> int -> int = "odex_pread"
external pwrite_stub : Unix.file_descr -> int -> Bigbuf.t -> int -> int -> int = "odex_pwrite"

let rec retry_eintr f =
  match f () with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let check buf ~pos ~off ~len op =
  if pos < 0 then invalid_arg ("Bigio." ^ op ^ ": negative file position");
  if off < 0 || len < 0 || off + len > Bigbuf.length buf then
    invalid_arg ("Bigio." ^ op ^ ": buffer region out of bounds")

let pread fd ~pos buf ~off ~len =
  check buf ~pos ~off ~len "pread";
  retry_eintr (fun () -> pread_stub fd pos buf off len)

let pwrite fd ~pos buf ~off ~len =
  check buf ~pos ~off ~len "pwrite";
  retry_eintr (fun () -> pwrite_stub fd pos buf off len)

let read_all ~who fd ~pos buf ~off ~len =
  check buf ~pos ~off ~len "read_all";
  let done_ = ref 0 in
  while !done_ < len do
    let k = retry_eintr (fun () -> pread_stub fd (pos + !done_) buf (off + !done_) (len - !done_)) in
    if k = 0 then failwith (who ^ ": short read");
    done_ := !done_ + k
  done

let write_all fd ~pos buf ~off ~len =
  check buf ~pos ~off ~len "write_all";
  let done_ = ref 0 in
  while !done_ < len do
    done_ :=
      !done_ + retry_eintr (fun () -> pwrite_stub fd (pos + !done_) buf (off + !done_) (len - !done_))
  done

let read_upto fd ~pos buf ~off ~len =
  check buf ~pos ~off ~len "read_upto";
  let done_ = ref 0 in
  let eof = ref false in
  while (not !eof) && !done_ < len do
    let k = retry_eintr (fun () -> pread_stub fd (pos + !done_) buf (off + !done_) (len - !done_)) in
    if k = 0 then eof := true else done_ := !done_ + k
  done;
  !done_
