type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer: a bijective mixing of the 64-bit state. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let state t = t.state

let of_state s = { state = s }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = mix64 s }

(* Non-negative 62-bit integer, safe to use as an OCaml [int]. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the largest multiple of [bound] below 2^62. *)
  let max_nonneg = (1 lsl 62) - 1 in
  let limit = max_nonneg - (max_nonneg mod bound) in
  let rec draw () =
    let v = next_nonneg t in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random mantissa bits. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  Float.of_int bits *. 0x1p-53

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else float t < p

let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p must be in (0,1]";
  (* Inverse-CDF sampling: ceil(log(1-U) / log(1-p)). *)
  if p = 1. then 1
  else
    let u = float t in
    let k = Float.to_int (Float.ceil (Float.log1p (-.u) /. Float.log1p (-.p))) in
    max 1 k
