type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n =
  let b = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
  Bigarray.Array1.fill b '\000';
  b

let length (b : t) = Bigarray.Array1.dim b
let get (b : t) i = Bigarray.Array1.get b i
let set (b : t) i c = Bigarray.Array1.set b i c
let unsafe_get (b : t) i = Bigarray.Array1.unsafe_get b i
let unsafe_set (b : t) i c = Bigarray.Array1.unsafe_set b i c

(* Compiler primitives: unaligned native-endian 64-bit access on a char
   bigarray. The [_le] wrappers byteswap on big-endian hosts — the
   [Sys.big_endian] test is a compile-time constant, so the common
   little-endian build pays nothing. *)
external unsafe_get_64_ne : t -> int -> int64 = "%caml_bigstring_get64u"
external unsafe_set_64_ne : t -> int -> int64 -> unit = "%caml_bigstring_set64u"

let bswap64 = Int64.(fun x ->
    let b i = logand (shift_right_logical x (i * 8)) 0xFFL in
    logor
      (logor
         (logor (shift_left (b 0) 56) (shift_left (b 1) 48))
         (logor (shift_left (b 2) 40) (shift_left (b 3) 32)))
      (logor
         (logor (shift_left (b 4) 24) (shift_left (b 5) 16))
         (logor (shift_left (b 6) 8) (b 7))))

let unsafe_get64_le b i =
  let v = unsafe_get_64_ne b i in
  if Sys.big_endian then bswap64 v else v

let unsafe_set64_le b i v =
  unsafe_set_64_ne b i (if Sys.big_endian then bswap64 v else v)

let check_range b i len op =
  if i < 0 || len < 0 || i > length b - len then
    invalid_arg (Printf.sprintf "Bigbuf.%s: region [%d, %d) out of bounds (length %d)" op i (i + len) (length b))

let get64_le b i =
  check_range b i 8 "get64_le";
  unsafe_get64_le b i

let set64_le b i v =
  check_range b i 8 "set64_le";
  unsafe_set64_le b i v

let fill (b : t) c = Bigarray.Array1.fill b c

(* Word-at-a-time copies: a [Bigarray.Array1.sub]+[blit] pair allocates
   two bigarray headers per call, which the Mem backend's
   allocation-regression test forbids on the single-block path. Regions
   must not overlap. *)
let blit src soff dst doff len =
  check_range src soff len "blit (src)";
  check_range dst doff len "blit (dst)";
  let words = len lsr 3 in
  for j = 0 to words - 1 do
    unsafe_set_64_ne dst (doff + (j lsl 3)) (unsafe_get_64_ne src (soff + (j lsl 3)))
  done;
  for i = len land lnot 7 to len - 1 do
    unsafe_set dst (doff + i) (unsafe_get src (soff + i))
  done

let blit_from_bytes src soff dst doff len =
  if soff < 0 || len < 0 || soff > Bytes.length src - len then
    invalid_arg "Bigbuf.blit_from_bytes: source region out of bounds";
  check_range dst doff len "blit_from_bytes";
  let words = len lsr 3 in
  for j = 0 to words - 1 do
    unsafe_set_64_ne dst (doff + (j lsl 3)) (Bytes.get_int64_ne src (soff + (j lsl 3)))
  done;
  for i = len land lnot 7 to len - 1 do
    unsafe_set dst (doff + i) (Bytes.unsafe_get src (soff + i))
  done

let blit_to_bytes src soff dst doff len =
  check_range src soff len "blit_to_bytes";
  if doff < 0 || len < 0 || doff > Bytes.length dst - len then
    invalid_arg "Bigbuf.blit_to_bytes: destination region out of bounds";
  let words = len lsr 3 in
  for j = 0 to words - 1 do
    Bytes.set_int64_ne dst (doff + (j lsl 3)) (unsafe_get_64_ne src (soff + (j lsl 3)))
  done;
  for i = len land lnot 7 to len - 1 do
    Bytes.unsafe_set dst (doff + i) (unsafe_get src (soff + i))
  done

let of_bytes b =
  let buf = Bigarray.Array1.create Bigarray.char Bigarray.c_layout (Bytes.length b) in
  blit_from_bytes b 0 buf 0 (Bytes.length b);
  buf

let to_bytes buf =
  let b = Bytes.create (length buf) in
  blit_to_bytes buf 0 b 0 (length buf);
  b

let sub_string buf off len =
  check_range buf off len "sub_string";
  String.init len (fun i -> unsafe_get buf (off + i))
