type key = Prf.key

let key_of_int = Prf.key_of_int
let fresh_key = Prf.fresh_key

(* Keystream word [j] for a given nonce is PRF(key, nonce, j): 8 bytes
   covering message bytes [8j, 8j+8). The XOR runs a whole word at a
   time — [Bytes.get_int64_le]/[set_int64_le] are byte-addressed, so no
   alignment constraint — with a byte tail for lengths that are not a
   multiple of 8. Keystream indices are relative to the start of the
   region, so an in-place XOR at offset [off] of a larger buffer matches
   an allocating XOR of the extracted slice. *)
let xor_into k ~nonce buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Cipher.xor_into: region out of bounds";
  let words = len lsr 3 in
  for j = 0 to words - 1 do
    let p = off + (j lsl 3) in
    Bytes.set_int64_le buf p (Int64.logxor (Bytes.get_int64_le buf p) (Prf.value_pair k nonce j))
  done;
  let tail = len land 7 in
  if tail > 0 then begin
    let word = Prf.value_pair k nonce words in
    for i = len - tail to len - 1 do
      let ks = Int64.to_int (Int64.shift_right_logical word ((i land 7) * 8)) land 0xff in
      Bytes.unsafe_set buf (off + i)
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get buf (off + i)) lxor ks))
    done
  end

let xor_stream k ~nonce src =
  let dst = Bytes.copy src in
  xor_into k ~nonce dst ~off:0 ~len:(Bytes.length dst);
  dst

let encrypt k ~nonce plain = xor_stream k ~nonce plain
let decrypt k ~nonce cipher = xor_stream k ~nonce cipher
