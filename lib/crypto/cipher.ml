type key = Prf.key

let key_of_int = Prf.key_of_int
let fresh_key = Prf.fresh_key

(* ---------------- legacy bytes interface (Prf_xor keystream) -------- *)

(* Keystream word [j] for a given nonce is PRF(key, nonce, j): 8 bytes
   covering message bytes [8j, 8j+8). The XOR runs a whole word at a
   time — [Bytes.get_int64_le]/[set_int64_le] are byte-addressed, so no
   alignment constraint — with a byte tail for lengths that are not a
   multiple of 8. Keystream indices are relative to the start of the
   region, so an in-place XOR at offset [off] of a larger buffer matches
   an allocating XOR of the extracted slice. *)
let xor_into k ~nonce buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Cipher.xor_into: region out of bounds";
  let words = len lsr 3 in
  for j = 0 to words - 1 do
    let p = off + (j lsl 3) in
    Bytes.set_int64_le buf p (Int64.logxor (Bytes.get_int64_le buf p) (Prf.value_pair k nonce j))
  done;
  let tail = len land 7 in
  if tail > 0 then begin
    let word = Prf.value_pair k nonce words in
    for i = len - tail to len - 1 do
      let ks = Int64.to_int (Int64.shift_right_logical word ((i land 7) * 8)) land 0xff in
      Bytes.unsafe_set buf (off + i)
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get buf (off + i)) lxor ks))
    done
  end

let xor_stream k ~nonce src =
  let dst = Bytes.copy src in
  xor_into k ~nonce dst ~off:0 ~len:(Bytes.length dst);
  dst

let encrypt k ~nonce plain = xor_stream k ~nonce plain
let decrypt k ~nonce cipher = xor_stream k ~nonce cipher

(* ---------------- engines ---------------- *)

type engine = Prf_xor | Chacha20

let engine_id = function Prf_xor -> 1L | Chacha20 -> 2L
let engine_of_id = function 1L -> Some Prf_xor | 2L -> Some Chacha20 | _ -> None
let engine_name = function Prf_xor -> "prf_xor" | Chacha20 -> "chacha20"

let engine_of_name = function
  | "prf_xor" | "prf" -> Some Prf_xor
  | "chacha20" | "chacha" -> Some Chacha20
  | _ -> None

external chacha20_xor_stub :
  string -> string -> int -> Bigbuf.t -> int -> int -> unit
  = "odex_chacha20_xor_byte" "odex_chacha20_xor"
[@@noalloc]

(* The nonce array is the caller's int array, read in place by the stub
   (tagged immediates) — no per-call marshalling buffer. *)
external chacha20_xor_many_stub :
  string -> int array -> Bigbuf.t -> int -> int -> int -> int -> unit
  = "odex_chacha20_xor_many_byte" "odex_chacha20_xor_many"
[@@noalloc]

let chacha20_xor_raw ~key ~nonce ~counter buf ~off ~len =
  if String.length key <> 32 then invalid_arg "Cipher.chacha20_xor_raw: key must be 32 bytes";
  if String.length nonce <> 12 then
    invalid_arg "Cipher.chacha20_xor_raw: nonce must be 12 bytes";
  if off < 0 || len < 0 || off + len > Bigbuf.length buf then
    invalid_arg "Cipher.chacha20_xor_raw: region out of bounds";
  chacha20_xor_stub key nonce counter buf off len

type state = Prf_state of key | Chacha_state of string

let state_engine = function Prf_state _ -> Prf_xor | Chacha_state _ -> Chacha20

(* The 256-bit ChaCha key is expanded from the 64-bit store key through
   the PRF at a domain-separated input ([x = -2] collides with no block
   nonce: sealing nonces are non-negative and the plaintext marker is
   -1). The expansion is fixed forever — it is part of the on-disk
   format of every Chacha20 store. *)
let chacha_key_of k =
  String.init 32 (fun i ->
      let word = Prf.value_pair k (-2) (i lsr 3) in
      Char.chr (Int64.to_int (Int64.shift_right_logical word ((i land 7) * 8)) land 0xff))

let init engine k =
  match engine with Prf_xor -> Prf_state k | Chacha20 -> Chacha_state (chacha_key_of k)

let chacha_nonce_of nonce =
  let b = Bytes.make 12 '\000' in
  Bytes.set_int64_le b 4 (Int64.of_int nonce);
  Bytes.unsafe_to_string b

(* Prf_xor over a Bigbuf: same keystream words at the same offsets as
   [xor_into] on an equal bytes buffer (parity-tested in test_crypto). *)
let prf_xor_big k ~nonce buf ~off ~len =
  let words = len lsr 3 in
  for j = 0 to words - 1 do
    let p = off + (j lsl 3) in
    Bigbuf.unsafe_set64_le buf p
      (Int64.logxor (Bigbuf.unsafe_get64_le buf p) (Prf.value_pair k nonce j))
  done;
  let tail = len land 7 in
  if tail > 0 then begin
    let word = Prf.value_pair k nonce words in
    for i = len - tail to len - 1 do
      let ks = Int64.to_int (Int64.shift_right_logical word ((i land 7) * 8)) land 0xff in
      Bigbuf.unsafe_set buf (off + i)
        (Char.unsafe_chr (Char.code (Bigbuf.unsafe_get buf (off + i)) lxor ks))
    done
  end

let xor_big st ~nonce buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bigbuf.length buf then
    invalid_arg "Cipher.xor_big: region out of bounds";
  match st with
  | Prf_state k -> prf_xor_big k ~nonce buf ~off ~len
  | Chacha_state raw -> chacha20_xor_stub raw (chacha_nonce_of nonce) 0 buf off len

let xor_run st ~nonces buf ~off ~stride ~len =
  let count = Array.length nonces in
  if len < 0 || len > stride then invalid_arg "Cipher.xor_run: len must be in [0, stride]";
  if count > 0
     && (off < 0 || stride < 0 || off + ((count - 1) * stride) + len > Bigbuf.length buf)
  then invalid_arg "Cipher.xor_run: region out of bounds";
  if count > 0 && len > 0 then
    match st with
    | Prf_state k ->
        for i = 0 to count - 1 do
          prf_xor_big k ~nonce:nonces.(i) buf ~off:(off + (i * stride)) ~len
        done
    | Chacha_state raw -> chacha20_xor_many_stub raw nonces buf off stride len count
