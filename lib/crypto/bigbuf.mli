(** Off-heap byte buffers for the zero-copy sealing path.

    A [Bigbuf.t] is a C-layout char Bigarray: a flat, GC-opaque byte
    region that C stubs (ChaCha20 keystream, positional file I/O) can
    address directly while the OCaml runtime lock is released, and that
    worker domains can read and write concurrently on disjoint ranges
    without copying. All multi-byte accessors are little-endian — the
    sealed on-disk format — independent of host endianness. *)

type t = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** [create n] is a fresh zero-filled buffer of [n] bytes. (Raw Bigarray
    allocation is uninitialised; this fills, so grown buffers never leak
    stale heap contents into sealed payloads.) *)

val length : t -> int

val get : t -> int -> char
val set : t -> int -> char -> unit

val unsafe_get : t -> int -> char
val unsafe_set : t -> int -> char -> unit

val get64_le : t -> int -> int64
(** Bounds-checked little-endian 64-bit load at byte offset [i]
    (unaligned offsets allowed). *)

val set64_le : t -> int -> int64 -> unit

val unsafe_get64_le : t -> int -> int64
(** Unchecked variant for inner loops whose caller has validated the
    whole region once ({!Cell.decode_big} and the cipher cores). *)

val unsafe_set64_le : t -> int -> int64 -> unit

val fill : t -> char -> unit

val blit : t -> int -> t -> int -> int -> unit
(** [blit src soff dst doff len] copies [len] bytes. The regions must
    not overlap (all callers move between distinct buffers or disjoint
    slices; the word-at-a-time copy does not handle aliasing). *)

val blit_from_bytes : bytes -> int -> t -> int -> int -> unit
val blit_to_bytes : t -> int -> bytes -> int -> int -> unit

val of_bytes : bytes -> t
val to_bytes : t -> bytes

val sub_string : t -> int -> int -> string
