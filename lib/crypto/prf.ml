type key = int64

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let key_of_int seed = mix64 (Int64.add (Int64.of_int seed) 0x5851F42D4C957F2DL)

let fresh_key rng = Rng.next_int64 rng

let key_to_raw k = k

let key_of_raw k = k

let value k x =
  mix64 (Int64.logxor k (mix64 (Int64.of_int x)))

let value_pair k x y =
  let h = value k x in
  mix64 (Int64.logxor h (mix64 (Int64.add (Int64.of_int y) 0x9E3779B97F4A7C15L)))

let to_range k x ~bound =
  if bound <= 0 then invalid_arg "Prf.to_range: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (value k x) 2) in
  v mod bound

(* Rejection sampling over 62-bit draws: accept a draw below the largest
   multiple of [bound] that fits, else redraw from [value_pair k x i]
   with an incremented salt. Each draw accepts with probability > 1/2,
   so the expected number of PRF evaluations is < 2; the [max_int]
   fallback (never reached in practice) keeps the function total. *)
let to_range_unbiased k x ~bound =
  if bound <= 0 then invalid_arg "Prf.to_range_unbiased: bound must be positive";
  let top = 1 lsl 62 in
  let limit = bound * (top / bound) in
  let rec draw i =
    if i >= 128 then to_range k x ~bound
    else
      let v = Int64.to_int (Int64.shift_right_logical (value_pair k x i) 2) in
      if v < limit then v mod bound else draw (i + 1)
  in
  draw 0
