(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in ODEX flows through this module so that
    experiments are reproducible and, crucially, so that the obliviousness
    audit can fix the coins while varying the data: with equal seeds, two
    runs of a data-oblivious algorithm must produce byte-identical address
    traces regardless of the stored values. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay exactly the
    stream [t] would have produced from this point on. *)

val state : t -> int64
(** The full generator state as one serializable word. *)

val of_state : int64 -> t
(** Rebuild a generator from {!state}: [of_state (state t)] replays
    exactly the stream [t] would have produced. The persistence hook for
    crash-resumable sessions (the hierarchical ORAM checkpoints its
    generator so a resumed rebuild re-draws the same epoch key). *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t]. Use it to give sub-phases their own streams without
    coupling their consumption rates. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Uses rejection sampling, so there is no modulo bias. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val geometric : t -> float -> int
(** [geometric t p] samples the number of Bernoulli(p) trials up to and
    including the first success (support {1, 2, ...}). Used by the
    Chernoff-bound Monte-Carlo checks (Lemma 23). *)
