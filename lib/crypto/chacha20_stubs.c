/* ChaCha20 keystream XOR (RFC 8439) over char bigarrays.
 *
 * Two entry points back Cipher's Chacha20 engine:
 *
 *   odex_chacha20_xor       one (key, nonce, counter) stream XORed over a
 *                           contiguous region — known-answer vectors and
 *                           the single-block seal path.
 *
 *   odex_chacha20_xor_many  n equally-strided regions, each under its own
 *                           per-block nonce with the counter starting at 0.
 *                           Sealed blocks are short (tens of bytes to a few
 *                           hundred), far below what 8-way SIMD needs from a
 *                           single stream — but a run seals many blocks, so
 *                           the vector core runs 8 *lanes of different
 *                           nonces* side by side and XORs each lane into its
 *                           own region. This is the hot path behind
 *                           Storage.write_many / read_many.
 *
 * The 8-way core uses GCC/Clang vector extensions (vector_size(32)); a
 * portable scalar core handles lane tails and non-GNU compilers. Both
 * cores are compute-only on caller-owned off-heap memory, so no OCaml
 * runtime interaction is needed beyond argument unwrapping.
 */

#include <stdint.h>
#include <string.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>

#define ODEX_ROTL32(x, n) (((x) << (n)) | ((x) >> (32 - (n))))

static inline uint32_t odex_load32_le(const unsigned char *p)
{
  return (uint32_t)p[0] | ((uint32_t)p[1] << 8) | ((uint32_t)p[2] << 16)
         | ((uint32_t)p[3] << 24);
}

static inline int64_t odex_load64_le(const unsigned char *p)
{
  return (int64_t)odex_load32_le(p) | ((int64_t)odex_load32_le(p + 4) << 32);
}

/* ---------------- scalar core ---------------- */

#define ODEX_QR(a, b, c, d)                                                   \
  do {                                                                        \
    a += b; d ^= a; d = ODEX_ROTL32(d, 16);                                   \
    c += d; b ^= c; b = ODEX_ROTL32(b, 12);                                   \
    a += b; d ^= a; d = ODEX_ROTL32(d, 8);                                    \
    c += d; b ^= c; b = ODEX_ROTL32(b, 7);                                    \
  } while (0)

static void odex_chacha20_block(const uint32_t in[16], unsigned char out[64])
{
  uint32_t x[16];
  int i;
  memcpy(x, in, sizeof x);
  for (i = 0; i < 10; i++) {
    ODEX_QR(x[0], x[4], x[8], x[12]);
    ODEX_QR(x[1], x[5], x[9], x[13]);
    ODEX_QR(x[2], x[6], x[10], x[14]);
    ODEX_QR(x[3], x[7], x[11], x[15]);
    ODEX_QR(x[0], x[5], x[10], x[15]);
    ODEX_QR(x[1], x[6], x[11], x[12]);
    ODEX_QR(x[2], x[7], x[8], x[13]);
    ODEX_QR(x[3], x[4], x[9], x[14]);
  }
  for (i = 0; i < 16; i++) {
    uint32_t v = x[i] + in[i];
    out[4 * i] = (unsigned char)v;
    out[4 * i + 1] = (unsigned char)(v >> 8);
    out[4 * i + 2] = (unsigned char)(v >> 16);
    out[4 * i + 3] = (unsigned char)(v >> 24);
  }
}

static void odex_state_init(uint32_t st[16], const unsigned char key[32],
                            const unsigned char nonce[12], uint32_t counter)
{
  int i;
  st[0] = 0x61707865u; st[1] = 0x3320646eu; st[2] = 0x79622d32u; st[3] = 0x6b206574u;
  for (i = 0; i < 8; i++) st[4 + i] = odex_load32_le(key + 4 * i);
  st[12] = counter;
  st[13] = odex_load32_le(nonce);
  st[14] = odex_load32_le(nonce + 4);
  st[15] = odex_load32_le(nonce + 8);
}

static void odex_xor_scalar(const uint32_t st0[16], unsigned char *buf, intnat len)
{
  uint32_t in[16];
  unsigned char ks[64];
  intnat off = 0;
  memcpy(in, st0, sizeof in);
  while (off < len) {
    intnat n = len - off < 64 ? len - off : 64;
    intnat i;
    odex_chacha20_block(in, ks);
    in[12]++;
    for (i = 0; i < n; i++) buf[off + i] ^= ks[i];
    off += n;
  }
}

/* ---------------- 8-way vector core ---------------- */

#if defined(__GNUC__) && !defined(ODEX_CHACHA_NO_VECTOR)
#define ODEX_CHACHA_VEC 1
typedef uint32_t odex_v8 __attribute__((vector_size(32)));

/* The stubs are built for the baseline ISA so the binary stays portable,
 * which would leave the 256-bit vectors emulated in SSE halves on the
 * very machines that have AVX2. Function multi-versioning compiles the
 * hot cores once per ISA and picks the widest supported one at load
 * time (ifunc resolution — no per-call dispatch cost). */
#if defined(__x86_64__) && defined(__GNUC__) && __GNUC__ >= 10 && !defined(__clang__)
#define ODEX_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define ODEX_CLONES
#endif

#define ODEX_VROTL(x, n) (((x) << (n)) | ((x) >> (32 - (n))))
#define ODEX_VQR(a, b, c, d)                                                  \
  do {                                                                        \
    a += b; d ^= a; d = ODEX_VROTL(d, 16);                                    \
    c += d; b ^= c; b = ODEX_VROTL(b, 12);                                    \
    a += b; d ^= a; d = ODEX_VROTL(d, 8);                                     \
    c += d; b ^= c; b = ODEX_VROTL(b, 7);                                     \
  } while (0)

static inline odex_v8 odex_splat(uint32_t s)
{
  odex_v8 v = { s, s, s, s, s, s, s, s };
  return v;
}

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define ODEX_CHACHA_VEC_XPOSE 1

#define ODEX_SHUF(a, b, ...) __builtin_shuffle((a), (b), (odex_v8){ __VA_ARGS__ })

/* 8x8 u32 transpose: out[j][i] = in[i][j]. Three shuffle stages (32-bit
 * interleave, 64-bit interleave, 128-bit combine) — the classic
 * unpack/permute ladder, which GCC lowers to vpunpck*+vperm2i128 under
 * AVX2. Turning state rows into per-lane columns lets the keystream XOR
 * run 32 bytes at a time instead of word-by-word through a lane
 * extract. */
static inline void odex_transpose8(const odex_v8 in[8], odex_v8 out[8])
{
  odex_v8 t0 = ODEX_SHUF(in[0], in[1], 0, 8, 1, 9, 2, 10, 3, 11);
  odex_v8 t1 = ODEX_SHUF(in[0], in[1], 4, 12, 5, 13, 6, 14, 7, 15);
  odex_v8 t2 = ODEX_SHUF(in[2], in[3], 0, 8, 1, 9, 2, 10, 3, 11);
  odex_v8 t3 = ODEX_SHUF(in[2], in[3], 4, 12, 5, 13, 6, 14, 7, 15);
  odex_v8 t4 = ODEX_SHUF(in[4], in[5], 0, 8, 1, 9, 2, 10, 3, 11);
  odex_v8 t5 = ODEX_SHUF(in[4], in[5], 4, 12, 5, 13, 6, 14, 7, 15);
  odex_v8 t6 = ODEX_SHUF(in[6], in[7], 0, 8, 1, 9, 2, 10, 3, 11);
  odex_v8 t7 = ODEX_SHUF(in[6], in[7], 4, 12, 5, 13, 6, 14, 7, 15);
  odex_v8 u0 = ODEX_SHUF(t0, t2, 0, 1, 8, 9, 2, 3, 10, 11);
  odex_v8 u1 = ODEX_SHUF(t0, t2, 4, 5, 12, 13, 6, 7, 14, 15);
  odex_v8 u2 = ODEX_SHUF(t1, t3, 0, 1, 8, 9, 2, 3, 10, 11);
  odex_v8 u3 = ODEX_SHUF(t1, t3, 4, 5, 12, 13, 6, 7, 14, 15);
  odex_v8 u4 = ODEX_SHUF(t4, t6, 0, 1, 8, 9, 2, 3, 10, 11);
  odex_v8 u5 = ODEX_SHUF(t4, t6, 4, 5, 12, 13, 6, 7, 14, 15);
  odex_v8 u6 = ODEX_SHUF(t5, t7, 0, 1, 8, 9, 2, 3, 10, 11);
  odex_v8 u7 = ODEX_SHUF(t5, t7, 4, 5, 12, 13, 6, 7, 14, 15);
  out[0] = ODEX_SHUF(u0, u4, 0, 1, 2, 3, 8, 9, 10, 11);
  out[1] = ODEX_SHUF(u0, u4, 4, 5, 6, 7, 12, 13, 14, 15);
  out[2] = ODEX_SHUF(u1, u5, 0, 1, 2, 3, 8, 9, 10, 11);
  out[3] = ODEX_SHUF(u1, u5, 4, 5, 6, 7, 12, 13, 14, 15);
  out[4] = ODEX_SHUF(u2, u6, 0, 1, 2, 3, 8, 9, 10, 11);
  out[5] = ODEX_SHUF(u2, u6, 4, 5, 6, 7, 12, 13, 14, 15);
  out[6] = ODEX_SHUF(u3, u7, 0, 1, 2, 3, 8, 9, 10, 11);
  out[7] = ODEX_SHUF(u3, u7, 4, 5, 6, 7, 12, 13, 14, 15);
}

/* XOR one full 64-byte keystream block into each of the 8 lanes:
 * transpose rows 0-7 and 8-15 of the state matrix into per-lane 32-byte
 * halves, then each lane is two unaligned 32-byte vector XORs. Lanes
 * [step] bytes apart ([step] = stride for strided runs, 64 for the
 * contiguous stream). Little-endian only: the u32 vectors are then
 * exactly the serialized keystream. */
static inline void odex_xor_8x64(const odex_v8 x[16], unsigned char *base,
                                 intnat step)
{
  odex_v8 lo[8], hi[8];
  int lane;
  odex_transpose8(x, lo);
  odex_transpose8(x + 8, hi);
  for (lane = 0; lane < 8; lane++) {
    unsigned char *p = base + lane * step;
    odex_v8 a, b;
    memcpy(&a, p, 32);
    memcpy(&b, p + 32, 32);
    a ^= lo[lane];
    b ^= hi[lane];
    memcpy(p, &a, 32);
    memcpy(p + 32, &b, 32);
  }
}
#endif /* little-endian */

static inline void odex_xor_lane(unsigned char *p, const odex_v8 x[16], int lane,
                                 intnat n)
{
  int i;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  if (n == 64) {
    for (i = 0; i < 16; i++) {
      uint32_t t;
      memcpy(&t, p + 4 * i, 4);
      t ^= x[i][lane];
      memcpy(p + 4 * i, &t, 4);
    }
    return;
  }
#endif
  {
    unsigned char ks[64];
    intnat j;
    for (i = 0; i < 16; i++) {
      uint32_t v = x[i][lane];
      ks[4 * i] = (unsigned char)v;
      ks[4 * i + 1] = (unsigned char)(v >> 8);
      ks[4 * i + 2] = (unsigned char)(v >> 16);
      ks[4 * i + 3] = (unsigned char)(v >> 24);
    }
    for (j = 0; j < n; j++) p[j] ^= ks[j];
  }
}

/* Eight regions at base + lane*stride, each [rlen] bytes, lane [L] under
 * nonce (0x00000000 || le64(nonces[L])) with the block counter starting
 * at 0 — the per-block sealing layout. */
static ODEX_CLONES void odex_xor_8lanes(const uint32_t key_words[8],
                                        const int64_t nonces[8],
                                        unsigned char *base, intnat stride,
                                        intnat rlen)
{
  odex_v8 in[16], x[16];
  odex_v8 n_lo, n_hi;
  intnat nblocks = (rlen + 63) / 64;
  intnat c;
  int i, lane, r;
  for (lane = 0; lane < 8; lane++) {
    n_lo[lane] = (uint32_t)(uint64_t)nonces[lane];
    n_hi[lane] = (uint32_t)((uint64_t)nonces[lane] >> 32);
  }
  in[0] = odex_splat(0x61707865u);
  in[1] = odex_splat(0x3320646eu);
  in[2] = odex_splat(0x79622d32u);
  in[3] = odex_splat(0x6b206574u);
  for (i = 0; i < 8; i++) in[4 + i] = odex_splat(key_words[i]);
  in[13] = odex_splat(0);
  in[14] = n_lo;
  in[15] = n_hi;
  for (c = 0; c < nblocks; c++) {
    intnat n = rlen - c * 64 < 64 ? rlen - c * 64 : 64;
    in[12] = odex_splat((uint32_t)c);
    memcpy(x, in, sizeof x);
    for (r = 0; r < 10; r++) {
      ODEX_VQR(x[0], x[4], x[8], x[12]);
      ODEX_VQR(x[1], x[5], x[9], x[13]);
      ODEX_VQR(x[2], x[6], x[10], x[14]);
      ODEX_VQR(x[3], x[7], x[11], x[15]);
      ODEX_VQR(x[0], x[5], x[10], x[15]);
      ODEX_VQR(x[1], x[6], x[11], x[12]);
      ODEX_VQR(x[2], x[7], x[8], x[13]);
      ODEX_VQR(x[3], x[4], x[9], x[14]);
    }
    for (i = 0; i < 16; i++) x[i] += in[i];
#ifdef ODEX_CHACHA_VEC_XPOSE
    if (n == 64) {
      odex_xor_8x64(x, base + c * 64, stride);
      continue;
    }
#endif
    for (lane = 0; lane < 8; lane++)
      odex_xor_lane(base + lane * stride + c * 64, x, lane, n);
  }
}

/* One contiguous stream, eight counters at a time: lanes are the 64-byte
 * keystream blocks [c..c+7] of the SAME (key, nonce) stream, XORed over
 * one 512-byte span. Backs the long single-region seals (journal
 * records, whole-run streams); returns the bytes consumed so the caller
 * finishes the sub-512 tail with the scalar core. */
static ODEX_CLONES intnat odex_xor_contig8(const uint32_t st0[16],
                                           unsigned char *buf, intnat len)
{
  odex_v8 in[16], x[16];
  intnat off = 0;
  int i, lane, r;
  uint32_t c = st0[12];
  for (i = 0; i < 16; i++) in[i] = odex_splat(st0[i]);
  while (len - off >= 512) {
    for (lane = 0; lane < 8; lane++) in[12][lane] = c + (uint32_t)lane;
    memcpy(x, in, sizeof x);
    for (r = 0; r < 10; r++) {
      ODEX_VQR(x[0], x[4], x[8], x[12]);
      ODEX_VQR(x[1], x[5], x[9], x[13]);
      ODEX_VQR(x[2], x[6], x[10], x[14]);
      ODEX_VQR(x[3], x[7], x[11], x[15]);
      ODEX_VQR(x[0], x[5], x[10], x[15]);
      ODEX_VQR(x[1], x[6], x[11], x[12]);
      ODEX_VQR(x[2], x[7], x[8], x[13]);
      ODEX_VQR(x[3], x[4], x[9], x[14]);
    }
    for (i = 0; i < 16; i++) x[i] += in[i];
#ifdef ODEX_CHACHA_VEC_XPOSE
    odex_xor_8x64(x, buf + off, 64);
#else
    for (lane = 0; lane < 8; lane++)
      odex_xor_lane(buf + off + lane * 64, x, lane, 64);
#endif
    c += 8;
    off += 512;
  }
  return off;
}
#endif /* ODEX_CHACHA_VEC */

/* ---------------- OCaml entry points ---------------- */

CAMLprim value odex_chacha20_xor(value vkey, value vnonce, value vctr, value vbuf,
                                 value voff, value vlen)
{
  uint32_t st[16];
  unsigned char *buf = (unsigned char *)Caml_ba_data_val(vbuf) + Long_val(voff);
  intnat len = Long_val(vlen);
  intnat done = 0;
  odex_state_init(st, (const unsigned char *)String_val(vkey),
                  (const unsigned char *)String_val(vnonce),
                  (uint32_t)Long_val(vctr));
#ifdef ODEX_CHACHA_VEC
  if (len >= 512) {
    done = odex_xor_contig8(st, buf, len);
    st[12] += (uint32_t)(done / 64);
  }
#endif
  odex_xor_scalar(st, buf + done, len - done);
  return Val_unit;
}

CAMLprim value odex_chacha20_xor_byte(value *argv, int argn)
{
  (void)argn;
  return odex_chacha20_xor(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5]);
}

/* [vnonces] is the caller's OCaml int array read in place — tagged
 * immediates, no marshalling copy. The stub neither allocates nor
 * retains it, so [@@noalloc] on the OCaml side stays sound. */
CAMLprim value odex_chacha20_xor_many(value vkey, value vnonces, value vbuf,
                                      value voff, value vstride, value vlen,
                                      value vcount)
{
  const unsigned char *key = (const unsigned char *)String_val(vkey);
  unsigned char *base = (unsigned char *)Caml_ba_data_val(vbuf) + Long_val(voff);
  intnat stride = Long_val(vstride);
  intnat rlen = Long_val(vlen);
  intnat count = Long_val(vcount);
  intnat r = 0;
#ifdef ODEX_CHACHA_VEC
  if (count >= 8) {
    uint32_t key_words[8];
    int i;
    for (i = 0; i < 8; i++) key_words[i] = odex_load32_le(key + 4 * i);
    for (; r + 8 <= count; r += 8) {
      int64_t nonces[8];
      for (i = 0; i < 8; i++) nonces[i] = (int64_t)Long_val(Field(vnonces, r + i));
      odex_xor_8lanes(key_words, nonces, base + r * stride, stride, rlen);
    }
  }
#endif
  for (; r < count; r++) {
    uint32_t st[16];
    unsigned char nonce[12];
    int64_t nv = (int64_t)Long_val(Field(vnonces, r));
    int i;
    memset(nonce, 0, 4);
    for (i = 0; i < 8; i++) nonce[4 + i] = (unsigned char)(nv >> (8 * i));
    odex_state_init(st, key, nonce, 0);
    odex_xor_scalar(st, base + r * stride, rlen);
  }
  return Val_unit;
}

CAMLprim value odex_chacha20_xor_many_byte(value *argv, int argn)
{
  (void)argn;
  return odex_chacha20_xor_many(argv[0], argv[1], argv[2], argv[3], argv[4],
                                argv[5], argv[6]);
}
