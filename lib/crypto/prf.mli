(** Keyed pseudo-random function on machine integers.

    Stands in for the paper's random-oracle hash functions (see §2 of the
    paper and §5 of DESIGN.md). Not cryptographically strong — it is a
    splitmix64-style mixer — but it is a deterministic keyed function with
    good avalanche behaviour, which is all the algorithms observe. *)

type key
(** An immutable PRF key. *)

val key_of_int : int -> key
(** Derive a key from an integer seed. *)

val fresh_key : Rng.t -> key
(** Draw a key from a generator. *)

val key_to_raw : key -> int64
(** Serialize a key to its raw word — for Alice-private persistence
    (e.g. the ORAM session metadata, sealed like any other data). *)

val key_of_raw : int64 -> key
(** Rebuild a key from {!key_to_raw}. *)

val value : key -> int -> int64
(** [value k x] is the 64-bit PRF output on input [x]. *)

val value_pair : key -> int -> int -> int64
(** [value_pair k x y] hashes the pair [(x, y)] — used to derive per-level
    or per-round functions from one master key. *)

val to_range : key -> int -> bound:int -> int
(** [to_range k x ~bound] maps input [x] into [\[0, bound)] by reducing a
    62-bit PRF draw modulo [bound]. The reduction carries the classic
    modulo bias — at most [bound / 2^62] per residue, immeasurable for
    the small bounds the algorithms use — and every pinned seed, pair
    certificate, and trace digest in the repo depends on its exact
    output, so existing call sites keep it. New code wanting exactness
    should use {!to_range_unbiased}. *)

val to_range_unbiased : key -> int -> bound:int -> int
(** [to_range_unbiased k x ~bound] maps [x] into [\[0, bound)] with no
    modulo bias, by rejection sampling over salted redraws
    ([value_pair k x 0], [value_pair k x 1], ...). Deterministic for a
    given [(k, x, bound)]; expected < 2 PRF evaluations per call. *)
