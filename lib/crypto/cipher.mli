(** Block sealing: pluggable keystream engines.

    The paper assumes Alice encrypts every block "using a semantically
    secure encryption scheme such that re-encryption of the same value is
    indistinguishable from an encryption of a different value" (§1).
    Storage seals each block payload under a per-write nonce with one of
    two keystream engines:

    - {!Prf_xor} — the original splitmix-PRF keystream. Not
      cryptographically strong, but bit-compatible with every store,
      pinned seed, and trace digest produced before engines existed, so
      it stays the default.
    - {!Chacha20} — a real RFC 8439 ChaCha20 keystream (96-bit nonce,
      32-bit block counter), verified against the RFC's known-answer
      vectors, with an 8-lane SIMD core that seals whole runs at GB/s.

    The engine is recorded in the store header; reopening a store under a
    different engine is rejected (see DESIGN.md §13). Either way the
    adversary model only ever inspects the address trace (DESIGN.md §5) —
    the engine choice affects throughput and the strength of the sealing
    simulation, never the trace. *)

type key

val key_of_int : int -> key
val fresh_key : Rng.t -> key

(** {1 Engines} *)

type engine = Prf_xor | Chacha20

val engine_id : engine -> int64
(** Stable on-disk identifier ({!Prf_xor} = 1, {!Chacha20} = 2), recorded
    in store and journal headers. *)

val engine_of_id : int64 -> engine option
val engine_name : engine -> string
val engine_of_name : string -> engine option

type state
(** A key expanded for one engine: immutable after {!init}, so worker
    domains may seal disjoint regions through one shared state. *)

val init : engine -> key -> state
val state_engine : state -> engine

val xor_big : state -> nonce:int -> Bigbuf.t -> off:int -> len:int -> unit
(** XOR the [(key, nonce)] keystream over [buf[off .. off+len)] in place
    (XOR is an involution: the same call seals and opens). For {!Prf_xor}
    this is bit-identical to the historical {!xor_into} on the same
    bytes; for {!Chacha20} the 12-byte RFC nonce is
    [0x00000000 || le64 nonce] with the block counter starting at 0. *)

val xor_run : state -> nonces:int array -> Bigbuf.t -> off:int -> stride:int -> len:int -> unit
(** [xor_run st ~nonces buf ~off ~stride ~len] seals [Array.length nonces]
    equally-spaced regions in one call: region [i] is
    [buf[off + i*stride .. +len)] under [nonces.(i)] — byte-for-byte the
    same transform as {!xor_big} on each region, but the Chacha20 engine
    batches 8 regions per SIMD dispatch, which is where run sealing gets
    its throughput. Requires [0 <= len <= stride]. *)

val chacha20_xor_raw :
  key:string -> nonce:string -> counter:int -> Bigbuf.t -> off:int -> len:int -> unit
(** Direct RFC 8439 keystream XOR with an explicit 32-byte key, 12-byte
    nonce and initial block counter — the primitive the known-answer
    tests exercise. *)

(** {1 Legacy byte-buffer interface (Prf_xor keystream)} *)

val encrypt : key -> nonce:int -> bytes -> bytes
(** [encrypt k ~nonce plain] returns a fresh ciphertext buffer. The same
    [(key, nonce)] pair must never be reused for different plaintexts;
    callers bump the nonce on every write. *)

val decrypt : key -> nonce:int -> bytes -> bytes
(** Inverse of [encrypt] for the same key and nonce. *)

val xor_stream : key -> nonce:int -> bytes -> bytes
(** [xor_stream k ~nonce src] is a fresh buffer holding [src] XORed with
    the [(k, nonce)] Prf_xor keystream. *)

val xor_into : key -> nonce:int -> bytes -> off:int -> len:int -> unit
(** In-place Prf_xor keystream XOR over a [bytes] region — the historical
    sealing primitive, kept as the reference implementation the Bigbuf
    path is parity-tested against. *)
