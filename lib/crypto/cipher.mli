(** Simulated semantically-secure block encryption.

    The paper assumes Alice encrypts every block "using a semantically
    secure encryption scheme such that re-encryption of the same value is
    indistinguishable from an encryption of a different value" (§1). We
    simulate this with an XOR keystream derived from a keyed PRF and a
    per-write nonce: encrypting the same plaintext twice with different
    nonces yields unrelated ciphertexts. This is a *simulation* of
    semantic security, adequate because no measured property of the system
    depends on cipher strength — the adversary model only ever inspects
    the address trace (see DESIGN.md §5). *)

type key

val key_of_int : int -> key
val fresh_key : Rng.t -> key

val encrypt : key -> nonce:int -> bytes -> bytes
(** [encrypt k ~nonce plain] returns a fresh ciphertext buffer. The same
    [(key, nonce)] pair must never be reused for different plaintexts;
    callers bump the nonce on every write. *)

val decrypt : key -> nonce:int -> bytes -> bytes
(** Inverse of [encrypt] for the same key and nonce. *)

val xor_stream : key -> nonce:int -> bytes -> bytes
(** [xor_stream k ~nonce src] is a fresh buffer holding [src] XORed with
    the [(k, nonce)] keystream — the involution both {!encrypt} and
    {!decrypt} are aliases of. *)

val xor_into : key -> nonce:int -> bytes -> off:int -> len:int -> unit
(** [xor_into k ~nonce buf ~off ~len] XORs the keystream into
    [buf[off .. off+len)] in place — the zero-allocation fast path behind
    {!encrypt}/{!decrypt} (XOR is its own inverse, so the same call both
    seals and opens). Keystream indices are relative to [off], so
    [xor_into] on a slice of a larger buffer produces exactly
    [encrypt]/[decrypt] of the extracted slice. The XOR proceeds a whole
    64-bit word at a time with a byte-granular tail. *)
