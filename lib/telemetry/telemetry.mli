(** Latency telemetry for the storage stack: who spent the wall-clock.

    The I/O model counts block transfers; this module measures what each
    one {e costs} on the machine, so "fast as the hardware allows" is a
    number instead of a feeling. A [Telemetry.t] is an event sink wired
    through {!Odex_extmem.Storage} (and from there into every backend
    call, trace span and cache probe). It collects

    - a log₂-bucketed latency histogram per (operation kind × backend
      kind) — every backend [read]/[write]/[read_run]/[write_run]/[sync]
      is timed with the monotonic clock;
    - one timed record per completed {!Odex_extmem.Trace.with_span}
      phase, with the counted I/Os, retries, faults and payload bytes
      that occurred while the phase was innermost; and
    - free-form named counters (cache hits/misses/flushes, …).

    Two export views: {!pp_summary} prints a human-readable profile
    (per-op percentiles, per-phase totals, counters) and {!chrome_json}
    emits Chrome trace-event JSON loadable in [chrome://tracing] or
    Perfetto.

    {b Obliviousness.} Telemetry observes only what Bob already sees —
    operation kinds, block counts, sealed-payload sizes, wall-clock —
    never plaintext, keys or nonces. Enabling it must not change a
    single trace op (the pair-tester asserts telemetry-on vs -off traces
    are bit-identical), because it sits strictly {e around} the I/O
    path, not in it.

    {b Zero cost when disabled.} {!disabled} is a no-op sink: every
    record entry point returns after one flag test, no clock is read,
    and {!Odex_extmem.Storage} does not even wrap its backend with the
    timing decorator. *)

type t

val disabled : t
(** The shared no-op sink. [enabled disabled = false]; all recording
    functions return immediately and all exports are empty. *)

val create : unit -> t
(** A fresh collecting sink. *)

val enabled : t -> bool

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds (arbitrary epoch). *)

(** Backend operation kinds, as timed by the instrumented backend, plus
    the cipher ops ([Seal]/[Unseal]) Storage reports under the pseudo
    backend "cipher" so profiles attribute keystream time separately
    from device time. *)
type op_kind = Read | Write | Read_run | Write_run | Sync | Seal | Unseal

val op_kind_name : op_kind -> string

val record_op :
  t -> backend:string -> op:op_kind -> blocks:int -> bytes:int -> ns:int64 -> unit
(** One timed backend operation: [blocks] block payloads ([bytes] bytes
    total) moved in [ns] nanoseconds. No-op on a disabled sink. *)

val with_phase : t -> string -> (unit -> 'a) -> 'a
(** Time a labelled phase. Phases nest; counter attribution
    ({!add_ios} …) goes to the innermost open phase. Exception-safe: the
    phase record is emitted even if the thunk raises. On a disabled sink
    this is exactly [f ()]. *)

val add_ios : t -> int -> unit
(** Counted logical I/Os, attributed to the innermost open phase. *)

val add_retries : t -> int -> unit
val add_faults : t -> int -> unit
val add_bytes : t -> int -> unit

val add_counter : t -> string -> int -> unit
(** Bump a free-form named counter (e.g. ["cache.hit"]). *)

(** {1 Collected data} *)

type phase = {
  label : string;
  depth : int;
  start_ns : int64;  (** {!now_ns} timestamp at entry. *)
  dur_ns : int64;
  ios : int;  (** Counted I/Os while this phase was innermost. *)
  retries : int;
  faults : int;
  bytes : int;
}

val phases : t -> phase list
(** Completed phases in completion order. *)

type hist
(** A log₂-bucketed latency histogram. *)

val hist_count : hist -> int
val hist_total_ns : hist -> int64

val hist_percentile : hist -> float -> float
(** [hist_percentile h p] estimates the [p]-th percentile latency in
    nanoseconds ([0. <= p <= 100.]), as the geometric midpoint of the
    bucket holding that rank. [0.] on an empty histogram. *)

type op_stat = {
  op : op_kind;
  op_backend : string;
  count : int;
  op_blocks : int;
  op_bytes : int;
  latency : hist;
}

val op_stats : t -> op_stat list
(** One entry per (op kind × backend kind) seen, sorted by kind. *)

type phase_stat = { phase_label : string; phase_count : int; phase_latency : hist }

val phase_stats : t -> phase_stat list
(** Phase durations aggregated by label, sorted by label. *)

val counters : t -> (string * int) list
(** Named counters, sorted by name. *)

(** {1 Export} *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable profile: op latency percentiles, phase totals,
    counters. Prints a one-line note on a disabled or empty sink. *)

val chrome_json : (string * t) list -> string
(** Chrome trace-event (catapult) JSON for a set of named sinks: one
    thread per sink (named by its label), one complete ("ph":"X") event
    per phase with its counters as [args], plus per-thread instant
    events summarizing op latencies. Load the result in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.
    Timestamps are rebased so the earliest phase starts at 0. *)

val write_chrome : path:string -> (string * t) list -> unit
(** {!chrome_json} straight to a file. *)
