(* An event sink for the storage stack. The design constraint is the
   disabled path: [disabled] must cost one branch per entry point and
   read no clock, because it is threaded through every Storage instance
   by default. The enabled path favours fixed-size state — histograms
   are 63 int buckets, counters a small assoc table — so a profiled run
   allocates O(phases), never O(ops). *)

let now_ns = Monotonic_clock.now

(* ---- log2-bucketed histograms ---- *)

(* Bucket [i] holds samples with [2^i <= ns < 2^(i+1)] (bucket 0 also
   takes 0 ns). 63 buckets cover every positive int64 the clock can
   produce. *)
type hist = {
  buckets : int array;
  mutable count : int;
  mutable total_ns : int64;
}

let hist_create () = { buckets = Array.make 63 0; count = 0; total_ns = 0L }

let bucket_of_ns ns =
  let ns = Int64.to_int ns in
  if ns <= 1 then 0
  else
    let rec log2 acc n = if n <= 1 then acc else log2 (acc + 1) (n lsr 1) in
    min 62 (log2 0 ns)

let hist_add h ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  h.buckets.(bucket_of_ns ns) <- h.buckets.(bucket_of_ns ns) + 1;
  h.count <- h.count + 1;
  h.total_ns <- Int64.add h.total_ns ns

let hist_count h = h.count
let hist_total_ns h = h.total_ns

(* Geometric midpoint of the bucket holding the requested rank: crude
   (a factor-sqrt(2) resolution) but monotone, allocation-free and
   plenty to see where a 2x hides. *)
let hist_percentile h p =
  if h.count = 0 then 0.
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int h.count)) in
    let rank = max 1 rank in
    let seen = ref 0 and found = ref 0 in
    (try
       for i = 0 to 62 do
         seen := !seen + h.buckets.(i);
         if !seen >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    let lo = if !found = 0 then 1. else Float.pow 2. (float_of_int !found) in
    lo *. sqrt 2.
  end

(* ---- sink ---- *)

type op_kind = Read | Write | Read_run | Write_run | Sync | Seal | Unseal

let op_kind_name = function
  | Read -> "read"
  | Write -> "write"
  | Read_run -> "read_run"
  | Write_run -> "write_run"
  | Sync -> "sync"
  | Seal -> "seal"
  | Unseal -> "unseal"

type op_stat = {
  op : op_kind;
  op_backend : string;
  count : int;
  op_blocks : int;
  op_bytes : int;
  latency : hist;
}

type phase = {
  label : string;
  depth : int;
  start_ns : int64;
  dur_ns : int64;
  ios : int;
  retries : int;
  faults : int;
  bytes : int;
}

type phase_stat = { phase_label : string; phase_count : int; phase_latency : hist }

(* An open phase accumulates counters while it is innermost; entering a
   child phase pushes a fresh frame, so a parent's numbers cover only
   its own direct I/O (the chrome view nests children visually). *)
type frame = {
  f_label : string;
  f_depth : int;
  f_start : int64;
  mutable f_ios : int;
  mutable f_retries : int;
  mutable f_faults : int;
  mutable f_bytes : int;
}

type t = {
  on : bool;
  mu : Mutex.t;
      (* Guards every mutation of the enabled sink: the storage stack may
         report from worker domains (sharded backends, the prefetcher)
         concurrently with the coordinator. The disabled sink never locks
         — its entry points remain the single [on] branch. Readers
         (op_stats, phases, counters, the printers) are called after the
         run, with the workers quiesced, and stay lock-free. *)
  mutable ops : (op_kind * string * op_stat) list;
      (* (kind, backend) -> stat; a handful of combinations, assoc is fine. *)
  mutable rev_phases : phase list;
  mutable stack : frame list;
  mutable counts : (string * int ref) list;
}

let make on = { on; mu = Mutex.create (); ops = []; rev_phases = []; stack = []; counts = [] }
let disabled = make false
let create () = make true
let enabled t = t.on

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let record_op t ~backend ~op ~blocks ~bytes ~ns =
  if t.on then
    locked t @@ fun () ->
    let stat =
      match List.find_opt (fun (k, b, _) -> k = op && String.equal b backend) t.ops with
      | Some (_, _, s) -> s
      | None ->
          let s =
            { op; op_backend = backend; count = 0; op_blocks = 0; op_bytes = 0;
              latency = hist_create () }
          in
          t.ops <- (op, backend, s) :: t.ops;
          s
    in
    let stat =
      { stat with count = stat.count + 1; op_blocks = stat.op_blocks + blocks;
        op_bytes = stat.op_bytes + bytes }
    in
    hist_add stat.latency ns;
    t.ops <-
      List.map
        (fun (k, b, s) -> if k = op && String.equal b backend then (k, b, stat) else (k, b, s))
        t.ops

let top t = match t.stack with [] -> None | f :: _ -> Some f

let add_ios t n =
  if t.on then locked t (fun () -> Option.iter (fun f -> f.f_ios <- f.f_ios + n) (top t))

let add_retries t n =
  if t.on then locked t (fun () -> Option.iter (fun f -> f.f_retries <- f.f_retries + n) (top t))

let add_faults t n =
  if t.on then locked t (fun () -> Option.iter (fun f -> f.f_faults <- f.f_faults + n) (top t))

let add_bytes t n =
  if t.on then locked t (fun () -> Option.iter (fun f -> f.f_bytes <- f.f_bytes + n) (top t))

let add_counter t name n =
  if t.on then
    locked t @@ fun () ->
    match List.assoc_opt name t.counts with
    | Some r -> r := !r + n
    | None -> t.counts <- (name, ref n) :: t.counts

let with_phase t label f =
  if not t.on then f ()
  else begin
    let frame =
      { f_label = label; f_depth = List.length t.stack; f_start = now_ns ();
        f_ios = 0; f_retries = 0; f_faults = 0; f_bytes = 0 }
    in
    locked t (fun () -> t.stack <- frame :: t.stack);
    Fun.protect
      ~finally:(fun () ->
        locked t @@ fun () ->
        (match t.stack with x :: rest when x == frame -> t.stack <- rest | _ -> ());
        t.rev_phases <-
          {
            label = frame.f_label;
            depth = frame.f_depth;
            start_ns = frame.f_start;
            dur_ns = Int64.sub (now_ns ()) frame.f_start;
            ios = frame.f_ios;
            retries = frame.f_retries;
            faults = frame.f_faults;
            bytes = frame.f_bytes;
          }
          :: t.rev_phases)
      f
  end

let phases t = List.rev t.rev_phases

let op_stats t =
  List.sort
    (fun a b -> compare (a.op, a.op_backend) (b.op, b.op_backend))
    (List.map (fun (_, _, s) -> s) t.ops)

let phase_stats t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (p : phase) ->
      let s =
        match Hashtbl.find_opt tbl p.label with
        | Some s -> s
        | None ->
            let s = { phase_label = p.label; phase_count = 0; phase_latency = hist_create () } in
            Hashtbl.add tbl p.label s;
            s
      in
      hist_add s.phase_latency p.dur_ns;
      Hashtbl.replace tbl p.label { s with phase_count = s.phase_count + 1 })
    t.rev_phases;
  List.sort
    (fun a b -> String.compare a.phase_label b.phase_label)
    (Hashtbl.fold (fun _ s acc -> s :: acc) tbl [])

let counters t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) (List.map (fun (n, r) -> (n, !r)) t.counts)

(* ---- human-readable profile ---- *)

let ms ns = Int64.to_float ns /. 1e6
let us f = f /. 1e3

let pp_summary ppf t =
  if not t.on then Format.fprintf ppf "telemetry: disabled@."
  else if t.ops = [] && t.rev_phases = [] && t.counts = [] then
    Format.fprintf ppf "telemetry: enabled, nothing recorded@."
  else begin
    if t.ops <> [] then begin
      Format.fprintf ppf "backend op latency (us): %-18s %8s %10s %8s %8s %8s@." "op[backend]"
        "count" "total_ms" "p50" "p90" "p99";
      List.iter
        (fun s ->
          Format.fprintf ppf "  %-38s %8d %10.3f %8.1f %8.1f %8.1f@."
            (Printf.sprintf "%s[%s] (%d blk, %d B)" (op_kind_name s.op) s.op_backend
               s.op_blocks s.op_bytes)
            s.count
            (ms (hist_total_ns s.latency))
            (us (hist_percentile s.latency 50.))
            (us (hist_percentile s.latency 90.))
            (us (hist_percentile s.latency 99.)))
        (op_stats t)
    end;
    let ps = phase_stats t in
    if ps <> [] then begin
      Format.fprintf ppf "phases (ms): %-31s %8s %10s %8s %8s %8s@." "label" "count" "total_ms"
        "p50" "p90" "p99";
      List.iter
        (fun s ->
          Format.fprintf ppf "  %-41s %8d %10.3f %8.3f %8.3f %8.3f@." s.phase_label
            s.phase_count
            (ms (hist_total_ns s.phase_latency))
            (hist_percentile s.phase_latency 50. /. 1e6)
            (hist_percentile s.phase_latency 90. /. 1e6)
            (hist_percentile s.phase_latency 99. /. 1e6))
        ps
    end;
    (match counters t with
    | [] -> ()
    | cs ->
        Format.fprintf ppf "counters:@.";
        List.iter (fun (n, v) -> Format.fprintf ppf "  %-41s %8d@." n v) cs)
  end

(* ---- Chrome trace-event export ---- *)

(* The catapult JSON object format: {"traceEvents": [...]}. Each phase
   becomes one complete event ("ph":"X", microsecond floats); each
   (op x backend) aggregate becomes one instant event carrying its
   histogram summary in args. Labels come from span names and backend
   kinds — short ASCII identifiers — but escape anyway. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_json named =
  let buf = Buffer.create 4096 in
  let first = ref true in
  let event s =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf "    ";
    Buffer.add_string buf s
  in
  (* Rebase all timestamps to the earliest phase start across sinks. *)
  let epoch =
    List.fold_left
      (fun acc (_, t) ->
        List.fold_left
          (fun acc (p : phase) -> if Int64.compare p.start_ns acc < 0 then p.start_ns else acc)
          acc t.rev_phases)
      Int64.max_int named
  in
  let epoch = if epoch = Int64.max_int then 0L else epoch in
  let ts ns = Int64.to_float (Int64.sub ns epoch) /. 1e3 in
  Buffer.add_string buf "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  List.iteri
    (fun tid (name, t) ->
      event
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
           tid (json_escape name));
      List.iter
        (fun (p : phase) ->
          event
            (Printf.sprintf
               "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\"cat\":\"phase\",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"ios\":%d,\"retries\":%d,\"faults\":%d,\"bytes\":%d,\"depth\":%d}}"
               tid (json_escape p.label) (ts p.start_ns)
               (Int64.to_float p.dur_ns /. 1e3)
               p.ios p.retries p.faults p.bytes p.depth))
        (phases t);
      List.iter
        (fun s ->
          event
            (Printf.sprintf
               "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"s\":\"t\",\"name\":\"%s\",\"cat\":\"opstat\",\"ts\":0,\"args\":{\"backend\":\"%s\",\"count\":%d,\"blocks\":%d,\"bytes\":%d,\"total_ms\":%.3f,\"p50_us\":%.1f,\"p99_us\":%.1f}}"
               tid
               (json_escape (op_kind_name s.op))
               (json_escape s.op_backend) s.count s.op_blocks s.op_bytes
               (ms (hist_total_ns s.latency))
               (us (hist_percentile s.latency 50.))
               (us (hist_percentile s.latency 99.))))
        (op_stats t);
      List.iter
        (fun (n, v) ->
          event
            (Printf.sprintf
               "{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"name\":\"%s\",\"ts\":0,\"args\":{\"value\":%d}}"
               tid (json_escape n) v))
        (counters t))
    named;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write_chrome ~path named =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (chrome_json named))
