open Odex_extmem

(* Blocks per batched transfer in the scans below. A pure transport
   granularity: the trace and I/O counts are those of the per-block
   scan (one op per block, address order), only the number of backend
   round-trips changes. *)
let scan_chunk = 64

let run ?(distinguished = fun (_ : Cell.item) -> true) ~into a =
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  (* Hint the first scan window before the output allocation below: on a
     prefetching store the first fetch rides under the setup. *)
  Ext_array.prime a ~chunk:scan_chunk;
  let dst =
    match into with
    | Some d ->
        if Ext_array.blocks d <> n then invalid_arg "Consolidation.run: size mismatch";
        d
    | None -> Ext_array.create (Ext_array.storage a) ~blocks:n
  in
  if n > 0 then
    Ext_array.with_span a "consolidation" (fun () ->
    (* Alice's pending queue never holds 2B or more items: each step adds
       at most B and drains B whenever it reaches B. The bound makes it a
       fixed ring over the already-boxed cells — no per-item allocation
       on the scan's hot path. *)
    let cap = 2 * b in
    let ring = Array.make cap Cell.empty in
    let head = ref 0 in
    let pending = ref 0 in
    let take_in blk =
      Array.iter
        (fun c ->
          match c with
          | Cell.Empty -> ()
          | Cell.Item it ->
              if distinguished it then begin
                ring.((!head + !pending) mod cap) <- c;
                incr pending
              end)
        blk
    in
    let emit_block () =
      let blk = Block.make b in
      let count = min b !pending in
      for slot = 0 to count - 1 do
        blk.(slot) <- ring.(!head);
        head := (!head + 1) mod cap
      done;
      pending := !pending - count;
      blk
    in
    (* Both scans move in batched runs: reads via [iter_runs], writes
       accumulated into a reused [scan_chunk]-block output window. *)
    let out_win = Array.make scan_chunk [||] in
    let out_len = ref 0 and out_base = ref 0 in
    let flush_out () =
      if !out_len > 0 then begin
        Ext_array.write_blocks dst !out_base
          (if !out_len = scan_chunk then out_win else Array.sub out_win 0 !out_len);
        out_base := !out_base + !out_len;
        out_len := 0
      end
    in
    let push_out blk =
      out_win.(!out_len) <- blk;
      incr out_len;
      if !out_len >= scan_chunk then flush_out ()
    in
    Ext_array.iter_runs a ~chunk:scan_chunk (fun base blks ->
        Array.iteri
          (fun j blk ->
            take_in blk;
            if base + j > 0 then
              push_out (if !pending >= b then emit_block () else Block.make b))
          blks);
    (* After every scan step at most one block's worth is pending, and
       the final emit drains it entirely. *)
    assert (!pending <= b);
    push_out (emit_block ());
    flush_out ());
  dst

let occupied_prefix_property a =
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  let last_nonempty = ref (-1) in
  for i = 0 to n - 1 do
    if not (Block.is_empty (Storage.unchecked_peek (Ext_array.storage a) (Ext_array.addr a i)))
    then last_nonempty := i
  done;
  let ok = ref true in
  for i = 0 to n - 1 do
    let blk = Storage.unchecked_peek (Ext_array.storage a) (Ext_array.addr a i) in
    let c = Block.count_items blk in
    if i = !last_nonempty then (if c < 1 then ok := false)
    else if c <> 0 && c <> b then ok := false
  done;
  !ok
