open Odex_extmem

type result = { item : Cell.item option; ok : bool }

(* Every comparison below goes through the caller's [cmp] (a cell
   ordering, as in Ext_sort): mixing orders between the private sorts,
   the oblivious sorts and the bracketing scans would silently select
   the wrong rank. *)
let cmp_items cmp (x : Cell.item) (y : Cell.item) = cmp (Cell.Item x) (Cell.Item y)
let min_item cmp a b = if cmp_items cmp a b <= 0 then a else b
let max_item cmp a b = if cmp_items cmp a b >= 0 then a else b

(* Blocks per batched transfer in the scans below; transport granularity
   only, see Consolidation. *)
let scan_chunk = 32

(* Count of items in [a]; one scan. *)
let count_items a =
  let total = ref 0 in
  Ext_array.iter_runs a ~chunk:scan_chunk (fun _ blks ->
      Array.iter (fun blk -> total := !total + Block.count_items blk) blks);
  !total

(* Consolidating sample pass: Lemma 3's scan, with a Bernoulli coin drawn
   for every cell (occupied or not) so coin consumption is fixed. *)
let consolidate_sample ~rng ~p a =
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  (* First window hinted before the output allocation (see
     Consolidation): the prefetcher overlaps setup with the first fetch. *)
  Ext_array.prime a ~chunk:scan_chunk;
  let dst = Ext_array.create (Ext_array.storage a) ~blocks:n in
  let pending = Queue.create () in
  let sampled = ref 0 in
  let take_in blk =
    Array.iter
      (fun c ->
        let coin = Odex_crypto.Rng.bernoulli rng p in
        match c with
        | Cell.Empty -> ()
        | Cell.Item it ->
            if coin then begin
              Queue.add it pending;
              incr sampled
            end)
      blk
  in
  let emit () =
    let blk = Block.make b in
    let count = min b (Queue.length pending) in
    for slot = 0 to count - 1 do
      blk.(slot) <- Cell.Item (Queue.pop pending)
    done;
    blk
  in
  if n > 0 then begin
    (* Batched like Consolidation.run; the coins are drawn per cell in
       scan order inside [take_in], so the coin stream is exactly the
       per-block scan's. *)
    let out_buf = ref [] and out_len = ref 0 and out_base = ref 0 in
    let flush_out () =
      if !out_len > 0 then begin
        Ext_array.write_blocks dst !out_base (Array.of_list (List.rev !out_buf));
        out_base := !out_base + !out_len;
        out_buf := [];
        out_len := 0
      end
    in
    let push_out blk =
      out_buf := blk :: !out_buf;
      incr out_len;
      if !out_len >= scan_chunk then flush_out ()
    in
    Ext_array.iter_runs a ~chunk:scan_chunk (fun base blks ->
        Array.iteri
          (fun j blk ->
            take_in blk;
            if base + j > 0 then
              push_out (if Queue.length pending >= b then emit () else Block.make b))
          blks);
    push_out (emit ());
    flush_out ()
  end;
  (dst, !sampled)

(* Scan a sorted compacted array and privately grab the items at the two
   given 1-indexed ranks (among items). *)
let grab_ranks a r1 r2 =
  let seen = ref 0 in
  let g1 = ref None and g2 = ref None in
  Ext_array.iter_runs a ~chunk:scan_chunk (fun _ blks ->
      Array.iter
        (Array.iter (fun c ->
             match c with
             | Cell.Empty -> ()
             | Cell.Item it ->
                 incr seen;
                 if !seen = r1 then g1 := Some it;
                 if !seen = r2 then g2 := Some it))
        blks);
  (!g1, !g2)

(* Base case: the whole array fits in cache (the caller guarantees
   n <= m, which [load_run]'s capacity check re-verifies); trace is one
   batched scan. *)
let select_in_cache ~cmp ~m ~k a =
  let n = Ext_array.blocks a in
  let cache = Cache.create (Ext_array.storage a) ~capacity:m in
  Cache.load_run cache (Ext_array.base a) ~count:n;
  let items = ref [] in
  for i = 0 to n - 1 do
    let blk = Cache.borrow cache (Ext_array.addr a i) in
    Array.iter (fun c -> match c with Cell.Empty -> () | Cell.Item it -> items := it :: !items) blk;
    Cache.drop cache (Ext_array.addr a i)
  done;
  let sorted = List.sort (cmp_items cmp) !items in
  match List.nth_opt sorted (k - 1) with
  | Some it -> { item = Some it; ok = true }
  | None -> { item = None; ok = false }

(* Degenerate regime (the in-range capacity is not smaller than the
   array): sort everything obliviously and scan for the rank. *)
let select_by_sorting ~cmp ~m ~k a =
  Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.auto ~cmp ~m a;
  let got, _ = grab_ranks a k (-1) in
  { item = got; ok = got <> None }

let rec go ?key ~cmp ~m ~rng ~exponent ~delta ~k a =
  let n_blocks = Ext_array.blocks a in
  if n_blocks <= m then select_in_cache ~cmp ~m ~k a
  else begin
    let b = Ext_array.block_size a in
    let total = count_items a in
    if k < 1 || k > total then invalid_arg "Selection.select: k out of range";
    let nf = Float.of_int total in
    (* Sampling rate N^{-e}: the paper's Theorem 12 uses e = 1/2; the
       quantile-style e = 1/4 shrinks the bracketed residue much faster
       at feasible N (EXPERIMENTS.md E7 measures both). *)
    let p = Float.pow nf (-.exponent) in
    let s0 = nf *. p in
    (* The default rank slack s0^{3/4} reproduces the paper's N^{3/8}
       at e = 1/2; callers may tighten it. *)
    let d = match delta with Some f -> f s0 | None -> Float.pow s0 0.75 in
    let d = Float.max 1. d in
    let cap_in_cells = min total (Float.to_int (4. *. d /. p) + 1) in
    if cap_in_cells >= total then select_by_sorting ~cmp ~m ~k a
    else begin
      let ok = ref true in
      (* 1. Sample w.p. N^{-e} and consolidate. *)
      let sample, sampled =
        Ext_array.with_span a "selection.sample" (fun () -> consolidate_sample ~rng ~p a)
      in
      let cap_sample_cells = min total (Float.to_int (s0 +. d) + 1) in
      let cap_sample_blocks = Emodel.ceil_div cap_sample_cells b + 1 in
      if Float.of_int sampled > s0 +. d || Float.of_int sampled < Float.max 1. (s0 -. d) then
        ok := false;
      (* 2. Tight-compact the sample (Theorem 4 regime) and sort it. *)
      let c_out =
        Ext_array.with_span a "selection.compact-sample" (fun () ->
            Compaction.tight ?key ~m ~capacity_blocks:cap_sample_blocks sample)
      in
      if not c_out.ok then ok := false;
      let c_arr = c_out.dest in
      Ext_array.with_span a "selection.sort-sample" (fun () ->
          Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.auto ~cmp ~m c_arr);
      (* 3. Bracket ranks (Lemma 11). *)
      let s = sampled in
      let ix = Float.to_int (Float.ceil ((Float.of_int k *. p) -. d)) in
      let iy =
        s - Float.to_int (Float.ceil ((Float.of_int (total - k) *. p) -. (2. *. d)))
      in
      let want r = if r >= 1 && r <= s then r else -1 in
      let x_opt, y_opt =
        Ext_array.with_span a "selection.grab-brackets" (fun () ->
            grab_ranks c_arr (want ix) (want iy))
      in
      (* 4. Global min and max; combine. *)
      let lo = ref None and hi = ref None in
      Ext_array.with_span a "selection.extremes" (fun () ->
          Ext_array.iter_runs a ~chunk:scan_chunk (fun _ blks ->
              Array.iter
                (Array.iter (fun c ->
                     match c with
                     | Cell.Empty -> ()
                     | Cell.Item it ->
                         lo := Some (match !lo with None -> it | Some v -> min_item cmp v it);
                         hi := Some (match !hi with None -> it | Some v -> max_item cmp v it)))
                blks));
      let x =
        match (x_opt, !lo) with
        | Some x', Some x'' -> max_item cmp x' x''
        | None, Some x'' -> x''
        | _, None -> assert false
      in
      let y =
        match (y_opt, !hi) with
        | Some y', Some y'' -> min_item cmp y' y''
        | None, Some y'' -> y''
        | _, None -> assert false
      in
      let in_range it = cmp_items cmp x it <= 0 && cmp_items cmp it y <= 0 in
      (* 5. Count below x and in range; one scan. *)
      let c_lt = ref 0 and c_in = ref 0 in
      Ext_array.with_span a "selection.count" (fun () ->
          Ext_array.iter_runs a ~chunk:scan_chunk (fun _ blks ->
              Array.iter
                (Array.iter (fun c ->
                     match c with
                     | Cell.Empty -> ()
                     | Cell.Item it ->
                         if cmp_items cmp it x < 0 then incr c_lt;
                         if in_range it then incr c_in))
                blks));
      let cap_in_blocks = Emodel.ceil_div cap_in_cells b + 1 in
      if !c_in > cap_in_cells || k <= !c_lt || k > !c_lt + !c_in then ok := false;
      (* 6. Consolidate the in-range items and tightly compact them (the
         facade picks the cheaper of Theorem 4 and Theorem 6 from public
         parameters). *)
      let t_arr =
        Ext_array.with_span a "selection.consolidate-range" (fun () ->
            Consolidation.run ~distinguished:in_range ~into:None a)
      in
      let d_out =
        Ext_array.with_span a "selection.compact-range" (fun () ->
            Compaction.tight ?key ~m ~capacity_blocks:cap_in_blocks t_arr)
      in
      if not d_out.ok then ok := false;
      let d_arr = d_out.dest in
      (* 7. Recurse on the bracketed residue (it fits in cache after
         O(1) levels; the paper sorts it instead — same result, and the
         recursion keeps the total I/O linear at practical sizes). *)
      if !ok then begin
        let sub =
          Ext_array.with_span a "selection.recurse" (fun () ->
              go ?key ~cmp ~m ~rng ~exponent ~delta ~k:(k - !c_lt) d_arr)
        in
        { item = sub.item; ok = sub.ok }
      end
      else begin
        (* Keep the trace shape: run the recursion anyway, but report
           failure. Rank clamped to the residue's item count. *)
        let residue_items = count_items d_arr in
        if residue_items = 0 then { item = None; ok = false }
        else
          let k' = max 1 (min residue_items (k - !c_lt)) in
          let sub =
            Ext_array.with_span a "selection.recurse" (fun () ->
                go ?key ~cmp ~m ~rng ~exponent ~delta ~k:k' d_arr)
          in
          { item = sub.item; ok = false }
      end
    end
  end

let select ?key ?(cmp = Cell.compare_keys) ?(exponent = 0.5) ~m ~rng ~k a =
  go ?key ~cmp ~m ~rng ~exponent ~delta:None ~k a

let select_with_delta ?key ?(cmp = Cell.compare_keys) ?(exponent = 0.5) ~m ~rng ~delta ~k a =
  go ?key ~cmp ~m ~rng ~exponent ~delta:(Some delta) ~k a
