(** Compaction facade: pick the right algorithm for the regime.

    The paper provides three compaction engines with different
    trade-offs (§3): IBLT-based sparse tight compaction (Theorem 4), the
    butterfly network (Theorem 6) and randomized loose compaction
    (Theorem 8). This module composes them with consolidation (Lemma 3)
    behind two entry points used by selection, quantiles and sorting.

    Which engine runs depends only on public parameters (n, m, B,
    capacity), never on data, so dispatching does not break
    obliviousness. *)

open Odex_extmem

type outcome = {
  dest : Ext_array.t;
  occupied : int;  (** Occupied blocks moved (Alice-private). *)
  ok : bool;  (** Success flag of the randomized engines; always true for butterfly. *)
}

val tight :
  ?key:Odex_crypto.Prf.key ->
  m:int ->
  capacity_blocks:int ->
  Ext_array.t ->
  outcome
(** Tight order-preserving compaction of a {e consolidated} array into
    [capacity_blocks] blocks. Dispatches between the Theorem 4 IBLT
    engine (O(n) I/Os, constant ≈ 1 + 6·⌈(2+5B)/4B⌉ per block) and the
    Theorem 6 butterfly (O(n log_m n) I/Os, constant ≈ 2 per pass) by
    comparing their cost estimates — both depend only on (n, m, B), so
    the dispatch is public. At feasible sizes the butterfly usually
    wins; the IBLT engine takes over once log n / log m outgrows its
    constant (see EXPERIMENTS.md E3/E4). The input array is consumed as
    scratch. *)

val loose :
  ?sorter:Odex_sortnet.Ext_sort.t ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  capacity_blocks:int ->
  Ext_array.t ->
  outcome
(** Loose (5×) compaction of a consolidated array: Theorem 8 when the
    capacity is at most a quarter of the array and a region fits the
    cache, butterfly otherwise. The returned array has
    [5 * capacity_blocks] blocks (loose) or [capacity_blocks] blocks
    (butterfly fallback — check [Ext_array.blocks]). The input is
    consumed. *)

val sparse_table_fits : m:int -> capacity_blocks:int -> block_size:int -> bool
(** Whether the Theorem 4 engine's IBLT table (at its default k and
    multiplier, including the k+1-cell floor) fits Alice's cache — the
    precondition for dispatching to {!Odex.Sparse_compaction}. Public
    parameters only. *)

val butterfly_cost : n:int -> m:int -> int
(** Estimated I/O count of Theorem 6 compaction on an n-block array
    (public parameters only). *)

val sparse_cost : n:int -> block_size:int -> int
(** Estimated I/O count of the Theorem 4 insertion phase. *)

val loose_cost : n:int -> int
(** Estimated I/O count of Theorem 8 loose compaction (measured constant
    ~40 per block; see EXPERIMENTS.md E5). *)

val consolidate_items :
  ?distinguished:(Cell.item -> bool) -> Ext_array.t -> Ext_array.t
(** Lemma 3 over a fresh destination (convenience re-export). *)
