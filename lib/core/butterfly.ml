open Odex_extmem

exception Collision of { level : int; position : int }

(* A block's remaining routing distance is stored in the [aux] word of
   every item it carries (occupied blocks after consolidation have at
   least one item). Routes are fully determined by the initial labels.

   Compaction consumes label bits low-to-high: a phase covering strides
   2^lo .. 2^(lo+g-1) moves each block left by (d mod 2^(lo+g)) (its
   lower bits are already zero), which Lemma 5 guarantees is
   collision-free. Expansion runs the same network backwards in time —
   phases high-bit-first, rightward moves — so its intermediate
   configurations are exactly those of the corresponding compaction and
   inherit its collision-freedom. *)

let label_of blk =
  let rec find i =
    if i >= Array.length blk then None
    else match blk.(i) with Cell.Empty -> find (i + 1) | Cell.Item it -> Some it.aux
  in
  find 0

let set_label blk d = Array.iteri (fun i c -> blk.(i) <- Cell.with_aux c d) blk

(* Route one residue class of a phase.

   [pos u] maps the class's u-th sub-position to a block index of [a];
   [step d] returns the sub-space move (0 .. modulus-1) and the new
   label. Sub-positions are consumed in increasing [u] with a sliding
   window of 2w-1 cached blocks, finalizing w destinations at a time;
   every block is read once and written once in an order depending only
   on (n, m, s, c) — the circuit-simulation obliviousness of Theorem 6. *)
let route_class a cache ~level ~pos ~len ~w ~step =
  let storage = Ext_array.storage a in
  let b = Ext_array.block_size a in
  let route uq =
    let addr = Ext_array.addr a (pos uq) in
    let blk = Cache.load cache addr in
    Cache.drop cache addr;
    match label_of blk with
    | None -> ()
    | Some d ->
        let u_move, d' = step d in
        let u_dst = uq - u_move in
        set_label blk d';
        let dst_addr = Ext_array.addr a (pos u_dst) in
        if Cache.is_resident cache dst_addr then
          raise (Collision { level; position = pos u_dst });
        Cache.put cache dst_addr blk
  in
  let finalize u =
    let addr = Ext_array.addr a (pos u) in
    if Cache.is_resident cache addr then Cache.flush cache addr
    else Storage.write storage addr (Block.make b)
  in
  let read_cursor = ref 0 in
  let t = ref 0 in
  while !t < len do
    let hi = min len (!t + (2 * w) - 1) in
    while !read_cursor < hi do
      route !read_cursor;
      incr read_cursor
    done;
    let stop = min len (!t + w) in
    while !t < stop do
      finalize !t;
      incr t
    done
  done

let route_all a ~m ~direction =
  let n = Ext_array.blocks a in
  if m < 3 then invalid_arg "Butterfly: need m >= 3 (the paper's M >= 3B)";
  if n > 1 then Ext_array.with_span a "butterfly.route" @@ fun () ->
  begin
    (* 2w - 1 cached blocks per window; g = log2 w levels per phase. *)
    let w = 1 lsl Emodel.ilog2_floor ((m + 1) / 2) in
    let g = Emodel.ilog2_floor w in
    let modulus = 1 lsl g in
    let cache = Cache.create (Ext_array.storage a) ~capacity:m in
    let bits = Emodel.ilog2_ceil n in
    let phase_los =
      let rec build lo acc = if lo >= bits then acc else build (lo + g) (lo :: acc) in
      (* Ascending for compaction (low bits first), the reverse run for
         expansion. *)
      match direction with
      | `Compact -> List.rev (build 0 [])
      | `Expand -> build 0 []
    in
    List.iter
      (fun lo ->
        let s = 1 lsl lo in
        let step d =
          match direction with
          | `Compact ->
              (* d is a multiple of s; consume bits [lo, lo+g). *)
              let move_raw = d mod (s * modulus) in
              (move_raw / s, d - move_raw)
          | `Expand ->
              (* Higher bits already applied: d < s * modulus; apply
                 bits [lo, lo+g), keep the rest for later phases. *)
              ((d mod (s * modulus)) / s, d mod s)
        in
        for c = 0 to min s n - 1 do
          let len = (n - c + s - 1) / s in
          let pos u =
            match direction with
            | `Compact -> c + (u * s)
            (* Rightward moves: finalize the high end first by running
               the class in mirror order. *)
            | `Expand -> c + ((len - 1 - u) * s)
          in
          route_class a cache ~level:lo ~len ~w ~step ~pos
        done)
      phase_los
  end

let compact ~m a =
  let n = Ext_array.blocks a in
  (* Pass 1: label occupied blocks with their leftward distance. *)
  let rank = ref 0 in
  Ext_array.with_span a "butterfly.label" (fun () ->
      for j = 0 to n - 1 do
        let blk = Ext_array.read_block a j in
        if not (Block.is_empty blk) then begin
          set_label blk (j - !rank);
          incr rank
        end;
        Ext_array.write_block a j blk
      done);
  route_all a ~m ~direction:`Compact;
  !rank

let expand ~m a factor =
  let n = Ext_array.blocks a in
  (* Label occupied blocks with their rightward distance. Destinations
     [rank + factor rank] must be strictly increasing and in bounds. *)
  let rank = ref 0 in
  let last_dest = ref (-1) in
  Ext_array.with_span a "butterfly.label" (fun () ->
      for j = 0 to n - 1 do
        let blk = Ext_array.read_block a j in
        if not (Block.is_empty blk) then begin
          let f = factor !rank in
          if f < 0 || j + f >= n then invalid_arg "Butterfly.expand: factor out of range";
          if j + f <= !last_dest then
            invalid_arg "Butterfly.expand: destinations must be strictly increasing";
          last_dest := j + f;
          set_label blk f;
          incr rank
        end;
        Ext_array.write_block a j blk
      done);
  route_all a ~m ~direction:`Expand

let naive_levels a =
  let n = Ext_array.blocks a in
  let storage = Ext_array.storage a in
  (* Private simulation: labels per position, -1 = empty. *)
  let labels = Array.make n (-1) in
  let rank = ref 0 in
  for j = 0 to n - 1 do
    let blk = Storage.unchecked_peek storage (Ext_array.addr a j) in
    if not (Block.is_empty blk) then begin
      labels.(j) <- j - !rank;
      incr rank
    end
  done;
  let out = ref [ Array.to_list labels ] in
  let levels = if n <= 1 then 0 else Emodel.ilog2_ceil n in
  for i = 0 to levels - 1 do
    let next = Array.make n (-1) in
    for j = 0 to n - 1 do
      let d = labels.(j) in
      if d >= 0 then begin
        let move = d mod (1 lsl (i + 1)) in
        let dst = j - move in
        if next.(dst) >= 0 then raise (Collision { level = i; position = dst });
        next.(dst) <- d - move
      end
    done;
    Array.blit next 0 labels 0 n;
    out := Array.to_list labels :: !out
  done;
  List.rev !out
