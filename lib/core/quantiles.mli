(** Data-oblivious quantile selection — Theorem 17.

    Computes the q quantile items (global ranks ⌈i·N/(q+1)⌉ for
    i = 1..q, ordered by (key, tag)) in O(N/B) I/Os:

    + when (M/B)⁴ >= N/B, the paper's easy case: one deterministic
      oblivious sort of a copy (O(N/B) I/Os in this regime) and a scan;
    + otherwise: sample with probability N^{-1/4}, compact (Theorem 4)
      and sort the sample; bracket every quantile between two sample
      ranks [x_i, y_i] (Lemma 16); one counting scan of A; consolidate
      and loosely compact (Theorem 8) the union of the intervals; sort
      that small residue; and read all q answers off one final scan.

    Alice holds 4q + O(1) counters, so q may be as large as m (the
    paper's q <= (M/B)^{1/4} is what the sorting algorithm needs, not a
    limit of this routine). Success-probability bookkeeping follows
    Lemmas 14–16; the [ok] flag reports the (rank-verified) outcome
    without affecting the trace. *)

open Odex_extmem

type result = {
  quantiles : Cell.item array;  (** Length q; garbage entries only if [ok] is false. *)
  ok : bool;
}

val run :
  ?key:Odex_crypto.Prf.key ->
  ?cmp:(Cell.t -> Cell.t -> int) ->
  ?delta:(float -> float) ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  q:int ->
  Ext_array.t ->
  result
(** [run ~m ~rng ~q a]. [key] is the PRF key for the Theorem 4 IBLT
    compaction (sparse-compaction hashing only — it does not affect the
    ordering). [cmp] is the cell ordering that defines the quantile
    ranks (default {!Cell.compare_keys}; must order [Cell.Empty] after
    every item) and is used consistently across all sorts and interval
    tests. [delta] overrides the sample-rank slack (default 3·√s where
    s is the sample size), as in {!Selection.select_with_delta}. The
    input array is preserved. *)

val rank_of_quantile : total:int -> q:int -> int -> int
(** [rank_of_quantile ~total ~q i] is the 1-indexed global rank targeted
    by quantile [i] (1-indexed): ⌈i·total/(q+1)⌉. *)
