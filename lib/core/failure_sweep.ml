open Odex_extmem

(* Deterministic Monte Carlo: trial i draws its coins from a rng seeded
   by a fixed mix of [seed] and i, so a measured failure count is a
   reproducible fact about the algorithm, not about the clock. The
   success-probability suites (loose-compaction overflow, IBLT decode)
   pin the paper's bounds through this harness. *)
let monte_carlo ~trials ~seed f =
  if trials < 1 then invalid_arg "Failure_sweep.monte_carlo: trials must be >= 1";
  let failures = ref 0 in
  for i = 0 to trials - 1 do
    let rng = Odex_crypto.Rng.create ~seed:(seed lxor (i * 0x9E3779B9)) in
    if not (f ~rng ~trial:i) then incr failures
  done;
  !failures

let failure_rate ~trials ~seed f =
  Float.of_int (monte_carlo ~trials ~seed f) /. Float.of_int trials

let sweep ~m subarrays ok_flags =
  let k = Array.length subarrays in
  if Array.length ok_flags <> k then invalid_arg "Failure_sweep.sweep: flag count mismatch";
  Array.iteri
    (fun i a ->
      ignore (Ext_array.block_size a);
      Odex_sortnet.Ext_sort.run_selective Odex_sortnet.Ext_sort.auto ~real:(not ok_flags.(i)) ~m
        a)
    subarrays;
  true
