(** Two-server oblivious tight compaction in the non-colluding model.

    When the store is striped across at least two physical servers that
    do not collude (DESIGN.md §14), each server is a separate adversary
    seeing only the op sequence its own device serves. Obliviousness
    then only has to hold {e per server} — a strictly weaker requirement
    than the single-server definition — and this engine exploits the
    difference: the data-dependent routing decision of tight compaction
    ("is this block occupied?") is encoded solely in the {e interleaving}
    between reads served by server A and writes served by server B,
    which neither server can observe alone.

    The protocol (order-preserving, block-granularity, like
    {!Butterfly.compact}): stage the input onto server A's slots; scan
    them in fixed order, forwarding each occupied block to server B's
    next output slot and padding the remainder with empties; deliver B's
    output back to a striped destination. Server A sees a fixed read
    sequence, server B a fixed write sequence, at every occupancy.

    Cost: exactly [3*(N/B) + 3*capacity] block I/Os ({!cost}) —
    strictly below the single-server butterfly's
    [2*(N/B)*(1 + phases) >= 4*(N/B)] at equal (N, B, M), because the
    log-depth oblivious routing network is replaced by one
    plain-routed pass whose leak lands between the servers. The
    {e combined} trace is occupancy-dependent by design, so the
    registry certifies this subject with the [`Multi_server]
    certificate: the pair-tester requires every per-server trace to
    match, not the logical one. *)

open Odex_extmem

type outcome = {
  dest : Ext_array.t;  (** [capacity_blocks] blocks, occupied prefix first. *)
  occupied : int;  (** Occupied blocks moved (Alice-private). *)
  ok : bool;  (** Always [true]; present for parity with {!Compaction.outcome}. *)
}

val cost : n:int -> capacity:int -> int
(** Exact block-I/O count of the two-server protocol on an [n]-block
    input with [capacity] output blocks (public parameters only). *)

val run : m:int -> capacity_blocks:int -> Ext_array.t -> outcome
(** Order-preserving tight compaction of the array's occupied blocks
    into a fresh [capacity_blocks]-block destination on the same store.
    Requires the store's backend to be sharded with [k >= 2] (shard 0
    plays server A, shard 1 server B); on single-server stores it
    dispatches — publicly, on backend shape alone — to
    {!Compaction.tight}. Raises [Invalid_argument] when more than
    [capacity_blocks] blocks are occupied (after the full per-server
    schedule has run) or [capacity_blocks < 0]. The input array is
    consumed as scratch. *)
