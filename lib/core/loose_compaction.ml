open Odex_extmem

type outcome = { dest : Ext_array.t; ok : bool }

(* Compact each region of [rho] blocks of [src] to its first ceil(rho/2)
   blocks, writing them to [dst] (of half the size). One in-cache pass per
   region; the trace is a fixed interleaving of region reads and
   half-region writes. Returns false if any region overflowed. *)
let halve_regions cache ~rho src dst =
  let n = Ext_array.blocks src in
  let b = Ext_array.block_size src in
  let half = (rho + 1) / 2 in
  let regions = Emodel.ceil_div n rho in
  let ok = ref true in
  for g = 0 to regions - 1 do
    let lo = g * rho in
    let len = min rho (n - lo) in
    let out_lo = g * half in
    let out_len = min half (Ext_array.blocks dst - out_lo) in
    (* Gather the region. *)
    let occupied = ref [] in
    (* [Cache.load] returns a caller-owned copy, so the gathered blocks
       stay valid after the drop. *)
    for i = lo + len - 1 downto lo do
      let blk = Cache.load cache (Ext_array.addr src i) in
      if not (Block.is_empty blk) then occupied := blk :: !occupied;
      Cache.drop cache (Ext_array.addr src i)
    done;
    if List.length !occupied > out_len then ok := false;
    (* Scatter the survivors (possibly truncated on overflow). *)
    for slot = 0 to out_len - 1 do
      let blk =
        match !occupied with
        | blk :: rest ->
            occupied := rest;
            blk
        | [] -> Block.make b
      in
      Ext_array.write_block dst (out_lo + slot) blk
    done
  done;
  !ok

let run ?(c0 = 4) ?(c1 = 3) ?(sorter = Odex_sortnet.Ext_sort.auto) ~m ~rng ~capacity a =
  if capacity < 0 then invalid_arg "Loose_compaction.run: negative capacity";
  let storage = Ext_array.storage a in
  let b = Ext_array.block_size a in
  let n = Ext_array.blocks a in
  let dest = Ext_array.create storage ~blocks:(5 * capacity) in
  if capacity = 0 then { dest; ok = true }
  else begin
    let c_region = Ext_array.sub dest ~off:0 ~len:(4 * capacity) in
    let rho = max 2 (c1 * Emodel.ilog2_ceil (max 2 n)) in
    if rho > m then
      invalid_arg
        (Printf.sprintf
           "Loose_compaction.run: region of %d blocks exceeds cache m = %d (wide-block/tall-cache \
            assumption violated)"
           rho m);
    let cache = Cache.create storage ~capacity:m in
    (* Stop the halving once A is below n / log_m^2 n blocks (and always
       once regions stop making sense). *)
    let log_m_n =
      Float.max 1.
        (Emodel.log_base ~base:(Float.of_int (max 2 m)) (Float.of_int (max 2 n)))
    in
    let threshold =
      max (2 * rho) (Float.to_int (Float.of_int n /. (log_m_n *. log_m_n)))
    in
    let ok = ref true in
    let cur = ref a in
    Ext_array.with_span a "loose.halving" (fun () ->
        while Ext_array.blocks !cur > threshold do
          for _ = 1 to c0 do
            Thinning.pass ~rng ~src:!cur ~dst:c_region
          done;
          let next =
            Ext_array.create storage
              ~blocks:(Emodel.ceil_div (Ext_array.blocks !cur) rho * ((rho + 1) / 2))
          in
          if not (halve_regions cache ~rho !cur next) then ok := false;
          cur := next
        done);
    (* Final deterministic compression of the residue: occupied cells
       first, then copy the first [capacity] blocks to the output tail. *)
    Ext_array.with_span a "loose.final-sort" (fun () ->
        Odex_sortnet.Ext_sort.run sorter ~m !cur;
        for i = 0 to capacity - 1 do
          let blk =
            if i < Ext_array.blocks !cur then Ext_array.read_block !cur i else Block.make b
          in
          Ext_array.write_block dest ((4 * capacity) + i) blk
        done);
    { dest; ok = !ok }
  end
