open Odex_extmem

type result = { quantiles : Cell.item array; ok : bool }

(* As in Selection: one caller-supplied cell ordering drives every
   comparison — private sorts, oblivious sorts and interval tests. *)
let cmp_items cmp (x : Cell.item) (y : Cell.item) = cmp (Cell.Item x) (Cell.Item y)

let rank_of_quantile ~total ~q i =
  if i < 1 || i > q then invalid_arg "Quantiles.rank_of_quantile: bad index";
  max 1 (Emodel.ceil_div (i * total) (q + 1))

let dummy_item = { Cell.key = 0; value = 0; tag = 0; aux = 0 }

(* Blocks per batched transfer in the scans below; transport granularity
   only, see Consolidation. *)
let scan_chunk = 32

(* Scan [a]; grab the item of 1-indexed rank [ranks.(i)] (among items, in
   scan order) for every i. Ranks need not be sorted or distinct. *)
let grab_many a ranks out =
  let seen = ref 0 in
  Ext_array.iter_runs a ~chunk:scan_chunk (fun _ blks ->
      Array.iter
        (Array.iter (fun c ->
             match c with
             | Cell.Empty -> ()
             | Cell.Item it ->
                 incr seen;
                 Array.iteri (fun j r -> if r = !seen then out.(j) <- Some it) ranks))
        blks)

let private_quantiles ~cmp ~q items =
  let sorted = List.sort (cmp_items cmp) items in
  let arr = Array.of_list sorted in
  let total = Array.length arr in
  if total = 0 then { quantiles = Array.make q dummy_item; ok = false }
  else
    {
      quantiles = Array.init q (fun i -> arr.(rank_of_quantile ~total ~q (i + 1) - 1));
      ok = true;
    }

(* Base case: array fits in cache (n <= m, re-verified by [load_run]'s
   capacity check); one batched scan. *)
let in_cache ~cmp ~m ~q a =
  let n = Ext_array.blocks a in
  let cache = Cache.create (Ext_array.storage a) ~capacity:m in
  Cache.load_run cache (Ext_array.base a) ~count:n;
  let items = ref [] in
  for i = 0 to n - 1 do
    let blk = Cache.borrow cache (Ext_array.addr a i) in
    Array.iter (fun c -> match c with Cell.Empty -> () | Cell.Item it -> items := it :: !items) blk;
    Cache.drop cache (Ext_array.addr a i)
  done;
  private_quantiles ~cmp ~q !items

(* Easy case (M/B)^4 >= N/B: sort a copy deterministically, scan. *)
let by_sorting ~cmp ~m ~q a =
  let n = Ext_array.blocks a in
  let storage = Ext_array.storage a in
  Ext_array.prime a ~chunk:scan_chunk;
  let copy = Ext_array.create storage ~blocks:n in
  let total = ref 0 in
  Ext_array.iter_runs a ~chunk:scan_chunk (fun base blks ->
      Array.iter (fun blk -> total := !total + Block.count_items blk) blks;
      Ext_array.write_blocks copy base blks);
  Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.auto ~cmp ~m copy;
  if !total = 0 then { quantiles = Array.make q dummy_item; ok = false }
  else begin
    let ranks = Array.init q (fun i -> rank_of_quantile ~total:!total ~q (i + 1)) in
    let out = Array.make q None in
    grab_many copy ranks out;
    let ok = Array.for_all Option.is_some out in
    {
      quantiles = Array.map (function Some it -> it | None -> dummy_item) out;
      ok;
    }
  end

let run ?key ?(cmp = Cell.compare_keys) ?delta ~m ~rng ~q a =
  if q < 1 then invalid_arg "Quantiles.run: q must be >= 1";
  if q > m then invalid_arg "Quantiles.run: q must be <= m (Alice's counters)";
  let n_blocks = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  if n_blocks <= m then in_cache ~cmp ~m ~q a
  else if
    (* (M/B)^4 >= N/B, guarding against overflow for big m. *)
    m >= 256 || m * m * m * m >= n_blocks
  then by_sorting ~cmp ~m ~q a
  else begin
    let ok = ref true in
    (* Count items; one batched scan. *)
    let total = ref 0 in
    Ext_array.iter_runs a ~chunk:scan_chunk (fun _ blks ->
        Array.iter (fun blk -> total := !total + Block.count_items blk) blks);
    let total = !total in
    if total = 0 then { quantiles = Array.make q dummy_item; ok = false }
    else begin
      let nf = Float.of_int total in
      let p = Float.pow nf (-0.25) in
      (* 1. Sample and consolidate (per-cell coins). *)
      let sample, sampled =
        Ext_array.with_span a "quantiles.sample" (fun () ->
            Selection.consolidate_sample ~rng ~p a)
      in
      let expect = Float.pow nf 0.75 in
      let cap_sample_cells = min total (Float.to_int (expect +. Float.sqrt nf) + 1) in
      if
        Float.of_int sampled > expect +. Float.sqrt nf
        || Float.of_int sampled < Float.max 1. (expect -. Float.sqrt nf)
      then ok := false;
      let cap_sample_blocks = Emodel.ceil_div cap_sample_cells b + 1 in
      let c_out =
        Ext_array.with_span a "quantiles.compact-sample" (fun () ->
            Compaction.tight ?key ~m ~capacity_blocks:cap_sample_blocks sample)
      in
      if not c_out.ok then ok := false;
      let c_arr = c_out.dest in
      Ext_array.with_span a "quantiles.sort-sample" (fun () ->
          Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.auto ~cmp ~m c_arr);
      let s = sampled in
      let sf = Float.of_int (max 1 s) in
      let d = match delta with Some f -> f sf | None -> 3. *. Float.sqrt sf in
      let d = Float.max 1. d in
      (* 2. Bracket each quantile between two sample ranks. *)
      let lo_rank = Array.make q (-1) and hi_rank = Array.make q (-1) in
      for i = 0 to q - 1 do
        let ri = Float.of_int (i + 1) *. sf /. Float.of_int (q + 1) in
        let l = Float.to_int (Float.floor (ri -. d)) in
        let h = Float.to_int (Float.ceil (ri +. d)) in
        lo_rank.(i) <- (if l >= 1 && l <= s then l else -1);
        hi_rank.(i) <- (if h >= 1 && h <= s then h else -1)
      done;
      let lo_grab = Array.make q None and hi_grab = Array.make q None in
      Ext_array.with_span a "quantiles.grab-brackets" (fun () ->
          grab_many c_arr lo_rank lo_grab;
          grab_many c_arr hi_rank hi_grab);
      (* Global extremes for unbounded interval ends. *)
      let gmin = ref None and gmax = ref None in
      Ext_array.with_span a "quantiles.extremes" (fun () ->
          Ext_array.iter_runs a ~chunk:scan_chunk (fun _ blks ->
              Array.iter
                (Array.iter (fun c ->
                     match c with
                     | Cell.Empty -> ()
                     | Cell.Item it ->
                         gmin := Some (match !gmin with None -> it | Some v -> if cmp_items cmp it v < 0 then it else v);
                         gmax := Some (match !gmax with None -> it | Some v -> if cmp_items cmp it v > 0 then it else v)))
                blks));
      let gmin = Option.get !gmin and gmax = Option.get !gmax in
      let x = Array.init q (fun i -> Option.value lo_grab.(i) ~default:gmin) in
      let y = Array.init q (fun i -> Option.value hi_grab.(i) ~default:gmax) in
      let in_interval i it = cmp_items cmp x.(i) it <= 0 && cmp_items cmp it y.(i) <= 0 in
      let in_union it =
        let rec any i = i < q && (in_interval i it || any (i + 1)) in
        any 0
      in
      (* 3. Counting scan: per quantile, items below x_i, items below x_i
         that are in the union, and items inside [x_i, y_i]. *)
      let c_lt = Array.make q 0 and u_lt = Array.make q 0 and c_in = Array.make q 0 in
      let u_total = ref 0 in
      Ext_array.with_span a "quantiles.count" (fun () ->
          Ext_array.iter_runs a ~chunk:scan_chunk (fun _ blks ->
              Array.iter
                (Array.iter (fun c ->
                     match c with
                     | Cell.Empty -> ()
                     | Cell.Item it ->
                         let u = in_union it in
                         if u then incr u_total;
                         for i = 0 to q - 1 do
                           if cmp_items cmp it x.(i) < 0 then begin
                             c_lt.(i) <- c_lt.(i) + 1;
                             if u then u_lt.(i) <- u_lt.(i) + 1
                           end;
                           if in_interval i it then c_in.(i) <- c_in.(i) + 1
                         done))
                blks));
      (* Capacity for the union of intervals. *)
      let per_interval = Float.to_int (((4. *. d) +. 4.) *. nf /. sf) + 1 in
      let cap_u_cells = min total (q * per_interval) in
      if !u_total > cap_u_cells then ok := false;
      (* 4. Rank consistency (Lemma 16's event, checked exactly). *)
      let ranks = Array.init q (fun i -> rank_of_quantile ~total ~q (i + 1)) in
      for i = 0 to q - 1 do
        if not (ranks.(i) > c_lt.(i) && ranks.(i) <= c_lt.(i) + c_in.(i)) then ok := false
      done;
      (* 5. Consolidate the union, compact it loosely, sort it. *)
      let t_arr =
        Ext_array.with_span a "quantiles.consolidate-union" (fun () ->
            Consolidation.run ~distinguished:in_union ~into:None a)
      in
      let cap_u_blocks = Emodel.ceil_div cap_u_cells b + 1 in
      let d_out =
        Ext_array.with_span a "quantiles.compact-union" (fun () ->
            Compaction.loose ~m ~rng ~capacity_blocks:cap_u_blocks t_arr)
      in
      if not d_out.ok then ok := false;
      let d_arr = d_out.dest in
      Ext_array.with_span a "quantiles.sort-union" (fun () ->
          Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.auto ~cmp ~m d_arr);
      (* 6. One scan of the sorted union: quantile i is the item of rank
         ranks_i - (c_lt_i - u_lt_i) within the union. *)
      let local = Array.init q (fun i -> ranks.(i) - (c_lt.(i) - u_lt.(i))) in
      let out = Array.make q None in
      Ext_array.with_span a "quantiles.grab-final" (fun () -> grab_many d_arr local out);
      let got = Array.map (function Some it -> it | None -> dummy_item) out in
      if not (Array.for_all Option.is_some out) then ok := false;
      (* Verified bracket membership. *)
      Array.iteri (fun i it -> if not (in_interval i it) then ok := false) got;
      { quantiles = got; ok = !ok }
    end
  end
