open Odex_extmem

let shuffle ~rng a =
  let n = Ext_array.blocks a in
  Array.iter
    (fun (i, j) ->
      (* Read both, write both, even when i = j: the swap transcript is
         the canonical Fisher–Yates I/O pattern. *)
      let bi = Ext_array.read_block a i in
      let bj = Ext_array.read_block a j in
      Ext_array.write_block a i bj;
      Ext_array.write_block a j bi)
    (Odex_crypto.Permutation.swap_sequence rng n)

type engine = [ `Knuth | `Bucket ]

let shuffle_with ~engine ~m ~rng a =
  match engine with
  | `Knuth ->
      shuffle ~rng a;
      true
  | `Bucket ->
      if Ext_array.blocks a > m && m < 18 then begin
        shuffle ~rng a;
        true
      end
      else (Odex_sortnet.Oblivious_permutation.run_blocks ~rng ~m a).ok

type deal = { outputs : Ext_array.t array; ok : bool }

let block_color ~color_of blk =
  match Block.items blk with [] -> None | it :: _ -> Some (color_of it)

let deal ~colors ~color_of ~window ~quota ~carry_budget a =
  if colors < 1 || window < 1 || quota < 1 then invalid_arg "Shuffle_deal.deal: bad parameters";
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  let storage = Ext_array.storage a in
  let scan_windows = Emodel.ceil_div (max 1 n) window in
  (* One extra all-padding round flushes the final carry. *)
  let rounds = scan_windows + 1 in
  let out_blocks = rounds * quota in
  let outputs = Array.init colors (fun _ -> Ext_array.create storage ~blocks:out_blocks) in
  let stash = Array.init colors (fun _ -> Queue.create ()) in
  let stashed = ref 0 in
  let ok = ref true in
  for w = 0 to rounds - 1 do
    let lo = w * window in
    let len = if w < scan_windows then min window (n - lo) else 0 in
    for i = lo to lo + len - 1 do
      let blk = Ext_array.read_block a i in
      match block_color ~color_of blk with
      | None -> ()
      | Some color ->
          if !stashed < window + carry_budget then begin
            Queue.add blk stash.(color);
            incr stashed
          end
          else ok := false (* carry budget exhausted: drop, flag *)
    done;
    (* Fixed quota of writes per color: full blocks first, then padding. *)
    for color = 0 to colors - 1 do
      for slot = 0 to quota - 1 do
        let blk =
          if Queue.is_empty stash.(color) then Block.make b
          else begin
            decr stashed;
            Queue.pop stash.(color)
          end
        in
        Ext_array.write_block outputs.(color) ((w * quota) + slot) blk
      done
    done
  done;
  if !stashed > 0 then ok := false;
  { outputs; ok = !ok }

let window_color_counts ~colors ~color_of ~window a =
  let n = Ext_array.blocks a in
  let s = Ext_array.storage a in
  let windows = Emodel.ceil_div (max 1 n) window in
  Array.init windows (fun w ->
      let counts = Array.make colors 0 in
      let lo = w * window in
      for i = lo to min n (lo + window) - 1 do
        match block_color ~color_of (Storage.unchecked_peek s (Ext_array.addr a i)) with
        | None -> ()
        | Some c -> counts.(c) <- counts.(c) + 1
      done;
      counts)
