open Odex_extmem

type outcome = { dest : Ext_array.t; occupied : int; ok : bool }

let blocks_per_iblt_cell b = Emodel.ceil_div (2 + (5 * b)) (4 * b)

(* Mirrors [Sparse_compaction.run]'s defaults (k = 3, multiplier = 3):
   the table never has fewer than k + 1 cells, so tiny capacities still
   cost a 4-cell table — forgetting that floor dispatched capacity-1
   jobs to an engine that then rejected them. *)
let sparse_table_fits ~m ~capacity_blocks ~block_size =
  max 4 (3 * capacity_blocks) * blocks_per_iblt_cell block_size <= m

(* Estimated I/O counts of the two tight engines, in block I/Os, used to
   dispatch on public parameters only. *)
let sparse_cost ~n ~block_size =
  (* One read per input block plus k = 3 cell read-modify-writes. *)
  n * (1 + (2 * 3 * blocks_per_iblt_cell block_size))

let butterfly_cost ~n ~m =
  if n <= 1 then 2 * n
  else begin
    let w = 1 lsl Emodel.ilog2_floor (max 2 ((m + 1) / 2)) in
    let g = max 1 (Emodel.ilog2_floor w) in
    let phases = Emodel.ceil_div (Emodel.ilog2_ceil n) g in
    2 * n * (1 + phases)
  end

let tight ?key ~m ~capacity_blocks a =
  let b = Ext_array.block_size a in
  let n = Ext_array.blocks a in
  let key = match key with Some k -> k | None -> Odex_crypto.Prf.key_of_int 0x0b11 in
  let use_sparse =
    capacity_blocks > 0
    && sparse_table_fits ~m ~capacity_blocks ~block_size:b
    && sparse_cost ~n ~block_size:b <= butterfly_cost ~n ~m
  in
  if use_sparse then begin
    let { Sparse_compaction.dest; recovered; complete } =
      Sparse_compaction.run ~m ~key ~capacity:capacity_blocks a
    in
    { dest; occupied = recovered; ok = complete }
  end
  else begin
    let occupied = Butterfly.compact ~m a in
    if occupied > capacity_blocks then
      invalid_arg
        (Printf.sprintf "Compaction.tight: %d occupied blocks exceed capacity %d" occupied
           capacity_blocks);
    let dest =
      if Ext_array.blocks a <= capacity_blocks then a
      else Ext_array.sub a ~off:0 ~len:capacity_blocks
    in
    { dest; occupied; ok = true }
  end

let loose ?sorter ~m ~rng ~capacity_blocks a =
  let n = Ext_array.blocks a in
  let rho = 3 * Emodel.ilog2_ceil (max 2 n) in
  if capacity_blocks * 4 <= n && rho <= m then begin
    let { Loose_compaction.dest; ok } =
      Loose_compaction.run ?sorter ~m ~rng ~capacity:capacity_blocks a
    in
    { dest; occupied = -1; ok }
  end
  else begin
    (* Butterfly fallback (dense or tiny regime). *)
    let occupied = Butterfly.compact ~m a in
    let len = min (Ext_array.blocks a) (max occupied capacity_blocks) in
    let dest = if len = Ext_array.blocks a then a else Ext_array.sub a ~off:0 ~len in
    { dest; occupied; ok = true }
  end

let loose_cost ~n = 40 * n

let consolidate_items ?distinguished a = Consolidation.run ?distinguished ~into:None a
