(** Shuffle-and-deal data distribution — paper §5, Lemma 18 / Cor. 19.

    After (q+1)-way consolidation the blocks are monochromatic but may
    arrive in a color-skewed order (e.g. a pre-sorted input produces
    long monochromatic runs). The fix "reminiscent of Valiant–Brebner
    routing": first permute the blocks with the Knuth shuffle — the
    swap indices are pure coin tosses, so Bob learns nothing — then
    scan windows of the shuffled array and deal each window's blocks to
    per-color output arrays, writing a {e fixed quota} of blocks (full
    ones first, empty padding after) to every color for every window.
    Lemma 18 bounds the probability that a window holds more blocks of
    one color than the quota; our implementation additionally carries
    over-quota blocks to the next window in Alice's memory (up to a
    budget), which only reduces the failure probability and leaves the
    trace untouched. *)

open Odex_extmem

val shuffle : rng:Odex_crypto.Rng.t -> Ext_array.t -> unit
(** Knuth shuffle of the blocks: for i = 0..n-1 swap block i with a
    uniform block in [\[i, n)]. 4 I/Os per step; addresses depend only
    on the coins. *)

type engine = [ `Knuth | `Bucket ]

val shuffle_with : engine:engine -> m:int -> rng:Odex_crypto.Rng.t -> Ext_array.t -> bool
(** [`Knuth] is {!shuffle} (always complete). [`Bucket] routes whole
    blocks through the bucket-oblivious butterfly
    ({!Odex_sortnet.Oblivious_permutation.run_blocks}) — 2 I/Os per
    block-level instead of 4 per step — falling back to the Knuth
    shuffle when the cache is too small for the bucket geometry
    (m < 18, a public condition). Returns false iff a bucket overflowed
    and blocks were dropped (coin-public probability
    {!Odex_sortnet.Bucket_sort.overflow_bound}; the caller must treat
    it as data loss). *)

type deal = {
  outputs : Ext_array.t array;  (** One array per color. *)
  ok : bool;  (** False iff the carry budget overflowed and blocks were dropped. *)
}

val deal :
  colors:int ->
  color_of:(Cell.item -> int) ->
  window:int ->
  quota:int ->
  carry_budget:int ->
  Ext_array.t ->
  deal
(** [deal ~colors ~color_of ~window ~quota ~carry_budget a] scans [a] in
    windows of [window] blocks and writes exactly [quota] blocks per
    color per window. Alice holds at most [window + carry_budget]
    blocks. Each output array has [ceil(blocks a / window) * quota]
    blocks. Empty input blocks are dropped (they carry no items). *)

val window_color_counts :
  colors:int -> color_of:(Cell.item -> int) -> window:int -> Ext_array.t -> int array array
(** Diagnostic for experiment E14 (uncounted reads): per window, the
    number of blocks of each color. *)
