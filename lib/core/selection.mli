(** Data-oblivious selection — Theorems 12 and 13.

    Finds the k-th smallest item (1-indexed, ordered by (key, tag) so
    ranks are well-defined under duplicate keys) using O(N/B) I/Os:

    + sample each item with probability N^{-1/2} (coins drawn per cell,
      so consumption is data-independent) and consolidate the sample;
    + compact the sample with the Theorem 4 IBLT engine and sort it;
    + bracket the answer between sample ranks x and y (Lemma 11: the
      k-th item lies in [x, y] and at most 8·N^{7/8} items do, w.v.h.p.);
    + count items below x, consolidate the in-range items and compact
      them tightly (the facade picks the cheaper of Theorems 4 and 6
      from public parameters);
    + recurse on the bracketed residue until it fits the cache, then
      read off rank k − rank(x) privately.

    The access pattern is a fixed composition of scans, IBLT traffic,
    thinning passes and sorting circuits; with a fixed RNG seed it is
    identical across same-shape inputs. Beats the Leighton–Ma–Suel
    Ω(n log log n) bound for compare-exchange-only circuits because it
    also uses copies, sums and random hashing (paper §4). *)

open Odex_extmem

type result = {
  item : Cell.item option;  (** The selected item ([None] only on failure). *)
  ok : bool;
      (** Success of every randomized sub-step (sample-size bounds, IBLT
          decode, bracketing); trace shape is unaffected by failure. *)
}

val consolidate_sample :
  rng:Odex_crypto.Rng.t -> p:float -> Ext_array.t -> Ext_array.t * int
(** Building block shared with {!Quantiles}: one Lemma 3 scan that keeps
    each item independently with probability [p] (a coin is drawn for
    every cell — occupied or not — so coin consumption is
    data-independent) and consolidates the survivors. Returns the
    consolidated array and the (Alice-private) sample size. *)

val select :
  ?key:Odex_crypto.Prf.key ->
  ?cmp:(Cell.t -> Cell.t -> int) ->
  ?exponent:float ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  k:int ->
  Ext_array.t ->
  result
(** [select ~m ~rng ~k a]: the input array may interleave empty cells;
    [key] is the PRF key handed to the Theorem 4 IBLT compaction engine
    (it seeds the sparse-compaction hashing, {e not} the ordering);
    [cmp] is the ordering that defines rank — it must order [Cell.Empty]
    after every item, defaults to {!Cell.compare_keys}, and is used
    consistently by every private sort, oblivious sort and bracketing
    scan.
    [k] ranges over the items. Arrays that fit in cache are handled by a
    direct private sort (trace: one scan). The input array is preserved.
    Instead of sorting the bracketed residue outright, the algorithm
    recurses on it until it fits the cache — the same answer with the
    same obliviousness, but linear I/O at feasible N (the one-shot sort
    is only cheap for the astronomically large N the paper's constants
    target; see EXPERIMENTS.md E7). *)

val select_with_delta :
  ?key:Odex_crypto.Prf.key ->
  ?cmp:(Cell.t -> Cell.t -> int) ->
  ?exponent:float ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  delta:(float -> float) ->
  k:int ->
  Ext_array.t ->
  result
(** [select_with_delta ~delta] overrides the default rank slack
    (s0^{3/4}, the paper's N^{3/8} at exponent 1/2) with [delta s0]
    where s0 is the expected sample size: smaller brackets, smaller
    residues, the same algorithm. [exponent] sets the sampling rate
    N^{-e} (default 1/2, the paper's Theorem 12; 1/4 is the
    quantile-style rate that shrinks the residue much faster at
    feasible N). Failure probability grows as the slack shrinks; the
    [ok] flag reports it faithfully. *)
