open Odex_extmem

type outcome = { dest : Ext_array.t; phases : int; ok : bool }

(* One thinning step for a single source block (shared by the full-array
   and region-prefix passes). *)
let thin_step ~rng src i dst =
  let b = Ext_array.block_size src in
  let c_size = Ext_array.blocks dst in
  let blk = Ext_array.read_block src i in
  let j = Odex_crypto.Rng.int rng c_size in
  let target = Ext_array.read_block dst j in
  if (not (Block.is_empty blk)) && Block.is_empty target then begin
    Ext_array.write_block dst j blk;
    Ext_array.write_block src i (Block.make b)
  end
  else begin
    Ext_array.write_block dst j target;
    Ext_array.write_block src i blk
  end

(* Compact each region to its first [prefix] blocks using the cache;
   survivors that do not fit stay in place (the final Theorem 4 pass
   collects them). Fixed trace: every region block is read and written
   once. *)
let compact_regions cache ~rho ~prefix a =
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  let regions = Emodel.ceil_div n rho in
  for g = 0 to regions - 1 do
    let lo = g * rho in
    let len = min rho (n - lo) in
    let occupied = ref [] in
    let overflow = ref [] in
    let count = ref 0 in
    for i = lo + len - 1 downto lo do
      let blk = Cache.load cache (Ext_array.addr a i) in
      if not (Block.is_empty blk) then begin
        incr count;
        if !count <= prefix then occupied := (blk, i) :: !occupied
        else overflow := (blk, i) :: !overflow
      end;
      Cache.drop cache (Ext_array.addr a i)
    done;
    (* Fitting survivors go to the prefix; overflow stays at its own
       position; everything else becomes empty. *)
    let fits = Array.of_list (List.map fst !occupied) in
    let overflow_at = Hashtbl.create 4 in
    List.iter (fun (blk, i) -> Hashtbl.replace overflow_at i blk) !overflow;
    for i = lo to lo + len - 1 do
      let slot = i - lo in
      let out =
        if slot < Array.length fits && slot < prefix then fits.(slot)
        else
          match Hashtbl.find_opt overflow_at i with
          | Some blk when slot >= prefix -> blk
          | _ -> Block.make b
      in
      Ext_array.write_block a i out
    done
  done

let run ?(c0 = 8) ?key ?sparse_threshold ~m ~rng ~capacity a =
  if capacity < 0 then invalid_arg "Logstar_compaction.run: negative capacity";
  let storage = Ext_array.storage a in
  let b = Ext_array.block_size a in
  let r = capacity in
  let reserve = Emodel.ceil_div r 4 in
  let dest = Ext_array.create storage ~blocks:((4 * r) + reserve) in
  if r = 0 then { dest; phases = 0; ok = true }
  else begin
    let main = Ext_array.sub dest ~off:0 ~len:(4 * r) in
    let n0 = Ext_array.blocks a in
    let cache = Cache.create storage ~capacity:(max 2 m) in
    (* Initial c0 A-to-main thinning passes. *)
    Ext_array.with_span a "logstar.thin0" (fun () ->
        for _ = 1 to c0 do
          Thinning.pass ~rng ~src:a ~dst:main
        done);
    (* Tower phases. *)
    let sparse_threshold =
      match sparse_threshold with
      | Some t -> t
      | None ->
          let lg = Float.of_int (max 2 (Emodel.ilog2_ceil (max 2 n0))) in
          max 2 (Float.to_int (Float.of_int n0 /. (lg *. lg)))
    in
    let cur = ref a in
    let phases = ref 0 in
    let i = ref 1 in
    let continue = ref true in
    while !continue do
      let t_i = Emodel.tower_of_twos !i in
      let budget = if t_i >= 64 then 0 else r / (t_i * t_i * t_i * t_i) in
      if budget <= sparse_threshold || t_i >= 64 || budget = 0 then continue := false
      else Ext_array.with_span a "logstar.phase" @@ fun () ->
      begin
        incr phases;
        (* Thinning-out: two A-to-C passes, t_i C-to-main passes, then A
           grows by C. *)
        let c_arr = Ext_array.create storage ~blocks:(max 1 (Emodel.ceil_div r t_i)) in
        Thinning.pass ~rng ~src:!cur ~dst:c_arr;
        Thinning.pass ~rng ~src:!cur ~dst:c_arr;
        for _ = 1 to t_i do
          Thinning.pass ~rng ~src:c_arr ~dst:main
        done;
        let grown =
          Ext_array.create storage ~blocks:(Ext_array.blocks !cur + Ext_array.blocks c_arr)
        in
        let cursor = ref 0 in
        List.iter
          (fun src ->
            for j = 0 to Ext_array.blocks src - 1 do
              Ext_array.write_block grown !cursor (Ext_array.read_block src j);
              incr cursor
            done)
          [ !cur; c_arr ];
        cur := grown;
        (* Region compaction: regions of min(m, 2^{4 t_i}) blocks,
           prefixes of 1/t_i^2, then t_i^2 prefix-to-main thinning
           passes. *)
        let rho =
          let cap = if t_i >= 16 then max_int else 1 lsl (4 * t_i) in
          max 2 (min (max 2 m) cap)
        in
        let prefix = max 1 (rho / (t_i * t_i)) in
        compact_regions cache ~rho ~prefix !cur;
        let n_cur = Ext_array.blocks !cur in
        let regions = Emodel.ceil_div n_cur rho in
        for _ = 1 to t_i * t_i do
          for g = 0 to regions - 1 do
            let lo = g * rho in
            let len = min prefix (n_cur - lo) in
            for s = 0 to len - 1 do
              thin_step ~rng !cur (lo + s) main
            done
          done
        done;
        incr i
      end
    done;
    (* Final sparse compaction of whatever remains into the reserve. *)
    Ext_array.with_span a "logstar.final" @@ fun () ->
    let key = match key with Some k -> k | None -> Odex_crypto.Prf.key_of_int 0x106 in
    let ok = ref true in
    let final_capacity = reserve in
    (* Engine choice depends only on public parameters. *)
    let fits_sparse =
      final_capacity > 0
      && Compaction.sparse_table_fits ~m ~capacity_blocks:final_capacity ~block_size:b
    in
    let compacted =
      if fits_sparse then begin
        let out = Sparse_compaction.run ~m ~key ~capacity:final_capacity !cur in
        if not out.Sparse_compaction.complete then ok := false;
        out.Sparse_compaction.dest
      end
      else begin
        let occupied = Butterfly.compact ~m:(max 3 m) !cur in
        if occupied > final_capacity then ok := false;
        Ext_array.sub !cur ~off:0 ~len:(min (Ext_array.blocks !cur) final_capacity)
      end
    in
    for j = 0 to reserve - 1 do
      let blk =
        if j < Ext_array.blocks compacted then Ext_array.read_block compacted j
        else Block.make b
      in
      Ext_array.write_block dest ((4 * r) + j) blk
    done;
    { dest; phases = !phases; ok = !ok }
  end
