open Odex_extmem

type outcome = { ok : bool }

(* The paper's q = (M/B)^{1/4} presumes the tall-cache regime where m is
   enormous; at feasible cache sizes that gives only 2-5 buckets and a
   recursion that barely shrinks. We keep the m^{1/4} floor but let the
   bucket count grow with the cache, capped at m/8 and at 32 (Alice's
   consolidation and deal buffers). When a level must *compact* its
   buckets (deep recursion), the count is further capped at sqrt(M)/4 so
   the sampled pivots' rank error (± bucket·colors/sqrt(M)) stays inside
   the 30% capacity slack; the one-level-from-base regime skips
   compaction and needs no capacity, so it takes the generous count. *)
let bucket_count ~m ~b =
  ignore b;
  let q = Float.to_int (Float.pow (Float.of_int m) 0.25) in
  let scaled = min 32 (m / 8) in
  max 2 (min ((m / 3) - 1) (max (q + 1) scaled))

let bucket_count_deep ~m ~b =
  let q = Float.to_int (Float.pow (Float.of_int m) 0.25) in
  let precision = Float.to_int (Float.sqrt (Float.of_int (m * b)) /. 4.) in
  let scaled = min precision (min 32 (m / 8)) in
  max 2 (min ((m / 3) - 1) (max (q + 1) scaled))

let cmp_items (x : Cell.item) (y : Cell.item) =
  Cell.compare_keys (Cell.Item x) (Cell.Item y)

(* Bucket index of an item given the sorted pivots: the number of pivots
   <= it. Pivots are few (q <= m^{1/4}); a linear pass is fine. *)
let color_of_pivots pivots (it : Cell.item) =
  let c = ref 0 in
  Array.iter (fun p -> if cmp_items p it <= 0 then incr c) pivots;
  !c

(* Approximate pivots from a memory-bounded private sample: one scan, a
   coin per cell (fixed consumption), the sample sorted in Alice's
   memory. Rank error per pivot is O(N/sqrt(sample)), well within the
   slack the recursion tolerates; the exact Theorem 17 quantiles remain
   available through {!Quantiles} (and are measured in E8) but would
   cost a full extra sort pass per recursion level here. *)
let sample_pivots ~m ~rng ~q a =
  let b = Ext_array.block_size a in
  let budget = max (8 * (q + 1) * (q + 1)) (m * b * 3 / 4) in
  let total_cells = Ext_array.cells a in
  let p = Float.min 1. (Float.of_int budget /. Float.of_int (max 1 total_cells)) in
  let sample = ref [] in
  let count = ref 0 in
  for i = 0 to Ext_array.blocks a - 1 do
    Array.iter
      (fun c ->
        let coin = Odex_crypto.Rng.bernoulli rng p in
        match c with
        | Cell.Empty -> ()
        | Cell.Item it ->
            if coin && !count < 2 * budget then begin
              sample := it :: !sample;
              incr count
            end)
      (Ext_array.read_block a i)
  done;
  let sorted = Array.of_list (List.sort cmp_items !sample) in
  let len = Array.length sorted in
  if len = 0 then [||]
  else Array.init q (fun i -> sorted.(min (len - 1) ((i + 1) * len / (q + 1))))

(* [damage] records unrecoverable (data-lossy) events — dropped blocks in
   the deal carry, loose-compaction region overflow — which failure
   sweeping must NOT be allowed to mask: sweeping restores sortedness,
   not lost items. The per-node boolean tracks repairable unsortedness. *)
let rec sort_padded_rec ~m ~rng ~inject_failure ~sweep ~bucket_engine ~shuffle_engine ~damage ~depth ~path a =
  let n = Ext_array.blocks a in
  let b_sz = Ext_array.block_size a in
  (* Regime selection is public (n, m, B only). *)
  let skip_colors = bucket_count ~m ~b:b_sz in
  let one_level_from_base = n <= 2 * m * skip_colors in
  let colors = if one_level_from_base then skip_colors else bucket_count_deep ~m ~b:b_sz in
  let fallback_threshold = max (2 * m) (8 * (colors + 4)) in
  (* Injected failures (test hook) skip the work entirely, leaving the
     subarray unsorted — the genuine failure mode sweeping must repair. *)
  if n <= m then begin
    let fail = inject_failure path in
    if not fail then Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.cache_sort ~m a;
    (a, not fail)
  end
  else if n <= fallback_threshold then begin
    (* Too small for the pipeline to make progress: deterministic
       oblivious sort (Lemma 2 substrate). *)
    let fail = inject_failure path in
    if not fail then Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m a;
    (a, not fail)
  end
  else begin
    let b = Ext_array.block_size a in
    let storage = Ext_array.storage a in
    let ok = ref (not (inject_failure path)) in
    (* 1. Bucket pivots from a one-scan private sample. *)
    let q = colors - 1 in
    let pivots = Ext_array.with_span a "sort.pivots" (fun () -> sample_pivots ~m ~rng ~q a) in
    let color_of = color_of_pivots pivots in
    (* 2. Monochromatic consolidation. *)
    let consolidated =
      Ext_array.with_span a "sort.consolidate" (fun () ->
          Multiway.consolidate ~colors ~color_of a)
    in
    (* 3. Shuffle and deal. *)
    let shuffled =
      Ext_array.with_span a "sort.shuffle" (fun () ->
          Shuffle_deal.shuffle_with ~engine:shuffle_engine ~m ~rng consolidated)
    in
    if not shuffled then begin ok := false; damage := true end;
    let window = max (2 * colors) (m / 2) in
    let per_color = Emodel.ceil_div window colors in
    (* Quota just above the mean rate; bursts ride in the carry buffer
       (overflow is flagged as damage). *)
    let quota =
      per_color + max 2 (Float.to_int (Float.ceil (Float.sqrt (Float.of_int per_color))))
    in
    let { Shuffle_deal.outputs; ok = deal_ok } =
      Ext_array.with_span a "sort.deal" (fun () ->
          Shuffle_deal.deal ~colors ~color_of ~window ~quota ~carry_budget:(m / 2)
            consolidated)
    in
    if not deal_ok then begin ok := false; damage := true end;
    (* 4. Compact each bucket — or don't. The deal output is only ~2x
       the bucket's true size, so with enough buckets the recursion
       shrinks even without compaction; skipping it (`Skip, the default)
       saves the dominant per-level cost. `Loose is the paper's
       Theorem 8 structure and `Butterfly the exact Theorem 6 variant —
       both measured as ablations in E9. The choice is public. *)
    (* 30% slack over the ideal n/colors; the bucket count is capped so
       the sampled pivots' rank error stays within it. *)
    let bucket_capacity = Emodel.ceil_div (13 * n) (10 * colors) + colors + 8 in
    (* `Auto: skipping leaves ~2x padding per level, which compounds, so
       it is only free when the buckets will hit the base case next
       level; otherwise compact exactly. The test uses n, m, colors
       only. *)
    let engine =
      match bucket_engine with
      | `Auto -> if one_level_from_base then `Skip else `Butterfly
      | (`Skip | `Loose | `Butterfly) as e -> e
    in
    let compact_bucket c_arr =
      match engine with
      | `Skip -> { Compaction.dest = c_arr; occupied = -1; ok = true }
      | `Loose when colors >= 8 && bucket_capacity * 4 <= Ext_array.blocks c_arr ->
          Compaction.loose ~m ~rng ~capacity_blocks:bucket_capacity c_arr
      | `Loose | `Butterfly ->
          let occupied = Butterfly.compact ~m c_arr in
          let len = min (Ext_array.blocks c_arr) bucket_capacity in
          if occupied > len then { Compaction.dest = c_arr; occupied; ok = false }
          else { Compaction.dest = Ext_array.sub c_arr ~off:0 ~len; occupied; ok = true }
    in
    let buckets =
      Ext_array.with_span a "sort.compact-buckets" (fun () ->
          Array.map
            (fun c_arr ->
              let out = compact_bucket c_arr in
              if not out.Compaction.ok then begin ok := false; damage := true end;
              out.Compaction.dest)
            outputs)
    in
    (* Progress guard: if compaction failed to shrink, finish this level
       deterministically instead of recursing forever. *)
    if Array.exists (fun d -> Ext_array.blocks d >= n) buckets then begin
      Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m a;
      (a, !ok)
    end
    else begin
      (* 5. Recurse per bucket. *)
      let sorted =
        Array.mapi
          (fun i d ->
            sort_padded_rec ~m ~rng ~inject_failure ~sweep ~bucket_engine ~shuffle_engine
              ~damage
              ~depth:(depth + 1)
              ~path:((path * 64) + i + 1)
              d)
          buckets
      in
      let sub_ok = Array.map snd sorted in
      let sorted = Array.map fst sorted in
      (* 6. Failure sweeping (Theorem 21's data-oblivious failure
         recovery): deterministically re-sort the failed buckets without
         revealing which ones failed. As in the paper, it runs once, at
         the level where the recursive calls return to the top. *)
      if depth = 0 && sweep then begin
        let swept_ok =
          Ext_array.with_span a "sort.sweep" (fun () -> Failure_sweep.sweep ~m sorted sub_ok)
        in
        if not swept_ok then ok := false
      end
      else if Array.exists not sub_ok then ok := false;
      (* 7. Concatenate the padded sorted buckets. *)
      let total = Array.fold_left (fun acc s -> acc + Ext_array.blocks s) 0 sorted in
      let out = Ext_array.create storage ~blocks:total in
      let cursor = ref 0 in
      Array.iter
        (fun s ->
          for i = 0 to Ext_array.blocks s - 1 do
            Ext_array.write_block out !cursor (Ext_array.read_block s i);
            incr cursor
          done)
        sorted;
      ignore b;
      (out, !ok)
    end
  end

let sort_padded ?(sweep = true) ?(bucket_engine = `Auto) ?(shuffle = `Knuth) ~m ~rng a =
  let damage = ref false in
  let arr, ok =
    sort_padded_rec ~m ~rng ~inject_failure:(fun _ -> false) ~sweep ~bucket_engine
      ~shuffle_engine:shuffle ~damage ~depth:0 ~path:0 a
  in
  (arr, ok && not !damage)

let sort_padded_with_injection ?(sweep = true) ?(bucket_engine = `Auto) ?(shuffle = `Knuth)
    ~m ~rng ~inject_failure a =
  let damage = ref false in
  let arr, ok =
    sort_padded_rec ~m ~rng ~inject_failure ~sweep ~bucket_engine ~shuffle_engine:shuffle
      ~damage ~depth:0 ~path:0 a
  in
  (arr, ok && not !damage)

let run ?sweep ?bucket_engine ?shuffle ~m ~rng a =
  let n = Ext_array.blocks a in
  let storage = Ext_array.storage a in
  (* Work on a copy so [a]'s final state is exactly the dense sorted
     output regardless of how much padding the pipeline accumulates. *)
  let work = Ext_array.create storage ~blocks:n in
  for i = 0 to n - 1 do
    Ext_array.write_block work i (Ext_array.read_block a i)
  done;
  let padded, ok = sort_padded ?sweep ?bucket_engine ?shuffle ~m ~rng work in
  (* Final pass (paper: "we perform a tight order-preserving compaction
     for all of A using Theorem 6"): consolidate cells into full blocks
     in sorted order, compact the blocks to the front, copy back. *)
  Ext_array.with_span a "sort.finalize" @@ fun () ->
  let consolidated = Consolidation.run ~into:None padded in
  let occupied = Butterfly.compact ~m consolidated in
  let ok = ok && occupied <= n in
  for i = 0 to n - 1 do
    let blk =
      if i < Ext_array.blocks consolidated then Ext_array.read_block consolidated i
      else Block.make (Ext_array.block_size a)
    in
    Ext_array.write_block a i blk
  done;
  { ok }
