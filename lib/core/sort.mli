(** Randomized data-oblivious external-memory sorting — Theorem 21.

    The paper's pipeline, per recursion level:

    + pick q ≈ (M/B)^{1/4} bucket pivots — by default from a one-scan
      memory-bounded private sample (the exact Theorem 17 quantiles are
      available separately but cost an extra sort-scale pass per level);
    + (q+1)-way consolidation into monochromatic blocks (§5);
    + shuffle-and-deal the blocks into one array per color (Lemma 18);
    + compact each color array, or skip compaction — the deal output is
      only ~2× the bucket's true size, so the recursion shrinks anyway;
      [bucket_engine] selects `Auto (default: skip when the buckets
      reach the base case next level, exact Theorem 6 butterfly
      otherwise — skipping compounds the padding, which is exactly why
      the paper compacts every level), `Skip, the paper's `Loose
      (Theorem 8) or `Butterfly, all measured as E9 ablations;
    + recurse on each bucket; buckets that fit in the cache are sorted
      privately.

    Concatenating the recursively sorted buckets yields a {e padded
    sorting} (items in non-decreasing order with empty cells
    interspersed); a final consolidation + tight compaction (Theorem 6)
    turns it into the dense sorted output, as in the paper.

    Every phase is a fixed circuit, a scan, or coin-driven I/O, so with
    a fixed seed the trace is identical across same-shape inputs.
    Randomized sub-steps may fail (with the paper's probability bounds);
    failures are reported through [ok] without altering the trace. The
    paper's failure-sweeping step is provided by {!Failure_sweep} and
    runs once, at the top level, unless disabled with [~sweep:false]
    (the [ok] flag still reports everything; EXPERIMENTS.md E9 measures
    the sweep's I/O overhead). Lossy events (a dropped block in the
    deal, a loose-compaction overflow) are never masked by sweeping. *)

open Odex_extmem

type outcome = {
  ok : bool;  (** All randomized sub-steps succeeded (Alice-private). *)
}

val run :
  ?sweep:bool ->
  ?bucket_engine:[ `Auto | `Skip | `Loose | `Butterfly ] ->
  ?shuffle:Shuffle_deal.engine ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  Ext_array.t ->
  outcome
(** [run ~m ~rng a] sorts the items of [a] in place by (key, tag):
    items in non-decreasing order at the front, empties after.
    Requires [m >= 3]. [shuffle] selects the per-level block shuffle
    engine (default [`Knuth]; [`Bucket] is the bucket-oblivious
    butterfly, see {!Shuffle_deal.shuffle_with}). *)

val sort_padded :
  ?sweep:bool ->
  ?bucket_engine:[ `Auto | `Skip | `Loose | `Butterfly ] ->
  ?shuffle:Shuffle_deal.engine ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  Ext_array.t ->
  Ext_array.t * bool
(** The recursive core: consumes [a] and returns a fresh (possibly
    larger) array whose items, read in position order, are sorted —
    the paper's padded sorting. Exposed for tests and benches. *)

val sort_padded_with_injection :
  ?sweep:bool ->
  ?bucket_engine:[ `Auto | `Skip | `Loose | `Butterfly ] ->
  ?shuffle:Shuffle_deal.engine ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  inject_failure:(int -> bool) ->
  Ext_array.t ->
  Ext_array.t * bool
(** Test hook: [inject_failure path] marks the sub-sort identified by
    [path] as failed even though it ran, exercising the failure-sweeping
    machinery deterministically. Paths: 0 is the root, child i of node p
    is [p*64 + i + 1]. *)

val bucket_count : m:int -> b:int -> int
(** q + 1: how many pivot buckets a recursion level uses for a cache of
    [m] blocks of [b] cells — at least the paper's ⌊m^{1/4}⌋ + 1, grown
    with the cache but capped by Alice's buffer budget (m/3, and 32)
    and by the sampled pivots' precision (√(m·b)/4). *)
