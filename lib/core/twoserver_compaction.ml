open Odex_extmem

type outcome = { dest : Ext_array.t; occupied : int; ok : bool }

let cost ~n ~capacity = (3 * n) + (3 * capacity)

(* Server roles. Any store with at least two shards supports the
   protocol: shard 0 plays server A (the staging server), shard 1 plays
   server B (the output server); further shards only serve the striped
   input and destination like any single-server store would. *)
let server_a = 0
let server_b = 1

(* A region of [rows] whole stripe rows, aligned so every row holds
   exactly one address per shard: slot [i] of a role server is the
   logical address of that server's block in row [row0 + i]. Alignment
   padding and the unused other-server slots cost address space only —
   allocation is the servers' uncounted zero-fill, and the protocol
   never touches them. *)
let scratch_rows s ~k ~rows =
  let pad = (k - (Storage.capacity s mod k)) mod k in
  if pad > 0 then ignore (Storage.alloc s pad);
  Storage.alloc s (rows * k) / k

let slot s ~row0 ~server ~index = Storage.shard_addr s ~shard:server ~index:(row0 + index)

let block_occupied blk = Array.exists Cell.is_item blk

(* The two-server protocol. Every server individually sees a fixed,
   data-independent op sequence:

   - "ts-stage": the input (striped publicly) is read in address order
     and written to A's staging slots in slot order — every shard's
     subsequence is a fixed function of (n, k).
   - "ts-route": A's slots are read back in slot order; each occupied
     block is forwarded to B's next output slot, and after the scan the
     remaining output slots are padded with empties. A sees exactly [n]
     ascending reads; B sees exactly [capacity] ascending writes. The
     data-dependent part — {e when} each B-write fires relative to the
     A-reads — is split across the two non-colluding servers, so neither
     view contains it. The {e combined} trace does: this phase is where
     the protocol is strictly weaker than single-server oblivious, and
     why its certificate is [`Multi_server], not [`Exact].
   - "ts-deliver": B's output slots are copied back to a fresh striped
     destination, both sides in fixed order.

   3·(N/B) + 3·capacity block I/Os in total — below the butterfly's
   2·(N/B)·(1 + phases) ≥ 4·(N/B) at every feasible shape, because the
   data-dependent routing that costs the single-server engine its
   log-depth passes is free when split across two adversaries. *)
let two_server ~m ~capacity_blocks:cap ~k s a =
  let n = Ext_array.blocks a in
  let arow = scratch_rows s ~k ~rows:n in
  let brow = scratch_rows s ~k ~rows:cap in
  let dest = Ext_array.create s ~blocks:cap in
  Storage.with_span s "ts-stage" (fun () ->
      Ext_array.iter_runs a ~chunk:(max 1 m) (fun i blks ->
          Array.iteri
            (fun j blk -> Storage.write s (slot s ~row0:arow ~server:server_a ~index:(i + j)) blk)
            blks));
  let occupied = ref 0 in
  let forwarded = ref 0 in
  Storage.with_span s "ts-route" (fun () ->
      for g = 0 to n - 1 do
        let blk = Storage.read s (slot s ~row0:arow ~server:server_a ~index:g) in
        if block_occupied blk then begin
          incr occupied;
          if !forwarded < cap then begin
            Storage.write s (slot s ~row0:brow ~server:server_b ~index:!forwarded) blk;
            incr forwarded
          end
        end
      done;
      let empty = Block.make (Storage.block_size s) in
      while !forwarded < cap do
        Storage.write s (slot s ~row0:brow ~server:server_b ~index:!forwarded) empty;
        incr forwarded
      done);
  if !occupied > cap then
    invalid_arg
      (Printf.sprintf "Twoserver_compaction.run: %d occupied blocks exceed capacity %d"
         !occupied cap);
  Storage.with_span s "ts-deliver" (fun () ->
      for j = 0 to cap - 1 do
        Ext_array.write_block dest j
          (Storage.read s (slot s ~row0:brow ~server:server_b ~index:j))
      done);
  { dest; occupied = !occupied; ok = true }

let run ~m ~capacity_blocks a =
  if capacity_blocks < 0 then invalid_arg "Twoserver_compaction.run: negative capacity";
  let s = Ext_array.storage a in
  match Storage.shard_count s with
  | Some k when k >= 2 -> two_server ~m ~capacity_blocks ~k s a
  | _ ->
      (* Fewer than two servers: the non-colluding model the protocol
         exploits is absent, so dispatch — publicly, on backend shape
         alone — to the classical single-server engine. *)
      let { Compaction.dest; occupied; ok } = Compaction.tight ~m ~capacity_blocks a in
      { dest; occupied; ok }
