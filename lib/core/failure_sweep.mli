(** Data-oblivious failure sweeping — paper §5.

    Recursive sub-sorts fail with small probability; re-running just the
    failed ones would reveal which inputs caused failures. The paper
    repairs them with a deterministic compact–sort–expand pipeline whose
    trace is independent of which subarrays failed.

    Our realization exploits the same observation more directly: the
    adversary sees only {e addresses}, so running the deterministic
    oblivious sort (Lemma 2) over {e every} subarray — but letting the
    merge-split comparators actually exchange data only in the failed
    ones ({!Odex_sortnet.Ext_sort.run_selective}) — yields a
    byte-identical trace whether zero or all subarrays failed. Unlike
    the paper's variant it tolerates any number of failures (the
    paper's scratch region caps them at a small fraction); the price is
    that the sweep costs a full Lemma 2 pass over the level rather than
    a compaction plus one small sort. EXPERIMENTS.md (E9) measures that
    overhead; {!Sort.run} exposes it as the [sweep] switch. *)

open Odex_extmem

val monte_carlo :
  trials:int -> seed:int -> (rng:Odex_crypto.Rng.t -> trial:int -> bool) -> int
(** [monte_carlo ~trials ~seed f] runs [f] once per trial, each under a
    deterministic per-trial rng (a fixed mix of [seed] and the trial
    index), and returns the number of trials where [f] returned false.
    Fully seeded: the count is a reproducible measurement of a failure
    probability, suitable for pinning the paper's success bounds
    (Theorem 8 region overflow, Lemma 1 decode completeness) in tests
    that never flake. *)

val failure_rate :
  trials:int -> seed:int -> (rng:Odex_crypto.Rng.t -> trial:int -> bool) -> float
(** {!monte_carlo} normalized to a rate in [0, 1]. *)

val sweep : m:int -> Ext_array.t array -> bool array -> bool
(** [sweep ~m subarrays ok_flags] re-sorts (by (key, tag)) every
    subarray whose flag is false, running trace-identical dummy passes
    over the healthy ones. Subarrays may have any sizes. Always returns
    true (kept for interface symmetry with the capacity-limited
    variant). *)
