open Odex_extmem

(* Leighton's columnsort, the algorithm behind the Chaudhry–Cormen
   out-of-core oblivious sorts the paper cites [13, 14].

   The N cells are laid out column-major as an r × s matrix with
   r >= 2(s-1)^2 and every column small enough for Alice's cache. Eight
   deterministic steps sort the whole matrix; we use the classic
   no-copy variant of steps 6–8 (sort r-cell windows straddling column
   boundaries instead of materializing the shifted matrix):

     1. sort columns          2. transpose
     3. sort columns          4. untranspose
     5. sort columns          6. sort r-windows at offset r/2
     7. final column sort of the boundary regions is subsumed by 6

   Every pass is a scan or a fixed permutation, so the trace depends
   only on (N, B, m). Cost: seven linear passes — O(N/B) I/Os whenever
   the geometry fits (N <= ~(m/2)·(m·B) cells), which is the familiar
   M^{3/2}-ish capacity of one columnsort level. *)

(* Geometry: smallest s (number of columns) such that the column height
   r = ceil(n / s) rounded up to blocks satisfies Leighton's condition
   and the cache constraints. *)
let plan ~n_cells ~b ~m =
  let rec try_s s =
    if s > m / 2 then None
    else begin
      (* r must be a multiple of both B (block-aligned columns) and s
         (equal-length untranspose runs). *)
      let unit = b * s in
      let r = Emodel.ceil_div (Emodel.ceil_div n_cells s) unit * unit in
      if r + (2 * b) > (m - 2) * b then
        (* column too tall for the cache: more columns needed *)
        try_s (s + 1)
      else if r >= 2 * (s - 1) * (s - 1) && r * s >= n_cells then Some (r, s)
      else try_s (s + 1)
    end
  in
  if n_cells <= (m - 2) * b then Some (Emodel.ceil_div n_cells b * b, 1) else try_s 2

let capacity ~b ~m =
  (* Largest N this engine accepts (used by tests and the facade). *)
  let rec probe n best = if n > m * m * b then best
    else match plan ~n_cells:n ~b ~m with
      | Some _ -> probe (n + (m * b / 2)) n
      | None -> best
  in
  probe (m * b) (m * b)

(* Sort the cell range [lo, lo+len) of [work] inside the cache. *)
let sort_range ~real ~cmp ~m work lo len =
  let b = Ext_array.block_size work in
  let blk_lo = lo / b in
  let blk_hi = (lo + len - 1) / b in
  let cache = Cache.create (Ext_array.storage work) ~capacity:m in
  let width = ((blk_hi - blk_lo + 1) * b) in
  let cells = Array.make width Cell.empty in
  for i = blk_lo to blk_hi do
    let blk = Cache.load cache (Ext_array.addr work i) in
    Array.blit blk 0 cells ((i - blk_lo) * b) b
  done;
  if real then begin
    let off = lo - (blk_lo * b) in
    let section = Array.sub cells off len in
    Array.sort cmp section;
    Array.blit section 0 cells off len;
    for i = blk_lo to blk_hi do
      let blk = Cache.borrow cache (Ext_array.addr work i) in
      Array.blit cells ((i - blk_lo) * b) blk 0 b
    done
  end;
  Cache.flush_all cache

(* Transpose ("pick up column by column, lay down row by row"): source
   cell k moves to (k mod s)·r + k/s. One streaming pass: sequential
   reads, per-destination-column buffers of one block each (s <= m/2),
   writes firing on a fixed schedule. *)
let transpose_scatter ~r ~s src dst =
  let b = Ext_array.block_size src in
  let buffers = Array.init s (fun _ -> Block.make b) in
  let fill = Array.make s 0 in
  let out_block = Array.make s 0 in
  let n = r * s in
  let flush j =
    Ext_array.write_block dst (((j * r) / b) + out_block.(j)) buffers.(j);
    out_block.(j) <- out_block.(j) + 1;
    buffers.(j) <- Block.make b;
    fill.(j) <- 0
  in
  for blk = 0 to (n / b) - 1 do
    let cells = Ext_array.read_block src blk in
    Array.iteri
      (fun i c ->
        let k = (blk * b) + i in
        let j = k mod s in
        buffers.(j).(fill.(j)) <- c;
        fill.(j) <- fill.(j) + 1;
        if fill.(j) = b then flush j)
      cells
  done;
  Array.iteri (fun j f -> assert (f = 0); ignore j) (Array.copy fill)

(* Untranspose (the inverse permutation): destination column j gathers,
   from each source column c, a run of r/s consecutive cells. Gather
   runs, assemble the column privately, write it out. *)
let untranspose_gather ~m ~r ~s src dst =
  let b = Ext_array.block_size src in
  let cache = Cache.create (Ext_array.storage src) ~capacity:m in
  let run = r / s in
  for j = 0 to s - 1 do
    let col = Array.make r Cell.empty in
    for c = 0 to s - 1 do
      (* Destination cells x = j·r + i with i ≡ c - j·r (mod s) come
         from source positions f(x) = c·r + x/s: a run of length r/s
         starting at f of the first such x. *)
      let i0 = ((c - (j * r)) mod s + s) mod s in
      let x0 = (j * r) + i0 in
      let src_start = (c * r) + (x0 / s) in
      let blk_lo = src_start / b and blk_hi = (src_start + run - 1) / b in
      for blk = blk_lo to blk_hi do
        let cells = Cache.load cache (Ext_array.addr src blk) in
        Array.iteri
          (fun idx cell ->
            let pos = (blk * b) + idx in
            if pos >= src_start && pos < src_start + run then begin
              let t = pos - src_start in
              col.(i0 + (t * s)) <- cell
            end)
          cells;
        Cache.drop cache (Ext_array.addr src blk)
      done
    done;
    for blk = 0 to (r / b) - 1 do
      let out = Array.sub col (blk * b) b in
      Ext_array.write_block dst (((j * r) / b) + blk) out
    done
  done

(* Phase-checkpointed execution on a journaled store, the same scaffold
   as the bitonic and bucket paths: the eight columnsort steps are cut
   into a deterministic phase sequence — copy-in, one phase per column
   sort, the transpose/untranspose permutations, one per boundary
   window, copy-out — each of which is idempotent (re-sorting a sorted
   range, or re-running a read-only-source permutation, is a fixed
   point), so a killed sort reopened with [resume:true] skips the
   committed phases and re-enters at the first incomplete one. The
   cursor persists the work array's base; scratch sits immediately after
   it (the allocator is a deterministic bump allocator and the two are
   created back to back), so both re-attach from one address. The owner
   folds in the input's base and shape and lives in the store's
   checkpoint table alongside any other in-flight algorithm's slot. *)
let exec ~real ~cmp ~m a =
  let n_cells = Ext_array.cells a in
  let b = Ext_array.block_size a in
  match plan ~n_cells ~b ~m with
  | None ->
      invalid_arg
        (Printf.sprintf
           "Columnsort: N = %d cells does not fit one columnsort level at m = %d, B = %d \
            (capacity ~%d); use bitonic_windowed"
           n_cells m b (capacity ~b ~m))
  | Some (r, s) ->
      let storage = Ext_array.storage a in
      let total = r * s in
      let nb = total / b in
      let ck = Storage.journaled storage in
      let owner =
        Printf.sprintf "columnsort/%d/%d" (Ext_array.base a) (Ext_array.blocks a)
      in
      let done_phase, done_cursor =
        if ck then Storage.checkpoint_state storage ~owner else (0, 0)
      in
      let work, scratch, done_phase =
        if done_phase > 0 && done_cursor + (2 * nb) <= Storage.capacity storage then
          ( Ext_array.view storage ~base:done_cursor ~blocks:nb,
            Ext_array.view storage ~base:(done_cursor + nb) ~blocks:nb,
            done_phase )
        else
          let work = Ext_array.create storage ~blocks:nb in
          let scratch = Ext_array.create storage ~blocks:nb in
          (work, scratch, 0)
      in
      let phase = ref 0 in
      let run_phase f =
        incr phase;
        if !phase > done_phase then begin
          f ();
          if ck then
            Storage.checkpoint storage ~owner ~phase:!phase ~cursor:(Ext_array.base work)
        end
      in
      (* Copy in (padding cells are already Empty = +∞). *)
      run_phase (fun () ->
          for i = 0 to Ext_array.blocks a - 1 do
            Ext_array.write_block work i (Ext_array.read_block a i)
          done);
      let sort_columns arr =
        for j = 0 to s - 1 do
          run_phase (fun () -> sort_range ~real ~cmp ~m arr (j * r) r)
        done
      in
      sort_columns work;
      if s > 1 then begin
        run_phase (fun () -> transpose_scatter ~r ~s work scratch);
        sort_columns scratch;
        run_phase (fun () -> untranspose_gather ~m ~r ~s scratch work);
        sort_columns work;
        (* Steps 6-8 without copying: sort the r-cell windows that
           straddle adjacent column boundaries. *)
        for j = 0 to s - 2 do
          run_phase (fun () -> sort_range ~real ~cmp ~m work ((j * r) + (r / 2)) r)
        done
      end;
      (* Copy out; the extra read of [a] keeps the dummy pass's trace
         identical to the real one. *)
      run_phase (fun () ->
          for i = 0 to Ext_array.blocks a - 1 do
            let sorted = Ext_array.read_block work i in
            let original = Ext_array.read_block a i in
            Ext_array.write_block a i (if real then sorted else original)
          done);
      if ck then Storage.checkpoint_clear storage ~owner
