(** Oblivious random permutation: the bucket sort's routing phase alone
    (arXiv:2008.01765 §3) — route under fresh uniform labels, then emit
    each bucket in a fresh uniform order; no tags ever reach storage.
    Conditioned on no bucket overflowing (probability
    {!Bucket_sort.overflow_bound}), the output is a uniformly random
    arrangement of the input cells; the address trace is a function of
    (shape, coins) only, so it passes the {e exact} pair test. *)

open Odex_extmem

type outcome = Bucket_sort.outcome = { ok : bool }

val run : ?z_cells:int -> rng:Odex_crypto.Rng.t -> m:int -> Ext_array.t -> outcome
(** Permute the cells of the array in place. [z_cells] overrides the
    bucket capacity (tests); by default it is {!Bucket_sort.default_z_cells}
    capped to what [m] admits. Requires [m >= 18] for out-of-cache
    inputs; in-cache inputs are permuted privately behind a fixed
    load/flush trace. *)

val run_blocks : ?z_blocks:int -> rng:Odex_crypto.Rng.t -> m:int -> Ext_array.t -> outcome
(** Permute whole blocks without opening them — the drop-in replacement
    for the Knuth shuffle in shuffle-and-deal passes. *)
