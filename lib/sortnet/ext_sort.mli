(** Deterministic data-oblivious external-memory sorting.

    This is our realization of the paper's Lemma 2 (the Goodrich–
    Mitzenmacher deterministic oblivious sort), the inner-loop substrate
    for everything else. Blocks are kept internally sorted and element
    comparators are simulated by {e merge-split} operations on block
    pairs (the replacement principle used by the Chaudhry–Cormen line of
    work the paper cites), so any sorting network on N/B block positions
    sorts the whole array.

    Three algorithms, one interface:
    - [cache_sort] — the base case: the whole array fits in Alice's m
      blocks; one read pass, private sort, one write pass.
    - [bitonic] — block-level bitonic network, one network level per
      pass: Θ((N/B)·log²(N/B)) I/Os.
    - [bitonic_windowed] — the same network, but ⌊log₂ m⌋ consecutive
      butterfly levels are applied per pass by gathering each
      2^⌊log₂ m⌋-block butterfly group into the cache — the same trick
      Theorem 6 uses to divide the I/O count by log m.

    Every algorithm's address trace depends only on (N/B, m, B): the
    networks are fixed circuits, so the sorts are data-oblivious by
    construction. *)

open Odex_extmem

type t
(** A named oblivious sorting algorithm. *)

val name : t -> string

val run : t -> ?cmp:(Cell.t -> Cell.t -> int) -> m:int -> Ext_array.t -> unit
(** [run s ~cmp ~m a] sorts the cells of [a] in place into non-decreasing
    [cmp] order, empties last. [cmp] defaults to {!Cell.compare_keys} and
    must order [Cell.Empty] after every item. [m] is Alice's cache
    capacity in blocks; the residency bound is enforced by
    {!Odex_extmem.Cache} and violating it raises
    {!Odex_extmem.Cache.Overflow}. *)

val run_selective :
  t -> ?cmp:(Cell.t -> Cell.t -> int) -> real:bool -> m:int -> Ext_array.t -> unit
(** [run_selective s ~real ~m a] performs exactly the same I/Os as
    [run s ~m a], but when [real] is false every write puts back the
    content that was read: a {e dummy} pass. Bob sees identical traces
    either way (contents are re-encrypted), which is what the
    failure-sweeping step of Theorem 21 needs: re-sort the failed
    subarrays without revealing which ones failed. *)

val cache_sort : t
(** Requires [blocks a <= m]. *)

val bitonic : t
(** Requires [m >= 2]. Pads to a power of two internally. *)

val bitonic_windowed : t
(** Requires [m >= 2]. *)

val columnsort : t
(** Leighton's columnsort (the Chaudhry–Cormen lineage the paper cites):
    seven linear passes, O(N/B) I/Os — but only for N up to one
    columnsort level's capacity (roughly (m/2)·(m·B) cells, the familiar
    M^{3/2} bound); raises [Invalid_argument] beyond it. See
    {!Columnsort.plan}. *)

val auto : t
(** [cache_sort] when the array fits in cache, else [bitonic_windowed]. *)

val bucket : ?seed:int -> unit -> t
(** Bucket oblivious sort ({!Bucket_sort}, DESIGN.md §12): route the
    cells through a log-depth butterfly of size-Z buckets under fresh
    random labels, locally sort the buckets into runs, k-way merge —
    O((N/B)·log(N/B)) I/Os against the bitonic network's log² factor.
    Dispatch is public: in-cache inputs use [cache_sort]; when the
    default bucket geometry does not fit Alice's memory
    (m < 4·⌈Z/B⌉ + 2) it falls back to [bitonic_windowed]. The same
    sorter value replays the same coins on every invocation; overflow
    (probability {!Bucket_sort.overflow_bound}, ≈2^{-48} at the default
    Z) raises {!Bucket_sort.Overflow} after completing the full I/O
    schedule. Unlike the fixed-circuit sorters, its merge phase's read
    {e order} is rank-driven: certified by the rank-isomorphic pair
    mode plus the statistical trace-distribution check instead of the
    exact pair test. [run_selective ~real:false] runs the whole
    pipeline on scratch (identical trace) and restores the array's own
    content in the copy-back. *)

val bucket_rng : Odex_crypto.Rng.t -> t
(** Same, drawing each invocation's coins from the caller's stream. *)

val all : t list
(** The concrete algorithms (not [auto]), for benches and audits. *)

val find : ?seed:int -> string -> t option
(** Look up a sorter by name for CLI/bench selection: ["cache"],
    ["bitonic"] (alias ["batcher"]), ["bitonic-windowed"],
    ["columnsort"], ["bucket"], ["auto"]. *)

val merge_split :
  cmp:(Cell.t -> Cell.t -> int) -> ascending:bool -> Block.t -> Block.t -> unit
(** The block comparator: jointly sort the 2B cells of two blocks and
    split them low-half/high-half (or the reverse when [ascending] is
    false). Exposed for tests and for the butterfly network. *)
