open Odex_extmem

type plan = { zb : int; z : int; half : int; beta : int; levels : int }

(* β·L·e^{-Z/6} < 2^-48 needs Z > 6·(48·ln 2 + ln(β·L)); 144 covers the
   constant and 6·log₂ n dominates ln(β·L) with a wide margin. *)
let default_z_cells ~n_cells = 144 + (6 * Emodel.ilog2_ceil (max 2 n_cells))

let make_plan ~b ~z_cells ~n_cells =
  if b < 1 || z_cells < 1 || n_cells < 1 then invalid_arg "Bucket_sort.make_plan";
  (* Even zb keeps the initial half-fill block-aligned, so the scatter
     and routing move whole blocks; >= 4 keeps the run areas inside the
     2·β·zb scratch budget. *)
  let zb = max 4 (Emodel.ceil_div z_cells b) in
  let zb = if zb land 1 = 1 then zb + 1 else zb in
  let z = zb * b in
  let half = z / 2 in
  let beta = 1 lsl Emodel.ilog2_ceil (max 2 (Emodel.ceil_div n_cells half)) in
  { zb; z; half; beta; levels = Emodel.ilog2_floor beta }

(* A routing node gathers two source buckets and builds the two split
   sides privately before writing either back. *)
let feasible ~m plan = (4 * plan.zb) + 2 <= m

let plan_for ~b ~m ~n_cells =
  let p = make_plan ~b ~z_cells:(default_z_cells ~n_cells) ~n_cells in
  if feasible ~m p then Some p else None

let auto_plan ~b ~m ~n_cells =
  let cap = (m - 2) / 4 in
  let cap = cap - (cap land 1) in
  if cap < 4 then None
  else
    let p = make_plan ~b ~z_cells:(default_z_cells ~n_cells) ~n_cells in
    if p.zb <= cap then Some p else Some (make_plan ~b ~z_cells:(cap * b) ~n_cells)

let overflow_bound plan =
  Float.min 1.
    (Float.of_int (plan.beta * plan.levels) *. Float.exp (-.Float.of_int plan.z /. 6.))

(* Coin streams. Only the routing levels and the finalize priorities
   consume randomness, each from its own seed derived from [master], so
   a resumed run replays the exact streams of the crashed one. *)
let mix master salt = master lxor (salt * 0x9E3779B9) lxor 0x5bd1e995

let level_rng ~master l = Odex_crypto.Rng.create ~seed:(mix master (l + 1))
let finalize_rng ~master = Odex_crypto.Rng.create ~seed:(mix master 0x0F1A71)

(* Initial fill: bucket g holds input blocks [g·zb/2, (g+1)·zb/2) — a
   pure function of the shape. Counts are in cells. *)
let initial_counts plan ~b ~n_blocks =
  let hb = plan.zb / 2 in
  Array.init plan.beta (fun g -> b * max 0 (min hb (n_blocks - (g * hb))))

(* Replay the whole routing's coin stream and produce the occupancy
   table: counts.(l) is the per-bucket cell count entering level l (and
   counts.(levels) the final occupancy). Pure — this is how a resumed
   run recovers Alice's private state, and how the Monte-Carlo sweep
   measures overflow without I/O. The draw order (pair by pair, source
   g's cells then h's) must match [route_level] exactly. *)
let simulate plan ~master ~b ~n_blocks =
  let table = Array.make (plan.levels + 1) [||] in
  table.(0) <- initial_counts plan ~b ~n_blocks;
  let overflow = ref false in
  for l = 0 to plan.levels - 1 do
    let prev = table.(l) in
    let next = Array.make plan.beta 0 in
    let rng = level_rng ~master l in
    let stride = 1 lsl l in
    for g = 0 to plan.beta - 1 do
      if g land stride = 0 then begin
        let h = g lor stride in
        let nlo = ref 0 and nhi = ref 0 in
        for _ = 1 to prev.(g) + prev.(h) do
          if Odex_crypto.Rng.bool rng then incr nhi else incr nlo
        done;
        if !nlo > plan.z || !nhi > plan.z then overflow := true;
        next.(g) <- min plan.z !nlo;
        next.(h) <- min plan.z !nhi
      end
    done;
    table.(l + 1) <- next
  done;
  (table, !overflow)

let simulate_overflow plan ~master ~b ~n_blocks =
  snd (simulate plan ~master ~b ~n_blocks)

(* Checkpoint scaffold, same shape as the bitonic path: one slot per
   owner, phase counter + scratch base as cursor, cleared on completion.
   Phases re-run after a crash are byte-identical because each one
   reads only areas the previous checkpoint committed. *)
let attach_scratch storage ~owner ~blocks =
  let ck = Storage.journaled storage in
  let done_phase, done_cursor =
    if ck then Storage.checkpoint_state storage ~owner else (0, 0)
  in
  let scratch, done_phase =
    if done_phase > 0 && done_cursor >= 0 && done_cursor + blocks <= Storage.capacity storage
    then (Ext_array.view storage ~base:done_cursor ~blocks, done_phase)
    else (Ext_array.create storage ~blocks, 0)
  in
  let counter = ref 0 in
  let run_phase f =
    incr counter;
    if !counter > done_phase then begin
      f ();
      if ck then
        Storage.checkpoint storage ~owner ~phase:!counter ~cursor:(Ext_array.base scratch)
    end
  in
  let finish () = if ck then Storage.checkpoint_clear storage ~owner in
  (scratch, run_phase, finish)

(* Move the initial half-fills into area [dst]: whole-block copies,
   shape-determined. *)
let scatter_phase a dst plan =
  let n = Ext_array.blocks a in
  let hb = plan.zb / 2 in
  let g = ref 0 in
  let off = ref 0 in
  while !off < n do
    let len = min hb (n - !off) in
    Ext_array.write_blocks dst (!g * plan.zb) (Ext_array.read_blocks a !off ~count:len);
    off := !off + len;
    incr g
  done

(* One butterfly level: for each bucket pair (g, g|2^l), MergeSplit by a
   fresh coin bit per cell. Reads the occupied prefix of [src] (count
   from the replayed table), writes packed prefixes into [dst]; cells
   beyond a bucket's count are stale and never read. Excess cells on an
   overflowing side are dropped — the trace is already fixed by the
   counts, so the drop is Alice-private. *)
let route_level ~src ~dst plan ~before ~master l =
  let b = Ext_array.block_size src in
  let rng = level_rng ~master l in
  let stride = 1 lsl l in
  let gather bucket =
    let cnt = before.(bucket) in
    if cnt = 0 then [||]
    else begin
      let blks = Ext_array.read_blocks src (bucket * plan.zb) ~count:(Emodel.ceil_div cnt b) in
      Array.init cnt (fun j -> blks.(j / b).(j mod b))
    end
  in
  let scatter bucket side cnt =
    let cnt = min plan.z cnt in
    if cnt > 0 then begin
      let blks = Array.init (Emodel.ceil_div cnt b) (fun _ -> Block.make b) in
      for j = 0 to cnt - 1 do
        blks.(j / b).(j mod b) <- side.(j)
      done;
      Ext_array.write_blocks dst (bucket * plan.zb) blks
    end
  in
  for g = 0 to plan.beta - 1 do
    if g land stride = 0 then begin
      let h = g lor stride in
      let cells_g = gather g and cells_h = gather h in
      let lo = Array.make plan.z Cell.empty and hi = Array.make plan.z Cell.empty in
      let nlo = ref 0 and nhi = ref 0 in
      let route c =
        if Odex_crypto.Rng.bool rng then begin
          if !nhi < plan.z then hi.(!nhi) <- c;
          incr nhi
        end
        else begin
          if !nlo < plan.z then lo.(!nlo) <- c;
          incr nlo
        end
      in
      Array.iter route cells_g;
      Array.iter route cells_h;
      scatter g lo !nlo;
      scatter h hi !nhi
    end
  done

(* Emit every counted cell of [src]'s buckets in a fresh uniform
   within-bucket order, streamed through one staging block; pad the
   tail with empties so exactly [blocks a] blocks are written. *)
let finalize_cells ~src plan ~counts ~master a =
  let b = Ext_array.block_size a in
  let n = Ext_array.blocks a in
  let rng = finalize_rng ~master in
  let staging = Block.make b in
  let fill = ref 0 and out = ref 0 in
  let emit c =
    staging.(!fill) <- c;
    incr fill;
    if !fill = b then begin
      Ext_array.write_block a !out (Block.copy staging);
      incr out;
      fill := 0
    end
  in
  let emitted = ref 0 in
  for g = 0 to plan.beta - 1 do
    let cnt = counts.(g) in
    if cnt > 0 then begin
      let blks = Ext_array.read_blocks src (g * plan.zb) ~count:(Emodel.ceil_div cnt b) in
      let keyed =
        Array.init cnt (fun j -> (Odex_crypto.Rng.int rng 0x3FFFFFFF, j, blks.(j / b).(j mod b)))
      in
      Array.sort (fun (p, i, _) (q, j, _) -> compare (p, i) (q, j)) keyed;
      Array.iter (fun (_, _, c) -> emit c) keyed;
      emitted := !emitted + cnt
    end
  done;
  for _ = !emitted + 1 to n * b do
    emit Cell.empty
  done

type outcome = { ok : bool }

(* In-cache fallback: one load of the whole array, a private
   Fisher–Yates over the cells, one flush — fixed trace. *)
let cache_permute ~master ~m a =
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  let cache = Cache.create (Ext_array.storage a) ~capacity:m in
  Cache.load_run cache (Ext_array.base a) ~count:n;
  let cells = Array.make (n * b) Cell.empty in
  for i = 0 to n - 1 do
    Array.blit (Cache.borrow cache (Ext_array.addr a i)) 0 cells (i * b) b
  done;
  let rng = finalize_rng ~master in
  for i = Array.length cells - 1 downto 1 do
    let j = Odex_crypto.Rng.int rng (i + 1) in
    let t = cells.(i) in
    cells.(i) <- cells.(j);
    cells.(j) <- t
  done;
  for i = 0 to n - 1 do
    Array.blit cells (i * b) (Cache.borrow cache (Ext_array.addr a i)) 0 b
  done;
  Cache.flush_all cache

let permute ?z_cells ~rng ~m a =
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  if n = 0 then { ok = true }
  else begin
    let master = Odex_crypto.Rng.int rng 0x3FFFFFFF in
    if n <= m then begin
      cache_permute ~master ~m a;
      { ok = true }
    end
    else begin
      let plan =
        match z_cells with
        | Some z ->
            let p = make_plan ~b ~z_cells:z ~n_cells:(n * b) in
            if not (feasible ~m p) then
              invalid_arg "Bucket_sort.permute: bucket size does not fit the cache";
            p
        | None -> (
            match auto_plan ~b ~m ~n_cells:(n * b) with
            | Some p -> p
            | None -> invalid_arg "Bucket_sort.permute: need m >= 18 blocks")
      in
      let storage = Ext_array.storage a in
      let owner = Printf.sprintf "bucket-perm/%d/%d" (Ext_array.base a) n in
      let area = plan.beta * plan.zb in
      let scratch, run_phase, finish = attach_scratch storage ~owner ~blocks:(2 * area) in
      let area_a = Ext_array.sub scratch ~off:0 ~len:area in
      let area_b = Ext_array.sub scratch ~off:area ~len:area in
      let counts, overflow = simulate plan ~master ~b ~n_blocks:n in
      run_phase (fun () -> scatter_phase a area_a plan);
      for l = 0 to plan.levels - 1 do
        let src, dst = if l land 1 = 0 then (area_a, area_b) else (area_b, area_a) in
        run_phase (fun () -> route_level ~src ~dst plan ~before:counts.(l) ~master l)
      done;
      let final = if plan.levels land 1 = 1 then area_b else area_a in
      run_phase (fun () -> finalize_cells ~src:final plan ~counts:counts.(plan.levels) ~master a);
      finish ();
      { ok = not overflow }
    end
  end

(* ------------------------------------------------------------------ *)
(* Block-granularity routing: blocks travel through the butterfly
   unopened, for shuffle passes whose blocks must stay intact.        *)
(* ------------------------------------------------------------------ *)

let cache_permute_blocks ~master ~m a =
  let n = Ext_array.blocks a in
  let cache = Cache.create (Ext_array.storage a) ~capacity:m in
  Cache.load_run cache (Ext_array.base a) ~count:n;
  let blks = Array.init n (fun i -> Block.copy (Cache.borrow cache (Ext_array.addr a i))) in
  let rng = finalize_rng ~master in
  for i = n - 1 downto 1 do
    let j = Odex_crypto.Rng.int rng (i + 1) in
    let t = blks.(i) in
    blks.(i) <- blks.(j);
    blks.(j) <- t
  done;
  for i = 0 to n - 1 do
    Array.blit blks.(i) 0 (Cache.borrow cache (Ext_array.addr a i)) 0 (Array.length blks.(i))
  done;
  Cache.flush_all cache

let route_level_blocks ~src ~dst plan ~before ~master l =
  let rng = level_rng ~master l in
  let stride = 1 lsl l in
  for g = 0 to plan.beta - 1 do
    if g land stride = 0 then begin
      let h = g lor stride in
      let gather bucket =
        let cnt = before.(bucket) in
        if cnt = 0 then [||] else Ext_array.read_blocks src (bucket * plan.zb) ~count:cnt
      in
      let blks_g = gather g and blks_h = gather h in
      let lo = ref [] and hi = ref [] in
      let nlo = ref 0 and nhi = ref 0 in
      let route blk =
        if Odex_crypto.Rng.bool rng then begin
          if !nhi < plan.z then hi := blk :: !hi;
          incr nhi
        end
        else begin
          if !nlo < plan.z then lo := blk :: !lo;
          incr nlo
        end
      in
      Array.iter route blks_g;
      Array.iter route blks_h;
      let scatter bucket side =
        let blks = Array.of_list (List.rev side) in
        if Array.length blks > 0 then Ext_array.write_blocks dst (bucket * plan.zb) blks
      in
      scatter g !lo;
      scatter h !hi
    end
  done

let finalize_blocks ~src plan ~counts ~master a =
  let b = Ext_array.block_size a in
  let n = Ext_array.blocks a in
  let rng = finalize_rng ~master in
  let out = ref 0 in
  for g = 0 to plan.beta - 1 do
    let cnt = counts.(g) in
    if cnt > 0 then begin
      let blks = Ext_array.read_blocks src (g * plan.zb) ~count:cnt in
      let keyed = Array.mapi (fun j blk -> (Odex_crypto.Rng.int rng 0x3FFFFFFF, j, blk)) blks in
      Array.sort (fun (p, i, _) (q, j, _) -> compare (p, i) (q, j)) keyed;
      Array.iter
        (fun (_, _, blk) ->
          Ext_array.write_block a !out blk;
          incr out)
        keyed
    end
  done;
  for i = !out to n - 1 do
    Ext_array.write_block a i (Block.make b)
  done

let permute_blocks ?z_blocks ~rng ~m a =
  let n = Ext_array.blocks a in
  if n = 0 then { ok = true }
  else begin
    let master = Odex_crypto.Rng.int rng 0x3FFFFFFF in
    if n <= m then begin
      cache_permute_blocks ~master ~m a;
      { ok = true }
    end
    else begin
      (* A b=1 plan over the block count gives the block-level geometry:
         zb and z coincide and counts are in blocks. *)
      let plan =
        match z_blocks with
        | Some z ->
            let p = make_plan ~b:1 ~z_cells:z ~n_cells:n in
            if not (feasible ~m p) then
              invalid_arg "Bucket_sort.permute_blocks: bucket size does not fit the cache";
            p
        | None -> (
            match auto_plan ~b:1 ~m ~n_cells:n with
            | Some p -> p
            | None -> invalid_arg "Bucket_sort.permute_blocks: need m >= 18 blocks")
      in
      let storage = Ext_array.storage a in
      let owner = Printf.sprintf "bucket-perm/%d/%d" (Ext_array.base a) n in
      let area = plan.beta * plan.zb in
      let scratch, run_phase, finish = attach_scratch storage ~owner ~blocks:(2 * area) in
      let area_a = Ext_array.sub scratch ~off:0 ~len:area in
      let area_b = Ext_array.sub scratch ~off:area ~len:area in
      let counts, overflow = simulate plan ~master ~b:1 ~n_blocks:n in
      run_phase (fun () -> scatter_phase a area_a plan);
      for l = 0 to plan.levels - 1 do
        let src, dst = if l land 1 = 0 then (area_a, area_b) else (area_b, area_a) in
        run_phase (fun () -> route_level_blocks ~src ~dst plan ~before:counts.(l) ~master l)
      done;
      let final = if plan.levels land 1 = 1 then area_b else area_a in
      run_phase (fun () ->
          finalize_blocks ~src:final plan ~counts:counts.(plan.levels) ~master a);
      finish ();
      { ok = not overflow }
    end
  end

(* ------------------------------------------------------------------ *)
(* The sorter: route, locally sort bucket groups into runs, merge.    *)
(* ------------------------------------------------------------------ *)

exception Overflow of string

(* Stream-merge [runs] (offset, cell-count pairs inside [src]) into a
   packed run at [dst_off] of [dst]: one lazily-refilled block per input
   run plus one staging output block. The read schedule visits every
   occupied block of every input run exactly once; only the visit
   *order* is data-driven (by ranks), which the rank-isomorphic pair
   mode certifies. *)
let merge_group ~cmp ~src ~dst ~dst_off runs =
  let b = Ext_array.block_size src in
  let k = Array.length runs in
  let buf = Array.make k [||] in
  let bpos = Array.make k 0 in
  let bidx = Array.make k 0 in
  let left = Array.map snd runs in
  let load r =
    buf.(r) <- Ext_array.read_block src (fst runs.(r) + bidx.(r));
    bidx.(r) <- bidx.(r) + 1;
    bpos.(r) <- 0
  in
  for r = 0 to k - 1 do
    if left.(r) > 0 then load r
  done;
  let staging = Block.make b in
  let fill = ref 0 and out = ref dst_off in
  let total = Array.fold_left ( + ) 0 left in
  for _ = 1 to total do
    let best = ref (-1) in
    for r = 0 to k - 1 do
      if left.(r) > 0 then
        if !best < 0 then best := r
        else if cmp buf.(r).(bpos.(r)) buf.(!best).(bpos.(!best)) < 0 then best := r
    done;
    let r = !best in
    staging.(!fill) <- buf.(r).(bpos.(r));
    incr fill;
    if !fill = b then begin
      Ext_array.write_block dst !out (Block.copy staging);
      incr out;
      fill := 0
    end;
    bpos.(r) <- bpos.(r) + 1;
    left.(r) <- left.(r) - 1;
    if left.(r) > 0 && bpos.(r) = b then load r
  done;
  if !fill > 0 then begin
    for j = !fill to b - 1 do
      staging.(j) <- Cell.empty
    done;
    Ext_array.write_block dst !out (Block.copy staging)
  end

let sort ~plan ~master ~real ~cmp ~m a =
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  if not (feasible ~m plan) then invalid_arg "Bucket_sort.sort: plan does not fit the cache";
  if n = 0 then ()
  else begin
    let storage = Ext_array.storage a in
    let owner = Printf.sprintf "bucket-sort/%d/%d" (Ext_array.base a) n in
    let area = plan.beta * plan.zb in
    let scratch, run_phase, finish = attach_scratch storage ~owner ~blocks:(2 * area) in
    let area_a = Ext_array.sub scratch ~off:0 ~len:area in
    let area_b = Ext_array.sub scratch ~off:area ~len:area in
    let counts, overflow = simulate plan ~master ~b ~n_blocks:n in
    run_phase (fun () -> scatter_phase a area_a plan);
    for l = 0 to plan.levels - 1 do
      let src, dst = if l land 1 = 0 then (area_a, area_b) else (area_b, area_a) in
      run_phase (fun () -> route_level ~src ~dst plan ~before:counts.(l) ~master l)
    done;
    let routed, spare =
      if plan.levels land 1 = 1 then (area_b, area_a) else (area_a, area_b)
    in
    (* Local sort: groups of [gpr] routed buckets become one sorted run
       in [spare], packed at shape-and-coin-determined offsets. The run
       count is shape-determined, so the merge phase structure is too. *)
    let final_counts = counts.(plan.levels) in
    let gpr = max 1 (m / (2 * plan.zb)) in
    let nruns = Emodel.ceil_div plan.beta gpr in
    let run_cells =
      Array.init nruns (fun j ->
          let cells = ref 0 in
          for g = j * gpr to min plan.beta ((j + 1) * gpr) - 1 do
            cells := !cells + final_counts.(g)
          done;
          !cells)
    in
    let run_offs = Array.make nruns 0 in
    for j = 1 to nruns - 1 do
      run_offs.(j) <- run_offs.(j - 1) + Emodel.ceil_div run_cells.(j - 1) b
    done;
    run_phase (fun () ->
        for j = 0 to nruns - 1 do
          let cells = Array.make run_cells.(j) Cell.empty in
          let pos = ref 0 in
          for g = j * gpr to min plan.beta ((j + 1) * gpr) - 1 do
            let cnt = final_counts.(g) in
            if cnt > 0 then begin
              let blks =
                Ext_array.read_blocks routed (g * plan.zb) ~count:(Emodel.ceil_div cnt b)
              in
              for i = 0 to cnt - 1 do
                cells.(!pos) <- blks.(i / b).(i mod b);
                incr pos
              done
            end
          done;
          Array.sort cmp cells;
          let nb = Emodel.ceil_div run_cells.(j) b in
          if nb > 0 then begin
            let blks = Array.init nb (fun _ -> Block.make b) in
            Array.iteri (fun i c -> blks.(i / b).(i mod b) <- c) cells;
            Ext_array.write_blocks spare run_offs.(j) blks
          end
        done);
    (* Merge passes ping-pong between the two areas until one run
       remains. *)
    let fan = max 2 (min nruns (m - 1)) in
    let rec passes src dst runs =
      if Array.length runs <= 1 then (src, runs)
      else begin
        let k = Array.length runs in
        let ngroups = Emodel.ceil_div k fan in
        let out_runs = Array.make ngroups (0, 0) in
        let off = ref 0 in
        for gj = 0 to ngroups - 1 do
          let lo = gj * fan and hi = min k ((gj + 1) * fan) in
          let cells = ref 0 in
          for r = lo to hi - 1 do
            cells := !cells + snd runs.(r)
          done;
          out_runs.(gj) <- (!off, !cells);
          off := !off + Emodel.ceil_div !cells b
        done;
        run_phase (fun () ->
            for gj = 0 to ngroups - 1 do
              let lo = gj * fan and hi = min k ((gj + 1) * fan) in
              merge_group ~cmp ~src ~dst ~dst_off:(fst out_runs.(gj))
                (Array.sub runs lo (hi - lo))
            done);
        passes dst src out_runs
      end
    in
    let runs0 = Array.init nruns (fun j -> (run_offs.(j), run_cells.(j))) in
    let final_area, _ = passes spare routed runs0 in
    if overflow then begin
      (* The full schedule above already ran (the event is coin-public,
         so both members of a pair stop identically); leave [a] intact. *)
      finish ();
      raise
        (Overflow
           (Printf.sprintf "bucket sort: bucket overflow (Z = %d cells, beta = %d)" plan.z
              plan.beta))
    end;
    (* Copy-back reads both the merged result and the array's current
       content: a dummy pass writes the latter back, so selective runs
       keep their fixed trace without touching the data. *)
    run_phase (fun () ->
        let chunk = max 1 (min 32 ((m - 1) / 2)) in
        let off = ref 0 in
        while !off < n do
          let len = min chunk (n - !off) in
          let merged = Ext_array.read_blocks final_area !off ~count:len in
          let current = Ext_array.read_blocks a !off ~count:len in
          Ext_array.write_blocks a !off (if real then merged else current);
          off := !off + len
        done);
    finish ()
  end
