open Odex_extmem

type t = {
  name : string;
  exec : real:bool -> cmp:(Cell.t -> Cell.t -> int) -> m:int -> Ext_array.t -> unit;
}

let name t = t.name

let run t ?(cmp = Cell.compare_keys) ~m a = t.exec ~real:true ~cmp ~m a

let run_selective t ?(cmp = Cell.compare_keys) ~real ~m a = t.exec ~real ~cmp ~m a

let merge_split ~cmp ~ascending u v =
  let b = Array.length u in
  if Array.length v <> b then invalid_arg "Ext_sort.merge_split: block size mismatch";
  let combined = Array.append u v in
  Array.sort cmp combined;
  let lo_dst, hi_dst = if ascending then (u, v) else (v, u) in
  Array.blit combined 0 lo_dst 0 b;
  Array.blit combined b hi_dst 0 b

(* ------------------------------------------------------------------ *)
(* Cache sort: the base case used whenever a (sub)problem fits in
   Alice's memory. One read pass, private sort, one write pass. *)

let cache_sort_exec ~real ~cmp ~m a =
  let n = Ext_array.blocks a in
  let b = Ext_array.block_size a in
  let storage = Ext_array.storage a in
  let cache = Cache.create storage ~capacity:m in
  (* One batched read run in, one batched write run out ([flush_all]
     groups the contiguous residents); an oversized array overflows in
     [load_run]'s capacity pre-check, before any I/O. *)
  Cache.load_run cache (Ext_array.base a) ~count:n;
  if real then begin
    let cells = Array.make (n * b) Cell.empty in
    for i = 0 to n - 1 do
      Array.blit (Cache.borrow cache (Ext_array.addr a i)) 0 cells (i * b) b
    done;
    Array.sort cmp cells;
    for i = 0 to n - 1 do
      Array.blit cells (i * b) (Cache.borrow cache (Ext_array.addr a i)) 0 b
    done
  end;
  Cache.flush_all cache

let cache_sort = { name = "cache"; exec = cache_sort_exec }

(* ------------------------------------------------------------------ *)
(* Block-level bitonic sort.

   The network is the classic direction-flagged bitonic circuit: stages
   of size k = 2, 4, …, n2; within a stage, butterfly levels of strides
   j = k/2 … 1 compare positions (i, i xor j) ascending iff (i land k) =
   0. A chunk of [lpp] consecutive levels (strides 2^hi … 2^lo) only
   couples index bits lo..hi, so fixing the other bits splits the array
   into independent 2^(hi-lo+1)-block groups; each group is gathered
   into the cache, run through all chunk levels privately, and written
   back — one scan of the array per chunk instead of per level. *)

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let process_chunk work cache ~real ~cmp ~stage ~hi ~lo =
  let g_bits = hi - lo + 1 in
  let g = 1 lsl g_bits in
  let n2 = Ext_array.blocks work in
  let groups = n2 / g in
  for v = 0 to groups - 1 do
    let base = ((v lsr lo) lsl (hi + 1)) lor (v land ((1 lsl lo) - 1)) in
    let pos t = base lor (t lsl lo) in
    (* [lo = 0] makes the group the contiguous run [base, base + g) (the
       windowed sort's common case), which batches both the fill and the
       [flush_all]. Strided groups load per block. *)
    if lo = 0 then Cache.load_run cache (Ext_array.addr work base) ~count:g
    else
      for t = 0 to g - 1 do
        ignore (Cache.load cache (Ext_array.addr work (pos t)))
      done;
    for bit = hi downto lo do
      let j = 1 lsl bit in
      for t = 0 to g - 1 do
        let p = pos t in
        let q = p lxor j in
        if q > p && real then begin
          let ascending = p land stage = 0 in
          let u = Cache.borrow cache (Ext_array.addr work p) in
          let v' = Cache.borrow cache (Ext_array.addr work q) in
          merge_split ~cmp ~ascending u v'
        end
      done
    done;
    Cache.flush_all cache
  done

(* Phase-checkpointed execution on a journaled store: the network is cut
   into a deterministic sequence of phases — the pre-sort/copy scan,
   one per chunk pass, the copy-back — numbered identically on every run
   with the same (n, m). After each phase the journal checkpoint slot is
   advanced, so a killed run reopened with [resume:true] skips the
   phases already committed and restarts from the first incomplete one.
   That is sound because every phase is idempotent: re-running a
   compare-exchange pass (or either copy scan) on its own output is a
   fixed point, so at-least-once phase execution converges to the same
   array. The slot's cursor persists the padded work array's base
   address, letting the resumed run re-attach it instead of allocating a
   fresh one (a crash before the first checkpoint re-allocates — the
   orphaned scratch is the price of not having committed anything yet).

   The owner string folds in the array base and block count: a slot
   written by a different array (or a differently-shaped sort) is
   ignored. The store's checkpoint table keys slots by the full owner
   string, so a sort nested inside another checkpointed computation (the
   ORAM rebuild) keeps its slot without clobbering its host's — resuming
   is still sound only for the same deterministic sort invocation that
   wrote the slot (see {!Storage.checkpoint}). On unjournaled stores all
   of this costs two integer reads and no I/O. *)

let bitonic_exec ~levels_per_pass ~real ~cmp ~m a =
  if m < 2 then invalid_arg "Ext_sort.bitonic: need m >= 2";
  let n = Ext_array.blocks a in
  let storage = Ext_array.storage a in
  if n = 0 then ()
  else begin
    let n2 = next_power_of_two n in
    let ck = Storage.journaled storage in
    let owner = Printf.sprintf "ext-sort/%d/%d" (Ext_array.base a) n in
    let done_phase, done_cursor =
      if ck then Storage.checkpoint_state storage ~owner else (0, 0)
    in
    (* Hint the pre-sort scan's first window before the padded work
       array is allocated: on a prefetching store the fetch overlaps the
       setup. *)
    Ext_array.prime a ~chunk:32;
    let work, done_phase =
      if n2 = n then (a, done_phase)
      else if
        done_phase > 0 && done_cursor >= 0 && done_cursor + n2 <= Storage.capacity storage
      then (Ext_array.view storage ~base:done_cursor ~blocks:n2, done_phase)
      else (Ext_array.create storage ~blocks:n2, 0)
    in
    let phase = ref 0 in
    let run_phase f =
      incr phase;
      if !phase > done_phase then begin
        f ();
        if ck then
          Storage.checkpoint storage ~owner ~phase:!phase ~cursor:(Ext_array.base work)
      end
    in
    (* Pre-sort each block internally (and copy into the padded work
       array when needed); padding blocks are already all-empty = +∞.
       Read and rewritten in batched runs. *)
    run_phase (fun () ->
        Ext_array.iter_runs a ~chunk:32 (fun base blks ->
            if real then Array.iter (Block.sort_in_place cmp) blks;
            Ext_array.write_blocks work base blks));
    let lpp = max 1 (min (levels_per_pass m) (Emodel.ilog2_floor m)) in
    let cache = Cache.create storage ~capacity:m in
    let stage = ref 2 in
    while !stage <= n2 do
      let top = Emodel.ilog2_floor !stage - 1 in
      let hi = ref top in
      while !hi >= 0 do
        let lo = max 0 (!hi - lpp + 1) in
        let stage_now = !stage and hi_now = !hi in
        run_phase (fun () ->
            process_chunk work cache ~real ~cmp ~stage:stage_now ~hi:hi_now ~lo);
        hi := lo - 1
      done;
      stage := !stage * 2
    done;
    (* Copy-back through [iter_runs] so a prefetching store streams run
       k+1 of [work] while run k is written into [a]; the chunk
       boundaries (32, in address order) match the old explicit loop, so
       the trace is unchanged. *)
    if work != a then
      run_phase (fun () ->
          Ext_array.iter_runs (Ext_array.sub work ~off:0 ~len:n) ~chunk:32 (fun base blks ->
              Ext_array.write_blocks a base blks));
    (* Done: clear the slot so the next sort over this array starts
       fresh instead of "resuming" past its own phases. *)
    if ck then Storage.checkpoint_clear storage ~owner
  end

let bitonic = { name = "bitonic"; exec = bitonic_exec ~levels_per_pass:(fun _ -> 1) }

let bitonic_windowed =
  {
    name = "bitonic-windowed";
    exec = bitonic_exec ~levels_per_pass:(fun m -> Emodel.ilog2_floor m);
  }

let auto =
  {
    name = "auto";
    exec =
      (fun ~real ~cmp ~m a ->
        if Ext_array.blocks a <= m then cache_sort_exec ~real ~cmp ~m a
        else bitonic_exec ~levels_per_pass:(fun m -> Emodel.ilog2_floor m) ~real ~cmp ~m a);
  }

let columnsort = { name = "columnsort"; exec = Columnsort.exec }

(* ------------------------------------------------------------------ *)
(* Bucket oblivious sort (Asharov et al., DESIGN.md §12). Dispatch is
   public (n, B, M only): in-cache inputs use the cache sorter, inputs
   whose bucket geometry does not fit Alice's memory fall back to the
   windowed bitonic network, everything else runs the O(n log n)
   butterfly pipeline. *)

let bucket_exec ~master ~real ~cmp ~m a =
  let n = Ext_array.blocks a in
  if n = 0 then ()
  else if n <= m then cache_sort_exec ~real ~cmp ~m a
  else
    match Bucket_sort.plan_for ~b:(Ext_array.block_size a) ~m ~n_cells:(n * Ext_array.block_size a) with
    | Some plan -> Bucket_sort.sort ~plan ~master ~real ~cmp ~m a
    | None -> bitonic_exec ~levels_per_pass:(fun m -> Emodel.ilog2_floor m) ~real ~cmp ~m a

let bucket ?(seed = 0xB0C4E7) () =
  {
    name = "bucket";
    exec =
      (fun ~real ~cmp ~m a ->
        (* A fresh stream per exec: the same sorter value replays the
           same coins on every invocation (deterministic, resumable). *)
        let rng = Odex_crypto.Rng.create ~seed in
        bucket_exec ~master:(Odex_crypto.Rng.int rng 0x3FFFFFFF) ~real ~cmp ~m a);
  }

let bucket_rng rng =
  {
    name = "bucket";
    exec =
      (fun ~real ~cmp ~m a ->
        bucket_exec ~master:(Odex_crypto.Rng.int rng 0x3FFFFFFF) ~real ~cmp ~m a);
  }

let all = [ cache_sort; bitonic; bitonic_windowed; columnsort; bucket () ]

let find ?seed name =
  match name with
  | "cache" -> Some cache_sort
  | "bitonic" | "batcher" -> Some bitonic
  | "bitonic-windowed" -> Some bitonic_windowed
  | "columnsort" -> Some columnsort
  | "bucket" -> Some (bucket ?seed ())
  | "auto" -> Some auto
  | _ -> None
