type outcome = Bucket_sort.outcome = { ok : bool }

let run ?z_cells ~rng ~m a = Bucket_sort.permute ?z_cells ~rng ~m a
let run_blocks ?z_blocks ~rng ~m a = Bucket_sort.permute_blocks ?z_blocks ~rng ~m a
