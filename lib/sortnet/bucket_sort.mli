(** Bucket oblivious sort and oblivious random permutation — Asharov,
    Chan, Nayak, Pass, Ren, Shi, "Bucket Oblivious Sort: An Extremely
    Simple Oblivious Sort" (arXiv:2008.01765), adapted to the paper's
    external-memory model (DESIGN.md §12).

    Elements are routed through a log-depth butterfly of β buckets of
    Z cells each: at level i, the per-node MergeSplit primitive splits a
    bucket pair by one fresh uniform coin bit per element, so after
    log₂ β levels every element sits in a uniformly random bucket.
    A random within-bucket order then yields a uniformly random
    permutation of the input (conditioned on no bucket overflowing,
    which fails with probability ≤ β·L·e^{-Z/6}); locally sorting the
    routed buckets and merging the runs yields an O(n log n)-work sort.

    Obliviousness model: destination labels are never written to
    storage — the coin bit for level i is drawn lazily at level i, and
    the per-bucket occupancy counts live in Alice's private memory.
    Counts are a pure function of the coins given the input {e shape},
    so every read and write below depends only on (n, B, M, Z) and the
    coins: {!permute} has a fully fixed trace, and {!sort}'s trace
    depends on data only through the rank order that its run-formation
    and merge phases consume (certified by the rank-isomorphic pair
    mode plus the statistical trace-distribution check, see
    {!Odex_obcheck.Pairtest} and {!Odex_obcheck.Statcheck}).

    Crash-resume: both pipelines checkpoint once per butterfly level /
    merge pass (owners ["bucket-perm/<base>/<n>"] and
    ["bucket-sort/<base>/<n>"]). Levels route between two ping-pong
    scratch areas, so every phase reads only data the previous
    checkpoint committed and re-running a torn phase is byte-identical;
    the private counts are re-derived on resume by replaying the coins
    with {!simulate_overflow}'s machinery. *)

open Odex_extmem

type plan = private {
  zb : int;  (** bucket capacity in blocks (even, >= 4) *)
  z : int;  (** bucket capacity in cells: zb·B *)
  half : int;  (** initial fill per bucket in cells: z/2 *)
  beta : int;  (** number of buckets (power of two, >= 2) *)
  levels : int;  (** butterfly depth: log₂ β *)
}

val default_z_cells : n_cells:int -> int
(** [144 + 6·⌈log₂ n⌉]: drives the union-bound failure probability
    β·L·e^{-Z/6} below ~2^{-48} at any feasible n. *)

val make_plan : b:int -> z_cells:int -> n_cells:int -> plan
(** Derive the butterfly geometry for [n_cells] cells in blocks of [b]
    with bucket capacity ~[z_cells] (rounded up so buckets are an even
    number of blocks, at least 4). *)

val feasible : m:int -> plan -> bool
(** A routing node holds two source buckets plus the two split sides in
    Alice's memory: [4·zb + 2 <= m]. *)

val plan_for : b:int -> m:int -> n_cells:int -> plan option
(** The sorter's plan: {!default_z_cells} capacity, [None] when the
    cache cannot honour {!feasible} (callers fall back to a
    deterministic network). *)

val auto_plan : b:int -> m:int -> n_cells:int -> plan option
(** The permutation's plan: {!default_z_cells} capped to what [m]
    admits ([zb <= (m-2)/4]); [None] below [m = 18]. Smaller caps trade
    failure probability ({!overflow_bound}) for cache, never trace
    shape. *)

val overflow_bound : plan -> float
(** Analytic union bound on the probability that any bucket overflows:
    [min 1 (β·L·e^{-Z/6})] — each bucket-level event is a sum of
    independent indicators with mean ≤ Z/2, Chernoff-bounded at
    e^{-Z/6}. *)

val simulate_overflow : plan -> master:int -> b:int -> n_blocks:int -> bool
(** Replay the coin stream of a routing with master seed [master] (no
    I/O) and report whether any bucket would overflow. This is the
    exact counts computation the real pipelines use, exposed for the
    Monte-Carlo sweeps in [test_properties.ml]. *)

exception Overflow of string
(** Raised by {!sort} (after completing its full I/O schedule, with the
    array untouched and the checkpoint slot cleared) when a bucket
    overflowed. The event depends only on the coins — probability
    {!overflow_bound} — never on the data. *)

val sort :
  plan:plan ->
  master:int ->
  real:bool ->
  cmp:(Cell.t -> Cell.t -> int) ->
  m:int ->
  Ext_array.t ->
  unit
(** One bucket-oblivious sort pass over the whole array: scatter,
    [levels] butterfly levels, per-group local sort into runs, k-way
    merge passes, copy-back. Requires [feasible ~m plan] and
    [blocks a > m] (smaller inputs belong to the cache sorter).
    [cmp] must order [Cell.Empty] last. When [real] is false the
    entire pipeline still runs on the scratch areas (identical trace)
    but the copy-back rewrites the array's own content, leaving it
    untouched. Usually reached through {!Ext_sort.bucket}. *)

type outcome = { ok : bool }
(** [ok = false]: a bucket overflowed; the output is a uniformly random
    arrangement of the surviving cells, padded with empties
    (Alice-private, trace unchanged). *)

val permute : ?z_cells:int -> rng:Odex_crypto.Rng.t -> m:int -> Ext_array.t -> outcome
(** Oblivious random permutation of the {e cells} of the array: route
    through the butterfly, then emit each final bucket in a fresh
    uniform order. Inputs that fit in cache ([blocks a <= m]) are
    permuted privately behind the same fixed load/flush trace. The
    trace is a function of (shape, coins) only. *)

val permute_blocks :
  ?z_blocks:int -> rng:Odex_crypto.Rng.t -> m:int -> Ext_array.t -> outcome
(** Same routing at {e block} granularity: blocks travel through the
    butterfly unopened. This is the drop-in replacement for the Knuth
    shuffle in shuffle-and-deal passes ({!Odex.Shuffle_deal}), where
    block payloads must stay intact. *)
