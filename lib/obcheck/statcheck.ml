open Odex_extmem

type verdict = {
  name : string;
  stat : float;
  df : int;
  critical : float;
  samples : int;
  pass : bool;
}

(* Upper critical value of the chi-square distribution by the
   Wilson–Hilferty cube approximation: (X/df)^(1/3) is close to normal
   with mean 1 - 2/(9 df) and variance 2/(9 df). Accurate to a few
   percent for df >= 3 — plenty for a pass/fail gate with generous z —
   and dependency-free. *)
let chi_square_critical ~df ~z =
  if df < 1 then invalid_arg "Statcheck.chi_square_critical: df must be >= 1";
  let dff = Float.of_int df in
  let h = 2. /. (9. *. dff) in
  let t = 1. -. h +. (z *. Float.sqrt h) in
  dff *. t *. t *. t

(* Two-sample chi-square homogeneity statistic over matched histograms
   (unequal totals handled by the usual sqrt(N2/N1) scaling). Bins empty
   in both samples carry no information and no degree of freedom. *)
let two_sample obs_a obs_b =
  let k = Array.length obs_a in
  if Array.length obs_b <> k then invalid_arg "Statcheck.two_sample: bin count mismatch";
  let total arr = Array.fold_left ( + ) 0 arr in
  let na = total obs_a and nb = total obs_b in
  if na = 0 || nb = 0 then invalid_arg "Statcheck.two_sample: empty sample";
  let k1 = Float.sqrt (Float.of_int nb /. Float.of_int na) in
  let k2 = Float.sqrt (Float.of_int na /. Float.of_int nb) in
  let stat = ref 0. and df = ref (-1) in
  for i = 0 to k - 1 do
    let a = obs_a.(i) and b = obs_b.(i) in
    if a + b > 0 then begin
      incr df;
      let d = (k1 *. Float.of_int a) -. (k2 *. Float.of_int b) in
      stat := !stat +. (d *. d /. Float.of_int (a + b))
    end
  done;
  (!stat, max 1 !df)

(* Goodness of fit against the uniform distribution over all bins. *)
let uniformity obs =
  let k = Array.length obs in
  if k < 2 then invalid_arg "Statcheck.uniformity: need >= 2 bins";
  let n = Array.fold_left ( + ) 0 obs in
  if n = 0 then invalid_arg "Statcheck.uniformity: empty sample";
  let e = Float.of_int n /. Float.of_int k in
  let stat =
    Array.fold_left
      (fun acc o ->
        let d = Float.of_int o -. e in
        acc +. (d *. d /. e))
      0. obs
  in
  (stat, k - 1)

(* Fold an op sequence into a fixed-width address histogram, reads and
   writes in separate halves: bin collisions (addr mod bins) can only
   hide a leak, never invent one, so the test stays sound (conservative
   in power, exact in level). Retries land with their direction. *)
let histogram_of_ops ~bins ops acc =
  List.iter
    (fun op ->
      let dir, addr =
        match op with
        | Trace.Read a | Trace.Retry_read a -> (0, a)
        | Trace.Write a | Trace.Retry_write a -> (1, a)
      in
      let i = (dir * bins) + (addr mod bins) in
      acc.(i) <- acc.(i) + 1)
    ops

(* Deterministic disjoint coin streams: input A runs under seeds
   [0, samples), input B under [1000, 1000 + samples) (the streams stay
   disjoint for any samples <= 1000, asserted below). Same seeds every
   run of the suite — the verdict is reproducible, not flaky. *)
let seed_a i = i
let seed_b i = 1000 + i

(* The distributional form of the obliviousness claim: with the coins
   {e free} (not fixed, as in Pairtest), the distribution of Bob's view
   must still be independent of the stored values. Run the subject
   [samples] times on each of two value-disjoint same-shape inputs,
   each run under its own coin seed, and chi-square the two pooled
   address histograms. Complements Pairtest exactly where Pairtest is
   silent: a subject could be per-coin oblivious yet skew its coin
   {e usage} by data (e.g. biasing a shuffle when the input is sorted),
   which only shows up across coin draws. *)
let trace_distribution ?(samples = 200) ?(bins = 64) ?(z = 3.29) subject ~n_cells ~b ~m =
  if samples < 2 then invalid_arg "Statcheck.trace_distribution: need >= 2 samples";
  if samples > 1000 then invalid_arg "Statcheck.trace_distribution: seed streams would collide";
  if bins < 2 then invalid_arg "Statcheck.trace_distribution: need >= 2 bins";
  let cells_a, cells_b = Pairtest.pair_inputs ~seed:0x57A7 ~n:n_cells in
  let run cells seed acc =
    let s = Storage.create ~trace_mode:Trace.Full ~backoff:(0., 0.) ~block_size:b () in
    Fun.protect
      ~finally:(fun () -> Storage.close s)
      (fun () ->
        let arr = Ext_array.of_cells s ~block_size:b cells in
        let rng = Odex_crypto.Rng.create ~seed in
        subject.Pairtest.run ~rng ~m s arr;
        histogram_of_ops ~bins (Trace.ops (Storage.trace s)) acc)
  in
  let ha = Array.make (2 * bins) 0 and hb = Array.make (2 * bins) 0 in
  for i = 0 to samples - 1 do
    run cells_a (seed_a i) ha;
    run cells_b (seed_b i) hb
  done;
  let stat, df = two_sample ha hb in
  let critical = chi_square_critical ~df ~z in
  {
    name = subject.Pairtest.name;
    stat;
    df;
    critical;
    samples;
    pass = stat <= critical;
  }

(* Package one two-sample comparison, degrading gracefully on empty
   histograms: both empty carries no information (vacuous pass with the
   weakest gate), exactly one empty is itself maximal divergence. *)
let two_sample_verdict ~name ~z ~samples ha hb =
  let total = Array.fold_left ( + ) 0 in
  match (total ha, total hb) with
  | 0, 0 ->
      { name; stat = 0.; df = 1; critical = chi_square_critical ~df:1 ~z; samples; pass = true }
  | 0, _ | _, 0 ->
      {
        name;
        stat = Float.infinity;
        df = 1;
        critical = chi_square_critical ~df:1 ~z;
        samples;
        pass = false;
      }
  | _ ->
      let stat, df = two_sample ha hb in
      let critical = chi_square_critical ~df ~z in
      { name; stat; df; critical; samples; pass = stat <= critical }

(* The per-server distributional tier. The combined histogram provably
   cannot see a leak that lives in {e which shard} serves an op: the
   logical address — all [trace_distribution] pools — is unchanged by
   routing, and a data-dependent extra op at logical addresses colliding
   modulo [bins] vanishes from the combined histogram entirely. Here the
   subject runs on a [shards]-stripe and each shard's own trace (inner
   addresses — what that server's device actually sees) is pooled and
   chi-squared separately, so a skew visible on a single server fails
   that server's verdict by name. *)
let shard_distribution ?(samples = 200) ?(bins = 64) ?(z = 3.29) ?(shards = 2)
    ?(stripe_seed = 0x5A4D) subject ~n_cells ~b ~m =
  if samples < 2 then invalid_arg "Statcheck.shard_distribution: need >= 2 samples";
  if samples > 1000 then
    invalid_arg "Statcheck.shard_distribution: seed streams would collide";
  if bins < 2 then invalid_arg "Statcheck.shard_distribution: need >= 2 bins";
  if shards < 1 then invalid_arg "Statcheck.shard_distribution: shards must be >= 1";
  let cells_a, cells_b = Pairtest.pair_inputs ~seed:0x57A7 ~n:n_cells in
  let run cells seed accs =
    let backend = Storage.Sharded { inner = Storage.Mem; shards; seed = stripe_seed } in
    let s = Storage.create ~trace_mode:Trace.Full ~backoff:(0., 0.) ~backend ~block_size:b () in
    Fun.protect
      ~finally:(fun () -> Storage.close s)
      (fun () ->
        let arr = Ext_array.of_cells s ~block_size:b cells in
        let rng = Odex_crypto.Rng.create ~seed in
        subject.Pairtest.run ~rng ~m s arr;
        Array.iteri
          (fun i tr -> histogram_of_ops ~bins (Trace.ops tr) accs.(i))
          (Storage.shard_traces s))
  in
  let ha = Array.init shards (fun _ -> Array.make (2 * bins) 0) in
  let hb = Array.init shards (fun _ -> Array.make (2 * bins) 0) in
  for i = 0 to samples - 1 do
    run cells_a (seed_a i) ha;
    run cells_b (seed_b i) hb
  done;
  Array.init shards (fun si ->
      two_sample_verdict
        ~name:(Printf.sprintf "%s/shard%d" subject.Pairtest.name si)
        ~z ~samples ha.(si) hb.(si))

let uniformity_verdict ~name ?(z = 3.29) obs =
  let stat, df = uniformity obs in
  let critical = chi_square_critical ~df ~z in
  { name; stat; df; critical; samples = Array.fold_left ( + ) 0 obs; pass = stat <= critical }

let pp_verdict ppf v =
  Format.fprintf ppf "%s: chi2 = %.1f (df %d, critical %.1f, %d samples) => %s" v.name v.stat
    v.df v.critical v.samples
    (if v.pass then "consistent" else "REJECTED")
