open Odex_extmem
open Odex

type cert = [ `Exact | `Isomorphic | `Multi_server ]

type entry = {
  subject : Pairtest.subject;
  n_cells : int;
  b : int;
  m : int;
  cert : cert;
}

let sub name run = { Pairtest.name; run }

(* Core algorithms. Capacity and rank parameters are derived only from
   the public shape (cell count, block count, item count — the pair
   generator gives both runs identical shapes), never from key values. *)

let consolidation =
  sub "consolidation" (fun ~rng:_ ~m:_ _s a -> ignore (Consolidation.run ~into:None a))

let butterfly = sub "butterfly" (fun ~rng:_ ~m _s a -> ignore (Butterfly.compact ~m a))

let tight_compaction =
  sub "compaction-tight" (fun ~rng:_ ~m _s a ->
      ignore (Compaction.tight ~m ~capacity_blocks:(Ext_array.blocks a) a))

let loose_compaction =
  sub "loose-compaction" (fun ~rng ~m _s a ->
      ignore (Loose_compaction.run ~m ~rng ~capacity:(max 1 (Ext_array.blocks a / 8)) a))

(* The two-server protocol (DESIGN.md §14): on a k >= 2 stripe each
   server individually sees a fixed sequence while the combined trace is
   occupancy-dependent — hence the [`Multi_server] certificate; on
   single-server backends it publicly falls back to [Compaction.tight]
   and behaves [`Exact]. *)
let twoserver_compaction =
  sub "twoserver-compaction" (fun ~rng:_ ~m _s a ->
      ignore (Twoserver_compaction.run ~m ~capacity_blocks:(Ext_array.blocks a) a))

let logstar_compaction =
  sub "logstar-compaction" (fun ~rng ~m _s a ->
      ignore (Logstar_compaction.run ~m ~rng ~capacity:(max 1 (Ext_array.blocks a / 8)) a))

let item_count a =
  let n = ref 0 in
  Array.iter (fun c -> if Cell.is_item c then incr n) (Ext_array.to_cells a);
  !n

let selection =
  sub "selection" (fun ~rng ~m _s a ->
      let total = item_count a in
      if total > 0 then ignore (Selection.select ~m ~rng ~k:(max 1 (total / 2)) a))

let quantiles =
  sub "quantiles" (fun ~rng ~m _s a ->
      if item_count a > 0 then ignore (Quantiles.run ~m ~rng ~q:3 a))

let sort = sub "sort" (fun ~rng ~m _s a -> ignore (Sort.run ~m ~rng a))

(* Bucket oblivious sort + its routing-only permutation (DESIGN.md §12).
   The permutation's trace is a pure function of (shape, coins) —
   exact-certified; the sorter's merge phase reads runs in rank order,
   so it is certified rank-isomorphically (plus the statistical
   distribution check in Statcheck). Shapes are the smallest that push
   the default bucket geometry through the real pipeline:
   n = 512 blocks > m = 256 >= 4·zb + 2 with zb = 54. *)

let bucket_sort =
  sub "bucket-sort" (fun ~rng ~m _s a ->
      Odex_sortnet.Ext_sort.run (Odex_sortnet.Ext_sort.bucket_rng rng) ~m a)

let oblivious_permutation =
  sub "oblivious-permutation" (fun ~rng ~m _s a ->
      ignore (Odex_sortnet.Oblivious_permutation.run ~rng ~m a))

(* ORAM subjects: the input array only supplies the value payloads (its
   item count is shape, hence equal across a pair); the access sequence
   is a fixed function of the store's size. *)

let oram_values a =
  match Array.of_list (List.map (fun (it : Cell.item) -> it.value) (Ext_array.items a)) with
  | [||] -> [| 1 |]
  | vals -> vals

let access_pattern size = List.init (2 * size) (fun i -> ((i * 7) + 3) mod size)

let drive ~read ~write o size =
  List.iter
    (fun addr -> if addr mod 3 = 0 then write o addr (addr * 5) else ignore (read o addr))
    (access_pattern size)

let linear_oram =
  sub "linear-oram" (fun ~rng:_ ~m:_ s a ->
      let values = oram_values a in
      let o = Odex_oram.Linear_oram.init s ~values in
      drive ~read:Odex_oram.Linear_oram.read ~write:Odex_oram.Linear_oram.write o
        (Array.length values))

let sqrt_oram =
  sub "sqrt-oram" (fun ~rng ~m s a ->
      let values = oram_values a in
      let o = Odex_oram.Sqrt_oram.init ~m ~rng s ~values in
      drive ~read:Odex_oram.Sqrt_oram.read ~write:Odex_oram.Sqrt_oram.write o
        (Array.length values))

let hierarchical_oram =
  sub "hier-oram" (fun ~rng ~m s a ->
      let values = oram_values a in
      let o = Odex_oram.Hierarchical_oram.init ~m ~rng s ~values in
      drive ~read:Odex_oram.Hierarchical_oram.read ~write:Odex_oram.Hierarchical_oram.write o
        (Array.length values))

(* Default shapes: big enough that every subject leaves its in-cache
   base case (selection/quantiles need N/B > m), small enough for a
   test-suite smoke run. *)
let all =
  [
    { subject = consolidation; n_cells = 512; b = 4; m = 8; cert = `Exact };
    { subject = butterfly; n_cells = 512; b = 4; m = 8; cert = `Exact };
    { subject = tight_compaction; n_cells = 512; b = 4; m = 8; cert = `Exact };
    { subject = loose_compaction; n_cells = 1024; b = 4; m = 32; cert = `Exact };
    { subject = logstar_compaction; n_cells = 512; b = 4; m = 16; cert = `Exact };
    { subject = twoserver_compaction; n_cells = 512; b = 4; m = 8; cert = `Multi_server };
    { subject = selection; n_cells = 1024; b = 4; m = 16; cert = `Exact };
    { subject = quantiles; n_cells = 1024; b = 4; m = 16; cert = `Exact };
    { subject = sort; n_cells = 768; b = 4; m = 16; cert = `Exact };
    { subject = bucket_sort; n_cells = 2048; b = 4; m = 256; cert = `Isomorphic };
    { subject = oblivious_permutation; n_cells = 2048; b = 4; m = 256; cert = `Exact };
    { subject = linear_oram; n_cells = 96; b = 4; m = 8; cert = `Exact };
    { subject = sqrt_oram; n_cells = 96; b = 4; m = 16; cert = `Exact };
    { subject = hierarchical_oram; n_cells = 96; b = 4; m = 16; cert = `Exact };
  ]

let find name = List.find_opt (fun e -> e.subject.Pairtest.name = name) all

let pair_mode e =
  match e.cert with `Exact | `Multi_server -> `Disjoint | `Isomorphic -> `Isomorphic

let multi_server e = e.cert = `Multi_server

(* Backends the obliviousness suite runs against. Each call returns a
   fresh spec: a file store gets its own temp path (remove it with
   [Storage.remove_spec_files] when done), and the faulty decorator gets
   a fixed seed and a genuinely nonzero failure rate so retries really
   appear in the traces under test. [max_burst] stays below
   [Storage.create]'s default retry budget, so a fault can never turn
   permanent. *)
let backend_names = [ "mem"; "file"; "faulty" ]

let backend_spec ?(seed = 0xFA17) ?(failure_rate = 0.05) ?(shards = 1) ?(journal = false) name
    =
  if shards < 1 then invalid_arg "Registry.backend_spec: shards must be >= 1";
  (* [shards > 1] stripes the spec across K inner devices. The faulty
     decorator composes OUTSIDE the stripe: its access counter then
     ticks per logical block exactly as over an unsharded store, so the
     fault (and retry) schedule — hence the whole trace — is identical
     at every K. *)
  let stripe inner =
    if shards = 1 then inner else Storage.Sharded { inner; shards; seed = 0x5A4D }
  in
  (* [journal] wraps the finished spec in the write-ahead journal — the
     outermost decorator, so the log records exactly what the algorithm
     issued. The journal file rides with the spec ([remove_spec_files]
     cleans it up alongside any inner store). *)
  let journaled inner =
    if not journal then inner
    else
      Storage.Journaled
        { inner; path = Filename.temp_file "odex_obcheck" ".journal"; durable = true }
  in
  journaled
    (match name with
    | "mem" -> stripe Storage.Mem
    | "file" -> stripe (Storage.File { path = Filename.temp_file "odex_obcheck" ".store" })
    | "faulty" ->
        Storage.Faulty { inner = stripe Storage.Mem; seed; failure_rate; max_burst = 2 }
    | other -> invalid_arg (Printf.sprintf "Registry.backend_spec: unknown backend %S" other))
