(** Statistical obliviousness checks.

    {!Pairtest} verifies the operational definition with the coins
    {e fixed}: same seed, value-disjoint inputs, identical traces. It
    cannot see a defect that lives in the {e distribution} over coins —
    an algorithm whose every fixed-coin trace is data-independent, but
    which (say) draws its shuffle permutation from a data-biased region
    of the coin space. This module covers that flank: run a randomized
    subject many times on each of two value-disjoint same-shape inputs,
    each run under its own deterministic coin seed (input A uses seeds
    0..s-1, input B seeds 1000..1000+s-1 — disjoint streams), pool the
    address traces into histograms, and test homogeneity with a
    two-sample chi-square. Everything is seeded, so a verdict is
    bit-reproducible — the suite never flakes, it either proves the
    distributions compatible at the chosen significance or it has found
    a leak.

    The chi-square critical values come from the Wilson–Hilferty cube
    approximation (dependency-free, a few percent accurate for
    df >= 3); the default gate [z = 3.29] corresponds to p ~ 5e-4 per
    test. *)

type verdict = {
  name : string;
  stat : float;  (** The chi-square statistic. *)
  df : int;  (** Degrees of freedom (informative bins - 1). *)
  critical : float;  (** Rejection threshold at the chosen [z]. *)
  samples : int;  (** Runs per input (or total count, for uniformity). *)
  pass : bool;  (** [stat <= critical]: distributions consistent. *)
}

val chi_square_critical : df:int -> z:float -> float
(** Wilson–Hilferty upper critical value of chi-square with [df]
    degrees of freedom at normal quantile [z]. *)

val two_sample : int array -> int array -> float * int
(** [two_sample a b] is the two-sample chi-square homogeneity statistic
    and its degrees of freedom for two matched histograms (unequal
    totals are scale-corrected; bins empty in both samples are
    skipped). *)

val uniformity : int array -> float * int
(** Goodness-of-fit statistic of a histogram against the uniform
    distribution over all its bins. *)

val histogram_of_ops : bins:int -> Odex_extmem.Trace.op list -> int array -> unit
(** Fold a [Full]-mode op sequence into [acc] (length [2 * bins]): reads
    into bins [addr mod bins], writes into [bins + addr mod bins],
    retries with their direction. Bin collisions can hide a leak but
    never invent one, so the resulting test is conservative. *)

val trace_distribution :
  ?samples:int ->
  ?bins:int ->
  ?z:float ->
  Pairtest.subject ->
  n_cells:int ->
  b:int ->
  m:int ->
  verdict
(** [trace_distribution subject ~n_cells ~b ~m] runs the subject
    [samples] (default 200) times per input on the two halves of a
    value-disjoint pair, each run with its own coin seed from the
    deterministic disjoint streams above, and chi-squares the pooled
    address histograms ([2 * bins] cells, default [bins = 64]).
    [pass = true] means Bob's address distribution is statistically
    independent of the stored values at significance [z]
    (default 3.29). *)

val shard_distribution :
  ?samples:int ->
  ?bins:int ->
  ?z:float ->
  ?shards:int ->
  ?stripe_seed:int ->
  Pairtest.subject ->
  n_cells:int ->
  b:int ->
  m:int ->
  verdict array
(** The per-server distributional tier: like {!trace_distribution}, but
    the subject runs on a [shards]-member stripe (default 2, PRP seed
    [stripe_seed], default [0x5A4D]) over [Mem], and each shard's {e
    own} trace ({!Odex_extmem.Storage.shard_traces} — inner addresses,
    the view that server's device actually gets) is pooled and
    chi-squared separately. One verdict per shard, named
    ["subject/shardN"].

    This tier sees what the combined one provably cannot: pooling
    logical addresses erases routing entirely, so an implementation that
    keys {e which server} serves an op on the data — or issues a
    data-dependent op at logical addresses colliding modulo [bins] —
    passes {!trace_distribution} unchanged while skewing one shard's
    histogram here. A shard trace empty under both inputs passes
    vacuously; empty under exactly one input fails outright. *)

val uniformity_verdict : name:string -> ?z:float -> int array -> verdict
(** Package a {!uniformity} test of a histogram (e.g. observed shuffle
    swap partners against the uniform law the Knuth shuffle promises)
    as a verdict. *)

val pp_verdict : Format.formatter -> verdict -> unit
