open Odex_extmem

type verdict = {
  name : string;
  formula : string;
  actual : int;
  bound : float;
  exact : bool;
  within : bool;
}

let exact ~name ~formula ~actual expected =
  { name; formula; actual; bound = Float.of_int expected; exact = true;
    within = actual = expected }

let upper ~name ~formula ~actual bound =
  { name; formula; actual; bound; exact = false; within = Float.of_int actual <= bound }

(* Theorem/lemma bounds with constants fitted to this implementation
   (measured on the E-series workloads; see EXPERIMENTS.md). The shapes
   are the paper's; the constants are ours and deliberately carry slack
   so genuine regressions — an extra pass, a quadratic blow-up — trip
   them while noise does not. *)

let consolidation ~n_blocks ~actual =
  (* Lemma 3 is exact: one read and one write per block. *)
  exact ~name:"consolidation" ~formula:"2*(N/B)" ~actual (2 * n_blocks)

let butterfly_compaction ~n_blocks ~m_blocks ~actual =
  (* Theorem 6: label pass + ceil(log2 n / g) routing phases, each
     reading and writing every block once (g = log2 of the cache
     window). *)
  let n = max 2 n_blocks in
  let w = 1 lsl Emodel.ilog2_floor (max 2 ((m_blocks + 1) / 2)) in
  let g = max 1 (Emodel.ilog2_floor w) in
  let phases = Emodel.ceil_div (Emodel.ilog2_ceil n) g in
  upper ~name:"butterfly" ~formula:"2*(N/B)*(1 + ceil(log N/B / g))"
    ~actual
    (Float.of_int (2 * n_blocks * (1 + phases)))

let twoserver_compaction ~n_blocks ~capacity ~actual =
  (* The two-server protocol is deterministic to the I/O: stage (2 N/B),
     route (N/B reads + capacity writes), deliver (2 capacity). Exact —
     any drift means the per-server schedule changed. *)
  exact ~name:"twoserver-compaction" ~formula:"3*(N/B) + 3*cap" ~actual
    ((3 * n_blocks) + (3 * capacity))

let selection ~n_blocks ~actual =
  (* Theorem 12/13: O(N/B); the recursion residues decay geometrically
     so the total stays a small multiple of the input scan. *)
  upper ~name:"selection" ~formula:"60*(N/B)" ~actual (60. *. Float.of_int n_blocks)

let quantiles ~n_blocks ~q ~actual =
  (* Theorem 17: O(N/B) for q <= m; the per-quantile work is Alice-side
     counters, not I/O, but the compaction of the interval union grows
     mildly with q. *)
  upper ~name:"quantiles" ~formula:"(60 + 2q)*(N/B)" ~actual
    ((60. +. (2. *. Float.of_int q)) *. Float.of_int n_blocks)

let loose_compaction ~n_blocks ~actual =
  (* Theorem 8: geometric halving, O(N/B). *)
  upper ~name:"loose-compaction" ~formula:"80*(N/B)" ~actual (80. *. Float.of_int n_blocks)

let sort ~n_blocks ~m_blocks ~actual =
  (* Theorem 21 targets the Aggarwal–Vitter bound. At feasible sizes the
     deterministic bitonic fallback's log² factor and the per-level
     shuffle/deal/compaction passes dominate, so the fitted constant is
     large (measured ratio ~1350 at N/B ≈ 200-1500, m = 16); the check
     still trips on an extra asymptotic factor. *)
  upper ~name:"sort" ~formula:"2000*(N/B)*log_{M/B}(N/B)" ~actual
    (2000. *. Emodel.sort_io_bound ~n_blocks ~m_blocks:(max 2 m_blocks))

let pp_verdict ppf v =
  Format.fprintf ppf "%s: %d I/Os %s %s %.0f (%s)" v.name v.actual
    (if v.within then "within" else "EXCEEDS")
    (if v.exact then "=" else "<=")
    v.bound v.formula
