(** I/O-bound assertions: check measured {!Odex_extmem.Stats} counts
    against the paper's bounds with constants fitted to this
    implementation.

    Each check returns a {!verdict} rather than raising, so harnesses
    can aggregate and report. Exact bounds ([exact = true]) must match
    to the I/O; asymptotic bounds carry deliberate slack so regressions
    (an extra pass over the data, a quadratic blow-up) trip them while
    run-to-run noise does not. *)

type verdict = {
  name : string;
  formula : string;  (** Human-readable bound formula. *)
  actual : int;  (** Measured I/O count (reads + writes). *)
  bound : float;  (** Evaluated bound. *)
  exact : bool;  (** Equality required, not just <=. *)
  within : bool;  (** The check passed. *)
}

val exact : name:string -> formula:string -> actual:int -> int -> verdict
val upper : name:string -> formula:string -> actual:int -> float -> verdict

val consolidation : n_blocks:int -> actual:int -> verdict
(** Lemma 3, exact: [2*(N/B)] — one read and one write per block. *)

val butterfly_compaction : n_blocks:int -> m_blocks:int -> actual:int -> verdict
(** Theorem 6: label pass plus one read+write of every block per routing
    phase. *)

val twoserver_compaction : n_blocks:int -> capacity:int -> actual:int -> verdict
(** The two-server tight compaction (DESIGN.md §14), exact:
    [3*(N/B) + 3*cap] — strictly below {!butterfly_compaction}'s
    [2*(N/B)*(1 + phases)] at every feasible shape. Applies to the
    k >= 2 stripe path of {!Odex.Twoserver_compaction.run} only (the
    single-server fallback is covered by the engine it dispatches
    to). *)

val selection : n_blocks:int -> actual:int -> verdict
(** Theorems 12/13: linear I/O with a fitted constant. *)

val quantiles : n_blocks:int -> q:int -> actual:int -> verdict
(** Theorem 17: linear I/O with a fitted, mildly q-dependent constant. *)

val loose_compaction : n_blocks:int -> actual:int -> verdict
(** Theorem 8: linear I/O with a fitted constant. *)

val sort : n_blocks:int -> m_blocks:int -> actual:int -> verdict
(** Theorem 21 against [c*(N/B)*log_{M/B}(N/B)] (Aggarwal–Vitter). *)

val pp_verdict : Format.formatter -> verdict -> unit
