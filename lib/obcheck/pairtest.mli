(** Pair-testing harness for obliviousness.

    The model's definition of data-obliviousness (paper §1) is
    operational: fix the coins, vary the data, and Bob — who sees only
    the sequence of block addresses and read/write directions — must see
    exactly the same thing. This harness runs a subject twice on {e
    value-disjoint} inputs of identical shape with the same seed and the
    same public parameters (N, B, m), and compares the two address-trace
    digests. On a mismatch, the labelled spans recorded by
    {!Odex_extmem.Trace.with_span} pinpoint the first phase whose ops
    diverge. *)

open Odex_extmem

type subject = {
  name : string;
  run : rng:Odex_crypto.Rng.t -> m:int -> Storage.t -> Ext_array.t -> unit;
      (** Runs the algorithm under test on an input array living in the
          given storage. All randomness must come from [rng]; [m] is
          Alice's cache budget in blocks. *)
}

type run_info = {
  trace_length : int;
  digest : int64;
  reads : int;
  writes : int;
  retries : int;
      (** Failed-and-repeated attempts (nonzero only on a faulty
          backend); they appear in the trace, so obliviousness covers
          them too. *)
  span_count : int;
  bytes_moved : int;  (** See {!Odex_extmem.Stats.bytes_moved}. *)
  batched_ios : int;  (** See {!Odex_extmem.Stats.batched_ios}. *)
  shard_ios : int array;
      (** Per-shard op counts on a [Sharded] backend ([[||]] otherwise):
          the per-device view of the adversary, compared across the pair
          alongside the logical trace. *)
  shards : int option;
      (** The backend's shard layout ({!Odex_extmem.Storage.shard_count}):
          [Some k] for a stripe of [k] members — including the
          degenerate [Some 1] — and [None] with no stripe at all. The
          two are compared across the pair explicitly, so a layout
          mismatch is flagged instead of vacuously passing on empty
          [shard_ios]. *)
  shard_digests : (int * int64) array;
      (** Per-server [(length, digest)] of each shard's own trace
          ({!Odex_extmem.Storage.shard_traces}) — the view each
          non-colluding server gets; [[||]] on unsharded backends. *)
}

type outcome = {
  subject : string;
  n_cells : int;
  b : int;
  m : int;
  backend : string;  (** Backend kind both runs executed on. *)
  oblivious : bool;
      (** The verdict: [servers_ok] and — except for a [multi_server]
          subject on a real (k >= 2) stripe — [combined_ok] too. *)
  combined_ok : bool;  (** The two logical traces are identical. *)
  servers_ok : bool;
      (** The per-server tier: shard layouts agree, every shard's own
          trace is identical across the pair, and so are the per-shard
          op counts. Trivially true on unsharded backends (both layouts
          [None], no per-server traces to compare). *)
  diverging_span : string option;
      (** On combined failure: label of the first span whose entry state
          agrees but whose exit digest differs (or a structural
          description). *)
  diverging_shard : (int * string) option;
      (** On per-server failure: the first diverging shard and the span
          label of the divergence inside that shard's trace ([-1] with a
          description when the shard layouts themselves differ). *)
  run_a : run_info;
  run_b : run_info;
}

val pair_inputs : seed:int -> n:int -> Cell.t array * Cell.t array
(** Two inputs of [n] cells with the same occupancy pattern but disjoint
    key and value ranges, drawn from independent streams. *)

val pair_inputs_isomorphic : seed:int -> n:int -> Cell.t array * Cell.t array
(** Two inputs of [n] cells with the same occupancy pattern and the same
    {e relative order} (rank-isomorphic: every pairwise comparison
    agrees across the pair) but disjoint keys and values — the shared
    rank r maps to 2r in run A and 2r+1 in run B. The right pair for
    comparison-driven subjects whose I/O schedule is a function of the
    rank sequence: trace equality then certifies the trace reveals
    nothing beyond shape and ranks, while the rank distribution itself
    is covered by {!Statcheck.trace_distribution}. *)

val check :
  ?seed:int ->
  ?backend:Storage.backend_spec ->
  ?backend_b:Storage.backend_spec ->
  ?telemetry:Odex_telemetry.Telemetry.t ->
  ?prefetch:bool ->
  ?cipher:Odex_crypto.Cipher.key ->
  ?cipher_engine:Odex_crypto.Cipher.engine ->
  ?seal_domains:int ->
  ?pair:[ `Disjoint | `Isomorphic ] ->
  ?multi_server:bool ->
  subject ->
  n_cells:int ->
  b:int ->
  m:int ->
  outcome
(** Run the subject on both inputs of a pair (both on [backend],
    default [Mem]; a [File] spec's path is shared safely — the runs are
    sequential and each storage is closed when its run ends) and compare
    traces. With a [Faulty] backend the fault schedule restarts at the
    same point for both runs, so retries must line up exactly. On a
    [Sharded] backend, [oblivious] additionally requires the whole
    per-server tier ([servers_ok]): each shard's own trace and the
    per-shard op counts must agree — every non-colluding server is an
    adversary of its own, and a leak visible on one device only (e.g. a
    data bit routed into the shard selection) never shows in the
    combined logical trace.

    [backend_b], when given, runs leg B on a different spec than leg A —
    a harness hook for {e negative controls}: pairing two stripes that
    differ only in PRP seed models an implementation that keys shard
    selection on the data, which the combined tier provably cannot see
    (the logical trace ignores routing) but the per-server tier must
    catch. Defaults to [backend].

    [multi_server] (default [false]) certifies the subject under the
    non-colluding multi-server definition (DESIGN.md §14): on a real
    (k >= 2) stripe, [oblivious] then requires only [servers_ok] — the
    combined trace of such subjects is occupancy-dependent by design —
    while on unsharded or 1-shard backends the combined tier is still
    required (where the subject must fall back to a single-server
    algorithm). Use {!Registry.multi_server} to derive it from an
    entry's certificate.

    [telemetry], when given, instruments run A {e only} — run B runs on
    the bare, unwrapped backend. [oblivious = true] therefore doubles as
    the assertion that profiling is invisible to Bob: the instrumented
    trace is bit-identical to the uninstrumented one.

    [prefetch] (default [false]) attaches the double-buffered prefetch
    worker to {e both} runs (see {!Odex_extmem.Storage.create}):
    [oblivious = true] then certifies the prefetching schedule leaks
    nothing either.

    [cipher], [cipher_engine] and [seal_domains] are forwarded to both
    runs' {!Odex_extmem.Storage.create}: sealing under a real keystream
    engine, or fanning the sealing across domains, must not move a
    single trace op (the parallel-seal parity suite runs the whole
    registry through this with [seal_domains] on and off and demands
    identical digests and [shard_ios]).

    [pair] selects the input pair: [`Disjoint] (default,
    {!pair_inputs}) for fixed-trace subjects, [`Isomorphic]
    ({!pair_inputs_isomorphic}) for subjects certified up to rank
    equivalence — see {!Registry.entry}'s [cert] field. *)

val pp_outcome : Format.formatter -> outcome -> unit
