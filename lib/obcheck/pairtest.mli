(** Pair-testing harness for obliviousness.

    The model's definition of data-obliviousness (paper §1) is
    operational: fix the coins, vary the data, and Bob — who sees only
    the sequence of block addresses and read/write directions — must see
    exactly the same thing. This harness runs a subject twice on {e
    value-disjoint} inputs of identical shape with the same seed and the
    same public parameters (N, B, m), and compares the two address-trace
    digests. On a mismatch, the labelled spans recorded by
    {!Odex_extmem.Trace.with_span} pinpoint the first phase whose ops
    diverge. *)

open Odex_extmem

type subject = {
  name : string;
  run : rng:Odex_crypto.Rng.t -> m:int -> Storage.t -> Ext_array.t -> unit;
      (** Runs the algorithm under test on an input array living in the
          given storage. All randomness must come from [rng]; [m] is
          Alice's cache budget in blocks. *)
}

type run_info = {
  trace_length : int;
  digest : int64;
  reads : int;
  writes : int;
  retries : int;
      (** Failed-and-repeated attempts (nonzero only on a faulty
          backend); they appear in the trace, so obliviousness covers
          them too. *)
  span_count : int;
  bytes_moved : int;  (** See {!Odex_extmem.Stats.bytes_moved}. *)
  batched_ios : int;  (** See {!Odex_extmem.Stats.batched_ios}. *)
  shard_ios : int array;
      (** Per-shard op counts on a [Sharded] backend ([[||]] otherwise):
          the per-device view of the adversary, compared across the pair
          alongside the logical trace. *)
}

type outcome = {
  subject : string;
  n_cells : int;
  b : int;
  m : int;
  backend : string;  (** Backend kind both runs executed on. *)
  oblivious : bool;  (** The two traces are identical. *)
  diverging_span : string option;
      (** On failure: label of the first span whose entry state agrees
          but whose exit digest differs (or a structural description). *)
  run_a : run_info;
  run_b : run_info;
}

val pair_inputs : seed:int -> n:int -> Cell.t array * Cell.t array
(** Two inputs of [n] cells with the same occupancy pattern but disjoint
    key and value ranges, drawn from independent streams. *)

val pair_inputs_isomorphic : seed:int -> n:int -> Cell.t array * Cell.t array
(** Two inputs of [n] cells with the same occupancy pattern and the same
    {e relative order} (rank-isomorphic: every pairwise comparison
    agrees across the pair) but disjoint keys and values — the shared
    rank r maps to 2r in run A and 2r+1 in run B. The right pair for
    comparison-driven subjects whose I/O schedule is a function of the
    rank sequence: trace equality then certifies the trace reveals
    nothing beyond shape and ranks, while the rank distribution itself
    is covered by {!Statcheck.trace_distribution}. *)

val check :
  ?seed:int ->
  ?backend:Storage.backend_spec ->
  ?telemetry:Odex_telemetry.Telemetry.t ->
  ?prefetch:bool ->
  ?cipher:Odex_crypto.Cipher.key ->
  ?cipher_engine:Odex_crypto.Cipher.engine ->
  ?seal_domains:int ->
  ?pair:[ `Disjoint | `Isomorphic ] ->
  subject ->
  n_cells:int ->
  b:int ->
  m:int ->
  outcome
(** Run the subject on both inputs of a pair (both on [backend],
    default [Mem]; a [File] spec's path is shared safely — the runs are
    sequential and each storage is closed when its run ends) and compare
    traces. With a [Faulty] backend the fault schedule restarts at the
    same point for both runs, so retries must line up exactly. On a
    [Sharded] backend, [oblivious] additionally requires the per-shard
    op counts ([shard_ios]) to agree — the adversary also sees which
    physical device serves each op.

    [telemetry], when given, instruments run A {e only} — run B runs on
    the bare, unwrapped backend. [oblivious = true] therefore doubles as
    the assertion that profiling is invisible to Bob: the instrumented
    trace is bit-identical to the uninstrumented one.

    [prefetch] (default [false]) attaches the double-buffered prefetch
    worker to {e both} runs (see {!Odex_extmem.Storage.create}):
    [oblivious = true] then certifies the prefetching schedule leaks
    nothing either.

    [cipher], [cipher_engine] and [seal_domains] are forwarded to both
    runs' {!Odex_extmem.Storage.create}: sealing under a real keystream
    engine, or fanning the sealing across domains, must not move a
    single trace op (the parallel-seal parity suite runs the whole
    registry through this with [seal_domains] on and off and demands
    identical digests and [shard_ios]).

    [pair] selects the input pair: [`Disjoint] (default,
    {!pair_inputs}) for fixed-trace subjects, [`Isomorphic]
    ({!pair_inputs_isomorphic}) for subjects certified up to rank
    equivalence — see {!Registry.entry}'s [cert] field. *)

val pp_outcome : Format.formatter -> outcome -> unit
