open Odex_extmem

type subject = {
  name : string;
  run : rng:Odex_crypto.Rng.t -> m:int -> Storage.t -> Ext_array.t -> unit;
}

type run_info = {
  trace_length : int;
  digest : int64;
  reads : int;
  writes : int;
  retries : int;
  span_count : int;
  bytes_moved : int;
  batched_ios : int;
  shard_ios : int array;
}

type outcome = {
  subject : string;
  n_cells : int;
  b : int;
  m : int;
  backend : string;
  oblivious : bool;
  diverging_span : string option;
  run_a : run_info;
  run_b : run_info;
}

(* A value-disjoint input pair: identical length and occupancy pattern
   (the public shape), but run A's keys and values live in [base, base +
   keyspan) with base = 0 and run B's with base = keyspan, drawn from
   independent streams — the two inputs share no key, no value, and no
   relative order. Anything Bob's trace reveals beyond the shape is a
   leak the digest comparison will catch. *)
let pair_inputs ~seed ~n =
  let shape_rng = Odex_crypto.Rng.create ~seed:(seed lxor 0x5117) in
  let occupied = Array.init n (fun _ -> Odex_crypto.Rng.int shape_rng 4 <> 0) in
  let keyspan = 4 * max 1 n in
  let fill ~rng ~base =
    Array.map
      (fun occ ->
        if occ then
          Cell.item
            ~key:(base + Odex_crypto.Rng.int rng keyspan)
            ~value:(base + Odex_crypto.Rng.int rng keyspan)
            ()
        else Cell.empty)
      occupied
  in
  let a = fill ~rng:(Odex_crypto.Rng.create ~seed:(seed lxor 0xA11CE)) ~base:0 in
  let b = fill ~rng:(Odex_crypto.Rng.create ~seed:(seed lxor 0xB0B00)) ~base:keyspan in
  (a, b)

(* A rank-isomorphic pair: same shape and same *relative order* (cell i
   of run A compares to cell j exactly as in run B), but every key and
   value is disjoint — A maps the shared rank r to 2r, B to 2r+1, both
   strictly monotone with interleaved (disjoint) images. This is the
   certificate for comparison-driven subjects whose schedule is a
   function of the rank sequence (e.g. the bucket sort's merge phase):
   trace equality here proves the trace reveals nothing beyond shape
   and ranks, and the statistical check (Statcheck.trace_distribution)
   separately proves the rank-dependence is whitened by the coins. *)
let pair_inputs_isomorphic ~seed ~n =
  let shape_rng = Odex_crypto.Rng.create ~seed:(seed lxor 0x5117) in
  let occupied = Array.init n (fun _ -> Odex_crypto.Rng.int shape_rng 4 <> 0) in
  let keyspan = 4 * max 1 n in
  let rank_rng = Odex_crypto.Rng.create ~seed:(seed lxor 0x4A11) in
  let ranks =
    Array.map (fun occ -> if occ then Odex_crypto.Rng.int rank_rng keyspan else 0) occupied
  in
  let fill ~parity =
    Array.mapi
      (fun i occ ->
        if occ then
          Cell.item ~key:((2 * ranks.(i)) + parity) ~value:((2 * ranks.(i)) + parity) ()
        else Cell.empty)
      occupied
  in
  (fill ~parity:0, fill ~parity:1)

(* One monitored run: fresh storage on the requested backend, the input
   laid out uncounted, the algorithm's coins fixed by [seed]. Returns the
   live trace (for span divergence) alongside the summary numbers. The
   storage is closed before returning so a file-backed pair can reuse one
   path for both runs. *)
let execute ?telemetry ?(prefetch = false) ?cipher ?cipher_engine ?seal_domains subject
    ~backend ~b ~m ~seed cells =
  (* Zero backoff: the harness compares traces, not wall-clock, and a
     fuzzed faulty backend injects thousands of retries per run —
     sleeping through real (if tiny) delays would dominate the suite. *)
  let s =
    Storage.create ?telemetry ?cipher ?cipher_engine ?seal_domains ~trace_mode:Trace.Digest
      ~backend ~backoff:(0., 0.) ~prefetch ~block_size:b ()
  in
  let kind = Storage.backend_kind s in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let arr = Ext_array.of_cells s ~block_size:b cells in
      let rng = Odex_crypto.Rng.create ~seed in
      subject.run ~rng ~m s arr;
      let tr = Storage.trace s and st = Storage.stats s in
      let info =
        {
          trace_length = Trace.length tr;
          digest = Trace.digest tr;
          reads = Stats.reads st;
          writes = Stats.writes st;
          retries = Stats.retries st;
          span_count = List.length (Trace.spans tr);
          bytes_moved = Stats.bytes_moved st;
          batched_ios = Stats.batched_ios st;
          shard_ios = Storage.shard_ios s;
        }
      in
      (tr, info, kind))

let check ?(seed = 0x0b5e55) ?(backend = Storage.Mem) ?telemetry ?prefetch ?cipher
    ?cipher_engine ?seal_domains ?(pair = `Disjoint) subject ~n_cells ~b ~m =
  let cells_a, cells_b =
    match pair with
    | `Disjoint -> pair_inputs ~seed ~n:n_cells
    | `Isomorphic -> pair_inputs_isomorphic ~seed ~n:n_cells
  in
  (* The sink (if any) instruments run A only, while run B stays
     uninstrumented: [oblivious = true] then also certifies that enabling
     telemetry changed not a single trace op. *)
  let tr_a, run_a, kind =
    execute ?telemetry ?prefetch ?cipher ?cipher_engine ?seal_domains subject ~backend ~b ~m
      ~seed cells_a
  in
  let tr_b, run_b, _ =
    execute ?prefetch ?cipher ?cipher_engine ?seal_domains subject ~backend ~b ~m ~seed
      cells_b
  in
  (* On a sharded backend the adversary also sees which physical device
     serves each op: the per-shard op counts must line up exactly, not
     just the logical trace. *)
  let oblivious = Trace.equal tr_a tr_b && run_a.shard_ios = run_b.shard_ios in
  let diverging_span = if oblivious then None else Trace.diverging_label tr_a tr_b in
  {
    subject = subject.name;
    n_cells;
    b;
    m;
    backend = kind;
    oblivious;
    diverging_span;
    run_a;
    run_b;
  }

let pp_outcome ppf o =
  if o.oblivious then
    Format.fprintf ppf "%s[%s]: OBLIVIOUS (%d ops, digest %016Lx, %d spans%s)" o.subject
      o.backend o.run_a.trace_length o.run_a.digest o.run_a.span_count
      (if o.run_a.retries > 0 then Printf.sprintf ", %d retries" o.run_a.retries else "")
  else
    Format.fprintf ppf "%s[%s]: TRACES DIVERGE in %s (A: %d ops %016Lx, B: %d ops %016Lx)"
      o.subject o.backend
      (Option.value o.diverging_span ~default:"<unknown>")
      o.run_a.trace_length o.run_a.digest o.run_b.trace_length o.run_b.digest
