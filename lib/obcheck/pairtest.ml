open Odex_extmem

type subject = {
  name : string;
  run : rng:Odex_crypto.Rng.t -> m:int -> Storage.t -> Ext_array.t -> unit;
}

type run_info = {
  trace_length : int;
  digest : int64;
  reads : int;
  writes : int;
  retries : int;
  span_count : int;
  bytes_moved : int;
  batched_ios : int;
  shard_ios : int array;
  shards : int option;
  shard_digests : (int * int64) array;
}

type outcome = {
  subject : string;
  n_cells : int;
  b : int;
  m : int;
  backend : string;
  oblivious : bool;
  combined_ok : bool;
  servers_ok : bool;
  diverging_span : string option;
  diverging_shard : (int * string) option;
  run_a : run_info;
  run_b : run_info;
}

(* A value-disjoint input pair: identical length and occupancy pattern
   (the public shape), but run A's keys and values live in [base, base +
   keyspan) with base = 0 and run B's with base = keyspan, drawn from
   independent streams — the two inputs share no key, no value, and no
   relative order. Anything Bob's trace reveals beyond the shape is a
   leak the digest comparison will catch. *)
let pair_inputs ~seed ~n =
  let shape_rng = Odex_crypto.Rng.create ~seed:(seed lxor 0x5117) in
  let occupied = Array.init n (fun _ -> Odex_crypto.Rng.int shape_rng 4 <> 0) in
  let keyspan = 4 * max 1 n in
  let fill ~rng ~base =
    Array.map
      (fun occ ->
        if occ then
          Cell.item
            ~key:(base + Odex_crypto.Rng.int rng keyspan)
            ~value:(base + Odex_crypto.Rng.int rng keyspan)
            ()
        else Cell.empty)
      occupied
  in
  let a = fill ~rng:(Odex_crypto.Rng.create ~seed:(seed lxor 0xA11CE)) ~base:0 in
  let b = fill ~rng:(Odex_crypto.Rng.create ~seed:(seed lxor 0xB0B00)) ~base:keyspan in
  (a, b)

(* A rank-isomorphic pair: same shape and same *relative order* (cell i
   of run A compares to cell j exactly as in run B), but every key and
   value is disjoint — A maps the shared rank r to 2r, B to 2r+1, both
   strictly monotone with interleaved (disjoint) images. This is the
   certificate for comparison-driven subjects whose schedule is a
   function of the rank sequence (e.g. the bucket sort's merge phase):
   trace equality here proves the trace reveals nothing beyond shape
   and ranks, and the statistical check (Statcheck.trace_distribution)
   separately proves the rank-dependence is whitened by the coins. *)
let pair_inputs_isomorphic ~seed ~n =
  let shape_rng = Odex_crypto.Rng.create ~seed:(seed lxor 0x5117) in
  let occupied = Array.init n (fun _ -> Odex_crypto.Rng.int shape_rng 4 <> 0) in
  let keyspan = 4 * max 1 n in
  let rank_rng = Odex_crypto.Rng.create ~seed:(seed lxor 0x4A11) in
  let ranks =
    Array.map (fun occ -> if occ then Odex_crypto.Rng.int rank_rng keyspan else 0) occupied
  in
  let fill ~parity =
    Array.mapi
      (fun i occ ->
        if occ then
          Cell.item ~key:((2 * ranks.(i)) + parity) ~value:((2 * ranks.(i)) + parity) ()
        else Cell.empty)
      occupied
  in
  (fill ~parity:0, fill ~parity:1)

(* One monitored run: fresh storage on the requested backend, the input
   laid out uncounted, the algorithm's coins fixed by [seed]. Returns the
   live trace (for span divergence) alongside the summary numbers. The
   storage is closed before returning so a file-backed pair can reuse one
   path for both runs. *)
let execute ?telemetry ?(prefetch = false) ?cipher ?cipher_engine ?seal_domains subject
    ~backend ~b ~m ~seed cells =
  (* Zero backoff: the harness compares traces, not wall-clock, and a
     fuzzed faulty backend injects thousands of retries per run —
     sleeping through real (if tiny) delays would dominate the suite. *)
  let s =
    Storage.create ?telemetry ?cipher ?cipher_engine ?seal_domains ~trace_mode:Trace.Digest
      ~backend ~backoff:(0., 0.) ~prefetch ~block_size:b ()
  in
  let kind = Storage.backend_kind s in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let arr = Ext_array.of_cells s ~block_size:b cells in
      let rng = Odex_crypto.Rng.create ~seed in
      subject.run ~rng ~m s arr;
      let tr = Storage.trace s and st = Storage.stats s in
      let shard_traces = Storage.shard_traces s in
      let info =
        {
          trace_length = Trace.length tr;
          digest = Trace.digest tr;
          reads = Stats.reads st;
          writes = Stats.writes st;
          retries = Stats.retries st;
          span_count = List.length (Trace.spans tr);
          bytes_moved = Stats.bytes_moved st;
          batched_ios = Stats.batched_ios st;
          shard_ios = Storage.shard_ios s;
          shards = Storage.shard_count s;
          shard_digests =
            Array.map (fun str -> (Trace.length str, Trace.digest str)) shard_traces;
        }
      in
      (tr, shard_traces, info, kind))

(* First shard whose per-server traces part ways, with the span label of
   the divergence — the multi-server analogue of [diverging_span]. *)
let shard_divergence strs_a strs_b =
  if Array.length strs_a <> Array.length strs_b then
    Some (-1, "per-server trace counts differ across the pair")
  else
    let rec find i =
      if i >= Array.length strs_a then None
      else if Trace.equal strs_a.(i) strs_b.(i) then find (i + 1)
      else
        Some
          (i, Option.value (Trace.diverging_label strs_a.(i) strs_b.(i)) ~default:"<unknown>")
    in
    find 0

let check ?(seed = 0x0b5e55) ?(backend = Storage.Mem) ?backend_b ?telemetry ?prefetch ?cipher
    ?cipher_engine ?seal_domains ?(pair = `Disjoint) ?(multi_server = false) subject ~n_cells
    ~b ~m =
  let backend_b = Option.value backend_b ~default:backend in
  let cells_a, cells_b =
    match pair with
    | `Disjoint -> pair_inputs ~seed ~n:n_cells
    | `Isomorphic -> pair_inputs_isomorphic ~seed ~n:n_cells
  in
  (* The sink (if any) instruments run A only, while run B stays
     uninstrumented: [oblivious = true] then also certifies that enabling
     telemetry changed not a single trace op. *)
  let tr_a, strs_a, run_a, kind =
    execute ?telemetry ?prefetch ?cipher ?cipher_engine ?seal_domains subject ~backend ~b ~m
      ~seed cells_a
  in
  let tr_b, strs_b, run_b, _ =
    execute ?prefetch ?cipher ?cipher_engine ?seal_domains subject ~backend:backend_b ~b ~m
      ~seed cells_b
  in
  let combined_ok = Trace.equal tr_a tr_b in
  (* The per-server tier: each shard is its own adversary, so each
     shard's trace must be value-independent on its own — alongside the
     per-shard op counts (the coarse view) and the shard layout itself.
     [None] (no stripe) and [Some 1] (a degenerate one-shard stripe) are
     deliberately distinct layouts: a pair that runs one leg unsharded
     and one leg on a 1-stripe is flagged, never vacuously passed. *)
  let diverging_shard =
    if run_a.shards <> run_b.shards then Some (-1, "shard layouts differ across the pair")
    else shard_divergence strs_a strs_b
  in
  let servers_ok = diverging_shard = None && run_a.shard_ios = run_b.shard_ios in
  (* A [`Multi_server]-certified subject running on a real (k >= 2)
     stripe is allowed an occupancy-dependent combined trace — that is
     the model it exploits — but every individual server must still see
     a fixed sequence. Everywhere else the combined tier is required
     too. *)
  let combined_required =
    (not multi_server) || (match run_a.shards with Some k -> k < 2 | None -> true)
  in
  let oblivious = servers_ok && ((not combined_required) || combined_ok) in
  let diverging_span = if combined_ok then None else Trace.diverging_label tr_a tr_b in
  {
    subject = subject.name;
    n_cells;
    b;
    m;
    backend = kind;
    oblivious;
    combined_ok;
    servers_ok;
    diverging_span;
    diverging_shard;
    run_a;
    run_b;
  }

let pp_outcome ppf o =
  if o.oblivious then
    Format.fprintf ppf "%s[%s]: OBLIVIOUS (%d ops, digest %016Lx, %d spans%s%s)" o.subject
      o.backend o.run_a.trace_length o.run_a.digest o.run_a.span_count
      (if o.run_a.retries > 0 then Printf.sprintf ", %d retries" o.run_a.retries else "")
      (match o.run_a.shards with
      | Some k -> Printf.sprintf ", %d servers" k
      | None -> "")
  else if not o.servers_ok then
    let shard, where = Option.value o.diverging_shard ~default:(-1, "<unknown>") in
    Format.fprintf ppf "%s[%s]: PER-SERVER TRACES DIVERGE on shard %d in %s" o.subject
      o.backend shard where
  else
    Format.fprintf ppf "%s[%s]: TRACES DIVERGE in %s (A: %d ops %016Lx, B: %d ops %016Lx)"
      o.subject o.backend
      (Option.value o.diverging_span ~default:"<unknown>")
      o.run_a.trace_length o.run_a.digest o.run_b.trace_length o.run_b.digest
