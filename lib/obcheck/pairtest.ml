open Odex_extmem

type subject = {
  name : string;
  run : rng:Odex_crypto.Rng.t -> m:int -> Storage.t -> Ext_array.t -> unit;
}

type run_info = {
  trace_length : int;
  digest : int64;
  reads : int;
  writes : int;
  span_count : int;
}

type outcome = {
  subject : string;
  n_cells : int;
  b : int;
  m : int;
  oblivious : bool;
  diverging_span : string option;
  run_a : run_info;
  run_b : run_info;
}

(* A value-disjoint input pair: identical length and occupancy pattern
   (the public shape), but run A's keys and values live in [base, base +
   keyspan) with base = 0 and run B's with base = keyspan, drawn from
   independent streams — the two inputs share no key, no value, and no
   relative order. Anything Bob's trace reveals beyond the shape is a
   leak the digest comparison will catch. *)
let pair_inputs ~seed ~n =
  let shape_rng = Odex_crypto.Rng.create ~seed:(seed lxor 0x5117) in
  let occupied = Array.init n (fun _ -> Odex_crypto.Rng.int shape_rng 4 <> 0) in
  let keyspan = 4 * max 1 n in
  let fill ~rng ~base =
    Array.map
      (fun occ ->
        if occ then
          Cell.item
            ~key:(base + Odex_crypto.Rng.int rng keyspan)
            ~value:(base + Odex_crypto.Rng.int rng keyspan)
            ()
        else Cell.empty)
      occupied
  in
  let a = fill ~rng:(Odex_crypto.Rng.create ~seed:(seed lxor 0xA11CE)) ~base:0 in
  let b = fill ~rng:(Odex_crypto.Rng.create ~seed:(seed lxor 0xB0B00)) ~base:keyspan in
  (a, b)

(* One monitored run: fresh storage, the input laid out uncounted, the
   algorithm's coins fixed by [seed]. Returns the live trace (for span
   divergence) alongside the summary numbers. *)
let execute subject ~b ~m ~seed cells =
  let s = Storage.create ~trace_mode:Trace.Digest ~block_size:b () in
  let arr = Ext_array.of_cells s ~block_size:b cells in
  let rng = Odex_crypto.Rng.create ~seed in
  subject.run ~rng ~m s arr;
  let tr = Storage.trace s and st = Storage.stats s in
  let info =
    {
      trace_length = Trace.length tr;
      digest = Trace.digest tr;
      reads = Stats.reads st;
      writes = Stats.writes st;
      span_count = List.length (Trace.spans tr);
    }
  in
  (tr, info)

let check ?(seed = 0x0b5e55) subject ~n_cells ~b ~m =
  let cells_a, cells_b = pair_inputs ~seed ~n:n_cells in
  let tr_a, run_a = execute subject ~b ~m ~seed cells_a in
  let tr_b, run_b = execute subject ~b ~m ~seed cells_b in
  let oblivious = Trace.equal tr_a tr_b in
  let diverging_span = if oblivious then None else Trace.diverging_label tr_a tr_b in
  { subject = subject.name; n_cells; b; m; oblivious; diverging_span; run_a; run_b }

let pp_outcome ppf o =
  if o.oblivious then
    Format.fprintf ppf "%s: OBLIVIOUS (%d ops, digest %016Lx, %d spans)" o.subject
      o.run_a.trace_length o.run_a.digest o.run_a.span_count
  else
    Format.fprintf ppf "%s: TRACES DIVERGE in %s (A: %d ops %016Lx, B: %d ops %016Lx)"
      o.subject
      (Option.value o.diverging_span ~default:"<unknown>")
      o.run_a.trace_length o.run_a.digest o.run_b.trace_length o.run_b.digest
