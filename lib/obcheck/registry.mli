(** The catalogue of pair-testable subjects: every top-level algorithm
    of the paper (consolidation, butterfly and tight compaction, loose
    and log*-round compaction, selection, quantiles, sorting) plus the
    three ORAM constructions, each with a default shape (N, B, m) big
    enough to leave its in-cache base case. *)

type cert = [ `Exact | `Isomorphic | `Multi_server ]
(** How a subject's obliviousness is certified: [`Exact] subjects have a
    fixed trace across value-disjoint inputs ({!Pairtest.pair_inputs});
    [`Isomorphic] subjects (comparison-driven schedules, e.g. the bucket
    sort's merge) are pair-tested on rank-isomorphic inputs
    ({!Pairtest.pair_inputs_isomorphic}) and additionally certified
    statistically by {!Statcheck.trace_distribution}; [`Multi_server]
    subjects are oblivious per non-colluding server only (DESIGN.md
    §14): on a k >= 2 stripe every individual shard trace must be fixed
    while the combined trace may depend on occupancy, and on
    single-server backends they must fall back to a fully oblivious
    algorithm (pass [Pairtest.check ~multi_server:true]). *)

type entry = {
  subject : Pairtest.subject;
  n_cells : int;
  b : int;
  m : int;
  cert : cert;  (** Pair mode every harness must use for this subject. *)
}

val consolidation : Pairtest.subject
val butterfly : Pairtest.subject
val tight_compaction : Pairtest.subject
val loose_compaction : Pairtest.subject
val twoserver_compaction : Pairtest.subject
val logstar_compaction : Pairtest.subject
val selection : Pairtest.subject
val quantiles : Pairtest.subject
val sort : Pairtest.subject
val bucket_sort : Pairtest.subject
val oblivious_permutation : Pairtest.subject
val linear_oram : Pairtest.subject
val sqrt_oram : Pairtest.subject
val hierarchical_oram : Pairtest.subject

val all : entry list
val find : string -> entry option

val pair_mode : entry -> [ `Disjoint | `Isomorphic ]
(** The {!Pairtest.check} [pair] argument mandated by the entry's
    [cert]. *)

val multi_server : entry -> bool
(** Whether the entry carries the [`Multi_server] certificate — pass it
    as {!Pairtest.check}'s [multi_server] argument so the verdict
    applies the right tier on sharded backends. *)

val backend_names : string list
(** ["mem"; "file"; "faulty"] — every storage backend the obliviousness
    suite must pass on. *)

val backend_spec :
  ?seed:int ->
  ?failure_rate:float ->
  ?shards:int ->
  ?journal:bool ->
  string ->
  Odex_extmem.Storage.backend_spec
(** A fresh spec for a named backend: "file" gets its own temp path
    (clean up with {!Odex_extmem.Storage.remove_spec_files}); "faulty"
    injects deterministic transient faults over a [Mem] inner store at
    [failure_rate] (default 0.05, seed [0xFA17]).

    [shards] (default 1) > 1 stripes the store across that many inner
    devices ({!Odex_extmem.Storage.backend_spec.Sharded}, PRP seed
    [0x5A4D]). The faulty decorator composes {e outside} the stripe so
    the fault schedule — and therefore the full trace, retries included
    — is bit-identical at every shard count.

    [journal] (default false) wraps the finished spec in the
    write-ahead journal ({!Odex_extmem.Storage.backend_spec.Journaled},
    own temp side file, durable commits) as the outermost decorator;
    [remove_spec_files] cleans the journal up with the store. *)
