(** Hierarchical oblivious RAM (Goldreich–Ostrovsky [22]), rebuilt with
    the library's data-oblivious sorts — the construction whose "inner
    loop" the paper's sorting result accelerates.

    Geometry: a stash of S blocks scanned on every access, above levels
    ℓ = 1..L where level ℓ is a hash table of 2^ℓ buckets × Z blocks.
    An access scans the stash, then probes one bucket per non-empty
    level — the real bucket h_ℓ(addr) until the word is found, uniform
    dummy buckets after — and appends the (re-encrypted, possibly
    updated) word to the stash. Every S accesses the stash and levels
    1..ℓ−1 are merged into level ℓ (ℓ chosen by the usual
    binary-counter schedule), with the whole merge done obliviously:

    + one oblivious sort by (address, newest-timestamp-first) and a
      streaming deduplication scan;
    + bucket assignment under a fresh per-epoch PRF key, one oblivious
      sort by (bucket, reals-before-fillers) over the candidates plus
      Z fillers per bucket, a streaming keep-first-Z scan, and one
      butterfly tight compaction (Theorem 6) that leaves every bucket
      exactly Z blocks, aligned.

    The rebuild is two sorts plus linear passes, so its cost — and
    therefore the ORAM's amortized overhead — scales directly with the
    oblivious sort used, which is what experiment E10 measures.

    Failure: a bucket receiving more than Z = Θ(log n) words overflows
    (probability poly(1/n)); the loss is recorded and surfaced through
    {!healthy}, never through the trace. *)

open Odex_extmem

type t

val init :
  ?sorter:Odex_sortnet.Ext_sort.t ->
  ?bucket_size:int ->
  m:int ->
  rng:Odex_crypto.Rng.t ->
  Storage.t ->
  values:int array ->
  t
(** [bucket_size] defaults to max(4, ⌈log₂ n⌉ + 2); the stash period S
    equals the bucket size.

    On a journaled store, [init] additionally persists a session
    snapshot (geometry, counters, per-level epoch keys and occupancy,
    rng state) in a small sealed metadata region, registered under the
    ["oram-session"] owner of the store's checkpoint table, and every
    rebuild refreshes it — enabling {!resume}. One ORAM session per
    store: a second [init] on the same journaled store replaces the
    session slot. *)

val resume : ?sorter:Odex_sortnet.Ext_sort.t -> Storage.t -> t option
(** [resume storage] re-enters the ORAM session persisted on a journaled
    store, or returns [None] when the store carries no ["oram-session"]
    checkpoint (unjournaled store, or no {!init} ever committed).

    The restored session is the state at the last committed rebuild
    boundary (every rebuild, and [init] itself, is such a boundary);
    accesses made after that boundary were never durably checkpointed
    and are rolled back together with the journal tail. If a rebuild was
    in flight at the crash, [resume] finishes it from its own
    checkpointed phase — re-attaching the same scratch region and
    re-drawing the same epoch key from the snapshotted rng state —
    instead of restarting the session, so the rebuild's committed work
    (including inner-sort phases checkpointed under their own owners) is
    never repeated.

    [sorter] must be the sorter the crashed session ran with: inner-sort
    phase checkpoints are only sound against the same schedule. Raises
    [Invalid_argument] if the session metadata fails validation. *)

val size : t -> int
val levels : t -> int
val bucket_size : t -> int

val read : t -> int -> int
val write : t -> int -> int -> unit

val accesses : t -> int
val rebuilds : t -> int

val healthy : t -> bool
(** False iff some rebuild overflowed a bucket (and dropped words). *)
