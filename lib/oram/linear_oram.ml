open Odex_extmem

type t = { main : Ext_array.t; n : int; mutable accesses : int }

let init storage ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Linear_oram.init: empty";
  let cells = Array.mapi (fun i v -> Cell.item ~key:i ~value:v ()) values in
  let b = Storage.block_size storage in
  (* One virtual word per block: pad each item into its own block. *)
  let main = Ext_array.create storage ~blocks:n in
  Array.iteri
    (fun i c ->
      let blk = Block.make b in
      blk.(0) <- c;
      Storage.unchecked_poke storage (Ext_array.addr main i) blk)
    cells;
  { main; n; accesses = 0 }

let size t = t.n

(* Read and rewrite every block; mutate only the target. *)
let access t addr ~update =
  if addr < 0 || addr >= t.n then invalid_arg "Linear_oram: address out of range";
  t.accesses <- t.accesses + 1;
  let result = ref 0 in
  Ext_array.with_span t.main "linear-oram.scan" (fun () ->
      for i = 0 to t.n - 1 do
        let blk = Ext_array.read_block t.main i in
        (match blk.(0) with
        | Cell.Item it when it.key = addr ->
            result := it.value;
            let v = match update with None -> it.value | Some v -> v in
            blk.(0) <- Cell.Item { it with value = v }
        | _ -> ());
        Ext_array.write_block t.main i blk
      done);
  !result

let read t addr = access t addr ~update:None
let write t addr v = ignore (access t addr ~update:(Some v))

let accesses t = t.accesses
