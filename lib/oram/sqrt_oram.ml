open Odex_extmem

type t = {
  storage : Storage.t;
  sorter : Odex_sortnet.Ext_sort.t;
  m : int;
  rng : Odex_crypto.Rng.t;
  n : int;
  sqrt_n : int;
  main : Ext_array.t; (* n + sqrt_n permuted blocks, one word each *)
  shelter : Ext_array.t; (* sqrt_n blocks *)
  scratch : Ext_array.t; (* n + 2·sqrt_n blocks for reshuffles *)
  mutable prp : Odex_crypto.Prp.t;
  mutable step : int; (* accesses in the current epoch *)
  mutable dummy_cursor : int;
  mutable accesses : int;
  mutable epochs : int;
}

let isqrt n =
  let rec go s = if s * s >= n then s else go (s + 1) in
  go 1

let word ~addr ~value = Cell.item ~key:addr ~value ()

(* One virtual word per block, replicated across all B cells: the epoch
   reshuffles sort at cell granularity, and B identical cells per word
   keep every word block-aligned through the sorts. *)
let full_block t cell = Array.make (Storage.block_size t.storage) cell

let put_word t arr i cell = Ext_array.write_block arr i (full_block t cell)

let init ?(sorter = Odex_sortnet.Ext_sort.auto) ~m ~rng storage ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Sqrt_oram.init: empty";
  let sqrt_n = isqrt n in
  let main = Ext_array.create storage ~blocks:(n + sqrt_n) in
  let shelter = Ext_array.create storage ~blocks:sqrt_n in
  let scratch = Ext_array.create storage ~blocks:(n + (2 * sqrt_n)) in
  let prp = Odex_crypto.Prp.create ~domain:(n + sqrt_n) (Odex_crypto.Prf.fresh_key rng) in
  let t =
    {
      storage;
      sorter;
      m;
      rng;
      n;
      sqrt_n;
      main;
      shelter;
      scratch;
      prp;
      step = 0;
      dummy_cursor = 0;
      accesses = 0;
      epochs = 0;
    }
  in
  (* Initial placement: position p holds the word π⁻¹(p); dummies are the
     virtual addresses n … n+√n−1. Setup writes are uncounted, like the
     problem inputs elsewhere. *)
  let b = Storage.block_size storage in
  for p = 0 to n + sqrt_n - 1 do
    let addr = Odex_crypto.Prp.inverse prp p in
    let value = if addr < n then values.(addr) else 0 in
    Storage.unchecked_poke storage (Ext_array.addr main p) (Array.make b (word ~addr ~value))
  done;
  t

let size t = t.n

(* End of epoch: merge main and shelter into scratch with version tags,
   sort (address, newest-first), deduplicate with one rewriting scan,
   re-permute under a fresh π, copy back, clear the shelter. *)
let reshuffle t =
  Ext_array.with_span t.main "sqrt-oram.reshuffle" @@ fun () ->
  t.epochs <- t.epochs + 1;
  let total = t.n + (2 * t.sqrt_n) in
  for p = 0 to t.n + t.sqrt_n - 1 do
    let blk = Ext_array.read_block t.main p in
    put_word t t.scratch p (Cell.with_tag blk.(0) 0)
  done;
  for j = 0 to t.sqrt_n - 1 do
    let blk = Ext_array.read_block t.shelter j in
    (* Newest versions first after the sort: tag = -(j+1). *)
    put_word t t.scratch (t.n + t.sqrt_n + j) (Cell.with_tag blk.(0) (-(j + 1)))
  done;
  Odex_sortnet.Ext_sort.run t.sorter ~m:t.m t.scratch;
  (* Deduplicating scan: keep the first (newest) copy of each address. *)
  let prev = ref min_int in
  for p = 0 to total - 1 do
    let blk = Ext_array.read_block t.scratch p in
    let out =
      match blk.(0) with
      | Cell.Empty -> blk
      | Cell.Item it ->
          if it.key = !prev then full_block t Cell.Empty
          else begin
            prev := it.key;
            full_block t (Cell.Item { it with tag = 0 })
          end
    in
    Ext_array.write_block t.scratch p out
  done;
  (* Fresh permutation; sort by π'(address), empties last. *)
  let prp' = Odex_crypto.Prp.create ~domain:(t.n + t.sqrt_n) (Odex_crypto.Prf.fresh_key t.rng) in
  let cmp c1 c2 =
    match (c1, c2) with
    | Cell.Empty, Cell.Empty -> 0
    | Cell.Empty, Cell.Item _ -> 1
    | Cell.Item _, Cell.Empty -> -1
    | Cell.Item x, Cell.Item y ->
        compare (Odex_crypto.Prp.apply prp' x.key) (Odex_crypto.Prp.apply prp' y.key)
  in
  Odex_sortnet.Ext_sort.run t.sorter ~cmp ~m:t.m t.scratch;
  for p = 0 to t.n + t.sqrt_n - 1 do
    let blk = Ext_array.read_block t.scratch p in
    Ext_array.write_block t.main p blk
  done;
  let b = Storage.block_size t.storage in
  for j = 0 to t.sqrt_n - 1 do
    Ext_array.write_block t.shelter j (Block.make b)
  done;
  t.prp <- prp';
  t.step <- 0;
  t.dummy_cursor <- 0

let access t addr ~update =
  if addr < 0 || addr >= t.n then invalid_arg "Sqrt_oram: address out of range";
  t.accesses <- t.accesses + 1;
  (* 1. Scan the shelter (newest wins). *)
  let sheltered = ref None in
  Ext_array.with_span t.shelter "sqrt-oram.shelter-scan" (fun () ->
      for j = 0 to t.sqrt_n - 1 do
        let blk = Ext_array.read_block t.shelter j in
        match blk.(0) with
        | Cell.Item it when it.key = addr -> sheltered := Some it.value
        | _ -> ()
      done);
  (* 2. Probe main: the real position, or a fresh dummy if sheltered. *)
  let probe_addr =
    match !sheltered with
    | Some _ ->
        let d = t.n + t.dummy_cursor in
        t.dummy_cursor <- t.dummy_cursor + 1;
        d
    | None -> addr
  in
  let pos = Odex_crypto.Prp.apply t.prp probe_addr in
  let from_main =
    Ext_array.with_span t.main "sqrt-oram.probe" (fun () ->
        let blk = Ext_array.read_block t.main pos in
        let found =
          match blk.(0) with Cell.Item it when it.key = addr -> Some it.value | _ -> None
        in
        Ext_array.write_block t.main pos blk;
        found)
  in
  let current =
    match (!sheltered, from_main) with
    | Some v, _ -> v
    | None, Some v -> v
    | None, None -> invalid_arg "Sqrt_oram: word not found (corrupted state)"
  in
  let stored = match update with None -> current | Some v -> v in
  (* 3. Append to the shelter. *)
  put_word t t.shelter t.step (word ~addr ~value:stored);
  t.step <- t.step + 1;
  if t.step >= t.sqrt_n then reshuffle t;
  current

let read t addr = access t addr ~update:None
let write t addr v = ignore (access t addr ~update:(Some v))

let accesses t = t.accesses
let epochs t = t.epochs
