open Odex_extmem

type level = {
  region : Ext_array.t; (* 2^l * z blocks, one word per block *)
  mutable key : Odex_crypto.Prf.key; (* epoch hash key *)
  mutable occupied : bool;
}

type t = {
  storage : Storage.t;
  sorter : Odex_sortnet.Ext_sort.t;
  m : int;
  rng : Odex_crypto.Rng.t;
  n : int;
  z : int; (* bucket size; also the stash period S *)
  l : int; (* number of levels *)
  stash : Ext_array.t; (* z blocks *)
  levels : level array; (* index 0 = level 1 *)
  mutable t_counter : int; (* accesses so far *)
  mutable rebuild_count : int;
  mutable healthy : bool;
}

let filler_key = max_int

let full_block t cell = Array.make (Storage.block_size t.storage) cell

let put_word t arr i cell = Ext_array.write_block arr i (full_block t cell)

let buckets_of_level l = 1 lsl (l + 1)
(* levels array is 0-indexed; level index l holds 2^(l+1) buckets. *)

let bucket_of t level_idx addr =
  Odex_crypto.Prf.to_range t.levels.(level_idx).key addr
    ~bound:(buckets_of_level level_idx)

let init ?(sorter = Odex_sortnet.Ext_sort.auto) ?bucket_size ~m ~rng storage ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Hierarchical_oram.init: empty";
  let z =
    match bucket_size with
    | Some z -> max 2 z
    | None -> max 4 (Emodel.ilog2_ceil (max 2 n) + 2)
  in
  (* Level indices 0..l-1; bottom level must hold all n words:
     capacity of level idx is z * 2^idx words. *)
  let l =
    let rec go idx = if z * (1 lsl idx) >= 2 * n then idx + 1 else go (idx + 1) in
    go 0
  in
  let stash = Ext_array.create storage ~blocks:z in
  let levels =
    Array.init l (fun idx ->
        {
          region = Ext_array.create storage ~blocks:(buckets_of_level idx * z);
          key = Odex_crypto.Prf.fresh_key rng;
          occupied = false;
        })
  in
  let t =
    {
      storage;
      sorter;
      m;
      rng;
      n;
      z;
      l;
      stash;
      levels;
      t_counter = 0;
      rebuild_count = 0;
      healthy = true;
    }
  in
  (* Private initial placement into the bottom level, retrying the epoch
     key until no bucket overflows (setup only). *)
  let bottom = levels.(l - 1) in
  let buckets = buckets_of_level (l - 1) in
  let rec place attempts =
    if attempts > 50 then invalid_arg "Hierarchical_oram.init: could not place (z too small)";
    let counts = Array.make buckets 0 in
    let ok = ref true in
    Array.iteri
      (fun addr _ ->
        let b = Odex_crypto.Prf.to_range bottom.key addr ~bound:buckets in
        counts.(b) <- counts.(b) + 1;
        if counts.(b) > z then ok := false)
      values;
    if not !ok then begin
      bottom.key <- Odex_crypto.Prf.fresh_key rng;
      place (attempts + 1)
    end
  in
  place 0;
  let cursors = Array.make buckets 0 in
  Array.iteri
    (fun addr value ->
      let b = Odex_crypto.Prf.to_range bottom.key addr ~bound:buckets in
      let slot = (b * z) + cursors.(b) in
      cursors.(b) <- cursors.(b) + 1;
      Storage.unchecked_poke storage
        (Ext_array.addr bottom.region slot)
        (Array.make (Storage.block_size storage) (Cell.item ~tag:0 ~key:addr ~value ())))
    values;
  bottom.occupied <- true;
  t

let size t = t.n
let levels t = t.l
let bucket_size t = t.z
let accesses t = t.t_counter
let rebuilds t = t.rebuild_count
let healthy t = t.healthy

(* ------------------------------------------------------------------ *)
(* Rebuild: merge the stash and levels 0..upto-1 (inclusive of the
   target when it is occupied, which happens at the bottom) into level
   [upto]. *)

let clear_array t arr =
  let b = Storage.block_size t.storage in
  for i = 0 to Ext_array.blocks arr - 1 do
    Ext_array.write_block arr i (Block.make b)
  done

let rebuild t upto =
  Ext_array.with_span t.stash "hier-oram.rebuild" @@ fun () ->
  t.rebuild_count <- t.rebuild_count + 1;
  let target = t.levels.(upto) in
  let buckets = buckets_of_level upto in
  let sources =
    t.stash
    :: List.filter_map
         (fun idx ->
           let lv = t.levels.(idx) in
           if lv.occupied && (idx < upto || idx = upto) then Some lv.region else None)
         (List.init (upto + 1) (fun i -> i))
  in
  let candidate_blocks = List.fold_left (fun acc a -> acc + Ext_array.blocks a) 0 sources in
  let scratch =
    Ext_array.create t.storage ~blocks:(candidate_blocks + (buckets * t.z))
  in
  (* On a journaled store, stamp a rebuild-level checkpoint before the
     gather: it commits everything written so far (bounding replay work
     after a crash mid-rebuild) and, because the store holds a single
     checkpoint slot, it clobbers any ext-sort phase slot left by a
     previously killed rebuild — so re-driving this rebuild can never
     wrongly skip sort phases against a fresh scratch array. Full ORAM
     session resume (the in-memory level/stash structure) is out of
     scope here; see ROADMAP. *)
  if Storage.journaled t.storage then
    Storage.checkpoint t.storage ~owner:"oram-rebuild" ~phase:t.rebuild_count ~cursor:upto;
  (* 1. Gather all candidate words, stamping each with its source's age
     so the dedup keeps the newest copy: stash words carry positive
     access-counter timestamps, level-idx words get -(idx+1) (shallower
     = newer). *)
  let cursor = ref 0 in
  List.iteri
    (fun src_pos src ->
      for i = 0 to Ext_array.blocks src - 1 do
        let blk = Ext_array.read_block src i in
        let cell =
          if src_pos = 0 then blk.(0) (* stash: keep its timestamp *)
          else Cell.with_tag blk.(0) (-src_pos)
        in
        put_word t scratch !cursor cell;
        incr cursor
      done)
    sources;
  (* Pre-placed fillers: z per bucket, sorting after the reals of their
     bucket (same aux, larger key). *)
  let fresh_key = Odex_crypto.Prf.fresh_key t.rng in
  for b = 0 to buckets - 1 do
    for j = 0 to t.z - 1 do
      put_word t scratch
        (candidate_blocks + (b * t.z) + j)
        (Cell.item ~aux:b ~key:filler_key ~value:0 ())
    done
  done;
  (* 2. Deduplicate: sort by (address, newest first); timestamps ride in
     [tag]. Fillers (key = max_int) sort to the end and survive. *)
  let cmp_dedup c1 c2 =
    match (c1, c2) with
    | Cell.Empty, Cell.Empty -> 0
    | Cell.Empty, Cell.Item _ -> 1
    | Cell.Item _, Cell.Empty -> -1
    | Cell.Item x, Cell.Item y ->
        let c = compare x.key y.key in
        if c <> 0 then c else compare y.tag x.tag
  in
  Odex_sortnet.Ext_sort.run t.sorter ~cmp:cmp_dedup ~m:t.m scratch;
  let prev = ref min_int in
  for i = 0 to Ext_array.blocks scratch - 1 do
    let blk = Ext_array.read_block scratch i in
    let out =
      match blk.(0) with
      | Cell.Empty -> blk
      | Cell.Item it when it.key = filler_key -> blk
      | Cell.Item it ->
          if it.key = !prev then full_block t Cell.Empty
          else begin
            prev := it.key;
            (* Assign the epoch bucket while we hold the block. *)
            let b = Odex_crypto.Prf.to_range fresh_key it.key ~bound:buckets in
            full_block t (Cell.Item { it with tag = 0; aux = b })
          end
    in
    Ext_array.write_block scratch i out
  done;
  (* 3. Group by bucket (reals before fillers via the key tiebreak),
     keep the first z entries of every bucket, and compact: each bucket
     ends up exactly z aligned blocks. *)
  Odex_sortnet.Ext_sort.run t.sorter ~cmp:Cell.compare_by_aux ~m:t.m scratch;
  let cur_bucket = ref (-1) in
  let in_bucket = ref 0 in
  for i = 0 to Ext_array.blocks scratch - 1 do
    let blk = Ext_array.read_block scratch i in
    let out =
      match blk.(0) with
      | Cell.Empty -> blk
      | Cell.Item it ->
          if it.aux <> !cur_bucket then begin
            cur_bucket := it.aux;
            in_bucket := 0
          end;
          incr in_bucket;
          if !in_bucket <= t.z then blk
          else begin
            (* Overflowing a bucket can only drop fillers unless the
               bucket held more than z real words — the failure event. *)
            if it.key <> filler_key then t.healthy <- false;
            full_block t Cell.Empty
          end
    in
    Ext_array.write_block scratch i out
  done;
  let occupied = Odex.Butterfly.compact ~m:t.m scratch in
  if occupied <> buckets * t.z then t.healthy <- false;
  (* 4. Install: fillers become empty slots; clear the merged sources. *)
  for i = 0 to (buckets * t.z) - 1 do
    let blk = Ext_array.read_block scratch i in
    let out =
      match blk.(0) with
      | Cell.Item it when it.key = filler_key -> Block.make (Storage.block_size t.storage)
      | Cell.Item it -> full_block t (Cell.Item { it with aux = 0 })
      | Cell.Empty -> Block.make (Storage.block_size t.storage)
    in
    Ext_array.write_block target.region i out
  done;
  target.key <- fresh_key;
  target.occupied <- true;
  clear_array t t.stash;
  for idx = 0 to upto - 1 do
    if t.levels.(idx).occupied then begin
      clear_array t t.levels.(idx).region;
      t.levels.(idx).occupied <- false
    end
  done;
  (* Rebuild complete and installed: clear the slot (also a commit, so
     the install itself is now crash-durable). *)
  if Storage.journaled t.storage then
    Storage.checkpoint t.storage ~owner:"oram-rebuild" ~phase:0 ~cursor:0

(* ------------------------------------------------------------------ *)

let trailing_zeros v =
  let rec go v acc = if v land 1 = 1 then acc else go (v lsr 1) (acc + 1) in
  if v = 0 then 62 else go v 0

let access t addr ~update =
  if addr < 0 || addr >= t.n then invalid_arg "Hierarchical_oram: address out of range";
  (* 1. Scan the stash (newest wins: later slots are newer). *)
  let found = ref None in
  Ext_array.with_span t.stash "hier-oram.stash-scan" (fun () ->
      for j = 0 to t.z - 1 do
        let blk = Ext_array.read_block t.stash j in
        match blk.(0) with
        | Cell.Item it when it.key = addr -> found := Some it.value
        | _ -> ()
      done);
  (* 2. Probe one bucket per occupied level: the real one until found,
     uniform dummies after. *)
  Ext_array.with_span t.stash "hier-oram.probe" (fun () ->
      for idx = 0 to t.l - 1 do
        if t.levels.(idx).occupied then begin
          let buckets = buckets_of_level idx in
          let b =
            match !found with
            | Some _ -> Odex_crypto.Rng.int t.rng buckets
            | None -> bucket_of t idx addr
          in
          for j = 0 to t.z - 1 do
            let blk = Ext_array.read_block t.levels.(idx).region ((b * t.z) + j) in
            match blk.(0) with
            | Cell.Item it when it.key = addr && !found = None -> found := Some it.value
            | _ -> ()
          done
        end
      done);
  let current =
    match !found with
    | Some v -> v
    | None -> invalid_arg "Hierarchical_oram: word not found (corrupted state)"
  in
  let stored = match update with None -> current | Some v -> v in
  (* 3. Append to the stash with the access counter as its version. *)
  let slot = t.t_counter mod t.z in
  put_word t t.stash slot (Cell.item ~tag:(t.t_counter + 1) ~key:addr ~value:stored ());
  t.t_counter <- t.t_counter + 1;
  (* 4. Binary-counter rebuild schedule. *)
  if t.t_counter mod t.z = 0 then begin
    let v = t.t_counter / t.z in
    let upto = min (t.l - 1) (trailing_zeros v) in
    rebuild t upto
  end;
  current

let read t addr = access t addr ~update:None
let write t addr v = ignore (access t addr ~update:(Some v))
