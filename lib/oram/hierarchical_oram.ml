open Odex_extmem

type level = {
  region : Ext_array.t; (* 2^l * z blocks, one word per block *)
  mutable key : Odex_crypto.Prf.key; (* epoch hash key *)
  mutable occupied : bool;
}

type t = {
  storage : Storage.t;
  sorter : Odex_sortnet.Ext_sort.t;
  m : int;
  rng : Odex_crypto.Rng.t;
  n : int;
  z : int; (* bucket size; also the stash period S *)
  l : int; (* number of levels *)
  stash : Ext_array.t; (* z blocks *)
  levels : level array; (* index 0 = level 1 *)
  mutable t_counter : int; (* accesses so far *)
  mutable rebuild_count : int;
  mutable healthy : bool;
  meta_base : int;
      (* Base of the persisted session-metadata region on a journaled
         store; -1 when the store is unjournaled (no session state). *)
}

let filler_key = max_int

let full_block t cell = Array.make (Storage.block_size t.storage) cell

let put_word t arr i cell = Ext_array.write_block arr i (full_block t cell)

let buckets_of_level l = 1 lsl (l + 1)
(* levels array is 0-indexed; level index l holds 2^(l+1) buckets. *)

let bucket_of t level_idx addr =
  Odex_crypto.Prf.to_range t.levels.(level_idx).key addr
    ~bound:(buckets_of_level level_idx)

(* ------------------------------------------------------------------ *)
(* Session persistence (journaled stores only).

   The whole session — geometry, counters, per-level epoch keys and
   occupancy, and the rng state — fits in a few dozen words, persisted
   as ordinary (sealed) blocks in a region allocated at init and pointed
   to by the "oram-session" slot of the journal's checkpoint table. The
   writes are uncounted server-side pokes inside one atomic group, made
   durable by the next checkpoint commit, so journaling the session
   changes no counted trace. A crashed process re-enters through
   {!resume}: it re-reads the snapshot, re-attaches every region by
   address, and — when a rebuild was in flight — re-runs the rebuild
   from its own checkpointed phase, re-drawing the same epoch key
   because the snapshot holds the pre-draw rng state.

   Word layout (one word per cell, [value] field, [key] = index):
     0 magic   1 version   2 n   3 z   4 l   5 m
     6 t_counter   7 rebuild_count   8/9 rng state (lo/hi 32)
     10 healthy   11 in-flight rebuild target (-1 = none)   12 stash base
     13 + 4*idx.. per level: region base, occupied, key lo/hi 32. *)

let session_owner = "oram-session"
let rebuild_owner = "oram-rebuild"
let meta_magic = 0x0DE05E55
let meta_version = 1

let meta_words l = 13 + (4 * l)

let split64 v =
  ( Int64.to_int (Int64.logand v 0xFFFFFFFFL),
    Int64.to_int (Int64.shift_right_logical v 32) )

let join64 lo hi = Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let persist_meta t ~inflight =
  if t.meta_base >= 0 then begin
    let words = meta_words t.l in
    let vals = Array.make words 0 in
    let rng_lo, rng_hi = split64 (Odex_crypto.Rng.state t.rng) in
    vals.(0) <- meta_magic;
    vals.(1) <- meta_version;
    vals.(2) <- t.n;
    vals.(3) <- t.z;
    vals.(4) <- t.l;
    vals.(5) <- t.m;
    vals.(6) <- t.t_counter;
    vals.(7) <- t.rebuild_count;
    vals.(8) <- rng_lo;
    vals.(9) <- rng_hi;
    vals.(10) <- (if t.healthy then 1 else 0);
    vals.(11) <- inflight;
    vals.(12) <- Ext_array.base t.stash;
    Array.iteri
      (fun idx lv ->
        let o = 13 + (4 * idx) in
        let k_lo, k_hi = split64 (Odex_crypto.Prf.key_to_raw lv.key) in
        vals.(o) <- Ext_array.base lv.region;
        vals.(o + 1) <- (if lv.occupied then 1 else 0);
        vals.(o + 2) <- k_lo;
        vals.(o + 3) <- k_hi)
      t.levels;
    let b = Storage.block_size t.storage in
    (* One atomic group: the snapshot becomes durable only as a whole,
       at the next commit boundary (the adjacent checkpoint). *)
    Storage.atomically t.storage (fun () ->
        for blk = 0 to ((words + b - 1) / b) - 1 do
          let cells =
            Array.init b (fun i ->
                let j = (blk * b) + i in
                if j < words then Cell.item ~key:j ~value:vals.(j) () else Cell.empty)
          in
          Storage.unchecked_poke t.storage (t.meta_base + blk) cells
        done)
  end

(* Update just the healthy word — called inside a rebuild phase so the
   phase's own checkpoint commits it: an overflow detected by a scan is
   never lost to a crash after that scan's phase committed. *)
let persist_healthy t =
  if t.meta_base >= 0 then begin
    let b = Storage.block_size t.storage in
    let blk = Array.copy (Storage.unchecked_peek t.storage (t.meta_base + (10 / b))) in
    blk.(10 mod b) <- Cell.item ~key:10 ~value:(if t.healthy then 1 else 0) ();
    Storage.unchecked_poke t.storage (t.meta_base + (10 / b)) blk
  end

let meta_word storage ~base j =
  let b = Storage.block_size storage in
  let blk = Storage.unchecked_peek storage (base + (j / b)) in
  match blk.(j mod b) with
  | Cell.Item it when it.key = j -> it.value
  | _ -> invalid_arg "Hierarchical_oram.resume: corrupt session metadata"

let init ?(sorter = Odex_sortnet.Ext_sort.auto) ?bucket_size ~m ~rng storage ~values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Hierarchical_oram.init: empty";
  let z =
    match bucket_size with
    | Some z -> max 2 z
    | None -> max 4 (Emodel.ilog2_ceil (max 2 n) + 2)
  in
  (* Level indices 0..l-1; bottom level must hold all n words:
     capacity of level idx is z * 2^idx words. *)
  let l =
    let rec go idx = if z * (1 lsl idx) >= 2 * n then idx + 1 else go (idx + 1) in
    go 0
  in
  let stash = Ext_array.create storage ~blocks:z in
  let levels =
    Array.init l (fun idx ->
        {
          region = Ext_array.create storage ~blocks:(buckets_of_level idx * z);
          key = Odex_crypto.Prf.fresh_key rng;
          occupied = false;
        })
  in
  let meta_base =
    if Storage.journaled storage then begin
      let b = Storage.block_size storage in
      Storage.alloc storage ((meta_words l + b - 1) / b)
    end
    else -1
  in
  let t =
    {
      storage;
      sorter;
      m;
      rng;
      n;
      z;
      l;
      stash;
      levels;
      t_counter = 0;
      rebuild_count = 0;
      healthy = true;
      meta_base;
    }
  in
  (* Private initial placement into the bottom level, retrying the epoch
     key until no bucket overflows (setup only). *)
  let bottom = levels.(l - 1) in
  let buckets = buckets_of_level (l - 1) in
  let rec place attempts =
    if attempts > 50 then invalid_arg "Hierarchical_oram.init: could not place (z too small)";
    let counts = Array.make buckets 0 in
    let ok = ref true in
    Array.iteri
      (fun addr _ ->
        let b = Odex_crypto.Prf.to_range bottom.key addr ~bound:buckets in
        counts.(b) <- counts.(b) + 1;
        if counts.(b) > z then ok := false)
      values;
    if not !ok then begin
      bottom.key <- Odex_crypto.Prf.fresh_key rng;
      place (attempts + 1)
    end
  in
  place 0;
  let cursors = Array.make buckets 0 in
  Array.iteri
    (fun addr value ->
      let b = Odex_crypto.Prf.to_range bottom.key addr ~bound:buckets in
      let slot = (b * z) + cursors.(b) in
      cursors.(b) <- cursors.(b) + 1;
      Storage.unchecked_poke storage
        (Ext_array.addr bottom.region slot)
        (Array.make (Storage.block_size storage) (Cell.item ~tag:0 ~key:addr ~value ())))
    values;
  bottom.occupied <- true;
  if meta_base >= 0 then begin
    (* The session becomes durable here: the checkpoint commits the
       placement pokes and the snapshot as one group. *)
    persist_meta t ~inflight:(-1);
    Storage.checkpoint storage ~owner:session_owner ~phase:1 ~cursor:meta_base
  end;
  t

let size t = t.n
let levels t = t.l
let bucket_size t = t.z
let accesses t = t.t_counter
let rebuilds t = t.rebuild_count
let healthy t = t.healthy

(* ------------------------------------------------------------------ *)
(* Rebuild: merge the stash and levels 0..upto-1 (inclusive of the
   target when it is occupied, which happens at the bottom) into level
   [upto].

   On a journaled store the rebuild is cut into ten deterministic,
   idempotent phases checkpointed under "oram-rebuild" (the scaffold the
   sorters use): entry-snapshot, gather, fillers, dedup sort, dedup
   scan, bucket sort, trim scan, compaction, install, source clear. The
   cursor persists the scratch base so a resumed process re-attaches the
   same scratch; the two inner sorts checkpoint their own phases under
   their own "ext-sort/..." (or columnsort/bucket) owners, which coexist
   with this one in the store's checkpoint table. Idempotency: gather,
   fillers and install rewrite their whole output from sources no phase
   before "clear" mutates; the two scans and the compaction are fixed
   points on their own committed output (the scans' per-block rewrites
   land whole — per-block writes are atomic journal records — and the
   bucket assignment re-derives the same epoch key from the snapshotted
   rng); re-sorting sorted data is a no-op. *)

let clear_array t arr =
  let b = Storage.block_size t.storage in
  for i = 0 to Ext_array.blocks arr - 1 do
    Ext_array.write_block arr i (Block.make b)
  done

let do_rebuild t upto =
  Ext_array.with_span t.stash "hier-oram.rebuild" @@ fun () ->
  let target = t.levels.(upto) in
  let buckets = buckets_of_level upto in
  let sources =
    t.stash
    :: List.filter_map
         (fun idx ->
           let lv = t.levels.(idx) in
           if lv.occupied && (idx < upto || idx = upto) then Some lv.region else None)
         (List.init (upto + 1) (fun i -> i))
  in
  let candidate_blocks = List.fold_left (fun acc a -> acc + Ext_array.blocks a) 0 sources in
  let scratch_blocks = candidate_blocks + (buckets * t.z) in
  let ck = Storage.journaled t.storage in
  let done_phase, done_cursor =
    if ck then Storage.checkpoint_state t.storage ~owner:rebuild_owner else (0, 0)
  in
  let scratch, done_phase =
    if done_phase > 0 && done_cursor + scratch_blocks <= Storage.capacity t.storage then
      (Ext_array.view t.storage ~base:done_cursor ~blocks:scratch_blocks, done_phase)
    else (Ext_array.create t.storage ~blocks:scratch_blocks, 0)
  in
  let phase = ref 0 in
  let run_phase f =
    incr phase;
    if !phase > done_phase then begin
      f ();
      if ck then
        Storage.checkpoint t.storage ~owner:rebuild_owner ~phase:!phase
          ~cursor:(Ext_array.base scratch)
    end
  in
  (* Phase 1 — entry: persist the pre-rebuild snapshot (counters,
     occupancy, and the rng state BEFORE the epoch key draw) with the
     in-flight marker set; the checkpoint commits it together with the
     stash writes of the accesses that triggered this rebuild, so a
     resumed process sees a consistent trigger-point state and re-draws
     the same key below. *)
  run_phase (fun () -> persist_meta t ~inflight:upto);
  let fresh_key = Odex_crypto.Prf.fresh_key t.rng in
  (* Phase 2 — gather all candidate words, stamping each with its
     source's age so the dedup keeps the newest copy: stash words carry
     positive access-counter timestamps, level-idx words get -(idx+1)
     (shallower = newer). *)
  run_phase (fun () ->
      let cursor = ref 0 in
      List.iteri
        (fun src_pos src ->
          for i = 0 to Ext_array.blocks src - 1 do
            let blk = Ext_array.read_block src i in
            let cell =
              if src_pos = 0 then blk.(0) (* stash: keep its timestamp *)
              else Cell.with_tag blk.(0) (-src_pos)
            in
            put_word t scratch !cursor cell;
            incr cursor
          done)
        sources);
  (* Phase 3 — pre-placed fillers: z per bucket, sorting after the reals
     of their bucket (same aux, larger key). *)
  run_phase (fun () ->
      for b = 0 to buckets - 1 do
        for j = 0 to t.z - 1 do
          put_word t scratch
            (candidate_blocks + (b * t.z) + j)
            (Cell.item ~aux:b ~key:filler_key ~value:0 ())
        done
      done);
  (* Phase 4 — deduplicate: sort by (address, newest first); timestamps
     ride in [tag]. Fillers (key = max_int) sort to the end and survive.
     The inner sort checkpoints its own phases under its own owner. *)
  let cmp_dedup c1 c2 =
    match (c1, c2) with
    | Cell.Empty, Cell.Empty -> 0
    | Cell.Empty, Cell.Item _ -> 1
    | Cell.Item _, Cell.Empty -> -1
    | Cell.Item x, Cell.Item y ->
        let c = compare x.key y.key in
        if c <> 0 then c else compare y.tag x.tag
  in
  run_phase (fun () -> Odex_sortnet.Ext_sort.run t.sorter ~cmp:cmp_dedup ~m:t.m scratch);
  (* Phase 5 — dedup scan, assigning the epoch bucket while we hold each
     block. *)
  run_phase (fun () ->
      let prev = ref min_int in
      for i = 0 to Ext_array.blocks scratch - 1 do
        let blk = Ext_array.read_block scratch i in
        let out =
          match blk.(0) with
          | Cell.Empty -> blk
          | Cell.Item it when it.key = filler_key -> blk
          | Cell.Item it ->
              if it.key = !prev then full_block t Cell.Empty
              else begin
                prev := it.key;
                let b = Odex_crypto.Prf.to_range fresh_key it.key ~bound:buckets in
                full_block t (Cell.Item { it with tag = 0; aux = b })
              end
        in
        Ext_array.write_block scratch i out
      done);
  (* Phase 6 — group by bucket (reals before fillers via the key
     tiebreak). *)
  run_phase (fun () ->
      Odex_sortnet.Ext_sort.run t.sorter ~cmp:Cell.compare_by_aux ~m:t.m scratch);
  (* Phase 7 — keep the first z entries of every bucket. *)
  run_phase (fun () ->
      let cur_bucket = ref (-1) in
      let in_bucket = ref 0 in
      for i = 0 to Ext_array.blocks scratch - 1 do
        let blk = Ext_array.read_block scratch i in
        let out =
          match blk.(0) with
          | Cell.Empty -> blk
          | Cell.Item it ->
              if it.aux <> !cur_bucket then begin
                cur_bucket := it.aux;
                in_bucket := 0
              end;
              incr in_bucket;
              if !in_bucket <= t.z then blk
              else begin
                (* Overflowing a bucket can only drop fillers unless the
                   bucket held more than z real words — the failure
                   event. *)
                if it.key <> filler_key then t.healthy <- false;
                full_block t Cell.Empty
              end
        in
        Ext_array.write_block scratch i out
      done;
      persist_healthy t);
  (* Phase 8 — compact: each bucket ends up exactly z aligned blocks. *)
  run_phase (fun () ->
      let occupied = Odex.Butterfly.compact ~m:t.m scratch in
      if occupied <> buckets * t.z then begin
        t.healthy <- false;
        persist_healthy t
      end);
  (* Phase 9 — install: fillers become empty slots. *)
  run_phase (fun () ->
      for i = 0 to (buckets * t.z) - 1 do
        let blk = Ext_array.read_block scratch i in
        let out =
          match blk.(0) with
          | Cell.Item it when it.key = filler_key -> Block.make (Storage.block_size t.storage)
          | Cell.Item it -> full_block t (Cell.Item { it with aux = 0 })
          | Cell.Empty -> Block.make (Storage.block_size t.storage)
        in
        Ext_array.write_block target.region i out
      done);
  target.key <- fresh_key;
  target.occupied <- true;
  (* Phase 10 — clear the merged sources. *)
  run_phase (fun () ->
      clear_array t t.stash;
      for idx = 0 to upto - 1 do
        if t.levels.(idx).occupied then clear_array t t.levels.(idx).region
      done);
  for idx = 0 to upto - 1 do
    t.levels.(idx).occupied <- false
  done;
  (* Finish: the post-rebuild snapshot (in-flight marker cleared, rng
     now past the key draw) and the slot clear land in one commit, so
     the install itself is crash-durable and a later crash resumes from
     this boundary. *)
  if ck then begin
    persist_meta t ~inflight:(-1);
    Storage.checkpoint_clear t.storage ~owner:rebuild_owner
  end

let rebuild t upto =
  t.rebuild_count <- t.rebuild_count + 1;
  do_rebuild t upto

(* ------------------------------------------------------------------ *)

let trailing_zeros v =
  let rec go v acc = if v land 1 = 1 then acc else go (v lsr 1) (acc + 1) in
  if v = 0 then 62 else go v 0

let access t addr ~update =
  if addr < 0 || addr >= t.n then invalid_arg "Hierarchical_oram: address out of range";
  (* 1. Scan the stash (newest wins: later slots are newer). *)
  let found = ref None in
  Ext_array.with_span t.stash "hier-oram.stash-scan" (fun () ->
      for j = 0 to t.z - 1 do
        let blk = Ext_array.read_block t.stash j in
        match blk.(0) with
        | Cell.Item it when it.key = addr -> found := Some it.value
        | _ -> ()
      done);
  (* 2. Probe one bucket per occupied level: the real one until found,
     uniform dummies after. *)
  Ext_array.with_span t.stash "hier-oram.probe" (fun () ->
      for idx = 0 to t.l - 1 do
        if t.levels.(idx).occupied then begin
          let buckets = buckets_of_level idx in
          let b =
            match !found with
            | Some _ -> Odex_crypto.Rng.int t.rng buckets
            | None -> bucket_of t idx addr
          in
          for j = 0 to t.z - 1 do
            let blk = Ext_array.read_block t.levels.(idx).region ((b * t.z) + j) in
            match blk.(0) with
            | Cell.Item it when it.key = addr && !found = None -> found := Some it.value
            | _ -> ()
          done
        end
      done);
  let current =
    match !found with
    | Some v -> v
    | None -> invalid_arg "Hierarchical_oram: word not found (corrupted state)"
  in
  let stored = match update with None -> current | Some v -> v in
  (* 3. Append to the stash with the access counter as its version. *)
  let slot = t.t_counter mod t.z in
  put_word t t.stash slot (Cell.item ~tag:(t.t_counter + 1) ~key:addr ~value:stored ());
  t.t_counter <- t.t_counter + 1;
  (* 4. Binary-counter rebuild schedule. *)
  if t.t_counter mod t.z = 0 then begin
    let v = t.t_counter / t.z in
    let upto = min (t.l - 1) (trailing_zeros v) in
    rebuild t upto
  end;
  current

let read t addr = access t addr ~update:None
let write t addr v = ignore (access t addr ~update:(Some v))

(* ------------------------------------------------------------------ *)
(* Full-session resume. The restored session is the state at the last
   committed rebuild boundary (every rebuild — and init — is such a
   boundary); accesses made after that boundary were never durably
   checkpointed and are rolled back with the journal tail. At a
   completed boundary the stash is logically empty, so it is explicitly
   re-cleared: a mid-epoch auto-commit may have committed some
   post-boundary stash appends whose timestamps would outrun the
   restored access counter (phantom entries that could shadow re-issued
   writes), and dropping them is exactly the boundary state. *)

let resume ?(sorter = Odex_sortnet.Ext_sort.auto) storage =
  match Storage.checkpoint_state storage ~owner:session_owner with
  | 0, _ -> None
  | _, meta_base ->
      let word = meta_word storage ~base:meta_base in
      if word 0 <> meta_magic || word 1 <> meta_version then
        invalid_arg "Hierarchical_oram.resume: unrecognized session metadata";
      let n = word 2 and z = word 3 and l = word 4 and m = word 5 in
      let rng = Odex_crypto.Rng.of_state (join64 (word 8) (word 9)) in
      let inflight = word 11 in
      let stash = Ext_array.view storage ~base:(word 12) ~blocks:z in
      let levels =
        Array.init l (fun idx ->
            let o = 13 + (4 * idx) in
            {
              region =
                Ext_array.view storage ~base:(word o) ~blocks:(buckets_of_level idx * z);
              key = Odex_crypto.Prf.key_of_raw (join64 (word (o + 2)) (word (o + 3)));
              occupied = word (o + 1) = 1;
            })
      in
      let t =
        {
          storage;
          sorter;
          m;
          rng;
          n;
          z;
          l;
          stash;
          levels;
          t_counter = word 6;
          rebuild_count = word 7;
          healthy = word 10 = 1;
          meta_base;
        }
      in
      if inflight >= 0 then
        (* A rebuild was in flight: finish it from its own checkpointed
           phase (its slot, its inner sort's slot and the snapshot all
           survived the crash) instead of restarting the session. *)
        do_rebuild t inflight
      else begin
        (* Drop phantom post-boundary stash entries, then make the
           sanitized state durable. *)
        let b = Storage.block_size storage in
        for j = 0 to z - 1 do
          Storage.unchecked_poke storage (Ext_array.addr stash j) (Block.make b)
        done;
        (* A crash inside the finish's slot clear can leave a stale
           completed "oram-rebuild" slot behind the already-committed
           post-rebuild snapshot; a later rebuild finding it would
           wrongly skip its phases against a fresh scratch. Drop it. *)
        Storage.checkpoint_clear storage ~owner:rebuild_owner;
        Storage.checkpoint storage ~owner:session_owner ~phase:1 ~cursor:meta_base
      end;
      Some t
