(* odx — command-line front end for the ODEX library.

   Feed it a file of integers (one per line, "-" for stdin); it loads
   them into the simulated outsourced store and runs the requested
   data-oblivious computation, reporting the answer together with what
   the storage provider observed.

     odx sort data.txt
     odx select -k 500 data.txt
     odx quantiles -q 4 data.txt
     odx compact --keep-even data.txt
     odx audit -n 600
     odx sort --profile trace.json data.txt   # latency profile -> Chrome trace *)

open Cmdliner
open Odex_extmem

let read_keys path =
  let ic = if path = "-" then stdin else open_in path in
  let keys = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" then keys := int_of_string line :: !keys
     done
   with End_of_file -> ());
  if path <> "-" then close_in ic;
  Array.of_list (List.rev !keys)

(* The fault plan of `--backend faulty` is fixed (seed and all), so a
   faulty run is exactly as reproducible as a mem run. `--shards K`
   stripes the chosen store across K inner devices; the faulty
   decorator composes outside the stripe so the fault schedule is the
   same at every K. *)
let backend_of ~store ~shards ~journal name =
  let stripe inner =
    if shards <= 1 then inner else Storage.Sharded { inner; shards; seed = 0x5A4D }
  in
  (* `--journal` wraps the finished spec (outside the stripe / fault
     decorator) in the write-ahead journal; its side file sits next to
     the store when --store names one. *)
  let journaled inner =
    if not journal then inner
    else
      let path =
        match store with
        | Some p -> p ^ ".journal"
        | None -> Filename.temp_file "odx" ".journal"
      in
      Storage.Journaled { inner; path; durable = true }
  in
  journaled
    (match name with
    | "mem" -> stripe Storage.Mem
    | "file" ->
        stripe
          (Storage.File
             { path = (match store with Some p -> p | None -> Filename.temp_file "odx" ".store") })
    | "faulty" ->
        Storage.Faulty
          { inner = stripe Storage.Mem; seed = 0xFA17; failure_rate = 0.05; max_burst = 2 }
    | other ->
        prerr_endline ("unknown backend " ^ other ^ " (available: mem file faulty)");
        exit 2)

let setup ~block_size ~backend ~store ~shards ~seed ~profile ~journal ~auto_commit ~resume
    ~cipher ~seal_key ~seal_domains keys =
  (* `--profile` turns on the telemetry sink; without it the storage
     carries the shared disabled sink and the I/O path is untouched. *)
  let telemetry =
    match profile with
    | Some _ -> Odex_telemetry.Telemetry.create ()
    | None -> Odex_telemetry.Telemetry.disabled
  in
  (* `--cipher` seals every payload before it reaches the backend; the
     engine is recorded in the store header, so a --resume must name
     the same engine (and the same --seal-key) it was created under. *)
  let cipher_engine, cipher_key =
    match cipher with
    | "none" -> (Odex_crypto.Cipher.Prf_xor, None)
    | name -> (
        match Odex_crypto.Cipher.engine_of_name name with
        | Some e -> (e, Some (Odex_crypto.Cipher.key_of_int seal_key))
        | None ->
            prerr_endline ("unknown cipher engine " ^ name ^ " (available: none prf_xor chacha20)");
            exit 2)
  in
  let server =
    Storage.create ~telemetry ~trace_mode:Trace.Digest ~resume ?cipher:cipher_key
      ~cipher_engine ~seal_domains ?journal_auto_commit_bytes:auto_commit
      ~backend:(backend_of ~store ~shards ~journal backend) ~block_size ()
  in
  let n = Array.length keys in
  let blocks = (n + block_size - 1) / block_size in
  let a =
    (* `--resume` replays the journal and re-attaches the existing data
       region instead of re-loading (and so clobbering) the input; a
       subsequent sort picks up from its last committed phase. *)
    if resume && Storage.capacity server >= blocks then
      Ext_array.view server ~base:0 ~blocks
    else begin
      let cells = Array.mapi (fun i k -> Cell.item ~tag:i ~key:k ~value:i ()) keys in
      Ext_array.of_cells server ~block_size cells
    end
  in
  let rng = Odex_crypto.Rng.create ~seed in
  (server, a, rng)

let report_trace server =
  let retries = Stats.retries (Storage.stats server) in
  Printf.printf "; provider view (%s backend): %d I/Os, trace digest %016Lx%s\n"
    (Storage.backend_kind server)
    (Trace.length (Storage.trace server))
    (Trace.digest (Storage.trace server))
    (if retries > 0 then Printf.sprintf ", %d transient faults retried" retries else "");
  let per_shard = Storage.shard_ios server in
  if Array.length per_shard > 0 then
    Printf.printf "; per-shard ops: %s\n"
      (String.concat " "
         (Array.to_list (Array.mapi (Printf.sprintf "s%d=%d") per_shard)))

let report_profile server profile =
  match profile with
  | None -> ()
  | Some path ->
      let tel = Storage.telemetry server in
      Odex_telemetry.Telemetry.write_chrome ~path [ ("odx", tel) ];
      Format.printf "%a" Odex_telemetry.Telemetry.pp_summary tel;
      Printf.printf "; wrote Chrome trace-event profile to %s (load in chrome://tracing)\n"
        path

(* ---- common options ---- *)

let file_arg =
  let doc = "Input file of integers, one per line ('-' = stdin)." in
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc)

let block_size_arg =
  let doc = "Block size B (cells per block) of the simulated store." in
  Arg.(value & opt int 8 & info [ "b"; "block-size" ] ~docv:"B" ~doc)

let cache_arg =
  let doc = "Alice's cache size m, in blocks (M = m*B words)." in
  Arg.(value & opt int 64 & info [ "m"; "cache-blocks" ] ~docv:"M" ~doc)

let seed_arg =
  let doc = "Random seed (fix it to reproduce a trace exactly)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let backend_arg =
  let doc =
    "Storage backend: $(b,mem) (in-process), $(b,file) (file-backed block store), or \
     $(b,faulty) (deterministic transient faults over mem; retries are part of the \
     provider's view)."
  in
  Arg.(value & opt string "mem" & info [ "backend" ] ~docv:"BACKEND" ~doc)

let store_arg =
  let doc = "Path of the block store for --backend file (default: a fresh temp file)." in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"PATH" ~doc)

let shards_arg =
  let doc =
    "Stripe the store across $(docv) domain-parallel shards (deterministic PRP fan-out). \
     The logical trace — and the answer — are bit-identical at every shard count; the \
     provider report adds the per-shard op split."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K" ~doc)

let journal_arg =
  let doc =
    "Wrap the store in a write-ahead journal: every batch of writes is group-committed \
     to a checksummed side log and fsync'd before being applied in place, so a crash \
     never tears the store. Pair with $(b,--resume) to recover and continue a killed \
     run. The journal's commit schedule is data-independent, like every other access."
  in
  Arg.(value & flag & info [ "journal" ] ~doc)

let auto_commit_arg =
  let doc =
    "Auto-commit threshold for $(b,--journal), in bytes (default 4 MiB): a write that \
     pushes the pending journal tail past $(docv) triggers an automatic group commit. \
     Smaller values bound crash-recovery replay work at the price of more fsyncs; \
     experiment E17 measures the trade-off."
  in
  Arg.(value & opt (some int) None & info [ "auto-commit-bytes" ] ~docv:"BYTES" ~doc)

let resume_arg =
  let doc =
    "Reopen an existing store (use $(b,--store) and $(b,--journal)), replay any \
     journaled writes a crash left behind, and continue: a sort that was killed \
     mid-run restarts from its last committed phase instead of from scratch."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let cipher_arg =
  let doc =
    "Seal every block under a cipher before it reaches the backend: $(b,none) \
     (plaintext), $(b,prf_xor) (the PRF keystream engine), or $(b,chacha20) (the RFC \
     8439 core). The engine is recorded in the store header, so a $(b,--resume) must \
     name the engine the store was created under."
  in
  Arg.(value & opt string "none" & info [ "cipher" ] ~docv:"ENGINE" ~doc)

let seal_key_arg =
  let doc =
    "Sealing key for $(b,--cipher) (reuse the same key to $(b,--resume) a sealed store)."
  in
  Arg.(value & opt int 1 & info [ "seal-key" ] ~docv:"KEY" ~doc)

let seal_domains_arg =
  let doc =
    "Fan run sealing across $(docv) worker domains. Sealed bytes and the access trace \
     are bit-identical at every $(docv); only the wall clock changes."
  in
  Arg.(value & opt int 1 & info [ "seal-domains" ] ~docv:"K" ~doc)

let profile_arg =
  let doc =
    "Collect latency telemetry and write a Chrome trace-event JSON profile to $(docv) \
     (load it in chrome://tracing or Perfetto); a human-readable summary is printed too. \
     Profiling observes only what the storage provider already sees and never changes \
     the access trace."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"OUT.json" ~doc)

(* ---- sort ---- *)

let sort_cmd =
  let sorter_arg =
    let doc =
      "Sorting engine: the default is the paper's full pipeline (shuffle + spill-free \
       scan with network fallback, Theorem 21); name one of $(b,batcher), \
       $(b,columnsort), $(b,bucket), $(b,bitonic-windowed), $(b,cache) or $(b,auto) to \
       run that registered network directly. The bucket engine derives its routing coins \
       from $(b,--seed), so a fixed seed reproduces the permutation exactly."
    in
    Arg.(value & opt (some string) None & info [ "sorter" ] ~docv:"ENGINE" ~doc)
  in
  let run block_size m seed backend store shards profile journal auto_commit resume cipher seal_key seal_domains sorter file =
    let keys = read_keys file in
    if Array.length keys = 0 then prerr_endline "no input"
    else begin
      let server, a, rng =
        setup ~block_size ~backend ~store ~shards ~seed ~profile ~journal ~auto_commit ~resume
          ~cipher ~seal_key ~seal_domains keys
      in
      let ok =
        match sorter with
        | None -> (Odex.Sort.run ~m ~rng a).Odex.Sort.ok
        | Some name -> (
            match Odex_sortnet.Ext_sort.find ~seed name with
            | None ->
                prerr_endline
                  ("unknown sorter " ^ name
                 ^ " (available: batcher columnsort bucket bitonic bitonic-windowed cache \
                    auto)");
                Storage.close server;
                exit 2
            | Some eng -> (
                match Odex_sortnet.Ext_sort.run eng ~m a with
                | () -> true
                | exception Odex_sortnet.Bucket_sort.Overflow msg ->
                    prerr_endline ("; bucket overflow (coin-public): " ^ msg);
                    false))
      in
      List.iter
        (fun (it : Cell.item) -> print_endline (string_of_int it.key))
        (Ext_array.items a);
      Printf.printf "; ok = %b\n" ok;
      report_trace server;
      report_profile server profile;
      (* Commit the journal tail and flush: without this, a journaled
         store would roll the whole run back on the next --resume. *)
      Storage.close server
    end
  in
  let doc = "Data-oblivious external-memory sort (Theorem 21)." in
  Cmd.v (Cmd.info "sort" ~doc)
    Term.(
      const run $ block_size_arg $ cache_arg $ seed_arg $ backend_arg $ store_arg
      $ shards_arg $ profile_arg $ journal_arg $ auto_commit_arg $ resume_arg $ cipher_arg $ seal_key_arg
      $ seal_domains_arg $ sorter_arg $ file_arg)

(* ---- select ---- *)

let select_cmd =
  let k_arg =
    let doc = "Rank to select (1-indexed)." in
    Arg.(required & opt (some int) None & info [ "k"; "rank" ] ~docv:"K" ~doc)
  in
  let run block_size m seed backend store shards profile journal auto_commit resume cipher seal_key seal_domains k file =
    let keys = read_keys file in
    let server, a, rng =
      setup ~block_size ~backend ~store ~shards ~seed ~profile ~journal ~auto_commit ~resume
          ~cipher ~seal_key ~seal_domains keys
    in
    let r = Odex.Selection.select ~m ~rng ~k a in
    (match r.Odex.Selection.item with
    | Some it -> Printf.printf "%d\n; rank %d of %d, ok = %b\n" it.key k (Array.length keys) r.ok
    | None -> Printf.printf "; selection failed (re-run with a fresh --seed)\n");
    report_trace server;
    report_profile server profile;
    Storage.close server
  in
  let doc = "Data-oblivious selection of the k-th smallest (Theorem 13)." in
  Cmd.v (Cmd.info "select" ~doc)
    Term.(
      const run $ block_size_arg $ cache_arg $ seed_arg $ backend_arg $ store_arg
      $ shards_arg $ profile_arg $ journal_arg $ auto_commit_arg $ resume_arg $ cipher_arg $ seal_key_arg
      $ seal_domains_arg $ k_arg $ file_arg)

(* ---- quantiles ---- *)

let quantiles_cmd =
  let q_arg =
    let doc = "Number of quantiles." in
    Arg.(value & opt int 3 & info [ "q"; "quantiles" ] ~docv:"Q" ~doc)
  in
  let run block_size m seed backend store shards profile journal auto_commit resume cipher seal_key seal_domains q file =
    let keys = read_keys file in
    let server, a, rng =
      setup ~block_size ~backend ~store ~shards ~seed ~profile ~journal ~auto_commit ~resume
          ~cipher ~seal_key ~seal_domains keys
    in
    let r = Odex.Quantiles.run ~m ~rng ~q a in
    Array.iteri
      (fun i (it : Cell.item) -> Printf.printf "p%d = %d\n" ((i + 1) * 100 / (q + 1)) it.key)
      r.Odex.Quantiles.quantiles;
    Printf.printf "; ok = %b\n" r.Odex.Quantiles.ok;
    report_trace server;
    report_profile server profile;
    Storage.close server
  in
  let doc = "Data-oblivious quantiles (Theorem 17)." in
  Cmd.v (Cmd.info "quantiles" ~doc)
    Term.(
      const run $ block_size_arg $ cache_arg $ seed_arg $ backend_arg $ store_arg
      $ shards_arg $ profile_arg $ journal_arg $ auto_commit_arg $ resume_arg $ cipher_arg $ seal_key_arg
      $ seal_domains_arg $ q_arg $ file_arg)

(* ---- compact ---- *)

let compact_cmd =
  let keep_even =
    let doc = "Treat even keys as the distinguished items (default: all)." in
    Arg.(value & flag & info [ "keep-even" ] ~doc)
  in
  let servers_arg =
    let doc =
      "Run the compaction in the multi-server model: stripe the store across $(docv) \
       non-colluding servers and use the two-server oblivious protocol (DESIGN.md §14) \
       instead of the butterfly — strictly fewer I/Os, at the price of the combined \
       (colluding) view no longer being data-independent; each server's own view still \
       is. Implies at least $(docv) shards."
    in
    Arg.(value & opt int 1 & info [ "servers" ] ~docv:"K" ~doc)
  in
  let run block_size m seed backend store shards servers profile journal auto_commit resume cipher seal_key seal_domains keep_even file =
    let keys = read_keys file in
    let shards = if servers >= 2 then max shards servers else shards in
    let server, a, _rng =
      setup ~block_size ~backend ~store ~shards ~seed ~profile ~journal ~auto_commit ~resume
          ~cipher ~seal_key ~seal_domains keys
    in
    let distinguished (it : Cell.item) = (not keep_even) || it.key mod 2 = 0 in
    let d = Odex.Consolidation.run ~distinguished ~into:None a in
    let out, occupied, how =
      if servers >= 2 then begin
        let o = Odex.Twoserver_compaction.run ~m ~capacity_blocks:(Ext_array.blocks d) d in
        ( o.Odex.Twoserver_compaction.dest,
          o.Odex.Twoserver_compaction.occupied,
          Printf.sprintf "two-server protocol, %d non-colluding servers" servers )
      end
      else (d, Odex.Butterfly.compact ~m d, "Theorem 6")
    in
    List.iter (fun (it : Cell.item) -> print_endline (string_of_int it.key)) (Ext_array.items out);
    Printf.printf "; %d occupied blocks after tight compaction (%s)\n" occupied how;
    report_trace server;
    report_profile server profile;
    Storage.close server
  in
  let doc = "Consolidate + tight order-preserving compaction (Lemma 3 + Theorem 6)." in
  Cmd.v (Cmd.info "compact" ~doc)
    Term.(
      const run $ block_size_arg $ cache_arg $ seed_arg $ backend_arg $ store_arg
      $ shards_arg $ servers_arg $ profile_arg $ journal_arg $ auto_commit_arg $ resume_arg $ cipher_arg $ seal_key_arg
      $ seal_domains_arg $ keep_even $ file_arg)

(* ---- audit ---- *)

let audit_cmd =
  let n_arg =
    let doc = "Input size (cells) for the audit datasets." in
    Arg.(value & opt int 600 & info [ "n" ] ~docv:"N" ~doc)
  in
  let run block_size m seed n =
    let rng = Odex_crypto.Rng.create ~seed in
    let inputs = Odex.Oblivious.input_classes ~rng ~n in
    let subjects =
      [
        {
          Odex.Oblivious.name = "sort";
          run = (fun rng _ a -> ignore (Odex.Sort.run ~m ~rng a));
        };
        {
          Odex.Oblivious.name = "selection";
          run = (fun rng _ a -> ignore (Odex.Selection.select ~m ~rng ~k:(max 1 (n / 3)) a));
        };
        {
          Odex.Oblivious.name = "consolidation";
          run = (fun _ _ a -> ignore (Odex.Consolidation.run ~into:None a));
        };
      ]
    in
    List.iter
      (fun subject ->
        let report = Odex.Oblivious.audit ~b:block_size ~inputs subject in
        Format.printf "%a@." Odex.Oblivious.pp_report report)
      subjects
  in
  let doc = "Run the obliviousness audit: fixed coins, contrasting inputs, compare traces." in
  Cmd.v (Cmd.info "audit" ~doc) Term.(const run $ block_size_arg $ cache_arg $ seed_arg $ n_arg)

let () =
  let doc = "data-oblivious external-memory algorithms (Goodrich, SPAA 2011)" in
  let info = Cmd.info "odx" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ sort_cmd; select_cmd; quantiles_cmd; compact_cmd; audit_cmd ]))
