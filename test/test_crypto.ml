open Odex_crypto

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create ~seed:43 in
  Alcotest.(check bool) "different seed differs" true
    (Rng.next_int64 (Rng.create ~seed:42) <> Rng.next_int64 c)

let test_rng_copy_and_split () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.next_int64 a) (Rng.next_int64 b);
  let parent = Rng.create ~seed:9 in
  let child = Rng.split parent in
  Alcotest.(check bool) "split independent of parent continuation" true
    (Rng.next_int64 child <> Rng.next_int64 parent)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of bounds"
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_uniformity () =
  let rng = Rng.create ~seed:2 in
  let buckets = Array.make 8 0 in
  let draws = 80_000 in
  for _ = 1 to draws do
    let v = Rng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  let expected = draws / 8 in
  Array.iteri
    (fun i c ->
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expected)
    buckets

let test_rng_int_in_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:5 ~hi:9 in
    if v < 5 || v > 9 then Alcotest.fail "int_in_range out of bounds"
  done;
  Alcotest.(check int) "degenerate range" 4 (Rng.int_in_range rng ~lo:4 ~hi:4)

let test_rng_bernoulli () =
  let rng = Rng.create ~seed:4 in
  let hits = ref 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    if Rng.bernoulli rng 0.25 then incr hits
  done;
  let frac = Float.of_int !hits /. Float.of_int draws in
  if frac < 0.23 || frac > 0.27 then Alcotest.failf "bernoulli(0.25) rate %.3f" frac;
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)

let test_rng_geometric () =
  let rng = Rng.create ~seed:5 in
  let p = 0.2 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    let v = Rng.geometric rng p in
    if v < 1 then Alcotest.fail "geometric < 1";
    sum := !sum + v
  done;
  let mean = Float.of_int !sum /. Float.of_int n in
  if Float.abs (mean -. (1. /. p)) > 0.2 then
    Alcotest.failf "geometric mean %.3f, expected %.3f" mean (1. /. p);
  Alcotest.(check int) "p=1 is constant 1" 1 (Rng.geometric rng 1.)

let test_prf () =
  let k = Prf.key_of_int 11 in
  Alcotest.(check int64) "deterministic" (Prf.value k 99) (Prf.value k 99);
  Alcotest.(check bool) "inputs differ" true (Prf.value k 1 <> Prf.value k 2);
  let k2 = Prf.key_of_int 12 in
  Alcotest.(check bool) "keys differ" true (Prf.value k 1 <> Prf.value k2 1);
  Alcotest.(check bool) "pair input matters" true
    (Prf.value_pair k 1 2 <> Prf.value_pair k 2 1);
  for x = 0 to 999 do
    let v = Prf.to_range k x ~bound:13 in
    if v < 0 || v >= 13 then Alcotest.fail "to_range out of bounds"
  done

let test_hash_family_distinct () =
  let fam = Hash_family.create ~k:4 ~size:101 (Prf.key_of_int 21) in
  for x = 0 to 499 do
    let hs = Hash_family.hashes fam x in
    Alcotest.(check int) "k hashes" 4 (Array.length hs);
    let sorted = Array.copy hs in
    Array.sort compare sorted;
    for i = 0 to 2 do
      if sorted.(i) = sorted.(i + 1) then Alcotest.fail "hashes collide"
    done;
    Array.iteri
      (fun i h ->
        let lo, hi = Hash_family.subrange fam i in
        if h < lo || h >= hi then Alcotest.failf "h_%d(%d)=%d outside [%d,%d)" i x h lo hi)
      hs
  done

let test_hash_family_subranges_cover () =
  let fam = Hash_family.create ~k:3 ~size:10 (Prf.key_of_int 22) in
  let lo0, hi0 = Hash_family.subrange fam 0 in
  let lo1, hi1 = Hash_family.subrange fam 1 in
  let lo2, hi2 = Hash_family.subrange fam 2 in
  Alcotest.(check (list (pair int int)))
    "partition covers [0,10)"
    [ (0, 3); (3, 6); (6, 10) ]
    [ (lo0, hi0); (lo1, hi1); (lo2, hi2) ]

let test_permutation_roundtrip () =
  let rng = Rng.create ~seed:31 in
  let p = Permutation.random rng 50 in
  Alcotest.(check bool) "valid" true (Permutation.is_valid p);
  let inv = Permutation.inverse p in
  for i = 0 to 49 do
    Alcotest.(check int) "inverse" i (Permutation.apply inv (Permutation.apply p i));
    Alcotest.(check int) "preimage" i (Permutation.preimage p (Permutation.apply p i))
  done

let test_permutation_swaps_consistent () =
  let rng = Rng.create ~seed:32 in
  let swaps = Permutation.swap_sequence (Rng.copy rng) 20 in
  let p1 = Permutation.of_swaps 20 swaps in
  let p2 = Permutation.random rng 20 in
  for i = 0 to 19 do
    Alcotest.(check int) "same permutation" (Permutation.apply p1 i) (Permutation.apply p2 i)
  done;
  Array.iter
    (fun (i, j) -> if j < i then Alcotest.fail "swap goes backwards")
    swaps

let test_permutation_permute_array () =
  let rng = Rng.create ~seed:33 in
  let p = Permutation.random rng 10 in
  let a = Array.init 10 (fun i -> i * 100) in
  let out = Permutation.permute_array p a in
  Array.iteri (fun i x -> Alcotest.(check int) "moved" x out.(Permutation.apply p i)) a;
  Alcotest.(check bool) "multiset" true
    (List.sort compare (Array.to_list out) = List.sort compare (Array.to_list a))

let test_permutation_identity () =
  let p = Permutation.identity 5 in
  for i = 0 to 4 do
    Alcotest.(check int) "id" i (Permutation.apply p i)
  done

let test_cipher_roundtrip () =
  let k = Cipher.key_of_int 77 in
  let plain = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  let ct = Cipher.encrypt k ~nonce:5 plain in
  Alcotest.(check bool) "ciphertext differs" true (not (Bytes.equal ct plain));
  Alcotest.(check bytes) "roundtrip" plain (Cipher.decrypt k ~nonce:5 ct)

let test_cipher_nonce_freshness () =
  let k = Cipher.key_of_int 78 in
  let plain = Bytes.of_string "same plaintext either way" in
  let c1 = Cipher.encrypt k ~nonce:1 plain in
  let c2 = Cipher.encrypt k ~nonce:2 plain in
  Alcotest.(check bool) "re-encryption looks fresh" true (not (Bytes.equal c1 c2))

(* Byte-at-a-time reference for the word-at-a-time keystream XOR: byte i
   takes byte (i mod 8) of keystream word i/8. [Cipher.key_of_int] is
   PRF key derivation, so a [Prf.key] from the same seed generates the
   cipher's keystream. The production code must match the reference on
   every length, in particular the 1..7-byte tails and the empty and
   sub-word inputs. *)
let xor_reference pk ~nonce src =
  Bytes.mapi
    (fun i c ->
      let word = Prf.value_pair pk nonce (i / 8) in
      let ks = Int64.to_int (Int64.shift_right_logical word (i mod 8 * 8)) land 0xff in
      Char.chr (Char.code c lxor ks))
    src

let test_xor_stream_matches_bytewise_reference () =
  let k = Cipher.key_of_int 1234 and pk = Prf.key_of_int 1234 in
  for len = 0 to 17 do
    let src = Bytes.init len (fun i -> Char.chr ((i * 37) land 0xFF)) in
    Alcotest.(check bytes)
      (Printf.sprintf "len %d" len)
      (xor_reference pk ~nonce:len src)
      (Cipher.xor_stream k ~nonce:len src)
  done

let test_xor_into_region () =
  (* [xor_into] at an interior offset must keystream the region exactly
     as [xor_stream] does a standalone buffer of the same bytes (indices
     are region-relative), and must not touch bytes outside it. *)
  let k = Cipher.key_of_int 99 in
  for len = 0 to 17 do
    let off = 8 in
    let buf = Bytes.init (off + len + 5) (fun i -> Char.chr ((i * 11) land 0xFF)) in
    let orig = Bytes.copy buf in
    let region = Bytes.sub buf off len in
    Cipher.xor_into k ~nonce:7 buf ~off ~len;
    Alcotest.(check bytes)
      (Printf.sprintf "region len %d" len)
      (Cipher.xor_stream k ~nonce:7 region)
      (Bytes.sub buf off len);
    Alcotest.(check bytes) "prefix untouched" (Bytes.sub orig 0 off) (Bytes.sub buf 0 off);
    Alcotest.(check bytes) "suffix untouched"
      (Bytes.sub orig (off + len) 5)
      (Bytes.sub buf (off + len) 5)
  done;
  Alcotest.check_raises "out-of-bounds region rejected"
    (Invalid_argument "Cipher.xor_into: region out of bounds") (fun () ->
      Cipher.xor_into k ~nonce:0 (Bytes.create 4) ~off:2 ~len:3)

let test_cipher_key_separation () =
  let plain = Bytes.of_string "hello" in
  let c1 = Cipher.encrypt (Cipher.key_of_int 1) ~nonce:0 plain in
  let c2 = Cipher.encrypt (Cipher.key_of_int 2) ~nonce:0 plain in
  Alcotest.(check bool) "keys separate" true (not (Bytes.equal c1 c2))

(* ---------------- cipher engines ---------------- *)

let hex_of_big buf off len =
  String.concat "" (List.init len (fun i -> Printf.sprintf "%02x" (Char.code (Bigbuf.get buf (off + i)))))

let key_00_1f = String.init 32 Char.chr

(* RFC 8439 §2.3.2: block function known-answer vector — key 00..1f,
   nonce 00:00:00:09:00:00:00:4a:00:00:00:00, counter 1. XORing the
   keystream over zeros exposes the raw keystream block. *)
let test_chacha20_kat_block () =
  let nonce = "\x00\x00\x00\x09\x00\x00\x00\x4a\x00\x00\x00\x00" in
  let buf = Bigbuf.create 64 in
  Cipher.chacha20_xor_raw ~key:key_00_1f ~nonce ~counter:1 buf ~off:0 ~len:64;
  Alcotest.(check string) "keystream block"
    ("10f1e7e4d13b5915500fdd1fa32071c4" ^ "c7d1f4c733c068030422aa9ac3d46c4e"
   ^ "d2826446079faa0914c2d705d98b02a2" ^ "b5129cd1de164eb9cbd083e8a2503c4e")
    (hex_of_big buf 0 64)

(* RFC 8439 §2.4.2: the "sunscreen" encryption vector — same key, nonce
   00:00:00:00:00:00:00:4a:00:00:00:00, counter 1. Exercises the
   multi-block path with a 114-byte (non-multiple-of-64) message. *)
let test_chacha20_kat_sunscreen () =
  let nonce = "\x00\x00\x00\x00\x00\x00\x00\x4a\x00\x00\x00\x00" in
  let plain =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip \
     for the future, sunscreen would be it."
  in
  let buf = Bigbuf.of_bytes (Bytes.of_string plain) in
  Cipher.chacha20_xor_raw ~key:key_00_1f ~nonce ~counter:1 buf ~off:0
    ~len:(String.length plain);
  Alcotest.(check string) "ciphertext"
    ("6e2e359a2568f98041ba0728dd0d6981" ^ "e97e7aec1d4360c20a27afccfd9fae0b"
   ^ "f91b65c5524733ab8f593dabcd62b357" ^ "1639d624e65152ab8f530c359f0861d8"
   ^ "07ca0dbf500d6a6156a38e088a22b65e" ^ "52bc514d16ccf806818ce91ab7793736"
   ^ "5af90bbf74a35be6b40b8eedf2785e42" ^ "874d")
    (hex_of_big buf 0 (String.length plain));
  (* XOR is an involution: the same call decrypts. *)
  Cipher.chacha20_xor_raw ~key:key_00_1f ~nonce ~counter:1 buf ~off:0
    ~len:(String.length plain);
  Alcotest.(check string) "roundtrip" plain (Bigbuf.sub_string buf 0 (String.length plain))

let test_engine_ids () =
  List.iter
    (fun e ->
      Alcotest.(check bool) "id roundtrips" true (Cipher.engine_of_id (Cipher.engine_id e) = Some e);
      Alcotest.(check bool) "name roundtrips" true
        (Cipher.engine_of_name (Cipher.engine_name e) = Some e))
    [ Cipher.Prf_xor; Cipher.Chacha20 ];
  Alcotest.(check bool) "unknown id" true (Cipher.engine_of_id 99L = None);
  Alcotest.(check bool) "unknown name" true (Cipher.engine_of_name "rot13" = None)

(* The Bigbuf Prf_xor path must produce byte-identical output to the
   historical bytes path — stores sealed before the engine abstraction
   must reopen bit-exactly. *)
let test_xor_big_matches_bytes_path () =
  let k = Cipher.key_of_int 4242 in
  let st = Cipher.init Cipher.Prf_xor k in
  for len = 0 to 17 do
    let bytes_buf = Bytes.init (len + 11) (fun i -> Char.chr ((i * 53) land 0xFF)) in
    let big = Bigbuf.of_bytes bytes_buf in
    Cipher.xor_into k ~nonce:len bytes_buf ~off:3 ~len;
    Cipher.xor_big st ~nonce:len big ~off:3 ~len;
    Alcotest.(check bytes) (Printf.sprintf "len %d" len) bytes_buf (Bigbuf.to_bytes big)
  done

(* xor_run must equal per-region xor_big for both engines — in
   particular the Chacha20 8-lane SIMD core against its scalar core
   (region counts above and below 8, region lengths crossing 64-byte
   keystream blocks and stopping mid-block). *)
let test_xor_run_matches_xor_big () =
  List.iter
    (fun engine ->
      let st = Cipher.init engine (Cipher.key_of_int 555) in
      List.iter
        (fun (count, len, stride) ->
          let total = (count * stride) + 16 in
          let mk () = Bigbuf.of_bytes (Bytes.init total (fun i -> Char.chr ((i * 31) land 0xFF))) in
          let by_run = mk () and by_block = mk () in
          let nonces = Array.init count (fun i -> 1000 + (i * 3)) in
          Cipher.xor_run st ~nonces by_run ~off:8 ~stride ~len;
          Array.iteri
            (fun i nonce -> Cipher.xor_big st ~nonce by_block ~off:(8 + (i * stride)) ~len)
            nonces;
          Alcotest.(check bytes)
            (Printf.sprintf "%s count=%d len=%d" (Cipher.engine_name engine) count len)
            (Bigbuf.to_bytes by_block) (Bigbuf.to_bytes by_run))
        [ (1, 40, 48); (3, 160, 168); (8, 160, 160); (9, 64, 72); (20, 328, 328); (5, 0, 8) ])
    [ Cipher.Prf_xor; Cipher.Chacha20 ]

let test_chacha20_engine_properties () =
  let k = Cipher.key_of_int 808 in
  let st = Cipher.init Cipher.Chacha20 k in
  Alcotest.(check bool) "engine tag" true (Cipher.state_engine st = Cipher.Chacha20);
  let len = 200 in
  let plain = Bytes.init len (fun i -> Char.chr (i land 0xFF)) in
  let b1 = Bigbuf.of_bytes plain and b2 = Bigbuf.of_bytes plain in
  Cipher.xor_big st ~nonce:1 b1 ~off:0 ~len;
  Cipher.xor_big st ~nonce:2 b2 ~off:0 ~len;
  Alcotest.(check bool) "nonces separate streams" true
    (not (Bytes.equal (Bigbuf.to_bytes b1) (Bigbuf.to_bytes b2)));
  Alcotest.(check bool) "ciphertext differs from plaintext" true
    (not (Bytes.equal (Bigbuf.to_bytes b1) plain));
  Cipher.xor_big st ~nonce:1 b1 ~off:0 ~len;
  Alcotest.(check bytes) "involution" plain (Bigbuf.to_bytes b1);
  let st' = Cipher.init Cipher.Chacha20 (Cipher.key_of_int 809) in
  let b3 = Bigbuf.of_bytes plain in
  Cipher.xor_big st' ~nonce:1 b3 ~off:0 ~len;
  Alcotest.(check bool) "keys separate streams" true
    (not (Bytes.equal (Bigbuf.to_bytes b1) (Bigbuf.to_bytes b3)))

(* ---------------- unbiased range mapping ---------------- *)

(* bound = 7 does not divide 2^62, so the plain modulo reduction is
   (infinitesimally) biased; the rejection sampler must stay uniform.
   With 70,000 draws each residue expects 10,000; +/-10% is ~13 sigma. *)
let test_to_range_unbiased_uniform () =
  let k = Prf.key_of_int 314 in
  let bound = 7 in
  let draws = 70_000 in
  let buckets = Array.make bound 0 in
  for x = 0 to draws - 1 do
    let v = Prf.to_range_unbiased k x ~bound in
    if v < 0 || v >= bound then Alcotest.fail "to_range_unbiased out of bounds";
    buckets.(v) <- buckets.(v) + 1
  done;
  let expected = draws / bound in
  Array.iteri
    (fun i c ->
      if abs (c - expected) > expected / 10 then
        Alcotest.failf "residue %d count %d too far from %d" i c expected)
    buckets;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Prf.to_range_unbiased: bound must be positive") (fun () ->
      ignore (Prf.to_range_unbiased k 0 ~bound:0))

let prop_to_range_unbiased_bounds =
  Util.qcheck_case ~name:"to_range_unbiased stays in bounds and is deterministic"
    QCheck2.Gen.(triple int (int_range 1 1_000_000) int)
    (fun (x, bound, seed) ->
      let k = Prf.key_of_int seed in
      let v = Prf.to_range_unbiased k x ~bound in
      v >= 0 && v < bound && v = Prf.to_range_unbiased k x ~bound)

let prop_permutation_valid =
  Util.qcheck_case ~name:"random permutation is a bijection"
    QCheck2.Gen.(pair (int_range 0 200) int)
    (fun (n, seed) ->
      let rng = Rng.create ~seed in
      Permutation.is_valid (Permutation.random rng n))

let prop_cipher_roundtrip =
  Util.qcheck_case ~name:"cipher roundtrips arbitrary bytes"
    QCheck2.Gen.(triple string int int)
    (fun (s, keyseed, nonce) ->
      let k = Cipher.key_of_int keyseed in
      let plain = Bytes.of_string s in
      Bytes.equal plain (Cipher.decrypt k ~nonce (Cipher.encrypt k ~nonce plain)))

let prop_rng_int_bounds =
  Util.qcheck_case ~name:"Rng.int stays in bounds"
    QCheck2.Gen.(pair (int_range 1 1_000_000) int)
    (fun (bound, seed) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng copy/split", `Quick, test_rng_copy_and_split);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng uniformity", `Quick, test_rng_uniformity);
    ("rng int_in_range", `Quick, test_rng_int_in_range);
    ("rng bernoulli", `Quick, test_rng_bernoulli);
    ("rng geometric", `Quick, test_rng_geometric);
    ("prf basics", `Quick, test_prf);
    ("hash family distinctness", `Quick, test_hash_family_distinct);
    ("hash family partition", `Quick, test_hash_family_subranges_cover);
    ("permutation roundtrip", `Quick, test_permutation_roundtrip);
    ("permutation swap transcript", `Quick, test_permutation_swaps_consistent);
    ("permutation permute_array", `Quick, test_permutation_permute_array);
    ("permutation identity", `Quick, test_permutation_identity);
    ("cipher roundtrip", `Quick, test_cipher_roundtrip);
    ("cipher nonce freshness", `Quick, test_cipher_nonce_freshness);
    ("cipher xor vs bytewise reference", `Quick, test_xor_stream_matches_bytewise_reference);
    ("cipher xor_into region", `Quick, test_xor_into_region);
    ("cipher key separation", `Quick, test_cipher_key_separation);
    ("chacha20 rfc8439 block vector", `Quick, test_chacha20_kat_block);
    ("chacha20 rfc8439 sunscreen vector", `Quick, test_chacha20_kat_sunscreen);
    ("cipher engine ids", `Quick, test_engine_ids);
    ("cipher xor_big matches bytes path", `Quick, test_xor_big_matches_bytes_path);
    ("cipher xor_run matches xor_big", `Quick, test_xor_run_matches_xor_big);
    ("chacha20 engine properties", `Quick, test_chacha20_engine_properties);
    ("prf to_range_unbiased uniformity", `Quick, test_to_range_unbiased_uniform);
    prop_to_range_unbiased_bounds;
    prop_permutation_valid;
    prop_cipher_roundtrip;
    prop_rng_int_bounds;
  ]
