(* The zero-copy sealing substrate: cipher engine selection and
   persistence, parallel run sealing, and the allocation discipline of
   the hot transfer path. *)

open Odex_extmem
open Odex_obcheck
module Cipher = Odex_crypto.Cipher
module Bigbuf = Odex_crypto.Bigbuf

let with_temp_store f =
  let path = Filename.temp_file "odex_seal" ".store" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let data b i =
  let blk = Block.make b in
  blk.(0) <- Cell.item ~key:(1000 + i) ~value:i ();
  blk

(* ---------------- engine selection and persistence ---------------- *)

(* Reopening a sealed store under a different engine must fail loudly:
   unsealing ChaCha20 ciphertext with the PRF keystream garbles every
   block silently, so the header check is the only line of defense. *)
let test_cross_engine_reopen_rejected () =
  with_temp_store (fun path ->
      let b = 4 in
      let key = Cipher.key_of_int 7 in
      let s =
        Storage.create ~cipher:key ~cipher_engine:Cipher.Chacha20
          ~backend:(Storage.File { path }) ~block_size:b ()
      in
      let base = Storage.alloc s 4 in
      for i = 0 to 3 do
        Storage.write s (base + i) (data b i)
      done;
      Storage.close s;
      (* Default engine (Prf_xor) against a ChaCha20 store: refused. *)
      Alcotest.(check bool) "wrong-engine reopen refused" true
        (match
           Storage.create ~cipher:key ~resume:true ~backend:(Storage.File { path })
             ~block_size:b ()
         with
        | exception Invalid_argument msg ->
            Alcotest.(check bool)
              (Printf.sprintf "error names both engines: %s" msg)
              true
              (let has sub =
                 let n = String.length msg and m = String.length sub in
                 let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
                 go 0
               in
               has "chacha20" && has "prf_xor");
            true
        | s ->
            Storage.close s;
            false);
      (* The right engine still opens and decrypts. *)
      let s =
        Storage.create ~cipher:key ~cipher_engine:Cipher.Chacha20 ~resume:true
          ~backend:(Storage.File { path }) ~block_size:b ()
      in
      for i = 0 to 3 do
        Alcotest.(check int)
          (Printf.sprintf "block %d decrypts under the right engine" i)
          (1000 + i)
          (Cell.key_exn (Storage.read s (base + i)).(0))
      done;
      Storage.close s)

(* A version-1 header (24 bytes, pre-engines) must read back as Prf_xor:
   that is the engine that sealed every v1 store. *)
let test_v1_header_reads_as_prf_xor () =
  with_temp_store (fun path ->
      let b = 2 in
      let payload_size = 8 + Block.encoded_size b in
      (* Forge a v1 store: a bare file backend carrying a 24-byte header. *)
      let bk = Backend.file ~path ~payload_size in
      let m = Bytes.create 24 in
      Bytes.set_int64_le m 0 1L;
      Bytes.set_int64_le m 8 (Int64.of_int b);
      Bytes.set_int64_le m 16 0L;
      Backend.write_meta bk m;
      Backend.close bk;
      let key = Cipher.key_of_int 3 in
      (* Prf_xor (the default) opens it... *)
      let s =
        Storage.create ~cipher:key ~resume:true ~backend:(Storage.File { path })
          ~block_size:b ()
      in
      Alcotest.(check string) "v1 store opens under prf_xor" "prf_xor"
        (Cipher.engine_name (Storage.cipher_engine s));
      Storage.close s;
      (* ... and ChaCha20 is refused. *)
      Alcotest.(check bool) "v1 store refused under chacha20" true
        (match
           Storage.create ~cipher:key ~cipher_engine:Cipher.Chacha20 ~resume:true
             ~backend:(Storage.File { path }) ~block_size:b ()
         with
        | exception Invalid_argument _ -> true
        | s ->
            Storage.close s;
            false))

(* The journal records the engine too: replaying ciphertext under the
   wrong keystream would garble the store, so reopen must refuse. *)
let test_journal_cross_engine_rejected () =
  with_temp_store (fun sp ->
      let jp = sp ^ ".journal" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists jp then Sys.remove jp)
        (fun () ->
          let inner = Backend.file ~path:sp ~payload_size:16 in
          let j =
            Journal.create ~engine:Cipher.Chacha20 ~path:jp ~payload_size:16 ~durable:false
              ~replay:false inner
          in
          let bk = Journal.backend j in
          Backend.ensure bk 2;
          Backend.write bk 0 (Bytes.make 16 'a');
          Backend.close bk;
          let inner = Backend.file ~path:sp ~payload_size:16 in
          Alcotest.(check bool) "journal reopen under another engine refused" true
            (match
               Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner
             with
            | exception Invalid_argument _ ->
                Backend.close inner;
                true
            | j ->
                Backend.close (Journal.backend j);
                false)))

(* Engine choice must be invisible to Bob: same key, same coins, same
   shape — the PRF store and the ChaCha20 store produce identical
   traces. *)
let test_engine_trace_parity () =
  let e = List.hd Registry.all in
  let run cipher_engine =
    let o =
      Pairtest.check ~cipher:(Cipher.key_of_int 11) ~cipher_engine
        ~pair:(Registry.pair_mode e) e.subject ~n_cells:e.n_cells ~b:e.b ~m:e.m
    in
    Alcotest.(check bool)
      (Format.asprintf "%a" Pairtest.pp_outcome o)
      true o.oblivious;
    (o.run_a.trace_length, o.run_a.digest)
  in
  Alcotest.(check (pair int int64))
    "prf-xor and chacha20 traces identical" (run Cipher.Prf_xor) (run Cipher.Chacha20)

(* ---------------- parallel sealing ---------------- *)

(* The hard bit-level claim: sealing a run across domains produces the
   same device bytes as sealing it serially — same nonces, same
   ciphertext, byte for byte on disk. *)
let test_parallel_seal_bytes_identical () =
  let image seal_domains =
    with_temp_store (fun path ->
        let b = 4 in
        let n = 64 in
        let s =
          Storage.create ~cipher:(Cipher.key_of_int 21) ~cipher_engine:Cipher.Chacha20
            ~seal_domains ~backend:(Storage.File { path }) ~block_size:b ()
        in
        let base = Storage.alloc s n in
        Storage.write_many s base (Array.init n (data b));
        (* Read-back exercises the parallel unseal of the same bytes. *)
        let back = Storage.read_many s base n in
        Array.iteri
          (fun i blk ->
            Alcotest.(check int)
              (Printf.sprintf "d=%d block %d round-trips" seal_domains i)
              (1000 + i) (Cell.key_exn blk.(0)))
          back;
        Storage.close s;
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic)))
  in
  Alcotest.(check string) "disk images identical serial vs parallel" (image 1) (image 3)

(* Registry-wide certification: every algorithm, on every backend, with
   run sealing fanned across domains — the pair traces (and shard_ios)
   must be identical, and must match the serial-seal run exactly. *)
let parallel_seal_parity_cases =
  List.concat_map
    (fun backend_name ->
      List.map
        (fun (e : Registry.entry) ->
          Alcotest.test_case
            (Printf.sprintf "parallel seal %s [%s]" e.subject.Pairtest.name backend_name)
            `Slow
            (fun () ->
              let run seal_domains =
                let spec = Registry.backend_spec backend_name in
                Fun.protect
                  ~finally:(fun () -> Storage.remove_spec_files spec)
                  (fun () ->
                    let o =
                      Pairtest.check ~backend:spec ~cipher:(Cipher.key_of_int 31)
                        ~cipher_engine:Cipher.Chacha20 ~seal_domains
                        ~pair:(Registry.pair_mode e) e.subject ~n_cells:e.n_cells ~b:e.b
                        ~m:e.m
                    in
                    Alcotest.(check bool)
                      (Format.asprintf "%a" Pairtest.pp_outcome o)
                      true o.oblivious;
                    ( o.run_a.trace_length,
                      o.run_a.digest,
                      o.run_a.retries,
                      o.run_a.shard_ios ))
              in
              let l1, d1, r1, sh1 = run 1 in
              let l3, d3, r3, sh3 = run 3 in
              Alcotest.(check int) "same trace length" l1 l3;
              Alcotest.(check int64) "same digest" d1 d3;
              Alcotest.(check int) "same retries" r1 r3;
              Alcotest.(check (array int)) "same shard fan-out" sh1 sh3))
        Registry.all)
    Registry.backend_names

(* ---------------- allocation discipline ---------------- *)

(* The mem backend serves single blocks by blit into the caller's
   off-heap buffer: the read loop must not allocate per block (the old
   path allocated a fresh Bytes per read). Minor-heap words are counted
   across a big loop; the budget allows fixed setup noise but not
   per-iteration garbage. *)
let test_mem_read_does_not_allocate () =
  let payload = 168 in
  let bk = Backend.mem ~payload_size:payload () in
  Backend.ensure bk 8;
  let buf = Bigbuf.create payload in
  for i = 0 to 7 do
    Bigbuf.set64_le buf 0 (Int64.of_int i);
    Backend.write_from bk i ~buf ~off:0
  done;
  let iters = 10_000 in
  (* Warm up any lazy structure before measuring. *)
  Backend.read_into bk 0 ~buf ~off:0;
  let w0 = Gc.minor_words () in
  for i = 0 to iters - 1 do
    Backend.read_into bk (i land 7) ~buf ~off:0
  done;
  let per_iter = (Gc.minor_words () -. w0) /. float_of_int iters in
  Alcotest.(check bool)
    (Printf.sprintf "%.3f minor words per read (want ~0)" per_iter)
    true (per_iter < 1.0);
  (* And the data actually moved. *)
  Backend.read_into bk 5 ~buf ~off:0;
  Alcotest.(check int64) "blit read serves the payload" 5L (Bigbuf.get64_le buf 0)

let suite =
  [
    ("cross-engine reopen rejected", `Quick, test_cross_engine_reopen_rejected);
    ("v1 header reads as prf-xor", `Quick, test_v1_header_reads_as_prf_xor);
    ("journal cross-engine reopen rejected", `Quick, test_journal_cross_engine_rejected);
    ("engine choice invisible in the trace", `Quick, test_engine_trace_parity);
    ("parallel seal bit-identical on disk", `Quick, test_parallel_seal_bytes_identical);
    ("mem single-block read allocation-free", `Quick, test_mem_read_does_not_allocate);
  ]
  @ parallel_seal_parity_cases
