let () =
  Alcotest.run "odex"
    [
      ("crypto", Test_crypto.suite);
      ("extmem", Test_extmem.suite);
      ("backend", Test_backend.suite);
      ("journal", Test_journal.suite);
      ("batch", Test_batch.suite);
      ("seal", Test_seal.suite);
      ("sortnet", Test_sortnet.suite);
      ("iblt", Test_iblt.suite);
      ("compaction", Test_compaction.suite);
      ("selection", Test_selection.suite);
      ("sort", Test_sort.suite);
      ("logstar", Test_logstar.suite);
      ("oram", Test_oram.suite);
      ("bounds", Test_bounds.suite);
      ("properties", Test_properties.suite);
      ("telemetry", Test_telemetry.suite);
      ("obliviousness", Test_obliviousness.suite);
      ("shard", Test_shard.suite);
      ("multiserver", Test_multiserver.suite);
      ("statcheck", Test_statcheck.suite);
      ("edge", Test_edge.suite);
    ]
