(* Edge cases and failure-injection tests across the stack. *)

open Odex_extmem
open Odex

(* ---------------- storage / arrays ---------------- *)

let test_storage_growth () =
  let s = Util.storage ~b:2 () in
  (* Force several growth steps of the backing array. *)
  let bases = List.init 10 (fun i -> Storage.alloc s (i + 1)) in
  Alcotest.(check int) "capacity" 55 (Storage.capacity s);
  (* Early allocations stay intact across growth. *)
  let blk = Block.make 2 in
  blk.(0) <- Cell.item ~key:99 ~value:0 ();
  Storage.write s (List.hd bases) blk;
  ignore (Storage.alloc s 100);
  Alcotest.(check int) "data survives growth" 99
    (Cell.key_exn (Storage.read s (List.hd bases)).(0))

let test_ext_array_views () =
  let s = Util.storage ~b:2 () in
  let a = Ext_array.create s ~blocks:10 in
  Alcotest.(check bool) "sub out of bounds" true
    (try
       ignore (Ext_array.sub a ~off:8 ~len:3);
       false
     with Invalid_argument _ -> true);
  let sub = Ext_array.sub a ~off:2 ~len:5 in
  let subsub = Ext_array.sub sub ~off:1 ~len:2 in
  Alcotest.(check int) "nested views" (Ext_array.addr a 3) (Ext_array.addr subsub 0)

let test_ext_array_window_edges () =
  let s = Util.storage ~b:2 () in
  let a = Ext_array.create s ~blocks:10 in
  (* Zero-length windows are legal anywhere in [0, blocks], including
     the far boundary. *)
  List.iter
    (fun off ->
      let z = Ext_array.sub a ~off ~len:0 in
      Alcotest.(check int) (Printf.sprintf "empty window at %d" off) 0 (Ext_array.blocks z))
    [ 0; 5; 10 ];
  (* off + len landing exactly on the boundary is in; one past is out. *)
  let tail = Ext_array.sub a ~off:7 ~len:3 in
  Alcotest.(check int) "boundary window kept" (Ext_array.addr a 7) (Ext_array.addr tail 0);
  List.iter
    (fun (off, len) ->
      Alcotest.(check bool) (Printf.sprintf "sub ~off:%d ~len:%d rejected" off len) true
        (try
           ignore (Ext_array.sub a ~off ~len);
           false
         with Invalid_argument _ -> true))
    [ (7, 4); (11, 0); (-1, 2); (2, -1) ]

let test_concat_views () =
  let s = Util.storage ~b:2 () in
  let a = Ext_array.create s ~blocks:12 in
  let left = Ext_array.sub a ~off:0 ~len:4 in
  let mid = Ext_array.sub a ~off:4 ~len:5 in
  let tail = Ext_array.sub a ~off:10 ~len:2 in
  (match Ext_array.concat_views left mid with
  | Some j ->
      Alcotest.(check int) "joined base" (Ext_array.addr a 0) (Ext_array.addr j 0);
      Alcotest.(check int) "joined size" 9 (Ext_array.blocks j)
  | None -> Alcotest.fail "adjacent views must concatenate");
  Alcotest.(check bool) "gap refused" true (Ext_array.concat_views mid tail = None);
  Alcotest.(check bool) "wrong order refused" true (Ext_array.concat_views mid left = None);
  (* A zero-length view is adjacent to the window starting at its base. *)
  let empty_at_4 = Ext_array.sub a ~off:4 ~len:0 in
  (match Ext_array.concat_views empty_at_4 mid with
  | Some j -> Alcotest.(check int) "empty + window = window" 5 (Ext_array.blocks j)
  | None -> Alcotest.fail "empty view must concatenate with its successor");
  (* Views of different storages never concatenate, even with aligned
     addresses. *)
  let s2 = Util.storage ~b:2 () in
  let a2 = Ext_array.create s2 ~blocks:12 in
  Alcotest.(check bool) "foreign storage refused" true
    (Ext_array.concat_views (Ext_array.sub a2 ~off:0 ~len:4) mid = None)

(* Regression: the out-of-band accessors must never disturb the
   adversary's view or the I/O accounting — tests and harnesses rely on
   peeking mid-run without perturbing the trace under test. *)
let test_unchecked_ops_leave_accounting_alone () =
  let s = Util.storage ~b:2 () in
  let a = Ext_array.of_cells s ~block_size:2 (Util.cells_of_keys [| 4; 7; 1; 9 |]) in
  ignore (Ext_array.read_block a 0);
  Ext_array.write_block a 1 (Ext_array.read_block a 1);
  let st = Storage.stats s and tr = Storage.trace s in
  let reads0 = Stats.reads st and writes0 = Stats.writes st in
  let len0 = Trace.length tr and dig0 = Trace.digest tr in
  let blk = Storage.unchecked_peek s (Ext_array.addr a 0) in
  Storage.unchecked_poke s (Ext_array.addr a 1) blk;
  ignore (Ext_array.to_cells a);
  ignore (Ext_array.items a);
  Alcotest.(check int) "reads unchanged" reads0 (Stats.reads st);
  Alcotest.(check int) "writes unchanged" writes0 (Stats.writes st);
  Alcotest.(check int) "retries unchanged" 0 (Stats.retries st);
  Alcotest.(check int) "trace length unchanged" len0 (Trace.length tr);
  Alcotest.(check int64) "trace digest unchanged" dig0 (Trace.digest tr)

let test_alloc_zero_and_negative () =
  let s = Util.storage ~b:2 () in
  (* alloc 0 is a defined no-op: returns the frontier, allocates
     nothing — including on a completely fresh store. *)
  Alcotest.(check int) "frontier of empty store" 0 (Storage.alloc s 0);
  Alcotest.(check int) "still empty" 0 (Storage.capacity s);
  let base = Storage.alloc s 5 in
  Alcotest.(check int) "frontier after real alloc" (base + 5) (Storage.alloc s 0);
  Alcotest.(check int) "capacity untouched" 5 (Storage.capacity s);
  Alcotest.(check int) "no I/O accounted" 0 (Stats.total (Storage.stats s));
  Alcotest.check_raises "negative alloc rejected"
    (Invalid_argument "Storage.alloc: negative size") (fun () -> ignore (Storage.alloc s (-1)))

let test_empty_and_single_arrays () =
  let s = Util.storage ~b:4 () in
  (* Zero-item inputs through each algorithm. *)
  let a = Ext_array.of_cells s ~block_size:4 [||] in
  let rng = Odex_crypto.Rng.create ~seed:1 in
  let o = Sort.run ~m:8 ~rng a in
  Alcotest.(check bool) "sort of empty ok" true o.Sort.ok;
  let d = Consolidation.run ~into:None a in
  Alcotest.(check int) "consolidation of empty" 0 (List.length (Ext_array.items d));
  let r = Butterfly.compact ~m:4 d in
  Alcotest.(check int) "butterfly of empty" 0 r;
  (* Single item. *)
  let a1 = Ext_array.of_cells s ~block_size:4 [| Cell.item ~key:5 ~value:1 () |] in
  let o1 = Sort.run ~m:8 ~rng a1 in
  Alcotest.(check bool) "sort of singleton" true o1.Sort.ok;
  Alcotest.(check (list int)) "singleton kept" [ 5 ] (Util.keys_of_items (Ext_array.items a1))

(* ---------------- algorithm parameter edges ---------------- *)

let test_quantiles_q_exceeds_m () =
  let s = Util.storage ~b:2 () in
  let a = Ext_array.of_cells s ~block_size:2 (Util.cells_of_keys (Array.init 50 (fun i -> i))) in
  let rng = Odex_crypto.Rng.create ~seed:2 in
  Alcotest.(check bool) "q > m rejected" true
    (try
       ignore (Quantiles.run ~m:4 ~rng ~q:5 a);
       false
     with Invalid_argument _ -> true)

let test_selection_extreme_ranks () =
  let rng0 = Odex_crypto.Rng.create ~seed:3 in
  let keys = Util.random_keys rng0 600 ~bound:100 in
  let sorted = List.sort compare (Array.to_list keys) in
  List.iter
    (fun k ->
      let s = Util.storage ~b:4 () in
      let a = Ext_array.of_cells s ~block_size:4 (Util.cells_of_keys keys) in
      let rng = Odex_crypto.Rng.create ~seed:(100 + k) in
      let r = Selection.select ~m:16 ~rng ~k a in
      match r.Selection.item with
      | Some it -> Alcotest.(check int) (Printf.sprintf "k=%d" k) (List.nth sorted (k - 1)) it.key
      | None -> Alcotest.failf "k=%d returned nothing" k)
    [ 1; 2; 599; 600 ]

let test_sort_tiny_cache () =
  (* m = 3 is the minimum for the butterfly; the sort must still work by
     falling back to its deterministic substrate. *)
  let keys = Util.random_keys (Odex_crypto.Rng.create ~seed:4) 300 ~bound:50 in
  let s = Util.storage ~b:2 () in
  let a = Ext_array.of_cells s ~block_size:2 (Util.cells_of_keys keys) in
  let rng = Odex_crypto.Rng.create ~seed:5 in
  let o = Sort.run ~m:3 ~rng a in
  Alcotest.(check bool) "ok at m=3" true o.Sort.ok;
  Util.check_sorted_by_key "m=3" a;
  Util.check_multiset "m=3" keys a

let test_butterfly_full_array () =
  (* Every block occupied: compaction is the identity. *)
  let s = Util.storage ~b:2 () in
  let a = Ext_array.of_cells s ~block_size:2 (Util.cells_of_keys (Array.init 32 (fun i -> i))) in
  let r = Butterfly.compact ~m:4 a in
  Alcotest.(check int) "all occupied" 16 r;
  Alcotest.(check (list int)) "identity" (List.init 32 (fun i -> i))
    (Util.keys_of_items (Ext_array.items a))

let test_loose_compaction_zero_capacity () =
  let s = Util.storage ~b:2 () in
  let a = Ext_array.create s ~blocks:16 in
  let rng = Odex_crypto.Rng.create ~seed:6 in
  let out = Loose_compaction.run ~m:8 ~rng ~capacity:0 a in
  Alcotest.(check int) "empty dest" 0 (Ext_array.blocks out.Loose_compaction.dest);
  Alcotest.(check bool) "ok" true out.Loose_compaction.ok

(* ---------------- hierarchical ORAM internals ---------------- *)

let test_hier_rebuild_schedule () =
  let s = Util.storage ~b:4 () in
  let rng = Odex_crypto.Rng.create ~seed:7 in
  let t = Odex_oram.Hierarchical_oram.init ~m:32 ~rng s ~values:(Array.make 30 1) in
  let z = Odex_oram.Hierarchical_oram.bucket_size t in
  (* After exactly k*z accesses there have been k rebuilds. *)
  for _ = 1 to 3 * z do
    ignore (Odex_oram.Hierarchical_oram.read t 0)
  done;
  Alcotest.(check int) "binary-counter schedule" 3 (Odex_oram.Hierarchical_oram.rebuilds t);
  Alcotest.(check bool) "healthy" true (Odex_oram.Hierarchical_oram.healthy t)

let test_hier_bucket_size_override () =
  let s = Util.storage ~b:4 () in
  let rng = Odex_crypto.Rng.create ~seed:8 in
  let t =
    Odex_oram.Hierarchical_oram.init ~bucket_size:9 ~m:32 ~rng s ~values:(Array.make 20 0)
  in
  Alcotest.(check int) "bucket size" 9 (Odex_oram.Hierarchical_oram.bucket_size t)

(* ---------------- trace/digest robustness ---------------- *)

let test_digest_collision_resistance_smoke () =
  (* Distinct short traces should essentially never collide. *)
  let digest ops =
    let t = Trace.create Trace.Digest in
    List.iter (Trace.record t) ops;
    Trace.digest t
  in
  let by_digest = Hashtbl.create 64 in
  let by_ops = Hashtbl.create 64 in
  let rng = Odex_crypto.Rng.create ~seed:9 in
  for _ = 1 to 2_000 do
    let ops =
      List.init
        (1 + Odex_crypto.Rng.int rng 6)
        (fun _ ->
          let addr = Odex_crypto.Rng.int rng 64 in
          if Odex_crypto.Rng.bool rng then Trace.Read addr else Trace.Write addr)
    in
    (* Trace equality compares (digest, length) — test the same pair. *)
    Hashtbl.replace by_digest (digest ops, List.length ops) ();
    Hashtbl.replace by_ops ops ()
  done;
  Alcotest.(check int) "no (digest, length) collisions" (Hashtbl.length by_ops)
    (Hashtbl.length by_digest)

let test_sweep_mixed_sizes () =
  (* The dummy-sort sweep accepts subarrays of different sizes. *)
  let s = Util.storage ~b:2 () in
  let mk n lo =
    Ext_array.of_cells s ~block_size:2 (Util.cells_of_keys (Array.init n (fun i -> lo + n - i)))
  in
  let arrays = [| mk 10 0; mk 30 100; mk 6 1000 |] in
  let ok = Failure_sweep.sweep ~m:8 arrays [| false; false; false |] in
  Alcotest.(check bool) "ok" true ok;
  Array.iter (fun a -> Util.check_sorted_by_key "swept" a) arrays

let suite =
  [
    ("storage growth", `Quick, test_storage_growth);
    ("ext_array views", `Quick, test_ext_array_views);
    ("ext_array window edges", `Quick, test_ext_array_window_edges);
    ("concat_views adjacency", `Quick, test_concat_views);
    ("unchecked ops leave accounting alone", `Quick, test_unchecked_ops_leave_accounting_alone);
    ("alloc zero and negative", `Quick, test_alloc_zero_and_negative);
    ("empty and singleton inputs", `Quick, test_empty_and_single_arrays);
    ("quantiles q > m", `Quick, test_quantiles_q_exceeds_m);
    ("selection extreme ranks", `Quick, test_selection_extreme_ranks);
    ("sort at m = 3", `Quick, test_sort_tiny_cache);
    ("butterfly full array", `Quick, test_butterfly_full_array);
    ("loose compaction capacity 0", `Quick, test_loose_compaction_zero_capacity);
    ("hier ORAM rebuild schedule", `Quick, test_hier_rebuild_schedule);
    ("hier ORAM bucket override", `Quick, test_hier_bucket_size_override);
    ("trace digest smoke", `Quick, test_digest_collision_resistance_smoke);
    ("sweep mixed sizes", `Quick, test_sweep_mixed_sizes);
  ]
