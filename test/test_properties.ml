(* Cross-cutting property tests (qcheck) for the core algorithms. *)

open Odex_extmem
open Odex

let keys_gen = QCheck2.Gen.(list_size (int_range 1 400) (int_range (-1000) 1000))

let prop_consolidation =
  Util.qcheck_case ~name:"consolidation: postcondition + order + multiset" ~count:60
    QCheck2.Gen.(triple keys_gen (int_range 1 6) (int_range 0 99))
    (fun (keys, b, thresh) ->
      let keys = Array.of_list keys in
      let cells = Util.cells_of_keys keys in
      let s = Util.storage ~b () in
      let a = Ext_array.of_cells s ~block_size:b cells in
      let pred (it : Cell.item) = it.key mod 100 <= thresh - 50 || it.key mod 100 >= thresh in
      let d = Consolidation.run ~distinguished:pred ~into:None a in
      let expected =
        List.filter_map
          (fun c ->
            match c with
            | Cell.Empty -> None
            | Cell.Item it -> if pred it then Some it.key else None)
          (Array.to_list cells)
      in
      Consolidation.occupied_prefix_property d
      && Util.keys_of_items (Ext_array.items d) = expected)

let prop_butterfly_roundtrip =
  Util.qcheck_case ~name:"butterfly: compact then expand restores positions" ~count:50
    QCheck2.Gen.(pair (list_size (int_range 1 80) bool) (int_range 3 12))
    (fun (occupancy, m) ->
      let n = List.length occupancy in
      let s = Util.storage ~b:2 () in
      let a = Ext_array.create s ~blocks:n in
      let original =
        List.filteri (fun i _ -> List.nth occupancy i) (List.init n (fun i -> i))
      in
      List.iteri
        (fun rank pos ->
          Storage.unchecked_poke s (Ext_array.addr a pos)
            [| Cell.item ~key:rank ~value:rank (); Cell.item ~key:rank ~value:1 () |])
        original;
      let r = Butterfly.compact ~m a in
      if r <> List.length original then false
      else begin
        let orig = Array.of_list original in
        if r > 0 then Butterfly.expand ~m a (fun i -> orig.(i) - i);
        let occupied_now =
          List.filter
            (fun i -> not (Block.is_empty (Storage.unchecked_peek s (Ext_array.addr a i))))
            (List.init n (fun i -> i))
        in
        occupied_now = original
      end)

let prop_quantiles_match_reference =
  Util.qcheck_case ~name:"quantiles match the sorted reference" ~count:30
    QCheck2.Gen.(triple keys_gen (int_range 1 6) int)
    (fun (keys, q, seed) ->
      let keys = Array.of_list keys in
      let cells = Util.cells_of_keys keys in
      let s = Util.storage ~b:4 () in
      let a = Ext_array.of_cells s ~block_size:4 cells in
      let rng = Odex_crypto.Rng.create ~seed in
      let r = Quantiles.run ~m:8 ~rng ~q a in
      if not r.Quantiles.ok then true (* flagged failures are allowed, silently wrong is not *)
      else begin
        let sorted = List.sort compare (Array.to_list keys) in
        let arr = Array.of_list sorted in
        let total = Array.length arr in
        let reference =
          Array.init q (fun i -> arr.(Quantiles.rank_of_quantile ~total ~q (i + 1) - 1))
        in
        Array.for_all2
          (fun (it : Cell.item) want -> it.key = want)
          r.Quantiles.quantiles reference
      end)

let prop_multiway_monochromatic =
  Util.qcheck_case ~name:"multiway consolidation: monochromatic + order per color" ~count:40
    QCheck2.Gen.(triple keys_gen (int_range 1 7) (int_range 1 5))
    (fun (keys, colors, b) ->
      let keys = Array.of_list keys in
      let cells = Util.cells_of_keys keys in
      let s = Util.storage ~b () in
      let a = Ext_array.of_cells s ~block_size:b cells in
      let color_of (it : Cell.item) = (it.key mod colors + colors) mod colors in
      let d = Multiway.consolidate ~colors ~color_of a in
      Multiway.monochromatic ~color_of d
      && Util.sorted_multiset_equal
           (Util.keys_of_items (Ext_array.items d))
           (Array.to_list keys))

let prop_shuffle_deal_conserves =
  Util.qcheck_case ~name:"shuffle+deal conserves every item" ~count:30
    QCheck2.Gen.(pair keys_gen int)
    (fun (keys, seed) ->
      let keys = Array.of_list keys in
      let colors = 3 in
      let cells = Util.cells_of_keys keys in
      let s = Util.storage ~b:4 () in
      let a = Ext_array.of_cells s ~block_size:4 cells in
      let color_of (it : Cell.item) = (it.key mod colors + colors) mod colors in
      let mono = Multiway.consolidate ~colors ~color_of a in
      let rng = Odex_crypto.Rng.create ~seed in
      Shuffle_deal.shuffle ~rng mono;
      let { Shuffle_deal.outputs; ok } =
        Shuffle_deal.deal ~colors ~color_of ~window:8 ~quota:8 ~carry_budget:64 mono
      in
      let dealt =
        List.concat_map (fun o -> Util.keys_of_items (Ext_array.items o)) (Array.to_list outputs)
      in
      ok
      && Util.sorted_multiset_equal dealt (Array.to_list keys)
      && Array.for_all
           (fun (o : Ext_array.t) ->
             List.for_all
               (fun (it : Cell.item) ->
                 (* each output is monochromatic overall *)
                 color_of it = color_of (List.hd (Ext_array.items o)))
               (Ext_array.items o)
             || Ext_array.items o = [])
           outputs)

let prop_logstar_conserves =
  Util.qcheck_case ~name:"logstar compaction conserves occupied blocks" ~count:20
    QCheck2.Gen.(pair (list_size (int_range 8 40) bool) int)
    (fun (occupancy, seed) ->
      let n = 8 * List.length occupancy in
      let s = Util.storage ~b:2 () in
      let a = Ext_array.create s ~blocks:n in
      let occupied =
        List.filter_map
          (fun (i, occ) -> if occ then Some (i * 8) else None)
          (List.mapi (fun i occ -> (i, occ)) occupancy)
      in
      (* keep load <= n/4 by spacing occupied blocks 8 apart *)
      List.iteri
        (fun j pos ->
          Storage.unchecked_poke s (Ext_array.addr a pos)
            [| Cell.item ~key:j ~value:j (); Cell.item ~key:j ~value:1 () |])
        occupied;
      let rng = Odex_crypto.Rng.create ~seed in
      let out = Logstar_compaction.run ~m:16 ~rng ~capacity:(max 1 (n / 4)) a in
      (not out.Logstar_compaction.ok)
      || List.length (Ext_array.items out.Logstar_compaction.dest) = 2 * List.length occupied)

let prop_selection_exponent_quarter =
  Util.qcheck_case ~name:"selection with e=1/4 matches reference" ~count:20
    QCheck2.Gen.(pair (list_size (int_range 50 400) (int_range 0 100)) int)
    (fun (keys, seed) ->
      let keys = Array.of_list keys in
      let n = Array.length keys in
      let k = 1 + (abs seed mod n) in
      let cells = Util.cells_of_keys keys in
      let s = Util.storage ~b:4 () in
      let a = Ext_array.of_cells s ~block_size:4 cells in
      let rng = Odex_crypto.Rng.create ~seed in
      let r = Selection.select ~exponent:0.25 ~m:8 ~rng ~k a in
      (* A flagged randomized failure is acceptable; a silent wrong
         answer is not. *)
      (not r.Selection.ok)
      ||
      match r.Selection.item with
      | None -> false
      | Some it -> it.key = List.nth (List.sort compare (Array.to_list keys)) (k - 1))

let prop_sort_engines_agree =
  Util.qcheck_case ~name:"sort bucket engines all produce the same multiset, sorted" ~count:10
    QCheck2.Gen.(pair (list_size (int_range 100 500) (int_range (-50) 50)) int)
    (fun (keys, seed) ->
      let keys = Array.of_list keys in
      List.for_all
        (fun engine ->
          let cells = Util.cells_of_keys keys in
          let s = Util.storage ~b:4 () in
          let a = Ext_array.of_cells s ~block_size:4 cells in
          let rng = Odex_crypto.Rng.create ~seed in
          let o = Sort.run ~bucket_engine:engine ~m:16 ~rng a in
          (not o.Sort.ok)
          || Util.keys_of_items (Ext_array.items a) = List.sort compare (Array.to_list keys))
        [ `Auto; `Skip; `Butterfly; `Loose ])

(* S4: batched reads and writes of arbitrary interleaved sizes share one
   scratch buffer (Storage.run_buf). A smaller run after a larger one
   must never surface the larger run's leftover bytes, and the retained
   scratch stays within its documented bound (< 2x the largest run's
   payload bytes, and never below what the biggest run needed). *)
let prop_run_buf_never_stale =
  Util.qcheck_case ~name:"interleaved batched runs never read stale scratch" ~count:40
    QCheck2.Gen.(
      triple (int_range 1 5) (int_range 0 1)
        (list_size (int_range 1 40) (triple bool (int_range 0 47) (int_range 1 16))))
    (fun (b, use_cipher, ops) ->
      let total = 48 in
      let cipher = if use_cipher = 1 then Some (Odex_crypto.Cipher.key_of_int 9) else None in
      let s = Util.storage ?cipher ~b () in
      let base = Storage.alloc s total in
      (* Mirror model: what each address must currently hold. *)
      let model = Array.init total (fun _ -> Block.make b) in
      let payload = 8 + Block.encoded_size b in
      let stamp = ref 0 in
      let ok = ref true in
      List.iter
        (fun (is_write, off, len) ->
          let len = min len (total - off) in
          if len > 0 then
            if is_write then begin
              let blks =
                Array.init len (fun i ->
                    incr stamp;
                    let blk = Block.make b in
                    blk.(0) <- Cell.item ~key:!stamp ~value:(off + i) ();
                    blk)
              in
              Storage.write_many s (base + off) blks;
              Array.iteri (fun i blk -> model.(off + i) <- Block.copy blk) blks
            end
            else begin
              let got = Storage.read_many s (base + off) len in
              Array.iteri
                (fun i blk ->
                  if not (Array.for_all2 Cell.equal blk model.(off + i)) then ok := false)
                got
            end)
        ops;
      let final = Storage.read_many s base total in
      Array.iteri
        (fun i blk -> if not (Array.for_all2 Cell.equal blk model.(i)) then ok := false)
        final;
      (* The documented retention bound: the scratch doubles up to the
         largest run's byte need, so it never exceeds twice that. The
         final full-array read makes [total] the largest run. *)
      !ok
      && Storage.scratch_bytes s >= total * payload
      && Storage.scratch_bytes s < 2 * total * payload)

let prop_prp_roundtrip =
  Util.qcheck_case ~name:"PRP apply/inverse roundtrip on random domains" ~count:60
    QCheck2.Gen.(triple (int_range 1 5000) int (int_range 0 10_000))
    (fun (domain, key, x) ->
      let x = x mod domain in
      let prp = Odex_crypto.Prp.create ~domain (Odex_crypto.Prf.key_of_int key) in
      Odex_crypto.Prp.inverse prp (Odex_crypto.Prp.apply prp x) = x)

let prop_prp_bijection =
  Util.qcheck_case ~name:"PRP is a bijection on its whole domain" ~count:60
    QCheck2.Gen.(pair (int_range 1 600) int)
    (fun (domain, key) ->
      let prp = Odex_crypto.Prp.create ~domain (Odex_crypto.Prf.key_of_int key) in
      let image = Array.init domain (fun x -> Odex_crypto.Prp.apply prp x) in
      (* In range, no collisions (= surjective on a finite domain), and
         inverted exactly. *)
      Array.for_all (fun y -> y >= 0 && y < domain) image
      && List.sort_uniq compare (Array.to_list image) = List.init domain (fun i -> i)
      && Array.for_all (fun x -> Odex_crypto.Prp.inverse prp image.(x) = x)
           (Array.init domain (fun i -> i)))

(* --- Emodel arithmetic: the quantities every bound is stated in ----- *)

let prop_ceil_div =
  Util.qcheck_case ~name:"ceil_div is the least sufficient quotient" ~count:200
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 1 10_000))
    (fun (a, b) ->
      let q = Emodel.ceil_div a b in
      (* q blocks of size b cover a... *)
      q * b >= a
      (* ...and q is the least such count (0 only covers a = 0). *)
      && ((q = 0 && a = 0) || (q - 1) * b < a)
      (* Exactness on multiples, and adding a full divisor adds one. *)
      && Emodel.ceil_div (q * b) b = q
      && Emodel.ceil_div (a + b) b = q + 1)

let prop_ilog2 =
  Util.qcheck_case ~name:"ilog2 floor/ceil bracket n between powers of two" ~count:200
    QCheck2.Gen.(int_range 1 (1 lsl 50))
    (fun n ->
      let f = Emodel.ilog2_floor n and c = Emodel.ilog2_ceil n in
      let power_of_two = n land (n - 1) = 0 in
      (1 lsl f) <= n
      && n < 1 lsl (f + 1)
      && n <= 1 lsl c
      && (c = 0 || 1 lsl (c - 1) < n)
      && c - f = (if power_of_two then 0 else 1))

let prop_log_star =
  Util.qcheck_case ~name:"log* recurrence, monotonicity and anchors" ~count:100
    QCheck2.Gen.(pair (int_range 1 61) (int_range 1 1_000_000))
    (fun (k, n) ->
      (* The defining recurrence, exact on powers of two (log2 is exact
         on them in floating point): log*(2^k) = 1 + log*(k). *)
      Emodel.log_star (1 lsl k) = 1 + Emodel.log_star k
      (* Monotone in n... *)
      && Emodel.log_star n <= Emodel.log_star (n + 1)
      (* ...and minuscule even at the top of the int range. *)
      && Emodel.log_star max_int <= 5
      && Emodel.log_star 1 = 0
      && Emodel.log_star 2 = 1
      && Emodel.log_star 16 = 3
      && Emodel.log_star 65536 = 4)

let prop_tower_of_twos =
  Util.qcheck_case ~name:"tower of twos: recurrence then saturation at max_int" ~count:50
    QCheck2.Gen.(int_range 1 1_000)
    (fun i ->
      let t = Emodel.tower_of_twos i in
      (* Appendix B: t1 = 4, t_{i+1} = 2^{t_i}, clamped at max_int once
         2^{t_i} no longer fits in an int. *)
      Emodel.tower_of_twos 1 = 4
      && Emodel.tower_of_twos 2 = 16
      && Emodel.tower_of_twos 3 = 65536
      && (i < 4 || t = max_int)
      (* The recurrence is only evaluable while 2^{t_i} fits an int
         (shifts past 62 are meaningless): t2 and t3 check it, t4 on is
         the saturation branch above. *)
      && (i > 2 || Emodel.tower_of_twos (i + 1) = 1 lsl t)
      && t <= Emodel.tower_of_twos (i + 1))

(* --- seeded Monte Carlo: the paper's success probabilities --------- *)

(* Theorem 8's failure event is a region overflow during the halving
   rounds, probability <= (N/B)^{-d}. 200 deterministic trials at a
   valid sparse shape (occupied <= capacity = n/8) must see essentially
   none of it; the 2% ceiling is orders of magnitude above the bound,
   so a regression that breaks the structure trips it long before the
   suite ever flakes. *)
let test_loose_overflow_rate () =
  let trials = 200 in
  let b = 2 and n_blocks = 128 and capacity = 16 and m = 32 in
  let failures =
    Odex.Failure_sweep.monte_carlo ~trials ~seed:0x100_5E (fun ~rng ~trial:_ ->
        (* A random capacity-sized subset of blocks is occupied. *)
        let occupied = Array.make n_blocks false in
        let placed = ref 0 in
        while !placed < capacity do
          let i = Odex_crypto.Rng.int rng n_blocks in
          if not occupied.(i) then begin
            occupied.(i) <- true;
            incr placed
          end
        done;
        let cells =
          Array.init (n_blocks * b) (fun idx ->
              if occupied.(idx / b) then
                Cell.item ~key:(Odex_crypto.Rng.int rng 10_000) ~value:idx ()
              else Cell.empty)
        in
        let (out : Odex.Loose_compaction.outcome), _ =
          Util.with_array ~b cells (fun _s a ->
              Odex.Loose_compaction.run ~m ~rng ~capacity a)
        in
        out.ok)
  in
  if failures * 50 > trials then
    Alcotest.failf "loose compaction overflowed in %d/%d trials (bound ~(N/B)^-d)" failures
      trials

(* Lemma 1: decode of an IBLT with k = 3 hashes succeeds whp while the
   load n/size stays under the ~81% threshold (E12 measures the sharp
   version). At load 1/3 — the Theorem 4 operating point, multiplier
   3 — the failure rate must be essentially zero; 300 seeded trials,
   1% ceiling. *)
let iblt_decode_failures ~trials ~size ~n =
  Odex.Failure_sweep.monte_carlo ~trials ~seed:0x1B17 (fun ~rng ~trial:_ ->
      let key = Odex_crypto.Prf.key_of_int (Odex_crypto.Rng.int rng 0x3FFF_FFFF) in
      let t = Odex_iblt.Iblt.create ~k:3 ~size key in
      let seen = Hashtbl.create n in
      while Hashtbl.length seen < n do
        let k' = Odex_crypto.Rng.int rng 1_000_000 in
        if not (Hashtbl.mem seen k') then begin
          Hashtbl.add seen k' ();
          Odex_iblt.Iblt.insert t ~key:k' ~value:(k' * 3)
        end
      done;
      let _, complete = Odex_iblt.Iblt.list_entries t in
      complete)

let test_iblt_decode_rate () =
  (* The 1 - 1/n^c bound is asymptotic; at n = 180 the measured failure
     rate at this load is ~0, and the 2% ceiling gives the generous
     slack the small-n regime needs while still catching any structural
     regression (a broken hash family fails nearly always). *)
  let trials = 300 in
  let failures = iblt_decode_failures ~trials ~size:540 ~n:180 in
  if failures * 50 > trials then
    Alcotest.failf "IBLT decode failed %d/%d times at load 1/3 (Lemma 1 says whp success)"
      failures trials

(* Negative control pinning the measurement's power: past the decode
   threshold (load 95%) the same harness must see failures in at least
   half the trials — if it doesn't, the suite above is vacuous. *)
let test_iblt_overload_fails () =
  let trials = 100 in
  let failures = iblt_decode_failures ~trials ~size:60 ~n:57 in
  if failures * 2 < trials then
    Alcotest.failf "overloaded IBLT decoded fine %d/%d times - the rate test has no power"
      (trials - failures) trials

(* Failure sweeping under Monte Carlo failure patterns: whatever random
   subset of subarrays "failed", the sweep must (a) leave every failed
   subarray sorted and (b) produce the exact same trace as the
   all-healthy run — the Theorem 21 point that repair reveals nothing.
   40 seeded trials through the same harness. *)
let test_sweep_repairs_obliviously () =
  let b = 4 and m = 8 in
  let sizes = [| 6; 9; 4 |] in
  let run_once ~rng flags =
    let s = Util.storage ~b () in
    let arrs =
      Array.map
        (fun n_blocks ->
          let cells =
            Array.init (n_blocks * b) (fun _ ->
                Cell.item ~key:(Odex_crypto.Rng.int rng 1_000) ~value:0 ())
          in
          Ext_array.of_cells s ~block_size:b cells)
        sizes
    in
    ignore (Odex.Failure_sweep.sweep ~m arrs flags);
    let sorted_where_required =
      Array.for_all2
        (fun a ok ->
          ok || Util.is_sorted_list (Util.keys_of_items (Ext_array.items a)))
        arrs flags
    in
    (Trace.digest (Storage.trace s), sorted_where_required)
  in
  let baseline, _ = run_once ~rng:(Odex_crypto.Rng.create ~seed:0xBA5E) [| true; true; true |] in
  let failures =
    Odex.Failure_sweep.monte_carlo ~trials:40 ~seed:0x5EEE (fun ~rng ~trial:_ ->
        let flags = Array.init (Array.length sizes) (fun _ -> Odex_crypto.Rng.bool rng) in
        let digest, repaired = run_once ~rng flags in
        digest = baseline && repaired)
  in
  Alcotest.(check int) "every failure pattern repaired under the baseline trace" 0 failures

(* --- bucket oblivious sort: the 2^-Omega(Z) overflow bound ---------- *)

(* The routing's only failure mode is a bucket overflow, and the event
   is a pure function of the coins: Bucket_sort.simulate_overflow
   replays exactly the coin stream the pipeline would draw, so the
   Monte-Carlo sweep needs no I/O at all. Shape: n = 2Z cells in unit
   blocks gives beta = 4 buckets over 2 levels, so the union bound
   beta*L*e^{-Z/6} = 8e^{-Z/6} evaluates to 0.556 / 0.0387 / 1.8e-4 at
   Z = 16 / 32 / 64 — every measured rate must sit at or below its
   bound, and the rates must not grow as Z doubles. *)
let bucket_overflow_failures ~trials ~z =
  let plan = Odex_sortnet.Bucket_sort.make_plan ~b:1 ~z_cells:z ~n_cells:(2 * z) in
  let failures =
    Odex.Failure_sweep.monte_carlo ~trials ~seed:(0xB0C4 + z) (fun ~rng ~trial:_ ->
        not
          (Odex_sortnet.Bucket_sort.simulate_overflow plan
             ~master:(Odex_crypto.Rng.int rng 0x3FFFFFFF)
             ~b:1 ~n_blocks:(2 * z)))
  in
  (failures, Odex_sortnet.Bucket_sort.overflow_bound plan)

let test_bucket_overflow_bound () =
  let trials = 400 in
  let rates =
    List.map
      (fun z ->
        let failures, bound = bucket_overflow_failures ~trials ~z in
        (* Ceiling: the analytic bound plus 3 binomial standard
           deviations of headroom — measured rates run far below the
           Chernoff bound, so tripping this means broken routing. *)
        let sigma = sqrt (bound *. (1. -. bound) *. Float.of_int trials) in
        let ceiling = (bound *. Float.of_int trials) +. (3. *. sigma) +. 2. in
        if Float.of_int failures > ceiling then
          Alcotest.failf "Z=%d: %d/%d overflows exceeds bound %.4f (ceiling %.1f)" z failures
            trials bound ceiling;
        failures)
      [ 16; 32; 64 ]
  in
  match rates with
  | [ r16; r32; r64 ] ->
      Alcotest.(check bool) "overflow rate falls as Z doubles" true (r16 >= r32 && r32 >= r64)
  | _ -> assert false

(* Negative control pinning the sweep's power: at Z = 4 the exponent is
   gone (bound = 1) and the real pipeline must overflow in at least
   half the runs — through the actual permutation, not the simulator,
   so the control also certifies the two agree on the failure event. *)
let test_bucket_undersized_z_overflows () =
  let trials = 40 in
  let b = 1 and n_blocks = 64 in
  let failures =
    Odex.Failure_sweep.monte_carlo ~trials ~seed:0xBAD2 (fun ~rng ~trial:_ ->
        let cells =
          Array.init (n_blocks * b) (fun i ->
              Cell.item ~key:(Odex_crypto.Rng.int rng 10_000) ~value:i ())
        in
        let (o : Odex_sortnet.Bucket_sort.outcome), _ =
          Util.with_array ~b cells (fun _s a ->
              Odex_sortnet.Oblivious_permutation.run ~z_cells:4 ~rng ~m:18 a)
        in
        o.ok)
  in
  if failures * 2 < trials then
    Alcotest.failf "undersized Z=4 permutation succeeded %d/%d times - the bound sweep has no power"
      (trials - failures) trials

(* The same sweep through the real permutation at Z = 32 (the fence):
   failures are reported via outcome.ok, survivors must still hold the
   input multiset (padded with empties, never silently wrong). *)
let test_bucket_real_overflow_rate () =
  let trials = 60 in
  let b = 1 and n_blocks = 256 in
  let plan = Odex_sortnet.Bucket_sort.make_plan ~b ~z_cells:32 ~n_cells:n_blocks in
  let bound = Odex_sortnet.Bucket_sort.overflow_bound plan in
  let failures =
    Odex.Failure_sweep.monte_carlo ~trials ~seed:0xB32 (fun ~rng ~trial:_ ->
        let keys = Array.init n_blocks (fun i -> i * 17 mod 1009) in
        let (o : Odex_sortnet.Bucket_sort.outcome), a =
          Util.with_array ~b (Util.cells_of_keys keys) (fun _s a ->
              Odex_sortnet.Oblivious_permutation.run ~z_cells:32 ~rng ~m:130 a)
        in
        if o.ok then Util.check_multiset "surviving permutation" keys a;
        o.ok)
  in
  let sigma = sqrt (bound *. (1. -. bound) *. Float.of_int trials) in
  if Float.of_int failures > (bound *. Float.of_int trials) +. (3. *. sigma) +. 2. then
    Alcotest.failf "real permutation overflowed %d/%d times at Z=32 (bound %.3f)" failures
      trials bound

let prop_shuffle_engines_agree =
  Util.qcheck_case ~name:"sort shuffle engines both produce the same multiset, sorted"
    ~count:10
    QCheck2.Gen.(pair (list_size (int_range 100 500) (int_range (-50) 50)) int)
    (fun (keys, seed) ->
      let keys = Array.of_list keys in
      List.for_all
        (fun shuffle ->
          let cells = Util.cells_of_keys keys in
          let s = Util.storage ~b:4 () in
          let a = Ext_array.of_cells s ~block_size:4 cells in
          let rng = Odex_crypto.Rng.create ~seed in
          (* m = 20 clears the bucket geometry's m >= 18 floor, so the
             `Bucket leg really routes through the butterfly. *)
          let o = Sort.run ~shuffle ~m:20 ~rng a in
          (not o.Sort.ok)
          || Util.keys_of_items (Ext_array.items a) = List.sort compare (Array.to_list keys))
        [ `Knuth; `Bucket ])

let suite =
  [
    Alcotest.test_case "MC: loose compaction overflow rate" `Quick test_loose_overflow_rate;
    Alcotest.test_case "MC: bucket overflow vs 2^-Z/6 bound" `Quick test_bucket_overflow_bound;
    Alcotest.test_case "MC: bucket undersized-Z control" `Quick
      test_bucket_undersized_z_overflows;
    Alcotest.test_case "MC: bucket real overflow rate at Z=32" `Quick
      test_bucket_real_overflow_rate;
    Alcotest.test_case "MC: IBLT decode rate at load 1/3" `Quick test_iblt_decode_rate;
    Alcotest.test_case "MC: IBLT overload control" `Quick test_iblt_overload_fails;
    Alcotest.test_case "MC: sweep repairs obliviously" `Quick test_sweep_repairs_obliviously;
    prop_consolidation;
    prop_butterfly_roundtrip;
    prop_quantiles_match_reference;
    prop_multiway_monochromatic;
    prop_shuffle_deal_conserves;
    prop_logstar_conserves;
    prop_selection_exponent_quarter;
    prop_sort_engines_agree;
    prop_shuffle_engines_agree;
    prop_run_buf_never_stale;
    prop_prp_roundtrip;
    prop_prp_bijection;
    prop_ceil_div;
    prop_ilog2;
    prop_log_star;
    prop_tower_of_twos;
  ]
