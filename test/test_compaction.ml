open Odex_extmem
open Odex

(* Build a consolidated-style array directly: a list of (position,
   payload-seed) pairs for occupied blocks in an n-block array. *)
let consolidated_array ?(b = 4) ~n occupied =
  let s = Util.storage ~b () in
  let a = Ext_array.create s ~blocks:n in
  List.iter
    (fun (pos, seed) ->
      let blk =
        Array.init b (fun j -> Cell.item ~tag:((pos * b) + j) ~key:((seed * 100) + j) ~value:seed ())
      in
      Storage.unchecked_poke s (Ext_array.addr a pos) blk)
    occupied;
  (s, a)

let occupied_positions a =
  let s = Ext_array.storage a in
  List.filter
    (fun i -> not (Block.is_empty (Storage.unchecked_peek s (Ext_array.addr a i))))
    (List.init (Ext_array.blocks a) (fun i -> i))

let block_seed a i =
  match Block.items (Storage.unchecked_peek (Ext_array.storage a) (Ext_array.addr a i)) with
  | it :: _ -> it.value
  | [] -> -1

(* ---------------- consolidation (Lemma 3) ---------------- *)

let test_consolidation_basic () =
  let keys = [| 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5 |] in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:3 () in
  let a = Ext_array.of_cells s ~block_size:3 cells in
  let even (it : Cell.item) = it.key mod 2 = 0 in
  let d = Consolidation.run ~distinguished:even ~into:None a in
  Alcotest.(check bool) "postcondition" true (Consolidation.occupied_prefix_property d);
  Alcotest.(check (list int)) "even keys in order" [ 4; 2; 6 ]
    (Util.keys_of_items (Ext_array.items d));
  (* exactly n reads + n writes *)
  Alcotest.(check int) "I/O count" (2 * Ext_array.blocks a) (Stats.total (Storage.stats s))

let test_consolidation_all_distinguished () =
  let keys = Array.init 23 (fun i -> i) in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let d = Consolidation.run ~into:None a in
  Alcotest.(check bool) "postcondition" true (Consolidation.occupied_prefix_property d);
  Util.check_multiset "consolidation" keys d

let test_consolidation_sparse_input () =
  (* Items scattered among empties. *)
  let cells =
    Array.init 40 (fun i -> if i mod 7 = 0 then Cell.item ~tag:i ~key:i ~value:i () else Cell.empty)
  in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let d = Consolidation.run ~into:None a in
  Alcotest.(check bool) "postcondition" true (Consolidation.occupied_prefix_property d);
  Alcotest.(check (list int)) "order kept" [ 0; 7; 14; 21; 28; 35 ]
    (Util.keys_of_items (Ext_array.items d))

let test_consolidation_oblivious () =
  let t1 =
    Util.trace_digest ~b:4 ~seed:0 (Util.cells_of_keys (Array.init 30 (fun i -> i)))
      (fun _ _ a -> ignore (Consolidation.run ~into:None a))
  in
  let t2 =
    Util.trace_digest ~b:4 ~seed:0 (Array.make 30 Cell.empty) (fun _ _ a ->
        ignore (Consolidation.run ~into:None a))
  in
  Alcotest.(check bool) "trace independent of occupancy" true (t1 = t2)

(* ---------------- butterfly (Figure 1 / Lemma 5 / Theorem 6) -------- *)

let test_butterfly_figure1 () =
  (* The instance of Figure 1: n = 16, occupied cells at positions
     2,4,5,9,12,13,15 carrying initial distance labels 2,3,3,6,8,8,9. *)
  let _, a =
    consolidated_array ~n:16 (List.map (fun p -> (p, p + 1)) [ 2; 4; 5; 9; 12; 13; 15 ])
  in
  let levels = Butterfly.naive_levels a in
  let occupied_labels row = List.filter (fun d -> d >= 0) row in
  let expect =
    [
      [ 2; 3; 3; 6; 8; 8; 9 ];
      [ 2; 2; 2; 6; 8; 8; 8 ];
      [ 0; 0; 0; 4; 8; 8; 8 ];
      [ 0; 0; 0; 0; 8; 8; 8 ];
      [ 0; 0; 0; 0; 0; 0; 0 ];
    ]
  in
  Alcotest.(check int) "level count" 5 (List.length levels);
  List.iteri
    (fun i (row, want) ->
      Alcotest.(check (list int)) (Printf.sprintf "level %d labels" i) want (occupied_labels row))
    (List.combine levels expect)

let test_butterfly_compacts () =
  let occupied = [ (2, 1); (4, 2); (5, 3); (9, 4); (12, 5); (13, 6); (15, 7) ] in
  let _, a = consolidated_array ~n:16 occupied in
  let r = Butterfly.compact ~m:4 a in
  Alcotest.(check int) "count" 7 r;
  Alcotest.(check (list int)) "compact prefix" [ 0; 1; 2; 3; 4; 5; 6 ] (occupied_positions a);
  (* order preserved: seeds 1..7 in sequence *)
  Alcotest.(check (list int)) "order" [ 1; 2; 3; 4; 5; 6; 7 ]
    (List.map (block_seed a) [ 0; 1; 2; 3; 4; 5; 6 ])

let test_butterfly_random () =
  let rng = Odex_crypto.Rng.create ~seed:11 in
  for trial = 1 to 30 do
    let n = 1 + Odex_crypto.Rng.int rng 60 in
    let m = 3 + Odex_crypto.Rng.int rng 10 in
    let occupied =
      List.filteri (fun _ _ -> Odex_crypto.Rng.bool rng) (List.init n (fun i -> i))
    in
    let _, a = consolidated_array ~n (List.mapi (fun j p -> (p, j + 1)) occupied) in
    let r = Butterfly.compact ~m a in
    if r <> List.length occupied then Alcotest.failf "trial %d: wrong count" trial;
    let expect_prefix = List.init r (fun i -> i) in
    if occupied_positions a <> expect_prefix then Alcotest.failf "trial %d: not compact" trial;
    let seeds = List.map (block_seed a) expect_prefix in
    if seeds <> List.init r (fun i -> i + 1) then Alcotest.failf "trial %d: order broken" trial
  done

let test_butterfly_aux_cleared_tags_kept () =
  let _, a = consolidated_array ~n:8 [ (3, 1); (6, 2) ] in
  ignore (Butterfly.compact ~m:4 a);
  List.iter
    (fun (it : Cell.item) ->
      Alcotest.(check int) "aux cleared" 0 it.aux;
      Alcotest.(check bool) "tag kept" true (it.tag >= 0))
    (Ext_array.items a)

let test_butterfly_oblivious () =
  let trace occupied =
    let s = Util.storage ~b:2 () in
    let a = Ext_array.create s ~blocks:32 in
    List.iter
      (fun pos ->
        Storage.unchecked_poke s (Ext_array.addr a pos)
          [| Cell.item ~key:pos ~value:0 (); Cell.item ~key:pos ~value:1 () |])
      occupied;
    ignore (Butterfly.compact ~m:5 a);
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  let t1 = trace [ 0; 1; 2 ] in
  let t2 = trace [ 29; 30; 31 ] in
  let t3 = trace [] in
  Alcotest.(check bool) "occupancy-independent trace" true (t1 = t2 && t2 = t3)

let test_butterfly_expand_roundtrip () =
  let occupied = [ (1, 1); (4, 2); (7, 3); (8, 4); (13, 5) ] in
  let _, a = consolidated_array ~n:16 occupied in
  let r = Butterfly.compact ~m:4 a in
  Alcotest.(check int) "compacted" 5 r;
  (* Send them back to their original slots. *)
  let original = Array.of_list (List.map fst occupied) in
  Butterfly.expand ~m:4 a (fun i -> original.(i) - i);
  Alcotest.(check (list int)) "restored positions" (Array.to_list original) (occupied_positions a);
  Alcotest.(check (list int)) "order preserved" [ 1; 2; 3; 4; 5 ]
    (List.map (block_seed a) (Array.to_list original))

let test_butterfly_m3_minimum () =
  let _, a = consolidated_array ~n:9 [ (2, 1); (5, 2); (8, 3) ] in
  let r = Butterfly.compact ~m:3 a in
  Alcotest.(check int) "works at m=3" 3 r;
  Alcotest.(check (list int)) "prefix" [ 0; 1; 2 ] (occupied_positions a);
  let _, a2 = consolidated_array ~n:4 [ (1, 1) ] in
  Alcotest.(check bool) "m=2 rejected" true
    (try
       ignore (Butterfly.compact ~m:2 a2);
       false
     with Invalid_argument _ -> true)

let test_butterfly_expand_invalid_factor () =
  let _, a = consolidated_array ~n:8 [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "oob factor rejected" true
    (try
       Butterfly.expand ~m:4 a (fun _ -> 100);
       false
     with Invalid_argument _ -> true)

(* ---------------- sparse compaction (Theorem 4) ---------------- *)

let test_sparse_compaction () =
  let occupied = [ (3, 1); (10, 2); (17, 3); (25, 4) ] in
  let _, a = consolidated_array ~b:4 ~n:30 occupied in
  let key = Odex_crypto.Prf.key_of_int 5 in
  let out = Sparse_compaction.run ~m:64 ~key ~capacity:6 a in
  Alcotest.(check bool) "complete" true out.complete;
  Alcotest.(check int) "recovered" 4 out.recovered;
  Alcotest.(check int) "dest size" 6 (Ext_array.blocks out.dest);
  Alcotest.(check (list int)) "prefix occupied, order preserved" [ 1; 2; 3; 4 ]
    (List.map (block_seed out.dest) [ 0; 1; 2; 3 ]);
  Alcotest.(check (list int)) "rest empty" [ 0; 1; 2; 3 ] (occupied_positions out.dest)

let test_sparse_compaction_oblivious () =
  let trace occupied =
    let _, a = consolidated_array ~b:4 ~n:24 occupied in
    let s = Ext_array.storage a in
    let key = Odex_crypto.Prf.key_of_int 6 in
    ignore (Sparse_compaction.run ~m:64 ~key ~capacity:5 a);
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  let t1 = trace [ (0, 1); (1, 2); (2, 3) ] in
  let t2 = trace [ (20, 9); (23, 8) ] in
  let t3 = trace [] in
  Alcotest.(check bool) "trace depends only on n and capacity" true (t1 = t2 && t2 = t3)

let test_sparse_compaction_table_too_big () =
  let _, a = consolidated_array ~b:4 ~n:10 [ (0, 1) ] in
  Alcotest.(check bool) "cache too small rejected" true
    (try
       ignore
         (Sparse_compaction.run ~m:2 ~key:(Odex_crypto.Prf.key_of_int 7) ~capacity:5 a);
       false
     with Invalid_argument _ -> true)

let test_sparse_compaction_over_capacity () =
  (* Violating "at most R distinguished" must not abort or change the
     trace; it degrades to an incomplete outcome. *)
  let _, a = consolidated_array ~b:4 ~n:10 [ (0, 1); (1, 2); (2, 3) ] in
  let out = Sparse_compaction.run ~m:64 ~key:(Odex_crypto.Prf.key_of_int 8) ~capacity:2 a in
  Alcotest.(check bool) "flagged incomplete" false out.Sparse_compaction.complete;
  Alcotest.(check int) "dest still sized to capacity" 2
    (Ext_array.blocks out.Sparse_compaction.dest)

(* ---------------- thinning + loose compaction (Theorem 8) ------------ *)

let test_thinning_pass () =
  let occupied = List.init 8 (fun i -> (i * 3, i + 1)) in
  let _, a = consolidated_array ~b:2 ~n:24 occupied in
  let s = Ext_array.storage a in
  let c = Ext_array.create s ~blocks:32 in
  let rng = Odex_crypto.Rng.create ~seed:3 in
  let before = Stats.total (Storage.stats s) in
  Thinning.pass ~rng ~src:a ~dst:c;
  Alcotest.(check int) "4n I/Os" (4 * 24) (Stats.total (Storage.stats s) - before);
  let moved = Thinning.occupied_blocks c in
  let left = Thinning.occupied_blocks a in
  Alcotest.(check int) "nothing lost" 8 (moved + left);
  (* More passes empty the source (32 slots for 8 blocks: quick). *)
  for _ = 1 to 20 do
    Thinning.pass ~rng ~src:a ~dst:c
  done;
  Alcotest.(check int) "source drained" 0 (Thinning.occupied_blocks a);
  Alcotest.(check int) "all in C" 8 (Thinning.occupied_blocks c)

let test_loose_compaction () =
  let n = 256 in
  let occupied = List.init 50 (fun i -> (i * 5, i + 1)) in
  let _, a = consolidated_array ~b:2 ~n occupied in
  let rng = Odex_crypto.Rng.create ~seed:4 in
  let out = Loose_compaction.run ~m:40 ~rng ~capacity:64 a in
  Alcotest.(check bool) "ok" true out.Loose_compaction.ok;
  Alcotest.(check int) "dest size 5r" (5 * 64) (Ext_array.blocks out.Loose_compaction.dest);
  (* Every payload present exactly once (loose: order not preserved). *)
  let seeds =
    List.sort compare
      (List.filter (fun s -> s >= 0)
         (List.map (block_seed out.Loose_compaction.dest)
            (List.init (Ext_array.blocks out.Loose_compaction.dest) (fun i -> i))))
  in
  ignore seeds;
  let items = Ext_array.items out.Loose_compaction.dest in
  Alcotest.(check int) "all items present" (50 * 2) (List.length items)

let test_loose_compaction_oblivious () =
  let trace occupied =
    let _, a = consolidated_array ~b:2 ~n:128 occupied in
    let s = Ext_array.storage a in
    let rng = Odex_crypto.Rng.create ~seed:9 in
    ignore (Loose_compaction.run ~m:40 ~rng ~capacity:32 a);
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  let t1 = trace (List.init 20 (fun i -> (i, i + 1))) in
  let t2 = trace (List.init 20 (fun i -> (127 - (i * 6), i + 1))) in
  let t3 = trace [] in
  Alcotest.(check bool) "fixed-seed trace equality" true (t1 = t2 && t2 = t3)

let test_loose_compaction_io_linear () =
  (* Doubling n should roughly double the I/Os (geometric halving). *)
  let io n =
    let occupied = List.init (n / 8) (fun i -> (i * 4, i + 1)) in
    let _, a = consolidated_array ~b:2 ~n occupied in
    let s = Ext_array.storage a in
    let rng = Odex_crypto.Rng.create ~seed:5 in
    ignore (Loose_compaction.run ~m:64 ~rng ~capacity:(n / 4) a);
    Stats.total (Storage.stats s)
  in
  let a = io 512 and b = io 1024 in
  let ratio = Float.of_int b /. Float.of_int a in
  if ratio > 2.6 then Alcotest.failf "loose compaction not linear: ratio %.2f" ratio

(* ---------------- facade ---------------- *)

let test_loose_compaction_overflow () =
  (* Every block occupied with capacity 2: the Theorem 8 failure event
     is certain. The run must flag it ([ok] = false) and truncate the
     scatter rather than raise or silently claim success. *)
  let n = 64 in
  let occupied = List.init n (fun i -> (i, i + 1)) in
  let _, a = consolidated_array ~b:4 ~n occupied in
  let before = List.length (Ext_array.items a) in
  let rng = Odex_crypto.Rng.create ~seed:9 in
  let out = Loose_compaction.run ~m:32 ~rng ~capacity:2 a in
  Alcotest.(check bool) "overflow flagged" false out.Loose_compaction.ok;
  let survivors = Ext_array.items out.Loose_compaction.dest in
  Alcotest.(check bool) "scatter truncated: items dropped" true
    (List.length survivors < before);
  List.iter
    (fun (it : Cell.item) ->
      if it.value < 1 || it.value > n then
        Alcotest.failf "survivor value %d not from the input" it.value)
    survivors

let test_facade_tight_dispatch () =
  let occupied = [ (5, 1); (9, 2) ] in
  (* Big cache: IBLT engine. *)
  let _, a1 = consolidated_array ~b:4 ~n:20 occupied in
  let o1 = Compaction.tight ~m:64 ~capacity_blocks:4 a1 in
  Alcotest.(check int) "sparse occupied" 2 o1.Compaction.occupied;
  Alcotest.(check int) "sparse dest blocks" 4 (Ext_array.blocks o1.Compaction.dest);
  (* Tiny cache: butterfly fallback. *)
  let _, a2 = consolidated_array ~b:4 ~n:20 occupied in
  let o2 = Compaction.tight ~m:4 ~capacity_blocks:4 a2 in
  Alcotest.(check int) "butterfly occupied" 2 o2.Compaction.occupied;
  List.iter
    (fun o ->
      Alcotest.(check (list int)) "payload order" [ 1; 2 ]
        (List.map (block_seed o.Compaction.dest) [ 0; 1 ]))
    [ o1; o2 ]

let suite =
  [
    ("consolidation basic", `Quick, test_consolidation_basic);
    ("consolidation all distinguished", `Quick, test_consolidation_all_distinguished);
    ("consolidation sparse", `Quick, test_consolidation_sparse_input);
    ("consolidation oblivious", `Quick, test_consolidation_oblivious);
    ("butterfly: Figure 1 instance", `Quick, test_butterfly_figure1);
    ("butterfly compacts", `Quick, test_butterfly_compacts);
    ("butterfly random instances", `Quick, test_butterfly_random);
    ("butterfly aux/tag handling", `Quick, test_butterfly_aux_cleared_tags_kept);
    ("butterfly oblivious", `Quick, test_butterfly_oblivious);
    ("butterfly expand roundtrip", `Quick, test_butterfly_expand_roundtrip);
    ("butterfly m=3 minimum", `Quick, test_butterfly_m3_minimum);
    ("butterfly invalid expansion", `Quick, test_butterfly_expand_invalid_factor);
    ("sparse compaction", `Quick, test_sparse_compaction);
    ("sparse compaction oblivious", `Quick, test_sparse_compaction_oblivious);
    ("sparse compaction table too big", `Quick, test_sparse_compaction_table_too_big);
    ("sparse compaction over capacity", `Quick, test_sparse_compaction_over_capacity);
    ("thinning pass", `Quick, test_thinning_pass);
    ("loose compaction", `Quick, test_loose_compaction);
    ("loose compaction oblivious", `Quick, test_loose_compaction_oblivious);
    ("loose compaction linear I/O", `Quick, test_loose_compaction_io_linear);
    ("loose compaction overflow flagged", `Quick, test_loose_compaction_overflow);
    ("facade dispatch", `Quick, test_facade_tight_dispatch);
  ]
