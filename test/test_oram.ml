open Odex_extmem
open Odex_oram

let test_prp_bijection () =
  List.iter
    (fun domain ->
      let prp = Odex_crypto.Prp.create ~domain (Odex_crypto.Prf.key_of_int domain) in
      let seen = Array.make domain false in
      for x = 0 to domain - 1 do
        let y = Odex_crypto.Prp.apply prp x in
        if y < 0 || y >= domain then Alcotest.failf "out of domain: %d -> %d" x y;
        if seen.(y) then Alcotest.failf "collision at %d" y;
        seen.(y) <- true;
        Alcotest.(check int) "inverse" x (Odex_crypto.Prp.inverse prp y)
      done)
    [ 1; 2; 3; 17; 64; 100; 1000 ]

let test_prp_keys_differ () =
  let p1 = Odex_crypto.Prp.create ~domain:100 (Odex_crypto.Prf.key_of_int 1) in
  let p2 = Odex_crypto.Prp.create ~domain:100 (Odex_crypto.Prf.key_of_int 2) in
  let same = ref 0 in
  for x = 0 to 99 do
    if Odex_crypto.Prp.apply p1 x = Odex_crypto.Prp.apply p2 x then incr same
  done;
  Alcotest.(check bool) "mostly different" true (!same < 20)

let test_linear_oram () =
  let s = Util.storage ~b:2 () in
  let t = Linear_oram.init s ~values:(Array.init 20 (fun i -> i * 11)) in
  Alcotest.(check int) "read" 55 (Linear_oram.read t 5);
  Linear_oram.write t 5 999;
  Alcotest.(check int) "write persists" 999 (Linear_oram.read t 5);
  Alcotest.(check int) "others untouched" 66 (Linear_oram.read t 6);
  Alcotest.(check int) "accesses" 4 (Linear_oram.accesses t)

let test_linear_oram_oblivious () =
  let trace addrs =
    let s = Util.storage ~b:2 () in
    let t = Linear_oram.init s ~values:(Array.init 16 (fun i -> i)) in
    List.iter (fun a -> ignore (Linear_oram.read t a)) addrs;
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  (* Linear ORAM hides even the virtual access pattern pointwise. *)
  Alcotest.(check bool) "pattern hidden" true (trace [ 0; 0; 0 ] = trace [ 5; 9; 1 ])

let exercise_sqrt_oram ~sorter ~n ~ops ~seed =
  let s = Util.storage ~b:4 () in
  let rng = Odex_crypto.Rng.create ~seed in
  let values = Array.init n (fun i -> i * 7) in
  let t = Sqrt_oram.init ~sorter ~m:16 ~rng s ~values in
  let model = Array.copy values in
  let oprng = Odex_crypto.Rng.create ~seed:(seed + 1) in
  for _ = 1 to ops do
    let addr = Odex_crypto.Rng.int oprng n in
    if Odex_crypto.Rng.bool oprng then begin
      let v = Odex_crypto.Rng.int oprng 100_000 in
      Sqrt_oram.write t addr v;
      model.(addr) <- v
    end
    else begin
      let got = Sqrt_oram.read t addr in
      if got <> model.(addr) then
        Alcotest.failf "read %d: got %d want %d (after %d accesses)" addr got model.(addr)
          (Sqrt_oram.accesses t)
    end
  done;
  (* Final sweep: every word correct. *)
  for addr = 0 to n - 1 do
    if Sqrt_oram.read t addr <> model.(addr) then Alcotest.failf "final sweep: %d wrong" addr
  done;
  t

let test_sqrt_oram_consistency () =
  let t = exercise_sqrt_oram ~sorter:Odex_sortnet.Ext_sort.auto ~n:50 ~ops:300 ~seed:3 in
  Alcotest.(check bool) "reshuffled several times" true (Sqrt_oram.epochs t >= 3)

let test_sqrt_oram_repeated_same_address () =
  (* Hammering one address exercises the dummy-probe path every epoch. *)
  let s = Util.storage ~b:4 () in
  let rng = Odex_crypto.Rng.create ~seed:4 in
  let t = Sqrt_oram.init ~m:16 ~rng s ~values:(Array.init 30 (fun i -> i)) in
  Sqrt_oram.write t 7 123;
  for _ = 1 to 100 do
    Alcotest.(check int) "stable" 123 (Sqrt_oram.read t 7)
  done

(* The bucket engine's dispatch is public (n, B, M): at these rebuild
   shapes it routes through the cache sorter or the bitonic fallback,
   which is exactly what an ORAM wired to `--sorter bucket` would do —
   the variant runs certify the plumbing, not the butterfly. *)
let test_sqrt_oram_sorter_variants () =
  List.iter
    (fun sorter -> ignore (exercise_sqrt_oram ~sorter ~n:40 ~ops:150 ~seed:5))
    [
      Odex_sortnet.Ext_sort.bitonic;
      Odex_sortnet.Ext_sort.bitonic_windowed;
      Odex_sortnet.Ext_sort.bucket ();
    ]

let test_sqrt_oram_value_oblivious () =
  (* Same virtual access sequence, same coins, different stored values:
     identical traces. *)
  let trace mult =
    let s = Util.storage ~b:4 () in
    let rng = Odex_crypto.Rng.create ~seed:6 in
    let t = Sqrt_oram.init ~m:16 ~rng s ~values:(Array.init 25 (fun i -> i * mult)) in
    for i = 0 to 60 do
      ignore (Sqrt_oram.read t (i * 13 mod 25))
    done;
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  Alcotest.(check bool) "value-independent trace" true (trace 1 = trace 1009)

let test_sqrt_oram_sublinear_scaling () =
  (* Amortized I/O per access is Θ(√n · polylog): quadrupling n must
     scale it far less than the 4x of the linear-scan ORAM. The absolute
     crossover against linear is measured at bench scale (E10). *)
  let per_access n =
    let s = Util.storage ~b:4 () in
    let rng = Odex_crypto.Rng.create ~seed:7 in
    let t = Sqrt_oram.init ~m:64 ~rng s ~values:(Array.make n 0) in
    (* Whole epochs only, so the reshuffle cost is fairly amortized. *)
    let ops = ref 0 in
    while Sqrt_oram.epochs t < 2 do
      ignore (Sqrt_oram.read t (!ops * 7 mod n));
      incr ops
    done;
    Float.of_int (Stats.total (Storage.stats s)) /. Float.of_int !ops
  in
  let small = per_access 400 in
  let big = per_access 1600 in
  let ratio = big /. small in
  if ratio > 3.2 then
    Alcotest.failf "per-access cost scaled by %.2f for 4x n (linear would be 4.0)" ratio

(* ---------------- hierarchical ORAM ---------------- *)

let exercise_hier ~sorter ~n ~ops ~seed =
  let s = Util.storage ~b:4 () in
  let rng = Odex_crypto.Rng.create ~seed in
  let values = Array.init n (fun i -> i * 3) in
  let t = Hierarchical_oram.init ~sorter ~m:32 ~rng s ~values in
  let model = Array.copy values in
  let oprng = Odex_crypto.Rng.create ~seed:(seed + 1) in
  for _ = 1 to ops do
    let addr = Odex_crypto.Rng.int oprng n in
    if Odex_crypto.Rng.bool oprng then begin
      let v = Odex_crypto.Rng.int oprng 100_000 in
      Hierarchical_oram.write t addr v;
      model.(addr) <- v
    end
    else begin
      let got = Hierarchical_oram.read t addr in
      if got <> model.(addr) then
        Alcotest.failf "read %d: got %d want %d (after %d accesses, %d rebuilds)" addr got
          model.(addr)
          (Hierarchical_oram.accesses t)
          (Hierarchical_oram.rebuilds t)
    end
  done;
  for addr = 0 to n - 1 do
    if Hierarchical_oram.read t addr <> model.(addr) then
      Alcotest.failf "final sweep: %d wrong" addr
  done;
  t

let test_hier_consistency () =
  let t = exercise_hier ~sorter:Odex_sortnet.Ext_sort.auto ~n:60 ~ops:260 ~seed:11 in
  Alcotest.(check bool) "healthy" true (Hierarchical_oram.healthy t);
  Alcotest.(check bool) "rebuilt many times" true (Hierarchical_oram.rebuilds t >= 20);
  Alcotest.(check bool) "multiple levels" true (Hierarchical_oram.levels t >= 3)

let test_hier_same_address () =
  let s = Util.storage ~b:4 () in
  let rng = Odex_crypto.Rng.create ~seed:12 in
  let t = Hierarchical_oram.init ~m:32 ~rng s ~values:(Array.init 40 (fun i -> i)) in
  Hierarchical_oram.write t 13 777;
  for _ = 1 to 80 do
    Alcotest.(check int) "stable across rebuilds" 777 (Hierarchical_oram.read t 13)
  done;
  Alcotest.(check bool) "healthy" true (Hierarchical_oram.healthy t)

let test_hier_value_oblivious () =
  (* Same virtual access sequence, same coins, different values ->
     identical traces. *)
  let trace mult =
    let s = Util.storage ~b:4 () in
    let rng = Odex_crypto.Rng.create ~seed:13 in
    let t = Hierarchical_oram.init ~m:32 ~rng s ~values:(Array.init 30 (fun i -> i * mult)) in
    for i = 0 to 70 do
      ignore (Hierarchical_oram.read t (i * 7 mod 30))
    done;
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  Alcotest.(check bool) "value-independent trace" true (trace 1 = trace 4242)

let test_hier_sorter_variants () =
  List.iter
    (fun sorter -> ignore (exercise_hier ~sorter ~n:40 ~ops:120 ~seed:14))
    [
      Odex_sortnet.Ext_sort.bitonic;
      Odex_sortnet.Ext_sort.bitonic_windowed;
      Odex_sortnet.Ext_sort.bucket ();
    ]

let suite =
  [
    ("PRP bijection", `Quick, test_prp_bijection);
    ("PRP key separation", `Quick, test_prp_keys_differ);
    ("linear ORAM", `Quick, test_linear_oram);
    ("linear ORAM oblivious", `Quick, test_linear_oram_oblivious);
    ("sqrt ORAM consistency", `Quick, test_sqrt_oram_consistency);
    ("sqrt ORAM same-address hammering", `Quick, test_sqrt_oram_repeated_same_address);
    ("sqrt ORAM sorter variants", `Quick, test_sqrt_oram_sorter_variants);
    ("sqrt ORAM value-oblivious", `Quick, test_sqrt_oram_value_oblivious);
    ("sqrt ORAM sublinear scaling", `Quick, test_sqrt_oram_sublinear_scaling);
    ("hierarchical ORAM consistency", `Quick, test_hier_consistency);
    ("hierarchical ORAM same-address", `Quick, test_hier_same_address);
    ("hierarchical ORAM value-oblivious", `Quick, test_hier_value_oblivious);
    ("hierarchical ORAM sorter variants", `Slow, test_hier_sorter_variants);
  ]
