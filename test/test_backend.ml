(* The pluggable storage backends: file persistence, backend-independent
   I/O accounting, and oblivious fault handling. *)

open Odex_extmem

let with_temp_store f =
  let path = Filename.temp_file "odex_test" ".store" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

(* ---------------- backend layer ---------------- *)

let test_backend_kinds () =
  Alcotest.(check string) "mem" "mem" (Backend.kind (Backend.mem ~payload_size:16 ()));
  with_temp_store (fun path ->
      let b = Backend.file ~path ~payload_size:16 in
      Alcotest.(check string) "file" "file" (Backend.kind b);
      Backend.close b;
      let f =
        Backend.faulty
          { Backend.seed = 1; failure_rate = 0.5; max_burst = 2 }
          (Backend.mem ~payload_size:16 ())
      in
      Alcotest.(check string) "faulty" "faulty" (Backend.kind f))

let test_backend_bounds () =
  let b = Backend.mem ~payload_size:16 () in
  Backend.ensure b 4;
  Alcotest.check_raises "mem read past end" (Invalid_argument "Backend.Mem: address 4 out of bounds (4)")
    (fun () -> ignore (Backend.read b 4));
  with_temp_store (fun path ->
      let f = Backend.file ~path ~payload_size:8 in
      Backend.ensure f 2;
      Alcotest.check_raises "file payload size enforced"
        (Invalid_argument "Backend.write: payload has wrong size") (fun () ->
          Backend.write f 0 (Bytes.create 7));
      Backend.close f)

let test_faulty_plan_validation () =
  let inner () = Backend.mem ~payload_size:16 () in
  Alcotest.check_raises "rate > 1"
    (Invalid_argument "Backend.faulty: failure_rate must be in [0, 1]") (fun () ->
      ignore (Backend.faulty { Backend.seed = 0; failure_rate = 1.5; max_burst = 1 } (inner ())));
  Alcotest.check_raises "burst < 1"
    (Invalid_argument "Backend.faulty: max_burst must be >= 1") (fun () ->
      ignore (Backend.faulty { Backend.seed = 0; failure_rate = 0.1; max_burst = 0 } (inner ())))

(* A file-backed block image survives its backend: new backend on the
   same path, same payloads. This is the property that lets a dataset
   outlive the process (Storage.alloc zero-fills fresh blocks, so the
   reopen contract lives at the backend layer). *)
let test_file_persistence () =
  with_temp_store (fun path ->
      let payload i = Bytes.init 16 (fun j -> Char.chr ((i + (3 * j)) land 0xFF)) in
      let b = Backend.file ~path ~payload_size:16 in
      Backend.ensure b 8;
      for i = 0 to 7 do
        Backend.write b i (payload i)
      done;
      Backend.sync b;
      Backend.close b;
      let b' = Backend.file ~path ~payload_size:16 in
      for i = 7 downto 0 do
        Alcotest.(check bytes) (Printf.sprintf "block %d" i) (payload i) (Backend.read b' i)
      done;
      Backend.close b')

(* ---------------- accounting is backend-independent ---------------- *)

(* The acceptance bar: a sort whose footprint exceeds the cache many
   times over must cost the same counted I/Os — and the same adversary
   trace — on the file store as in memory. *)
let test_file_mem_io_parity () =
  with_temp_store (fun path ->
      let n = 2048 and b = 4 and m = 16 in
      let keys = Util.random_keys (Odex_crypto.Rng.create ~seed:42) n ~bound:10_000 in
      let run backend =
        let s = Storage.create ~trace_mode:Trace.Digest ~backend ~block_size:b () in
        Fun.protect
          ~finally:(fun () -> Storage.close s)
          (fun () ->
            let a = Ext_array.of_cells s ~block_size:b (Util.cells_of_keys keys) in
            Alcotest.(check bool) "footprint exceeds cache" true (Ext_array.blocks a > 8 * m);
            let rng = Odex_crypto.Rng.create ~seed:7 in
            let o = Odex.Sort.run ~m ~rng a in
            Alcotest.(check bool) "sort ok" true o.Odex.Sort.ok;
            Util.check_sorted_by_key (Storage.backend_kind s) a;
            let st = Storage.stats s and tr = Storage.trace s in
            (Stats.reads st, Stats.writes st, Stats.retries st, Trace.length tr, Trace.digest tr))
      in
      let r_mem, w_mem, q_mem, len_mem, dig_mem = run Storage.Mem in
      let r_file, w_file, q_file, len_file, dig_file = run (Storage.File { path }) in
      Alcotest.(check int) "same reads" r_mem r_file;
      Alcotest.(check int) "same writes" w_mem w_file;
      Alcotest.(check int) "no retries on either" 0 (q_mem + q_file);
      Alcotest.(check int) "same trace length" len_mem len_file;
      Alcotest.(check int64) "same trace digest" dig_mem dig_file)

(* ---------------- fault handling ---------------- *)

(* rate 1.0 with max_burst 1 makes the schedule exactly periodic: every
   access fails once and succeeds on the retry, so the counts are exact,
   not statistical. *)
let always_faulty = Storage.Faulty { inner = Storage.Mem; seed = 3; failure_rate = 1.0; max_burst = 1 }

let test_faulty_retries_visible () =
  let s = Storage.create ~trace_mode:Trace.Full ~backend:always_faulty ~block_size:2 () in
  let base = Storage.alloc s 4 in
  let blk = Block.make 2 in
  blk.(0) <- Cell.item ~key:9 ~value:9 ();
  Storage.write s base blk;
  for _ = 1 to 5 do
    ignore (Storage.read s base)
  done;
  let st = Storage.stats s and tr = Storage.trace s in
  Alcotest.(check int) "reads" 5 (Stats.reads st);
  Alcotest.(check int) "writes" 1 (Stats.writes st);
  Alcotest.(check int) "one retry per counted I/O" 6 (Stats.retries st);
  Alcotest.(check int) "retries are trace entries" (6 + 6) (Trace.length tr);
  let retry_ops =
    List.filter
      (function Trace.Retry_read _ | Trace.Retry_write _ -> true | _ -> false)
      (Trace.ops tr)
  in
  Alcotest.(check int) "retry ops recorded in full mode" 6 (List.length retry_ops);
  (* The backend also faulted once per uncounted zero-init write. *)
  Alcotest.(check bool) "faults_injected counts uncounted ops too" true
    (Storage.faults_injected s > Stats.retries st);
  Alcotest.(check int) "round-trip value" 9 (Cell.key_exn (Storage.read s base).(0))

let test_faulty_deterministic () =
  let run () =
    let s = Storage.create ~trace_mode:Trace.Full ~backend:always_faulty ~block_size:2 () in
    let base = Storage.alloc s 8 in
    for i = 0 to 7 do
      ignore (Storage.read s (base + i))
    done;
    (Storage.trace s, Stats.retries (Storage.stats s), Storage.faults_injected s)
  in
  let tr_a, retries_a, faults_a = run () in
  let tr_b, retries_b, faults_b = run () in
  Alcotest.(check bool) "same trace" true (Trace.equal tr_a tr_b);
  Alcotest.(check int) "same retries" retries_a retries_b;
  Alcotest.(check int) "same injected faults" faults_a faults_b

let test_retry_budget_exhausted () =
  let s =
    Storage.create ~backend:always_faulty ~max_retries:1 ~backoff:(0., 0.) ~block_size:2 ()
  in
  (* With a single attempt allowed, the very first gated operation (the
     zero-init write of the first allocated block) outlasts the budget. *)
  Alcotest.check_raises "fault outlasts the budget"
    (Storage.Io_failure { addr = 0; attempts = 1 })
    (fun () -> ignore (Storage.alloc s 1))

let test_unchecked_ops_retry_silently () =
  let s = Storage.create ~trace_mode:Trace.Full ~backend:always_faulty ~block_size:2 () in
  let base = Storage.alloc s 2 in
  let faults_before = Storage.faults_injected s in
  let blk = Block.make 2 in
  blk.(1) <- Cell.item ~key:3 ~value:4 ();
  Storage.unchecked_poke s base blk;
  let got = Storage.unchecked_peek s base in
  Alcotest.(check int) "poke/peek round-trip" 3 (Cell.key_exn got.(1));
  Alcotest.(check int) "no counted reads" 0 (Stats.reads (Storage.stats s));
  Alcotest.(check int) "no counted writes" 0 (Stats.writes (Storage.stats s));
  Alcotest.(check int) "no visible retries" 0 (Stats.retries (Storage.stats s));
  Alcotest.(check int) "no trace entries" 0 (Trace.length (Storage.trace s));
  Alcotest.(check bool) "yet the backend did fault" true
    (Storage.faults_injected s > faults_before)

(* ---------------- sealing state persistence ---------------- *)

(* Raw out-of-band scan of a file store: the 8-byte little-endian nonce
   header of every sealed payload, read straight off the disk image —
   exactly what an adversary who retained the file would look at. *)
let scan_nonces path ~payload_size =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let nblocks = (len - Backend.file_header_bytes) / payload_size in
      List.init nblocks (fun i ->
          seek_in ic (Backend.file_header_bytes + (i * payload_size));
          let b = Bytes.create 8 in
          really_input ic b 0 8;
          Bytes.get_int64_le b 0))

let rec has_duplicate = function
  | [] -> false
  | x :: rest -> List.mem x rest || has_duplicate rest

(* The headline regression: closing an encrypted file store and
   reopening it with the same key must NOT restart the nonce counter.
   Write, close, reopen, write again — across the store's entire
   history, no two sealed payloads may ever have shared a (key, nonce)
   pair, and the first session's blocks must still decrypt. *)
let test_nonce_fresh_across_reopen () =
  with_temp_store (fun path ->
      let b = 4 in
      let payload_size = 8 + Block.encoded_size b in
      let key = Odex_crypto.Cipher.key_of_int 77 in
      let mk ?resume () =
        Storage.create ~cipher:key ?resume ~backend:(Storage.File { path }) ~block_size:b ()
      in
      let data tag i =
        let blk = Block.make b in
        blk.(0) <- Cell.item ~key:(tag + i) ~value:i ();
        blk
      in
      let s = mk () in
      let base = Storage.alloc s 8 in
      for i = 0 to 7 do
        Storage.write s (base + i) (data 100 i)
      done;
      Storage.close s;
      let session1 = scan_nonces path ~payload_size in
      Alcotest.(check bool) "session 1 nonces distinct" false (has_duplicate session1);
      let s = mk ~resume:true () in
      Alcotest.(check int) "resumed capacity" 8 (Storage.capacity s);
      for i = 0 to 7 do
        Alcotest.(check int)
          (Printf.sprintf "old block %d still decrypts" i)
          (100 + i)
          (Cell.key_exn (Storage.read s (base + i)).(0))
      done;
      for i = 0 to 7 do
        Storage.write s (base + i) (data 200 i)
      done;
      Storage.close s;
      let session2 = scan_nonces path ~payload_size in
      (* Every address was overwritten, so session2 holds only the
         reopened run's nonces; together with the retained session-1 scan
         this is the store's full sealing history. *)
      Alcotest.(check bool) "no (key, nonce) pair ever reused" false
        (has_duplicate (session1 @ session2));
      let s = mk ~resume:true () in
      for i = 0 to 7 do
        Alcotest.(check int)
          (Printf.sprintf "rewritten block %d decrypts" i)
          (200 + i)
          (Cell.key_exn (Storage.read s (base + i)).(0))
      done;
      Storage.close s)

(* Crash simulation: skip the clean close (no exact-counter checkpoint).
   The reservation written ahead of use must still keep a reopened
   store's nonces above everything on disk. *)
let test_nonce_fresh_after_crash () =
  with_temp_store (fun path ->
      let b = 2 in
      let payload_size = 8 + Block.encoded_size b in
      let key = Odex_crypto.Cipher.key_of_int 5 in
      let s = Storage.create ~cipher:key ~backend:(Storage.File { path }) ~block_size:b () in
      let base = Storage.alloc s 4 in
      let blk = Block.make b in
      blk.(0) <- Cell.item ~key:1 ~value:1 ();
      for i = 0 to 3 do
        Storage.write s (base + i) blk
      done;
      (* No Storage.close: the process "dies" with the fd open. The
         header on disk holds the reservation, not the exact counter. *)
      let crashed = scan_nonces path ~payload_size in
      let s2 = Storage.create ~cipher:key ~resume:true ~backend:(Storage.File { path }) ~block_size:b () in
      for i = 0 to 3 do
        Storage.write s2 (base + i) blk
      done;
      Storage.close s2;
      let after = scan_nonces path ~payload_size in
      Alcotest.(check bool) "crash recovery never reuses a nonce" false
        (has_duplicate (crashed @ after));
      Storage.close s)

(* Sort-based duplicate check for the large scans below (the List.mem
   one is quadratic). *)
let has_duplicate_sorted l =
  let a = Array.of_list l in
  Array.sort compare a;
  let dup = ref false in
  Array.iteri (fun i x -> if i > 0 && a.(i - 1) = x then dup := true) a;
  !dup

(* The reservation window, pinned exactly: a store that dies between
   reserving a nonce chunk and syncing must lose at most that one 2^16
   reservation — the reopened store's first nonce sits above everything
   on disk but within one chunk of it. *)
let test_crash_skips_at_most_one_reservation () =
  with_temp_store (fun path ->
      let b = 2 in
      let payload_size = 8 + Block.encoded_size b in
      let key = Odex_crypto.Cipher.key_of_int 23 in
      let s = Storage.create ~cipher:key ~backend:(Storage.File { path }) ~block_size:b () in
      let base = Storage.alloc s 6 in
      let blk = Block.make b in
      blk.(0) <- Cell.item ~key:1 ~value:1 ();
      for i = 0 to 5 do
        Storage.write s (base + i) blk
      done;
      (* Crash: the header holds the chunk reservation written ahead of
         use; the exact counter (a clean close's checkpoint) is lost. *)
      let crashed = scan_nonces path ~payload_size in
      let s2 =
        Storage.create ~cipher:key ~resume:true ~backend:(Storage.File { path })
          ~block_size:b ()
      in
      for i = 0 to 5 do
        Storage.write s2 (base + i) blk
      done;
      Storage.close s2;
      let after = scan_nonces path ~payload_size in
      Alcotest.(check bool) "no reuse" false (has_duplicate (crashed @ after));
      let last_before = List.fold_left max Int64.min_int crashed in
      let first_after = List.fold_left min Int64.max_int after in
      Alcotest.(check bool) "reopened nonces sit above the crashed run" true
        (first_after > last_before);
      let skipped = Int64.to_int (Int64.sub first_after last_before) - 1 in
      Alcotest.(check bool)
        (Printf.sprintf "%d skipped nonces < one %d-nonce reservation" skipped
           Storage.nonce_chunk)
        true
        (skipped >= 0 && skipped < Storage.nonce_chunk))

(* Same property across a reservation boundary: more than 2^16 seals in
   the first session (batched, so the reserve-ahead runs mid-transfer),
   then a crash. History stays reuse-free and the reopened store still
   wastes less than one chunk. *)
let test_crash_across_reservation_boundary () =
  with_temp_store (fun path ->
      let b = 1 in
      let payload_size = 8 + Block.encoded_size b in
      let key = Odex_crypto.Cipher.key_of_int 29 in
      let n = Storage.nonce_chunk + 64 in
      let s = Storage.create ~cipher:key ~backend:(Storage.File { path }) ~block_size:b () in
      let base = Storage.alloc s n in
      let blk = Block.make b in
      blk.(0) <- Cell.item ~key:7 ~value:7 ();
      let chunk = 4096 in
      let i = ref 0 in
      while !i < n do
        let c = min chunk (n - !i) in
        Storage.write_many s (base + !i) (Array.make c blk);
        i := !i + c
      done;
      (* Crash past the second reservation. *)
      let crashed = scan_nonces path ~payload_size in
      Alcotest.(check bool) "first session reuse-free" false (has_duplicate_sorted crashed);
      let s2 =
        Storage.create ~cipher:key ~resume:true ~backend:(Storage.File { path })
          ~block_size:b ()
      in
      Storage.write_many s2 base (Array.make 64 blk);
      Storage.close s2;
      let after = scan_nonces path ~payload_size in
      Alcotest.(check bool) "disk image reuse-free" false (has_duplicate_sorted after);
      let last_before = List.fold_left max Int64.min_int crashed in
      (* Only the rewritten prefix carries session-2 seals; the other
         blocks keep their session-1 nonces, so the cross-session
         freshness check covers the fresh ones. *)
      let fresh = List.filter (fun x -> x > last_before) after in
      Alcotest.(check int) "every rewritten block got a fresh nonce" 64 (List.length fresh);
      Alcotest.(check bool) "fresh nonces never collide with the crashed run" false
        (has_duplicate_sorted (crashed @ fresh));
      let first_after = List.fold_left min Int64.max_int fresh in
      let skipped = Int64.to_int (Int64.sub first_after last_before) - 1 in
      Alcotest.(check bool)
        (Printf.sprintf "%d skipped < one reservation after a boundary crossing" skipped)
        true
        (skipped >= 0 && skipped < Storage.nonce_chunk);
      Storage.close s)

let test_reopen_is_empty_without_resume () =
  with_temp_store (fun path ->
      let s = Storage.create ~backend:(Storage.File { path }) ~block_size:2 () in
      ignore (Storage.alloc s 6);
      Storage.close s;
      let s = Storage.create ~backend:(Storage.File { path }) ~block_size:2 () in
      Alcotest.(check int) "default reopen starts logically empty" 0 (Storage.capacity s);
      Storage.close s)

let test_reopen_block_size_mismatch () =
  with_temp_store (fun path ->
      let s = Storage.create ~backend:(Storage.File { path }) ~block_size:4 () in
      ignore (Storage.alloc s 2);
      Storage.close s;
      (* A different block size changes the payload size, which the file
         backend's header check refuses before Storage even sees it. *)
      Alcotest.(check bool) "reopen with another block_size refused" true
        (match Storage.create ~backend:(Storage.File { path }) ~block_size:8 () with
        | exception Invalid_argument _ -> true
        | s -> Storage.close s; false))

let test_file_rejects_garbage () =
  with_temp_store (fun path ->
      let oc = open_out_bin path in
      output_string oc (String.make 128 'x');
      close_out oc;
      Alcotest.(check bool) "garbage file refused" true
        (match Backend.file ~path ~payload_size:16 with
        | exception Invalid_argument _ -> true
        | b -> Backend.close b; false))

let test_meta_roundtrip () =
  let roundtrip name backend =
    let m = Bytes.of_string "hello-header" in
    Backend.write_meta backend m;
    (match Backend.read_meta backend with
    | Some got -> Alcotest.(check bytes) (name ^ " meta roundtrip") m got
    | None -> Alcotest.fail (name ^ ": metadata lost"));
    Alcotest.check_raises (name ^ " oversized meta refused")
      (Invalid_argument
         (Printf.sprintf "Backend.%s.write_meta: metadata exceeds %d bytes"
            (String.capitalize_ascii name) Backend.meta_capacity))
      (fun () -> Backend.write_meta backend (Bytes.create (Backend.meta_capacity + 1)))
  in
  roundtrip "mem" (Backend.mem ~payload_size:16 ());
  with_temp_store (fun path ->
      let b = Backend.file ~path ~payload_size:16 in
      roundtrip "file" b;
      Backend.close b;
      (* The file header — hence the metadata — survives a reopen. *)
      let b = Backend.file ~path ~payload_size:16 in
      (match Backend.read_meta b with
      | Some got -> Alcotest.(check bytes) "meta survives reopen" (Bytes.of_string "hello-header") got
      | None -> Alcotest.fail "file metadata lost across reopen");
      Backend.close b)

(* ---------------- durability bugfix sweep ---------------- *)

(* A closed store must refuse metadata access loudly. The old silent
   no-op (write dropped, read -> None) let callers believe a nonce
   high-water checkpoint had been persisted when it had not — the kind
   of quiet data loss this sweep exists to remove. *)
let test_meta_on_closed_store_raises () =
  with_temp_store (fun path ->
      let b = Backend.file ~path ~payload_size:16 in
      Backend.write_meta b (Bytes.of_string "live");
      Backend.close b;
      Alcotest.check_raises "write_meta on closed store"
        (Invalid_argument "Backend.File: store is closed") (fun () ->
          Backend.write_meta b (Bytes.of_string "dead"));
      Alcotest.check_raises "read_meta on closed store"
        (Invalid_argument "Backend.File: store is closed") (fun () ->
          ignore (Backend.read_meta b)))

(* A store file whose data section is not a whole number of blocks was
   torn by a crash mid-append. Reopening used to round the size down,
   silently discarding the partial block; it must refuse instead. *)
let test_torn_store_rejected () =
  with_temp_store (fun path ->
      let b = Backend.file ~path ~payload_size:16 in
      Backend.ensure b 4;
      Backend.write b 0 (Bytes.make 16 'a');
      Backend.sync b;
      Backend.close b;
      (* Tear the tail: 5 bytes of a sixth... fifth block. *)
      let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0 in
      ignore (Unix.write fd (Bytes.make 5 'x') 0 5);
      Unix.close fd;
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "torn store refused with a clear error" true
        (match Backend.file ~path ~payload_size:16 with
        | exception Invalid_argument msg -> contains msg "torn store" && contains msg "5"
        | b ->
            Backend.close b;
            false);
      (* A whole-block file still opens. *)
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (Backend.file_header_bytes + (4 * 16));
      Unix.close fd;
      let b = Backend.file ~path ~payload_size:16 in
      Alcotest.(check bytes) "intact blocks still readable" (Bytes.make 16 'a')
        (Backend.read b 0);
      Backend.close b)

(* EINTR hammer: a high-frequency interval timer delivers SIGALRM
   throughout a file-backend workload. OCaml installs Signal_handle
   handlers without SA_RESTART, so the backend's read/write/fsync calls
   really do return EINTR here; the shared retry helper must absorb
   every one without dropping or short-writing a byte. *)
let test_eintr_retried () =
  let ticks = ref 0 in
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> incr ticks)) in
  let old_timer =
    Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 2e-4; it_value = 2e-4 }
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL old_timer);
      Sys.set_signal Sys.sigalrm old)
    (fun () ->
      with_temp_store (fun path ->
          let payload i = Bytes.init 64 (fun j -> Char.chr ((i + j) land 0xFF)) in
          let b = Backend.file ~path ~payload_size:64 in
          let n = 512 in
          Backend.ensure b n;
          for round = 0 to 3 do
            for i = 0 to n - 1 do
              Backend.write b i (payload (i + round))
            done;
            Backend.sync b;
            for i = 0 to n - 1 do
              Alcotest.(check bytes)
                (Printf.sprintf "round %d block %d" round i)
                (payload (i + round)) (Backend.read b i)
            done
          done;
          Backend.close b);
      (* The harness only proves something if signals actually landed. *)
      Alcotest.(check bool)
        (Printf.sprintf "timer delivered signals (%d)" !ticks)
        true (!ticks > 0))

(* ---------------- stats spans carry every counter ---------------- *)

(* Regression for the narrow snapshot: a span over a faulty backend must
   report the retries (and bytes, and batched share) of the spanned
   window, not just reads/writes. *)
let test_span_reports_all_counters () =
  let s =
    Storage.create ~backend:always_faulty ~backoff:(0., 0.) ~trace_mode:Trace.Digest
      ~block_size:2 ()
  in
  let base = Storage.alloc s 4 in
  let payload = 8 + Block.encoded_size 2 in
  (* Warm-up I/O before the span: deltas must subtract it away. *)
  ignore (Storage.read s base);
  let (), d = Stats.span (Storage.stats s) (fun () -> ignore (Storage.read_many s base 4)) in
  Alcotest.(check int) "span reads" 4 d.Stats.reads;
  Alcotest.(check int) "span writes" 0 d.Stats.writes;
  Alcotest.(check int) "span retries (one per access)" 4 d.Stats.retries;
  Alcotest.(check int) "span bytes" (4 * payload) d.Stats.bytes_moved;
  Alcotest.(check int) "span batched share" 4 d.Stats.batched_ios;
  Alcotest.(check bool) "last_span matches" true (Stats.last_span (Storage.stats s) = Some d)

(* ---------------- spec plumbing ---------------- *)

let test_remove_spec_files () =
  let path = Filename.temp_file "odex_test" ".store" in
  let spec = Storage.Faulty { inner = Storage.File { path }; seed = 1; failure_rate = 0.0; max_burst = 1 } in
  let s = Storage.create ~backend:spec ~block_size:2 () in
  Alcotest.(check string) "decorated kind" "faulty" (Storage.backend_kind s);
  ignore (Storage.alloc s 4);
  Storage.sync s;
  Storage.close s;
  Alcotest.(check bool) "file exists before" true (Sys.file_exists path);
  Storage.remove_spec_files spec;
  Alcotest.(check bool) "file removed through the decorator" false (Sys.file_exists path)

let suite =
  [
    ("backend kinds", `Quick, test_backend_kinds);
    ("backend bounds", `Quick, test_backend_bounds);
    ("faulty plan validation", `Quick, test_faulty_plan_validation);
    ("file persistence", `Quick, test_file_persistence);
    ("file/mem I/O parity on an out-of-cache sort", `Quick, test_file_mem_io_parity);
    ("faulty retries visible in stats and trace", `Quick, test_faulty_retries_visible);
    ("faulty schedule deterministic", `Quick, test_faulty_deterministic);
    ("retry budget exhaustion", `Quick, test_retry_budget_exhausted);
    ("unchecked ops retry silently", `Quick, test_unchecked_ops_retry_silently);
    ("nonce freshness across reopen", `Quick, test_nonce_fresh_across_reopen);
    ("nonce freshness after crash", `Quick, test_nonce_fresh_after_crash);
    ("crash skips at most one nonce reservation", `Quick, test_crash_skips_at_most_one_reservation);
    ("crash across a reservation boundary", `Quick, test_crash_across_reservation_boundary);
    ("reopen starts empty without resume", `Quick, test_reopen_is_empty_without_resume);
    ("reopen block_size mismatch refused", `Quick, test_reopen_block_size_mismatch);
    ("garbage store file refused", `Quick, test_file_rejects_garbage);
    ("backend metadata roundtrip", `Quick, test_meta_roundtrip);
    ("meta access on a closed store raises", `Quick, test_meta_on_closed_store_raises);
    ("torn trailing block rejected on reopen", `Quick, test_torn_store_rejected);
    ("EINTR retried across the whole I/O surface", `Quick, test_eintr_retried);
    ("stats span carries every counter", `Quick, test_span_reports_all_counters);
    ("remove_spec_files", `Quick, test_remove_spec_files);
  ]
