open Odex_extmem
open Odex

let reference_select keys k =
  let sorted = List.sort compare (Array.to_list keys) in
  List.nth sorted (k - 1)

let run_select ?delta ~b ~m ~seed ~k keys =
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b () in
  let a = Ext_array.of_cells s ~block_size:b cells in
  let rng = Odex_crypto.Rng.create ~seed in
  match delta with
  | None -> Selection.select ~m ~rng ~k a
  | Some d -> Selection.select_with_delta ~m ~rng ~delta:d ~k a

let check_selects ?delta ~b ~m ~seed keys ks =
  List.iter
    (fun k ->
      let r = run_select ?delta ~b ~m ~seed ~k keys in
      match r.Selection.item with
      | None -> Alcotest.failf "k=%d: no item returned" k
      | Some it ->
          Alcotest.(check int)
            (Printf.sprintf "k=%d" k)
            (reference_select keys k)
            it.key)
    ks

let test_select_in_cache () =
  let keys = [| 9; 1; 8; 2; 7; 3 |] in
  check_selects ~b:2 ~m:16 ~seed:0 keys [ 1; 3; 6 ]

let test_select_medium () =
  let rng = Odex_crypto.Rng.create ~seed:1 in
  let keys = Util.random_keys rng 600 ~bound:10_000 in
  check_selects ~b:4 ~m:16 ~seed:2 keys [ 1; 17; 300; 599; 600 ]

let test_select_duplicates () =
  let keys = Array.make 400 7 in
  check_selects ~b:4 ~m:16 ~seed:3 keys [ 1; 200; 400 ];
  let keys2 = Array.init 500 (fun i -> i mod 3) in
  check_selects ~b:4 ~m:16 ~seed:4 keys2 [ 1; 167; 250; 334; 500 ]

let test_select_sorted_and_reverse () =
  let up = Array.init 500 (fun i -> i) in
  let down = Array.init 500 (fun i -> 500 - i) in
  check_selects ~b:4 ~m:16 ~seed:5 up [ 250 ];
  check_selects ~b:4 ~m:16 ~seed:5 down [ 250 ]

let test_select_with_empties () =
  let cells =
    Array.init 300 (fun i ->
        if i mod 3 = 0 then Cell.empty else Cell.item ~tag:i ~key:(i * 7 mod 101) ~value:i ())
  in
  let s = Util.storage ~b:4 () in
  let a = Ext_array.of_cells s ~block_size:4 cells in
  let rng = Odex_crypto.Rng.create ~seed:6 in
  let keys =
    Array.of_list
      (List.filter_map
         (fun c -> match c with Cell.Empty -> None | Cell.Item it -> Some it.key)
         (Array.to_list cells))
  in
  let k = 77 in
  let r = Selection.select ~m:16 ~rng ~k a in
  (match r.Selection.item with
  | None -> Alcotest.fail "no item"
  | Some it -> Alcotest.(check int) "with empties" (reference_select keys k) it.key)

let test_select_custom_delta () =
  let rng = Odex_crypto.Rng.create ~seed:7 in
  let keys = Util.random_keys rng 2_000 ~bound:1_000_000 in
  let delta nf = 3. *. Float.pow nf 0.25 in
  List.iter
    (fun k ->
      let r = run_select ~delta ~b:4 ~m:32 ~seed:8 ~k keys in
      match r.Selection.item with
      | None -> Alcotest.failf "k=%d: none" k
      | Some it -> Alcotest.(check int) (Printf.sprintf "k=%d" k) (reference_select keys k) it.key)
    [ 1; 1000; 2000 ]

let test_select_zero_slack_flagged () =
  (* With zero rank slack the Lemma 11 bracket almost surely misses the
     k-th item; the clamped recursion must still terminate and the
     failure must surface as [ok] = false, never as an exception or a
     silently wrong confident answer. *)
  let keys = Array.init 2_000 (fun i -> i * 37 mod 4096) in
  let r = run_select ~delta:(fun _ -> 0.) ~b:4 ~m:8 ~seed:21 ~k:1_000 keys in
  Alcotest.(check bool) "zero-slack failure flagged" false r.Selection.ok

let test_select_k_out_of_range () =
  let keys = Array.init 100 (fun i -> i) in
  Alcotest.(check bool) "k=0 rejected" true
    (try
       ignore (run_select ~b:2 ~m:4 ~seed:9 ~k:0 keys);
       false
     with Invalid_argument _ -> true)

let test_select_oblivious () =
  let trace keys =
    let cells = Util.cells_of_keys keys in
    let s = Util.storage ~b:4 () in
    let a = Ext_array.of_cells s ~block_size:4 cells in
    let rng = Odex_crypto.Rng.create ~seed:10 in
    ignore (Selection.select ~m:16 ~rng ~k:100 a);
    (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))
  in
  let t1 = trace (Array.init 400 (fun i -> i)) in
  let t2 = trace (Array.init 400 (fun i -> 400 - i)) in
  let t3 = trace (Array.make 400 3) in
  Alcotest.(check bool) "selection trace is data-independent" true (t1 = t2 && t2 = t3)

let prop_select_matches_reference =
  Util.qcheck_case ~name:"selection matches sorted reference" ~count:25
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 300) (int_range 0 50))
        (pair int (int_range 1 1_000_000)))
    (fun (keys, (seed, kraw)) ->
      let keys = Array.of_list keys in
      let n = Array.length keys in
      let k = 1 + (kraw mod n) in
      let r = run_select ~b:3 ~m:8 ~seed ~k keys in
      (* flagged randomized failures are acceptable; silent wrong
         answers are not *)
      (not r.Selection.ok)
      ||
      match r.Selection.item with
      | None -> false
      | Some it -> it.key = reference_select keys k)

let suite =
  [
    ("in-cache base case", `Quick, test_select_in_cache);
    ("medium arrays", `Quick, test_select_medium);
    ("all-equal and few-distinct keys", `Quick, test_select_duplicates);
    ("sorted and reverse inputs", `Quick, test_select_sorted_and_reverse);
    ("empties interleaved", `Quick, test_select_with_empties);
    ("custom rank slack", `Quick, test_select_custom_delta);
    ("zero slack failure flagged", `Quick, test_select_zero_slack_flagged);
    ("k out of range", `Quick, test_select_k_out_of_range);
    ("selection is oblivious", `Quick, test_select_oblivious);
    prop_select_matches_reference;
  ]
