open Odex_extmem

let cell_t = Alcotest.testable Cell.pp Cell.equal

let test_cell_roundtrip () =
  let buf = Bytes.create Cell.encoded_size in
  let samples =
    [ Cell.empty; Cell.item ~key:7 ~value:(-3) (); Cell.item ~tag:99 ~key:min_int ~value:max_int () ]
  in
  List.iter
    (fun c ->
      Cell.encode buf 0 c;
      Alcotest.check cell_t "roundtrip" c (Cell.decode buf 0))
    samples

let test_cell_ordering () =
  let a = Cell.item ~key:1 ~value:0 () in
  let b = Cell.item ~key:2 ~value:0 () in
  Alcotest.(check bool) "1 < 2" true (Cell.compare_keys a b < 0);
  Alcotest.(check bool) "empty last" true (Cell.compare_keys a Cell.empty < 0);
  Alcotest.(check bool) "empty = empty" true (Cell.compare_keys Cell.empty Cell.empty = 0);
  let t1 = Cell.item ~tag:1 ~key:5 ~value:0 () in
  let t2 = Cell.item ~tag:2 ~key:5 ~value:0 () in
  Alcotest.(check bool) "tag breaks key ties" true (Cell.compare_keys t1 t2 < 0);
  Alcotest.(check bool) "compare_by_tag orders by tag" true
    (Cell.compare_by_tag t2 (Cell.item ~tag:3 ~key:0 ~value:0 ()) < 0)

let test_cell_accessors () =
  let c = Cell.item ~tag:4 ~key:1 ~value:2 () in
  Alcotest.(check int) "key" 1 (Cell.key_exn c);
  Alcotest.(check int) "value" 2 (Cell.value_exn c);
  Alcotest.(check int) "tag" 4 (Cell.tag_exn c);
  Alcotest.check cell_t "with_tag" (Cell.item ~tag:9 ~key:1 ~value:2 ()) (Cell.with_tag c 9);
  Alcotest.check cell_t "with_tag empty" Cell.empty (Cell.with_tag Cell.empty 9);
  Alcotest.check_raises "get empty" (Invalid_argument "Cell.get: empty cell") (fun () ->
      ignore (Cell.get Cell.empty))

let test_block_basics () =
  let blk = Block.make 4 in
  Alcotest.(check int) "empty count" 0 (Block.count_items blk);
  Alcotest.(check bool) "is_empty" true (Block.is_empty blk);
  let items = [ { Cell.key = 1; value = 10; tag = 0; aux = 0 }; { Cell.key = 2; value = 20; tag = 0; aux = 0 } ] in
  let blk = Block.of_items 4 items in
  Alcotest.(check int) "count" 2 (Block.count_items blk);
  Alcotest.(check bool) "not full" false (Block.is_full blk);
  Alcotest.(check (list int)) "items order" [ 1; 2 ]
    (List.map (fun (it : Cell.item) -> it.key) (Block.items blk));
  let decoded = Block.decode ~block_size:4 (Block.encode blk) in
  Array.iteri (fun i c -> Alcotest.check cell_t "encode roundtrip" blk.(i) c) decoded

let test_block_sort () =
  let blk =
    [| Cell.item ~key:3 ~value:0 (); Cell.empty; Cell.item ~key:1 ~value:0 (); Cell.item ~key:2 ~value:0 () |]
  in
  Block.sort_in_place Cell.compare_keys blk;
  Alcotest.(check (list int)) "sorted, empties last" [ 1; 2; 3 ]
    (List.map (fun (it : Cell.item) -> it.key) (Block.items blk));
  Alcotest.(check bool) "last is empty" true (Cell.is_empty blk.(3))

let test_storage_roundtrip () =
  let s = Util.storage ~b:4 () in
  let base = Storage.alloc s 3 in
  Alcotest.(check int) "capacity" 3 (Storage.capacity s);
  let blk = Block.make 4 in
  blk.(1) <- Cell.item ~key:42 ~value:1 ();
  Storage.write s (base + 1) blk;
  (* Mutating our buffer after the write must not affect the stored copy. *)
  blk.(1) <- Cell.empty;
  let got = Storage.read s (base + 1) in
  Alcotest.check cell_t "stored copy isolated" (Cell.item ~key:42 ~value:1 ()) got.(1);
  (* Mutating what read returned must not affect storage either. *)
  got.(1) <- Cell.empty;
  let again = Storage.read s (base + 1) in
  Alcotest.check cell_t "read returns copies" (Cell.item ~key:42 ~value:1 ()) again.(1)

let test_storage_accounting () =
  let s = Util.storage ~b:2 () in
  let base = Storage.alloc s 2 in
  Alcotest.(check int) "alloc costs no IO" 0 (Stats.total (Storage.stats s));
  ignore (Storage.read s base);
  Storage.write s base (Block.make 2);
  ignore (Storage.read s (base + 1));
  Alcotest.(check int) "reads" 2 (Stats.reads (Storage.stats s));
  Alcotest.(check int) "writes" 1 (Stats.writes (Storage.stats s));
  Alcotest.(check int) "trace length" 3 (Trace.length (Storage.trace s))

let test_storage_bounds () =
  let s = Util.storage ~b:2 () in
  ignore (Storage.alloc s 1);
  Alcotest.(check bool) "oob read raises" true
    (try
       ignore (Storage.read s 5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong block size raises" true
    (try
       Storage.write s 0 (Block.make 3);
       false
     with Invalid_argument _ -> true)

let test_storage_encrypted () =
  let key = Odex_crypto.Cipher.key_of_int 123 in
  let s = Util.storage ~cipher:key ~b:4 () in
  let base = Storage.alloc s 2 in
  let blk = Block.make 4 in
  blk.(0) <- Cell.item ~key:7 ~value:70 ();
  Storage.write s base blk;
  let got = Storage.read s base in
  Alcotest.check cell_t "encrypted roundtrip" blk.(0) got.(0);
  let fresh = Storage.read s (base + 1) in
  Alcotest.(check bool) "alloc'd block decrypts to empties" true (Block.is_empty fresh)

let test_trace_modes () =
  let t = Trace.create Trace.Full in
  Trace.record t (Trace.Read 3);
  Trace.record t (Trace.Write 4);
  Alcotest.(check int) "length" 2 (Trace.length t);
  Alcotest.(check bool) "ops" true (Trace.ops t = [ Trace.Read 3; Trace.Write 4 ]);
  let d = Trace.create Trace.Digest in
  Trace.record d (Trace.Read 3);
  Trace.record d (Trace.Write 4);
  Alcotest.(check bool) "digest matches full" true (Trace.equal t d);
  let d2 = Trace.create Trace.Digest in
  Trace.record d2 (Trace.Write 4);
  Trace.record d2 (Trace.Read 3);
  Alcotest.(check bool) "order matters" false (Trace.equal d d2);
  let off = Trace.create Trace.Off in
  Trace.record off (Trace.Read 1);
  Alcotest.(check int) "off records nothing" 0 (Trace.length off)

let test_ext_array () =
  let s = Util.storage ~b:3 () in
  let cells = Util.cells_of_keys [| 5; 4; 3; 2; 1; 0; 9 |] in
  let a = Ext_array.of_cells s ~block_size:3 cells in
  Alcotest.(check int) "blocks" 3 (Ext_array.blocks a);
  Alcotest.(check int) "cells" 9 (Ext_array.cells a);
  Alcotest.(check int) "setup costs no IO" 0 (Stats.total (Storage.stats s));
  let back = Ext_array.to_cells a in
  Array.iteri (fun i c -> Alcotest.check cell_t "roundtrip" c back.(i)) cells;
  Alcotest.(check (list int)) "items" [ 5; 4; 3; 2; 1; 0; 9 ]
    (Util.keys_of_items (Ext_array.items a));
  let sub = Ext_array.sub a ~off:1 ~len:2 in
  Alcotest.(check int) "sub blocks" 2 (Ext_array.blocks sub);
  Alcotest.(check int) "sub addr" (Ext_array.addr a 1) (Ext_array.addr sub 0);
  let blk = Ext_array.read_block a 0 in
  Alcotest.check cell_t "read_block" cells.(0) blk.(0);
  Alcotest.(check int) "read counted" 1 (Stats.reads (Storage.stats s))

let test_ext_array_concat () =
  let s = Util.storage ~b:2 () in
  let a = Ext_array.create s ~blocks:2 in
  let b = Ext_array.create s ~blocks:3 in
  (match Ext_array.concat_views a b with
  | Some c ->
      Alcotest.(check int) "concat blocks" 5 (Ext_array.blocks c);
      Alcotest.(check int) "concat base" (Ext_array.base a) (Ext_array.base c)
  | None -> Alcotest.fail "adjacent views should concat");
  Alcotest.(check bool) "non-adjacent refuses" true (Ext_array.concat_views b a = None)

let test_cache_accounting () =
  let s = Util.storage ~b:2 () in
  let base = Storage.alloc s 5 in
  let c = Cache.create s ~capacity:3 in
  ignore (Cache.load c base);
  ignore (Cache.load c (base + 1));
  ignore (Cache.load c base);
  Alcotest.(check int) "resident" 2 (Cache.resident c);
  Alcotest.(check int) "only two read IOs" 2 (Stats.reads (Storage.stats s));
  let blk = Cache.borrow c base in
  blk.(0) <- Cell.item ~key:1 ~value:1 ();
  Cache.flush c base;
  Alcotest.(check int) "flush writes" 1 (Stats.writes (Storage.stats s));
  Alcotest.(check bool) "evicted" false (Cache.is_resident c base);
  let got = Storage.read s base in
  Alcotest.check cell_t "mutation persisted" (Cell.item ~key:1 ~value:1 ()) got.(0)

let test_cache_copy_boundary () =
  let s = Util.storage ~b:2 () in
  let base = Storage.alloc s 1 in
  let c = Cache.create s ~capacity:2 in
  (* [load] hands out a caller-owned copy: mutating it must not reach
     the resident block, so the flush writes the originals back. *)
  let copy = Cache.load c base in
  copy.(0) <- Cell.item ~key:9 ~value:9 ();
  Cache.flush c base;
  Alcotest.(check bool) "mutated load copy not flushed" true
    (Block.is_empty (Storage.read s base));
  (* [get] on a resident block is a copy too. *)
  ignore (Cache.load c base);
  let got = Cache.get c base in
  got.(0) <- Cell.item ~key:8 ~value:8 ();
  Cache.flush c base;
  Alcotest.(check bool) "mutated get copy not flushed" true
    (Block.is_empty (Storage.read s base));
  (* [put] stores a copy of the caller's buffer. *)
  let mine = Block.make 2 in
  mine.(0) <- Cell.item ~key:1 ~value:1 ();
  Cache.put c base mine;
  mine.(0) <- Cell.item ~key:2 ~value:2 ();
  Cache.flush c base;
  Alcotest.check cell_t "put copied the buffer" (Cell.item ~key:1 ~value:1 ())
    (Storage.read s base).(0);
  (* [borrow] is the one sharing entry point: in-place mutation sticks. *)
  ignore (Cache.load c base);
  let shared = Cache.borrow c base in
  shared.(0) <- Cell.item ~key:3 ~value:3 ();
  Cache.flush c base;
  Alcotest.check cell_t "borrow shares the resident block" (Cell.item ~key:3 ~value:3 ())
    (Storage.read s base).(0)

let test_cache_overflow () =
  let s = Util.storage ~b:2 () in
  let base = Storage.alloc s 5 in
  let c = Cache.create s ~capacity:2 in
  ignore (Cache.load c base);
  ignore (Cache.load c (base + 1));
  Alcotest.(check bool) "third load overflows" true
    (try
       ignore (Cache.load c (base + 2));
       false
     with Cache.Overflow _ -> true);
  Cache.drop c base;
  ignore (Cache.load c (base + 3));
  (* The refused load never became resident, so the peak is the capacity. *)
  Alcotest.(check int) "peak tracked" 2 (Cache.peak c)

let test_cache_flush_all_order () =
  let s = Util.storage ~b:2 () in
  let base = Storage.alloc s 4 in
  let c = Cache.create s ~capacity:4 in
  ignore (Cache.load c (base + 2));
  ignore (Cache.load c base);
  ignore (Cache.load c (base + 3));
  let t0 = Trace.length (Storage.trace s) in
  Cache.flush_all c;
  let ops = Trace.ops (Storage.trace s) in
  ignore t0;
  (* Digest mode: verify only counts; address order is covered by the
     deterministic-trace tests at the algorithm level. *)
  Alcotest.(check int) "all flushed" 0 (Cache.resident c);
  Alcotest.(check int) "three writes" 3 (Stats.writes (Storage.stats s));
  ignore ops

(* A [Full] trace dump keeps only the first and last [pp_keep] ops; a
   multi-million-op trace must never flood a failing test's output. *)
let test_trace_pp_truncation () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let tr = Trace.create Trace.Full in
  for i = 0 to 199 do
    Trace.record tr (Trace.Read i)
  done;
  let out = Format.asprintf "%a" Trace.pp tr in
  Alcotest.(check bool) "head kept" true (contains out "R0");
  Alcotest.(check bool) "tail kept" true (contains out "R199");
  Alcotest.(check bool) "middle elided" false (contains out "R100");
  Alcotest.(check bool) "elision marker" true (contains out "(136 ops elided)");
  let short = Trace.create Trace.Full in
  for i = 0 to 9 do
    Trace.record short (Trace.Write i)
  done;
  let out = Format.asprintf "%a" Trace.pp short in
  Alcotest.(check bool) "short trace printed whole" false (contains out "elided");
  Alcotest.(check bool) "short trace has every op" true (contains out "W9")

let test_emodel () =
  Alcotest.(check int) "ceil_div" 3 (Emodel.ceil_div 7 3);
  Alcotest.(check int) "ceil_div exact" 2 (Emodel.ceil_div 6 3);
  Alcotest.(check int) "ilog2_floor 1" 0 (Emodel.ilog2_floor 1);
  Alcotest.(check int) "ilog2_floor 9" 3 (Emodel.ilog2_floor 9);
  Alcotest.(check int) "ilog2_ceil 9" 4 (Emodel.ilog2_ceil 9);
  Alcotest.(check int) "ilog2_ceil 8" 3 (Emodel.ilog2_ceil 8);
  Alcotest.(check int) "log_star 2^16" 4 (Emodel.log_star 65536);
  Alcotest.(check int) "log_star 16" 3 (Emodel.log_star 16);
  Alcotest.(check int) "log_star 2" 1 (Emodel.log_star 2);
  Alcotest.(check int) "tower 1" 4 (Emodel.tower_of_twos 1);
  Alcotest.(check int) "tower 2" 16 (Emodel.tower_of_twos 2);
  Alcotest.(check int) "tower 3" 65536 (Emodel.tower_of_twos 3);
  Alcotest.(check int) "tower 4 saturates" max_int (Emodel.tower_of_twos 4);
  Alcotest.(check bool) "wide block holds" true (Emodel.wide_block_ok ~n_blocks:256 ~block_size:8);
  Alcotest.(check bool) "wide block fails" false (Emodel.wide_block_ok ~n_blocks:(1 lsl 20) ~block_size:4);
  Alcotest.(check bool) "tall cache holds" true (Emodel.tall_cache_ok ~block_size:8 64);
  Alcotest.(check bool) "tall cache fails" false (Emodel.tall_cache_ok ~block_size:64 100)

let prop_cell_roundtrip =
  Util.qcheck_case ~name:"cell encode/decode roundtrip"
    QCheck2.Gen.(triple int int int)
    (fun (key, value, tag) ->
      let c = Cell.item ~tag ~key ~value () in
      let buf = Bytes.create Cell.encoded_size in
      Cell.encode buf 0 c;
      Cell.equal c (Cell.decode buf 0))

let prop_storage_roundtrip_encrypted =
  Util.qcheck_case ~name:"encrypted storage write/read roundtrip" ~count:50
    QCheck2.Gen.(pair (list_size (int_range 1 8) int) int)
    (fun (keys, seed) ->
      let key = Odex_crypto.Cipher.key_of_int seed in
      let s = Util.storage ~cipher:key ~b:8 () in
      let base = Storage.alloc s 1 in
      let blk = Block.make 8 in
      List.iteri (fun i k -> if i < 8 then blk.(i) <- Cell.item ~key:k ~value:(-k) ()) keys;
      Storage.write s base blk;
      let got = Storage.read s base in
      Array.for_all2 Cell.equal blk got)

let suite =
  [
    ("cell encode roundtrip", `Quick, test_cell_roundtrip);
    ("cell ordering", `Quick, test_cell_ordering);
    ("cell accessors", `Quick, test_cell_accessors);
    ("block basics", `Quick, test_block_basics);
    ("block sort", `Quick, test_block_sort);
    ("storage roundtrip/copies", `Quick, test_storage_roundtrip);
    ("storage accounting", `Quick, test_storage_accounting);
    ("storage bounds", `Quick, test_storage_bounds);
    ("storage encrypted", `Quick, test_storage_encrypted);
    ("trace modes", `Quick, test_trace_modes);
    ("trace pp truncates long dumps", `Quick, test_trace_pp_truncation);
    ("ext_array", `Quick, test_ext_array);
    ("ext_array concat", `Quick, test_ext_array_concat);
    ("cache accounting", `Quick, test_cache_accounting);
    ("cache copy-at-boundary", `Quick, test_cache_copy_boundary);
    ("cache overflow", `Quick, test_cache_overflow);
    ("cache flush_all", `Quick, test_cache_flush_all_order);
    ("emodel arithmetic", `Quick, test_emodel);
    prop_cell_roundtrip;
    prop_storage_roundtrip_encrypted;
  ]
