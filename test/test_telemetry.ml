(* The telemetry subsystem: zero-cost disabled sink, latency histograms,
   backend-op timing, span phases with counter attribution, cache
   counters, exports — and the load-bearing property that profiling is
   invisible to the adversary (pair-tested). *)

open Odex_extmem
module Telemetry = Odex_telemetry.Telemetry

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ---------------- the disabled sink ---------------- *)

let test_disabled_sink_is_noop () =
  let t = Telemetry.disabled in
  Alcotest.(check bool) "disabled" false (Telemetry.enabled t);
  Telemetry.record_op t ~backend:"mem" ~op:Telemetry.Read ~blocks:1 ~bytes:64 ~ns:100L;
  Telemetry.add_ios t 3;
  Telemetry.add_retries t 1;
  Telemetry.add_faults t 1;
  Telemetry.add_bytes t 512;
  Telemetry.add_counter t "cache.hit" 9;
  let r = Telemetry.with_phase t "phase" (fun () -> 42) in
  Alcotest.(check int) "with_phase is exactly f ()" 42 r;
  Alcotest.(check int) "no op stats" 0 (List.length (Telemetry.op_stats t));
  Alcotest.(check int) "no phases" 0 (List.length (Telemetry.phases t));
  Alcotest.(check int) "no counters" 0 (List.length (Telemetry.counters t))

let test_storage_default_sink_is_disabled () =
  let s = Storage.create ~block_size:2 () in
  Alcotest.(check bool) "plain storage carries the disabled sink" false
    (Telemetry.enabled (Storage.telemetry s))

(* ---------------- histograms ---------------- *)

let test_histogram_percentiles () =
  let t = Telemetry.create () in
  Alcotest.(check bool) "enabled" true (Telemetry.enabled t);
  (* 100 samples spread over four decades of latency. *)
  for i = 1 to 100 do
    let ns = Int64.of_int (if i <= 50 then 100 else if i <= 90 then 10_000 else 1_000_000) in
    Telemetry.record_op t ~backend:"mem" ~op:Telemetry.Read ~blocks:1 ~bytes:8 ~ns
  done;
  match Telemetry.op_stats t with
  | [ st ] ->
      let h = st.Telemetry.latency in
      Alcotest.(check int) "count" 100 (Telemetry.hist_count h);
      (* 50*100ns + 40*10us + 10*1ms = 10_405_000 ns, exactly. *)
      Alcotest.(check int64) "total is the exact sum" 10_405_000L (Telemetry.hist_total_ns h);
      let p50 = Telemetry.hist_percentile h 50. in
      let p90 = Telemetry.hist_percentile h 90. in
      let p99 = Telemetry.hist_percentile h 99. in
      Alcotest.(check bool) "p50 near 100ns bucket" true (p50 >= 64. && p50 < 256.);
      Alcotest.(check bool) "p90 near 10us bucket" true (p90 >= 8192. && p90 < 32768.);
      Alcotest.(check bool) "p99 near 1ms bucket" true (p99 >= 524288. && p99 < 2097152.);
      Alcotest.(check bool) "percentiles monotone" true (p50 <= p90 && p90 <= p99)
  | l -> Alcotest.failf "expected one op stat, got %d" (List.length l)

(* ---------------- storage instrumentation ---------------- *)

let test_storage_ops_timed () =
  let tel = Telemetry.create () in
  let s = Storage.create ~telemetry:tel ~block_size:2 () in
  Alcotest.(check string) "kind survives the shim" "mem" (Storage.backend_kind s);
  let base = Storage.alloc s 8 in
  let blk = Block.make 2 in
  blk.(0) <- Cell.item ~key:1 ~value:1 ();
  Storage.write s base blk;
  ignore (Storage.read s base);
  ignore (Storage.read_many s base 8);
  Storage.write_many s base (Array.init 8 (fun _ -> Block.copy blk));
  Storage.sync s;
  let stats = Telemetry.op_stats tel in
  let find op =
    List.find_opt (fun (st : Telemetry.op_stat) -> st.op = op && st.op_backend = "mem") stats
  in
  (* Every storage transfer — single-block included — travels through
     the backend's run API, so the timed kinds are Read_run/Write_run. *)
  (match find Telemetry.Read_run with
  | Some st ->
      Alcotest.(check int) "read runs timed (1 single + 1 batched)" 2 st.Telemetry.count;
      Alcotest.(check int) "read_run blocks" 9 st.Telemetry.op_blocks;
      Alcotest.(check bool) "read_run bytes" true (st.Telemetry.op_bytes > 0)
  | None -> Alcotest.fail "no Read_run stat");
  (match find Telemetry.Write_run with
  (* alloc's zero-init also travels as write runs, so >= 3 runs here. *)
  | Some st -> Alcotest.(check bool) "write runs timed" true (st.Telemetry.count >= 3)
  | None -> Alcotest.fail "no Write_run stat");
  (match find Telemetry.Sync with
  | Some st -> Alcotest.(check int) "sync timed" 1 st.Telemetry.count
  | None -> Alcotest.fail "no Sync stat");
  List.iter
    (fun (st : Telemetry.op_stat) ->
      Alcotest.(check int)
        ("hist count matches op count for " ^ Telemetry.op_kind_name st.op)
        st.Telemetry.count
        (Telemetry.hist_count st.Telemetry.latency))
    stats

let test_phase_attribution () =
  let tel = Telemetry.create () in
  let s = Storage.create ~telemetry:tel ~block_size:2 () in
  let payload = 8 + Block.encoded_size 2 in
  let base = Storage.alloc s 4 in
  Trace.with_span (Storage.trace s) "outer" (fun () ->
      ignore (Storage.read s base);
      Trace.with_span (Storage.trace s) "inner" (fun () -> ignore (Storage.read_many s base 4)));
  (match Telemetry.phases tel with
  | [ inner; outer ] ->
      (* Completion order: inner closes first. *)
      Alcotest.(check string) "inner label" "inner" inner.Telemetry.label;
      Alcotest.(check int) "inner depth" 1 inner.Telemetry.depth;
      Alcotest.(check int) "inner ios" 4 inner.Telemetry.ios;
      Alcotest.(check int) "inner bytes" (4 * payload) inner.Telemetry.bytes;
      Alcotest.(check string) "outer label" "outer" outer.Telemetry.label;
      (* Innermost attribution: the outer phase keeps only its own read. *)
      Alcotest.(check int) "outer ios" 1 outer.Telemetry.ios;
      Alcotest.(check bool) "durations nest" true
        (outer.Telemetry.dur_ns >= inner.Telemetry.dur_ns)
  | l -> Alcotest.failf "expected 2 phases, got %d" (List.length l));
  match Telemetry.phase_stats tel with
  | [ a; b ] ->
      Alcotest.(check (list string)) "phase stats sorted by label" [ "inner"; "outer" ]
        [ a.Telemetry.phase_label; b.Telemetry.phase_label ]
  | l -> Alcotest.failf "expected 2 phase stats, got %d" (List.length l)

let test_retry_and_fault_attribution () =
  let tel = Telemetry.create () in
  let backend =
    Storage.Faulty { inner = Storage.Mem; seed = 3; failure_rate = 1.0; max_burst = 1 }
  in
  let s =
    Storage.create ~telemetry:tel ~backend ~backoff:(0., 0.) ~trace_mode:Trace.Digest
      ~block_size:2 ()
  in
  Alcotest.(check string) "kind is the device's, not the shim's" "faulty"
    (Storage.backend_kind s);
  let base = Storage.alloc s 2 in
  Trace.with_span (Storage.trace s) "probe" (fun () -> ignore (Storage.read_many s base 2));
  match Telemetry.phases tel with
  | [ p ] ->
      Alcotest.(check string) "phase label" "probe" p.Telemetry.label;
      Alcotest.(check int) "ios" 2 p.Telemetry.ios;
      Alcotest.(check int) "one retry per access" 2 p.Telemetry.retries;
      Alcotest.(check int) "faults" 2 p.Telemetry.faults
  | l -> Alcotest.failf "expected 1 phase, got %d" (List.length l)

(* ---------------- cache counters ---------------- *)

let test_cache_counters () =
  let tel = Telemetry.create () in
  let s = Storage.create ~telemetry:tel ~block_size:2 () in
  let base = Storage.alloc s 8 in
  let c = Cache.create s ~capacity:8 in
  ignore (Cache.load c base);
  ignore (Cache.load c base);
  ignore (Cache.load c (base + 1));
  Cache.load_run c base ~count:4;
  Cache.flush c base;
  Cache.write_through c (base + 1);
  Cache.flush_all c;
  let counter name =
    match List.assoc_opt name (Telemetry.counters tel) with Some v -> v | None -> 0
  in
  (* load: 1 miss + 1 hit + 1 miss; load_run over [0,4): 2 hits, 2 misses. *)
  Alcotest.(check int) "hits" 3 (counter "cache.hit");
  Alcotest.(check int) "misses" 4 (counter "cache.miss");
  (* flush 1 + write_through 1 + flush_all of the 3 still-resident. *)
  Alcotest.(check int) "flushes" 5 (counter "cache.flush")

(* ---------------- obliviousness ---------------- *)

(* The central safety property: enabling telemetry must not change one
   op of the trace. Run A of each pair is instrumented, run B is not —
   [oblivious = true] is exactly "profiled trace == unprofiled trace". *)
let sort_subject =
  {
    Odex_obcheck.Pairtest.name = "sort-under-telemetry";
    run = (fun ~rng ~m _s a -> ignore (Odex.Sort.run ~m ~rng a));
  }

let check_invisible backend =
  let o =
    Odex_obcheck.Pairtest.check ~backend ~telemetry:(Telemetry.create ()) sort_subject
      ~n_cells:96 ~b:4 ~m:16
  in
  Alcotest.(check bool)
    (Printf.sprintf "telemetry-on trace == telemetry-off trace on %s"
       o.Odex_obcheck.Pairtest.backend)
    true o.Odex_obcheck.Pairtest.oblivious

let test_telemetry_invisible_mem () = check_invisible Storage.Mem

let test_telemetry_invisible_file () =
  let path = Filename.temp_file "odex_tel" ".store" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> check_invisible (Storage.File { path }))

let test_telemetry_invisible_faulty () =
  check_invisible
    (Storage.Faulty { inner = Storage.Mem; seed = 11; failure_rate = 0.1; max_burst = 2 })

(* ---------------- exports ---------------- *)

let test_exports () =
  let tel = Telemetry.create () in
  let s = Storage.create ~telemetry:tel ~block_size:2 () in
  let base = Storage.alloc s 4 in
  Trace.with_span (Storage.trace s) "export \"phase\"" (fun () ->
      ignore (Storage.read_many s base 4));
  let summary = Format.asprintf "%a" Telemetry.pp_summary tel in
  Alcotest.(check bool) "summary names the op" true (contains summary "read_run[mem]");
  Alcotest.(check bool) "summary names the phase" true (contains summary "export");
  let json = Telemetry.chrome_json [ ("run", tel) ] in
  Alcotest.(check bool) "traceEvents present" true (contains json "\"traceEvents\"");
  Alcotest.(check bool) "phase event present" true (contains json "\"ph\":\"X\"");
  Alcotest.(check bool) "thread named" true (contains json "thread_name");
  Alcotest.(check bool) "quotes escaped" true (contains json "export \\\"phase\\\"");
  let path = Filename.temp_file "odex_tel" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Telemetry.write_chrome ~path [ ("run", tel) ];
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool) "file written" true (len > 0));
  let empty = Format.asprintf "%a" Telemetry.pp_summary Telemetry.disabled in
  Alcotest.(check bool) "disabled sink prints a note" true (String.length empty > 0)

let suite =
  [
    ("disabled sink is a no-op", `Quick, test_disabled_sink_is_noop);
    ("storage default sink is disabled", `Quick, test_storage_default_sink_is_disabled);
    ("histogram percentiles", `Quick, test_histogram_percentiles);
    ("backend ops are timed", `Quick, test_storage_ops_timed);
    ("phase counter attribution", `Quick, test_phase_attribution);
    ("retries and faults attributed", `Quick, test_retry_and_fault_attribution);
    ("cache hit/miss/flush counters", `Quick, test_cache_counters);
    ("telemetry invisible to the adversary (mem)", `Quick, test_telemetry_invisible_mem);
    ("telemetry invisible to the adversary (file)", `Quick, test_telemetry_invisible_file);
    ("telemetry invisible to the adversary (faulty)", `Quick, test_telemetry_invisible_faulty);
    ("summary and chrome exports", `Quick, test_exports);
  ]
