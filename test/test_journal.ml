(* The write-ahead journal (DESIGN.md §10): crash atomicity, recovery
   obliviousness, and phase-checkpointed resume.

   The centerpiece is the kill-at-every-op sweep: a small journaled sort
   is killed after every single backend operation, reopened with
   [resume:true], and must (a) come back consistent and finish correctly,
   (b) never reuse a (key, nonce) pair across the crash, and (c) produce
   a replay and commit schedule that is bit-identical across a pair of
   same-shape, different-data inputs — recovery leaks nothing. *)

open Odex_extmem

let temp_pair () =
  (Filename.temp_file "odex_jtest" ".store", Filename.temp_file "odex_jtest" ".journal")

let cleanup paths = List.iter (fun p -> if Sys.file_exists p then Sys.remove p) paths

let with_temp_pair f =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) (fun () -> f sp jp)

(* ---------------- journal unit layer ---------------- *)

let payload i = Bytes.init 16 (fun j -> Char.chr ((i + (7 * j)) land 0xFF))

let test_append_commit_bookkeeping () =
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      let b = Journal.backend j in
      Backend.ensure b 8;
      for i = 0 to 2 do
        Backend.write b i (payload i)
      done;
      let buf =
        Odex_crypto.Bigbuf.of_bytes
          (Bytes.concat Bytes.empty (List.init 4 (fun i -> payload (10 + i))))
      in
      Backend.write_run b ~addr:3 ~count:4 ~payload:16 ~buf ~off:0;
      Alcotest.(check (list (pair int int)))
        "append schedule: one record per run"
        [ (0, 1); (1, 1); (2, 1); (3, 4) ]
        (Journal.append_log j);
      Alcotest.(check int) "pending bytes" ((3 * (32 + 16)) + (32 + 64)) (Journal.pending_bytes j);
      (* Deferred apply: the inner store is untouched, but the overlay
         serves read-your-writes through the decorator. *)
      Alcotest.(check bytes) "pending write readable" (payload 1) (Backend.read b 1);
      Alcotest.(check bytes) "pending run readable" (payload 12) (Backend.read b 5);
      Journal.commit j;
      Alcotest.(check int) "commit empties the tail" 0 (Journal.pending_bytes j);
      Alcotest.(check bool) "commits counted" true (Journal.commits j >= 1);
      (* Now applied in place. *)
      for i = 0 to 2 do
        Alcotest.(check bytes) (Printf.sprintf "block %d" i) (payload i) (Backend.read b i)
      done;
      Alcotest.(check bytes) "run block" (payload 12) (Backend.read b 5);
      Backend.close b)

let test_auto_commit_bounds_tail () =
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j =
        Journal.create ~auto_commit_bytes:64 ~path:jp ~payload_size:16 ~durable:false
          ~replay:false inner
      in
      let b = Journal.backend j in
      Backend.ensure b 16;
      for i = 0 to 15 do
        Backend.write b i (payload i)
      done;
      Alcotest.(check bool) "auto-commits fired" true (Journal.commits j >= 4);
      Alcotest.(check bool) "tail stays bounded" true
        (Journal.pending_bytes j <= 64 + 32 + 16);
      Backend.close b)

(* A crash between a commit's marker and its completed in-place apply is
   exactly what the redo log exists for: reopening replays the whole
   committed group and the store is whole. *)
let test_replay_heals_crashed_apply () =
  with_temp_pair (fun sp jp ->
      let inner =
        Backend.crash_after ~ops:2 (Backend.file ~path:sp ~payload_size:16)
      in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      let b = Journal.backend j in
      Backend.ensure b 4;
      Backend.write b 0 (payload 0);
      Backend.write b 1 (payload 1);
      Backend.write b 2 (payload 2);
      (* The commit marker lands, then the third in-place apply dies. *)
      (match Journal.commit j with
      | () -> Alcotest.fail "expected the crash"
      | exception Backend.Crashed -> ());
      Journal.abandon j;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (list (pair int int)))
        "replay re-applies every intact record"
        [ (0, 1); (1, 1); (2, 1) ]
        (Journal.replay_log j);
      Alcotest.(check int) "journal truncated after replay" 0 (Journal.pending_bytes j);
      let b = Journal.backend j in
      for i = 0 to 2 do
        Alcotest.(check bytes)
          (Printf.sprintf "block %d healed" i)
          (payload i) (Backend.read b i)
      done;
      Backend.close b)

(* Journal-file surgery on a marked-committed-but-unapplied group: a torn
   tail (short body) and a corrupted body byte must both stop replay at
   the damage, never apply garbage. And a group with no commit marker at
   all must be discarded wholesale — that is the rollback boundary. *)
let test_torn_tail_discarded () =
  let header_bytes = 56 in
  let record_bytes = 32 + 16 in
  (* Four records, committed (marker durable) but zero in-place applies:
     the inner store crashes on the commit's first apply. *)
  let write_records sp jp =
    let inner = Backend.crash_after ~ops:0 (Backend.file ~path:sp ~payload_size:16) in
    let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
    let b = Journal.backend j in
    Backend.ensure b 4;
    for i = 0 to 3 do
      Backend.write b i (payload i)
    done;
    (match Journal.commit j with
    | () -> Alcotest.fail "expected the crash"
    | exception Backend.Crashed -> ());
    Journal.abandon j
  in
  with_temp_pair (fun sp jp ->
      write_records sp jp;
      (* Cut 6 bytes off the last record's body. *)
      let fd = Unix.openfile jp [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (header_bytes + (4 * record_bytes) - 6);
      Unix.close fd;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (list (pair int int)))
        "replay stops at the torn record"
        [ (0, 1); (1, 1); (2, 1) ]
        (Journal.replay_log j);
      Backend.close (Journal.backend j));
  with_temp_pair (fun sp jp ->
      write_records sp jp;
      (* Flip one byte inside record 2's body. *)
      let fd = Unix.openfile jp [ Unix.O_RDWR ] 0 in
      let pos = header_bytes + (2 * record_bytes) + 32 + 5 in
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      let c = Bytes.create 1 in
      ignore (Unix.read fd c 0 1);
      Bytes.set c 0 (Char.chr (Char.code (Bytes.get c 0) lxor 0xFF));
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      ignore (Unix.write fd c 0 1);
      Unix.close fd;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (list (pair int int)))
        "checksum failure stops replay before the corrupt record"
        [ (0, 1); (1, 1) ]
        (Journal.replay_log j);
      Backend.close (Journal.backend j));
  (* No commit marker: the whole intact tail is provisional, and reopen
     rolls it back instead of replaying it. *)
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      let b = Journal.backend j in
      Backend.ensure b 4;
      for i = 0 to 3 do
        Backend.write b i (payload i)
      done;
      Journal.abandon j;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (list (pair int int)))
        "uncommitted tail discarded, not replayed" []
        (Journal.replay_log j);
      let b = Journal.backend j in
      Alcotest.(check bool) "rolled back to zero-init, not the pending write" true
        (Backend.read b 0 = Bytes.make 16 '\000');
      Backend.close b)

let test_checkpoint_slot_persistence () =
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      Journal.checkpoint j ~owner:"sorter/0/6" ~phase:3 ~cursor:7;
      Alcotest.(check (pair int int)) "own slot" (3, 7) (Journal.state j ~owner:"sorter/0/6");
      Alcotest.(check (pair int int))
        "foreign owner sees nothing" (0, 0)
        (Journal.state j ~owner:"other");
      Journal.abandon j;
      (* Survives a crash + replayed reopen. *)
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (pair int int))
        "slot survives crash" (3, 7)
        (Journal.state j ~owner:"sorter/0/6");
      Journal.abandon j;
      (* A torn header mid-rewrite degrades to "no checkpoint". *)
      let fd = Unix.openfile jp [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd 26 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 '\xAB') 0 1);
      Unix.close fd;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (pair int int))
        "torn header reads as no checkpoint" (0, 0)
        (Journal.state j ~owner:"sorter/0/6");
      Journal.abandon j;
      (* replay:false deliberately discards a surviving slot. *)
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      Journal.checkpoint j ~owner:"x" ~phase:1 ~cursor:0;
      Journal.abandon j;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      Alcotest.(check (pair int int))
        "fresh open drops the slot" (0, 0)
        (Journal.state j ~owner:"x");
      Backend.close (Journal.backend j))

let test_foreign_journal_rejected () =
  with_temp_pair (fun sp jp ->
      let oc = open_out_bin jp in
      output_string oc (String.make 128 'z');
      close_out oc;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      Alcotest.(check bool) "foreign journal refused" true
        (match Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner with
        | exception Invalid_argument _ -> true
        | j ->
            Backend.close (Journal.backend j);
            false);
      Backend.close inner)

(* ---------------- storage layer ---------------- *)

(* Journaling is a physical-only layer: the counted I/O schedule — the
   adversary's view — must be bit-identical with the journal on and off.
   (The journal file itself is server-side state derived from that same
   view.) *)
let test_trace_parity_journal_on_off () =
  with_temp_pair (fun sp jp ->
      let keys = Util.random_keys (Odex_crypto.Rng.create ~seed:11) 96 ~bound:1000 in
      let run backend =
        let s = Storage.create ~trace_mode:Trace.Digest ~backend ~block_size:2 () in
        Fun.protect
          ~finally:(fun () -> Storage.close s)
          (fun () ->
            let a = Ext_array.of_cells s ~block_size:2 (Util.cells_of_keys keys) in
            Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:4 a;
            Util.check_sorted_by_key (Storage.backend_kind s) a;
            let st = Storage.stats s and tr = Storage.trace s in
            (Stats.reads st, Stats.writes st, Trace.length tr, Trace.digest tr))
      in
      let r0, w0, l0, d0 = run (Storage.File { path = sp }) in
      cleanup [ sp ];
      let r1, w1, l1, d1 =
        run (Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false })
      in
      Alcotest.(check int) "same reads" r0 r1;
      Alcotest.(check int) "same writes" w0 w1;
      Alcotest.(check int) "same trace length" l0 l1;
      Alcotest.(check int64) "same trace digest" d0 d1)

(* ---------------- the kill-at-every-op sweep ---------------- *)

(* Raw out-of-band scan of the sealed store file: (nonce, ciphertext)
   per block — the adversary's retained disk image. Blocks that are all
   zero bytes are the [ensure] zero-fill, not a seal event (a real seal
   of nonce 0 has the keystream as ciphertext), and are skipped: a crash
   between a group's ensure and its committed apply legitimately leaves
   them behind. *)
let scan_sealed path ~payload_size =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        let n = max 0 ((len - Backend.file_header_bytes) / payload_size) in
        List.filter_map Fun.id
          (List.init n (fun i ->
               seek_in ic (Backend.file_header_bytes + (i * payload_size));
               let b = Bytes.create payload_size in
               really_input ic b 0 payload_size;
               if Bytes.for_all (fun c -> c = '\000') b then None
               else Some (Bytes.get_int64_le b 0, Bytes.sub_string b 8 (payload_size - 8)))))

(* The precise no-reuse property: one nonce may appear at several points
   of history only as the SAME seal event (same ciphertext) — e.g. a
   replay copying a record verbatim. The same nonce over two different
   ciphertexts is a (key, nonce) reuse, the catastrophic failure. *)
let check_no_nonce_reuse name scans =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (nonce, ct) ->
      if nonce <> -1L then
        match Hashtbl.find_opt tbl nonce with
        | Some ct' ->
            if ct' <> ct then
              Alcotest.failf "%s: nonce %Ld sealed two different payloads" name nonce
        | None -> Hashtbl.add tbl nonce ct)
    scans

type sweep_obs = {
  crashed : bool;
  appends : (int * int) list;  (* journal records of the killed run *)
  replays : (int * int) list;  (* records re-applied on reopen *)
  resumed_phase : int;  (* ext-sort checkpoint found on reopen *)
  resumed_ios : int;  (* counted I/Os of the resumed completion *)
}

let sort_keys = 12 (* 6 blocks of 2 -> pads to n2 = 8: exercises the scratch path *)
let sweep_b = 2
let sweep_m = 4

(* Counted I/O cost of the sort alone on a journaled store, crash-free:
   the baseline a resumed run must beat. *)
let full_sort_ios keys =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let spec = Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false } in
  let s = Storage.create ~trace_mode:Trace.Digest ~backend:spec ~block_size:sweep_b () in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let a = Ext_array.of_cells s ~block_size:sweep_b (Util.cells_of_keys keys) in
      let before = Stats.total (Storage.stats s) in
      Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:sweep_m a;
      Stats.total (Storage.stats s) - before)

(* Kill after exactly [k] backend ops, reopen with resume, finish the
   sort, and check everything the issue demands of that crash point.
   Sealed under ChaCha20 (the bucket sweep below keeps the PRF engine,
   so both engines get the full kill treatment): the reopen must name
   the engine, exercising the engine id persisted in both the store
   header and the journal header across every crash point. *)
let sweep_point ~keys ~full_ios k =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let cipher = Odex_crypto.Cipher.key_of_int 99 in
  let cipher_engine = Odex_crypto.Cipher.Chacha20 in
  let payload_size = 8 + Block.encoded_size sweep_b in
  let cells = Util.cells_of_keys keys in
  let nblocks = (Array.length keys + sweep_b - 1) / sweep_b in
  let crash_spec =
    Storage.Journaled
      {
        inner = Storage.Crashing { inner = Storage.File { path = sp }; ops = k };
        path = jp;
        durable = false;
      }
  in
  let s =
    Storage.create ~cipher ~cipher_engine ~trace_mode:Trace.Digest ~backend:crash_spec
      ~block_size:sweep_b ()
  in
  let crashed, appends =
    match
      let a = Ext_array.of_cells s ~block_size:sweep_b cells in
      Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:sweep_m a;
      Storage.close s
    with
    | () -> (false, [])
    | exception Backend.Crashed ->
        let ap = Storage.journal_appends s in
        Storage.abandon s;
        (true, ap)
  in
  let scan_at_crash = scan_sealed sp ~payload_size in
  let resume_spec =
    Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false }
  in
  let s2 =
    Storage.create ~cipher ~cipher_engine ~resume:true ~trace_mode:Trace.Digest
      ~backend:resume_spec ~block_size:sweep_b ()
  in
  let replays = Storage.journal_replay s2 in
  let owner = Printf.sprintf "ext-sort/0/%d" nblocks in
  let resumed_phase, _ = Storage.checkpoint_state s2 ~owner in
  let a2 =
    if resumed_phase > 0 && Storage.capacity s2 >= nblocks then
      (* Phase 1 committed, so the input was fully consumed: re-attach
         and let the sort skip its finished phases. *)
      Ext_array.view s2 ~base:0 ~blocks:nblocks
    else if Storage.capacity s2 >= nblocks then begin
      (* Crashed before any committed phase (possibly mid-load): the
         replayed store is run-consistent but the logical input may be
         partial — reload it in place and restart. *)
      let v = Ext_array.view s2 ~base:0 ~blocks:nblocks in
      for i = 0 to nblocks - 1 do
        let blk = Block.make sweep_b in
        for j = 0 to sweep_b - 1 do
          let idx = (i * sweep_b) + j in
          if idx < Array.length cells then blk.(j) <- cells.(idx)
        done;
        Ext_array.write_block v i blk
      done;
      v
    end
    else Ext_array.of_cells s2 ~block_size:sweep_b cells
  in
  let before = Stats.total (Storage.stats s2) in
  Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:sweep_m a2;
  let resumed_ios = Stats.total (Storage.stats s2) - before in
  let got = List.map (fun (it : Cell.item) -> it.key) (Ext_array.items a2) in
  let expect = List.sort compare (Array.to_list keys) in
  if got <> expect then
    Alcotest.failf "k=%d: resumed sort wrong — got [%s], want [%s]" k
      (String.concat ";" (List.map string_of_int got))
      (String.concat ";" (List.map string_of_int expect));
  if resumed_phase > 0 && resumed_ios >= full_ios then
    Alcotest.failf "k=%d: resume from phase %d cost %d I/Os, full run costs %d — no progress kept"
      k resumed_phase resumed_ios full_ios;
  Storage.close s2;
  check_no_nonce_reuse
    (Printf.sprintf "k=%d" k)
    (scan_at_crash @ scan_sealed sp ~payload_size);
  { crashed; appends; replays; resumed_phase; resumed_ios }

let keys_a = [| 9; 3; 12; 1; 15; 7; 2; 14; 5; 11; 4; 8 |]
let keys_b = [| 900; 420; 770; 130; 560; 210; 880; 640; 310; 50; 990; 700 |]

let test_kill_at_every_op_sweep () =
  assert (Array.length keys_a = sort_keys && Array.length keys_b = sort_keys);
  let full_a = full_sort_ios keys_a in
  let full_b = full_sort_ios keys_b in
  Alcotest.(check int) "pair inputs cost the same full sort" full_a full_b;
  let schedule = Alcotest.(list (pair int int)) in
  let saw_mid_sort_resume = ref false in
  let rec go k =
    if k > 2000 then Alcotest.fail "sweep never reached a crash-free run";
    let oa = sweep_point ~keys:keys_a ~full_ios:full_a k in
    let ob = sweep_point ~keys:keys_b ~full_ios:full_b k in
    (* Recovery obliviousness: at every crash point the journal's commit
       and replay schedules are functions of shape alone. *)
    Alcotest.(check bool) (Printf.sprintf "k=%d: same fate" k) oa.crashed ob.crashed;
    Alcotest.check schedule (Printf.sprintf "k=%d: same append schedule" k) oa.appends
      ob.appends;
    Alcotest.check schedule (Printf.sprintf "k=%d: same replay schedule" k) oa.replays
      ob.replays;
    Alcotest.(check int)
      (Printf.sprintf "k=%d: same resumed phase" k)
      oa.resumed_phase ob.resumed_phase;
    Alcotest.(check int)
      (Printf.sprintf "k=%d: same resumed I/O count" k)
      oa.resumed_ios ob.resumed_ios;
    if oa.resumed_phase > 0 then saw_mid_sort_resume := true;
    if oa.crashed then go (k + 1)
  in
  go 0;
  Alcotest.(check bool) "some crash points resumed mid-sort (not from scratch)" true
    !saw_mid_sort_resume

(* ---------------- bucket sort: kill-at-every-op ---------------- *)

(* The same sweep against the bucket oblivious sort's own checkpoints
   (owner "bucket-sort/<base>/<n>"): scatter, each butterfly level, run
   formation, each merge pass, copy-back. The pair here is
   rank-isomorphic (shared rank r maps to 2r / 2r+1), because the merge
   phase's read order is rank-driven — recovery must still be
   bit-identical across the pair at every crash point. *)
let bk_cells = 40 (* 20 blocks of 2 against m = 18: zb = 4 is the floor *)
let bk_b = 2
let bk_m = 18
let bk_plan = Odex_sortnet.Bucket_sort.make_plan ~b:bk_b ~z_cells:8 ~n_cells:bk_cells

(* The overflow event is coin-public; the sweep wants the success path,
   so pick the first master whose (pure) coin replay routes cleanly. *)
let bk_master =
  let rec find c =
    if c > 5000 then failwith "no clean master below 5000 (Z=8 routing broken?)"
    else if
      Odex_sortnet.Bucket_sort.simulate_overflow bk_plan ~master:c ~b:bk_b
        ~n_blocks:(bk_cells / bk_b)
    then find (c + 1)
    else c
  in
  lazy (find 0)

let bk_rank_keys =
  let ranks =
    let a = Array.init bk_cells (fun i -> i) in
    let rng = Odex_crypto.Rng.create ~seed:0xB5EED in
    for i = bk_cells - 1 downto 1 do
      let j = Odex_crypto.Rng.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  fun parity -> Array.map (fun r -> (2 * r) + parity) ranks

let bucket_sort_once s cells =
  let a = Ext_array.of_cells s ~block_size:bk_b cells in
  Odex_sortnet.Bucket_sort.sort ~plan:bk_plan ~master:(Lazy.force bk_master) ~real:true
    ~cmp:Cell.compare_keys ~m:bk_m a;
  a

let bucket_full_sort_ios keys =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let spec = Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false } in
  let s = Storage.create ~trace_mode:Trace.Digest ~backend:spec ~block_size:bk_b () in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let cells = Util.cells_of_keys keys in
      let a = Ext_array.of_cells s ~block_size:bk_b cells in
      let before = Stats.total (Storage.stats s) in
      Odex_sortnet.Bucket_sort.sort ~plan:bk_plan ~master:(Lazy.force bk_master) ~real:true
        ~cmp:Cell.compare_keys ~m:bk_m a;
      Stats.total (Storage.stats s) - before)

let bucket_sweep_point ~keys ~full_ios k =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let cipher = Odex_crypto.Cipher.key_of_int 99 in
  let payload_size = 8 + Block.encoded_size bk_b in
  let cells = Util.cells_of_keys keys in
  let nblocks = bk_cells / bk_b in
  let crash_spec =
    Storage.Journaled
      {
        inner = Storage.Crashing { inner = Storage.File { path = sp }; ops = k };
        path = jp;
        durable = false;
      }
  in
  let s = Storage.create ~cipher ~trace_mode:Trace.Digest ~backend:crash_spec ~block_size:bk_b () in
  let crashed, appends =
    match
      ignore (bucket_sort_once s cells);
      Storage.close s
    with
    | () -> (false, [])
    | exception Backend.Crashed ->
        let ap = Storage.journal_appends s in
        Storage.abandon s;
        (true, ap)
  in
  let scan_at_crash = scan_sealed sp ~payload_size in
  let resume_spec =
    Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false }
  in
  let s2 =
    Storage.create ~cipher ~resume:true ~trace_mode:Trace.Digest ~backend:resume_spec
      ~block_size:bk_b ()
  in
  let replays = Storage.journal_replay s2 in
  let owner = Printf.sprintf "bucket-sort/0/%d" nblocks in
  let resumed_phase, _ = Storage.checkpoint_state s2 ~owner in
  let a2 =
    if resumed_phase > 0 && Storage.capacity s2 >= nblocks then
      (* The scatter phase committed, so the input was fully consumed:
         re-attach and let the sort skip its finished phases. *)
      Ext_array.view s2 ~base:0 ~blocks:nblocks
    else if Storage.capacity s2 >= nblocks then begin
      let v = Ext_array.view s2 ~base:0 ~blocks:nblocks in
      for i = 0 to nblocks - 1 do
        let blk = Block.make bk_b in
        for j = 0 to bk_b - 1 do
          let idx = (i * bk_b) + j in
          if idx < Array.length cells then blk.(j) <- cells.(idx)
        done;
        Ext_array.write_block v i blk
      done;
      v
    end
    else Ext_array.of_cells s2 ~block_size:bk_b cells
  in
  let before = Stats.total (Storage.stats s2) in
  Odex_sortnet.Bucket_sort.sort ~plan:bk_plan ~master:(Lazy.force bk_master) ~real:true
    ~cmp:Cell.compare_keys ~m:bk_m a2;
  let resumed_ios = Stats.total (Storage.stats s2) - before in
  let got = List.map (fun (it : Cell.item) -> it.key) (Ext_array.items a2) in
  let expect = List.sort compare (Array.to_list keys) in
  if got <> expect then
    Alcotest.failf "bucket k=%d: resumed sort wrong — got [%s], want [%s]" k
      (String.concat ";" (List.map string_of_int got))
      (String.concat ";" (List.map string_of_int expect));
  if resumed_phase > 0 && resumed_ios >= full_ios then
    Alcotest.failf
      "bucket k=%d: resume from phase %d cost %d I/Os, full run costs %d — no progress kept" k
      resumed_phase resumed_ios full_ios;
  (* The completed run must always clear its slot. *)
  Alcotest.(check (pair int int))
    (Printf.sprintf "bucket k=%d: slot cleared" k)
    (0, 0)
    (Storage.checkpoint_state s2 ~owner);
  Storage.close s2;
  check_no_nonce_reuse
    (Printf.sprintf "bucket k=%d" k)
    (scan_at_crash @ scan_sealed sp ~payload_size);
  { crashed; appends; replays; resumed_phase; resumed_ios }

let test_bucket_kill_at_every_op_sweep () =
  let keys_a = bk_rank_keys 0 and keys_b = bk_rank_keys 1 in
  let full_a = bucket_full_sort_ios keys_a in
  let full_b = bucket_full_sort_ios keys_b in
  Alcotest.(check int) "isomorphic pair costs the same full sort" full_a full_b;
  let schedule = Alcotest.(list (pair int int)) in
  let saw_mid_sort_resume = ref false in
  let rec go k =
    if k > 4000 then Alcotest.fail "bucket sweep never reached a crash-free run";
    let oa = bucket_sweep_point ~keys:keys_a ~full_ios:full_a k in
    let ob = bucket_sweep_point ~keys:keys_b ~full_ios:full_b k in
    Alcotest.(check bool) (Printf.sprintf "bucket k=%d: same fate" k) oa.crashed ob.crashed;
    Alcotest.check schedule
      (Printf.sprintf "bucket k=%d: same append schedule" k)
      oa.appends ob.appends;
    Alcotest.check schedule
      (Printf.sprintf "bucket k=%d: same replay schedule" k)
      oa.replays ob.replays;
    Alcotest.(check int)
      (Printf.sprintf "bucket k=%d: same resumed phase" k)
      oa.resumed_phase ob.resumed_phase;
    Alcotest.(check int)
      (Printf.sprintf "bucket k=%d: same resumed I/O count" k)
      oa.resumed_ios ob.resumed_ios;
    if oa.resumed_phase > 0 then saw_mid_sort_resume := true;
    if oa.crashed then go (k + 1)
  in
  go 0;
  Alcotest.(check bool) "some crash points resumed mid-sort (not from scratch)" true
    !saw_mid_sort_resume

(* Journaling must stay invisible to the counted schedule for the new
   sorter too, including its checkpoint writes. *)
let test_bucket_trace_parity_journal_on_off () =
  with_temp_pair (fun sp jp ->
      let keys = bk_rank_keys 0 in
      let run backend =
        let s = Storage.create ~trace_mode:Trace.Digest ~backend ~block_size:bk_b () in
        Fun.protect
          ~finally:(fun () -> Storage.close s)
          (fun () ->
            let a = bucket_sort_once s (Util.cells_of_keys keys) in
            Util.check_sorted_by_key (Storage.backend_kind s) a;
            let st = Storage.stats s and tr = Storage.trace s in
            (Stats.reads st, Stats.writes st, Trace.length tr, Trace.digest tr))
      in
      let r0, w0, l0, d0 = run (Storage.File { path = sp }) in
      cleanup [ sp ];
      let r1, w1, l1, d1 =
        run (Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false })
      in
      Alcotest.(check int) "same reads" r0 r1;
      Alcotest.(check int) "same writes" w0 w1;
      Alcotest.(check int) "same trace length" l0 l1;
      Alcotest.(check int64) "same trace digest" d0 d1)

(* ---------------- ORAM checkpoint smoke ---------------- *)

let test_oram_rebuild_checkpoints () =
  with_temp_pair (fun _sp jp ->
      let spec = Storage.Journaled { inner = Storage.Mem; path = jp; durable = false } in
      let s = Storage.create ~trace_mode:Trace.Digest ~backend:spec ~block_size:4 () in
      Fun.protect
        ~finally:(fun () -> Storage.close s)
        (fun () ->
          let rng = Odex_crypto.Rng.create ~seed:13 in
          let o = Odex_oram.Hierarchical_oram.init ~m:16 ~rng s ~values:(Array.init 64 Fun.id) in
          for i = 0 to 63 do
            Alcotest.(check int) (Printf.sprintf "read %d" i) i
              (Odex_oram.Hierarchical_oram.read o i)
          done;
          Alcotest.(check bool) "rebuilds happened" true
            (Odex_oram.Hierarchical_oram.rebuilds o > 0);
          (* Every completed rebuild must have cleared its slot. *)
          Alcotest.(check (pair int int))
            "no rebuild left in flight" (0, 0)
            (Storage.checkpoint_state s ~owner:"oram-rebuild")))

let suite =
  [
    ("append/commit bookkeeping", `Quick, test_append_commit_bookkeeping);
    ("auto-commit bounds the tail", `Quick, test_auto_commit_bounds_tail);
    ("replay heals a crashed apply", `Quick, test_replay_heals_crashed_apply);
    ("torn tail and corrupt record discarded", `Quick, test_torn_tail_discarded);
    ("checkpoint slot persistence", `Quick, test_checkpoint_slot_persistence);
    ("foreign journal rejected", `Quick, test_foreign_journal_rejected);
    ("trace parity with journaling on and off", `Quick, test_trace_parity_journal_on_off);
    ("kill-at-every-op sweep", `Slow, test_kill_at_every_op_sweep);
    ("bucket sort kill-at-every-op sweep", `Slow, test_bucket_kill_at_every_op_sweep);
    ("bucket sort journal on/off trace parity", `Quick,
      test_bucket_trace_parity_journal_on_off);
    ("ORAM rebuild checkpoints clear", `Quick, test_oram_rebuild_checkpoints);
  ]
