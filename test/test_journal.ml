(* The write-ahead journal (DESIGN.md §10): crash atomicity, recovery
   obliviousness, and phase-checkpointed resume.

   The centerpiece is the kill-at-every-op sweep: a small journaled sort
   is killed after every single backend operation, reopened with
   [resume:true], and must (a) come back consistent and finish correctly,
   (b) never reuse a (key, nonce) pair across the crash, and (c) produce
   a replay and commit schedule that is bit-identical across a pair of
   same-shape, different-data inputs — recovery leaks nothing. *)

open Odex_extmem

let temp_pair () =
  (Filename.temp_file "odex_jtest" ".store", Filename.temp_file "odex_jtest" ".journal")

let cleanup paths = List.iter (fun p -> if Sys.file_exists p then Sys.remove p) paths

let with_temp_pair f =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) (fun () -> f sp jp)

(* ---------------- journal unit layer ---------------- *)

let payload i = Bytes.init 16 (fun j -> Char.chr ((i + (7 * j)) land 0xFF))

let test_append_commit_bookkeeping () =
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      let b = Journal.backend j in
      Backend.ensure b 8;
      for i = 0 to 2 do
        Backend.write b i (payload i)
      done;
      let buf =
        Odex_crypto.Bigbuf.of_bytes
          (Bytes.concat Bytes.empty (List.init 4 (fun i -> payload (10 + i))))
      in
      Backend.write_run b ~addr:3 ~count:4 ~payload:16 ~buf ~off:0;
      Alcotest.(check (list (pair int int)))
        "append schedule: one record per run"
        [ (0, 1); (1, 1); (2, 1); (3, 4) ]
        (Journal.append_log j);
      Alcotest.(check int) "pending bytes" ((3 * (32 + 16)) + (32 + 64)) (Journal.pending_bytes j);
      (* Deferred apply: the inner store is untouched, but the overlay
         serves read-your-writes through the decorator. *)
      Alcotest.(check bytes) "pending write readable" (payload 1) (Backend.read b 1);
      Alcotest.(check bytes) "pending run readable" (payload 12) (Backend.read b 5);
      Journal.commit j;
      Alcotest.(check int) "commit empties the tail" 0 (Journal.pending_bytes j);
      Alcotest.(check bool) "commits counted" true (Journal.commits j >= 1);
      (* Now applied in place. *)
      for i = 0 to 2 do
        Alcotest.(check bytes) (Printf.sprintf "block %d" i) (payload i) (Backend.read b i)
      done;
      Alcotest.(check bytes) "run block" (payload 12) (Backend.read b 5);
      Backend.close b)

let test_auto_commit_bounds_tail () =
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j =
        Journal.create ~auto_commit_bytes:64 ~path:jp ~payload_size:16 ~durable:false
          ~replay:false inner
      in
      let b = Journal.backend j in
      Backend.ensure b 16;
      for i = 0 to 15 do
        Backend.write b i (payload i)
      done;
      Alcotest.(check bool) "auto-commits fired" true (Journal.commits j >= 4);
      Alcotest.(check bool) "tail stays bounded" true
        (Journal.pending_bytes j <= 64 + 32 + 16);
      Backend.close b)

(* A crash between a commit's marker and its completed in-place apply is
   exactly what the redo log exists for: reopening replays the whole
   committed group and the store is whole. *)
let test_replay_heals_crashed_apply () =
  with_temp_pair (fun sp jp ->
      let inner =
        Backend.crash_after ~ops:2 (Backend.file ~path:sp ~payload_size:16)
      in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      let b = Journal.backend j in
      Backend.ensure b 4;
      Backend.write b 0 (payload 0);
      Backend.write b 1 (payload 1);
      Backend.write b 2 (payload 2);
      (* The commit marker lands, then the third in-place apply dies. *)
      (match Journal.commit j with
      | () -> Alcotest.fail "expected the crash"
      | exception Backend.Crashed -> ());
      Journal.abandon j;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (list (pair int int)))
        "replay re-applies every intact record"
        [ (0, 1); (1, 1); (2, 1) ]
        (Journal.replay_log j);
      Alcotest.(check int) "journal truncated after replay" 0 (Journal.pending_bytes j);
      let b = Journal.backend j in
      for i = 0 to 2 do
        Alcotest.(check bytes)
          (Printf.sprintf "block %d healed" i)
          (payload i) (Backend.read b i)
      done;
      Backend.close b)

(* Journal-file surgery on a marked-committed-but-unapplied group: a torn
   tail (short body) and a corrupted body byte must both stop replay at
   the damage, never apply garbage. And a group with no commit marker at
   all must be discarded wholesale — that is the rollback boundary. *)
let test_torn_tail_discarded () =
  let header_bytes = Journal.header_bytes in
  let record_bytes = 32 + 16 in
  (* Four records, committed (marker durable) but zero in-place applies:
     the inner store crashes on the commit's first apply. *)
  let write_records sp jp =
    let inner = Backend.crash_after ~ops:0 (Backend.file ~path:sp ~payload_size:16) in
    let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
    let b = Journal.backend j in
    Backend.ensure b 4;
    for i = 0 to 3 do
      Backend.write b i (payload i)
    done;
    (match Journal.commit j with
    | () -> Alcotest.fail "expected the crash"
    | exception Backend.Crashed -> ());
    Journal.abandon j
  in
  with_temp_pair (fun sp jp ->
      write_records sp jp;
      (* Cut 6 bytes off the last record's body. *)
      let fd = Unix.openfile jp [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (header_bytes + (4 * record_bytes) - 6);
      Unix.close fd;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (list (pair int int)))
        "replay stops at the torn record"
        [ (0, 1); (1, 1); (2, 1) ]
        (Journal.replay_log j);
      Backend.close (Journal.backend j));
  with_temp_pair (fun sp jp ->
      write_records sp jp;
      (* Flip one byte inside record 2's body. *)
      let fd = Unix.openfile jp [ Unix.O_RDWR ] 0 in
      let pos = header_bytes + (2 * record_bytes) + 32 + 5 in
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      let c = Bytes.create 1 in
      ignore (Unix.read fd c 0 1);
      Bytes.set c 0 (Char.chr (Char.code (Bytes.get c 0) lxor 0xFF));
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      ignore (Unix.write fd c 0 1);
      Unix.close fd;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (list (pair int int)))
        "checksum failure stops replay before the corrupt record"
        [ (0, 1); (1, 1) ]
        (Journal.replay_log j);
      Backend.close (Journal.backend j));
  (* No commit marker: the whole intact tail is provisional, and reopen
     rolls it back instead of replaying it. *)
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      let b = Journal.backend j in
      Backend.ensure b 4;
      for i = 0 to 3 do
        Backend.write b i (payload i)
      done;
      Journal.abandon j;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (list (pair int int)))
        "uncommitted tail discarded, not replayed" []
        (Journal.replay_log j);
      let b = Journal.backend j in
      Alcotest.(check bool) "rolled back to zero-init, not the pending write" true
        (Backend.read b 0 = Bytes.make 16 '\000');
      Backend.close b)

let test_checkpoint_slot_persistence () =
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      Journal.checkpoint j ~owner:"sorter/0/6" ~phase:3 ~cursor:7;
      Alcotest.(check (pair int int)) "own slot" (3, 7) (Journal.state j ~owner:"sorter/0/6");
      Alcotest.(check (pair int int))
        "foreign owner sees nothing" (0, 0)
        (Journal.state j ~owner:"other");
      Journal.abandon j;
      (* Survives a crash + replayed reopen. *)
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (pair int int))
        "slot survives crash" (3, 7)
        (Journal.state j ~owner:"sorter/0/6");
      Journal.abandon j;
      (* A torn header mid-rewrite degrades to "no checkpoint". *)
      let fd = Unix.openfile jp [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd 26 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.make 1 '\xAB') 0 1);
      Unix.close fd;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      Alcotest.(check (pair int int))
        "torn header reads as no checkpoint" (0, 0)
        (Journal.state j ~owner:"sorter/0/6");
      Journal.abandon j;
      (* replay:false deliberately discards a surviving slot. *)
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      Journal.checkpoint j ~owner:"x" ~phase:1 ~cursor:0;
      Journal.abandon j;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      Alcotest.(check (pair int int))
        "fresh open drops the slot" (0, 0)
        (Journal.state j ~owner:"x");
      Backend.close (Journal.backend j))

(* Regression: [checkpoint] validated [phase] but not [cursor] — a
   negative cursor was accepted, persisted, and would aim a resumed
   re-attach at a bogus scratch base. Both must now be rejected, along
   with the other unrepresentable inputs. *)
let test_checkpoint_validation () =
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      let rejects name f =
        Alcotest.(check bool) name true
          (match f () with
          | exception Invalid_argument _ -> true
          | () -> false)
      in
      rejects "negative phase" (fun () ->
          Journal.checkpoint j ~owner:"x" ~phase:(-1) ~cursor:0);
      rejects "negative cursor" (fun () ->
          Journal.checkpoint j ~owner:"x" ~phase:3 ~cursor:(-7));
      rejects "phase 0 with nonzero cursor" (fun () ->
          Journal.checkpoint j ~owner:"x" ~phase:0 ~cursor:5);
      rejects "empty owner" (fun () -> Journal.checkpoint j ~owner:"" ~phase:1 ~cursor:0);
      rejects "overlong owner" (fun () ->
          Journal.checkpoint j
            ~owner:(String.make (Journal.max_owner_bytes + 1) 'a')
            ~phase:1 ~cursor:0);
      Alcotest.(check (pair int int))
        "rejected checkpoints left no slot" (0, 0)
        (Journal.state j ~owner:"x");
      (* (0, 0) is the reserved "no checkpoint" value: writing it is a
         clear, and occupancy is explicit — a cleared slot is free, not a
         slot that happens to hold zeros. *)
      Journal.checkpoint j ~owner:"x" ~phase:2 ~cursor:9;
      Journal.checkpoint j ~owner:"x" ~phase:0 ~cursor:0;
      Alcotest.(check (pair int int)) "phase 0 clears" (0, 0) (Journal.state j ~owner:"x");
      Alcotest.(check int) "cleared slot is freed" 0 (List.length (Journal.slots j));
      Backend.close (Journal.backend j))

(* The bug this PR fixes: the header used to hold ONE (owner, phase,
   cursor) slot, so an ORAM rebuild, the ext-sort it runs internally,
   and an unrelated columnsort checkpointing on the same store silently
   clobbered each other — last writer wins, everyone else restarts (or
   worse, resumes from a foreign cursor). Each owner now keeps its own
   table slot. *)
let test_multi_owner_no_clobber () =
  with_temp_pair (fun sp jp ->
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner in
      Journal.checkpoint j ~owner:"oram-rebuild" ~phase:4 ~cursor:100;
      Journal.checkpoint j ~owner:"ext-sort/112/24" ~phase:2 ~cursor:112;
      Journal.checkpoint j ~owner:"columnsort/0/24" ~phase:7 ~cursor:48;
      let check_state name want owner =
        Alcotest.(check (pair int int)) name want (Journal.state j ~owner)
      in
      check_state "outer slot intact" (4, 100) "oram-rebuild";
      check_state "inner slot intact" (2, 112) "ext-sort/112/24";
      check_state "sibling slot intact" (7, 48) "columnsort/0/24";
      (* Updating one owner touches only its slot. *)
      Journal.checkpoint j ~owner:"ext-sort/112/24" ~phase:3 ~cursor:112;
      check_state "updated" (3, 112) "ext-sort/112/24";
      check_state "outer survives the update" (4, 100) "oram-rebuild";
      check_state "sibling survives the update" (7, 48) "columnsort/0/24";
      Journal.abandon j;
      (* All three survive a crashed reopen together. *)
      let inner = Backend.file ~path:sp ~payload_size:16 in
      let j = Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner in
      let check_state name want owner =
        Alcotest.(check (pair int int)) name want (Journal.state j ~owner)
      in
      check_state "outer survives crash" (4, 100) "oram-rebuild";
      check_state "inner survives crash" (3, 112) "ext-sort/112/24";
      check_state "sibling survives crash" (7, 48) "columnsort/0/24";
      Alcotest.(check int) "three slots live" 3 (List.length (Journal.slots j));
      (* Clearing one owner frees only its slot. *)
      Journal.clear j ~owner:"ext-sort/112/24";
      check_state "cleared" (0, 0) "ext-sort/112/24";
      check_state "outer survives the clear" (4, 100) "oram-rebuild";
      check_state "sibling survives the clear" (7, 48) "columnsort/0/24";
      (* Fill the table; overflow is loud, and evicts nobody. *)
      for i = 1 to Journal.max_slots - 2 do
        Journal.checkpoint j ~owner:(Printf.sprintf "filler/%d" i) ~phase:1 ~cursor:i
      done;
      Alcotest.(check int) "table full" Journal.max_slots (List.length (Journal.slots j));
      Alcotest.(check bool) "ninth owner rejected loudly" true
        (match Journal.checkpoint j ~owner:"one-too-many" ~phase:1 ~cursor:0 with
        | exception Invalid_argument _ -> true
        | () -> false);
      check_state "outer survives the overflow" (4, 100) "oram-rebuild";
      Alcotest.(check int) "nobody evicted" Journal.max_slots
        (List.length (Journal.slots j));
      (* A full table still accepts updates to existing owners. *)
      Journal.checkpoint j ~owner:"oram-rebuild" ~phase:5 ~cursor:100;
      check_state "update on a full table" (5, 100) "oram-rebuild";
      Backend.close (Journal.backend j))

(* Owner identity is the full string now (the v2 header stored a 64-bit
   FNV hash, where distinct owners could in principle alias): property —
   a checkpoint by one owner is never visible to any other owner. *)
let checkpoint_no_alias_prop =
  let owner_gen =
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 40))
  in
  Util.qcheck_case ~count:60 ~name:"distinct owners never alias"
    QCheck2.Gen.(pair owner_gen owner_gen)
    (fun (o1, o2) ->
      with_temp_pair (fun sp jp ->
          let inner = Backend.file ~path:sp ~payload_size:16 in
          let j =
            Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:false inner
          in
          Fun.protect
            ~finally:(fun () -> Backend.close (Journal.backend j))
            (fun () ->
              Journal.checkpoint j ~owner:o1 ~phase:3 ~cursor:11;
              let own = Journal.state j ~owner:o1 = (3, 11) in
              let foreign =
                if o1 = o2 then true else Journal.state j ~owner:o2 = (0, 0)
              in
              own && foreign)))

(* ---------------- v2 format migration ---------------- *)

(* FNV-1a-64, re-derived here so the fixture bytes are produced
   independently of the implementation under test. *)
let fnv64 =
  let prime = 0x100000001B3L in
  fun h bytes ->
    let h = ref h in
    Bytes.iter
      (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
      bytes;
    !h

let fnv64_offset = 0xCBF29CE484222325L
let fnv64_int64 h v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  fnv64 h b

(* A byte-exact v2 journal: 64-byte "ODEXJRN2" header whose single
   checkpoint slot stores the FNV hash of the owner, plus one committed
   record awaiting replay. The current code must open it, restore the
   slot as a one-entry legacy table, replay the record, and rewrite the
   file in the v3 format. *)
let test_v2_journal_migrates () =
  let owner = "sorter/0/6" in
  let payload_size = 16 in
  let body = Bytes.init payload_size (fun i -> Char.chr ((3 * i) land 0xFF)) in
  let engine_id = Odex_crypto.Cipher.engine_id Odex_crypto.Cipher.Prf_xor in
  let v2_header_bytes = 64 and record_header_bytes = 32 in
  let committed_tail = v2_header_bytes + record_header_bytes + payload_size in
  let mk_v2_file jp =
    let h = Bytes.make v2_header_bytes '\000' in
    Bytes.blit_string "ODEXJRN2" 0 h 0 8;
    Bytes.set_int64_le h 8 (Int64.of_int payload_size);
    Bytes.set_int64_le h 16 (fnv64 fnv64_offset (Bytes.of_string owner));
    Bytes.set_int64_le h 24 3L (* phase *);
    Bytes.set_int64_le h 32 7L (* cursor *);
    Bytes.set_int64_le h 40 (Int64.of_int committed_tail);
    Bytes.set_int64_le h 48 engine_id;
    Bytes.set_int64_le h 56 (fnv64 fnv64_offset (Bytes.sub h 0 56));
    let r = Bytes.make record_header_bytes '\000' in
    Bytes.set_int64_le r 0 (Int64.of_int payload_size) (* len *);
    Bytes.set_int64_le r 8 2L (* addr *);
    Bytes.set_int64_le r 16 1L (* count *);
    let cks =
      fnv64 (fnv64_int64 (fnv64_int64 (fnv64_int64 fnv64_offset engine_id) 2L) 1L) body
    in
    Bytes.set_int64_le r 24 cks;
    let oc = open_out_bin jp in
    output_bytes oc h;
    output_bytes oc r;
    output_bytes oc body;
    close_out oc
  in
  with_temp_pair (fun sp jp ->
      mk_v2_file jp;
      let inner = Backend.file ~path:sp ~payload_size in
      let j = Journal.create ~path:jp ~payload_size ~durable:false ~replay:true inner in
      Alcotest.(check (list (pair int int)))
        "v2 committed record replays from the old offset"
        [ (2, 1) ]
        (Journal.replay_log j);
      Alcotest.(check bytes) "replayed into the store" body
        (Backend.read (Journal.backend j) 2);
      Alcotest.(check (pair int int))
        "v2 slot restores as a one-entry table, matched by hash" (3, 7)
        (Journal.state j ~owner);
      Alcotest.(check bool) "legacy slot carries no owner string" true
        (Journal.slots j = [ (None, 3, 7) ]);
      Alcotest.(check (pair int int))
        "foreign owner sees nothing" (0, 0)
        (Journal.state j ~owner:"other");
      (* The owner's next checkpoint upgrades the slot in place to the
         full string. *)
      Journal.checkpoint j ~owner ~phase:4 ~cursor:7;
      Alcotest.(check bool) "slot upgraded to a named slot" true
        (Journal.slots j = [ (Some owner, 4, 7) ]);
      Backend.close (Journal.backend j);
      (* The file on disk is now v3. *)
      let ic = open_in_bin jp in
      let mg = really_input_string ic 8 in
      close_in ic;
      Alcotest.(check string) "file rewritten as v3" "ODEXJRN3" mg;
      (* And reopens as such, slot intact. *)
      let inner = Backend.file ~path:sp ~payload_size in
      let j = Journal.create ~path:jp ~payload_size ~durable:false ~replay:true inner in
      Alcotest.(check (pair int int)) "named slot survives" (4, 7) (Journal.state j ~owner);
      Backend.close (Journal.backend j))

let test_foreign_journal_rejected () =
  with_temp_pair (fun sp jp ->
      let oc = open_out_bin jp in
      output_string oc (String.make 128 'z');
      close_out oc;
      let inner = Backend.file ~path:sp ~payload_size:16 in
      Alcotest.(check bool) "foreign journal refused" true
        (match Journal.create ~path:jp ~payload_size:16 ~durable:false ~replay:true inner with
        | exception Invalid_argument _ -> true
        | j ->
            Backend.close (Journal.backend j);
            false);
      Backend.close inner)

(* ---------------- storage layer ---------------- *)

(* Journaling is a physical-only layer: the counted I/O schedule — the
   adversary's view — must be bit-identical with the journal on and off.
   (The journal file itself is server-side state derived from that same
   view.) *)
let test_trace_parity_journal_on_off () =
  with_temp_pair (fun sp jp ->
      let keys = Util.random_keys (Odex_crypto.Rng.create ~seed:11) 96 ~bound:1000 in
      let run backend =
        let s = Storage.create ~trace_mode:Trace.Digest ~backend ~block_size:2 () in
        Fun.protect
          ~finally:(fun () -> Storage.close s)
          (fun () ->
            let a = Ext_array.of_cells s ~block_size:2 (Util.cells_of_keys keys) in
            Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:4 a;
            Util.check_sorted_by_key (Storage.backend_kind s) a;
            let st = Storage.stats s and tr = Storage.trace s in
            (Stats.reads st, Stats.writes st, Trace.length tr, Trace.digest tr))
      in
      let r0, w0, l0, d0 = run (Storage.File { path = sp }) in
      cleanup [ sp ];
      let r1, w1, l1, d1 =
        run (Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false })
      in
      Alcotest.(check int) "same reads" r0 r1;
      Alcotest.(check int) "same writes" w0 w1;
      Alcotest.(check int) "same trace length" l0 l1;
      Alcotest.(check int64) "same trace digest" d0 d1)

(* ---------------- the kill-at-every-op sweep ---------------- *)

(* Raw out-of-band scan of the sealed store file: (nonce, ciphertext)
   per block — the adversary's retained disk image. Blocks that are all
   zero bytes are the [ensure] zero-fill, not a seal event (a real seal
   of nonce 0 has the keystream as ciphertext), and are skipped: a crash
   between a group's ensure and its committed apply legitimately leaves
   them behind. *)
let scan_sealed path ~payload_size =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        let n = max 0 ((len - Backend.file_header_bytes) / payload_size) in
        List.filter_map Fun.id
          (List.init n (fun i ->
               seek_in ic (Backend.file_header_bytes + (i * payload_size));
               let b = Bytes.create payload_size in
               really_input ic b 0 payload_size;
               if Bytes.for_all (fun c -> c = '\000') b then None
               else Some (Bytes.get_int64_le b 0, Bytes.sub_string b 8 (payload_size - 8)))))

(* The precise no-reuse property: one nonce may appear at several points
   of history only as the SAME seal event (same ciphertext) — e.g. a
   replay copying a record verbatim. The same nonce over two different
   ciphertexts is a (key, nonce) reuse, the catastrophic failure. *)
let check_no_nonce_reuse name scans =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (nonce, ct) ->
      if nonce <> -1L then
        match Hashtbl.find_opt tbl nonce with
        | Some ct' ->
            if ct' <> ct then
              Alcotest.failf "%s: nonce %Ld sealed two different payloads" name nonce
        | None -> Hashtbl.add tbl nonce ct)
    scans

type sweep_obs = {
  crashed : bool;
  appends : (int * int) list;  (* journal records of the killed run *)
  replays : (int * int) list;  (* records re-applied on reopen *)
  resumed_phase : int;  (* ext-sort checkpoint found on reopen *)
  resumed_ios : int;  (* counted I/Os of the resumed completion *)
}

let sort_keys = 12 (* 6 blocks of 2 -> pads to n2 = 8: exercises the scratch path *)
let sweep_b = 2
let sweep_m = 4

(* Counted I/O cost of the sort alone on a journaled store, crash-free:
   the baseline a resumed run must beat. *)
let full_sort_ios keys =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let spec = Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false } in
  let s = Storage.create ~trace_mode:Trace.Digest ~backend:spec ~block_size:sweep_b () in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let a = Ext_array.of_cells s ~block_size:sweep_b (Util.cells_of_keys keys) in
      let before = Stats.total (Storage.stats s) in
      Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:sweep_m a;
      Stats.total (Storage.stats s) - before)

(* Kill after exactly [k] backend ops, reopen with resume, finish the
   sort, and check everything the issue demands of that crash point.
   Sealed under ChaCha20 (the bucket sweep below keeps the PRF engine,
   so both engines get the full kill treatment): the reopen must name
   the engine, exercising the engine id persisted in both the store
   header and the journal header across every crash point. *)
let sweep_point ~keys ~full_ios k =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let cipher = Odex_crypto.Cipher.key_of_int 99 in
  let cipher_engine = Odex_crypto.Cipher.Chacha20 in
  let payload_size = 8 + Block.encoded_size sweep_b in
  let cells = Util.cells_of_keys keys in
  let nblocks = (Array.length keys + sweep_b - 1) / sweep_b in
  let crash_spec =
    Storage.Journaled
      {
        inner = Storage.Crashing { inner = Storage.File { path = sp }; ops = k };
        path = jp;
        durable = false;
      }
  in
  let s =
    Storage.create ~cipher ~cipher_engine ~trace_mode:Trace.Digest ~backend:crash_spec
      ~block_size:sweep_b ()
  in
  let crashed, appends =
    match
      let a = Ext_array.of_cells s ~block_size:sweep_b cells in
      Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:sweep_m a;
      Storage.close s
    with
    | () -> (false, [])
    | exception Backend.Crashed ->
        let ap = Storage.journal_appends s in
        Storage.abandon s;
        (true, ap)
  in
  let scan_at_crash = scan_sealed sp ~payload_size in
  let resume_spec =
    Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false }
  in
  let s2 =
    Storage.create ~cipher ~cipher_engine ~resume:true ~trace_mode:Trace.Digest
      ~backend:resume_spec ~block_size:sweep_b ()
  in
  let replays = Storage.journal_replay s2 in
  let owner = Printf.sprintf "ext-sort/0/%d" nblocks in
  let resumed_phase, _ = Storage.checkpoint_state s2 ~owner in
  let a2 =
    if resumed_phase > 0 && Storage.capacity s2 >= nblocks then
      (* Phase 1 committed, so the input was fully consumed: re-attach
         and let the sort skip its finished phases. *)
      Ext_array.view s2 ~base:0 ~blocks:nblocks
    else if Storage.capacity s2 >= nblocks then begin
      (* Crashed before any committed phase (possibly mid-load): the
         replayed store is run-consistent but the logical input may be
         partial — reload it in place and restart. *)
      let v = Ext_array.view s2 ~base:0 ~blocks:nblocks in
      for i = 0 to nblocks - 1 do
        let blk = Block.make sweep_b in
        for j = 0 to sweep_b - 1 do
          let idx = (i * sweep_b) + j in
          if idx < Array.length cells then blk.(j) <- cells.(idx)
        done;
        Ext_array.write_block v i blk
      done;
      v
    end
    else Ext_array.of_cells s2 ~block_size:sweep_b cells
  in
  let before = Stats.total (Storage.stats s2) in
  Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:sweep_m a2;
  let resumed_ios = Stats.total (Storage.stats s2) - before in
  let got = List.map (fun (it : Cell.item) -> it.key) (Ext_array.items a2) in
  let expect = List.sort compare (Array.to_list keys) in
  if got <> expect then
    Alcotest.failf "k=%d: resumed sort wrong — got [%s], want [%s]" k
      (String.concat ";" (List.map string_of_int got))
      (String.concat ";" (List.map string_of_int expect));
  if resumed_phase > 0 && resumed_ios >= full_ios then
    Alcotest.failf "k=%d: resume from phase %d cost %d I/Os, full run costs %d — no progress kept"
      k resumed_phase resumed_ios full_ios;
  Storage.close s2;
  check_no_nonce_reuse
    (Printf.sprintf "k=%d" k)
    (scan_at_crash @ scan_sealed sp ~payload_size);
  { crashed; appends; replays; resumed_phase; resumed_ios }

let keys_a = [| 9; 3; 12; 1; 15; 7; 2; 14; 5; 11; 4; 8 |]
let keys_b = [| 900; 420; 770; 130; 560; 210; 880; 640; 310; 50; 990; 700 |]

let test_kill_at_every_op_sweep () =
  assert (Array.length keys_a = sort_keys && Array.length keys_b = sort_keys);
  let full_a = full_sort_ios keys_a in
  let full_b = full_sort_ios keys_b in
  Alcotest.(check int) "pair inputs cost the same full sort" full_a full_b;
  let schedule = Alcotest.(list (pair int int)) in
  let saw_mid_sort_resume = ref false in
  let rec go k =
    if k > 2000 then Alcotest.fail "sweep never reached a crash-free run";
    let oa = sweep_point ~keys:keys_a ~full_ios:full_a k in
    let ob = sweep_point ~keys:keys_b ~full_ios:full_b k in
    (* Recovery obliviousness: at every crash point the journal's commit
       and replay schedules are functions of shape alone. *)
    Alcotest.(check bool) (Printf.sprintf "k=%d: same fate" k) oa.crashed ob.crashed;
    Alcotest.check schedule (Printf.sprintf "k=%d: same append schedule" k) oa.appends
      ob.appends;
    Alcotest.check schedule (Printf.sprintf "k=%d: same replay schedule" k) oa.replays
      ob.replays;
    Alcotest.(check int)
      (Printf.sprintf "k=%d: same resumed phase" k)
      oa.resumed_phase ob.resumed_phase;
    Alcotest.(check int)
      (Printf.sprintf "k=%d: same resumed I/O count" k)
      oa.resumed_ios ob.resumed_ios;
    if oa.resumed_phase > 0 then saw_mid_sort_resume := true;
    if oa.crashed then go (k + 1)
  in
  go 0;
  Alcotest.(check bool) "some crash points resumed mid-sort (not from scratch)" true
    !saw_mid_sort_resume

(* ---------------- bucket sort: kill-at-every-op ---------------- *)

(* The same sweep against the bucket oblivious sort's own checkpoints
   (owner "bucket-sort/<base>/<n>"): scatter, each butterfly level, run
   formation, each merge pass, copy-back. The pair here is
   rank-isomorphic (shared rank r maps to 2r / 2r+1), because the merge
   phase's read order is rank-driven — recovery must still be
   bit-identical across the pair at every crash point. *)
let bk_cells = 40 (* 20 blocks of 2 against m = 18: zb = 4 is the floor *)
let bk_b = 2
let bk_m = 18
let bk_plan = Odex_sortnet.Bucket_sort.make_plan ~b:bk_b ~z_cells:8 ~n_cells:bk_cells

(* The overflow event is coin-public; the sweep wants the success path,
   so pick the first master whose (pure) coin replay routes cleanly. *)
let bk_master =
  let rec find c =
    if c > 5000 then failwith "no clean master below 5000 (Z=8 routing broken?)"
    else if
      Odex_sortnet.Bucket_sort.simulate_overflow bk_plan ~master:c ~b:bk_b
        ~n_blocks:(bk_cells / bk_b)
    then find (c + 1)
    else c
  in
  lazy (find 0)

let bk_rank_keys =
  let ranks =
    let a = Array.init bk_cells (fun i -> i) in
    let rng = Odex_crypto.Rng.create ~seed:0xB5EED in
    for i = bk_cells - 1 downto 1 do
      let j = Odex_crypto.Rng.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  fun parity -> Array.map (fun r -> (2 * r) + parity) ranks

let bucket_sort_once s cells =
  let a = Ext_array.of_cells s ~block_size:bk_b cells in
  Odex_sortnet.Bucket_sort.sort ~plan:bk_plan ~master:(Lazy.force bk_master) ~real:true
    ~cmp:Cell.compare_keys ~m:bk_m a;
  a

let bucket_full_sort_ios keys =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let spec = Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false } in
  let s = Storage.create ~trace_mode:Trace.Digest ~backend:spec ~block_size:bk_b () in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let cells = Util.cells_of_keys keys in
      let a = Ext_array.of_cells s ~block_size:bk_b cells in
      let before = Stats.total (Storage.stats s) in
      Odex_sortnet.Bucket_sort.sort ~plan:bk_plan ~master:(Lazy.force bk_master) ~real:true
        ~cmp:Cell.compare_keys ~m:bk_m a;
      Stats.total (Storage.stats s) - before)

let bucket_sweep_point ~keys ~full_ios k =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let cipher = Odex_crypto.Cipher.key_of_int 99 in
  let payload_size = 8 + Block.encoded_size bk_b in
  let cells = Util.cells_of_keys keys in
  let nblocks = bk_cells / bk_b in
  let crash_spec =
    Storage.Journaled
      {
        inner = Storage.Crashing { inner = Storage.File { path = sp }; ops = k };
        path = jp;
        durable = false;
      }
  in
  let s = Storage.create ~cipher ~trace_mode:Trace.Digest ~backend:crash_spec ~block_size:bk_b () in
  let crashed, appends =
    match
      ignore (bucket_sort_once s cells);
      Storage.close s
    with
    | () -> (false, [])
    | exception Backend.Crashed ->
        let ap = Storage.journal_appends s in
        Storage.abandon s;
        (true, ap)
  in
  let scan_at_crash = scan_sealed sp ~payload_size in
  let resume_spec =
    Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false }
  in
  let s2 =
    Storage.create ~cipher ~resume:true ~trace_mode:Trace.Digest ~backend:resume_spec
      ~block_size:bk_b ()
  in
  let replays = Storage.journal_replay s2 in
  let owner = Printf.sprintf "bucket-sort/0/%d" nblocks in
  let resumed_phase, _ = Storage.checkpoint_state s2 ~owner in
  let a2 =
    if resumed_phase > 0 && Storage.capacity s2 >= nblocks then
      (* The scatter phase committed, so the input was fully consumed:
         re-attach and let the sort skip its finished phases. *)
      Ext_array.view s2 ~base:0 ~blocks:nblocks
    else if Storage.capacity s2 >= nblocks then begin
      let v = Ext_array.view s2 ~base:0 ~blocks:nblocks in
      for i = 0 to nblocks - 1 do
        let blk = Block.make bk_b in
        for j = 0 to bk_b - 1 do
          let idx = (i * bk_b) + j in
          if idx < Array.length cells then blk.(j) <- cells.(idx)
        done;
        Ext_array.write_block v i blk
      done;
      v
    end
    else Ext_array.of_cells s2 ~block_size:bk_b cells
  in
  let before = Stats.total (Storage.stats s2) in
  Odex_sortnet.Bucket_sort.sort ~plan:bk_plan ~master:(Lazy.force bk_master) ~real:true
    ~cmp:Cell.compare_keys ~m:bk_m a2;
  let resumed_ios = Stats.total (Storage.stats s2) - before in
  let got = List.map (fun (it : Cell.item) -> it.key) (Ext_array.items a2) in
  let expect = List.sort compare (Array.to_list keys) in
  if got <> expect then
    Alcotest.failf "bucket k=%d: resumed sort wrong — got [%s], want [%s]" k
      (String.concat ";" (List.map string_of_int got))
      (String.concat ";" (List.map string_of_int expect));
  if resumed_phase > 0 && resumed_ios >= full_ios then
    Alcotest.failf
      "bucket k=%d: resume from phase %d cost %d I/Os, full run costs %d — no progress kept" k
      resumed_phase resumed_ios full_ios;
  (* The completed run must always clear its slot. *)
  Alcotest.(check (pair int int))
    (Printf.sprintf "bucket k=%d: slot cleared" k)
    (0, 0)
    (Storage.checkpoint_state s2 ~owner);
  Storage.close s2;
  check_no_nonce_reuse
    (Printf.sprintf "bucket k=%d" k)
    (scan_at_crash @ scan_sealed sp ~payload_size);
  { crashed; appends; replays; resumed_phase; resumed_ios }

let test_bucket_kill_at_every_op_sweep () =
  let keys_a = bk_rank_keys 0 and keys_b = bk_rank_keys 1 in
  let full_a = bucket_full_sort_ios keys_a in
  let full_b = bucket_full_sort_ios keys_b in
  Alcotest.(check int) "isomorphic pair costs the same full sort" full_a full_b;
  let schedule = Alcotest.(list (pair int int)) in
  let saw_mid_sort_resume = ref false in
  let rec go k =
    if k > 4000 then Alcotest.fail "bucket sweep never reached a crash-free run";
    let oa = bucket_sweep_point ~keys:keys_a ~full_ios:full_a k in
    let ob = bucket_sweep_point ~keys:keys_b ~full_ios:full_b k in
    Alcotest.(check bool) (Printf.sprintf "bucket k=%d: same fate" k) oa.crashed ob.crashed;
    Alcotest.check schedule
      (Printf.sprintf "bucket k=%d: same append schedule" k)
      oa.appends ob.appends;
    Alcotest.check schedule
      (Printf.sprintf "bucket k=%d: same replay schedule" k)
      oa.replays ob.replays;
    Alcotest.(check int)
      (Printf.sprintf "bucket k=%d: same resumed phase" k)
      oa.resumed_phase ob.resumed_phase;
    Alcotest.(check int)
      (Printf.sprintf "bucket k=%d: same resumed I/O count" k)
      oa.resumed_ios ob.resumed_ios;
    if oa.resumed_phase > 0 then saw_mid_sort_resume := true;
    if oa.crashed then go (k + 1)
  in
  go 0;
  Alcotest.(check bool) "some crash points resumed mid-sort (not from scratch)" true
    !saw_mid_sort_resume

(* Journaling must stay invisible to the counted schedule for the new
   sorter too, including its checkpoint writes. *)
let test_bucket_trace_parity_journal_on_off () =
  with_temp_pair (fun sp jp ->
      let keys = bk_rank_keys 0 in
      let run backend =
        let s = Storage.create ~trace_mode:Trace.Digest ~backend ~block_size:bk_b () in
        Fun.protect
          ~finally:(fun () -> Storage.close s)
          (fun () ->
            let a = bucket_sort_once s (Util.cells_of_keys keys) in
            Util.check_sorted_by_key (Storage.backend_kind s) a;
            let st = Storage.stats s and tr = Storage.trace s in
            (Stats.reads st, Stats.writes st, Trace.length tr, Trace.digest tr))
      in
      let r0, w0, l0, d0 = run (Storage.File { path = sp }) in
      cleanup [ sp ];
      let r1, w1, l1, d1 =
        run (Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false })
      in
      Alcotest.(check int) "same reads" r0 r1;
      Alcotest.(check int) "same writes" w0 w1;
      Alcotest.(check int) "same trace length" l0 l1;
      Alcotest.(check int64) "same trace digest" d0 d1)

(* ---------------- sharded stripe: kill-at-every-op ---------------- *)

(* The journal composes OUTSIDE the stripe (Journaled-inside-Sharded is
   rejected), so its records carry logical addresses and replay pushes
   each one back through the PRP routing — every server receives its own
   slice of the recovery. The sweep kills a journaled K=2 stripe after
   every op and asserts the per-server view of recovery is a function of
   shape alone: same logical replay schedule, same per-server projection
   of it, and bit-identical per-server traces of the resumed completion. *)

let sh_shards = 2
let sh_seed = 0x5A4D

let sharded_spec ~crash_ops sp jp =
  let stripe =
    Storage.Sharded
      { inner = Storage.File { path = sp }; shards = sh_shards; seed = sh_seed }
  in
  let inner =
    match crash_ops with
    | None -> stripe
    | Some ops -> Storage.Crashing { inner = stripe; ops }
  in
  Storage.Journaled { inner; path = jp; durable = false }

let sharded_cleanup sp jp =
  Storage.remove_spec_files (sharded_spec ~crash_ops:None sp jp)

(* Project a logical replay schedule [(addr, count); ...] onto each
   server: the sequence of inner addresses it is asked to rewrite, in
   replay order. *)
let per_server_replays replays =
  let per = Array.make sh_shards [] in
  List.iter
    (fun (addr, count) ->
      for a = addr to addr + count - 1 do
        let s, inner = Backend.shard_route ~shards:sh_shards ~seed:sh_seed a in
        per.(s) <- inner :: per.(s)
      done)
    replays;
  Array.map List.rev per

let sharded_full_sort_ios keys =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> sharded_cleanup sp jp) @@ fun () ->
  let s =
    Storage.create ~trace_mode:Trace.Digest ~backend:(sharded_spec ~crash_ops:None sp jp)
      ~block_size:sweep_b ()
  in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let a = Ext_array.of_cells s ~block_size:sweep_b (Util.cells_of_keys keys) in
      let before = Stats.total (Storage.stats s) in
      Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:sweep_m a;
      Stats.total (Storage.stats s) - before)

type sharded_obs = {
  h_crashed : bool;
  h_appends : (int * int) list;
  h_server_replays : int list array;  (* per-server replay projections *)
  h_resumed_phase : int;
  h_server_traces : (int * int64) array;  (* per-server view of the completion *)
}

let sharded_sweep_point ~keys ~full_ios k =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> sharded_cleanup sp jp) @@ fun () ->
  let cells = Util.cells_of_keys keys in
  let nblocks = (Array.length keys + sweep_b - 1) / sweep_b in
  let s =
    Storage.create ~trace_mode:Trace.Digest
      ~backend:(sharded_spec ~crash_ops:(Some k) sp jp)
      ~block_size:sweep_b ()
  in
  let crashed, appends =
    match
      let a = Ext_array.of_cells s ~block_size:sweep_b cells in
      Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:sweep_m a;
      Storage.close s
    with
    | () -> (false, [])
    | exception Backend.Crashed ->
        let ap = Storage.journal_appends s in
        Storage.abandon s;
        (true, ap)
  in
  let s2 =
    Storage.create ~resume:true ~trace_mode:Trace.Digest
      ~backend:(sharded_spec ~crash_ops:None sp jp)
      ~block_size:sweep_b ()
  in
  Alcotest.(check (option int))
    (Printf.sprintf "k=%d: reopened as a %d-stripe" k sh_shards)
    (Some sh_shards) (Storage.shard_count s2);
  let replays = Storage.journal_replay s2 in
  let owner = Printf.sprintf "ext-sort/0/%d" nblocks in
  let resumed_phase, _ = Storage.checkpoint_state s2 ~owner in
  let a2 =
    if resumed_phase > 0 && Storage.capacity s2 >= nblocks then
      Ext_array.view s2 ~base:0 ~blocks:nblocks
    else if Storage.capacity s2 >= nblocks then begin
      let v = Ext_array.view s2 ~base:0 ~blocks:nblocks in
      for i = 0 to nblocks - 1 do
        let blk = Block.make sweep_b in
        for j = 0 to sweep_b - 1 do
          let idx = (i * sweep_b) + j in
          if idx < Array.length cells then blk.(j) <- cells.(idx)
        done;
        Ext_array.write_block v i blk
      done;
      v
    end
    else Ext_array.of_cells s2 ~block_size:sweep_b cells
  in
  let before = Stats.total (Storage.stats s2) in
  Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.bitonic_windowed ~m:sweep_m a2;
  let resumed_ios = Stats.total (Storage.stats s2) - before in
  let got = List.map (fun (it : Cell.item) -> it.key) (Ext_array.items a2) in
  let expect = List.sort compare (Array.to_list keys) in
  if got <> expect then Alcotest.failf "sharded k=%d: resumed sort wrong" k;
  if resumed_phase > 0 && resumed_ios >= full_ios then
    Alcotest.failf "sharded k=%d: resume from phase %d kept no progress" k resumed_phase;
  let server_traces =
    Array.map (fun tr -> (Trace.length tr, Trace.digest tr)) (Storage.shard_traces s2)
  in
  Storage.close s2;
  {
    h_crashed = crashed;
    h_appends = appends;
    h_server_replays = per_server_replays replays;
    h_resumed_phase = resumed_phase;
    h_server_traces = server_traces;
  }

let test_sharded_kill_at_every_op_sweep () =
  let full_a = sharded_full_sort_ios keys_a in
  let full_b = sharded_full_sort_ios keys_b in
  Alcotest.(check int) "pair inputs cost the same full sort" full_a full_b;
  let schedule = Alcotest.(list (pair int int)) in
  let saw_server_replay = ref false in
  let rec go k =
    if k > 3000 then Alcotest.fail "sharded sweep never reached a crash-free run";
    let oa = sharded_sweep_point ~keys:keys_a ~full_ios:full_a k in
    let ob = sharded_sweep_point ~keys:keys_b ~full_ios:full_b k in
    Alcotest.(check bool) (Printf.sprintf "sharded k=%d: same fate" k) oa.h_crashed
      ob.h_crashed;
    Alcotest.check schedule
      (Printf.sprintf "sharded k=%d: same append schedule" k)
      oa.h_appends ob.h_appends;
    (* The per-server recovery view: each server is asked to rewrite the
       same inner-address sequence regardless of the data... *)
    Array.iteri
      (fun srv ra ->
        Alcotest.(check (list int))
          (Printf.sprintf "sharded k=%d: server %d same replay schedule" k srv)
          ra
          ob.h_server_replays.(srv))
      oa.h_server_replays;
    if Array.for_all (fun l -> l <> []) oa.h_server_replays then
      saw_server_replay := true;
    Alcotest.(check int)
      (Printf.sprintf "sharded k=%d: same resumed phase" k)
      oa.h_resumed_phase ob.h_resumed_phase;
    (* ...and serves a bit-identical trace for the resumed completion. *)
    Alcotest.(check (array (pair int int64)))
      (Printf.sprintf "sharded k=%d: same per-server completion traces" k)
      oa.h_server_traces ob.h_server_traces;
    if oa.h_crashed then go (k + 1)
  in
  go 0;
  Alcotest.(check bool) "some crash points replayed onto both servers" true
    !saw_server_replay

(* ---------------- ORAM checkpoint smoke ---------------- *)

let test_oram_rebuild_checkpoints () =
  with_temp_pair (fun _sp jp ->
      let spec = Storage.Journaled { inner = Storage.Mem; path = jp; durable = false } in
      let s = Storage.create ~trace_mode:Trace.Digest ~backend:spec ~block_size:4 () in
      Fun.protect
        ~finally:(fun () -> Storage.close s)
        (fun () ->
          let rng = Odex_crypto.Rng.create ~seed:13 in
          let o = Odex_oram.Hierarchical_oram.init ~m:16 ~rng s ~values:(Array.init 64 Fun.id) in
          for i = 0 to 63 do
            Alcotest.(check int) (Printf.sprintf "read %d" i) i
              (Odex_oram.Hierarchical_oram.read o i)
          done;
          Alcotest.(check bool) "rebuilds happened" true
            (Odex_oram.Hierarchical_oram.rebuilds o > 0);
          (* Every completed rebuild must have cleared its slot. *)
          Alcotest.(check (pair int int))
            "no rebuild left in flight" (0, 0)
            (Storage.checkpoint_state s ~owner:"oram-rebuild")))

(* ---------------- full-session resume: ORAM + columnsort ---------------- *)

(* One session, three checkpointing algorithms on one journaled store: a
   columnsort, then a hierarchical ORAM whose rebuilds nest an ext-sort.
   Killed after every backend op and driven to completion through the
   genuine recovery protocol — Storage resume + Hierarchical_oram.resume
   + re-running the sort against its own slot — this is the sweep the
   multi-slot table exists for: with the old single slot, the ORAM
   rebuild's checkpoint and its inner sort's (and the columnsort's)
   clobbered each other at every nesting boundary. *)

let mx_b = 2
let mx_m = 8
let cs_cells = 16 (* columnsort plan at m = 8, b = 2: r = 8, s = 2 *)
let cs_blocks = cs_cells / mx_b
let oram_n = 8
let oram_z = 4 (* stash period 4: 8 reads drive two rebuilds (upto 0, 1) *)
let oram_reads = 8
let oram_seed = 77

let cs_rank_keys =
  let ranks =
    let a = Array.init cs_cells (fun i -> i) in
    let rng = Odex_crypto.Rng.create ~seed:0xC01C011 in
    for i = cs_cells - 1 downto 1 do
      let j = Odex_crypto.Rng.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  fun parity -> Array.map (fun r -> (2 * r) + parity) ranks

let oram_vals parity = Array.init oram_n (fun i -> 1000 + (2 * i) + parity)

type session_progress = { mutable cs_done : bool; mutable oram_started : bool }

(* Drive the whole session on [s]; raises [Backend.Crashed] at the kill
   point when [s] wraps a crashing inner. *)
let run_session s ~cs_keys ~vals ~progress =
  let a = Ext_array.of_cells s ~block_size:mx_b (Util.cells_of_keys cs_keys) in
  Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.columnsort ~m:mx_m a;
  progress.cs_done <- true;
  let rng = Odex_crypto.Rng.create ~seed:oram_seed in
  progress.oram_started <- true;
  let o =
    Odex_oram.Hierarchical_oram.init ~sorter:Odex_sortnet.Ext_sort.bitonic_windowed
      ~bucket_size:oram_z ~m:mx_m ~rng s ~values:vals
  in
  for i = 0 to oram_reads - 1 do
    let addr = i mod oram_n in
    let v = Odex_oram.Hierarchical_oram.read o addr in
    if v <> vals.(addr) then Alcotest.failf "session read %d: got %d, want %d" addr v vals.(addr)
  done

let session_full_ios ~cs_keys ~vals =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let spec = Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false } in
  let s = Storage.create ~trace_mode:Trace.Digest ~backend:spec ~block_size:mx_b () in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let before = Stats.total (Storage.stats s) in
      run_session s ~cs_keys ~vals ~progress:{ cs_done = false; oram_started = false };
      Stats.total (Storage.stats s) - before)

type session_obs = {
  s_crashed : bool;
  s_appends : (int * int) list;
  s_replays : (int * int) list;
  s_cs_phase : int;  (* columnsort slot found on reopen *)
  s_rebuild_phase : int;  (* oram-rebuild slot found on reopen *)
  s_session_live : bool;  (* oram-session slot found on reopen *)
  s_oram_boundary : int;  (* restored access counter, -1 = re-inited *)
  s_live_owners : int;  (* occupied table slots at the crash point *)
  s_resumed_ios : int;
}

let session_sweep_point ~cs_keys ~vals ~full_ios k =
  let sp, jp = temp_pair () in
  Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
  let payload_size = 8 + Block.encoded_size mx_b in
  let progress = { cs_done = false; oram_started = false } in
  let crash_spec =
    Storage.Journaled
      {
        inner = Storage.Crashing { inner = Storage.File { path = sp }; ops = k };
        path = jp;
        durable = false;
      }
  in
  let s = Storage.create ~trace_mode:Trace.Digest ~backend:crash_spec ~block_size:mx_b () in
  let crashed, appends =
    match
      run_session s ~cs_keys ~vals ~progress;
      Storage.close s
    with
    | () -> (false, [])
    | exception Backend.Crashed ->
        let ap = Storage.journal_appends s in
        Storage.abandon s;
        (true, ap)
  in
  let scan_at_crash = scan_sealed sp ~payload_size in
  let resume_spec =
    Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false }
  in
  let s2 =
    Storage.create ~resume:true ~trace_mode:Trace.Digest ~backend:resume_spec
      ~block_size:mx_b ()
  in
  Fun.protect ~finally:(fun () -> Storage.close s2) @@ fun () ->
  let replays = Storage.journal_replay s2 in
  let live_owners = List.length (Storage.checkpoint_slots s2) in
  let cs_owner = Printf.sprintf "columnsort/0/%d" cs_blocks in
  let cs_phase, _ = Storage.checkpoint_state s2 ~owner:cs_owner in
  let rebuild_phase, _ = Storage.checkpoint_state s2 ~owner:"oram-rebuild" in
  let session_phase, _ = Storage.checkpoint_state s2 ~owner:"oram-session" in
  let before = Stats.total (Storage.stats s2) in
  (* --- columnsort recovery --- *)
  let a2 =
    if progress.cs_done then
      (* Finished before the crash: its clear committed the output. *)
      Ext_array.view s2 ~base:0 ~blocks:cs_blocks
    else if Storage.capacity s2 >= cs_blocks then begin
      let v = Ext_array.view s2 ~base:0 ~blocks:cs_blocks in
      if cs_phase = 0 then begin
        (* No committed phase: the input may be partially loaded —
           reload it in place before restarting. *)
        let cells = Util.cells_of_keys cs_keys in
        for i = 0 to cs_blocks - 1 do
          let blk = Block.make mx_b in
          for j = 0 to mx_b - 1 do
            let idx = (i * mx_b) + j in
            if idx < Array.length cells then blk.(j) <- cells.(idx)
          done;
          Ext_array.write_block v i blk
        done
      end;
      Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.columnsort ~m:mx_m v;
      v
    end
    else begin
      let v = Ext_array.of_cells s2 ~block_size:mx_b (Util.cells_of_keys cs_keys) in
      Odex_sortnet.Ext_sort.run Odex_sortnet.Ext_sort.columnsort ~m:mx_m v;
      v
    end
  in
  (* --- ORAM recovery --- *)
  let o2, boundary =
    match
      Odex_oram.Hierarchical_oram.resume ~sorter:Odex_sortnet.Ext_sort.bitonic_windowed s2
    with
    | Some o -> (o, Odex_oram.Hierarchical_oram.accesses o)
    | None ->
        (* The session checkpoint never committed: start over. *)
        let rng = Odex_crypto.Rng.create ~seed:oram_seed in
        ( Odex_oram.Hierarchical_oram.init ~sorter:Odex_sortnet.Ext_sort.bitonic_windowed
            ~bucket_size:oram_z ~m:mx_m ~rng s2 ~values:vals,
          -1 )
  in
  if rebuild_phase > 0 then begin
    (* A rebuild was in flight: resume must have finished it — and
       cleared its slot — rather than restarting the ORAM. *)
    Alcotest.(check int)
      (Printf.sprintf "k=%d: in-flight rebuild finished, slot cleared" k)
      0
      (fst (Storage.checkpoint_state s2 ~owner:"oram-rebuild"));
    Alcotest.(check bool)
      (Printf.sprintf "k=%d: in-flight rebuild implies a live session" k)
      true (boundary >= 0)
  end;
  let start = max 0 boundary in
  for i = start to oram_reads - 1 do
    let addr = i mod oram_n in
    let v = Odex_oram.Hierarchical_oram.read o2 addr in
    if v <> vals.(addr) then
      Alcotest.failf "k=%d: resumed read %d: got %d, want %d" k addr v vals.(addr)
  done;
  let resumed_ios = Stats.total (Storage.stats s2) - before in
  (* --- verification --- *)
  let got = List.map (fun (it : Cell.item) -> it.key) (Ext_array.items a2) in
  let expect = List.sort compare (Array.to_list cs_keys) in
  if got <> expect then Alcotest.failf "k=%d: columnsort output wrong after recovery" k;
  for addr = 0 to oram_n - 1 do
    let v = Odex_oram.Hierarchical_oram.read o2 addr in
    if v <> vals.(addr) then
      Alcotest.failf "k=%d: post-recovery read %d: got %d, want %d" k addr v vals.(addr)
  done;
  (* Progress from any committed checkpoint must make the completion
     strictly cheaper than the full session. *)
  if (cs_phase > 0 || session_phase > 0) && resumed_ios >= full_ios then
    Alcotest.failf "k=%d: resumed completion cost %d I/Os, full session costs %d" k
      resumed_ios full_ios;
  check_no_nonce_reuse
    (Printf.sprintf "session k=%d" k)
    (scan_at_crash @ scan_sealed sp ~payload_size);
  {
    s_crashed = crashed;
    s_appends = appends;
    s_replays = replays;
    s_cs_phase = cs_phase;
    s_rebuild_phase = rebuild_phase;
    s_session_live = session_phase > 0;
    s_oram_boundary = boundary;
    s_live_owners = live_owners;
    s_resumed_ios = resumed_ios;
  }

let test_session_kill_at_every_op_sweep () =
  let keys_a = cs_rank_keys 0 and keys_b = cs_rank_keys 1 in
  let vals_a = oram_vals 0 and vals_b = oram_vals 1 in
  let full_a = session_full_ios ~cs_keys:keys_a ~vals:vals_a in
  let full_b = session_full_ios ~cs_keys:keys_b ~vals:vals_b in
  Alcotest.(check int) "pair sessions cost the same full run" full_a full_b;
  let schedule = Alcotest.(list (pair int int)) in
  let saw_rebuild_resume = ref false in
  let saw_coexisting_owners = ref 0 in
  let saw_mid_oram_boundary = ref false in
  let rec go k =
    if k > 20_000 then Alcotest.fail "session sweep never reached a crash-free run";
    let oa = session_sweep_point ~cs_keys:keys_a ~vals:vals_a ~full_ios:full_a k in
    let ob = session_sweep_point ~cs_keys:keys_b ~vals:vals_b ~full_ios:full_b k in
    (* Recovery obliviousness across the whole session: every observable
       of the crash-and-recover cycle is a function of shape alone. *)
    Alcotest.(check bool) (Printf.sprintf "k=%d: same fate" k) oa.s_crashed ob.s_crashed;
    Alcotest.check schedule (Printf.sprintf "k=%d: same append schedule" k) oa.s_appends
      ob.s_appends;
    Alcotest.check schedule (Printf.sprintf "k=%d: same replay schedule" k) oa.s_replays
      ob.s_replays;
    Alcotest.(check int)
      (Printf.sprintf "k=%d: same columnsort phase" k)
      oa.s_cs_phase ob.s_cs_phase;
    Alcotest.(check int)
      (Printf.sprintf "k=%d: same rebuild phase" k)
      oa.s_rebuild_phase ob.s_rebuild_phase;
    Alcotest.(check bool)
      (Printf.sprintf "k=%d: same session liveness" k)
      oa.s_session_live ob.s_session_live;
    Alcotest.(check int)
      (Printf.sprintf "k=%d: same ORAM boundary" k)
      oa.s_oram_boundary ob.s_oram_boundary;
    Alcotest.(check int)
      (Printf.sprintf "k=%d: same live owner count" k)
      oa.s_live_owners ob.s_live_owners;
    Alcotest.(check int)
      (Printf.sprintf "k=%d: same resumed I/O count" k)
      oa.s_resumed_ios ob.s_resumed_ios;
    if oa.s_rebuild_phase > 0 then saw_rebuild_resume := true;
    if oa.s_oram_boundary > 0 then saw_mid_oram_boundary := true;
    saw_coexisting_owners := max !saw_coexisting_owners oa.s_live_owners;
    if oa.s_crashed then go (k + 1)
  in
  go 0;
  Alcotest.(check bool) "some crash points caught a rebuild in flight" true
    !saw_rebuild_resume;
  Alcotest.(check bool) "some crash points resumed the ORAM mid-session" true
    !saw_mid_oram_boundary;
  Alcotest.(check bool)
    (Printf.sprintf "checkpoint table held coexisting owners (max seen %d)"
       !saw_coexisting_owners)
    true
    (!saw_coexisting_owners >= 2)

(* Cheap deterministic cousin of the sweep: crash at a handful of fixed
   points and make sure Hierarchical_oram.resume restores the exact
   session (counters, values) without restarting. *)
let test_oram_session_resume_points () =
  List.iter
    (fun k ->
      let sp, jp = temp_pair () in
      Fun.protect ~finally:(fun () -> cleanup [ sp; jp ]) @@ fun () ->
      let vals = oram_vals 0 in
      let crash_spec =
        Storage.Journaled
          {
            inner = Storage.Crashing { inner = Storage.File { path = sp }; ops = k };
            path = jp;
            durable = false;
          }
      in
      let s = Storage.create ~backend:crash_spec ~block_size:mx_b () in
      (match
         let rng = Odex_crypto.Rng.create ~seed:oram_seed in
         let o =
           Odex_oram.Hierarchical_oram.init ~sorter:Odex_sortnet.Ext_sort.bitonic_windowed
             ~bucket_size:oram_z ~m:mx_m ~rng s ~values:vals
         in
         for i = 0 to oram_reads - 1 do
           ignore (Odex_oram.Hierarchical_oram.read o (i mod oram_n))
         done;
         Storage.close s
       with
      | () -> ()
      | exception Backend.Crashed -> Storage.abandon s);
      let resume_spec =
        Storage.Journaled { inner = Storage.File { path = sp }; path = jp; durable = false }
      in
      let s2 = Storage.create ~resume:true ~backend:resume_spec ~block_size:mx_b () in
      Fun.protect ~finally:(fun () -> Storage.close s2) @@ fun () ->
      match
        Odex_oram.Hierarchical_oram.resume ~sorter:Odex_sortnet.Ext_sort.bitonic_windowed s2
      with
      | None -> () (* init never committed at this k *)
      | Some o2 ->
          Alcotest.(check bool)
            (Printf.sprintf "k=%d: boundary counter is a rebuild boundary" k)
            true
            (Odex_oram.Hierarchical_oram.accesses o2 mod oram_z = 0);
          for addr = 0 to oram_n - 1 do
            Alcotest.(check int)
              (Printf.sprintf "k=%d: resumed value %d" k addr)
              vals.(addr)
              (Odex_oram.Hierarchical_oram.read o2 addr)
          done)
    [ 5; 40; 120; 300; 700; 1500 ]

let suite =
  [
    ("append/commit bookkeeping", `Quick, test_append_commit_bookkeeping);
    ("auto-commit bounds the tail", `Quick, test_auto_commit_bounds_tail);
    ("replay heals a crashed apply", `Quick, test_replay_heals_crashed_apply);
    ("torn tail and corrupt record discarded", `Quick, test_torn_tail_discarded);
    ("checkpoint slot persistence", `Quick, test_checkpoint_slot_persistence);
    ("checkpoint validation", `Quick, test_checkpoint_validation);
    ("multi-owner checkpoints never clobber", `Quick, test_multi_owner_no_clobber);
    checkpoint_no_alias_prop;
    ("v2 journal migrates", `Quick, test_v2_journal_migrates);
    ("foreign journal rejected", `Quick, test_foreign_journal_rejected);
    ("trace parity with journaling on and off", `Quick, test_trace_parity_journal_on_off);
    ("kill-at-every-op sweep", `Slow, test_kill_at_every_op_sweep);
    ("bucket sort kill-at-every-op sweep", `Slow, test_bucket_kill_at_every_op_sweep);
    ("bucket sort journal on/off trace parity", `Quick,
      test_bucket_trace_parity_journal_on_off);
    ("sharded stripe kill-at-every-op sweep", `Slow, test_sharded_kill_at_every_op_sweep);
    ("ORAM rebuild checkpoints clear", `Quick, test_oram_rebuild_checkpoints);
    ("ORAM session resume points", `Quick, test_oram_session_resume_points);
    ("session kill-at-every-op sweep", `Slow, test_session_kill_at_every_op_sweep);
  ]
