(* Shared helpers for the test suites. *)

open Odex_extmem

let storage ?cipher ?(trace = Trace.Digest) ~b () =
  Storage.create ?cipher ~trace_mode:trace ~block_size:b ()

let cells_of_keys keys =
  Array.mapi (fun i k -> Cell.item ~tag:i ~key:k ~value:(k * 10) ()) keys

let random_keys rng n ~bound = Array.init n (fun _ -> Odex_crypto.Rng.int rng bound)

let keys_of_items items = List.map (fun (it : Cell.item) -> it.key) items

let is_sorted_list keys = List.sort compare keys = keys

let sorted_multiset_equal a b = List.sort compare a = List.sort compare b

(* Run [f] on a fresh storage seeded with [cells]; return (result, array). *)
let with_array ?cipher ?trace ~b cells f =
  let s = storage ?cipher ?trace ~b () in
  let a = Ext_array.of_cells s ~block_size:b cells in
  let r = f s a in
  (r, a)

let check_sorted_by_key msg a =
  let keys = keys_of_items (Ext_array.items a) in
  Alcotest.(check bool) (msg ^ ": keys sorted") true (is_sorted_list keys)

let check_multiset msg expected_keys a =
  let keys = keys_of_items (Ext_array.items a) in
  Alcotest.(check bool)
    (msg ^ ": multiset preserved")
    true
    (sorted_multiset_equal keys (Array.to_list expected_keys))

(* Trace digest of running [f] on data [cells] with a fixed-seed rng. *)
let trace_digest ~b ~seed cells f =
  let s = storage ~trace:Trace.Digest ~b () in
  let a = Ext_array.of_cells s ~block_size:b cells in
  let rng = Odex_crypto.Rng.create ~seed in
  f rng s a;
  (Trace.digest (Storage.trace s), Trace.length (Storage.trace s))

(* One suite-wide base seed. Every pseudo-random choice in the test
   suites — qcheck generator streams, per-case rngs, Monte-Carlo trial
   seeds — derives from it deterministically, so `dune runtest` is
   bit-reproducible run to run and machine to machine. *)
let base_seed = 0x0DE_5EED

(* The i-th seed of a named deterministic stream: distinct names give
   unrelated-looking streams (splitmix-style mixing), the same
   (name, i) always gives the same seed. Use this instead of ad-hoc
   seed arithmetic when a test needs many independent seeds. *)
let seed_stream name i =
  let h = ref (base_seed lxor (i * 0x9E3779B9)) in
  String.iter (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land 0x3FFFFFFF) name;
  let z = !h + 0x6D2B79F5 in
  let z = (z lxor (z lsr 15)) * 0x2C1B3C6D land 0x3FFFFFFFFFFF in
  let z = (z lxor (z lsr 12)) * 0x297A2D39 land 0x3FFFFFFFFFFF in
  z lxor (z lsr 15)

let rng_of name i = Odex_crypto.Rng.create ~seed:(seed_stream name i)

(* qcheck cases run under a pinned generator stream: the random state is
   derived from [base_seed] and the case name, never from the clock, so
   every run draws the same inputs (QCheck's default state is seeded
   from self_init unless QCHECK_SEED is set). *)
let qcheck_case ?(count = 100) ~name gen prop =
  let rand = Random.State.make [| base_seed; seed_stream name 0 |] in
  QCheck_alcotest.to_alcotest ~rand (QCheck2.Test.make ~count ~name gen prop)
