open Odex_extmem
open Odex_sortnet

let test_network_validation () =
  Alcotest.(check bool) "descending comparator rejected" true
    (try
       ignore (Network.create ~width:4 [ [ (2, 1) ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "overlap rejected" true
    (try
       ignore (Network.create ~width:4 [ [ (0, 1); (1, 2) ] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range rejected" true
    (try
       ignore (Network.create ~width:4 [ [ (0, 4) ] ]);
       false
     with Invalid_argument _ -> true)

let test_network_apply () =
  let net = Network.create ~width:2 [ [ (0, 1) ] ] in
  let a = [| 9; 3 |] in
  Network.apply net compare a;
  Alcotest.(check (list int)) "swapped" [ 3; 9 ] (Array.to_list a)

let test_odd_even_sorts_zero_one () =
  for n = 0 to 13 do
    let net = Batcher.odd_even_merge_sort n in
    Alcotest.(check int) "width" n (Network.width net);
    if not (Network.sorts_all_zero_one net) then
      Alcotest.failf "odd-even merge sort fails 0-1 check at n=%d" n
  done

let test_bitonic_sorts_zero_one () =
  List.iter
    (fun n ->
      let net = Batcher.bitonic n in
      if not (Network.sorts_all_zero_one net) then
        Alcotest.failf "bitonic fails 0-1 check at n=%d" n)
    [ 1; 2; 4; 8; 16 ]

let test_oems_known_size () =
  (* Batcher's odd-even merge sort on 8 inputs has exactly 19 comparators
     and depth 6 (Knuth, Fig. 5.3.4-49). *)
  let net = Batcher.odd_even_merge_sort 8 in
  Alcotest.(check int) "size" 19 (Network.size net);
  Alcotest.(check int) "depth" 6 (Network.depth net)

let test_network_sorts_random_ints () =
  let rng = Odex_crypto.Rng.create ~seed:1 in
  List.iter
    (fun n ->
      let net = Batcher.odd_even_merge_sort n in
      for _ = 1 to 20 do
        let a = Array.init n (fun _ -> Odex_crypto.Rng.int rng 50) in
        let expected = Array.copy a in
        Array.sort compare expected;
        Network.apply net compare a;
        Alcotest.(check (list int)) "sorted" (Array.to_list expected) (Array.to_list a)
      done)
    [ 5; 9; 17; 33 ]

let test_merge_split () =
  let mk keys = Array.map (fun k -> if k < 0 then Cell.empty else Cell.item ~key:k ~value:k ()) keys in
  let u = mk [| 1; 5; 9 |] and v = mk [| 2; 3; -1 |] in
  Ext_sort.merge_split ~cmp:Cell.compare_keys ~ascending:true u v;
  Alcotest.(check (list int)) "low half" [ 1; 2; 3 ]
    (List.map (fun (it : Cell.item) -> it.key) (Block.items u));
  Alcotest.(check (list int)) "high half" [ 5; 9 ]
    (List.map (fun (it : Cell.item) -> it.key) (Block.items v));
  let u = mk [| 1; 5; 9 |] and v = mk [| 2; 3; -1 |] in
  Ext_sort.merge_split ~cmp:Cell.compare_keys ~ascending:false u v;
  Alcotest.(check (list int)) "descending: high half first" [ 5; 9 ]
    (List.map (fun (it : Cell.item) -> it.key) (Block.items u))

let run_sort_case sorter ~b ~m keys =
  let cells = Util.cells_of_keys keys in
  let (), a =
    Util.with_array ~b cells (fun _s a ->
        Ext_sort.run sorter ~m a)
  in
  Util.check_sorted_by_key (Ext_sort.name sorter) a;
  Util.check_multiset (Ext_sort.name sorter) keys a

let test_sorters_correct () =
  let rng = Odex_crypto.Rng.create ~seed:5 in
  List.iter
    (fun sorter ->
      (* duplicates, negatives, various shapes *)
      run_sort_case sorter ~b:4 ~m:4 [| 5; 5; 5; 5 |];
      run_sort_case sorter ~b:4 ~m:4 [| 9; 8; 7; 6; 5; 4; 3; 2; 1 |];
      run_sort_case sorter ~b:3 ~m:4 (Util.random_keys rng 50 ~bound:20);
      run_sort_case sorter ~b:1 ~m:4 (Util.random_keys rng 17 ~bound:1000);
      run_sort_case sorter ~b:8 ~m:4 [||])
    [ Ext_sort.bitonic; Ext_sort.bitonic_windowed; Ext_sort.auto ]

let test_cache_sort_correct () =
  let rng = Odex_crypto.Rng.create ~seed:6 in
  run_sort_case Ext_sort.cache_sort ~b:4 ~m:32 (Util.random_keys rng 100 ~bound:30);
  run_sort_case Ext_sort.cache_sort ~b:4 ~m:1 [| 3; 1; 2 |]

let test_cache_sort_overflow () =
  let cells = Util.cells_of_keys [| 4; 3; 2; 1 |] in
  Alcotest.(check bool) "overflow raised" true
    (try
       ignore
         (Util.with_array ~b:1 cells (fun _s a -> Ext_sort.run Ext_sort.cache_sort ~m:2 a));
       false
     with Cache.Overflow _ -> true)

let test_sort_preserves_payload () =
  let keys = [| 4; 2; 7; 2; 0; 9; 4 |] in
  let cells = Util.cells_of_keys keys in
  let (), a = Util.with_array ~b:2 cells (fun _s a -> Ext_sort.run Ext_sort.bitonic ~m:2 a) in
  List.iter
    (fun (it : Cell.item) ->
      Alcotest.(check int) "value rides along" (it.key * 10) it.value)
    (Ext_array.items a)

let test_sort_custom_cmp () =
  (* Sort by tag: used by the order-restoring step of compaction. *)
  let cells =
    Array.init 10 (fun i -> Cell.item ~tag:(9 - i) ~key:i ~value:0 ())
  in
  let (), a =
    Util.with_array ~b:2 cells (fun _s a ->
        Ext_sort.run Ext_sort.bitonic_windowed ~cmp:Cell.compare_by_tag ~m:4 a)
  in
  let tags = List.map (fun (it : Cell.item) -> it.tag) (Ext_array.items a) in
  Alcotest.(check (list int)) "tags ascending" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] tags

let test_sort_empties_interleaved () =
  (* Empty cells scattered through the input must all sort to the end. *)
  let cells =
    [|
      Cell.item ~key:3 ~value:0 (); Cell.empty; Cell.item ~key:1 ~value:0 ();
      Cell.empty; Cell.item ~key:2 ~value:0 (); Cell.empty;
    |]
  in
  let (), a = Util.with_array ~b:2 cells (fun _s a -> Ext_sort.run Ext_sort.bitonic ~m:2 a) in
  let out = Ext_array.to_cells a in
  Alcotest.(check (list int)) "items first, sorted" [ 1; 2; 3 ]
    (Util.keys_of_items (Ext_array.items a));
  Alcotest.(check bool) "tail all empty" true
    (Array.for_all Cell.is_empty (Array.sub out 3 3))

let sorter_trace sorter ~b ~m keys =
  Util.trace_digest ~b ~seed:0 (Util.cells_of_keys keys) (fun _rng _s a ->
      Ext_sort.run sorter ~m a)

let test_sorters_oblivious () =
  (* Same shape (N, B, m), wildly different data: identical traces. *)
  (* m = 16 so that cache_sort also fits every shape. *)
  let shapes = [ (31, 4, 16); (64, 8, 16); (10, 1, 16) ] in
  List.iter
    (fun sorter ->
      List.iter
        (fun (n, b, m) ->
          let t1 = sorter_trace sorter ~b ~m (Array.init n (fun i -> i)) in
          let t2 = sorter_trace sorter ~b ~m (Array.init n (fun i -> n - i)) in
          let t3 = sorter_trace sorter ~b ~m (Array.make n 7) in
          if not (t1 = t2 && t2 = t3) then
            Alcotest.failf "%s trace depends on data at n=%d" (Ext_sort.name sorter) n)
        shapes)
    Ext_sort.all

let test_windowed_fewer_ios () =
  let keys = Array.init 512 (fun i -> 1000 - i) in
  let io_of sorter =
    let cells = Util.cells_of_keys keys in
    let s = Util.storage ~b:4 () in
    let a = Ext_array.of_cells s ~block_size:4 cells in
    Ext_sort.run sorter ~m:16 a;
    Stats.total (Storage.stats s)
  in
  let naive = io_of Ext_sort.bitonic in
  let windowed = io_of Ext_sort.bitonic_windowed in
  if windowed * 2 > naive then
    Alcotest.failf "windowed (%d IOs) should be well under naive (%d IOs)" windowed naive

(* ---------------- columnsort ---------------- *)

let test_columnsort_plan () =
  (match Columnsort.plan ~n_cells:8192 ~b:8 ~m:256 with
  | Some (r, s) ->
      Alcotest.(check bool) "r multiple of b*s" true (r mod (8 * s) = 0);
      Alcotest.(check bool) "Leighton condition" true (r >= 2 * (s - 1) * (s - 1));
      Alcotest.(check bool) "covers n" true (r * s >= 8192)
  | None -> Alcotest.fail "plan should exist");
  Alcotest.(check bool) "oversized input refused" true
    (Columnsort.plan ~n_cells:10_000_000 ~b:8 ~m:64 = None)

let test_columnsort_correct () =
  let rng = Odex_crypto.Rng.create ~seed:21 in
  List.iter
    (fun (n, b, m) ->
      run_sort_case Ext_sort.columnsort ~b ~m (Util.random_keys rng n ~bound:(4 * n)))
    [ (50, 3, 16); (500, 4, 32); (3000, 8, 64); (200, 4, 32) ];
  run_sort_case Ext_sort.columnsort ~b:4 ~m:16 [| 5; 5; 5; 5; 5; 5; 5; 5; 5 |];
  run_sort_case Ext_sort.columnsort ~b:4 ~m:16 (Array.init 100 (fun i -> 100 - i))

let test_columnsort_oblivious () =
  let n = 400 in
  let t keys = sorter_trace Ext_sort.columnsort ~b:4 ~m:32 keys in
  let t1 = t (Array.init n (fun i -> i)) in
  let t2 = t (Array.init n (fun i -> n - i)) in
  let t3 = t (Array.make n 7) in
  Alcotest.(check bool) "columnsort trace is data-independent" true (t1 = t2 && t2 = t3)

let test_columnsort_dummy_pass () =
  let keys = Array.init 300 (fun i -> 300 - i) in
  let cells = Util.cells_of_keys keys in
  let s = Util.storage ~b:4 () in
  let a = Odex_extmem.Ext_array.of_cells s ~block_size:4 cells in
  Ext_sort.run_selective Ext_sort.columnsort ~real:false ~m:32 a;
  (* Data untouched... *)
  Alcotest.(check (list int)) "dummy pass preserves data" (Array.to_list keys)
    (Util.keys_of_items (Odex_extmem.Ext_array.items a));
  (* ...and the trace equals the real pass's. *)
  let digest real =
    let s = Util.storage ~b:4 () in
    let a = Odex_extmem.Ext_array.of_cells s ~block_size:4 (Util.cells_of_keys keys) in
    Ext_sort.run_selective Ext_sort.columnsort ~real ~m:32 a;
    ( Odex_extmem.Trace.digest (Odex_extmem.Storage.trace s),
      Odex_extmem.Trace.length (Odex_extmem.Storage.trace s) )
  in
  Alcotest.(check bool) "dummy trace = real trace" true (digest true = digest false)

let test_columnsort_linear_ios () =
  (* Columnsort is O(n) passes: I/Os per block must stay ~flat. *)
  let per_block n =
    let keys = Array.init n (fun i -> (i * 7919) mod n) in
    let cells = Util.cells_of_keys keys in
    let s = Util.storage ~b:8 () in
    let a = Odex_extmem.Ext_array.of_cells s ~block_size:8 cells in
    Ext_sort.run Ext_sort.columnsort ~m:256 a;
    Float.of_int (Odex_extmem.Stats.total (Odex_extmem.Storage.stats s))
    /. Float.of_int (n / 8)
  in
  let small = per_block 4096 and big = per_block 32768 in
  if big > small *. 1.6 then
    Alcotest.failf "columnsort not linear: %.1f -> %.1f I/Os per block" small big

let test_columnsort_capacity_raises () =
  let cells = Util.cells_of_keys (Array.init 4000 (fun i -> i)) in
  let s = Util.storage ~b:2 () in
  let a = Odex_extmem.Ext_array.of_cells s ~block_size:2 cells in
  Alcotest.(check bool) "beyond capacity raises" true
    (try
       Ext_sort.run Ext_sort.columnsort ~m:8 a;
       false
     with Invalid_argument _ -> true)

let prop_columnsort_sorts =
  Util.qcheck_case ~name:"columnsort sorts arbitrary keys" ~count:40
    QCheck2.Gen.(pair (list_size (int_range 0 600) (int_range (-100) 100)) (int_range 4 8))
    (fun (keys, b) ->
      let keys = Array.of_list keys in
      let cells = Util.cells_of_keys keys in
      let (), a =
        Util.with_array ~b cells (fun _s a -> Ext_sort.run Ext_sort.columnsort ~m:64 a)
      in
      let got = Util.keys_of_items (Odex_extmem.Ext_array.items a) in
      got = List.sort compare (Array.to_list keys))

let prop_bitonic_sorts =
  Util.qcheck_case ~name:"bitonic-windowed sorts arbitrary keys" ~count:60
    QCheck2.Gen.(pair (list_size (int_range 0 120) (int_range (-50) 50)) (int_range 1 4))
    (fun (keys, b) ->
      let keys = Array.of_list keys in
      let cells = Util.cells_of_keys keys in
      let (), a =
        Util.with_array ~b cells (fun _s a -> Ext_sort.run Ext_sort.bitonic_windowed ~m:4 a)
      in
      let got = Util.keys_of_items (Ext_array.items a) in
      got = List.sort compare (Array.to_list keys))

(* ---------------- bucket oblivious sort / oblivious permutation ------- *)

let test_bucket_plan () =
  let plan = Bucket_sort.make_plan ~b:4 ~z_cells:210 ~n_cells:2048 in
  Alcotest.(check bool) "zb even" true (plan.Bucket_sort.zb mod 2 = 0);
  Alcotest.(check bool) "zb >= 4" true (plan.Bucket_sort.zb >= 4);
  Alcotest.(check int) "z = zb*b" (plan.Bucket_sort.zb * 4) plan.Bucket_sort.z;
  Alcotest.(check bool) "beta power of two" true
    (plan.Bucket_sort.beta land (plan.Bucket_sort.beta - 1) = 0);
  Alcotest.(check int) "levels = log2 beta" plan.Bucket_sort.beta
    (1 lsl plan.Bucket_sort.levels);
  Alcotest.(check bool) "half-fill covers n" true
    (plan.Bucket_sort.beta * plan.Bucket_sort.half >= 2048);
  Alcotest.(check bool) "registry shape feasible" true (Bucket_sort.feasible ~m:256 plan);
  (* The sorter's plan_for refuses rather than shrinking Z (a shrunk Z
     turns the 2^-Omega(Z) failure bound into a DoS); the permutation's
     auto_plan shrinks, down to its m >= 18 floor. *)
  Alcotest.(check bool) "plan_for refuses tiny m" true
    (Bucket_sort.plan_for ~b:4 ~m:32 ~n_cells:2048 = None);
  Alcotest.(check bool) "auto_plan shrinks for tiny m" true
    (Bucket_sort.auto_plan ~b:4 ~m:32 ~n_cells:2048 <> None);
  Alcotest.(check bool) "auto_plan refuses m < 18" true
    (Bucket_sort.auto_plan ~b:4 ~m:17 ~n_cells:2048 = None);
  Alcotest.(check bool) "overflow bound tiny at default Z" true
    (Bucket_sort.overflow_bound (Bucket_sort.make_plan ~b:4
       ~z_cells:(Bucket_sort.default_z_cells ~n_cells:2048) ~n_cells:2048) < 1e-9)

let test_bucket_sort_correct () =
  let rng = Odex_crypto.Rng.create ~seed:31 in
  (* Pipeline scale: 512 blocks of 4 cells against m = 256 — the
     butterfly, run formation, and merge passes all engage. 1900 is the
     deliberately non-power-of-two shape. *)
  run_sort_case (Ext_sort.bucket ()) ~b:4 ~m:256 (Util.random_keys rng 2048 ~bound:4096);
  run_sort_case (Ext_sort.bucket ()) ~b:4 ~m:256 (Util.random_keys rng 1900 ~bound:50);
  run_sort_case (Ext_sort.bucket ()) ~b:4 ~m:256 (Array.init 2048 (fun i -> 2048 - i));
  run_sort_case (Ext_sort.bucket ()) ~b:4 ~m:256 (Array.make 1500 7);
  (* In-cache inputs dispatch to the cache sorter (public condition). *)
  run_sort_case (Ext_sort.bucket ()) ~b:4 ~m:64 (Util.random_keys rng 100 ~bound:50)

let test_bucket_custom_cmp () =
  let cells = Array.init 2048 (fun i -> Cell.item ~tag:(2047 - i) ~key:i ~value:0 ()) in
  let (), a =
    Util.with_array ~b:4 cells (fun _s a ->
        Ext_sort.run (Ext_sort.bucket ()) ~cmp:Cell.compare_by_tag ~m:256 a)
  in
  let tags = List.map (fun (it : Cell.item) -> it.tag) (Ext_array.items a) in
  Alcotest.(check bool) "tags ascending" true (Util.is_sorted_list tags)

let test_bucket_sort_oblivious_isomorphic () =
  (* The bucket sorter's merge reads are rank-driven, so its certificate
     is trace equality across rank-isomorphic inputs (same relative
     order, disjoint values) — the registry pairs it with the
     `Isomorphic cert for the same reason. *)
  let n = 2048 in
  let t keys = sorter_trace (Ext_sort.bucket ()) ~b:4 ~m:256 keys in
  let t1 = t (Array.init n (fun i -> 2 * i)) in
  let t2 = t (Array.init n (fun i -> (4 * i) + 1)) in
  Alcotest.(check bool) "isomorphic inputs, identical traces" true (t1 = t2)

let test_bucket_dummy_pass () =
  let keys = Array.init 2048 (fun i -> (i * 7919) mod 2048) in
  let digest real =
    let s = Util.storage ~b:4 () in
    let a = Ext_array.of_cells s ~block_size:4 (Util.cells_of_keys keys) in
    Ext_sort.run_selective (Ext_sort.bucket ()) ~real ~m:256 a;
    let d = (Trace.digest (Storage.trace s), Trace.length (Storage.trace s)) in
    (d, Util.keys_of_items (Ext_array.items a))
  in
  let d_real, keys_real = digest true in
  let d_dummy, keys_dummy = digest false in
  Alcotest.(check bool) "dummy trace = real trace" true (d_real = d_dummy);
  Alcotest.(check (list int)) "dummy pass preserves data" (Array.to_list keys) keys_dummy;
  Alcotest.(check bool) "real pass sorted" true (Util.is_sorted_list keys_real)

let test_bucket_overflow_raises () =
  (* Undersized Z: at z_cells = 8 the Chernoff exponent is gone and the
     routing all but surely overflows. The sort must complete its full
     I/O schedule, raise, and leave the input untouched. *)
  let plan = Bucket_sort.make_plan ~b:2 ~z_cells:8 ~n_cells:160 in
  let master =
    let rec find c =
      if c > 500 then Alcotest.fail "no overflowing master found (Z=8!?)"
      else if Bucket_sort.simulate_overflow plan ~master:c ~b:2 ~n_blocks:80 then c
      else find (c + 1)
    in
    find 0
  in
  let keys = Array.init 160 (fun i -> 160 - i) in
  let cells = Util.cells_of_keys keys in
  let (), a =
    Util.with_array ~b:2 cells (fun _s a ->
        Alcotest.(check bool) "Overflow raised" true
          (try
             Bucket_sort.sort ~plan ~master ~real:true ~cmp:Cell.compare_keys ~m:64 a;
             false
           with Bucket_sort.Overflow _ -> true))
  in
  Alcotest.(check (list int)) "input untouched after overflow" (Array.to_list keys)
    (Util.keys_of_items (Ext_array.items a))

let test_bucket_simulate_matches_run () =
  (* simulate_overflow replays exactly the coins the pipeline draws:
     its verdict and the real run's outcome must agree, master by
     master. Z = 12 sits on the fence, so both outcomes appear. *)
  let plan = Bucket_sort.make_plan ~b:2 ~z_cells:12 ~n_cells:120 in
  let seen_ok = ref false and seen_ov = ref false in
  for master = 0 to 19 do
    let predicted = Bucket_sort.simulate_overflow plan ~master ~b:2 ~n_blocks:60 in
    let keys = Array.init 120 (fun i -> (i * 31) mod 120) in
    let (), a =
      Util.with_array ~b:2 (Util.cells_of_keys keys) (fun _s a ->
          let raised =
            try
              Bucket_sort.sort ~plan ~master ~real:true ~cmp:Cell.compare_keys ~m:64 a;
              false
            with Bucket_sort.Overflow _ -> true
          in
          Alcotest.(check bool)
            (Printf.sprintf "master %d: simulation predicts the run" master)
            predicted raised)
    in
    if predicted then seen_ov := true
    else begin
      seen_ok := false;
      Util.check_sorted_by_key "fence sort" a;
      seen_ok := true
    end
  done;
  Alcotest.(check bool) "fence exercises both outcomes" true (!seen_ok && !seen_ov)

let test_permute_correct () =
  let rng = Odex_crypto.Rng.create ~seed:41 in
  let keys = Util.random_keys rng 512 ~bound:100_000 in
  let outcome = ref { Bucket_sort.ok = false } in
  let (), a =
    Util.with_array ~b:4 (Util.cells_of_keys keys) (fun _s a ->
        let rng = Odex_crypto.Rng.create ~seed:42 in
        outcome := Oblivious_permutation.run ~rng ~m:66 a)
  in
  Alcotest.(check bool) "no overflow at Z=64" true !outcome.Bucket_sort.ok;
  Util.check_multiset "permute" keys a;
  (* A uniformly random arrangement of 512 cells is a fixed point with
     probability 1/512! — inequality here is deterministic (fixed seed). *)
  Alcotest.(check bool) "actually displaced" true
    (Util.keys_of_items (Ext_array.items a) <> Array.to_list keys)

let test_permute_fixed_trace () =
  (* The permutation never consumes ranks: its trace is exact — a
     function of (shape, coins) alone, whatever the data. *)
  let t keys =
    Util.trace_digest ~b:4 ~seed:7 (Util.cells_of_keys keys) (fun rng _s a ->
        ignore (Oblivious_permutation.run ~rng ~m:66 a))
  in
  let n = 512 in
  let t1 = t (Array.init n (fun i -> i)) in
  let t2 = t (Array.init n (fun i -> n - i)) in
  let t3 = t (Array.make n 7) in
  Alcotest.(check bool) "permutation trace is data-independent" true (t1 = t2 && t2 = t3)

let test_permute_blocks_correct () =
  let rng = Odex_crypto.Rng.create ~seed:43 in
  let keys = Util.random_keys rng 512 ~bound:100_000 in
  let (), a =
    Util.with_array ~b:4 (Util.cells_of_keys keys) (fun _s a ->
        let rng = Odex_crypto.Rng.create ~seed:44 in
        Alcotest.(check bool) "block permute ok" true
          (Oblivious_permutation.run_blocks ~rng ~m:66 a).Bucket_sort.ok)
  in
  Util.check_multiset "permute blocks" keys a;
  (* Block granularity: each original block's cells must still be
     contiguous (blocks travel unopened). *)
  let original = Array.init 128 (fun i -> Array.to_list (Array.sub keys (i * 4) 4)) in
  for i = 0 to 127 do
    let blk = Ext_array.read_block a i in
    let got = Util.keys_of_items (Block.items blk) in
    Alcotest.(check bool)
      (Printf.sprintf "output block %d is an input block" i)
      true
      (Array.exists (fun o -> o = got) original)
  done

let test_sorter_edge_sizes () =
  (* Every registered sorter through the Ext_sort.run dispatch at the
     degenerate and non-power-of-two sizes: N in {0,1,2,3} plus awkward
     odd shapes. m = 128 keeps the cache sorter (and the in-cache
     dispatch of the others) within capacity at every shape. *)
  let rng = Odex_crypto.Rng.create ~seed:51 in
  List.iter
    (fun sorter ->
      List.iter
        (fun n ->
          List.iter
            (fun b ->
              run_sort_case sorter ~b ~m:128 (Util.random_keys rng n ~bound:(max 1 (2 * n))))
            [ 1; 4 ])
        [ 0; 1; 2; 3; 37; 100 ])
    (Ext_sort.auto :: Ext_sort.all)

let prop_sorters_agree =
  Util.qcheck_case ~name:"all sorters agree on arbitrary keys" ~count:40
    QCheck2.Gen.(pair (list_size (int_range 0 120) (int_range (-50) 50)) (int_range 1 4))
    (fun (keys, b) ->
      let keys = Array.of_list keys in
      let expected = List.sort compare (Array.to_list keys) in
      List.for_all
        (fun sorter ->
          let (), a =
            Util.with_array ~b (Util.cells_of_keys keys) (fun _s a ->
                Ext_sort.run sorter ~m:128 a)
          in
          Util.keys_of_items (Ext_array.items a) = expected)
        (Ext_sort.auto :: Ext_sort.all))

let prop_bucket_pipeline_sorts =
  Util.qcheck_case ~name:"bucket sort (pipeline scale) sorts arbitrary keys" ~count:8
    QCheck2.Gen.(list_size (int_range 1100 2600) (int_range (-1000) 1000))
    (fun keys ->
      let keys = Array.of_list keys in
      let (), a =
        Util.with_array ~b:4 (Util.cells_of_keys keys) (fun _s a ->
            Ext_sort.run (Ext_sort.bucket ()) ~m:256 a)
      in
      Util.keys_of_items (Ext_array.items a) = List.sort compare (Array.to_list keys))

let suite =
  [
    ("network validation", `Quick, test_network_validation);
    ("network apply", `Quick, test_network_apply);
    ("odd-even merge 0-1 principle", `Slow, test_odd_even_sorts_zero_one);
    ("bitonic 0-1 principle", `Slow, test_bitonic_sorts_zero_one);
    ("odd-even merge known size", `Quick, test_oems_known_size);
    ("network sorts random ints", `Quick, test_network_sorts_random_ints);
    ("merge-split halves", `Quick, test_merge_split);
    ("external sorters correct", `Quick, test_sorters_correct);
    ("cache sort correct", `Quick, test_cache_sort_correct);
    ("cache sort overflow", `Quick, test_cache_sort_overflow);
    ("sort preserves payload", `Quick, test_sort_preserves_payload);
    ("sort by custom comparator", `Quick, test_sort_custom_cmp);
    ("interleaved empties", `Quick, test_sort_empties_interleaved);
    ("sorters are data-oblivious", `Quick, test_sorters_oblivious);
    ("windowing reduces I/Os", `Quick, test_windowed_fewer_ios);
    ("columnsort plan", `Quick, test_columnsort_plan);
    ("columnsort correct", `Quick, test_columnsort_correct);
    ("columnsort oblivious", `Quick, test_columnsort_oblivious);
    ("columnsort dummy pass", `Quick, test_columnsort_dummy_pass);
    ("columnsort linear I/Os", `Quick, test_columnsort_linear_ios);
    ("columnsort capacity", `Quick, test_columnsort_capacity_raises);
    prop_columnsort_sorts;
    prop_bitonic_sorts;
    ("bucket plan geometry", `Quick, test_bucket_plan);
    ("bucket sort correct", `Quick, test_bucket_sort_correct);
    ("bucket sort custom comparator", `Quick, test_bucket_custom_cmp);
    ("bucket sort rank-isomorphic traces", `Quick, test_bucket_sort_oblivious_isomorphic);
    ("bucket dummy pass", `Quick, test_bucket_dummy_pass);
    ("bucket undersized-Z overflow", `Quick, test_bucket_overflow_raises);
    ("bucket simulation matches run", `Quick, test_bucket_simulate_matches_run);
    ("oblivious permutation correct", `Quick, test_permute_correct);
    ("oblivious permutation fixed trace", `Quick, test_permute_fixed_trace);
    ("oblivious block permutation", `Quick, test_permute_blocks_correct);
    ("sorter edge sizes", `Quick, test_sorter_edge_sizes);
    prop_sorters_agree;
    prop_bucket_pipeline_sorts;
  ]
