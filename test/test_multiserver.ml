(* The multi-server adversary model (DESIGN.md §14): per-server traces,
   the two-tier Pairtest/Statcheck verdicts, planted leaks that only the
   per-server tier can see, and the two-server compaction that exploits
   the non-colluding model. *)

open Odex_extmem
open Odex_obcheck
open Odex

let sub name run = { Pairtest.name; run }
let stripe ?(seed = 0x5A4D) k = Storage.Sharded { inner = Storage.Mem; shards = k; seed }

let mk_store ?(k = 2) () =
  Storage.create ~trace_mode:Trace.Digest ~backend:(stripe k) ~backoff:(0., 0.)
    ~block_size:4 ()

(* --- the full registry under the per-server tier ------------------- *)

(* Every registered subject, pair-tested at K = 1, 2 and 4: the verdict
   now also requires each server's individual trace to match across the
   pair. Routing is a pure function of the logical address, so every
   single-server-oblivious algorithm passes automatically — and the
   [`Multi_server] subject passes under its own tier. *)
let registry_k_cases =
  List.concat_map
    (fun k ->
      List.map
        (fun (e : Registry.entry) ->
          let name = e.subject.Pairtest.name in
          Alcotest.test_case (Printf.sprintf "pair %s [mem K=%d]" name k) `Quick (fun () ->
              let o =
                Pairtest.check
                  ~backend:(Registry.backend_spec ~shards:k "mem")
                  ~pair:(Registry.pair_mode e) ~multi_server:(Registry.multi_server e)
                  e.subject ~n_cells:e.n_cells ~b:e.b ~m:e.m
              in
              Alcotest.(check bool)
                (Format.asprintf "%a" Pairtest.pp_outcome o)
                true o.oblivious;
              Alcotest.(check bool) "per-server tier holds" true o.servers_ok;
              (* [backend_spec ~shards:1] is deliberately unsharded (the
                 degenerate stripe is a distinct layout; see below). *)
              Alcotest.(check (option int)) "shard layout reported"
                (if k = 1 then None else Some k)
                o.run_a.Pairtest.shards;
              Alcotest.(check int) "one trace per server"
                (if k = 1 then 0 else k)
                (Array.length o.run_a.Pairtest.shard_digests)))
        Registry.all)
    [ 1; 2; 4 ]

(* --- per-shard digests are stable at fixed seeds ------------------- *)

(* The per-server view is as deterministic as the logical one: repeating
   a run with the same seeds reproduces every shard digest bit for bit,
   at every K. *)
let test_shard_digests_stable () =
  List.iter
    (fun k ->
      List.iter
        (fun name ->
          let e = Option.get (Registry.find name) in
          let go () =
            let o =
              Pairtest.check
                ~backend:(Registry.backend_spec ~shards:k "mem")
                ~pair:(Registry.pair_mode e) ~multi_server:(Registry.multi_server e)
                e.subject ~n_cells:e.n_cells ~b:e.b ~m:e.m
            in
            o.Pairtest.run_a.Pairtest.shard_digests
          in
          Alcotest.(check (array (pair int int64)))
            (Printf.sprintf "%s K=%d per-shard digests reproducible" name k)
            (go ()) (go ()))
        [ "consolidation"; "twoserver-compaction" ])
    [ 2; 4 ]

(* --- planted leak: a data bit routed into the shard selection ------ *)

(* Pair the canonical stripe against one whose PRP seed differs —
   modelling an implementation that keys shard selection on the data.
   The logical trace ignores routing entirely, so the combined tier
   provably passes; the per-server tier must fail, naming a shard.

   The subject hammers one block: a lane-symmetric pattern (e.g. a
   sequential scan) gives every shard the same trace under any
   permutation, which is precisely why the leak needs the asymmetric
   probe to surface. *)
let hotspot =
  sub "hotspot" (fun ~rng:_ ~m:_ _s a ->
      for _ = 1 to 16 do
        ignore (Ext_array.read_block a 0)
      done)

let test_prp_seed_leak_caught () =
  let k = 4 in
  let p0, _ = Backend.shard_perm ~shards:k ~seed:0x5A4D in
  let rec distinct_seed s =
    let p, _ = Backend.shard_perm ~shards:k ~seed:s in
    if p.(0) <> p0.(0) then s else distinct_seed (s + 1)
  in
  let seed_b = distinct_seed 0x5A4E in
  let o =
    Pairtest.check ~backend:(stripe k)
      ~backend_b:(stripe ~seed:seed_b k)
      hotspot ~n_cells:256 ~b:4 ~m:8
  in
  Alcotest.(check bool) "combined tier is blind to routing" true o.combined_ok;
  Alcotest.(check bool) "per-server tier catches the leak" false o.servers_ok;
  Alcotest.(check bool) "verdict fails" false o.oblivious;
  match o.diverging_shard with
  | Some (shard, _) -> Alcotest.(check bool) "a real shard is named" true (shard >= 0)
  | None -> Alcotest.fail "diverging shard not reported"

(* --- unsharded vs degenerate 1-stripe are distinct layouts --------- *)

(* The old verdict compared [shard_ios] only, so an unsharded leg and a
   1-shard-stripe leg both reported [[||]]-vs-[[|n|]]... and a pair with
   no stripe at all passed the comparison vacuously. The layouts are now
   explicit run_info and must match. *)
let test_unsharded_vs_one_stripe_distinguished () =
  let o =
    Pairtest.check ~backend:Storage.Mem ~backend_b:(stripe 1) Registry.consolidation
      ~n_cells:128 ~b:4 ~m:8
  in
  Alcotest.(check (option int)) "leg A reports no stripe" None o.run_a.Pairtest.shards;
  Alcotest.(check (option int)) "leg B reports a 1-stripe" (Some 1)
    o.run_b.Pairtest.shards;
  Alcotest.(check bool) "combined traces still equal" true o.combined_ok;
  Alcotest.(check bool) "layout mismatch is not vacuously ok" false o.servers_ok;
  Alcotest.(check bool) "verdict fails" false o.oblivious

(* --- two-server compaction: correctness ---------------------------- *)

let block_cells ~b ~occupied i =
  Array.init b (fun j ->
      if occupied then Cell.item ~key:((i * b) + j) ~value:((i * b) + j) () else Cell.empty)

let input_cells ~b occ =
  Array.concat (Array.to_list (Array.mapi (fun i o -> block_cells ~b ~occupied:o i) occ))

let test_twoserver_correctness () =
  List.iter
    (fun k ->
      let s = mk_store ~k () in
      Fun.protect
        ~finally:(fun () -> Storage.close s)
        (fun () ->
          let occ = Array.init 16 (fun i -> i mod 3 <> 1) in
          let cells = input_cells ~b:4 occ in
          let a = Ext_array.of_cells s ~block_size:4 cells in
          let expected = Ext_array.items a in
          let o = Twoserver_compaction.run ~m:8 ~capacity_blocks:12 a in
          Alcotest.(check bool) (Printf.sprintf "K=%d ok" k) true o.ok;
          Alcotest.(check int)
            (Printf.sprintf "K=%d occupied count" k)
            (Array.fold_left (fun acc o -> if o then acc + 1 else acc) 0 occ)
            o.occupied;
          Alcotest.(check int) (Printf.sprintf "K=%d dest capacity" k) 12
            (Ext_array.blocks o.dest);
          Alcotest.(check bool)
            (Printf.sprintf "K=%d items preserved in order" k)
            true
            (List.map (fun (it : Cell.item) -> it.key) (Ext_array.items o.dest)
            = List.map (fun (it : Cell.item) -> it.key) expected)))
    [ 2; 3; 4 ]

let test_twoserver_overflow_rejected () =
  let s = mk_store () in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let a = Ext_array.of_cells s ~block_size:4 (input_cells ~b:4 (Array.make 8 true)) in
      Alcotest.check_raises "overflow reported after the full schedule"
        (Invalid_argument "Twoserver_compaction.run: 8 occupied blocks exceed capacity 4")
        (fun () -> ignore (Twoserver_compaction.run ~m:8 ~capacity_blocks:4 a)))

let test_twoserver_fallback_unsharded () =
  (* On a single-server store the protocol must publicly dispatch to the
     classical engine and deliver the same result. *)
  let s = Util.storage ~b:4 () in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let occ = Array.init 16 (fun i -> i mod 2 = 0) in
      let a = Ext_array.of_cells s ~block_size:4 (input_cells ~b:4 occ) in
      let expected = Ext_array.items a in
      let o = Twoserver_compaction.run ~m:8 ~capacity_blocks:16 a in
      Alcotest.(check bool) "fallback ok" true o.ok;
      Alcotest.(check bool) "fallback items preserved" true
        (List.map (fun (it : Cell.item) -> it.key) (Ext_array.items o.dest)
        = List.map (fun (it : Cell.item) -> it.key) expected))

(* --- two-server compaction: the model exploit, made visible -------- *)

(* Two inputs with different occupancy, same shape parameters: the
   combined trace diverges (the A-read/B-write interleaving is the
   occupancy) while every per-server trace is bit-identical — exactly
   the certificate [`Multi_server] encodes, and exactly what a
   single-server adversary is allowed to see that each non-colluding
   server is not. *)
let run_occupancy occ =
  let s = mk_store () in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let a = Ext_array.of_cells s ~block_size:4 (input_cells ~b:4 occ) in
      ignore (Twoserver_compaction.run ~m:8 ~capacity_blocks:(Array.length occ) a);
      let tr = Storage.trace s in
      ( Trace.length tr,
        Trace.digest tr,
        Array.map
          (fun str -> (Trace.length str, Trace.digest str))
          (Storage.shard_traces s) ))

let test_twoserver_combined_diverges_servers_agree () =
  let l1, d1, sh1 = run_occupancy (Array.make 16 true) in
  let l2, d2, sh2 = run_occupancy (Array.init 16 (fun i -> i mod 2 = 0)) in
  Alcotest.(check int) "combined lengths agree (same op count)" l1 l2;
  Alcotest.(check bool) "combined digests differ (occupancy leaks)" true (d1 <> d2);
  Alcotest.(check (array (pair int int64))) "every per-server trace identical" sh1 sh2

(* --- two-server compaction: strictly cheaper than one server ------- *)

let test_twoserver_beats_single_server () =
  let n_cells = 512 and b = 4 and m = 8 in
  let cells, _ = Pairtest.pair_inputs ~seed:0x1D10 ~n:n_cells in
  let counted s = Stats.reads (Storage.stats s) + Stats.writes (Storage.stats s) in
  let two =
    let s = mk_store () in
    Fun.protect
      ~finally:(fun () -> Storage.close s)
      (fun () ->
        let a = Ext_array.of_cells s ~block_size:b cells in
        ignore (Twoserver_compaction.run ~m ~capacity_blocks:(Ext_array.blocks a) a);
        counted s)
  in
  let one =
    let s = Util.storage ~b () in
    Fun.protect
      ~finally:(fun () -> Storage.close s)
      (fun () ->
        let a = Ext_array.of_cells s ~block_size:b cells in
        ignore (Compaction.tight ~m ~capacity_blocks:(Ext_array.blocks a) a);
        counted s)
  in
  Alcotest.(check bool)
    (Printf.sprintf "two-server %d I/Os < single-server %d at equal (N,B,M)" two one)
    true (two < one);
  let n_blocks = n_cells / b in
  let v = Iobound.twoserver_compaction ~n_blocks ~capacity:n_blocks ~actual:two in
  Alcotest.(check bool) (Format.asprintf "%a" Iobound.pp_verdict v) true v.within

(* --- the per-server statistical tier ------------------------------- *)

(* A leak the combined histogram provably cannot see: 8 extra reads at
   logical address 0 or 64 keyed on which key range the data lives in.
   The two addresses collide modulo the histogram's 64 bins, so the
   pooled combined histograms are bit-identical — but they live at
   different inner addresses of a K=2 stripe, so the serving shard's own
   histogram shifts. *)
let shard_leak_subject ~n_cells =
  sub "shard-colliding-leak" (fun ~rng:_ ~m:_ _s a ->
      for i = 0 to Ext_array.blocks a - 1 do
        ignore (Ext_array.read_block a i)
      done;
      let hot =
        match Ext_array.items a with
        | it :: _ when it.key >= 4 * n_cells -> 64
        | _ -> 0
      in
      for _ = 1 to 8 do
        ignore (Ext_array.read_block a hot)
      done)

let test_shard_distribution_clean () =
  let vs =
    Statcheck.shard_distribution ~samples:40 Registry.consolidation ~n_cells:256 ~b:4 ~m:8
  in
  Alcotest.(check int) "one verdict per server" 2 (Array.length vs);
  Array.iter
    (fun (v : Statcheck.verdict) ->
      Alcotest.(check bool) (Format.asprintf "%a" Statcheck.pp_verdict v) true v.pass)
    vs

let test_shard_distribution_catches_colliding_leak () =
  let subject = shard_leak_subject ~n_cells:512 in
  (* The combined tier is structurally blind to this leak: both hot
     addresses pool into the same histogram bin. *)
  let combined = Statcheck.trace_distribution ~samples:50 subject ~n_cells:512 ~b:4 ~m:8 in
  Alcotest.(check bool)
    (Format.asprintf "combined tier blind by construction: %a" Statcheck.pp_verdict combined)
    true combined.pass;
  (* The per-server tier sees the shard's own (inner-address) view and
     must reject it. *)
  let vs = Statcheck.shard_distribution ~samples:50 subject ~n_cells:512 ~b:4 ~m:8 in
  Alcotest.(check bool)
    (Format.asprintf "per-server tier rejects: %a" Statcheck.pp_verdict
       vs.(0))
    true
    (Array.exists (fun (v : Statcheck.verdict) -> not v.pass) vs)

let suite =
  [
    Alcotest.test_case "per-shard digests reproducible" `Quick test_shard_digests_stable;
    Alcotest.test_case "PRP-seed leak: combined blind, per-server catches" `Quick
      test_prp_seed_leak_caught;
    Alcotest.test_case "unsharded vs 1-stripe distinguished" `Quick
      test_unsharded_vs_one_stripe_distinguished;
    Alcotest.test_case "twoserver correctness K=2/3/4" `Quick test_twoserver_correctness;
    Alcotest.test_case "twoserver overflow rejected" `Quick test_twoserver_overflow_rejected;
    Alcotest.test_case "twoserver fallback on one server" `Quick
      test_twoserver_fallback_unsharded;
    Alcotest.test_case "twoserver: combined diverges, servers agree" `Quick
      test_twoserver_combined_diverges_servers_agree;
    Alcotest.test_case "twoserver beats single server" `Quick
      test_twoserver_beats_single_server;
    Alcotest.test_case "shard distribution clean subject" `Quick test_shard_distribution_clean;
    Alcotest.test_case "shard distribution catches bin-colliding leak" `Quick
      test_shard_distribution_catches_colliding_leak;
  ]
  @ registry_k_cases
