(* Batched block I/O: batching on and off must be indistinguishable in
   everything the model observes (traces, stats, retries, data), on every
   backend; the backend run primitives must respect bounds, fault
   schedules and the resume contract. *)

open Odex_extmem
module Bigbuf = Odex_crypto.Bigbuf

let with_temp_store f =
  let path = Filename.temp_file "odex_batch" ".store" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

(* ---------------- batch/unbatch parity across the registry ------------ *)

type fingerprint = {
  trace_length : int;
  digest : int64;
  reads : int;
  writes : int;
  retries : int;
  bytes_moved : int;
  batched_ios : int;
  result : Cell.t array;
}

let run_entry ~batching ~spec (e : Odex_obcheck.Registry.entry) =
  let cells, _ = Odex_obcheck.Pairtest.pair_inputs ~seed:0xBA7C4 ~n:e.n_cells in
  let s =
    Storage.create ~trace_mode:Trace.Digest ~backend:spec ~backoff:(0., 0.) ~batching
      ~block_size:e.b ()
  in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let a = Ext_array.of_cells s ~block_size:e.b cells in
      let rng = Odex_crypto.Rng.create ~seed:0xC0111 in
      e.subject.Odex_obcheck.Pairtest.run ~rng ~m:e.m s a;
      let st = Storage.stats s and tr = Storage.trace s in
      {
        trace_length = Trace.length tr;
        digest = Trace.digest tr;
        reads = Stats.reads st;
        writes = Stats.writes st;
        retries = Stats.retries st;
        bytes_moved = Stats.bytes_moved st;
        batched_ios = Stats.batched_ios st;
        result = Ext_array.to_cells a;
      })

let check_entry_parity backend_name (e : Odex_obcheck.Registry.entry) =
  let name = Printf.sprintf "%s[%s]" e.subject.Odex_obcheck.Pairtest.name backend_name in
  let with_spec f =
    let spec = Odex_obcheck.Registry.backend_spec backend_name in
    Fun.protect ~finally:(fun () -> Storage.remove_spec_files spec) (fun () -> f spec)
  in
  let on = with_spec (fun spec -> run_entry ~batching:true ~spec e) in
  let off = with_spec (fun spec -> run_entry ~batching:false ~spec e) in
  Alcotest.(check int) (name ^ ": trace length") off.trace_length on.trace_length;
  Alcotest.(check int64) (name ^ ": trace digest") off.digest on.digest;
  Alcotest.(check int) (name ^ ": reads") off.reads on.reads;
  Alcotest.(check int) (name ^ ": writes") off.writes on.writes;
  Alcotest.(check int) (name ^ ": retries") off.retries on.retries;
  Alcotest.(check int) (name ^ ": bytes moved") off.bytes_moved on.bytes_moved;
  Alcotest.(check int) (name ^ ": batching off tallies none") 0 off.batched_ios;
  Alcotest.(check bool)
    (name ^ ": batched_ios <= total")
    true
    (on.batched_ios <= on.reads + on.writes);
  Alcotest.(check bool) (name ^ ": same final cells") true (off.result = on.result)

let test_registry_parity backend_name () =
  List.iter (check_entry_parity backend_name) Odex_obcheck.Registry.all

let test_scan_algorithms_do_batch () =
  (* The batching win must actually engage: a scan-heavy algorithm on a
     batching storage serves most of its I/Os through multi-block runs. *)
  let e = Option.get (Odex_obcheck.Registry.find "consolidation") in
  let on = run_entry ~batching:true ~spec:Storage.Mem e in
  Alcotest.(check bool) "consolidation batches most I/Os" true
    (2 * on.batched_ios > on.reads + on.writes)

(* ---------------- Storage.read_many / write_many ---------------- *)

let block_of_int b v =
  let blk = Block.make b in
  blk.(0) <- Cell.item ~key:v ~value:(v * 10) ();
  blk

let test_many_roundtrip_and_trace () =
  let b = 2 in
  let s = Storage.create ~trace_mode:Trace.Full ~block_size:b () in
  let base = Storage.alloc s 6 in
  let blks = Array.init 5 (fun i -> block_of_int b (100 + i)) in
  Storage.write_many s (base + 1) blks;
  let got = Storage.read_many s (base + 1) 5 in
  Array.iteri
    (fun i blk -> Alcotest.(check int) (Printf.sprintf "key %d" i) (100 + i) (Cell.key_exn blk.(0)))
    got;
  (* One op per logical block, in address order — identical to the
     per-block loop's trace. *)
  let expect =
    List.init 5 (fun i -> Trace.Write (base + 1 + i))
    @ List.init 5 (fun i -> Trace.Read (base + 1 + i))
  in
  Alcotest.(check bool) "per-block ops in address order" true
    (Trace.ops (Storage.trace s) = expect);
  let st = Storage.stats s in
  Alcotest.(check int) "reads" 5 (Stats.reads st);
  Alcotest.(check int) "writes" 5 (Stats.writes st);
  Alcotest.(check int) "all ten batched" 10 (Stats.batched_ios st);
  let payload = 8 + Block.encoded_size b in
  Alcotest.(check int) "bytes_moved = payload per I/O" (10 * payload) (Stats.bytes_moved st)

let test_many_degenerate_sizes () =
  let s = Storage.create ~trace_mode:Trace.Full ~block_size:2 () in
  let base = Storage.alloc s 2 in
  Alcotest.(check int) "read_many 0 returns nothing" 0 (Array.length (Storage.read_many s base 0));
  Storage.write_many s base [||];
  Storage.write_many s base [| block_of_int 2 7 |];
  Alcotest.(check int) "singleton roundtrip" 7 (Cell.key_exn (Storage.read_many s base 1).(0).(0));
  (* Length-0 and length-1 runs never tally as batched. *)
  Alcotest.(check int) "no multi-block runs" 0 (Stats.batched_ios (Storage.stats s));
  Alcotest.(check int) "two counted ops" 2 (Stats.total (Storage.stats s));
  Alcotest.check_raises "read_many past capacity"
    (Invalid_argument "Storage: address 2 out of bounds (capacity 2)") (fun () ->
      ignore (Storage.read_many s base 3));
  Alcotest.(check int) "refused run performed no I/O" 2 (Stats.total (Storage.stats s))

let test_many_parity_under_faults () =
  (* rate 1.0, burst 1: every access fails once. A batched run must see
     the same fault schedule, produce the same retry-laden trace, and
     deliver the same data as the per-block loop. *)
  let faulty = Storage.Faulty { inner = Storage.Mem; seed = 3; failure_rate = 1.0; max_burst = 1 } in
  let run ~batching =
    let s =
      Storage.create ~trace_mode:Trace.Full ~backend:faulty ~backoff:(0., 0.) ~batching
        ~block_size:2 ()
    in
    let base = Storage.alloc s 8 in
    Storage.write_many s base (Array.init 8 (fun i -> block_of_int 2 (i + 1)));
    let keys = Array.map (fun blk -> Cell.key_exn blk.(0)) (Storage.read_many s base 8) in
    (Trace.ops (Storage.trace s), Stats.retries (Storage.stats s), keys)
  in
  let ops_on, retries_on, keys_on = run ~batching:true in
  let ops_off, retries_off, keys_off = run ~batching:false in
  Alcotest.(check bool) "identical op sequence with retries" true (ops_on = ops_off);
  Alcotest.(check int) "one retry per counted I/O" 16 retries_on;
  Alcotest.(check int) "same retries" retries_off retries_on;
  Alcotest.(check bool) "same data through the fault storm" true (keys_on = keys_off)

(* ---------------- backend run primitives ---------------- *)

let test_backend_run_edges () =
  let check_backend name (bk : Backend.t) =
    Backend.ensure bk 4;
    let payload = 8 in
    let pat i = Bytes.init payload (fun j -> Char.chr ((i * 31 + j) land 0xFF)) in
    let buf = Bigbuf.create (4 * payload) in
    for i = 0 to 3 do
      Bigbuf.blit_from_bytes (pat i) 0 buf (i * payload) payload
    done;
    (* count = 0 is a validated no-op; a full-width run ends exactly at
       capacity. *)
    Backend.write_run bk ~addr:2 ~count:0 ~payload ~buf ~off:0;
    Backend.write_run bk ~addr:0 ~count:4 ~payload ~buf ~off:0;
    let out = Bigbuf.create (4 * payload) in
    Backend.read_run bk ~addr:0 ~count:4 ~payload ~buf:out ~off:0;
    Alcotest.(check bytes) (name ^ ": full-run roundtrip") (Bigbuf.to_bytes buf)
      (Bigbuf.to_bytes out);
    (* count = 1 equals the single-block API. *)
    let one = Bigbuf.create payload in
    Backend.read_run bk ~addr:3 ~count:1 ~payload ~buf:one ~off:0;
    Alcotest.(check bytes) (name ^ ": run of one") (Backend.read bk 3) (Bigbuf.to_bytes one);
    (* Out-of-bounds address windows and undersized buffers raise before
       any byte moves. *)
    let is_oob = function Invalid_argument _ -> true | _ -> false in
    let refused f = try f (); false with e -> is_oob e in
    Alcotest.(check bool) (name ^ ": run past end refused") true
      (refused (fun () -> Backend.read_run bk ~addr:2 ~count:3 ~payload ~buf:out ~off:0));
    Alcotest.(check bool) (name ^ ": negative addr refused") true
      (refused (fun () -> Backend.read_run bk ~addr:(-1) ~count:1 ~payload ~buf:out ~off:0));
    Alcotest.(check bool) (name ^ ": short buffer refused") true
      (refused (fun () ->
           Backend.write_run bk ~addr:0 ~count:4 ~payload ~buf:(Bigbuf.create 31) ~off:0));
    let before = Bigbuf.create (4 * payload) in
    Backend.read_run bk ~addr:0 ~count:4 ~payload ~buf:before ~off:0;
    Alcotest.(check bytes) (name ^ ": refused writes moved nothing") (Bigbuf.to_bytes buf)
      (Bigbuf.to_bytes before)
  in
  check_backend "mem" (Backend.mem ~payload_size:8 ());
  with_temp_store (fun path ->
      let bk = Backend.file ~path ~payload_size:8 in
      Fun.protect ~finally:(fun () -> Backend.close bk) (fun () -> check_backend "file" bk))

let test_faulty_run_resume_contract () =
  (* rate 1.0, burst 1 alternates fail/recover by access index, so a
     4-block run faults mid-run on every attempt: first at block 0, then
     (after the guaranteed recovery) one block further each resume — the
     bursts cross the run repeatedly. The Transient address must never
     fall before the resume point (those blocks are already transferred),
     and resuming there must finish the run with one fault per block. *)
  let plan = { Backend.seed = 5; failure_rate = 1.0; max_burst = 1 } in
  let bk = Backend.faulty plan (Backend.mem ~payload_size:8 ()) in
  Backend.ensure bk 4;
  let payload = 8 in
  let src = Bigbuf.of_bytes (Bytes.init (4 * payload) (fun i -> Char.chr (i land 0xFF))) in
  let resume_loop f =
    let rec go a faults =
      if a < 4 then
        match f a with
        | () -> faults
        | exception Backend.Transient { addr; _ } ->
            if addr < a then Alcotest.failf "fault at %d before resume point %d" addr a;
            go addr (faults + 1)
      else faults
    in
    go 0 0
  in
  let wf =
    resume_loop (fun a ->
        Backend.write_run bk ~addr:a ~count:(4 - a) ~payload ~buf:src ~off:(a * payload))
  in
  Alcotest.(check int) "one write fault per block" 4 wf;
  let out = Bigbuf.create (4 * payload) in
  let rf =
    resume_loop (fun a ->
        Backend.read_run bk ~addr:a ~count:(4 - a) ~payload ~buf:out ~off:(a * payload))
  in
  Alcotest.(check int) "one read fault per block" 4 rf;
  Alcotest.(check bytes) "resumed run transferred every block" (Bigbuf.to_bytes src)
    (Bigbuf.to_bytes out);
  Alcotest.(check int) "every fault was raised through the runs" 8 (Backend.faults_injected bk);
  (* An out-of-bounds run is refused before the first gate: no fault
     schedule advance, no transfer. *)
  let faults_before = Backend.faults_injected bk in
  Alcotest.(check bool) "oob refused" true
    (try
       Backend.read_run bk ~addr:2 ~count:5 ~payload ~buf:(Bigbuf.create (5 * payload)) ~off:0;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "refused run consumed no accesses" faults_before
    (Backend.faults_injected bk)

(* ---------------- cache runs ---------------- *)

let test_cache_load_run () =
  let s = Storage.create ~trace_mode:Trace.Full ~block_size:2 () in
  let base = Storage.alloc s 6 in
  Storage.write_many s base (Array.init 6 (fun i -> block_of_int 2 (50 + i)));
  let c = Cache.create s ~capacity:4 in
  (* Overflow is checked for the whole run before any I/O. *)
  let reads_before = Stats.reads (Storage.stats s) in
  Alcotest.check_raises "run larger than capacity"
    (Cache.Overflow { capacity = 4; requested = 5 }) (fun () ->
      Cache.load_run c base ~count:5);
  Alcotest.(check int) "refused run read nothing" reads_before (Stats.reads (Storage.stats s));
  Alcotest.(check int) "nothing resident" 0 (Cache.resident c);
  (* A resident block in the middle splits the fill into two runs but
     costs no second read. *)
  ignore (Cache.load c (base + 2));
  Cache.load_run c base ~count:4;
  Alcotest.(check int) "four resident" 4 (Cache.resident c);
  Alcotest.(check int) "missing blocks read once each" (reads_before + 4)
    (Stats.reads (Storage.stats s));
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "resident block %d" i)
      (50 + i)
      (Cell.key_exn (Cache.borrow c (base + i)).(0))
  done;
  Cache.flush_all c;
  Alcotest.(check int) "flushed" 0 (Cache.resident c)

(* ---------------- trace and stats plumbing ---------------- *)

let test_full_trace_growth () =
  (* The growable Full-mode buffer: push far past the initial capacity,
     then check [ops] returns the exact sequence, and [reset] restarts
     it. *)
  let t = Trace.create Trace.Full in
  let n = 1000 in
  for i = 0 to n - 1 do
    Trace.record t (if i mod 2 = 0 then Trace.Read i else Trace.Write i)
  done;
  let ops = Trace.ops t in
  Alcotest.(check int) "all ops kept" n (List.length ops);
  List.iteri
    (fun i op ->
      let expect = if i mod 2 = 0 then Trace.Read i else Trace.Write i in
      if op <> expect then Alcotest.failf "op %d mismatch" i)
    ops;
  Alcotest.(check int) "length tracks" n (Trace.length t);
  Trace.reset t;
  Alcotest.(check int) "reset empties ops" 0 (List.length (Trace.ops t));
  Trace.record t (Trace.Read 42);
  Alcotest.(check bool) "recording works after reset" true (Trace.ops t = [ Trace.Read 42 ])

let test_stats_transfer_fields () =
  let st = Stats.create () in
  Alcotest.(check int) "fresh bytes_moved" 0 (Stats.bytes_moved st);
  Alcotest.(check int) "fresh batched_ios" 0 (Stats.batched_ios st);
  Stats.record_moved st 88;
  Stats.record_moved st 88;
  Stats.record_batched st 2;
  Alcotest.(check int) "bytes accumulate" 176 (Stats.bytes_moved st);
  Alcotest.(check int) "batched accumulate" 2 (Stats.batched_ios st);
  Stats.reset st;
  Alcotest.(check int) "reset clears bytes" 0 (Stats.bytes_moved st);
  Alcotest.(check int) "reset clears batched" 0 (Stats.batched_ios st)

let suite =
  [
    ("registry parity mem", `Slow, test_registry_parity "mem");
    ("registry parity file", `Slow, test_registry_parity "file");
    ("registry parity faulty", `Slow, test_registry_parity "faulty");
    ("scan algorithms actually batch", `Quick, test_scan_algorithms_do_batch);
    ("read_many/write_many roundtrip and trace", `Quick, test_many_roundtrip_and_trace);
    ("read_many/write_many degenerate sizes", `Quick, test_many_degenerate_sizes);
    ("batched I/O under a fault storm", `Quick, test_many_parity_under_faults);
    ("backend run edge cases", `Quick, test_backend_run_edges);
    ("faulty run resume contract", `Quick, test_faulty_run_resume_contract);
    ("cache load_run", `Quick, test_cache_load_run);
    ("full trace growth", `Quick, test_full_trace_growth);
    ("stats transfer fields", `Quick, test_stats_transfer_fields);
  ]
