(* Pair-testing obliviousness checks (the operational definition: fixed
   coins + value-disjoint same-shape inputs => identical traces), span
   divergence pinpointing, and I/O counts against the paper's bounds. *)

open Odex_extmem
open Odex_obcheck

(* --- pair tests: every registered subject ------------------------- *)

let registry_cases =
  List.map
    (fun (e : Registry.entry) ->
      Alcotest.test_case ("pair " ^ e.subject.Pairtest.name) `Quick (fun () ->
          let o = Pairtest.check e.subject ~n_cells:e.n_cells ~b:e.b ~m:e.m in
          Alcotest.(check bool) (Format.asprintf "%a" Pairtest.pp_outcome o) true o.oblivious))
    Registry.all

(* --- the checker catches a planted leak --------------------------- *)

(* A scan that issues an extra read whenever the first cell's key is
   even: exactly the class of defect the harness exists to catch. The
   leak is wrapped in a labelled span so the divergence report must
   name it. *)
let leaky_subject =
  {
    Pairtest.name = "leaky-scan";
    run =
      (fun ~rng:_ ~m:_ _s a ->
        Ext_array.with_span a "leak.prelude" (fun () ->
            for i = 0 to Ext_array.blocks a - 1 do
              ignore (Ext_array.read_block a i)
            done);
        Ext_array.with_span a "leak.scan" (fun () ->
            for i = 0 to Ext_array.blocks a - 1 do
              let blk = Ext_array.read_block a i in
              match blk.(0) with
              | Cell.Item it when it.key land 1 = 0 -> ignore (Ext_array.read_block a i)
              | _ -> ()
            done));
  }

let test_detects_leak () =
  let o = Pairtest.check leaky_subject ~n_cells:256 ~b:4 ~m:8 in
  Alcotest.(check bool) "leak detected" false o.oblivious;
  Alcotest.(check (option string)) "offending span named" (Some "leak.scan") o.diverging_span

(* --- span machinery ----------------------------------------------- *)

let test_span_nesting () =
  let tr = Trace.create Trace.Digest in
  Trace.with_span tr "outer" (fun () ->
      Trace.record tr (Trace.Read 0);
      Trace.with_span tr "inner" (fun () -> Trace.record tr (Trace.Write 1)));
  match Trace.spans tr with
  | [ inner; outer ] ->
      (* Completion order: inner closes first. *)
      Alcotest.(check string) "inner label" "inner" inner.Trace.label;
      Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
      Alcotest.(check int) "inner window" 1 (inner.Trace.end_length - inner.Trace.start_length);
      Alcotest.(check string) "outer label" "outer" outer.Trace.label;
      Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
      Alcotest.(check int) "outer window" 2 (outer.Trace.end_length - outer.Trace.start_length)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_safe () =
  let tr = Trace.create Trace.Digest in
  (try
     Trace.with_span tr "doomed" (fun () ->
         Trace.record tr (Trace.Read 7);
         failwith "boom")
   with Failure _ -> ());
  match Trace.spans tr with
  | [ s ] ->
      Alcotest.(check string) "span closed on raise" "doomed" s.Trace.label;
      Alcotest.(check int) "ops recorded" 1 s.Trace.end_length
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_stats_span_exception_safe () =
  let st = Stats.create () in
  (try
     ignore
       (Stats.span st (fun () ->
            Stats.record_read st;
            Stats.record_read st;
            Stats.record_write st;
            raise Exit))
   with Exit -> ());
  match Stats.last_span st with
  | Some snap ->
      Alcotest.(check int) "reads survive the raise" 2 snap.Stats.reads;
      Alcotest.(check int) "writes survive the raise" 1 snap.Stats.writes
  | None -> Alcotest.fail "no span recorded after exception"

(* --- I/O bounds ---------------------------------------------------- *)

let measure ~n_cells ~b ~seed f =
  let s = Util.storage ~b () in
  let cells, _ = Pairtest.pair_inputs ~seed ~n:n_cells in
  let a = Ext_array.of_cells s ~block_size:b cells in
  let rng = Odex_crypto.Rng.create ~seed in
  f rng a;
  (Stats.total (Storage.stats s), Ext_array.blocks a)

let check_verdict v =
  Alcotest.(check bool) (Format.asprintf "%a" Iobound.pp_verdict v) true v.Iobound.within

let test_bound_consolidation () =
  let actual, n_blocks =
    measure ~n_cells:512 ~b:4 ~seed:11 (fun _rng a ->
        ignore (Odex.Consolidation.run ~into:None a))
  in
  check_verdict (Iobound.consolidation ~n_blocks ~actual)

let test_bound_butterfly () =
  let m = 8 in
  let actual, n_blocks =
    measure ~n_cells:512 ~b:4 ~seed:12 (fun _rng a -> ignore (Odex.Butterfly.compact ~m a))
  in
  check_verdict (Iobound.butterfly_compaction ~n_blocks ~m_blocks:m ~actual)

let test_bound_selection () =
  let m = 16 in
  let actual, n_blocks =
    measure ~n_cells:2048 ~b:4 ~seed:13 (fun rng a ->
        let total = List.length (Ext_array.items a) in
        ignore (Odex.Selection.select ~m ~rng ~k:(max 1 (total / 2)) a))
  in
  check_verdict (Iobound.selection ~n_blocks ~actual)

let test_bound_quantiles () =
  let m = 16 and q = 3 in
  let actual, n_blocks =
    measure ~n_cells:2048 ~b:4 ~seed:14 (fun rng a ->
        ignore (Odex.Quantiles.run ~m ~rng ~q a))
  in
  check_verdict (Iobound.quantiles ~n_blocks ~q ~actual)

let test_bound_loose_compaction () =
  let m = 32 in
  let actual, n_blocks =
    measure ~n_cells:1024 ~b:4 ~seed:15 (fun rng a ->
        ignore (Odex.Loose_compaction.run ~m ~rng ~capacity:(Ext_array.blocks a / 8) a))
  in
  check_verdict (Iobound.loose_compaction ~n_blocks ~actual)

let test_bound_sort () =
  let m = 16 in
  let actual, n_blocks =
    measure ~n_cells:768 ~b:4 ~seed:16 (fun rng a -> ignore (Odex.Sort.run ~m ~rng a))
  in
  check_verdict (Iobound.sort ~n_blocks ~m_blocks:m ~actual)

let suite =
  registry_cases
  @ [
      Alcotest.test_case "checker detects planted leak" `Quick test_detects_leak;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
      Alcotest.test_case "stats span exception safety" `Quick test_stats_span_exception_safe;
      Alcotest.test_case "bound: consolidation exact" `Quick test_bound_consolidation;
      Alcotest.test_case "bound: butterfly" `Quick test_bound_butterfly;
      Alcotest.test_case "bound: selection" `Quick test_bound_selection;
      Alcotest.test_case "bound: quantiles" `Quick test_bound_quantiles;
      Alcotest.test_case "bound: loose compaction" `Quick test_bound_loose_compaction;
      Alcotest.test_case "bound: sort" `Quick test_bound_sort;
    ]
