(* Pair-testing obliviousness checks (the operational definition: fixed
   coins + value-disjoint same-shape inputs => identical traces), span
   divergence pinpointing, and I/O counts against the paper's bounds. *)

open Odex_extmem
open Odex_obcheck

(* --- pair tests: every registered subject on every backend -------- *)

(* The obliviousness claim is about Bob's view, and Bob serves every
   backend: the mem, file and faulty stores must all produce identical
   pair traces. On the faulty backend the (seeded, data-independent)
   fault schedule makes retries part of the view, so the pair test also
   proves the retry pattern leaks nothing — and the nonzero failure
   rate must actually produce retries, or the leg tests nothing. *)
let registry_cases =
  List.concat_map
    (fun backend_name ->
      List.map
        (fun (e : Registry.entry) ->
          Alcotest.test_case
            (Printf.sprintf "pair %s [%s]" e.subject.Pairtest.name backend_name)
            `Quick
            (fun () ->
              let spec = Registry.backend_spec backend_name in
              Fun.protect
                ~finally:(fun () -> Storage.remove_spec_files spec)
                (fun () ->
                  let o =
                    Pairtest.check ~backend:spec ~pair:(Registry.pair_mode e) e.subject
                      ~n_cells:e.n_cells ~b:e.b ~m:e.m
                  in
                  Alcotest.(check bool)
                    (Format.asprintf "%a" Pairtest.pp_outcome o)
                    true o.oblivious;
                  if backend_name = "faulty" then
                    Alcotest.(check bool) "faults actually injected" true
                      (o.run_a.Pairtest.retries > 0)
                  else
                    Alcotest.(check int) "no retries on a healthy backend" 0
                      o.run_a.Pairtest.retries)))
        Registry.all)
    Registry.backend_names

(* --- fuzzed shapes: obliviousness beyond the hand-picked sizes ---- *)

(* Random (N, B, M, seed) configurations per registered subject, half of
   them on a fault-injecting backend whose plan is derived from the
   config seed. [m] is clamped to each subject's documented floor
   (butterfly needs m >= 3; a direct Loose_compaction.run rejects
   region size 3*ceil(log2 n_blocks) > m); everything else about the
   shape is adversarially random. *)
let fuzz_m_floor name ~n_blocks =
  match name with
  | "loose-compaction" -> (3 * Emodel.ilog2_ceil (max 2 n_blocks)) + 1
  (* The butterfly permutation needs 4 buckets of >= 4 blocks plus the
     split buffers in cache for out-of-cache inputs. *)
  | "oblivious-permutation" -> 18
  | _ -> 4

(* Size ceiling per subject: ORAM subjects pay 2·N accesses (quadratic
   for the linear scan, rebuild-heavy for the hierarchical one) and the
   recursive algorithms pay sort-scale work per config; 100 configs per
   subject must still finish in seconds. *)
let fuzz_max_cells name =
  match name with
  | "linear-oram" | "sqrt-oram" | "hier-oram" -> 40
  | "sort" | "logstar-compaction" | "loose-compaction" | "selection" | "quantiles" -> 96
  | _ -> 160

let fuzz_config_gen ~max_cells =
  QCheck2.Gen.(
    quad (int_range 4 max_cells) (int_range 1 8) (int_range 0 36)
      (pair (int_range 0 0xFF_FFFF) bool))

let fuzz_case (e : Registry.entry) =
  let name = e.subject.Pairtest.name in
  Util.qcheck_case ~count:100
    ~name:(Printf.sprintf "fuzz pair %s" name)
    (fuzz_config_gen ~max_cells:(fuzz_max_cells name))
    (fun (n_cells, b, m_extra, (seed, faulty)) ->
      let n_blocks = Emodel.ceil_div n_cells b in
      let m = fuzz_m_floor name ~n_blocks + m_extra in
      let backend =
        if faulty then
          Storage.Faulty
            {
              inner = Storage.Mem;
              seed;
              failure_rate = 0.02 +. (Float.of_int (seed land 0xF) /. 200.);
              max_burst = 1 + (seed land 3);
            }
        else Storage.Mem
      in
      let o = Pairtest.check ~seed ~backend ~pair:(Registry.pair_mode e) e.subject ~n_cells ~b ~m in
      if not o.Pairtest.oblivious then
        QCheck2.Test.fail_reportf "%a" Pairtest.pp_outcome o;
      true)

let fuzz_cases = List.map fuzz_case Registry.all

(* --- the checker catches a planted leak --------------------------- *)

(* A scan that issues an extra read whenever the first cell's key is
   even: exactly the class of defect the harness exists to catch. The
   leak is wrapped in a labelled span so the divergence report must
   name it. *)
let leaky_subject =
  {
    Pairtest.name = "leaky-scan";
    run =
      (fun ~rng:_ ~m:_ _s a ->
        Ext_array.with_span a "leak.prelude" (fun () ->
            for i = 0 to Ext_array.blocks a - 1 do
              ignore (Ext_array.read_block a i)
            done);
        Ext_array.with_span a "leak.scan" (fun () ->
            for i = 0 to Ext_array.blocks a - 1 do
              let blk = Ext_array.read_block a i in
              match blk.(0) with
              | Cell.Item it when it.key land 1 = 0 -> ignore (Ext_array.read_block a i)
              | _ -> ()
            done));
  }

let test_detects_leak () =
  let o = Pairtest.check leaky_subject ~n_cells:256 ~b:4 ~m:8 in
  Alcotest.(check bool) "leak detected" false o.oblivious;
  Alcotest.(check (option string)) "offending span named" (Some "leak.scan") o.diverging_span

(* --- span machinery ----------------------------------------------- *)

let test_span_nesting () =
  let tr = Trace.create Trace.Digest in
  Trace.with_span tr "outer" (fun () ->
      Trace.record tr (Trace.Read 0);
      Trace.with_span tr "inner" (fun () -> Trace.record tr (Trace.Write 1)));
  match Trace.spans tr with
  | [ inner; outer ] ->
      (* Completion order: inner closes first. *)
      Alcotest.(check string) "inner label" "inner" inner.Trace.label;
      Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
      Alcotest.(check int) "inner window" 1 (inner.Trace.end_length - inner.Trace.start_length);
      Alcotest.(check string) "outer label" "outer" outer.Trace.label;
      Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
      Alcotest.(check int) "outer window" 2 (outer.Trace.end_length - outer.Trace.start_length)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_safe () =
  let tr = Trace.create Trace.Digest in
  (try
     Trace.with_span tr "doomed" (fun () ->
         Trace.record tr (Trace.Read 7);
         failwith "boom")
   with Failure _ -> ());
  match Trace.spans tr with
  | [ s ] ->
      Alcotest.(check string) "span closed on raise" "doomed" s.Trace.label;
      Alcotest.(check int) "ops recorded" 1 s.Trace.end_length
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_stats_span_exception_safe () =
  let st = Stats.create () in
  (try
     ignore
       (Stats.span st (fun () ->
            Stats.record_read st;
            Stats.record_read st;
            Stats.record_write st;
            raise Exit))
   with Exit -> ());
  match Stats.last_span st with
  | Some snap ->
      Alcotest.(check int) "reads survive the raise" 2 snap.Stats.reads;
      Alcotest.(check int) "writes survive the raise" 1 snap.Stats.writes
  | None -> Alcotest.fail "no span recorded after exception"

(* --- I/O bounds ---------------------------------------------------- *)

let measure ~n_cells ~b ~seed f =
  let s = Util.storage ~b () in
  let cells, _ = Pairtest.pair_inputs ~seed ~n:n_cells in
  let a = Ext_array.of_cells s ~block_size:b cells in
  let rng = Odex_crypto.Rng.create ~seed in
  f rng a;
  (Stats.total (Storage.stats s), Ext_array.blocks a)

let check_verdict v =
  Alcotest.(check bool) (Format.asprintf "%a" Iobound.pp_verdict v) true v.Iobound.within

let test_bound_consolidation () =
  let actual, n_blocks =
    measure ~n_cells:512 ~b:4 ~seed:11 (fun _rng a ->
        ignore (Odex.Consolidation.run ~into:None a))
  in
  check_verdict (Iobound.consolidation ~n_blocks ~actual)

let test_bound_butterfly () =
  let m = 8 in
  let actual, n_blocks =
    measure ~n_cells:512 ~b:4 ~seed:12 (fun _rng a -> ignore (Odex.Butterfly.compact ~m a))
  in
  check_verdict (Iobound.butterfly_compaction ~n_blocks ~m_blocks:m ~actual)

let test_bound_selection () =
  let m = 16 in
  let actual, n_blocks =
    measure ~n_cells:2048 ~b:4 ~seed:13 (fun rng a ->
        let total = List.length (Ext_array.items a) in
        ignore (Odex.Selection.select ~m ~rng ~k:(max 1 (total / 2)) a))
  in
  check_verdict (Iobound.selection ~n_blocks ~actual)

let test_bound_quantiles () =
  let m = 16 and q = 3 in
  let actual, n_blocks =
    measure ~n_cells:2048 ~b:4 ~seed:14 (fun rng a ->
        ignore (Odex.Quantiles.run ~m ~rng ~q a))
  in
  check_verdict (Iobound.quantiles ~n_blocks ~q ~actual)

let test_bound_loose_compaction () =
  let m = 32 in
  let actual, n_blocks =
    measure ~n_cells:1024 ~b:4 ~seed:15 (fun rng a ->
        ignore (Odex.Loose_compaction.run ~m ~rng ~capacity:(Ext_array.blocks a / 8) a))
  in
  check_verdict (Iobound.loose_compaction ~n_blocks ~actual)

let test_bound_sort () =
  let m = 16 in
  let actual, n_blocks =
    measure ~n_cells:768 ~b:4 ~seed:16 (fun rng a -> ignore (Odex.Sort.run ~m ~rng a))
  in
  check_verdict (Iobound.sort ~n_blocks ~m_blocks:m ~actual)

let suite =
  registry_cases @ fuzz_cases
  @ [
      Alcotest.test_case "checker detects planted leak" `Quick test_detects_leak;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
      Alcotest.test_case "stats span exception safety" `Quick test_stats_span_exception_safe;
      Alcotest.test_case "bound: consolidation exact" `Quick test_bound_consolidation;
      Alcotest.test_case "bound: butterfly" `Quick test_bound_butterfly;
      Alcotest.test_case "bound: selection" `Quick test_bound_selection;
      Alcotest.test_case "bound: quantiles" `Quick test_bound_quantiles;
      Alcotest.test_case "bound: loose compaction" `Quick test_bound_loose_compaction;
      Alcotest.test_case "bound: sort" `Quick test_bound_sort;
    ]
