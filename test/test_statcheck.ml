(* Statistical obliviousness: with the coins free (Pairtest fixes
   them), the distribution of Bob's view over coin draws must still be
   independent of the data. Every seed below is deterministic, so these
   verdicts are bit-reproducible — no flaky statistics. *)

open Odex_extmem
open Odex_obcheck
open Odex

let sub name run = { Pairtest.name; run }

(* --- the approximation itself -------------------------------------- *)

let test_critical_values () =
  (* Wilson–Hilferty against table values of the chi-square upper tail:
     p = 0.001 (z = 3.09): df 10 -> 29.59, df 50 -> 86.66, df 127 ->
     181.99. The cube approximation is within a few percent there. *)
  List.iter
    (fun (df, expected) ->
      let got = Statcheck.chi_square_critical ~df ~z:3.09 in
      if Float.abs (got -. expected) > 0.04 *. expected then
        Alcotest.failf "critical(df=%d): got %.2f, table %.2f" df got expected)
    [ (10, 29.59); (50, 86.66); (127, 181.99) ]

let test_two_sample_basics () =
  let stat, df = Statcheck.two_sample [| 50; 50; 0 |] [| 48; 52; 0 |] in
  Alcotest.(check int) "empty bin carries no df" 1 df;
  Alcotest.(check bool) "near-identical histograms score low" true (stat < 1.);
  let stat2, _ = Statcheck.two_sample [| 100; 0 |] [| 0; 100 |] in
  Alcotest.(check bool) "disjoint histograms score high" true (stat2 > 100.)

(* --- the histogram fold at its edges ------------------------------- *)

let test_histogram_empty_trace () =
  let acc = Array.make 8 0 in
  Statcheck.histogram_of_ops ~bins:4 [] acc;
  Alcotest.(check (array int)) "empty trace leaves the accumulator zeroed"
    (Array.make 8 0) acc

let test_histogram_retry_direction () =
  (* A retried op lands in the same directional bin as its clean
     counterpart: Bob cannot tell them apart by address, only by
     repetition — which the matched histograms preserve. *)
  let clean = Array.make 8 0 and retried = Array.make 8 0 in
  Statcheck.histogram_of_ops ~bins:4 [ Trace.Read 5; Trace.Write 6 ] clean;
  Statcheck.histogram_of_ops ~bins:4 [ Trace.Retry_read 5; Trace.Retry_write 6 ] retried;
  Alcotest.(check (array int)) "retries share their direction's bins" clean retried;
  Alcotest.(check int) "read half populated" 1 clean.(1);
  Alcotest.(check int) "write half populated" 1 clean.(4 + 2)

let test_histogram_collision_conservative () =
  (* Addresses congruent modulo [bins] pool into one bin: a collision
     can hide a leak (the test stays conservative) but can never invent
     a difference between matched histograms. *)
  let ha = Array.make 8 0 and hb = Array.make 8 0 in
  Statcheck.histogram_of_ops ~bins:4 [ Trace.Read 1; Trace.Read 9 ] ha;
  Statcheck.histogram_of_ops ~bins:4 [ Trace.Read 5; Trace.Read 13 ] hb;
  Alcotest.(check (array int)) "colliding addresses are indistinguishable" ha hb;
  Alcotest.(check int) "both land in bin 1" 2 ha.(1)

(* Matched histogram pairs: same bin count, arbitrary counts (including
   all-zero bins and empty-in-one-sample bins). *)
let hist_pair_gen =
  QCheck2.Gen.(
    int_range 2 16 >>= fun n ->
    pair (array_size (return n) (int_bound 50)) (array_size (return n) (int_bound 50)))

let qcheck_two_sample_symmetric =
  Util.qcheck_case ~count:200 ~name:"two_sample is symmetric" hist_pair_gen
    (fun (a, b) ->
      let sab, dab = Statcheck.two_sample a b in
      let sba, dba = Statcheck.two_sample b a in
      if dab <> dba then
        QCheck2.Test.fail_reportf "df asymmetric: %d vs %d" dab dba;
      if Float.abs (sab -. sba) > 1e-9 then
        QCheck2.Test.fail_reportf "stat asymmetric: %g vs %g" sab sba;
      true)

let qcheck_two_sample_identical_zero =
  Util.qcheck_case ~count:200 ~name:"two_sample of identical histograms is zero"
    QCheck2.Gen.(array_size (int_range 2 16) (int_bound 50))
    (fun a ->
      let stat, _ = Statcheck.two_sample a (Array.copy a) in
      if Float.abs stat > 1e-9 then
        QCheck2.Test.fail_reportf "identical histograms scored %g" stat;
      true)

(* --- randomized subjects: distribution must be data-independent ---- *)

let shuffle_subject =
  sub "shuffle" (fun ~rng ~m:_ _s a -> Shuffle_deal.shuffle ~rng a)

(* Sparse (IBLT) compaction under a coin-derived table key: the hash
   addresses vary with the coins; their law must not vary with the
   values. The input is consolidated first, as Theorem 4 requires. The
   capacity is the theorem's sparse regime (far below the occupied
   count here, so the decode reports incomplete — the trace is
   identical either way, which is the point). *)
let sparse_subject =
  sub "sparse-compaction" (fun ~rng ~m _s a ->
      let consolidated = Consolidation.run ~into:None a in
      let key = Odex_crypto.Prf.key_of_int (Odex_crypto.Rng.int rng 0x3FFF_FFFF) in
      ignore (Sparse_compaction.run ~m ~key ~capacity:4 consolidated))

let distribution_cases =
  List.map
    (fun (subject, n_cells, b, m) ->
      Alcotest.test_case
        (Printf.sprintf "distribution %s" subject.Pairtest.name)
        `Quick
        (fun () ->
          let v = Statcheck.trace_distribution subject ~n_cells ~b ~m in
          Alcotest.(check bool) (Format.asprintf "%a" Statcheck.pp_verdict v) true v.pass;
          Alcotest.(check int) "full sample count" 200 v.samples))
    [
      (shuffle_subject, 128, 4, 8);
      (sparse_subject, 128, 4, 32);
      (Registry.hierarchical_oram, 48, 4, 16);
      (* The two new randomized sorters at their registry shape: the
         coins must whiten whatever rank-dependence the merge phase has
         (bucket-sort) and the routing has none at all (permutation). *)
      (Registry.bucket_sort, 2048, 4, 256);
      (Registry.oblivious_permutation, 2048, 4, 256);
    ]

(* --- the checker catches a planted distributional leak ------------- *)

(* Per fixed coin seed this subject is NOT pair-divergent in
   distribution-free ways Pairtest would need: it reads addresses
   derived from the stored keys, so each fixed-coin trace differs
   between the pair members — but crucially its address *histogram*
   concentrates where the keys live, which is exactly what the
   two-sample test must reject (input A's keys live in a disjoint range
   from input B's). *)
let leaky_subject =
  sub "leaky-distribution" (fun ~rng ~m:_ _s a ->
      let n = Ext_array.blocks a in
      let k = match Ext_array.items a with it :: _ -> it.key | [] -> 0 in
      for _ = 1 to 64 do
        ignore (Ext_array.read_block a ((k + Odex_crypto.Rng.int rng 2) mod n))
      done)

let test_detects_leak () =
  let v = Statcheck.trace_distribution ~samples:50 leaky_subject ~n_cells:128 ~b:4 ~m:8 in
  Alcotest.(check bool)
    (Format.asprintf "leak must be rejected: %a" Statcheck.pp_verdict v)
    false v.pass

(* --- shuffle swap-partner uniformity ------------------------------- *)

(* The Knuth shuffle's first step swaps block 0 with a uniform partner
   in [0, n): read the partner straight out of the Full trace (the swap
   transcript is Read i, Read j, Write i, Write j) across many seeded
   runs and test the histogram against the uniform law. *)
let observed_partners ~n_blocks ~samples =
  let hist = Array.make n_blocks 0 in
  for i = 0 to samples - 1 do
    let s = Storage.create ~trace_mode:Trace.Full ~block_size:2 () in
    Fun.protect
      ~finally:(fun () -> Storage.close s)
      (fun () ->
        let cells = Array.init (n_blocks * 2) (fun j -> Cell.item ~key:j ~value:j ()) in
        let a = Ext_array.of_cells s ~block_size:2 cells in
        let rng = Odex_crypto.Rng.create ~seed:(0x5FFE + i) in
        Shuffle_deal.shuffle ~rng a;
        match Trace.ops (Storage.trace s) with
        | Trace.Read 0 :: Trace.Read j :: _ -> hist.(j) <- hist.(j) + 1
        | _ -> Alcotest.fail "unexpected swap transcript")
  done;
  hist

let test_partner_uniformity () =
  let n_blocks = 16 in
  let hist = observed_partners ~n_blocks ~samples:320 in
  let v = Statcheck.uniformity_verdict ~name:"shuffle partner" hist in
  Alcotest.(check bool) (Format.asprintf "%a" Statcheck.pp_verdict v) true v.pass

let test_uniformity_rejects_bias () =
  (* A partner source stuck on a quarter of the range must fail. *)
  let hist = Array.make 16 0 in
  for i = 0 to 319 do
    let j = i mod 4 in
    hist.(j) <- hist.(j) + 1
  done;
  let v = Statcheck.uniformity_verdict ~name:"biased partner" hist in
  Alcotest.(check bool) (Format.asprintf "%a" Statcheck.pp_verdict v) false v.pass

(* --- oblivious permutation: output-position uniformity ------------- *)

(* The bucket routing promises a uniformly random permutation
   (conditioned on no overflow). Track one sentinel cell through the
   real pipeline across disjointly-seeded runs and chi-square its
   output position against the uniform law. 512 cells in 128 blocks
   against m = 66 forces the out-of-cache butterfly (auto_plan picks
   Z = 64 cells); 32 position bins at 400 samples give expected count
   12.5 per bin. *)
let permute_positions ~samples ~seed_of =
  let n_cells = 512 and b = 4 and m = 66 in
  let bins = 32 in
  let sentinel = 0x3FFF_FFF0 in
  let hist = Array.make bins 0 in
  let overflows = ref 0 in
  for i = 0 to samples - 1 do
    let cells =
      Array.init n_cells (fun j ->
          Cell.item ~key:(if j = 0 then sentinel else j) ~value:j ())
    in
    let s = Util.storage ~b () in
    Fun.protect
      ~finally:(fun () -> Storage.close s)
      (fun () ->
        let a = Ext_array.of_cells s ~block_size:b cells in
        let rng = Odex_crypto.Rng.create ~seed:(seed_of ~sentinel i) in
        let o = Odex_sortnet.Oblivious_permutation.run ~rng ~m a in
        if not o.Odex_sortnet.Bucket_sort.ok then incr overflows
        else begin
          let pos = ref (-1) in
          Array.iteri
            (fun j c ->
              match c with
              | Cell.Item it when it.key = sentinel -> pos := j
              | _ -> ())
            (Ext_array.to_cells a);
          if !pos < 0 then Alcotest.fail "sentinel cell lost by the permutation";
          let bin = !pos * bins / n_cells in
          hist.(bin) <- hist.(bin) + 1
        end)
  done;
  (hist, !overflows)

let test_permutation_uniformity () =
  let samples = 400 in
  let hist, overflows =
    permute_positions ~samples ~seed_of:(fun ~sentinel:_ i ->
        Util.seed_stream "permute-uniformity" i)
  in
  (* Overflow is coin-public with bound ~1.5e-3 at Z=64: a handful of
     conditioned-away runs is fine, a systematic loss is not. *)
  Alcotest.(check bool)
    (Printf.sprintf "few overflows (%d/%d)" overflows samples)
    true (overflows <= 8);
  let v = Statcheck.uniformity_verdict ~name:"permutation position" hist in
  Alcotest.(check bool) (Format.asprintf "%a" Statcheck.pp_verdict v) true v.pass

(* Negative control pinning the test's power: derive the coins from the
   payload (a planted randomness leak — every run reuses the same
   data-determined seed, so the sentinel lands in one fixed position).
   The uniformity verdict must reject it. *)
let test_permutation_planted_leak () =
  let hist, _ =
    permute_positions ~samples:60 ~seed_of:(fun ~sentinel _ -> sentinel lxor 0xD0)
  in
  let v = Statcheck.uniformity_verdict ~name:"payload-seeded permutation" hist in
  Alcotest.(check bool)
    (Format.asprintf "planted leak must be rejected: %a" Statcheck.pp_verdict v)
    false v.pass

let suite =
  [
    Alcotest.test_case "Wilson-Hilferty critical values" `Quick test_critical_values;
    Alcotest.test_case "permutation position uniformity" `Quick test_permutation_uniformity;
    Alcotest.test_case "permutation planted-leak control" `Quick
      test_permutation_planted_leak;
    Alcotest.test_case "two-sample statistic basics" `Quick test_two_sample_basics;
    Alcotest.test_case "histogram of empty trace" `Quick test_histogram_empty_trace;
    Alcotest.test_case "histogram retry direction" `Quick test_histogram_retry_direction;
    Alcotest.test_case "histogram collision conservative" `Quick
      test_histogram_collision_conservative;
    qcheck_two_sample_symmetric;
    qcheck_two_sample_identical_zero;
    Alcotest.test_case "detects planted distributional leak" `Quick test_detects_leak;
    Alcotest.test_case "shuffle partner uniformity" `Quick test_partner_uniformity;
    Alcotest.test_case "uniformity rejects bias" `Quick test_uniformity_rejects_bias;
  ]
  @ distribution_cases
