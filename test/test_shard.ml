(* The sharded storage layer: PRP striping bijectivity, exact
   result/trace/stats parity between sharded and single-device runs for
   every registered algorithm, obliviousness at every shard count, and
   prefetch transparency. *)

open Odex_extmem
open Odex_obcheck

(* --- striping law -------------------------------------------------- *)

(* The fan-out must be a bijection on block indices: distinct logical
   addresses map to distinct (shard, inner address) slots, the inner
   address is always a/K, and within each K-aligned group the shard
   assignment is a permutation of the K devices. *)
let qcheck_route_bijection =
  Util.qcheck_case ~count:200 ~name:"shard_route is a striping bijection"
    QCheck2.Gen.(triple (int_range 1 8) (int_range 0 0xFFFF) (int_range 1 512))
    (fun (shards, seed, n) ->
      let seen = Hashtbl.create n in
      for a = 0 to n - 1 do
        let s, inner = Backend.shard_route ~shards ~seed a in
        if s < 0 || s >= shards then
          QCheck2.Test.fail_reportf "addr %d: shard %d out of range [0,%d)" a s shards;
        if inner <> a / shards then
          QCheck2.Test.fail_reportf "addr %d: inner %d, want %d" a inner (a / shards);
        if Hashtbl.mem seen (s, inner) then
          QCheck2.Test.fail_reportf "addr %d: slot (%d,%d) already taken" a s inner;
        Hashtbl.add seen (s, inner) a
      done;
      (* Each complete group occupies every shard exactly once. *)
      let groups = n / shards in
      for g = 0 to groups - 1 do
        for s = 0 to shards - 1 do
          if not (Hashtbl.mem seen (s, g)) then
            QCheck2.Test.fail_reportf "group %d misses shard %d" g s
        done
      done;
      true)

(* --- raw store roundtrip at odd shard counts ----------------------- *)

let test_roundtrip_shards () =
  List.iter
    (fun k ->
      let backend = Storage.Sharded { inner = Storage.Mem; shards = k; seed = 0x5A4D } in
      let s = Storage.create ~backend ~block_size:4 () in
      Fun.protect
        ~finally:(fun () -> Storage.close s)
        (fun () ->
          let n = 37 in
          let base = Storage.alloc s n in
          for i = 0 to n - 1 do
            let blk = Block.make 4 in
            blk.(0) <- Cell.item ~key:i ~value:(i * 3) ();
            Storage.write s (base + i) blk
          done;
          (* Batched read across every stripe boundary. *)
          let blks = Storage.read_many s base n in
          for i = 0 to n - 1 do
            match blks.(i).(0) with
            | Cell.Item it ->
                Alcotest.(check int) (Printf.sprintf "K=%d key %d" k i) i it.key;
                Alcotest.(check int) (Printf.sprintf "K=%d value %d" k i) (i * 3) it.value
            | Cell.Empty -> Alcotest.failf "K=%d: block %d came back empty" k i
          done;
          let per_shard = Storage.shard_ios s in
          Alcotest.(check int) (Printf.sprintf "K=%d shard count" k) k (Array.length per_shard);
          (* The devices served n uncounted zero-fill writes (alloc),
             n counted writes and n counted reads: per-shard tallies are
             the physical view, not just the counted one. *)
          Alcotest.(check int)
            (Printf.sprintf "K=%d ops conserved" k)
            (3 * n)
            (Array.fold_left ( + ) 0 per_shard)))
    [ 1; 2; 3; 4; 5; 8 ]

(* --- sharded vs single-device parity for every algorithm ----------- *)

(* One monitored run of a registry subject on a given backend spec:
   trace digest/length, stats, per-shard ops and the final content of
   the input window. The algorithm's coins are fixed, so any divergence
   between backends is the sharding layer's fault. *)
let run_subject (e : Registry.entry) backend =
  let s =
    Storage.create ~trace_mode:Trace.Digest ~backend ~backoff:(0., 0.) ~block_size:e.b ()
  in
  Fun.protect
    ~finally:(fun () -> Storage.close s)
    (fun () ->
      let cells, _ = Pairtest.pair_inputs ~seed:0x51A2D ~n:e.n_cells in
      let arr = Ext_array.of_cells s ~block_size:e.b cells in
      let rng = Odex_crypto.Rng.create ~seed:0x51A2D in
      e.subject.Pairtest.run ~rng ~m:e.m s arr;
      let tr = Storage.trace s and st = Storage.stats s in
      ( Trace.digest tr,
        Trace.length tr,
        (Stats.reads st, Stats.writes st, Stats.retries st, Stats.bytes_moved st),
        Storage.shard_ios s,
        Ext_array.to_cells arr ))

let parity_case (e : Registry.entry) =
  let name = e.subject.Pairtest.name in
  (* A [`Multi_server] subject deliberately runs a different protocol on
     a k >= 2 stripe (its combined trace is occupancy-dependent there),
     so cross-K parity only applies to its K=1 fallback; the K >= 2
     behaviour is covered by the multiserver suite. *)
  let ks = if Registry.multi_server e then [ 1 ] else [ 1; 2; 4 ] in
  Alcotest.test_case
    (Printf.sprintf "parity %s K=%s" name (String.concat "/" (List.map string_of_int ks)))
    `Quick
    (fun () ->
      let d0, l0, st0, sh0, cells0 = run_subject e Storage.Mem in
      Alcotest.(check int) "unsharded store reports no shards" 0 (Array.length sh0);
      List.iter
        (fun k ->
          let backend = Storage.Sharded { inner = Storage.Mem; shards = k; seed = 0x5A4D } in
          let d, l, st, sh, cells = run_subject e backend in
          let tag fmt = Printf.sprintf "%s K=%d: %s" name k fmt in
          Alcotest.(check int64) (tag "trace digest") d0 d;
          Alcotest.(check int) (tag "trace length") l0 l;
          let r0, w0, rt0, by0 = st0 and r, w, rt, by = st in
          Alcotest.(check int) (tag "reads") r0 r;
          Alcotest.(check int) (tag "writes") w0 w;
          Alcotest.(check int) (tag "retries") rt0 rt;
          Alcotest.(check int) (tag "bytes moved") by0 by;
          Alcotest.(check int) (tag "shard count") k (Array.length sh);
          Alcotest.(check bool)
            (tag "result cells identical")
            true
            (cells0 = cells))
        ks)

let parity_cases = List.map parity_case Registry.all

(* --- pair-tested obliviousness at every shard count ---------------- *)

(* The full operational check on sharded devices: the logical trace AND
   the per-shard op counts must agree across a value-disjoint pair —
   on mem, on files (one per shard), and with the fault injector
   composed outside the stripe (retries must line up too). *)
let sharded_pair_cases =
  List.concat_map
    (fun backend_name ->
      List.filter_map
        (fun (e : Registry.entry) ->
          (* Keep the expensive legs to a representative subset: the
             scan-phase algorithms plus one ORAM. *)
          let name = e.subject.Pairtest.name in
          if
            not
              (List.mem name
                 [
                   "consolidation";
                   "selection";
                   "quantiles";
                   "sort";
                   "hier-oram";
                   "bucket-sort";
                   "oblivious-permutation";
                   "twoserver-compaction";
                 ])
          then None
          else
            Some
              (Alcotest.test_case
                 (Printf.sprintf "pair %s [%s K=4]" name backend_name)
                 `Quick
                 (fun () ->
                   let spec = Registry.backend_spec ~shards:4 backend_name in
                   Fun.protect
                     ~finally:(fun () -> Storage.remove_spec_files spec)
                     (fun () ->
                       let o =
                         Pairtest.check ~backend:spec ~pair:(Registry.pair_mode e)
                           ~multi_server:(Registry.multi_server e) e.subject
                           ~n_cells:e.n_cells ~b:e.b ~m:e.m
                       in
                       Alcotest.(check bool)
                         (Format.asprintf "%a" Pairtest.pp_outcome o)
                         true o.oblivious;
                       Alcotest.(check int) "per-shard view present" 4
                         (Array.length o.run_a.Pairtest.shard_ios);
                       if backend_name = "faulty" then
                         Alcotest.(check bool) "faults actually injected" true
                           (o.run_a.Pairtest.retries > 0)))))
        Registry.all)
    Registry.backend_names

(* --- prefetch transparency ----------------------------------------- *)

(* Prefetch must be invisible to Bob: same trace digest, same stats,
   same result, with the worker on or off — over a plain store and over
   a sharded one. *)
let test_prefetch_parity () =
  let entry =
    match Registry.find "sort" with Some e -> e | None -> Alcotest.fail "sort not registered"
  in
  let run ~prefetch backend =
    let s =
      Storage.create ~trace_mode:Trace.Digest ~backend ~backoff:(0., 0.) ~prefetch
        ~block_size:entry.b ()
    in
    Fun.protect
      ~finally:(fun () -> Storage.close s)
      (fun () ->
        let cells, _ = Pairtest.pair_inputs ~seed:0x9F9F ~n:entry.n_cells in
        let arr = Ext_array.of_cells s ~block_size:entry.b cells in
        let rng = Odex_crypto.Rng.create ~seed:0x9F9F in
        entry.subject.Pairtest.run ~rng ~m:entry.m s arr;
        let st = Storage.stats s in
        ( Trace.digest (Storage.trace s),
          Stats.reads st,
          Stats.writes st,
          Ext_array.to_cells arr ))
  in
  List.iter
    (fun (label, backend_of) ->
      let d_off, r_off, w_off, c_off = run ~prefetch:false (backend_of ()) in
      let d_on, r_on, w_on, c_on = run ~prefetch:true (backend_of ()) in
      Alcotest.(check int64) (label ^ ": digest") d_off d_on;
      Alcotest.(check int) (label ^ ": reads") r_off r_on;
      Alcotest.(check int) (label ^ ": writes") w_off w_on;
      Alcotest.(check bool) (label ^ ": results") true (c_off = c_on))
    [
      ("mem", fun () -> Storage.Mem);
      ("sharded", fun () -> Storage.Sharded { inner = Storage.Mem; shards = 4; seed = 0x5A4D });
    ]

let test_prefetch_pair_oblivious () =
  (* Consolidation plus the two randomized sorters: the prefetch worker
     must stay invisible under the bucket pipeline's batched scans too
     (rank-isomorphic pair for the merge phase, exact for the
     routing-only permutation — same certificates as the plain runs). *)
  List.iter
    (fun name ->
      let entry =
        match Registry.find name with
        | Some e -> e
        | None -> Alcotest.fail (name ^ " not registered")
      in
      let o =
        Pairtest.check ~prefetch:true
          ~backend:(Storage.Sharded { inner = Storage.Mem; shards = 4; seed = 0x5A4D })
          ~pair:(Registry.pair_mode entry) entry.subject ~n_cells:entry.n_cells
          ~b:entry.b ~m:entry.m
      in
      Alcotest.(check bool)
        (Format.asprintf "%s: %a" name Pairtest.pp_outcome o)
        true o.oblivious)
    [ "consolidation"; "bucket-sort"; "oblivious-permutation" ]

(* --- sharded length survives close/reopen -------------------------- *)

let test_sharded_file_persistence () =
  let path = Filename.temp_file "odex_shardtest" ".store" in
  let backend = Storage.Sharded { inner = Storage.File { path }; shards = 3; seed = 0x5A4D } in
  Fun.protect
    ~finally:(fun () -> Storage.remove_spec_files backend)
    (fun () ->
      let key = Odex_crypto.Cipher.key_of_int 0x7E57 in
      let n = 17 in
      let s = Storage.create ~cipher:key ~backend ~block_size:4 () in
      let base = Storage.alloc s n in
      for i = 0 to n - 1 do
        let blk = Block.make 4 in
        blk.(0) <- Cell.item ~key:(100 + i) ~value:i ();
        Storage.write s (base + i) blk
      done;
      Storage.close s;
      (* Reopen: the length prefix on shard 0's meta blob must restore
         the exact block count (inner device sizes alone round up to a
         whole group), and every block must decrypt. *)
      let s2 = Storage.create ~cipher:key ~backend ~resume:true ~block_size:4 () in
      Fun.protect
        ~finally:(fun () -> Storage.close s2)
        (fun () ->
          Alcotest.(check int) "resumed capacity is exact" n (Storage.capacity s2);
          let blks = Storage.read_many s2 base n in
          for i = 0 to n - 1 do
            match blks.(i).(0) with
            | Cell.Item it -> Alcotest.(check int) "key" (100 + i) it.key
            | Cell.Empty -> Alcotest.failf "block %d empty after reopen" i
          done))

let test_nested_sharded_rejected () =
  let backend =
    Storage.Sharded
      {
        inner = Storage.Sharded { inner = Storage.Mem; shards = 2; seed = 1 };
        shards = 2;
        seed = 2;
      }
  in
  Alcotest.check_raises "nested stripe rejected"
    (Invalid_argument "Storage: nested Sharded specs are not supported") (fun () ->
      ignore (Storage.create ~backend ~block_size:4 ()))

let suite =
  [
    qcheck_route_bijection;
    Alcotest.test_case "roundtrip at K=1..8" `Quick test_roundtrip_shards;
    Alcotest.test_case "prefetch on/off parity" `Quick test_prefetch_parity;
    Alcotest.test_case "prefetch pair oblivious [K=4]" `Quick test_prefetch_pair_oblivious;
    Alcotest.test_case "file persistence across reopen [K=3]" `Quick
      test_sharded_file_persistence;
    Alcotest.test_case "nested sharding rejected" `Quick test_nested_sharded_rejected;
  ]
  @ parity_cases @ sharded_pair_cases
