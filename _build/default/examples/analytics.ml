(* Privacy-preserving payroll analytics on outsourced data.

   A company keeps its (encrypted) salary table with a storage provider.
   HR wants the median and the quartiles. Computing them naively — a
   quickselect, say — leaks the comparison structure of the data through
   the access pattern; the provider could learn where the big salaries
   sit. The data-oblivious selection and quantile algorithms
   (Theorems 13 and 17) answer the same questions with a trace that
   carries zero information.

   Run with: dune exec examples/analytics.exe *)

open Odex_extmem

let () =
  let b = 8 in
  let server = Storage.create ~trace_mode:Trace.Digest ~block_size:b () in
  let employees = 20_000 in
  let rng = Odex_crypto.Rng.create ~seed:99 in
  (* Log-normal-ish salaries in dollars. *)
  let salary () =
    let base = 40_000 + Odex_crypto.Rng.int rng 30_000 in
    let bumps = Odex_crypto.Rng.int rng 6 in
    let rec grow s k = if k = 0 then s else grow (s * 13 / 10) (k - 1) in
    grow base bumps
  in
  let table =
    Array.init employees (fun i -> Cell.item ~tag:i ~key:(salary ()) ~value:i ())
  in
  let a = Ext_array.of_cells server ~block_size:b table in
  let m = 64 in

  (* Median via Theorem 13 selection. *)
  let median = Odex.Selection.select ~m ~rng ~k:(employees / 2) a in
  (match median.Odex.Selection.item with
  | Some it ->
      Printf.printf "median salary: $%d (employee #%d)  [ok=%b]\n" it.key it.value
        median.Odex.Selection.ok
  | None -> print_endline "median: selection failed (retry with fresh coins)");

  (* Quartiles via Theorem 17. *)
  let q = Odex.Quantiles.run ~m ~rng ~q:3 a in
  if q.Odex.Quantiles.ok then begin
    let v i = q.Odex.Quantiles.quantiles.(i).Cell.key in
    Printf.printf "quartiles: p25 = $%d   p50 = $%d   p75 = $%d\n" (v 0) (v 1) (v 2)
  end;

  (* The provider's view. *)
  Printf.printf "provider saw %d I/Os, digest %016Lx — identical for ANY salary table\n"
    (Trace.length (Storage.trace server))
    (Trace.digest (Storage.trace server));

  (* Sanity: agree with the in-the-clear answer. *)
  let sorted = Array.map (fun c -> Cell.key_exn c) table in
  Array.sort compare sorted;
  Printf.printf "in-the-clear median for comparison: $%d\n" sorted.((employees / 2) - 1)
