(* Outsourced-filesystem defragmentation — the paper's §3 motivation:
   "this is the fundamental operation done during disk defragmentation
   ... a natural operation that one would want to do in an outsourced
   file system, since users of such systems are charged for the space
   they use."

   A year of file creations and deletions has left live file blocks
   scattered through a rented volume. Alice compacts the live blocks to
   the front — order-preserved, so files stay contiguous — and shrinks
   her bill, without Bob learning which blocks were live.

   Run with: dune exec examples/defrag.exe *)

open Odex_extmem

let () =
  let b = 16 in
  let server = Storage.create ~trace_mode:Trace.Digest ~block_size:b () in
  let volume_blocks = 2048 in
  let volume = Ext_array.create server ~blocks:volume_blocks in

  (* Simulate a fragmented volume: 30% of blocks are live file data. *)
  let rng = Odex_crypto.Rng.create ~seed:7 in
  let live = ref 0 in
  for pos = 0 to volume_blocks - 1 do
    if Odex_crypto.Rng.bernoulli rng 0.3 then begin
      incr live;
      let file_id = !live in
      let blk =
        Array.init b (fun j -> Cell.item ~tag:((pos * b) + j) ~key:file_id ~value:j ())
      in
      Storage.unchecked_poke server (Ext_array.addr volume pos) blk
    end
  done;
  Printf.printf "volume: %d blocks, %d live (%.0f%% fragmented free space)\n" volume_blocks
    !live
    (100. *. (1. -. (Float.of_int !live /. Float.of_int volume_blocks)));

  (* Defragment: one butterfly-network compaction (Theorem 6). *)
  let occupied = Odex.Butterfly.compact ~m:64 volume in
  Printf.printf "defragmented: %d live blocks now at the front; volume can shrink to %d blocks\n"
    occupied occupied;
  Printf.printf "server saw %d I/Os — the same trace for any liveness pattern\n"
    (Trace.length (Storage.trace server));

  (* Verify: live blocks form a prefix, in their original order. *)
  let ok = ref true in
  let last_file = ref 0 in
  for pos = 0 to volume_blocks - 1 do
    let blk = Storage.unchecked_peek server (Ext_array.addr volume pos) in
    match Block.items blk with
    | [] -> if pos < occupied then ok := false
    | it :: _ ->
        if pos >= occupied then ok := false;
        if it.key < !last_file then ok := false;
        last_file := it.key
  done;
  Printf.printf "prefix property and file order preserved: %b\n" !ok
