examples/audit.mli:
