examples/analytics.ml: Array Cell Ext_array Odex Odex_crypto Odex_extmem Printf Storage Trace
