examples/audit.ml: Block Ext_array Format List Oblivious Odex Odex_crypto Odex_extmem Sort
