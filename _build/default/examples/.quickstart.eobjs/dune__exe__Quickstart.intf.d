examples/quickstart.mli:
