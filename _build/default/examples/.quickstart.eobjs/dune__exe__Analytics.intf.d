examples/analytics.mli:
