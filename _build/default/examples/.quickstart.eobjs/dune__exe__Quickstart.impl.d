examples/quickstart.ml: Array Cell Ext_array List Odex Odex_crypto Odex_extmem Printf Storage String Trace
