examples/defrag.mli:
