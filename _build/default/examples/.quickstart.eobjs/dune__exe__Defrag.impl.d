examples/defrag.ml: Array Block Cell Ext_array Float Odex Odex_crypto Odex_extmem Printf Storage Trace
