examples/oram_demo.mli:
