examples/oram_demo.ml: Array Float Odex_crypto Odex_extmem Odex_oram Odex_sortnet Printf Stats Storage Trace
