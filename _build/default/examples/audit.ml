(* The adversary's notebook.

   Bob records every block address Alice touches. This demo shows his
   view of two algorithms solving the same problem on five very
   different datasets: the library's oblivious sort (traces identical —
   he learns nothing) and a leaky hash-placement routine in the style of
   the paper's §1 non-example (traces differ — he can distinguish the
   datasets without ever decrypting a byte).

   Run with: dune exec examples/audit.exe *)

open Odex_extmem
open Odex

let () =
  let rng = Odex_crypto.Rng.create ~seed:31337 in
  let inputs = Oblivious.input_classes ~rng ~n:600 in

  let oblivious_subject =
    {
      Oblivious.name = "Odex.Sort (Theorem 21)";
      run = (fun rng _s a -> ignore (Sort.run ~m:16 ~rng a));
    }
  in
  let leaky_subject =
    {
      Oblivious.name = "hash-placement (paper's non-example)";
      run =
        (fun _rng s a ->
          (* T[h(A[i])] accesses: the address depends on the value. *)
          let n = Ext_array.blocks a in
          let table = Ext_array.create s ~blocks:n in
          let key = Odex_crypto.Prf.key_of_int 1 in
          for i = 0 to n - 1 do
            let blk = Ext_array.read_block a i in
            match Block.items blk with
            | it :: _ ->
                let j = Odex_crypto.Prf.to_range key it.key ~bound:n in
                let t = Ext_array.read_block table j in
                Ext_array.write_block table j t
            | [] -> ()
          done);
    }
  in
  List.iter
    (fun subject ->
      let report = Oblivious.audit ~b:4 ~inputs subject in
      Format.printf "%a@." Oblivious.pp_report report)
    [ oblivious_subject; leaky_subject ];
  print_endline
    "The sort's five traces are byte-identical: Bob's view is a function of (N, M, B)\n\
     only. The hash-placement traces differ per dataset: Bob distinguishes encrypted\n\
     inputs without reading a single plaintext — the leak the paper is built to stop."
