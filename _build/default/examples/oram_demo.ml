(* Oblivious RAM over the library's sorting primitives.

   The paper's introduction: "since data-oblivious sorting is the
   bottleneck in the inner loop in existing oblivious RAM simulations,
   our sorting result improves the amortized time overhead to do
   oblivious RAM simulation". This demo runs the square-root ORAM of
   Goldreich–Ostrovsky with its epoch reshuffles driven by two of our
   oblivious sorters and shows the amortized I/O difference — the
   sorting win passes straight through to the ORAM.

   Run with: dune exec examples/oram_demo.exe *)

open Odex_extmem

let drive sorter_name sorter =
  let n = 2048 in
  let server = Storage.create ~trace_mode:Trace.Off ~block_size:4 () in
  let rng = Odex_crypto.Rng.create ~seed:5 in
  let oram =
    Odex_oram.Sqrt_oram.init ~sorter ~m:64 ~rng server ~values:(Array.init n (fun i -> i))
  in
  (* A session of key-value reads and writes. *)
  let ops = ref 0 in
  while Odex_oram.Sqrt_oram.epochs oram < 2 do
    let addr = !ops * 31 mod n in
    if !ops mod 3 = 0 then Odex_oram.Sqrt_oram.write oram addr (addr * 2)
    else ignore (Odex_oram.Sqrt_oram.read oram addr);
    incr ops
  done;
  let per_access = Float.of_int (Stats.total (Storage.stats server)) /. Float.of_int !ops in
  Printf.printf "  %-18s %6d accesses, %8d I/Os, %8.1f I/Os per access\n" sorter_name !ops
    (Stats.total (Storage.stats server))
    per_access;
  (* Consistency spot-check. *)
  let v = Odex_oram.Sqrt_oram.read oram 93 in
  assert (v = 93 || v = 186);
  per_access

let drive_hier sorter_name sorter =
  let n = 2048 in
  let server = Storage.create ~trace_mode:Trace.Off ~block_size:4 () in
  let rng = Odex_crypto.Rng.create ~seed:6 in
  let oram = Odex_oram.Hierarchical_oram.init ~sorter ~m:64 ~rng server ~values:(Array.init n (fun i -> i)) in
  let ops = 1024 in
  for i = 1 to ops do
    let addr = i * 31 mod n in
    if i mod 3 = 0 then Odex_oram.Hierarchical_oram.write oram addr (addr * 2)
    else ignore (Odex_oram.Hierarchical_oram.read oram addr)
  done;
  let per_access = Float.of_int (Stats.total (Storage.stats server)) /. Float.of_int ops in
  Printf.printf "  %-18s %6d accesses, %8d I/Os, %8.1f I/Os per access (%d rebuilds)\n"
    sorter_name ops
    (Stats.total (Storage.stats server))
    per_access
    (Odex_oram.Hierarchical_oram.rebuilds oram);
  per_access

let () =
  print_endline "square-root ORAM (2048 words), reshuffled by different oblivious sorts:";
  let naive = drive "bitonic" Odex_sortnet.Ext_sort.bitonic in
  let windowed = drive "bitonic-windowed" Odex_sortnet.Ext_sort.bitonic_windowed in
  Printf.printf "better sorting makes the whole ORAM %.2fx cheaper per access\n\n"
    (naive /. windowed);
  print_endline "hierarchical ORAM (Goldreich-Ostrovsky), rebuilt by the same sorts:";
  let hnaive = drive_hier "bitonic" Odex_sortnet.Ext_sort.bitonic in
  let hwin = drive_hier "bitonic-windowed" Odex_sortnet.Ext_sort.bitonic_windowed in
  Printf.printf "and again: %.2fx cheaper per access with the better sort\n" (hnaive /. hwin)
