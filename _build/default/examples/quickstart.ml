(* Quickstart: sort outsourced data without revealing anything about it.

   Alice stores 10,000 encrypted records on Bob's server and sorts them
   by key. Bob sees every block address she touches — and learns nothing,
   because the trace is the same whatever the data is.

   Run with: dune exec examples/quickstart.exe *)

open Odex_extmem

let () =
  (* Bob's disk: blocks of 16 words, encrypted, recording the trace. *)
  let cipher = Odex_crypto.Cipher.key_of_int 0xA11CE in
  let server = Storage.create ~cipher ~trace_mode:Trace.Digest ~block_size:16 () in

  (* Alice uploads 10,000 records (key = account id, value = balance). *)
  let rng = Odex_crypto.Rng.create ~seed:2024 in
  let records =
    Array.init 10_000 (fun i ->
        Cell.item ~tag:i ~key:(Odex_crypto.Rng.int rng 1_000_000) ~value:(i * 17) ())
  in
  let a = Ext_array.of_cells server ~block_size:16 records in

  (* Alice's cache: m = 64 blocks (1024 words of private memory). *)
  let m = 64 in
  let outcome = Odex.Sort.run ~m ~rng a in

  Printf.printf "sorted 10,000 records: ok = %b\n" outcome.Odex.Sort.ok;
  Printf.printf "server saw %d block I/Os (digest %016Lx)\n"
    (Trace.length (Storage.trace server))
    (Trace.digest (Storage.trace server));

  (* Check the result like a client would: stream it back. *)
  let items = Ext_array.items a in
  let keys = List.map (fun (it : Cell.item) -> it.key) items in
  Printf.printf "first keys: %s ...\n"
    (String.concat ", " (List.map string_of_int (List.filteri (fun i _ -> i < 5) keys)));
  Printf.printf "is sorted: %b, all %d records present: %b\n"
    (List.sort compare keys = keys)
    (List.length items)
    (List.length items = 10_000)
