test/test_sortnet.ml: Alcotest Array Batcher Block Cache Cell Columnsort Ext_array Ext_sort Float List Network Odex_crypto Odex_extmem Odex_sortnet QCheck2 Stats Storage Util
