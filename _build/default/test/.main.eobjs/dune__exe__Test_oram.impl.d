test/test_oram.ml: Alcotest Array Float Hierarchical_oram Linear_oram List Odex_crypto Odex_extmem Odex_oram Odex_sortnet Sqrt_oram Stats Storage Trace Util
