test/test_crypto.ml: Alcotest Array Bytes Cipher Float Hash_family List Odex_crypto Permutation Prf QCheck2 Rng Util
